examples/hospital.ml: List Printf String Xmlac_core Xmlac_skip_index Xmlac_soe Xmlac_workload Xmlac_xml
