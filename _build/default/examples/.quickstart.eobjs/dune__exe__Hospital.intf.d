examples/hospital.mli:
