examples/parental_control.ml: List Option Printf String Xmlac_core Xmlac_crypto Xmlac_skip_index Xmlac_soe Xmlac_xml
