examples/quickstart.ml: Fmt Printf String Xmlac_core Xmlac_crypto Xmlac_skip_index Xmlac_soe Xmlac_xml
