examples/quickstart.mli:
