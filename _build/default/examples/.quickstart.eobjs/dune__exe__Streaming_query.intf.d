examples/streaming_query.mli:
