(* The paper's motivating example (Section 2): a hospital document shared
   with three user profiles — secretary, doctor, medical researcher — whose
   access rules are evaluated client-side over the encrypted document.

   The point the paper makes about dynamicity is demonstrated at the end:
   the researcher is granted an exceptional, time-limited rule and the new
   policy is evaluated over the *same* encrypted document — no
   re-encryption, no key redistribution.

   Run with:  dune exec examples/hospital.exe *)

module Tree = Xmlac_xml.Tree
module Writer = Xmlac_xml.Writer
module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule
module Session = Xmlac_soe.Session
module Channel = Xmlac_soe.Channel
module Cost_model = Xmlac_soe.Cost_model
module W = Xmlac_workload

let () =
  let doc = W.Hospital.generate_sized ~seed:2004 ~target_bytes:400_000 () in
  let xml_bytes = String.length (Writer.tree_to_string doc) in
  Printf.printf "Hospital document: %d folders, %d KB of XML\n"
    (List.length (Tree.children doc))
    (xml_bytes / 1024);

  let config = Session.default_config () in
  let published =
    Session.publish config ~layout:Xmlac_skip_index.Layout.Tcsbr doc
  in
  Printf.printf "Published once: skip-index %d KB, encrypted with 3DES + Merkle\n\n"
    (published.Session.encoded_bytes / 1024);

  let profiles =
    [
      ("Secretary", W.Profiles.secretary);
      ("Doctor (full-time)", W.Profiles.doctor ~user:W.Hospital.full_time_physician);
      ("Doctor (part-time)", W.Profiles.doctor ~user:W.Hospital.part_time_physician);
      ("Researcher (G3)", W.Profiles.researcher ());
    ]
  in
  Printf.printf "%-20s %10s %10s %10s %8s\n" "Profile" "view(KB)" "read(KB)"
    "time(s)" "skips";
  List.iter
    (fun (name, policy) ->
      let m = Session.evaluate config published policy in
      Printf.printf "%-20s %10.1f %10.1f %10.2f %8d\n" name
        (float_of_int m.Session.result_bytes /. 1024.)
        (float_of_int m.Session.counters.Channel.bytes_to_soe /. 1024.)
        m.Session.breakdown.Cost_model.total_s
        (m.Session.eval.Xmlac_core.Evaluator.open_skips
        + m.Session.eval.Xmlac_core.Evaluator.rest_skips))
    profiles;

  (* Dynamic rules: the paper's example of an exceptional, temporary grant —
     "a researcher may be granted an exceptional and time-limited access to
     a fragment of all medical folders where the rate of Cholesterol
     exceeds 300mg/dL (a rather rare situation)". *)
  print_endline "\n--- Exceptional grant (no re-encryption!) ---";
  let base = W.Profiles.researcher () in
  let exceptional =
    Policy.make
      (Policy.rules base
      @ [ Rule.parse ~id:"EMERG" ~sign:Rule.Permit "//LabResults[//Cholesterol > 270]" ])
  in
  let before = Session.evaluate config published base in
  let after = Session.evaluate config published exceptional in
  Printf.printf "researcher view before: %5.1f KB\n"
    (float_of_int before.Session.result_bytes /. 1024.);
  Printf.printf "researcher view after:  %5.1f KB (same ciphertext, new rules)\n"
    (float_of_int after.Session.result_bytes /. 1024.);

  (* Revocation is equally immediate. *)
  let revoked =
    Policy.make
      (List.filter (fun (r : Rule.t) -> r.id <> "R1") (Policy.rules base))
  in
  let m = Session.evaluate config published revoked in
  Printf.printf "after revoking R1 (ages): %.1f KB\n"
    (float_of_int m.Session.result_bytes /. 1024.)
