(* Parental control — one of the paper's motivating applications: "the
   ever-increasing concern of parents and teachers to protect children by
   controlling and filtering out what they access on the Internet".

   A content provider publishes an encrypted feed once; each family device
   holds its own rules inside its SOE. The feed server never learns the
   rules, and the (possibly tech-savvy) teenager cannot tamper with the
   feed without the SOE noticing.

   Run with:  dune exec examples/parental_control.exe *)

module Tree = Xmlac_xml.Tree
module Writer = Xmlac_xml.Writer
module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule
module Session = Xmlac_soe.Session
module Container = Xmlac_crypto.Secure_container

let feed =
  {|<feed>
  <story><rating>3</rating><topic>cartoons</topic><body>colorful fun</body></story>
  <story><rating>18</rating><topic>horror</topic><body>definitely not for kids</body></story>
  <story><rating>7</rating><topic>science</topic><body>volcanoes are great</body></story>
  <story><rating>13</rating><topic>news</topic><body>mildly concerning events</body></story>
  <story><rating>16</rating><topic>crime</topic><body>gritty documentary</body></story>
</feed>|}

let show name events =
  Printf.printf "%s:\n%s\n\n" name
    (match events with
    | [] -> "  (nothing authorized)"
    | evs -> "  " ^ Xmlac_xml.Writer.events_to_string evs)

let () =
  let tree = Tree.parse ~strip_whitespace:true feed in
  let config = Session.default_config () in
  let published =
    Session.publish config ~layout:Xmlac_skip_index.Layout.Tcsbr tree
  in
  Printf.printf "Feed published encrypted (%d bytes ciphertext).\n\n"
    (String.length (Container.to_bytes published.Session.container));

  (* Each device carries a different policy for the same ciphertext. *)
  let child =
    Policy.of_specs
      [
        ("ok", Rule.Permit, "//story[rating <= 7]");
      ]
  in
  let teen =
    Policy.of_specs
      [
        ("ok", Rule.Permit, "//story[rating <= 13]");
        ("topics", Rule.Permit, "//story[topic = science]");
      ]
  in
  let parent = Policy.of_specs [ ("all", Rule.Permit, "//story") ] in
  show "child's view" (Session.evaluate config published child).Session.events;
  show "teen's view" (Session.evaluate config published teen).Session.events;
  show "parent's view" (Session.evaluate config published parent).Session.events;

  (* The teenager swaps encrypted blocks, hoping to splice the horror story
     into an authorized position. The Merkle-checked container makes the
     SOE refuse the document. *)
  print_endline "--- Tampering attempt ---";
  let stolen =
    String.sub (Container.chunk_ciphertext published.Session.container 0) 64 8
  in
  let tampered =
    {
      published with
      Session.container =
        Container.substitute_block published.Session.container ~chunk:0
          ~block:2 stolen;
    }
  in
  (match Session.evaluate config tampered child with
  | exception Container.Integrity_failure reason ->
      Printf.printf "SOE rejected the document: %s\n" reason
  | _ -> print_endline "!!! tampering went unnoticed (this must not happen)");

  (* Rules evolve with the child: no re-encryption needed. *)
  print_endline "\n--- Birthday: the child's policy is upgraded in place ---";
  let upgraded =
    Policy.of_specs [ ("ok", Rule.Permit, "//story[rating <= 13]") ]
  in
  show "child's view at 13" (Session.evaluate config published upgraded).Session.events;

  (* How the rules travel: the parent seals a license (rules + document key)
     under the child's device key — the paper's "downloaded via a secure
     channel from different sources (… parent or teacher …)". *)
  print_endline "--- The license the parent hands to the child's device ---";
  let device_key = Xmlac_crypto.Des.Triple.key_of_string "child-tablet-soe-masterk" in
  let lic =
    Xmlac_soe.License.make ~valid_until:365 ~subject:"junior"
      ~document_key:"xmlac-demo-24-byte-key!!"
      [ ("ok", Rule.Permit, "//story[rating <= 13]") ]
  in
  let sealed = Xmlac_soe.License.seal ~soe_key:device_key lic in
  Printf.printf "sealed license: %d bytes, opaque to everyone but the device\n"
    (String.length sealed);
  (match Xmlac_soe.License.unseal ~soe_key:device_key sealed with
  | Ok lic' ->
      Printf.printf "device unsealed it: subject=%s, %d rule(s), valid until day %d\n"
        lic'.Xmlac_soe.License.subject
        (List.length lic'.Xmlac_soe.License.rules)
        (Option.value ~default:0 lic'.Xmlac_soe.License.valid_until)
  | Error e -> Printf.printf "unexpected: %s\n" e);
  let wrong = Xmlac_crypto.Des.Triple.key_of_string "some-other-device-key-!!" in
  match Xmlac_soe.License.unseal ~soe_key:wrong sealed with
  | Error e -> Printf.printf "another device cannot: %s\n" e
  | Ok _ -> print_endline "!!! license opened on the wrong device"
