(* Quickstart: define access rules, evaluate an authorized view in memory,
   then run the same policy through the full encrypted pipeline (skip-index
   encoding, 3DES + Merkle container, simulated SOE).

   Run with:  dune exec examples/quickstart.exe *)

module Tree = Xmlac_xml.Tree
module Writer = Xmlac_xml.Writer
module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule
module Evaluator = Xmlac_core.Evaluator
module Session = Xmlac_soe.Session

let document =
  {|<agenda>
  <meeting>
    <title>Budget review</title>
    <room>A-101</room>
    <private>
      <notes>acquisition plans, do not leak</notes>
    </private>
  </meeting>
  <meeting>
    <title>Team lunch</title>
    <room>cafeteria</room>
  </meeting>
</agenda>|}

let () =
  print_endline "=== 1. The document ===";
  print_endline document;

  (* An access control policy is a set of signed XPath rules; the policy is
     closed: anything not covered is denied. *)
  let policy =
    Policy.of_specs
      [
        ("allow-meetings", Rule.Permit, "//meeting");
        ("deny-private", Rule.Deny, "//private");
      ]
  in

  print_endline "\n=== 2. In-memory streaming evaluation ===";
  let tree = Tree.parse ~strip_whitespace:true document in
  let result = Evaluator.run_events ~policy (Tree.to_events tree) in
  (match Evaluator.view_tree result with
  | None -> print_endline "(nothing authorized)"
  | Some view -> print_endline (Writer.tree_to_string ~indent:true view));

  print_endline "\n=== 3. The encrypted pipeline ===";
  (* Publication side: encode with the Skip index, encrypt into a chunked
     container with Merkle integrity. *)
  let config = Session.default_config () in
  let published =
    Session.publish config ~layout:Xmlac_skip_index.Layout.Tcsbr tree
  in
  Printf.printf "encoded %d bytes, encrypted container %d bytes\n"
    published.Session.encoded_bytes
    (String.length
       (Xmlac_crypto.Secure_container.to_bytes published.Session.container));

  (* Client side: the SOE decrypts, verifies and filters in one pass. *)
  let m = Session.evaluate config published policy in
  Printf.printf "authorized view (%d bytes):\n%s\n" m.Session.result_bytes
    (Writer.events_to_string m.Session.events);
  Printf.printf "\nsimulated smart-card cost: %s\n"
    (Fmt.str "%a" Xmlac_soe.Cost_model.pp_breakdown m.Session.breakdown);
  Printf.printf "bytes into SOE: %d of %d encoded\n"
    m.Session.counters.Xmlac_soe.Channel.bytes_to_soe
    published.Session.encoded_bytes
