(* Pull context: a query is evaluated together with the access rules, and
   the Skip index prunes everything outside both the authorized view and
   the query scope. This example compares the layouts (TC: no skipping,
   TCS: sizes only, TCSBR: the full Skip index) on the same query — a
   small ablation of the paper's Section 4 design.

   Run with:  dune exec examples/streaming_query.exe *)

module Writer = Xmlac_xml.Writer
module Layout = Xmlac_skip_index.Layout
module Session = Xmlac_soe.Session
module Channel = Xmlac_soe.Channel
module Cost_model = Xmlac_soe.Cost_model
module Evaluator = Xmlac_core.Evaluator
module W = Xmlac_workload

let () =
  let doc = W.Hospital.generate_sized ~seed:7 ~target_bytes:300_000 () in
  let policy = W.Profiles.doctor ~user:W.Hospital.full_time_physician in
  let query = W.Profiles.age_query ~threshold:60 in
  Printf.printf
    "Doctor view ∩ query %s over a %d KB hospital document\n\n"
    (Xmlac_xpath.Parse.to_string query)
    (String.length (Writer.tree_to_string doc) / 1024);

  let config = Session.default_config () in
  Printf.printf "%-7s %10s %10s %10s %10s %10s\n" "Layout" "enc(KB)" "read(KB)"
    "time(s)" "skips" "result(KB)";
  let results =
    List.map
      (fun layout ->
        let published = Session.publish config ~layout doc in
        let m = Session.evaluate ~query config published policy in
        Printf.printf "%-7s %10.1f %10.1f %10.2f %10d %10.1f\n"
          (Layout.to_string layout)
          (float_of_int published.Session.encoded_bytes /. 1024.)
          (float_of_int m.Session.counters.Channel.bytes_to_soe /. 1024.)
          m.Session.breakdown.Cost_model.total_s
          (m.Session.eval.Evaluator.open_skips + m.Session.eval.Evaluator.rest_skips)
          (float_of_int m.Session.result_bytes /. 1024.);
        Writer.events_to_string m.Session.events)
      [ Layout.Tc; Layout.Tcs; Layout.Tcsb; Layout.Tcsbr ]
  in
  (match results with
  | first :: rest when List.for_all (String.equal first) rest ->
      print_endline "\nAll layouts deliver byte-identical results;"
  | _ -> print_endline "\n!!! layouts disagree (this must not happen);");
  print_endline "only the cost changes: sizes enable skipping, bitmaps make";
  print_endline "skipping decisions fire early (DescTag filtering), and the";
  print_endline "recursive encoding keeps the index small.";

  (* The pending-predicate machinery at work: a predicate seen *after* the
     subtree it conditions. *)
  print_endline "\n--- Pending predicates ---";
  let published = Session.publish config ~layout:Layout.Tcsbr doc in
  let researcher = W.Profiles.researcher () in
  let m = Session.evaluate config published researcher in
  Printf.printf
    "researcher run: %d subtrees skipped pending, %d read back once their\n\
     condition resolved, %d pending output items buffered at peak\n"
    m.Session.eval.Evaluator.pending_subtrees
    m.Session.eval.Evaluator.readback_subtrees
    m.Session.eval.Evaluator.pending_items_peak
