lib/core/ara.ml: Array Fmt List Printf Rule String Xmlac_xpath
