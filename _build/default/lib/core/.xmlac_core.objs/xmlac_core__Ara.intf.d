lib/core/ara.mli: Format Rule Xmlac_xpath
