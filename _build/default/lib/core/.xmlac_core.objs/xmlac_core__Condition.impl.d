lib/core/condition.ml: Fmt List
