lib/core/condition.mli: Format
