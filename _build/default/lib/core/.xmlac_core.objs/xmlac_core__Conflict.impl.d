lib/core/conflict.ml: Array Condition List
