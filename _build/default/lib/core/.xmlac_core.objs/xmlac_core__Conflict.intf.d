lib/core/conflict.mli:
