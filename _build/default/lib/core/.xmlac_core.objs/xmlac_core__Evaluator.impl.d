lib/core/evaluator.ml: Ara Array Buffer Condition Conflict Hashtbl Input Lazy List Option Policy Rule Set String Xmlac_xml Xmlac_xpath
