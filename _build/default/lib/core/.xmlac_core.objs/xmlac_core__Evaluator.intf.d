lib/core/evaluator.mli: Conflict Input Policy Rule Xmlac_xml Xmlac_xpath
