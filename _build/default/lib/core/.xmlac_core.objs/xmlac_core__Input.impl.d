lib/core/input.ml: Xmlac_skip_index Xmlac_xml
