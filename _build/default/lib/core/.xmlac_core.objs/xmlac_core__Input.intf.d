lib/core/input.mli: Xmlac_skip_index Xmlac_xml
