lib/core/oracle.ml: List Option Policy Rule Set Xmlac_xml Xmlac_xpath
