lib/core/oracle.mli: Policy Xmlac_xml Xmlac_xpath
