lib/core/policy.ml: Fmt List Printf Result Rule String Xmlac_xpath
