lib/core/rule.ml: Fmt Xmlac_xpath
