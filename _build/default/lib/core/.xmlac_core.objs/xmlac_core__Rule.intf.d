lib/core/rule.mli: Format Xmlac_xpath
