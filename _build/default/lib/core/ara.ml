module Ast = Xmlac_xpath.Ast

type label = Tag of string | Star
type source = Rule_src of Rule.t | Query_src of Ast.t

type pstep = { p_label : label; p_descend : bool }

type pred = {
  pred_id : int;
  psteps : pstep array;
  pcondition : (Ast.comparison * Ast.literal) option;
}

type nstep = { n_label : label; n_descend : bool; anchors : int list }

type t = {
  ara_id : int;
  source : source;
  nsteps : nstep array;
  preds : pred array;
}

let label_of_test = function Ast.Wildcard -> Star | Ast.Name n -> Tag n

let check_no_user (path : Ast.t) id =
  let pred_has_user (p : Ast.predicate) =
    match p.condition with Some (_, Ast.User) -> true | _ -> false
  in
  let has_user =
    List.exists
      (fun (s : Ast.step) -> List.exists pred_has_user s.predicates)
      path.steps
  in
  if has_user then
    invalid_arg
      (Printf.sprintf "Ara.compile: rule %s has an unresolved USER literal" id)

let compile ~ara_id source =
  let path, id =
    match source with
    | Rule_src r -> (r.Rule.path, r.Rule.id)
    | Query_src q -> (q, "query")
  in
  if not (Ast.is_linear path) then
    invalid_arg
      (Printf.sprintf
         "Ara.compile: %s has nested predicates (not supported in streaming)"
         id);
  check_no_user path id;
  let preds = ref [] in
  let next_pred = ref 0 in
  let nsteps =
    List.map
      (fun (s : Ast.step) ->
        let anchors =
          List.map
            (fun (p : Ast.predicate) ->
              let pid = !next_pred in
              incr next_pred;
              preds :=
                {
                  pred_id = pid;
                  psteps =
                    Array.of_list
                      (List.map
                         (fun (ps : Ast.step) ->
                           {
                             p_label = label_of_test ps.test;
                             p_descend = ps.axis = Ast.Descendant;
                           })
                         p.path);
                  pcondition = p.condition;
                }
                :: !preds;
              pid)
            s.predicates
        in
        {
          n_label = label_of_test s.test;
          n_descend = s.axis = Ast.Descendant;
          anchors;
        })
      path.steps
    |> Array.of_list
  in
  {
    ara_id;
    source;
    nsteps;
    preds = Array.of_list (List.rev !preds);
  }

let is_query t = match t.source with Query_src _ -> true | Rule_src _ -> false

let sign t =
  match t.source with Rule_src r -> r.Rule.sign | Query_src _ -> Rule.Permit

let rule_id t =
  match t.source with Rule_src r -> r.Rule.id | Query_src _ -> "<query>"

let nav_length t = Array.length t.nsteps

let labels_from steps ~from_state get_label =
  let acc = ref [] in
  for i = from_state to Array.length steps - 1 do
    match get_label steps.(i) with
    | Tag n -> acc := n :: !acc
    | Star -> ()
  done;
  List.sort_uniq String.compare !acc

let remaining_nav_labels t ~from_state =
  labels_from t.nsteps ~from_state (fun (s : nstep) -> s.n_label)

let remaining_pred_labels p ~from_state =
  labels_from p.psteps ~from_state (fun (s : pstep) -> s.p_label)

let pp_label ppf = function
  | Tag n -> Fmt.string ppf n
  | Star -> Fmt.string ppf "*"

let pp ppf t =
  Fmt.pf ppf "ARA %s:" (rule_id t);
  Array.iter
    (fun s ->
      Fmt.pf ppf " %s%a%s"
        (if s.n_descend then "//" else "/")
        pp_label s.n_label
        (match s.anchors with [] -> "" | l -> Printf.sprintf "[%d preds]" (List.length l)))
    t.nsteps
