(** Access Rule Automata (paper Section 3.1): the non-deterministic
    automaton compiled from each rule's (or query's) XPath expression. The
    navigational path is a chain of states; predicate paths branch off the
    state their step anchors at. The descendant axis becomes a self-loop on
    the source state, realized by the evaluator keeping tokens alive across
    stack levels. *)

type label = Tag of string | Star

type source = Rule_src of Rule.t | Query_src of Xmlac_xpath.Ast.t

type pstep = { p_label : label; p_descend : bool }

type pred = {
  pred_id : int;  (** index within the owning automaton *)
  psteps : pstep array;
  pcondition : (Xmlac_xpath.Ast.comparison * Xmlac_xpath.Ast.literal) option;
}

type nstep = {
  n_label : label;
  n_descend : bool;  (** the axis {e into} this step *)
  anchors : int list;  (** predicate ids anchored after matching this step *)
}

type t = {
  ara_id : int;  (** unique within a compiled policy *)
  source : source;
  nsteps : nstep array;
  preds : pred array;
}

val compile : ara_id:int -> source -> t
(** @raise Invalid_argument on non-linear predicates or unresolved USER
    literals (resolve the policy first). *)

val is_query : t -> bool
val sign : t -> Rule.sign
(** The rule's sign; queries report [Permit]. *)

val rule_id : t -> string

val nav_length : t -> int

val remaining_nav_labels : t -> from_state:int -> string list
(** Concrete labels still to be matched by the navigational path after
    [from_state] steps have been matched — the [RemainingLabels] of the
    paper's SkipSubtree test (wildcards impose no label). *)

val remaining_pred_labels : pred -> from_state:int -> string list

val pp : Format.formatter -> t -> unit
