type value = True | False | Unknown

type atom = { id : int; mutable resolution : t option }

and t =
  | Const of bool
  | Atom of atom
  | And of t list
  | Or of t list
  | Not of t

let tru = Const true
let fls = Const false
let of_bool b = Const b

let counter = ref 0

let atom () =
  incr counter;
  { id = !counter; resolution = None }

let atom_expr a = Atom a
let is_resolved a = a.resolution <> None

let resolve a e = if a.resolution = None then a.resolution <- Some e

(* Constructors with cheap simplification; full evaluation happens lazily in
   [eval] because atoms resolve over time. *)
let conj es =
  let es = List.filter (fun e -> e <> Const true) es in
  if List.exists (fun e -> e = Const false) es then Const false
  else match es with [] -> Const true | [ e ] -> e | es -> And es

let disj es =
  let es = List.filter (fun e -> e <> Const false) es in
  if List.exists (fun e -> e = Const true) es then Const true
  else match es with [] -> Const false | [ e ] -> e | es -> Or es

let neg = function
  | Const b -> Const (not b)
  | Not e -> e
  | e -> Not e

let rec eval = function
  | Const true -> True
  | Const false -> False
  | Atom a -> ( match a.resolution with None -> Unknown | Some e -> eval e)
  | Not e -> (
      match eval e with True -> False | False -> True | Unknown -> Unknown)
  | And es ->
      List.fold_left
        (fun acc e ->
          match (acc, eval e) with
          | False, _ | _, False -> False
          | Unknown, _ | _, Unknown -> Unknown
          | True, True -> True)
        True es
  | Or es ->
      List.fold_left
        (fun acc e ->
          match (acc, eval e) with
          | True, _ | _, True -> True
          | Unknown, _ | _, Unknown -> Unknown
          | False, False -> False)
        False es

let decided e =
  match eval e with True -> Some true | False -> Some false | Unknown -> None

let rec pp ppf = function
  | Const b -> Fmt.bool ppf b
  | Atom a -> (
      match a.resolution with
      | None -> Fmt.pf ppf "?%d" a.id
      | Some e -> Fmt.pf ppf "?%d=%a" a.id pp e)
  | And es -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " ∧ ") pp) es
  | Or es -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any " ∨ ") pp) es
  | Not e -> Fmt.pf ppf "¬%a" pp e
