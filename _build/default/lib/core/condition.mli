(** Three-valued delivery conditions.

    The delivery of a document node may depend on {e pending predicates}
    (paper Section 5): a predicate instance whose outcome is unknown when
    the node is parsed. Each such instance is an {!atom}; the node's
    delivery condition is an expression over atoms, evaluated in Kleene
    three-valued logic. An atom is resolved exactly once: to [true], to
    [false] (when its anchor scope closes unsatisfied), or — for query
    predicates, which range over the {e authorized view} — to another
    expression (the delivery condition of the node that satisfied it). *)

type atom
type t

type value = True | False | Unknown

val tru : t
val fls : t
val of_bool : bool -> t

val atom : unit -> atom
(** A fresh unresolved atom. *)

val atom_expr : atom -> t
val is_resolved : atom -> bool

val resolve : atom -> t -> unit
(** Resolve an atom (no-op if already resolved — the first resolution wins,
    matching "an instance of the predicate was found true elsewhere"). *)

val conj : t list -> t
val disj : t list -> t
val neg : t -> t

val eval : t -> value
(** Kleene evaluation under the current atom resolutions. *)

val decided : t -> bool option
(** [Some b] once {!eval} is no longer [Unknown]. *)

val pp : Format.formatter -> t -> unit
