type status =
  | Positive_active
  | Positive_pending
  | Negative_active
  | Negative_pending

type decision = Permit | Deny | Pending

(* Figure 4, with AS[0] the implicit closed policy. [levels] comes ordered
   shallow-to-deep; the recursion starts from the deepest level. *)
let decide_node levels =
  let stack = Array.of_list ([] :: levels) in
  (* stack.(0) plays AS[0] *)
  let mem s depth = List.mem s stack.(depth) in
  let rec decide depth =
    if depth = 0 then Deny (* line 1: closed policy *)
    else if mem Negative_active depth then Deny (* line 2 *)
    else if mem Positive_active depth && not (mem Negative_pending depth) then
      Permit (* lines 3-4 *)
    else
      match decide (depth - 1) with
      | Permit
        when List.for_all
               (fun s -> s = Positive_active || s = Positive_pending)
               stack.(depth) ->
          (* lines 5-6: only positive statuses here, and the level below
             already permits: pending resolutions cannot change the outcome *)
          Permit
      | Deny
        when (not (mem Positive_pending depth))
             && not (mem Positive_active depth) ->
          (* lines 7-8: no positive rule at this level could overturn the
             denial (a positive-active one could, if the same level's
             negative-pending rule resolves to inapplicable) *)
          Deny
      | Permit | Deny | Pending -> Pending (* line 9 *)
  in
  decide (Array.length stack - 1)

(* The evaluator's formulation: per level, delivery =
   ¬(any negative applies) ∧ ((any positive applies) ∨ delivery below). *)
let decide_node_via_conditions levels =
  let status_expr = function
    | Positive_active | Negative_active -> Condition.tru
    | Positive_pending | Negative_pending -> Condition.atom_expr (Condition.atom ())
  in
  let expr =
    List.fold_left
      (fun below level ->
        let pos, neg =
          List.partition
            (fun s -> s = Positive_active || s = Positive_pending)
            level
        in
        let pos = Condition.disj (List.map status_expr pos) in
        let neg = Condition.disj (List.map status_expr neg) in
        Condition.conj [ Condition.neg neg; Condition.disj [ pos; below ] ])
      Condition.fls levels
  in
  match Condition.eval expr with
  | Condition.True -> Permit
  | Condition.False -> Deny
  | Condition.Unknown -> Pending
