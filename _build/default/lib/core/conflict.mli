(** The paper's conflict-resolution algorithm (Figure 4), transcribed
    literally over abstract Authorization-Stack statuses.

    The streaming evaluator does not call this function: it builds an
    equivalent three-valued {!Condition.t} incrementally (which is what
    makes pending management compositional). This module exists to state —
    and property-test — that equivalence, and to decide subtrees
    (Figure 5's precondition). *)

type status =
  | Positive_active  (** ⊕ *)
  | Positive_pending  (** ⊕? *)
  | Negative_active  (** ⊖ *)
  | Negative_pending  (** ⊖? *)

type decision = Permit | Deny | Pending

val decide_node : status list list -> decision
(** [decide_node levels] — [levels] are the Authorization Stack levels from
    the shallowest (document root) to the deepest (current node); the
    implicit negative-active closed-policy rule sits below them all.
    Transcription of Figure 4. *)

val decide_node_via_conditions : status list list -> decision
(** The same decision computed by building the delivery condition the
    evaluator uses (every pending status becoming a fresh unresolved atom)
    and evaluating it in three-valued logic. Exists so tests can check it
    always equals {!decide_node}. *)
