type t = { rules : Rule.t list }

let make rules =
  let ids = List.map (fun (r : Rule.t) -> r.id) rules in
  if List.length (List.sort_uniq String.compare ids) <> List.length ids then
    invalid_arg "Policy.make: duplicate rule ids";
  { rules }

let of_specs specs =
  make (List.map (fun (id, sign, path) -> Rule.parse ~id ~sign path) specs)

let rules t = t.rules
let empty = { rules = [] }

let to_string t =
  String.concat ""
    (List.map
       (fun (r : Rule.t) ->
         Printf.sprintf "%s %s %s\n" r.id
           (match r.sign with Rule.Permit -> "+" | Rule.Deny -> "-")
           (Xmlac_xpath.Parse.to_string r.path))
       t.rules)

let of_string text =
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then Ok None
    else
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | id :: sign :: rest when rest <> [] ->
          let sign =
            match sign with
            | "+" -> Ok Rule.Permit
            | "-" -> Ok Rule.Deny
            | s -> Error (Printf.sprintf "line %d: bad sign %S" lineno s)
          in
          Result.bind sign (fun sign ->
              let path = String.concat " " rest in
              match Xmlac_xpath.Parse.path path with
              | p -> Ok (Some (Rule.make ~id ~sign p))
              | exception Xmlac_xpath.Parse.Error (msg, _) ->
                  Error (Printf.sprintf "line %d: %s" lineno msg))
      | _ -> Error (Printf.sprintf "line %d: expected '<id> <+|-> <xpath>'" lineno)
  in
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok { rules = List.rev acc }
    | line :: rest -> (
        match parse_line i line with
        | Ok None -> go (i + 1) acc rest
        | Ok (Some r) -> go (i + 1) (r :: acc) rest
        | Error e -> Error e)
  in
  match go 1 [] lines with
  | Ok p -> ( match make p.rules with p -> Ok p | exception Invalid_argument e -> Error e)
  | Error e -> Error e

let resolve_user ~user t = { rules = List.map (Rule.resolve_user ~user) t.rules }

let streaming_compatible t =
  let offending =
    List.find_opt
      (fun (r : Rule.t) -> not (Xmlac_xpath.Ast.is_linear r.path))
      t.rules
  in
  match offending with
  | None -> Ok ()
  | Some r ->
      Error
        (Printf.sprintf
           "rule %s has a nested predicate, unsupported by the streaming \
            evaluator"
           r.id)

let minimize t =
  let has_opposite sign = List.exists (fun (r : Rule.t) -> r.sign <> sign) t.rules in
  (* [r] can justify dropping [s]: same sign and r ⊇ s, and either they are
     exact duplicates (always safe) or no opposite-sign rule exists that
     could make the containment-based elimination unsound (the paper's
     strong condition, taken conservatively). *)
  let keeps (r : Rule.t) (s : Rule.t) =
    r.id <> s.id && r.sign = s.sign
    && Xmlac_xpath.Containment.contains r.path s.path
    && (Xmlac_xpath.Ast.equal r.path s.path || not (has_opposite s.sign))
  in
  (* remove one rule at a time against the currently-kept set, until no rule
     is removable; one-at-a-time prevents two equal rules from removing each
     other *)
  let rec go kept removed =
    match
      List.find_opt (fun s -> List.exists (fun r -> keeps r s) kept) kept
    with
    | None -> (kept, List.rev removed)
    | Some s ->
        go (List.filter (fun (r : Rule.t) -> r.id <> s.id) kept) (s :: removed)
  in
  let kept, removed = go t.rules [] in
  ({ rules = kept }, removed)

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list Rule.pp) t.rules
