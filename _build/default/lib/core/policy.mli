(** Access control policies: the set of rules attached to a (subject,
    document) pair. The policy is {e closed}: any node not covered by a rule
    is denied. *)

type t

val make : Rule.t list -> t
(** Rule ids must be distinct. @raise Invalid_argument otherwise. *)

val of_specs : (string * Rule.sign * string) list -> t
(** [(id, sign, xpath)] triples. @raise Xmlac_xpath.Parse.Error *)

val of_string : string -> (t, string) result
(** Parse the textual policy format: one rule per line,
    [<id> <+|-> <xpath>]; blank lines and [#]-comments ignored. Inverse of
    {!to_string}. *)

val to_string : t -> string

val rules : t -> Rule.t list
val empty : t
val resolve_user : user:string -> t -> t

val streaming_compatible : t -> (unit, string) result
(** The streaming evaluator supports linear predicates only (no predicate
    nested inside a predicate path — the shape of the paper's Access Rule
    Automata). [Error reason] names the offending rule. *)

val minimize : t -> t * Rule.t list
(** Static optimization (paper Section 3.3): drop rules that provably cannot
    change any decision — exact duplicates of a same-sign rule, and rules
    contained in a same-sign rule when the policy has no opposite-sign rule
    that could interfere. Conservative: uses the sound containment test.
    Returns the reduced policy and the eliminated rules. *)

val pp : Format.formatter -> t -> unit
