type sign = Permit | Deny

type t = { id : string; sign : sign; path : Xmlac_xpath.Ast.t }

let make ~id ~sign path = { id; sign; path }
let parse ~id ~sign s = { id; sign; path = Xmlac_xpath.Parse.path s }

let resolve_user ~user t =
  { t with path = Xmlac_xpath.Ast.resolve_user ~user t.path }

let sign_to_string = function Permit -> "+" | Deny -> "-"

let pp ppf t =
  Fmt.pf ppf "%s: %s%s" t.id (sign_to_string t.sign)
    (Xmlac_xpath.Parse.to_string t.path)
