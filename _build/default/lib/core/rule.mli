(** Access control rules: the paper's 3-uple <sign, subject, object> with
    the subject factored out into the enclosing {!Policy.t} (a policy is
    the set of rules attached to one subject for one document). *)

type sign = Permit | Deny

type t = {
  id : string;  (** e.g. "D2" in the paper's examples *)
  sign : sign;
  path : Xmlac_xpath.Ast.t;  (** the rule's object, in XP{[],*,//} *)
}

val make : id:string -> sign:sign -> Xmlac_xpath.Ast.t -> t

val parse : id:string -> sign:sign -> string -> t
(** Parse the object from its XPath syntax. @raise Xmlac_xpath.Parse.Error *)

val resolve_user : user:string -> t -> t
val sign_to_string : sign -> string
val pp : Format.formatter -> t -> unit
