lib/crypto/des.mli: Bytes
