lib/crypto/merkle.ml: Array Hashtbl List Option Sha1
