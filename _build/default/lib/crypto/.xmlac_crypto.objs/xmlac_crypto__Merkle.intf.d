lib/crypto/merkle.mli:
