lib/crypto/modes.ml: Bytes Des Int64 String
