lib/crypto/modes.mli: Des
