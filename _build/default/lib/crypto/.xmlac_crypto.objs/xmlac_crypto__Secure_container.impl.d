lib/crypto/secure_container.ml: Array Buffer Bytes Char Int64 Merkle Modes Printf Sha1 String
