lib/crypto/secure_container.mli: Des
