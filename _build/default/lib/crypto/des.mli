(** DES and Triple-DES (FIPS 46-3), implemented from scratch.

    The paper encrypts documents with hardwired 3DES on the smart card; here
    the block cipher is software but the SOE cost model charges decrypted
    bytes at the paper's Table 1 rates, so its wall-clock speed never enters
    reported results. The implementation is table-driven (combined S+P
    lookup tables) and validated against FIPS test vectors. *)

val block_size : int
(** 8 bytes. *)

type key

val key_of_string : string -> key
(** [key_of_string k] expands an 8-byte key (parity bits ignored).
    @raise Invalid_argument if [k] is not 8 bytes. *)

val encrypt_block : key -> int64 -> int64
val decrypt_block : key -> int64 -> int64

val block_of_bytes : string -> pos:int -> int64
(** Big-endian load of 8 bytes. *)

val block_to_bytes : Bytes.t -> pos:int -> int64 -> unit

(** Triple DES in EDE mode with three independent subkeys. *)
module Triple : sig
  type key

  val key_of_string : string -> key
  (** 24-byte key = k1 ‖ k2 ‖ k3; 8-byte and 16-byte keys are also accepted
      (k1=k2=k3, resp. k3=k1). @raise Invalid_argument otherwise. *)

  val encrypt_block : key -> int64 -> int64
  val decrypt_block : key -> int64 -> int64
end
