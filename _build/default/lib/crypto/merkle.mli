(** Merkle hash tree over the fragments of a chunk (paper Appendix A,
    Figure F1). The terminal — untrusted but cooperative — computes the
    hashes of the fragments the SOE does not read and the internal nodes
    derivable from them; the SOE hashes only the fragments it actually
    reads and recombines up to the root, which it compares against the
    decrypted ChunkDigest.

    The fragment count of a chunk must be a power of two. Internal nodes
    hash the concatenation of their children's hashes. *)

type node = { level : int; index : int }
(** [level] 0 is the leaves; the root of a tree over [m] leaves is at level
    [log2 m], index 0. [index] counts nodes left to right within a level. *)

val root_of_leaves : string array -> string
(** Full recomputation (used when building the document).
    @raise Invalid_argument if the length is not a positive power of 2. *)

val sibling_cover : leaf_count:int -> lo:int -> hi:int -> node list
(** The internal/leaf nodes whose hashes the terminal must supply so that a
    verifier knowing only leaves [lo..hi] (inclusive) can recompute the
    root: for every ancestor of the known range, the sibling subtrees not
    overlapping it. Returned in a deterministic order. *)

val root_from_cover :
  leaf_count:int ->
  known:(int * string) list ->
  supplied:(node * string) list ->
  string option
(** Recompute the root from the known leaf hashes [(index, hash)] and the
    terminal-supplied cover. [None] if the cover is incomplete. *)

val node_hash : string array -> node -> string
(** Hash of an arbitrary tree node, recomputed from all leaves (terminal
    side). *)
