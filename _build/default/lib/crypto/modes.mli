(** Block-cipher modes of operation used by the paper (Appendix A):

    - plain ECB — leaks equal blocks, kept as the insecure baseline;
    - CBC — the classic alternative, penalizing random access;
    - positional ECB — the paper's scheme: each 8-byte block is XORed with
      its absolute position in the document before ECB encryption, so equal
      plaintexts yield different ciphertexts while any block remains
      independently decryptable. *)

type cipher = { encrypt : int64 -> int64; decrypt : int64 -> int64 }

val of_des : Des.key -> cipher
val of_triple_des : Des.Triple.key -> cipher

val ecb_encrypt : cipher -> string -> string
(** @raise Invalid_argument if the length is not a multiple of 8. *)

val ecb_decrypt : cipher -> string -> string

val cbc_encrypt : cipher -> iv:int64 -> string -> string
val cbc_decrypt : cipher -> iv:int64 -> string -> string

val positional_encrypt : cipher -> base:int -> string -> string
(** [base] is the absolute byte offset of the buffer's first byte in the
    document; it must be 8-byte aligned. *)

val positional_decrypt : cipher -> base:int -> string -> string

val positional_decrypt_sub :
  cipher -> base:int -> string -> pos:int -> len:int -> string
(** Decrypt [len] bytes at [pos] inside a ciphertext buffer whose first byte
    has absolute offset [base]; [pos] and [len] must be 8-byte aligned —
    this is the random access the positional scheme enables. *)

val pad : string -> string
(** ISO/IEC 7816-4: append 0x80 then zeros up to a multiple of 8 (always
    appends at least one byte). *)

val unpad : string -> string
(** @raise Invalid_argument on malformed padding. *)
