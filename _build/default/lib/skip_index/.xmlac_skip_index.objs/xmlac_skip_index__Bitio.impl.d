lib/skip_index/bitio.ml: Buffer Char String
