lib/skip_index/bitio.mli:
