lib/skip_index/decoder.ml: Array Bitio Dict Encoder Fun Hashtbl Layout List String Wire Xmlac_xml
