lib/skip_index/decoder.mli: Dict Encoder Layout Xmlac_xml
