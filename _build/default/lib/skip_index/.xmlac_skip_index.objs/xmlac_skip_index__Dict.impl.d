lib/skip_index/dict.ml: Array Bitio Hashtbl List String Xmlac_xml
