lib/skip_index/dict.mli: Bitio Xmlac_xml
