lib/skip_index/encoder.ml: Array Bitio Dict Fun Int Layout List Set String Wire Xmlac_xml
