lib/skip_index/encoder.mli: Bitio Dict Layout Xmlac_xml
