lib/skip_index/layout.ml:
