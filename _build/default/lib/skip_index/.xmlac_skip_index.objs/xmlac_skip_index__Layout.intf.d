lib/skip_index/layout.mli:
