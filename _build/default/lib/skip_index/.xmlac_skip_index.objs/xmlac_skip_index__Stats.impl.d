lib/skip_index/stats.ml: Encoder Float Fmt Layout List String Xmlac_xml
