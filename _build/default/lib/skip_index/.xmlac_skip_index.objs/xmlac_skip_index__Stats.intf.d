lib/skip_index/stats.mli: Format Layout Xmlac_xml
