lib/skip_index/update.ml: Decoder Dict Encoder Hashtbl Layout List String Xmlac_xml
