lib/skip_index/update.mli: Layout Xmlac_xml
