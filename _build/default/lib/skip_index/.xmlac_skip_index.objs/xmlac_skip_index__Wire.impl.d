lib/skip_index/wire.ml: Bitio
