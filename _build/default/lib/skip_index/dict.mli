(** The tag dictionary shared by all compressed layouts (paper Section 4.1:
    "the document structure is compressed thanks to a dictionary of tags").
    Tags are sorted, so a dictionary is canonical for a given tag set. *)

type t

val of_tags : string list -> t
(** Builds a dictionary from (possibly duplicated) tags. *)

val of_tree : Xmlac_xml.Tree.t -> t
val size : t -> int
val index : t -> string -> int
(** @raise Not_found for a tag outside the dictionary. *)

val index_opt : t -> string -> int option
val tag : t -> int -> string
val tags : t -> string array

val write : Bitio.Writer.t -> t -> unit
val read : Bitio.Reader.t -> t
