type t = Nc | Tc | Tcs | Tcsb | Tcsbr

let all = [ Nc; Tc; Tcs; Tcsb; Tcsbr ]

let to_string = function
  | Nc -> "NC"
  | Tc -> "TC"
  | Tcs -> "TCS"
  | Tcsb -> "TCSB"
  | Tcsbr -> "TCSBR"

let of_string = function
  | "NC" -> Some Nc
  | "TC" -> Some Tc
  | "TCS" -> Some Tcs
  | "TCSB" -> Some Tcsb
  | "TCSBR" -> Some Tcsbr
  | _ -> None

let to_byte = function Nc -> 0 | Tc -> 1 | Tcs -> 2 | Tcsb -> 3 | Tcsbr -> 4

let of_byte = function
  | 0 -> Some Nc
  | 1 -> Some Tc
  | 2 -> Some Tcs
  | 3 -> Some Tcsb
  | 4 -> Some Tcsbr
  | _ -> None

let has_sizes = function Nc | Tc -> false | Tcs | Tcsb | Tcsbr -> true
let has_bitmaps = function Tcsb | Tcsbr -> true | Nc | Tc | Tcs -> false
let recursive = function Tcsbr -> true | _ -> false
