(** The five storage layouts compared in the paper's Figure 8.

    - [Nc]: the original, non-compressed XML text;
    - [Tc]: dictionary-compressed tags, explicit closing markers;
    - [Tcs]: [Tc] + subtree sizes (closing tags dropped, skipping possible);
    - [Tcsb]: [Tcs] + a descendant-tag bitmap per intermediate element;
    - [Tcsbr]: the recursive variant of [Tcsb] — the {e Skip index}: tag
      codes, bitmaps and sizes are all encoded relative to the parent
      element's descendant-tag set and subtree size. *)

type t = Nc | Tc | Tcs | Tcsb | Tcsbr

val all : t list
val to_string : t -> string
val of_string : string -> t option
val to_byte : t -> int
val of_byte : int -> t option

val has_sizes : t -> bool
(** Whether subtrees can be skipped without parsing them. *)

val has_bitmaps : t -> bool
(** Whether elements advertise their descendant tag sets. *)

val recursive : t -> bool
