type t = {
  layout : Layout.t;
  encoded_bytes : int;
  text_bytes : int;
  structure_bytes : int;
  structure_over_text : float;
}

let measure ~layout tree =
  let encoded = Encoder.encode ~layout tree in
  let encoded_bytes = String.length encoded in
  let text_bytes = Xmlac_xml.Tree.text_bytes tree in
  let structure_bytes = encoded_bytes - text_bytes in
  {
    layout;
    encoded_bytes;
    text_bytes;
    structure_bytes;
    structure_over_text =
      (if text_bytes = 0 then Float.infinity
       else 100. *. float_of_int structure_bytes /. float_of_int text_bytes);
  }

let measure_all tree = List.map (fun layout -> measure ~layout tree) Layout.all

let pp ppf t =
  Fmt.pf ppf "%-6s %8d B encoded, %8d B text, %8d B structure (%.1f%%)"
    (Layout.to_string t.layout)
    t.encoded_bytes t.text_bytes t.structure_bytes t.structure_over_text
