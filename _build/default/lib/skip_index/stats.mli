(** Storage statistics for the Figure 8 experiment ("Index storage
    overhead"): the size of a document's structural part relative to its
    text, for each layout. *)

type t = {
  layout : Layout.t;
  encoded_bytes : int;  (** total encoded document (header + body) *)
  text_bytes : int;  (** raw text carried by the document *)
  structure_bytes : int;  (** [encoded_bytes - text_bytes] *)
  structure_over_text : float;  (** the paper's Y axis, in percent *)
}

val measure : layout:Layout.t -> Xmlac_xml.Tree.t -> t
val measure_all : Xmlac_xml.Tree.t -> t list
(** One measurement per layout, in {!Layout.all} order. *)

val pp : Format.formatter -> t -> unit
