(* Shared wire-format constants. Every node encoding starts on a byte
   frontier; its first two bits give the node kind. *)

let magic = "XSKI"

(* node kinds *)
let kind_intermediate = 0  (* element with element children *)
let kind_leaf = 1  (* element without element children *)
let kind_text = 2
let kind_close = 3  (* TC layout only: explicit closing marker *)

let text_overhead len = 1 + Bitio.varint_length len
