lib/soe/channel.ml: Array Buffer Char Hashtbl List Printf String Xmlac_crypto Xmlac_skip_index
