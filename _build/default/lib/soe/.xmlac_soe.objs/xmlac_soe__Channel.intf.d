lib/soe/channel.mli: Xmlac_crypto Xmlac_skip_index
