lib/soe/cost_model.ml: Fmt List
