lib/soe/cost_model.mli: Format
