lib/soe/license.ml: Bytes List String Xmlac_core Xmlac_crypto Xmlac_skip_index Xmlac_xpath
