lib/soe/license.mli: Xmlac_core Xmlac_crypto
