lib/soe/session.ml: Channel Cost_model String Xmlac_core Xmlac_crypto Xmlac_skip_index Xmlac_xml
