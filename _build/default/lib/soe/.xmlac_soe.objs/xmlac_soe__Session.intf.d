lib/soe/session.mli: Channel Cost_model Xmlac_core Xmlac_crypto Xmlac_skip_index Xmlac_xml Xmlac_xpath
