(** Licenses: the sealed credential bundles the paper's architecture
    assumes — "this access control policy as well as the key(s) required to
    decrypt the document can be permanently hosted by the SOE, refreshed or
    downloaded via a secure channel from different sources (trusted third
    party, security server, parent or teacher, etc)."

    A license carries, for one (subject, document) pair: the subject name,
    the access-control rules, the 24-byte 3DES document key, and an
    optional expiry. It travels sealed under a key only the issuing
    authority and the target SOE share: encrypted with positional ECB and
    authenticated with a keyed SHA-1 tag (an era-appropriate construction;
    swap in a modern AEAD for production use). *)

type t = {
  subject : string;
  rules : (string * Xmlac_core.Rule.sign * string) list;
      (** (id, sign, xpath) — [USER] literals allowed; they resolve to
          [subject] in {!policy} *)
  document_key : string;  (** 24 bytes *)
  valid_until : int option;  (** issuer-defined clock, e.g. epoch days *)
}

val make :
  ?valid_until:int ->
  subject:string ->
  document_key:string ->
  (string * Xmlac_core.Rule.sign * string) list ->
  t
(** @raise Invalid_argument if the key is not 24 bytes, or a rule does not
    parse. *)

val policy : t -> Xmlac_core.Policy.t
(** The subject's policy, USER-resolved. *)

val key : t -> Xmlac_crypto.Des.Triple.key

val is_valid_at : t -> now:int -> bool

val seal : soe_key:Xmlac_crypto.Des.Triple.key -> t -> string
(** Serialize, authenticate and encrypt. *)

val unseal :
  soe_key:Xmlac_crypto.Des.Triple.key -> string -> (t, string) result
(** Decrypt, check authenticity, deserialize. Any tampering — or the wrong
    SOE key — yields [Error]. *)
