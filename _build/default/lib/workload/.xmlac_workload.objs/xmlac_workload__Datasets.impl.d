lib/workload/datasets.ml: Array Fmt Hospital List Printf Prng String Xmlac_xml
