lib/workload/datasets.mli: Format Xmlac_xml
