lib/workload/hospital.ml: Array List Printf Prng String Xmlac_xml
