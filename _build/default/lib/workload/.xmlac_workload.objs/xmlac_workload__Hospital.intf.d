lib/workload/hospital.mli: Xmlac_xml
