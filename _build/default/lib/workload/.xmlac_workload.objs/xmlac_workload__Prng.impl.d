lib/workload/prng.ml: Array Char List Random String
