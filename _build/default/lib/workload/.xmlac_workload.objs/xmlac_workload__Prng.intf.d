lib/workload/prng.mli:
