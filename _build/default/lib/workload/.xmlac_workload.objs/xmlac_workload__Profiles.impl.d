lib/workload/profiles.ml: Hospital List Printf Xmlac_core Xmlac_xpath
