lib/workload/profiles.mli: Xmlac_core Xmlac_xpath
