lib/workload/rule_gen.ml: Array List Printf Prng String Xmlac_core Xmlac_xml Xmlac_xpath
