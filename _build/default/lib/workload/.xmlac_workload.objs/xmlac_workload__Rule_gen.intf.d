lib/workload/rule_gen.mli: Xmlac_core Xmlac_xml
