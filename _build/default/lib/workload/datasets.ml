module Tree = Xmlac_xml.Tree

type kind = Wsu | Sigmod | Treebank | Hospital_doc

let all = [ Wsu; Sigmod; Treebank; Hospital_doc ]

let name = function
  | Wsu -> "WSU"
  | Sigmod -> "Sigmod"
  | Treebank -> "Treebank"
  | Hospital_doc -> "Hospital"

let leaf tag text = Tree.element tag [ Tree.text text ]

(* WSU: very flat (max depth 4, average ~3.1), 20 tags, a mass of tiny
   elements — the paper measures its TCSBR structure at ~78% of the
   document *)
let wsu_generate rng ~courses =
  let prefixes = [| "CS"; "EE"; "MA"; "PH"; "CH"; "BI" |] in
  let course () =
    let place =
      (* the only depth-4 branch; present in roughly half the courses *)
      if Prng.bool rng then
        [
          Tree.element "place"
            [
              leaf "bldg" (String.uppercase_ascii (Prng.word rng ~min:3 ~max:4));
              leaf "room" (string_of_int (Prng.range rng 100 499));
            ];
        ]
      else []
    in
    Tree.element "course"
      ([
         leaf "prefix" (Prng.choice rng prefixes);
         leaf "crs" (string_of_int (Prng.range rng 100 599));
         leaf "lab" (if Prng.bool rng then "L" else "");
         leaf "title" (Prng.word rng ~min:4 ~max:14);
         leaf "credit" (string_of_int (Prng.range rng 1 5));
         leaf "sln" (string_of_int (Prng.range rng 10000 99999));
         leaf "limit" (string_of_int (Prng.range rng 10 300));
         leaf "enrolled" (string_of_int (Prng.range rng 0 300));
         leaf "days" (Prng.choice rng [| "MWF"; "TTh"; "MW"; "F" |]);
         leaf "start" (Printf.sprintf "%02d:30" (Prng.range rng 7 17));
         leaf "end" (Printf.sprintf "%02d:20" (Prng.range rng 8 18));
         leaf "instructor" (Prng.word rng ~min:4 ~max:9);
       ]
      @ place)
  in
  Tree.element "root" (List.init courses (fun _ -> course ()))

(* Sigmod: regular depth-6 structure with 11 tags *)
let sigmod_generate rng ~issues =
  let article () =
    Tree.element "article"
      [
        leaf "title" (Prng.sentence rng ~words:(Prng.range rng 4 10));
        leaf "initPage" (string_of_int (Prng.range rng 1 400));
        leaf "endPage" (string_of_int (Prng.range rng 1 420));
        Tree.element "authors"
          (List.init (Prng.range rng 1 4) (fun _ ->
               leaf "author"
                 (String.capitalize_ascii (Prng.word rng ~min:3 ~max:8)
                 ^ " "
                 ^ String.capitalize_ascii (Prng.word rng ~min:4 ~max:10))));
      ]
  in
  let issue () =
    Tree.element "issue"
      [
        leaf "volume" (string_of_int (Prng.range rng 1 30));
        leaf "number" (string_of_int (Prng.range rng 1 4));
        Tree.element "articles" (List.init (Prng.range rng 4 12) (fun _ -> article ()));
      ]
  in
  Tree.element "SigmodRecord" (List.init issues (fun _ -> issue ()))

(* Treebank: 250 recursive grammatical tags, deep skewed nesting. Texts
   stand in for the (encrypted) words of the real corpus. *)
let treebank_tags =
  let base =
    [| "S"; "NP"; "VP"; "PP"; "ADJP"; "ADVP"; "SBAR"; "WHNP"; "PRT"; "QP" |]
  in
  Array.init 250 (fun i ->
      if i < Array.length base then base.(i)
      else Printf.sprintf "%s_%d" base.(i mod Array.length base) (i / Array.length base))

let treebank_generate rng ~sentences =
  (* shallow side phrases hanging off a guaranteed-depth spine *)
  let rec bush depth =
    let tag = Prng.choice rng treebank_tags in
    if depth <= 1 || Prng.chance rng 0.4 then
      Tree.element tag [ Tree.text (Prng.word rng ~min:2 ~max:10) ]
    else
      Tree.element tag (List.init (Prng.range rng 1 2) (fun _ -> bush (depth - 1)))
  in
  let rec spine depth =
    let tag = Prng.choice rng treebank_tags in
    if depth <= 1 then Tree.element tag [ Tree.text (Prng.word rng ~min:2 ~max:10) ]
    else begin
      let core = spine (depth - 1) in
      let extras = List.init (Prng.int rng 2) (fun _ -> bush (Prng.range rng 1 3)) in
      Tree.element tag (if Prng.bool rng then core :: extras else extras @ [ core ])
    end
  in
  let sentence () =
    (* skewed: a few sentences are very deep, most are shallow *)
    let depth = 3 + Prng.int rng (if Prng.chance rng 0.08 then 32 else 8) in
    Tree.element "S" [ spine depth ]
  in
  Tree.element "FILE" (List.init sentences (fun _ -> sentence ()))

let bytes_of tree = String.length (Xmlac_xml.Writer.tree_to_string tree)

let scale_units ~sample_units ~sample_bytes ~target_bytes =
  max 1 (target_bytes * sample_units / max 1 sample_bytes)

let generate kind ~seed ~target_bytes =
  let rng = Prng.make ~seed in
  match kind with
  | Hospital_doc -> Hospital.generate_sized ~seed ~target_bytes ()
  | Wsu ->
      let sample = wsu_generate (Prng.make ~seed) ~courses:50 in
      let courses =
        scale_units ~sample_units:50 ~sample_bytes:(bytes_of sample) ~target_bytes
      in
      wsu_generate rng ~courses
  | Sigmod ->
      let sample = sigmod_generate (Prng.make ~seed) ~issues:20 in
      let issues =
        scale_units ~sample_units:20 ~sample_bytes:(bytes_of sample) ~target_bytes
      in
      sigmod_generate rng ~issues
  | Treebank ->
      let sample = treebank_generate (Prng.make ~seed) ~sentences:50 in
      let sentences =
        scale_units ~sample_units:50 ~sample_bytes:(bytes_of sample) ~target_bytes
      in
      treebank_generate rng ~sentences

type characteristics = {
  name : string;
  size_bytes : int;
  text_bytes : int;
  max_depth : int;
  average_depth : float;
  distinct_tags : int;
  text_nodes : int;
  elements : int;
}

let characteristics ~name tree =
  {
    name;
    size_bytes = bytes_of tree;
    text_bytes = Tree.text_bytes tree;
    max_depth = Tree.max_depth tree;
    average_depth = Tree.average_leaf_depth tree;
    distinct_tags = List.length (Tree.distinct_tags tree);
    text_nodes = Tree.count_text_nodes tree;
    elements = Tree.count_elements tree;
  }

let pp_characteristics ppf c =
  Fmt.pf ppf
    "%-9s size %7dB, text %7dB, depth max %2d avg %4.1f, %3d tags, %6d \
     texts, %6d elements"
    c.name c.size_bytes c.text_bytes c.max_depth c.average_depth
    c.distinct_tags c.text_nodes c.elements
