(** Shape-preserving synthetic stand-ins for the three real datasets of the
    paper's Table 2 (the UW XML repository is unavailable in this sealed
    environment; the experiments depend on the documents' {e shape}
    statistics, which these generators reproduce, scaled by
    [target_bytes]):

    - {e WSU} (university courses): flat (max depth 4), 20 tags, a large
      number of very small elements — structure dominates text;
    - {e Sigmod Record} (article index): regular, non-recursive, depth 6,
      11 tags;
    - {e Treebank} (tagged English sentences): 250 tags appearing
      recursively, maximum depth tens of levels, deeply skewed. *)

type kind = Wsu | Sigmod | Treebank | Hospital_doc

val all : kind list
val name : kind -> string

val generate : kind -> seed:int -> target_bytes:int -> Xmlac_xml.Tree.t

type characteristics = {
  name : string;
  size_bytes : int;  (** serialized XML size *)
  text_bytes : int;
  max_depth : int;
  average_depth : float;
  distinct_tags : int;
  text_nodes : int;
  elements : int;
}

val characteristics : name:string -> Xmlac_xml.Tree.t -> characteristics
(** The Table 2 metrics of any document. *)

val pp_characteristics : Format.formatter -> characteristics -> unit
