module Tree = Xmlac_xml.Tree

type config = {
  folders : int;
  physicians : string array;
  physician_weights : float array;
  groups : int;
  protocol_probability : float;
  acts_min : int;
  acts_max : int;
  lab_results_min : int;
  lab_results_max : int;
  cholesterol_min : int;
  cholesterol_max : int;
  comment_words : int;
}

let default_physicians =
  Array.init 50 (fun i -> Printf.sprintf "dr%02d" i)

let default_config =
  {
    folders = 200;
    physicians = default_physicians;
    (* heavy-tailed: dr00 is the full-time physician (~10% of acts), dr49
       barely practices *)
    physician_weights =
      Array.init (Array.length default_physicians) (fun i ->
          1.0 /. float_of_int (i + 4));
    groups = 10;
    protocol_probability = 0.5;
    acts_min = 1;
    acts_max = 6;
    lab_results_min = 1;
    lab_results_max = 4;
    (* the paper calls Cholesterol > 250 "a rather rare situation" *)
    cholesterol_min = 120;
    cholesterol_max = 280;
    comment_words = 12;
  }

let full_time_physician = default_physicians.(0)
let part_time_physician = default_physicians.(Array.length default_physicians - 1)

let pick_physician rng config =
  let total = Array.fold_left ( +. ) 0. config.physician_weights in
  let x = Prng.float rng total in
  let rec go i acc =
    if i >= Array.length config.physicians - 1 then config.physicians.(i)
    else
      let acc = acc +. config.physician_weights.(i) in
      if x < acc then config.physicians.(i) else go (i + 1) acc
  in
  go 0 0.

let leaf tag text = Tree.element tag [ Tree.text text ]

let date rng =
  Printf.sprintf "%04d-%02d-%02d" (Prng.range rng 1995 2004)
    (Prng.range rng 1 12) (Prng.range rng 1 28)

let group_name i = Printf.sprintf "G%d" (i + 1)

let admin rng =
  Tree.element "Admin"
    [
      leaf "SSN" (Printf.sprintf "%09d" (Prng.int rng 1_000_000_000));
      leaf "Fname" (String.capitalize_ascii (Prng.word rng ~min:3 ~max:8));
      leaf "Lname" (String.capitalize_ascii (Prng.word rng ~min:4 ~max:10));
      leaf "Age" (string_of_int (Prng.range rng 1 99));
    ]

let protocol rng config =
  Tree.element "Protocol"
    [
      leaf "Id" (Printf.sprintf "P%06d" (Prng.int rng 1_000_000));
      leaf "Type" (group_name (Prng.int rng config.groups));
      leaf "Date" (date rng);
      leaf "RPhys" (pick_physician rng config);
    ]

let act rng config =
  Tree.element "Act"
    [
      leaf "Date" (date rng);
      leaf "RPhys" (pick_physician rng config);
      Tree.element "Details"
        [
          leaf "VitalSigns"
            (Printf.sprintf "bp %d/%d pulse %d" (Prng.range rng 90 180)
               (Prng.range rng 55 110) (Prng.range rng 45 120));
          leaf "Symptoms" (Prng.sentence rng ~words:config.comment_words);
          leaf "Diagnostic" (Prng.sentence rng ~words:(config.comment_words / 2));
          leaf "Comments" (Prng.sentence rng ~words:config.comment_words);
        ];
    ]

let lab_results rng config =
  let g = Prng.int rng config.groups in
  Tree.element "LabResults"
    [
      leaf "RPhys" (pick_physician rng config);
      Tree.element (group_name g)
        [
          leaf "Cholesterol"
            (string_of_int (Prng.range rng config.cholesterol_min config.cholesterol_max));
          leaf "Hdl" (string_of_int (Prng.range rng 25 95));
          leaf "Ldl" (string_of_int (Prng.range rng 60 220));
          leaf "Notes" (Prng.sentence rng ~words:(config.comment_words / 2));
        ];
    ]

let folder rng config =
  let protocols =
    if Prng.chance rng config.protocol_probability then
      List.init (Prng.range rng 1 2) (fun _ -> protocol rng config)
    else []
  in
  let acts =
    List.init (Prng.range rng config.acts_min config.acts_max) (fun _ ->
        act rng config)
  in
  let labs =
    List.init
      (Prng.range rng config.lab_results_min config.lab_results_max)
      (fun _ -> lab_results rng config)
  in
  Tree.element "Folder"
    ([ admin rng ] @ protocols
    @ [ Tree.element "MedActs" acts; Tree.element "Analysis" labs ])

let generate ?(config = default_config) ~seed () =
  let rng = Prng.make ~seed in
  Tree.element "Hospital"
    (List.init config.folders (fun _ -> folder rng config))

let generate_sized ?(config = default_config) ~seed ~target_bytes () =
  (* estimate bytes per folder from a small sample, then generate *)
  let sample = generate ~config:{ config with folders = 20 } ~seed () in
  let sample_bytes =
    String.length (Xmlac_xml.Writer.tree_to_string sample)
  in
  let per_folder = max 1 (sample_bytes / 20) in
  let folders = max 1 (target_bytes / per_folder) in
  generate ~config:{ config with folders } ~seed ()
