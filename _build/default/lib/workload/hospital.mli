(** Synthetic generator for the paper's motivating Hospital document
    (Figure 1). The paper generated its content with ToXgene ("real datasets
    are very difficult to obtain in this area"); this is the equivalent
    OCaml generator.

    Schema (element names follow Figure 1 and the rule examples):
    {v
      Hospital
        Folder*
          Admin (SSN, Fname, Lname, Age)
          Protocol*           — 0..protocols_max per folder
            (Id, Type = G1..Gn, Date, RPhys)
          MedActs
            Act*              — Date, RPhys, Details (VitalSigns, Symptoms,
                                 Diagnostic, Comments)
          Analysis
            LabResults*       — RPhys, then one group element Gk holding
                                 Cholesterol and other measurements
    v}

    Physicians are drawn from a skewed distribution so that "full-time" and
    "part-time" doctor profiles (Figure 10) see many resp. few matching
    acts. *)

type config = {
  folders : int;
  physicians : string array;
  physician_weights : float array;  (** same length; need not be normalized *)
  groups : int;  (** number of protocol groups G1..Gn (the paper uses 10) *)
  protocol_probability : float;  (** chance a folder holds >= 1 protocol *)
  acts_min : int;
  acts_max : int;
  lab_results_min : int;
  lab_results_max : int;
  cholesterol_min : int;
  cholesterol_max : int;
  comment_words : int;  (** verbosity of free-text fields *)
}

val default_config : config
(** 50 physicians (heavy-tailed), 10 groups, 1–6 acts, 1–4 lab results,
    cholesterol in 120..280 (the paper calls exceeding 250 "rather
    rare"). *)

val generate : ?config:config -> seed:int -> unit -> Xmlac_xml.Tree.t

val generate_sized : ?config:config -> seed:int -> target_bytes:int -> unit -> Xmlac_xml.Tree.t
(** Adjusts the folder count so the serialized document is roughly
    [target_bytes] long. *)

val full_time_physician : string
(** The physician owning the largest share of acts. *)

val part_time_physician : string
(** The physician owning the smallest share. *)
