type t = Random.State.t

let make ~seed = Random.State.make [| seed; 0x5eed; seed * 7919 |]
let int t n = Random.State.int t n
let range t lo hi = lo + Random.State.int t (hi - lo + 1)
let float t x = Random.State.float t x
let bool t = Random.State.bool t
let chance t p = Random.State.float t 1.0 < p
let choice t arr = arr.(Random.State.int t (Array.length arr))

let word t ~min ~max =
  let len = range t min max in
  String.init len (fun _ -> Char.chr (Char.code 'a' + int t 26))

let sentence t ~words =
  String.concat " " (List.init words (fun _ -> word t ~min:2 ~max:9))
