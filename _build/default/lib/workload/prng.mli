(** Deterministic pseudo-random generation for workloads: every generator in
    this library is a pure function of its seed, so experiments are
    reproducible run to run. *)

type t

val make : seed:int -> t
val int : t -> int -> int
(** [int t n] — uniform in [0, n). *)

val range : t -> int -> int -> int
(** [range t lo hi] — uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choice : t -> 'a array -> 'a
val word : t -> min:int -> max:int -> string
(** A lowercase pseudo-word. *)

val sentence : t -> words:int -> string
