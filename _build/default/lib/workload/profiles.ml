module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule

let secretary = Policy.of_specs [ ("S1", Rule.Permit, "//Admin") ]

let doctor ~user =
  Policy.resolve_user ~user
    (Policy.of_specs
       [
         ("D1", Rule.Permit, "//Folder/Admin");
         ("D2", Rule.Permit, "//MedActs[//RPhys = USER]");
         ("D3", Rule.Deny, "//Act[RPhys != USER]/Details");
         ("D4", Rule.Permit, "//Folder[MedActs//RPhys = USER]/Analysis");
       ])

let researcher ?(groups = [ 3 ]) () =
  let base = [ ("R1", Rule.Permit, "//Folder[Protocol]//Age") ] in
  let per_group =
    List.concat_map
      (fun k ->
        let g = Printf.sprintf "G%d" k in
        [
          ( Printf.sprintf "R2-%s" g,
            Rule.Permit,
            Printf.sprintf "//Folder[Protocol/Type = %s]//LabResults//%s" g g );
          ( Printf.sprintf "R3-%s" g,
            Rule.Deny,
            Printf.sprintf "//%s[Cholesterol > 250]" g );
        ])
      groups
  in
  Policy.of_specs (base @ per_group)

type view =
  | Sec
  | Part_time_doctor
  | Full_time_doctor
  | Junior_researcher
  | Senior_researcher

let all_views =
  [ Sec; Part_time_doctor; Full_time_doctor; Junior_researcher; Senior_researcher ]

let view_name = function
  | Sec -> "Sec"
  | Part_time_doctor -> "PTD"
  | Full_time_doctor -> "FTD"
  | Junior_researcher -> "JR"
  | Senior_researcher -> "SR"

let view_policy = function
  | Sec -> secretary
  | Part_time_doctor -> doctor ~user:Hospital.part_time_physician
  | Full_time_doctor -> doctor ~user:Hospital.full_time_physician
  | Junior_researcher -> researcher ~groups:[ 3; 7 ] ()
  | Senior_researcher -> researcher ~groups:[ 1; 2; 3; 4; 5; 6; 7; 8 ] ()

let age_query ~threshold =
  Xmlac_xpath.Parse.path (Printf.sprintf "//Folder[//Age > %d]" threshold)
