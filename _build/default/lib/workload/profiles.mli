(** The access-control profiles of the paper's motivating example (Figure 1)
    and the five query views of Figure 10, targeting the {!Hospital}
    document. *)

val secretary : Xmlac_core.Policy.t
(** S1: ⊕ //Admin *)

val doctor : user:string -> Xmlac_core.Policy.t
(** D1: ⊕ //Folder/Admin; D2: ⊕ //MedActs\[//RPhys = USER\];
    D3: ⊖ //Act\[RPhys != USER\]/Details;
    D4: ⊕ //Folder\[MedActs//RPhys = USER\]/Analysis — with USER resolved. *)

val researcher : ?groups:int list -> unit -> Xmlac_core.Policy.t
(** R1: ⊕ //Folder\[Protocol\]//Age and, for every group [k] in [groups]
    (default [\[3\]], the paper's G3):
    R2k: ⊕ //Folder\[Protocol/Type = Gk\]//LabResults//Gk;
    R3k: ⊖ //Gk\[Cholesterol > 250\].
    The Figure 9 "complex" researcher uses [groups = \[1..10\]]. *)

(** The five views of Figure 10. *)
type view = Sec | Part_time_doctor | Full_time_doctor | Junior_researcher | Senior_researcher

val all_views : view list
val view_name : view -> string
val view_policy : view -> Xmlac_core.Policy.t

val age_query : threshold:int -> Xmlac_xpath.Ast.t
(** Figure 10's query //Folder\[//Age > v\]. *)
