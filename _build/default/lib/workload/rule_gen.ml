module Tree = Xmlac_xml.Tree
module Ast = Xmlac_xpath.Ast
module Rule = Xmlac_core.Rule

type config = {
  rules : int;
  deny_fraction : float;
  descendant_fraction : float;
  wildcard_fraction : float;
  predicate_fraction : float;
}

let default_config =
  {
    rules = 8;
    deny_fraction = 0.25;
    descendant_fraction = 0.4;
    wildcard_fraction = 0.1;
    predicate_fraction = 0.4;
  }

(* Sample a random root-to-element tag path by walking down the tree. *)
let sample_path rng tree =
  let rec walk node acc =
    let elements =
      List.filter
        (function Tree.Element _ -> true | Tree.Text _ -> false)
        (Tree.children node)
    in
    let acc =
      match Tree.tag node with Some t -> t :: acc | None -> acc
    in
    if elements = [] || Prng.chance rng 0.35 then List.rev acc
    else walk (Prng.choice rng (Array.of_list elements)) acc
  in
  walk tree []

(* Candidate predicate: an existence or value test on a child leaf of the
   last element of the path. *)
let sample_predicate rng tree tags =
  let rec descend node = function
    | [] -> Some node
    | tag :: rest -> (
        match
          List.find_opt
            (fun c -> Tree.tag c = Some tag)
            (Tree.children node)
        with
        | Some child -> descend child rest
        | None -> None)
  in
  match descend tree (List.tl tags) with
  | None -> None
  | Some node -> (
      let leaf_children =
        List.filter_map
          (fun c ->
            match c with
            | Tree.Element { tag; children = [ Tree.Text v ]; _ } -> Some (tag, v)
            | _ -> None)
          (Tree.children node)
      in
      match leaf_children with
      | [] -> None
      | _ ->
          let tag, v = Prng.choice rng (Array.of_list leaf_children) in
          let step = { Ast.axis = Ast.Child; test = Ast.Name tag; predicates = [] } in
          let condition =
            if Prng.chance rng 0.5 then None
            else
              match float_of_string_opt (String.trim v) with
              | Some n ->
                  Some
                    ( Prng.choice rng [| Ast.Eq; Ast.Gt; Ast.Le; Ast.Neq |],
                      Ast.Number n )
              | None -> Some (Ast.Eq, Ast.String (String.trim v))
          in
          Some { Ast.path = [ step ]; condition })

let path_of_tags rng config tree tags =
  let n = List.length tags in
  (* keep a random suffix of the full path, starting with // *)
  let start = if n <= 1 then 0 else Prng.int rng n in
  let suffix = List.filteri (fun i _ -> i >= start) tags in
  let steps =
    List.mapi
      (fun i tag ->
        let axis =
          if i = 0 && start > 0 then Ast.Descendant
          else if Prng.chance rng config.descendant_fraction then Ast.Descendant
          else Ast.Child
        in
        let test =
          if i < List.length suffix - 1 && Prng.chance rng config.wildcard_fraction
          then Ast.Wildcard
          else Ast.Name tag
        in
        { Ast.axis; test; predicates = [] })
      suffix
  in
  let steps =
    match steps with
    | [] -> [ { Ast.axis = Ast.Descendant; test = Ast.Wildcard; predicates = [] } ]
    | first :: rest ->
        let first =
          if start = 0 && first.Ast.axis = Ast.Child then first
          else { first with Ast.axis = Ast.Descendant }
        in
        first :: rest
  in
  let steps =
    if Prng.chance rng config.predicate_fraction then
      match sample_predicate rng tree tags with
      | Some p ->
          let rec attach_last = function
            | [] -> []
            | [ last ] -> [ { last with Ast.predicates = [ p ] } ]
            | s :: tl -> s :: attach_last tl
          in
          attach_last steps
      | None -> steps
    else steps
  in
  { Ast.steps }

let generate ?(config = default_config) ~seed tree =
  let rng = Prng.make ~seed in
  let rules =
    List.init config.rules (fun i ->
        let tags = sample_path rng tree in
        let path = path_of_tags rng config tree tags in
        let sign =
          if i > 0 && Prng.chance rng config.deny_fraction then Rule.Deny
          else Rule.Permit
        in
        Rule.make ~id:(Printf.sprintf "RND%d" i) ~sign path)
  in
  Xmlac_core.Policy.make rules
