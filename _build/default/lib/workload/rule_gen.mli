(** Random access-control rule generation for the Figure 12 experiment
    ("for these documents we generated random access rules (including //
    and predicates)"). Rules are derived from paths that actually occur in
    the document, so they have non-trivial selectivity. *)

type config = {
  rules : int;
  deny_fraction : float;  (** share of negative rules *)
  descendant_fraction : float;  (** chance a step uses [//] *)
  wildcard_fraction : float;  (** chance a step is a wildcard *)
  predicate_fraction : float;  (** chance a rule carries one predicate *)
}

val default_config : config
(** 8 rules (the paper's Treebank policy size), 25% negative. *)

val generate :
  ?config:config -> seed:int -> Xmlac_xml.Tree.t -> Xmlac_core.Policy.t
(** Rules built from randomly sampled document paths. The result is always
    streaming-compatible (linear predicates only). *)
