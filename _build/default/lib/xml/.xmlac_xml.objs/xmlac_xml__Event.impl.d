lib/xml/event.ml: Fmt List Stdlib String
