lib/xml/parser.ml: Buffer Char Event List Printf String
