lib/xml/parser.mli: Event
