lib/xml/tree.ml: Event Fmt List Parser Set String
