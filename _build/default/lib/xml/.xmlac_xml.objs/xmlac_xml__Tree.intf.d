lib/xml/tree.mli: Event Format
