type attribute = { name : string; value : string }

type t =
  | Start of { tag : string; attributes : attribute list }
  | Text of string
  | End of string

let start ?(attributes = []) tag = Start { tag; attributes }
let text s = Text s
let end_ tag = End tag

let tag = function
  | Start { tag; _ } -> Some tag
  | End tag -> Some tag
  | Text _ -> None

let equal a b =
  match (a, b) with
  | Start a, Start b ->
      String.equal a.tag b.tag
      && List.length a.attributes = List.length b.attributes
      && List.for_all2
           (fun x y -> String.equal x.name y.name && String.equal x.value y.value)
           a.attributes b.attributes
  | Text a, Text b -> String.equal a b
  | End a, End b -> String.equal a b
  | (Start _ | Text _ | End _), _ -> false

let compare = Stdlib.compare

let pp ppf = function
  | Start { tag; attributes = [] } -> Fmt.pf ppf "<%s>" tag
  | Start { tag; attributes } ->
      let attr ppf { name; value } = Fmt.pf ppf " %s=%S" name value in
      Fmt.pf ppf "<%s%a>" tag (Fmt.list ~sep:Fmt.nop attr) attributes
  | Text s -> Fmt.pf ppf "%S" s
  | End tag -> Fmt.pf ppf "</%s>" tag

let to_string = Fmt.to_to_string pp

let depth_after d = function
  | Start _ -> d + 1
  | End _ -> d - 1
  | Text _ -> d
