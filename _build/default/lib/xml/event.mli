(** Streaming XML events, the interface between the parser, the skip-index
    decoder and the access-control evaluator.

    The paper assumes "an event-based parser (e.g., SAX) raising open, value
    and close events respectively for each opening, text and closing tag". *)

type attribute = { name : string; value : string }

type t =
  | Start of { tag : string; attributes : attribute list }
      (** opening tag, e.g. [<Folder id="1">] *)
  | Text of string  (** text content between tags *)
  | End of string  (** closing tag; carries the tag for well-formedness *)

val start : ?attributes:attribute list -> string -> t
val text : string -> t
val end_ : string -> t

val tag : t -> string option
(** [tag e] is the element name of a [Start] or [End] event. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val depth_after : int -> t -> int
(** [depth_after d e] is the element nesting depth after consuming [e] at
    depth [d]: [Start] increments, [End] decrements, [Text] is neutral. *)
