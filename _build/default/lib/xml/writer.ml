let escape ~quote s =
  let needs_escaping c =
    c = '&' || c = '<' || c = '>' || (quote && c = '"')
  in
  if String.exists needs_escaping s then begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string b "&amp;"
        | '<' -> Buffer.add_string b "&lt;"
        | '>' -> Buffer.add_string b "&gt;"
        | '"' when quote -> Buffer.add_string b "&quot;"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let escape_text = escape ~quote:false
let escape_attribute = escape ~quote:true

let add_attributes b attributes =
  List.iter
    (fun (a : Event.attribute) ->
      Buffer.add_char b ' ';
      Buffer.add_string b a.name;
      Buffer.add_string b "=\"";
      Buffer.add_string b (escape_attribute a.value);
      Buffer.add_char b '"')
    attributes

let event_to_buffer b = function
  | Event.Start { tag; attributes } ->
      Buffer.add_char b '<';
      Buffer.add_string b tag;
      add_attributes b attributes;
      Buffer.add_char b '>'
  | Event.Text s -> Buffer.add_string b (escape_text s)
  | Event.End tag ->
      Buffer.add_string b "</";
      Buffer.add_string b tag;
      Buffer.add_char b '>'

let events_to_string evs =
  let b = Buffer.create 256 in
  List.iter (event_to_buffer b) evs;
  Buffer.contents b

let tree_to_string ?(indent = false) t =
  let b = Buffer.create 1024 in
  if not indent then
    List.iter (event_to_buffer b) (Tree.to_events t)
  else begin
    let pad depth =
      Buffer.add_char b '\n';
      for _ = 1 to depth do
        Buffer.add_string b "  "
      done
    in
    let rec go depth node =
      match node with
      | Tree.Text s -> Buffer.add_string b (escape_text s)
      | Tree.Element { tag; attributes; children } ->
          if depth > 0 then pad depth;
          Buffer.add_char b '<';
          Buffer.add_string b tag;
          add_attributes b attributes;
          if children = [] then Buffer.add_string b "/>"
          else begin
            Buffer.add_char b '>';
            let only_text =
              List.for_all (function Tree.Text _ -> true | _ -> false) children
            in
            List.iter (go (depth + 1)) children;
            if not only_text then pad depth;
            Buffer.add_string b "</";
            Buffer.add_string b tag;
            Buffer.add_char b '>'
          end
    in
    go 0 t
  end;
  Buffer.contents b
