(** XML serialization with proper escaping. *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for use as element content. *)

val escape_attribute : string -> string
(** Escape ampersand, angle brackets and the double quote for use inside a
    double-quoted attribute. *)

val event_to_buffer : Buffer.t -> Event.t -> unit

val events_to_string : Event.t list -> string
(** Serialize an event stream; the stream need not be well-formed (useful for
    debugging partial streaming output). *)

val tree_to_string : ?indent:bool -> Tree.t -> string
(** Serialize a tree. With [indent] each element starts on its own line
    (two-space indentation); text nodes are emitted inline, unindented. *)
