lib/xpath/ast.mli:
