lib/xpath/containment.ml: Ast List String
