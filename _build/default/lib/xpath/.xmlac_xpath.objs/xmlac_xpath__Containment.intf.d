lib/xpath/containment.mli: Ast
