lib/xpath/dom_eval.ml: Ast List Stdlib String Xmlac_xml
