lib/xpath/dom_eval.mli: Ast Xmlac_xml
