lib/xpath/parse.ml: Ast Buffer Float Format List Printf String
