lib/xpath/parse.mli: Ast Format
