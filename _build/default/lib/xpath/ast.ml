type axis = Child | Descendant
type test = Name of string | Wildcard
type comparison = Eq | Neq | Lt | Le | Gt | Ge
type literal = Number of float | String of string | User

type step = { axis : axis; test : test; predicates : predicate list }

and predicate = {
  path : step list;
  condition : (comparison * literal) option;
}

type t = { steps : step list }

let step ?(axis = Child) ?(predicates = []) test = { axis; test; predicates }
let name n = Name n
let path steps = { steps }

let rec resolve_user_step ~user s =
  { s with predicates = List.map (resolve_user_predicate ~user) s.predicates }

and resolve_user_predicate ~user p =
  {
    path = List.map (resolve_user_step ~user) p.path;
    condition =
      (match p.condition with
      | Some (op, User) -> Some (op, String user)
      | other -> other);
  }

let resolve_user ~user t = { steps = List.map (resolve_user_step ~user) t.steps }

let rec step_has_descendant s =
  s.axis = Descendant
  || List.exists
       (fun p -> List.exists step_has_descendant p.path)
       s.predicates

let has_descendant_axis t = List.exists step_has_descendant t.steps
let has_predicates t = List.exists (fun s -> s.predicates <> []) t.steps

let predicate_is_linear p =
  List.for_all (fun s -> s.predicates = []) p.path

let is_linear t =
  List.for_all (fun s -> List.for_all predicate_is_linear s.predicates) t.steps

let trim = String.trim

let compare_op op c = match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let compare_values op node_value lit =
  match lit with
  | User -> invalid_arg "Ast.compare_values: unresolved USER literal"
  | Number n -> (
      match float_of_string_opt (trim node_value) with
      | None -> false
      | Some v -> compare_op op (Float.compare v n))
  | String s -> compare_op op (String.compare (trim node_value) s)

let equal (a : t) (b : t) = a = b

let size t =
  let rec step_size s =
    1
    + List.fold_left
        (fun acc p -> acc + List.fold_left (fun n s -> n + step_size s) 0 p.path)
        0 s.predicates
  in
  List.fold_left (fun n s -> n + step_size s) 0 t.steps
