(** Abstract syntax of the XPath fragment XP{[],*,//} used by the paper:
    node tests, child axis [/], descendant-or-self axis [//], wildcards [*]
    and predicates [\[...\]] comparing the string value of a relative path to
    a literal.

    The distinguished literal [USER] denotes the subject evaluating the
    policy and is substituted by {!resolve_user} before evaluation. *)

type axis =
  | Child  (** [/step] *)
  | Descendant  (** [//step]: any proper descendant of the context node *)

type test = Name of string | Wildcard

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type literal =
  | Number of float
  | String of string
  | User  (** the [USER] variable of the paper's rule examples *)

type step = { axis : axis; test : test; predicates : predicate list }

and predicate = {
  path : step list;  (** non-empty relative path; first step's axis applies *)
  condition : (comparison * literal) option;
      (** [None] is an existence test, e.g. [\[Protocol\]] *)
}

type t = { steps : step list }
(** An absolute path; the first step's axis is the leading [/] or [//]. *)

val step : ?axis:axis -> ?predicates:predicate list -> test -> step
val name : string -> test
val path : step list -> t

val resolve_user : user:string -> t -> t
(** Replace every [User] literal by [String user]. *)

val has_descendant_axis : t -> bool
val has_predicates : t -> bool

val predicate_is_linear : predicate -> bool
(** No nested predicates inside the predicate path (the form supported by the
    streaming Access Rule Automata; the DOM oracle supports nesting). *)

val is_linear : t -> bool
(** All predicates of all steps are linear. *)

val compare_values : comparison -> string -> literal -> bool
(** [compare_values op node_value lit] — the paper's value comparison: both
    sides numeric when the literal is a {!Number} (an unparseable node value
    satisfies nothing), byte-wise string comparison otherwise. The node value
    is whitespace-trimmed first.
    @raise Invalid_argument on an unresolved [User] literal. *)

val equal : t -> t -> bool
val size : t -> int
(** Total number of steps, including predicate paths (a complexity measure
    for benchmarks). *)
