(* Tree-pattern representation: the absolute path becomes a chain hanging off
   a virtual root; predicates become side branches; the last main-chain node
   is the output node. *)

type pnode = {
  test : Ast.test option;  (* None for the virtual root *)
  condition : (Ast.comparison * Ast.literal) option;
  children : (Ast.axis * pnode) list;
  output : bool;
}

let rec pattern_of_steps ~output steps : (Ast.axis * pnode) option =
  match steps with
  | [] -> None
  | (s : Ast.step) :: rest ->
      let below = pattern_of_steps ~output rest in
      let predicate_branches =
        List.filter_map
          (fun (p : Ast.predicate) ->
            pattern_of_predicate p)
          s.predicates
      in
      let node =
        {
          test = Some s.test;
          condition = None;
          children =
            (match below with
            | None -> predicate_branches
            | Some b -> b :: predicate_branches);
          output = output && rest = [];
        }
      in
      Some (s.axis, node)

and pattern_of_predicate (p : Ast.predicate) : (Ast.axis * pnode) option =
  (* attach the condition to the last node of the predicate path *)
  let rec go = function
    | [] -> None
    | (s : Ast.step) :: rest ->
        let below = go rest in
        let branches =
          List.filter_map pattern_of_predicate s.predicates
        in
        let node =
          {
            test = Some s.test;
            condition = (if rest = [] then p.condition else None);
            children =
              (match below with None -> branches | Some b -> b :: branches);
            output = false;
          }
        in
        Some (s.axis, node)
  in
  go p.path

let pattern_of_path (t : Ast.t) =
  let children =
    match pattern_of_steps ~output:true t.steps with
    | None -> []
    | Some b -> [ b ]
  in
  { test = None; condition = None; children; output = false }

(* Condition implication ------------------------------------------------- *)

let condition_implies a b =
  match (b, a) with
  | None, _ -> true
  | Some _, None -> false
  | Some (bop, blit), Some (aop, alit) -> (
      if aop = bop && alit = blit then true
      else
        match (alit, blit) with
        | Ast.Number x, Ast.Number y -> (
            (* a: value ⊛ x  implies  b: value ⊛ y ? *)
            match (aop, bop) with
            | Ast.Eq, Ast.Eq -> x = y
            | Ast.Eq, Ast.Neq -> x <> y
            | Ast.Eq, Ast.Lt -> x < y
            | Ast.Eq, Ast.Le -> x <= y
            | Ast.Eq, Ast.Gt -> x > y
            | Ast.Eq, Ast.Ge -> x >= y
            | Ast.Lt, Ast.Lt -> x <= y
            | Ast.Lt, Ast.Le -> x <= y
            | Ast.Le, Ast.Le -> x <= y
            | Ast.Le, Ast.Lt -> x < y
            | Ast.Gt, Ast.Gt -> x >= y
            | Ast.Gt, Ast.Ge -> x >= y
            | Ast.Ge, Ast.Ge -> x >= y
            | Ast.Ge, Ast.Gt -> x > y
            | Ast.Lt, Ast.Neq -> y >= x
            | Ast.Gt, Ast.Neq -> y <= x
            | _ -> false)
        | Ast.String x, Ast.String y -> (
            match (aop, bop) with
            | Ast.Eq, Ast.Neq -> not (String.equal x y)
            | _ -> false)
        | _ -> false)

(* Homomorphism search ---------------------------------------------------- *)

let test_compatible (r : Ast.test option) (s : Ast.test option) =
  match (r, s) with
  | None, None -> true
  | None, Some _ | Some _, None -> false
  | Some Ast.Wildcard, Some _ -> true
  | Some (Ast.Name a), Some (Ast.Name b) -> String.equal a b
  | Some (Ast.Name _), Some Ast.Wildcard -> false

(* All pattern nodes of [s] reachable from [node] through >= 1 edges. *)
let rec descendant_nodes node =
  List.concat_map (fun (_, c) -> c :: descendant_nodes c) node.children

let rec embeds (r : pnode) (s : pnode) =
  test_compatible r.test s.test
  && condition_implies s.condition r.condition
  && (not r.output || s.output)
  && List.for_all
       (fun (axis, rc) ->
         let candidates =
           match axis with
           | Ast.Child -> List.filter_map
               (fun (a, c) -> if a = Ast.Child then Some c else None)
               s.children
           | Ast.Descendant -> descendant_nodes s
         in
         List.exists (embeds rc) candidates)
       r.children

let contains r s =
  (* [r] contains [s]: homomorphism from r's pattern into s's pattern, with
     output mapped to output. The generic [embeds] above only enforces that
     output nodes land on output nodes, which suffices because each pattern
     has exactly one output node on its main chain. *)
  embeds (pattern_of_path r) (pattern_of_path s)
