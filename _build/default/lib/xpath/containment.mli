(** Sound (incomplete) containment test for the XPath fragment, based on the
    canonical tree-pattern homomorphism. Containment for XP{[],*,//} is
    co-NP-complete (Miklau & Suciu, cited by the paper), so the paper — and
    this reproduction — only uses a sufficient condition, applied by the
    static policy optimization of Section 3.3. *)

val contains : Ast.t -> Ast.t -> bool
(** [contains r s] is true when the test could prove that every node matched
    by [s] is also matched by [r] (written S ⊑ R in the paper). A [false]
    answer is inconclusive. *)

val condition_implies :
  (Ast.comparison * Ast.literal) option ->
  (Ast.comparison * Ast.literal) option ->
  bool
(** [condition_implies a b]: any value satisfying [a] satisfies [b]
    ([None] = no constraint). Exposed for tests. *)
