module Tree = Xmlac_xml.Tree

type node_id = int list

let compare_id = Stdlib.compare

let rec is_ancestor a b =
  match (a, b) with
  | [], [] -> false
  | [], _ :: _ -> true
  | _ :: _, [] -> false
  | x :: a', y :: b' -> x = y && is_ancestor a' b'

let ancestors id =
  let rec go prefix acc = function
    | [] -> List.rev acc
    | x :: rest -> go (prefix @ [ x ]) (prefix :: acc) rest
  in
  go [] [] id

let node_at tree id =
  let rec go node = function
    | [] -> Some node
    | i :: rest -> (
        match List.nth_opt (Tree.children node) i with
        | Some child -> go child rest
        | None -> None)
  in
  go tree id

(* Indexed element children of a node. *)
let element_children (id, node) =
  Tree.children node
  |> List.mapi (fun i child -> (id @ [ i ], child))
  |> List.filter (fun (_, c) -> match c with Tree.Element _ -> true | _ -> false)

let rec descendants_with_ids (id, node) =
  Tree.children node
  |> List.mapi (fun i child -> (id @ [ i ], child))
  |> List.concat_map (fun (cid, child) ->
         match child with
         | Tree.Element _ -> (cid, child) :: descendants_with_ids (cid, child)
         | Tree.Text _ -> [])

let test_ok test node =
  match (test, node) with
  | Ast.Wildcard, Tree.Element _ -> true
  | Ast.Name n, Tree.Element { tag; _ } -> String.equal n tag
  | _, Tree.Text _ -> false

(* All evaluation below optionally restricts step matches to nodes accepted
   by [filter] (given their absolute ids): this implements queries over the
   authorized view, where a step may only match an authorized element. The
   value of a node for comparisons remains its original text content. *)

let rec predicate_holds_f ~filter (p : Ast.predicate) context =
  let finals = eval_relative ~filter [ context ] p.path in
  match p.condition with
  | None -> finals <> []
  | Some (op, lit) ->
      List.exists
        (fun (_, node) -> Ast.compare_values op (Tree.text_content node) lit)
        finals

and step_filter ~filter (s : Ast.step) candidates =
  List.filter
    (fun (id, node) ->
      test_ok s.test node
      && filter id
      && List.for_all (fun p -> predicate_holds_f ~filter p (id, node)) s.predicates)
    candidates

and eval_relative ~filter contexts steps =
  match steps with
  | [] -> contexts
  | s :: rest ->
      let candidates =
        List.concat_map
          (fun ctx ->
            match s.axis with
            | Ast.Child -> element_children ctx
            | Ast.Descendant -> descendants_with_ids ctx)
          contexts
      in
      let matched = step_filter ~filter s candidates in
      let deduped =
        List.sort_uniq (fun (a, _) (b, _) -> compare_id a b) matched
      in
      eval_relative ~filter deduped rest

let no_filter = fun (_ : node_id) -> true

let select_filtered ~filter (path : Ast.t) tree =
  match path.steps with
  | [] -> []
  | first :: rest ->
      let initial =
        match first.axis with
        | Ast.Child ->
            (* absolute '/step': only the document root can match *)
            step_filter ~filter first [ ([], tree) ]
        | Ast.Descendant ->
            (* absolute '//step': the root or any descendant *)
            step_filter ~filter first
              (([], tree) :: descendants_with_ids ([], tree))
      in
      eval_relative ~filter initial rest |> List.map fst

let select path tree = select_filtered ~filter:no_filter path tree

let predicate_holds p context = predicate_holds_f ~filter:no_filter p ([], context)

let matches path tree id = List.exists (fun m -> m = id) (select path tree)
