(** Reference (non-streaming) evaluator of the XPath fragment over in-memory
    trees. It defines the semantics that the streaming Access Rule Automata
    must reproduce; the access-control oracle and the test suites are built
    on it.

    Semantics notes:
    - an absolute path starting with [/] matches from the document root; one
      starting with [//] can match any element, including the root;
    - [//] between steps selects proper descendants;
    - a predicate holds if some node reached by its relative path satisfies
      the optional comparison, where a node's value is its concatenated
      descendant text (see {!Xmlac_xml.Tree.text_content}). *)

type node_id = int list
(** A node's position: child indexes (among all children, text nodes
    included) from the root element, which is []. Lexicographic order of ids
    is document order. *)

val compare_id : node_id -> node_id -> int
val is_ancestor : node_id -> node_id -> bool
(** [is_ancestor a b]: [a] is a proper ancestor of [b]. *)

val ancestors : node_id -> node_id list
(** Proper ancestors, outermost first (root [[]] first); [[]] has none. *)

val node_at : Xmlac_xml.Tree.t -> node_id -> Xmlac_xml.Tree.t option

val select : Ast.t -> Xmlac_xml.Tree.t -> node_id list
(** Element nodes matched by an absolute path, in document order, without
    duplicates. [USER] literals must have been resolved. *)

val select_filtered :
  filter:(node_id -> bool) -> Ast.t -> Xmlac_xml.Tree.t -> node_id list
(** Like {!select}, but every step (navigational or inside a predicate) may
    only match a node accepted by [filter]. Used to evaluate queries over
    an authorized view: denied elements cannot be named by any step. Node
    values for comparisons remain the original text content. *)

val matches : Ast.t -> Xmlac_xml.Tree.t -> node_id -> bool
(** Whether the node at [node_id] is matched by the path. *)

val predicate_holds : Ast.predicate -> Xmlac_xml.Tree.t -> bool
(** Whether the predicate holds for the given context node (the subtree). *)
