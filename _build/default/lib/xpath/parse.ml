exception Error of string * int

type state = { input : string; mutable pos : int }

let fail st reason = raise (Error (reason, st.pos))
let eof st = st.pos >= String.length st.input
let peek st = st.input.[st.pos]

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let skip st n = st.pos <- st.pos + n

let skip_spaces st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t') do
    skip st 1
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_bareword st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    skip st 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.input start (st.pos - start)

let read_quoted st quote =
  skip st 1;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    skip st 1
  done;
  if eof st then fail st "unterminated string literal";
  let s = String.sub st.input start (st.pos - start) in
  skip st 1;
  s

let read_literal st =
  skip_spaces st;
  if eof st then fail st "expected a literal"
  else if peek st = '"' || peek st = '\'' then
    Ast.String (read_quoted st (peek st))
  else begin
    let w = read_bareword st in
    if w = "USER" then Ast.User
    else
      match float_of_string_opt w with
      | Some n -> Ast.Number n
      | None -> Ast.String w
  end

let read_comparison st =
  skip_spaces st;
  if looking_at st "!=" then (skip st 2; Some Ast.Neq)
  else if looking_at st "<=" then (skip st 2; Some Ast.Le)
  else if looking_at st ">=" then (skip st 2; Some Ast.Ge)
  else if looking_at st "=" then (skip st 1; Some Ast.Eq)
  else if looking_at st "<" then (skip st 1; Some Ast.Lt)
  else if looking_at st ">" then (skip st 1; Some Ast.Gt)
  else None

(* A separator before a step: '//' gives the descendant axis, '/' the child
   axis. *)
let read_separator st =
  if looking_at st "//" then (skip st 2; Some Ast.Descendant)
  else if looking_at st "/" then (skip st 1; Some Ast.Child)
  else None

let rec read_step st axis =
  skip_spaces st;
  let test =
    if (not (eof st)) && peek st = '*' then (skip st 1; Ast.Wildcard)
    else Ast.Name (read_bareword st)
  in
  let predicates = read_predicates st [] in
  { Ast.axis; test; predicates }

and read_predicates st acc =
  skip_spaces st;
  if (not (eof st)) && peek st = '[' then begin
    skip st 1;
    let p = read_predicate_body st in
    skip_spaces st;
    if eof st || peek st <> ']' then fail st "expected ']'";
    skip st 1;
    read_predicates st (p :: acc)
  end
  else List.rev acc

and read_predicate_body st =
  skip_spaces st;
  let first_axis =
    if looking_at st "//" then (skip st 2; Ast.Descendant) else Ast.Child
  in
  let first = read_step st first_axis in
  let steps = read_more_steps st [ first ] in
  skip_spaces st;
  let condition =
    match read_comparison st with
    | None -> None
    | Some op -> Some (op, read_literal st)
  in
  { Ast.path = steps; condition }

and read_more_steps st acc =
  skip_spaces st;
  match read_separator st with
  | None -> List.rev acc
  | Some axis -> read_more_steps st (read_step st axis :: acc)

let path input =
  let st = { input; pos = 0 } in
  skip_spaces st;
  match read_separator st with
  | None -> fail st "an absolute path must start with '/' or '//'"
  | Some axis ->
      let first = read_step st axis in
      let steps = read_more_steps st [ first ] in
      skip_spaces st;
      if not (eof st) then fail st "trailing characters after path";
      { Ast.steps }

let path_opt input = try Some (path input) with Error _ -> None

(* Printing --------------------------------------------------------------- *)

let is_bareword s =
  String.length s > 0
  && String.for_all is_name_char s
  && s <> "USER"
  && float_of_string_opt s = None

let number_to_string n =
  if Float.is_integer n && Float.abs n < 1e15 then
    Printf.sprintf "%.0f" n
  else Printf.sprintf "%.17g" n

let literal_to_buffer b = function
  | Ast.User -> Buffer.add_string b "USER"
  | Ast.Number n -> Buffer.add_string b (number_to_string n)
  | Ast.String s ->
      if is_bareword s then Buffer.add_string b s
      else begin
        Buffer.add_char b '\'';
        Buffer.add_string b s;
        Buffer.add_char b '\''
      end

let comparison_to_string = function
  | Ast.Eq -> "="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let rec step_to_buffer ~leading b (s : Ast.step) =
  (match (s.axis, leading) with
  | Ast.Child, true -> Buffer.add_char b '/'
  | Ast.Child, false -> Buffer.add_char b '/'
  | Ast.Descendant, _ -> Buffer.add_string b "//");
  (match s.test with
  | Ast.Wildcard -> Buffer.add_char b '*'
  | Ast.Name n -> Buffer.add_string b n);
  List.iter (predicate_to_buffer b) s.predicates

and predicate_to_buffer b (p : Ast.predicate) =
  Buffer.add_char b '[';
  (match p.path with
  | [] -> ()
  | first :: rest ->
      (match first.axis with
      | Ast.Child -> ()  (* no leading '/' inside predicates *)
      | Ast.Descendant -> Buffer.add_string b "//");
      (match first.test with
      | Ast.Wildcard -> Buffer.add_char b '*'
      | Ast.Name n -> Buffer.add_string b n);
      List.iter (predicate_to_buffer b) first.predicates;
      List.iter (step_to_buffer ~leading:false b) rest);
  (match p.condition with
  | None -> ()
  | Some (op, lit) ->
      Buffer.add_string b (comparison_to_string op);
      literal_to_buffer b lit);
  Buffer.add_char b ']'

let to_string (t : Ast.t) =
  let b = Buffer.create 64 in
  List.iter (step_to_buffer ~leading:true b) t.steps;
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string t)
