(** Parser and printer for the XPath fragment XP{[],*,//}.

    Grammar (the paper's rule/query language):
    {v
      path      ::= ('/' | '//') step (('/' | '//') step)*
      step      ::= ('*' | name) predicate*
      predicate ::= '[' relpath (op literal)? ']'
      relpath   ::= '//'? step (('/' | '//') step)*
      op        ::= '=' | '!=' | '<' | '<=' | '>' | '>='
      literal   ::= number | 'string' | "string" | bareword
    v}
    The bareword [USER] denotes the subject variable. *)

exception Error of string * int
(** [(reason, offset)] *)

val path : string -> Ast.t
(** @raise Error on a syntax error. *)

val path_opt : string -> Ast.t option

val to_string : Ast.t -> string
(** Inverse of {!path}: [path (to_string p)] equals [p]. *)

val pp : Format.formatter -> Ast.t -> unit
