test/test_core.ml: Alcotest Ara Conflict Evaluator Fmt Input List Oracle Policy Printf QCheck2 QCheck_alcotest Rule String Testkit Xmlac_core Xmlac_skip_index Xmlac_workload Xmlac_xml Xmlac_xpath
