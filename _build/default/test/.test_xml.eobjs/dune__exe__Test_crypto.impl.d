test/test_crypto.ml: Alcotest Array Bytes Char Des Int64 List Merkle Modes Printf QCheck2 QCheck_alcotest Secure_container Sha1 String Xmlac_crypto
