test/test_experiments.ml: Alcotest Lazy List Printf Xmlac_core Xmlac_crypto Xmlac_skip_index Xmlac_soe Xmlac_workload Xmlac_xml
