test/test_skip_index.ml: Alcotest Bitio Bytes Decoder Dict Encoder Layout List Option Printf QCheck2 QCheck_alcotest Stats String Testkit Update Xmlac_skip_index Xmlac_xml
