test/test_skip_index.mli:
