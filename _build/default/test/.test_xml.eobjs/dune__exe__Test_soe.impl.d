test/test_soe.ml: Alcotest Bytes Channel Char Cost_model License List Printf QCheck2 QCheck_alcotest Session String Testkit Xmlac_core Xmlac_crypto Xmlac_skip_index Xmlac_soe Xmlac_workload Xmlac_xml
