test/test_soe.mli:
