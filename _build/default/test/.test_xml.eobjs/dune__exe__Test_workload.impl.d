test/test_workload.ml: Alcotest Datasets Hospital List Printf Profiles Rule_gen String Xmlac_core Xmlac_workload Xmlac_xml Xmlac_xpath
