test/test_xml.ml: Alcotest Bytes Event Fmt List Parser QCheck2 QCheck_alcotest String Testkit Tree Writer Xmlac_xml
