test/test_xpath.ml: Alcotest Ast Containment Dom_eval List Parse Printf QCheck2 QCheck_alcotest Testkit Xmlac_xml Xmlac_xpath
