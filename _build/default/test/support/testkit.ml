(* Shared QCheck2 generators: random XML trees over a small tag alphabet and
   random XPath expressions over the same alphabet, so that paths and
   documents collide often enough to exercise interesting cases. *)

module Gen = QCheck2.Gen
module Tree = Xmlac_xml.Tree
module Ast = Xmlac_xpath.Ast

let tag_alphabet = [ "a"; "b"; "c"; "d"; "e" ]
let gen_tag = Gen.oneofl tag_alphabet

(* Small integer-looking text values so numeric predicates have bite. *)
let gen_text_value = Gen.map string_of_int (Gen.int_range 0 9)

let gen_free_text =
  Gen.oneof
    [
      gen_text_value;
      Gen.small_string ~gen:(Gen.char_range 'a' 'z');
      Gen.return "hello & <world>";
    ]

(* A tree of bounded depth and fanout. Text nodes are numeric-looking so
   that value predicates match sometimes. *)
let gen_tree : Tree.t Gen.t =
  let open Gen in
  let rec node depth =
    if depth = 0 then
      map (fun v -> Tree.element "leaf" [ Tree.text v ]) gen_text_value
    else
      gen_tag >>= fun tag ->
      int_range 0 3 >>= fun fanout ->
      list_size (return fanout)
        (oneof
           [
             node (depth - 1);
             map Tree.text gen_text_value;
           ])
      >>= fun children -> return (Tree.element tag children)
  in
  int_range 1 4 >>= node

(* Trees with arbitrary (escapable) text, for parser/serializer roundtrips. *)
let gen_tree_free_text : Tree.t Gen.t =
  let open Gen in
  let rec node depth =
    gen_tag >>= fun tag ->
    (if depth = 0 then return []
     else
       int_range 0 3 >>= fun fanout ->
       list_size (return fanout)
         (oneof [ node (depth - 1); map Tree.text gen_free_text ]))
    >>= fun children -> return (Tree.element tag children)
  in
  int_range 0 3 >>= node

let gen_axis = Gen.oneofa [| Ast.Child; Ast.Descendant |]

let gen_test =
  Gen.frequency [ (5, Gen.map Ast.name gen_tag); (1, Gen.return Ast.Wildcard) ]

let gen_comparison =
  Gen.oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let gen_literal =
  Gen.oneof
    [
      Gen.map (fun n -> Ast.Number (float_of_int n)) (Gen.int_range 0 9);
      Gen.map (fun s -> Ast.String s) gen_text_value;
    ]

let gen_predicate : Ast.predicate Gen.t =
  let open Gen in
  int_range 1 2 >>= fun len ->
  list_size (return len)
    (gen_axis >>= fun axis ->
     gen_test >>= fun test -> return { Ast.axis; test; predicates = [] })
  >>= fun path ->
  oneof
    [
      return None;
      map Option.some (pair gen_comparison gen_literal);
    ]
  >>= fun condition -> return { Ast.path; condition }

let gen_step ~with_predicates : Ast.step Gen.t =
  let open Gen in
  gen_axis >>= fun axis ->
  gen_test >>= fun test ->
  (if with_predicates then
     frequency [ (3, return []); (2, list_size (int_range 1 1) gen_predicate) ]
   else return [])
  >>= fun predicates -> return { Ast.axis; test; predicates }

let gen_path ?(with_predicates = true) () : Ast.t Gen.t =
  let open Gen in
  int_range 1 3 >>= fun len ->
  list_size (return len) (gen_step ~with_predicates) >>= fun steps ->
  return { Ast.steps }

(* Random rule sets: (sign, path) pairs. *)
let gen_rule = Gen.pair Gen.bool (gen_path ())

let gen_rules =
  let open Gen in
  int_range 1 5 >>= fun n -> list_size (return n) gen_rule

let tree_print = Xmlac_xml.Writer.tree_to_string ~indent:false
let path_print = Xmlac_xpath.Parse.to_string

let rules_print rules =
  String.concat "; "
    (List.map
       (fun (sign, p) -> (if sign then "+" else "-") ^ path_print p)
       rules)
