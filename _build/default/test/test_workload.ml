(* Tests for the workload generators: schema invariants of the synthetic
   Hospital document, shape characteristics of the dataset stand-ins,
   profile policies, and random rule generation. *)

open Xmlac_workload
module Tree = Xmlac_xml.Tree
module Parse = Xmlac_xpath.Parse
module Dom_eval = Xmlac_xpath.Dom_eval
module Policy = Xmlac_core.Policy

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let hospital = Hospital.generate ~seed:11
    ~config:{ Hospital.default_config with folders = 40 } ()

let count path tree = List.length (Dom_eval.select (Parse.path path) tree)

(* Hospital ----------------------------------------------------------------- *)

let test_hospital_schema () =
  let folders = count "//Folder" hospital in
  check int_t "folder count" 40 folders;
  check int_t "one Admin per folder" folders (count "//Folder/Admin" hospital);
  check int_t "one Age per folder" folders (count "//Folder/Admin/Age" hospital);
  check int_t "one MedActs per folder" folders (count "//Folder/MedActs" hospital);
  check int_t "one Analysis per folder" folders (count "//Folder/Analysis" hospital);
  check bool_t "acts exist" true (count "//MedActs/Act" hospital > folders / 2);
  check bool_t "every act has details" true
    (count "//Act" hospital = count "//Act/Details" hospital);
  check bool_t "lab results carry groups" true
    (count "//LabResults" hospital
    = count "//LabResults/*[Cholesterol]" hospital)

let test_hospital_determinism () =
  let a = Hospital.generate ~seed:3 () in
  let b = Hospital.generate ~seed:3 () in
  let c = Hospital.generate ~seed:4 () in
  check bool_t "same seed, same document" true (Tree.equal a b);
  check bool_t "different seed, different document" false (Tree.equal a c)

let test_hospital_sized () =
  let doc = Hospital.generate_sized ~seed:5 ~target_bytes:300_000 () in
  let bytes = String.length (Xmlac_xml.Writer.tree_to_string doc) in
  check bool_t
    (Printf.sprintf "sized within 40%% of target (got %d)" bytes)
    true
    (bytes > 180_000 && bytes < 420_000)

let test_hospital_physician_skew () =
  (* a larger sample makes the heavy-tailed physician distribution visible *)
  let big =
    Hospital.generate ~seed:23
      ~config:{ Hospital.default_config with folders = 300 } ()
  in
  let physician_count who =
    List.length
      (List.filter
         (fun id ->
           match Dom_eval.node_at big id with
           | Some n -> String.trim (Tree.text_content n) = who
           | None -> false)
         (Dom_eval.select (Parse.path "//Act/RPhys") big))
  in
  let ft = physician_count Hospital.full_time_physician in
  let pt = physician_count Hospital.part_time_physician in
  check bool_t
    (Printf.sprintf "full-time sees many more acts (ft=%d pt=%d)" ft pt)
    true
    (ft > 3 * max 1 pt && ft >= 20)

let test_hospital_ages_numeric () =
  let ages = Dom_eval.select (Parse.path "//Age") hospital in
  check bool_t "all ages parse in 1..99" true
    (List.for_all
       (fun id ->
         match Dom_eval.node_at hospital id with
         | Some n -> (
             match int_of_string_opt (String.trim (Tree.text_content n)) with
             | Some a -> a >= 1 && a <= 99
             | None -> false)
         | None -> false)
       ages)

(* Dataset stand-ins -------------------------------------------------------- *)

let shape kind =
  Datasets.characteristics ~name:(Datasets.name kind)
    (Datasets.generate kind ~seed:1 ~target_bytes:120_000)

let test_wsu_shape () =
  let c = shape Datasets.Wsu in
  check int_t "WSU max depth 4 (paper Table 2)" 4 c.Datasets.max_depth;
  check bool_t "WSU around 20 tags" true
    (c.Datasets.distinct_tags >= 12 && c.Datasets.distinct_tags <= 22);
  check bool_t "WSU text share small" true
    (float_of_int c.Datasets.text_bytes < 0.4 *. float_of_int c.Datasets.size_bytes)

let test_sigmod_shape () =
  let c = shape Datasets.Sigmod in
  check int_t "Sigmod max depth 6" 6 c.Datasets.max_depth;
  check bool_t "Sigmod around 11 tags" true
    (c.Datasets.distinct_tags >= 9 && c.Datasets.distinct_tags <= 12)

let test_treebank_shape () =
  let c = shape Datasets.Treebank in
  check bool_t
    (Printf.sprintf "Treebank deep (got %d)" c.Datasets.max_depth)
    true
    (c.Datasets.max_depth >= 15 && c.Datasets.max_depth <= 40);
  check bool_t
    (Printf.sprintf "Treebank many tags (got %d)" c.Datasets.distinct_tags)
    true
    (c.Datasets.distinct_tags >= 120);
  (* recursion: some tag appears nested within itself *)
  let doc = Datasets.generate Datasets.Treebank ~seed:1 ~target_bytes:120_000 in
  let recursive =
    List.exists
      (fun tag ->
        count (Printf.sprintf "//%s//%s" tag tag) doc > 0)
      [ "S"; "NP"; "VP" ]
  in
  check bool_t "Treebank tags recurse" true recursive

let test_target_sizes_roughly_met () =
  List.iter
    (fun kind ->
      let doc = Datasets.generate kind ~seed:2 ~target_bytes:200_000 in
      let bytes = String.length (Xmlac_xml.Writer.tree_to_string doc) in
      if not (bytes > 100_000 && bytes < 400_000) then
        Alcotest.failf "%s: %d bytes for a 200000 target" (Datasets.name kind)
          bytes)
    Datasets.all

(* Profiles ----------------------------------------------------------------- *)

let test_profiles_compile () =
  List.iter
    (fun v ->
      let p = Profiles.view_policy v in
      match Policy.streaming_compatible p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Profiles.view_name v) e)
    Profiles.all_views

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_doctor_user_resolved () =
  let p = Profiles.doctor ~user:"dr42" in
  List.iter
    (fun (r : Xmlac_core.Rule.t) ->
      let s = Parse.to_string r.path in
      check bool_t "no unresolved USER" false (contains_substring s "USER"))
    (Policy.rules p)

let test_researcher_group_count () =
  let p = Profiles.researcher ~groups:[ 1; 2; 3 ] () in
  check int_t "1 base + 2 per group" 7 (List.length (Policy.rules p))

let test_profiles_select_different_views () =
  let views =
    List.map
      (fun v ->
        match
          Xmlac_core.Oracle.authorized_view (Profiles.view_policy v) hospital
        with
        | None -> 0
        | Some t -> String.length (Xmlac_xml.Writer.tree_to_string t))
      Profiles.all_views
  in
  check bool_t "every view nonempty" true (List.for_all (fun n -> n > 0) views);
  check bool_t "views have different sizes" true
    (List.length (List.sort_uniq compare views) >= 4)

let test_ftd_sees_more_than_ptd () =
  let size v =
    match
      Xmlac_core.Oracle.authorized_view (Profiles.view_policy v) hospital
    with
    | None -> 0
    | Some t -> String.length (Xmlac_xml.Writer.tree_to_string t)
  in
  check bool_t "full-time doctor sees more than part-time" true
    (size Profiles.Full_time_doctor > size Profiles.Part_time_doctor)

(* Random rules ------------------------------------------------------------- *)

let test_rule_gen_properties () =
  List.iter
    (fun kind ->
      let doc = Datasets.generate kind ~seed:3 ~target_bytes:60_000 in
      let policy = Rule_gen.generate ~seed:9 doc in
      check int_t
        (Datasets.name kind ^ ": default rule count")
        8
        (List.length (Policy.rules policy));
      (match Policy.streaming_compatible policy with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Datasets.name kind) e);
      (* the rules must actually select something on their document *)
      let matching =
        List.filter
          (fun (r : Xmlac_core.Rule.t) ->
            Dom_eval.select r.path doc <> [])
          (Policy.rules policy)
      in
      check bool_t
        (Datasets.name kind ^ ": most rules select nodes")
        true
        (2 * List.length matching > List.length (Policy.rules policy)))
    Datasets.all

let test_rule_gen_deterministic () =
  let doc = Datasets.generate Datasets.Sigmod ~seed:3 ~target_bytes:30_000 in
  let p1 = Rule_gen.generate ~seed:5 doc in
  let p2 = Rule_gen.generate ~seed:5 doc in
  let render p =
    String.concat ";"
      (List.map
         (fun (r : Xmlac_core.Rule.t) -> Parse.to_string r.path)
         (Policy.rules p))
  in
  check Alcotest.string "same seed, same rules" (render p1) (render p2)

let () =
  Alcotest.run "workload"
    [
      ( "hospital",
        [
          Alcotest.test_case "schema invariants" `Quick test_hospital_schema;
          Alcotest.test_case "determinism" `Quick test_hospital_determinism;
          Alcotest.test_case "sized generation" `Quick test_hospital_sized;
          Alcotest.test_case "physician skew" `Quick test_hospital_physician_skew;
          Alcotest.test_case "ages numeric" `Quick test_hospital_ages_numeric;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "WSU shape" `Quick test_wsu_shape;
          Alcotest.test_case "Sigmod shape" `Quick test_sigmod_shape;
          Alcotest.test_case "Treebank shape" `Quick test_treebank_shape;
          Alcotest.test_case "target sizes" `Quick test_target_sizes_roughly_met;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "compile" `Quick test_profiles_compile;
          Alcotest.test_case "USER resolved" `Quick test_doctor_user_resolved;
          Alcotest.test_case "researcher groups" `Quick test_researcher_group_count;
          Alcotest.test_case "views differ" `Quick test_profiles_select_different_views;
          Alcotest.test_case "FTD > PTD" `Quick test_ftd_sees_more_than_ptd;
        ] );
      ( "rule-gen",
        [
          Alcotest.test_case "properties" `Quick test_rule_gen_properties;
          Alcotest.test_case "determinism" `Quick test_rule_gen_deterministic;
        ] );
    ]
