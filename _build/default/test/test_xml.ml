(* Tests for the XML substrate: parser, tree, serializer. *)

open Xmlac_xml

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int

let qtest ?(count = 300) name gen ?print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)

let events_of s = Parser.events s

let event_list_t =
  Alcotest.testable (Fmt.Dump.list Event.pp) (List.for_all2 Event.equal)

(* Parsing ---------------------------------------------------------------- *)

let test_basic_events () =
  check event_list_t "simple document"
    [
      Event.start "a";
      Event.start "b";
      Event.text "hi";
      Event.end_ "b";
      Event.end_ "a";
    ]
    (events_of "<a><b>hi</b></a>")

let test_attributes () =
  check event_list_t "attributes parsed"
    [
      Event.start ~attributes:[ { name = "x"; value = "1" }; { name = "y"; value = "a<b" } ] "a";
      Event.end_ "a";
    ]
    (events_of {|<a x="1" y='a&lt;b'></a>|})

let test_empty_element () =
  check event_list_t "self-closing tag"
    [ Event.start "a"; Event.start "b"; Event.end_ "b"; Event.end_ "a" ]
    (events_of "<a><b/></a>")

let test_entities () =
  check event_list_t "predefined and character entities"
    [ Event.start "a"; Event.text "<&>'\"A \xE2\x82\xAC"; Event.end_ "a" ]
    (events_of "<a>&lt;&amp;&gt;&apos;&quot;&#65; &#x20AC;</a>")

let test_cdata () =
  check event_list_t "CDATA is raw text"
    [ Event.start "a"; Event.text "<not><parsed>&amp;"; Event.end_ "a" ]
    (events_of "<a><![CDATA[<not><parsed>&amp;]]></a>")

let test_comments_and_pi () =
  check event_list_t "comments, PIs and prolog skipped"
    [ Event.start "a"; Event.text "x"; Event.end_ "a" ]
    (events_of "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner -->x<?pi data?></a><!-- bye -->")

let test_doctype_skipped () =
  check event_list_t "doctype skipped"
    [ Event.start "a"; Event.end_ "a" ]
    (events_of "<!DOCTYPE a [ <!ELEMENT a EMPTY> ]><a></a>")

let test_whitespace_stripping () =
  check event_list_t "strip_whitespace drops blank text"
    [ Event.start "a"; Event.start "b"; Event.end_ "b"; Event.end_ "a" ]
    (Parser.events ~strip_whitespace:true "<a>\n  <b> </b>\n</a>");
  check int_t "without stripping, blanks preserved" 7
    (List.length (Parser.events "<a>\n  <b> </b>\n</a>"))

let malformed_cases =
  [
    ("mismatched tags", "<a><b></a></b>");
    ("unclosed root", "<a><b></b>");
    ("text after root", "<a></a>junk");
    ("second root", "<a></a><b></b>");
    ("text before root", "oops<a></a>");
    ("bad entity", "<a>&nosuch;</a>");
    ("unterminated comment", "<a><!-- ...</a>");
    ("unterminated cdata", "<a><![CDATA[x</a>");
    ("eof in tag", "<a");
    ("unquoted attribute", "<a x=1></a>");
    ("duplicate attribute", {|<a x="1" x="2"></a>|});
    ("lone end tag", "</a>");
    ("empty input", "");
    ("bare text", "hello");
    ("lt in attribute", {|<a x="<"></a>|});
  ]

let test_malformed () =
  List.iter
    (fun (name, input) ->
      match Parser.events input with
      | exception Parser.Malformed _ -> ()
      | evs ->
          Alcotest.failf "%s: expected Malformed, got %d events" name
            (List.length evs))
    malformed_cases

let test_malformed_offset_is_sane () =
  match Parser.events "<a><b></c></a>" with
  | exception Parser.Malformed (_, off) ->
      if off < 0 || off > 14 then Alcotest.failf "offset out of range: %d" off
  | _ -> Alcotest.fail "expected Malformed"

(* Tree ------------------------------------------------------------------- *)

let test_tree_roundtrip_events () =
  let t =
    Tree.element "a"
      [
        Tree.element "b" [ Tree.text "x" ];
        Tree.text "y";
        Tree.element "c" [];
      ]
  in
  check Alcotest.bool "of_events inverts to_events" true
    (Tree.equal t (Tree.of_events (Tree.to_events t)))

let test_tree_stats () =
  let t = Tree.parse "<a><b>xy</b><b><c>z</c></b></a>" in
  check int_t "elements" 4 (Tree.count_elements t);
  check int_t "text nodes" 2 (Tree.count_text_nodes t);
  check int_t "text bytes" 3 (Tree.text_bytes t);
  check int_t "max depth" 3 (Tree.max_depth t);
  check (Alcotest.list string_t) "distinct tags" [ "a"; "b"; "c" ]
    (Tree.distinct_tags t);
  check string_t "text content" "xyz" (Tree.text_content t)

let test_average_leaf_depth () =
  let t = Tree.parse "<a><b/><c><d/></c></a>" in
  (* leaves: b at depth 2, d at depth 3 *)
  check (Alcotest.float 0.001) "average leaf depth" 2.5 (Tree.average_leaf_depth t)

let test_map_tags () =
  let t = Tree.parse "<a><b/></a>" in
  let t' = Tree.map_tags String.uppercase_ascii t in
  check (Alcotest.list string_t) "tags mapped" [ "A"; "B" ] (Tree.distinct_tags t')

let test_attributes_to_elements () =
  let t = Tree.parse {|<a x="1" y="2"><b z="3">t</b></a>|} in
  check string_t "attributes folded"
    "<a><attr-x>1</attr-x><attr-y>2</attr-y><b><attr-z>3</attr-z>t</b></a>"
    (Writer.tree_to_string (Tree.attributes_to_elements t));
  check string_t "custom prefix"
    "<a><at.x>1</at.x><at.y>2</at.y><b><at.z>3</at.z>t</b></a>"
    (Writer.tree_to_string (Tree.attributes_to_elements ~prefix:"at." t))

(* Writer ----------------------------------------------------------------- *)

let test_escaping () =
  check string_t "text escaping" "a&amp;b&lt;c&gt;d" (Writer.escape_text "a&b<c>d");
  check string_t "attribute escaping" "&quot;&amp;&lt;"
    (Writer.escape_attribute "\"&<")

let test_serialize () =
  let t = Tree.parse "<a x=\"1\"><b>h&amp;i</b></a>" in
  check string_t "serialized" "<a x=\"1\"><b>h&amp;i</b></a>"
    (Writer.tree_to_string t)

let test_indented_output_reparses () =
  let t = Tree.parse "<a><b>t</b><c><d/></c></a>" in
  let pretty = Writer.tree_to_string ~indent:true t in
  let t' = Tree.parse ~strip_whitespace:true pretty in
  check Alcotest.bool "indented output reparses to same tree" true (Tree.equal t t')

(* Properties ------------------------------------------------------------- *)

let prop_roundtrip =
  qtest "parse ∘ print = id" Testkit.gen_tree_free_text ~print:Testkit.tree_print
    (fun t ->
      (* adjacent text nodes merge in XML, so normalize both sides through
         an event print/parse once *)
      let s = Writer.tree_to_string t in
      let t' = Tree.parse s in
      let s' = Writer.tree_to_string t' in
      String.equal s s')

let prop_event_depths_balance =
  qtest "events balance to depth zero" Testkit.gen_tree_free_text
    ~print:Testkit.tree_print (fun t ->
      let final =
        List.fold_left Event.depth_after 0 (Tree.to_events t)
      in
      final = 0)

let prop_parser_never_crashes =
  (* random byte soup: either a Malformed error or a well-formed stream *)
  qtest ~count:1000 "parser total on arbitrary input"
    QCheck2.Gen.(
      oneof
        [
          string_printable;
          small_string ~gen:(oneofl [ '<'; '>'; '&'; '"'; '/'; 'a'; ' '; '='; '!' ]);
        ])
    (fun input ->
      match Parser.events input with
      | exception Parser.Malformed _ -> true
      | evs -> List.fold_left Event.depth_after 0 evs = 0)

let prop_parser_survives_mutations =
  (* valid documents with one byte flipped: still total *)
  qtest ~count:500 "parser total on mutated documents"
    QCheck2.Gen.(triple Testkit.gen_tree_free_text small_nat (char_range ' ' '~'))
    (fun (tree, pos_seed, replacement) ->
      let s = Writer.tree_to_string tree in
      if String.length s = 0 then true
      else begin
        let b = Bytes.of_string s in
        Bytes.set b (pos_seed mod Bytes.length b) replacement;
        match Parser.events (Bytes.to_string b) with
        | exception Parser.Malformed _ -> true
        | evs -> List.fold_left Event.depth_after 0 evs = 0
      end)

let prop_text_preserved =
  qtest "total text content preserved by print/parse" Testkit.gen_tree
    ~print:Testkit.tree_print (fun t ->
      let s = Writer.tree_to_string t in
      String.equal (Tree.text_content t) (Tree.text_content (Tree.parse s)))

let () =
  Alcotest.run "xml"
    [
      ( "parser",
        [
          Alcotest.test_case "basic events" `Quick test_basic_events;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "empty element" `Quick test_empty_element;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "CDATA" `Quick test_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_comments_and_pi;
          Alcotest.test_case "doctype" `Quick test_doctype_skipped;
          Alcotest.test_case "whitespace stripping" `Quick test_whitespace_stripping;
          Alcotest.test_case "malformed inputs rejected" `Quick test_malformed;
          Alcotest.test_case "error offsets sane" `Quick test_malformed_offset_is_sane;
        ] );
      ( "tree",
        [
          Alcotest.test_case "event roundtrip" `Quick test_tree_roundtrip_events;
          Alcotest.test_case "stats" `Quick test_tree_stats;
          Alcotest.test_case "average leaf depth" `Quick test_average_leaf_depth;
          Alcotest.test_case "map_tags" `Quick test_map_tags;
          Alcotest.test_case "attributes to elements" `Quick test_attributes_to_elements;
        ] );
      ( "writer",
        [
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "serialize" `Quick test_serialize;
          Alcotest.test_case "indent roundtrip" `Quick test_indented_output_reparses;
        ] );
      ( "properties",
        [
          prop_roundtrip;
          prop_event_depths_balance;
          prop_text_preserved;
          prop_parser_never_crashes;
          prop_parser_survives_mutations;
        ] );
    ]
