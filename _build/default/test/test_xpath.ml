(* Tests for the XPath fragment: parser/printer, DOM evaluation semantics,
   containment. *)

open Xmlac_xpath
module Tree = Xmlac_xml.Tree

let check = Alcotest.check
let bool_t = Alcotest.bool

let qtest ?(count = 300) name gen ?print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)

let ids_t = Alcotest.(list (list int))

let select s doc = Dom_eval.select (Parse.path s) (Tree.parse doc)

(* Parser ----------------------------------------------------------------- *)

let test_parse_shapes () =
  let p = Parse.path "//Folder[Protocol/Type=G3]//LabResults" in
  check Alcotest.int "two steps" 2 (List.length p.Ast.steps);
  (match p.Ast.steps with
  | [ s1; s2 ] ->
      check bool_t "first descendant" true (s1.Ast.axis = Ast.Descendant);
      check bool_t "second descendant" true (s2.Ast.axis = Ast.Descendant);
      (match s1.Ast.predicates with
      | [ pred ] ->
          check Alcotest.int "predicate path length" 2 (List.length pred.Ast.path);
          check bool_t "condition" true
            (pred.Ast.condition = Some (Ast.Eq, Ast.String "G3"))
      | _ -> Alcotest.fail "expected one predicate")
  | _ -> Alcotest.fail "expected two steps");
  let q = Parse.path "/a/*[//b = 250][c != USER]/d" in
  check Alcotest.int "three steps" 3 (List.length q.Ast.steps)

let test_parse_numbers_and_strings () =
  let p = Parse.path "//x[a = 250]" in
  (match (List.hd p.Ast.steps).Ast.predicates with
  | [ { Ast.condition = Some (Ast.Eq, Ast.Number n); _ } ] ->
      check (Alcotest.float 0.0) "numeric literal" 250.0 n
  | _ -> Alcotest.fail "expected numeric condition");
  let p = Parse.path "//x[a = '250']" in
  match (List.hd p.Ast.steps).Ast.predicates with
  | [ { Ast.condition = Some (Ast.Eq, Ast.String s); _ } ] ->
      check Alcotest.string "quoted numeric stays a string" "250" s
  | _ -> Alcotest.fail "expected string condition"

let test_parse_user_literal () =
  let p = Parse.path "//Act[RPhys != USER]/Details" in
  (match (List.hd p.Ast.steps).Ast.predicates with
  | [ { Ast.condition = Some (Ast.Neq, Ast.User); _ } ] -> ()
  | _ -> Alcotest.fail "expected USER literal");
  let resolved = Ast.resolve_user ~user:"dr.who" p in
  match (List.hd resolved.Ast.steps).Ast.predicates with
  | [ { Ast.condition = Some (Ast.Neq, Ast.String "dr.who"); _ } ] -> ()
  | _ -> Alcotest.fail "USER not resolved"

let test_parse_errors () =
  List.iter
    (fun s ->
      match Parse.path s with
      | exception Parse.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    [ "a/b"; "/"; "//"; "/a["; "/a[]"; "/a[b=]"; "/a]"; "/a/b["; ""; "/a trailing" ]

let prop_print_parse_roundtrip =
  qtest "parse ∘ print = id" (Testkit.gen_path ()) ~print:Testkit.path_print
    (fun p -> Ast.equal p (Parse.path (Parse.to_string p)))

(* DOM evaluation --------------------------------------------------------- *)

let doc =
  "<r>\
     <a><b>1</b><c><b>2</b></c></a>\
     <a><b>3</b></a>\
     <d><a><c>x</c></a></d>\
   </r>"

let test_child_axis () =
  check ids_t "/r/a" [ [ 0 ]; [ 1 ] ] (select "/r/a" doc);
  check ids_t "/r/a/b" [ [ 0; 0 ]; [ 1; 0 ] ] (select "/r/a/b" doc);
  check ids_t "/x nothing" [] (select "/x" doc)

let test_descendant_axis () =
  check ids_t "//b: all three"
    [ [ 0; 0 ]; [ 0; 1; 0 ]; [ 1; 0 ] ]
    (select "//b" doc);
  check ids_t "//a//b (proper descendants)"
    [ [ 0; 0 ]; [ 0; 1; 0 ]; [ 1; 0 ] ]
    (select "//a//b" doc);
  check ids_t "//root itself matchable" [ [] ] (select "//r" doc)

let test_wildcard () =
  check ids_t "/r/*" [ [ 0 ]; [ 1 ]; [ 2 ] ] (select "/r/*" doc);
  check ids_t "//d/*/c" [ [ 2; 0; 0 ] ] (select "//d/*/c" doc)

let test_predicates_existence () =
  check ids_t "a with c child" [ [ 0 ]; [ 2; 0 ] ] (select "//a[c]" doc);
  check ids_t "a with b descendant" [ [ 0 ]; [ 1 ] ] (select "//a[//b]" doc)

let test_predicates_values () =
  check ids_t "b=2 under c" [ [ 0; 1 ] ] (select "//c[b = 2]" doc);
  check ids_t "a[b=3]" [ [ 1 ] ] (select "//a[b = 3]" doc);
  check ids_t "a[b>1]" [ [ 1 ] ] (select "//a[b > 1]" doc);
  check ids_t "a[b>=1]" [ [ 0 ]; [ 1 ] ] (select "//a[b >= 1]" doc);
  check ids_t "string compare" [ [ 2; 0 ] ] (select "//a[c = x]" doc)

let test_predicate_on_unparseable_number () =
  (* the <a> under <d> has c = "x", which does not parse as a number:
     numeric comparisons (even !=) must not match through it, while the
     first <a>'s c = "2" behaves numerically *)
  check ids_t "numeric vs text" [] (select "//a[c = 0]" doc);
  check ids_t "!= skips unparseable" [ [ 0 ] ] (select "//a[c != 0]" doc)

let test_multiple_predicates () =
  check ids_t "both must hold" [ [ 0 ] ] (select "//a[b = 1][c]" doc)

let test_nested_predicates () =
  check ids_t "predicate inside predicate" [ [ 0 ] ]
    (select "//a[c[b = 2]]" doc)

let test_text_content_concatenation () =
  let d = "<r><a><b>1</b><b>2</b></a></r>" in
  (* value of <a> is the concatenated text "12" *)
  check ids_t "concatenated string value" [ [] ] (select "/r[a = 12]" d)

let test_structural_relations () =
  check bool_t "ancestor" true (Dom_eval.is_ancestor [ 0 ] [ 0; 1 ]);
  check bool_t "not self" false (Dom_eval.is_ancestor [ 0 ] [ 0 ]);
  check bool_t "not sibling" false (Dom_eval.is_ancestor [ 0 ] [ 1; 0 ]);
  check ids_t "ancestors of [0;1;2]" [ []; [ 0 ]; [ 0; 1 ] ]
    (Dom_eval.ancestors [ 0; 1; 2 ])

let test_node_at () =
  let t = Tree.parse doc in
  (match Dom_eval.node_at t [ 0; 1; 0 ] with
  | Some n -> check (Alcotest.option Alcotest.string) "tag" (Some "b") (Tree.tag n)
  | None -> Alcotest.fail "node expected");
  check bool_t "missing node" true (Dom_eval.node_at t [ 9 ] = None)

let prop_select_ids_valid =
  qtest "selected ids resolve to matching elements"
    (QCheck2.Gen.pair Testkit.gen_tree (Testkit.gen_path ()))
    ~print:(fun (t, p) -> Testkit.tree_print t ^ " | " ^ Testkit.path_print p)
    (fun (t, p) ->
      let ids = Dom_eval.select p t in
      List.for_all
        (fun id ->
          match Dom_eval.node_at t id with
          | Some (Tree.Element _) -> true
          | _ -> false)
        ids)

let prop_descendant_superset_of_child =
  qtest "//x ⊇ /r/x on any tree" Testkit.gen_tree ~print:Testkit.tree_print
    (fun t ->
      List.for_all
        (fun tag ->
          let desc = Dom_eval.select (Parse.path ("//" ^ tag)) t in
          let child =
            match Tree.tag t with
            | Some root -> Dom_eval.select (Parse.path ("/" ^ root ^ "/" ^ tag)) t
            | None -> []
          in
          List.for_all (fun id -> List.mem id desc) child)
        Testkit.tag_alphabet)

let prop_select_sorted_unique =
  qtest "selection is in document order without duplicates"
    (QCheck2.Gen.pair Testkit.gen_tree (Testkit.gen_path ()))
    (fun (t, p) ->
      let ids = Dom_eval.select p t in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Dom_eval.compare_id a b < 0 && sorted rest
        | _ -> true
      in
      sorted ids)

(* Containment ------------------------------------------------------------ *)

let contains a b = Containment.contains (Parse.path a) (Parse.path b)

let test_containment_positive () =
  List.iter
    (fun (r, s) ->
      if not (contains r s) then Alcotest.failf "%s should contain %s" r s)
    [
      ("//a", "/a");
      ("//a", "//b/a");
      ("/*", "/a");
      ("//a", "//a[b]");
      ("//a[b]", "//a[b]");
      ("//a[b]", "//a[b = 3]");
      ("/a//c", "/a/b/c");
      ("//a[b > 2]", "//a[b > 5]");
      ("//a[b >= 3]", "//a[b > 3]");
      ("//a[b != 1]", "//a[b = 2]");
      ("//*[c]", "//a[c/d]");
    ]

let test_containment_negative () =
  List.iter
    (fun (r, s) ->
      if contains r s then Alcotest.failf "%s should not contain %s" r s)
    [
      ("/a", "//a");
      ("//a/b", "//a//b");
      ("//a[b]", "//a");
      ("//a[b = 3]", "//a[b]");
      ("//a[b > 5]", "//a[b > 2]");
      ("/a", "/b");
      ("/a", "/*");
      ("//a[b = 1]", "//a[b != 1]");
    ]

let test_condition_implication_table () =
  let open Xmlac_xpath.Ast in
  let num op v = Some (op, Number v) in
  let cases =
    [
      (* (a, b, a-implies-b) *)
      (num Gt 300., num Gt 250., true);
      (num Gt 250., num Gt 300., false);
      (num Ge 300., num Gt 250., true);
      (num Gt 250., num Ge 250., true);
      (num Eq 300., num Gt 250., true);
      (num Eq 200., num Gt 250., false);
      (num Eq 200., num Neq 300., true);
      (num Eq 200., num Le 200., true);
      (num Lt 100., num Lt 200., true);
      (num Lt 200., num Lt 100., false);
      (num Lt 100., num Neq 150., true);
      (num Gt 100., num Neq 50., true);
      (Some (Eq, String "x"), Some (Neq, String "y"), true);
      (Some (Eq, String "x"), Some (Neq, String "x"), false);
      (num Gt 1., None, true);
      (None, num Gt 1., false);
      (None, None, true);
    ]
  in
  List.iteri
    (fun i (a, b, expected) ->
      if Containment.condition_implies a b <> expected then
        Alcotest.failf "implication case %d wrong" i)
    cases

let test_select_filtered () =
  let t = Tree.parse "<r><a><b>1</b></a><a><b>2</b></a></r>" in
  let all = Dom_eval.select (Parse.path "//b") t in
  check Alcotest.int "unfiltered" 2 (List.length all);
  (* forbid the first <a> subtree *)
  let filter id = not (id = [ 0 ] || Dom_eval.is_ancestor [ 0 ] id) in
  let filtered = Dom_eval.select_filtered ~filter (Parse.path "//b") t in
  check ids_t "only the second b" [ [ 1; 0 ] ] filtered;
  (* predicates are filtered too: a[b] fails when its only b is filtered *)
  let filtered2 =
    Dom_eval.select_filtered
      ~filter:(fun id -> id <> [ 0; 0 ])
      (Parse.path "/r/a[b]") t
  in
  check ids_t "predicate respects the filter" [ [ 1 ] ] filtered2

let prop_containment_sound =
  qtest ~count:200 "claimed containment holds on random documents"
    (QCheck2.Gen.triple Testkit.gen_tree (Testkit.gen_path ()) (Testkit.gen_path ()))
    ~print:(fun (t, r, s) ->
      Printf.sprintf "%s | R=%s S=%s" (Testkit.tree_print t)
        (Testkit.path_print r) (Testkit.path_print s))
    (fun (t, r, s) ->
      (not (Containment.contains r s))
      ||
      let rs = Dom_eval.select r t and ss = Dom_eval.select s t in
      List.for_all (fun id -> List.mem id rs) ss)

let prop_parser_total_on_garbage =
  qtest ~count:1000 "xpath parser total on arbitrary input"
    QCheck2.Gen.(
      oneof
        [
          string_printable;
          small_string
            ~gen:(oneofl [ '/'; '['; ']'; '*'; '='; '<'; '>'; '!'; 'a'; '\''; ' ' ]);
        ])
    (fun input ->
      match Parse.path input with
      | exception Parse.Error _ -> true
      | p -> Xmlac_xpath.Ast.size p >= 1)

let () =
  Alcotest.run "xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "shapes" `Quick test_parse_shapes;
          Alcotest.test_case "numbers vs strings" `Quick test_parse_numbers_and_strings;
          Alcotest.test_case "USER literal" `Quick test_parse_user_literal;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          prop_print_parse_roundtrip;
          prop_parser_total_on_garbage;
        ] );
      ( "dom-eval",
        [
          Alcotest.test_case "child axis" `Quick test_child_axis;
          Alcotest.test_case "descendant axis" `Quick test_descendant_axis;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "existence predicates" `Quick test_predicates_existence;
          Alcotest.test_case "value predicates" `Quick test_predicates_values;
          Alcotest.test_case "unparseable numbers" `Quick test_predicate_on_unparseable_number;
          Alcotest.test_case "multiple predicates" `Quick test_multiple_predicates;
          Alcotest.test_case "nested predicates" `Quick test_nested_predicates;
          Alcotest.test_case "string-value concatenation" `Quick test_text_content_concatenation;
          Alcotest.test_case "ancestor relations" `Quick test_structural_relations;
          Alcotest.test_case "node_at" `Quick test_node_at;
          prop_select_ids_valid;
          prop_descendant_superset_of_child;
          prop_select_sorted_unique;
        ] );
      ( "containment",
        [
          Alcotest.test_case "positive cases" `Quick test_containment_positive;
          Alcotest.test_case "negative cases" `Quick test_containment_negative;
          Alcotest.test_case "condition implication table" `Quick
            test_condition_implication_table;
          prop_containment_sound;
        ] );
      ( "filtered-select",
        [ Alcotest.test_case "filters apply everywhere" `Quick test_select_filtered ] );
    ]
