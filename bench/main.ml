(* Benchmark harness regenerating every table and figure of the paper's
   Section 7 (Experimental results), plus Bechamel micro-benchmarks of the
   kernels each experiment exercises.

   Usage:  dune exec bench/main.exe [-- --quick] [-- --no-bechamel]
                                    [-- --json FILE] [-- --jobs N]
                                    [-- --experiment NAME]

   Simulated times use the Table 1 cost model (hardware smart-card context
   unless stated); wall-clock time of this process is never reported as a
   result. Paper reference numbers are printed next to ours: absolute
   values are not expected to match (scaled documents, synthetic data), the
   shapes are.

   --json FILE additionally writes a machine-readable report (see
   Xmlac_obs.Bench_report, schema v1): one record per experiment row,
   carrying its metrics and wall time. CI's perf gate (bench_gate.exe)
   diffs that report against the committed BENCH_baseline.json. *)

module Tree = Xmlac_xml.Tree
module Writer = Xmlac_xml.Writer
module Layout = Xmlac_skip_index.Layout
module Stats = Xmlac_skip_index.Stats
module Container = Xmlac_crypto.Secure_container
module Policy = Xmlac_core.Policy
module Oracle = Xmlac_core.Oracle
module Evaluator = Xmlac_core.Evaluator
module Session = Xmlac_soe.Session
module Cost_model = Xmlac_soe.Cost_model
module Channel = Xmlac_soe.Channel
module W = Xmlac_workload
module Metrics = Xmlac_obs.Metrics
module Bench_report = Xmlac_obs.Bench_report

let quick = Array.exists (( = ) "--quick") Sys.argv
let no_bechamel = Array.exists (( = ) "--no-bechamel") Sys.argv

let json_path =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" then
      if i + 1 < Array.length Sys.argv then Some Sys.argv.(i + 1)
      else begin
        prerr_endline "bench: --json needs a FILE argument";
        exit 2
      end
    else find (i + 1)
  in
  find 1

(* --trace FILE captures every trace event of the run — client spans,
   server spans (the fleet's terminal runs in this process), channel phase
   events — as one merged JSONL file; xtop --check-trace validates it *)
let trace_path =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--trace" then
      if i + 1 < Array.length Sys.argv then Some Sys.argv.(i + 1)
      else begin
        prerr_endline "bench: --trace needs a FILE argument";
        exit 2
      end
    else find (i + 1)
  in
  find 1

(* --experiment NAME runs only that experiment (any registered name,
   including "fleet", the load generator excluded from the default run) *)
let experiment_filter =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--experiment" then
      if i + 1 < Array.length Sys.argv then Some Sys.argv.(i + 1)
      else begin
        prerr_endline "bench: --experiment needs a NAME argument";
        exit 2
      end
    else find (i + 1)
  in
  find 1

(* --jobs N runs every SOE evaluation with that many worker domains; the
   report's deterministic counters are identical at any value (CI diffs
   the wall-stripped reports of two job counts to prove it) *)
let jobs =
  let rec find i =
    if i >= Array.length Sys.argv then 1
    else if Sys.argv.(i) = "--jobs" then
      match
        if i + 1 < Array.length Sys.argv then
          int_of_string_opt Sys.argv.(i + 1)
        else None
      with
      | Some n when n >= 1 -> n
      | _ ->
          prerr_endline "bench: --jobs needs a positive integer";
          exit 2
    else find (i + 1)
  in
  find 1

(* The machine-readable report: experiments call [record] once per row;
   [run_experiment] times each experiment so records carry the wall-clock
   elapsed within their experiment when they were emitted. *)
let records : Bench_report.record list ref = ref []
let experiment_span : Xmlac_obs.Span.t option ref = ref None

let record ~name ~profile metrics =
  let wall_s =
    match !experiment_span with
    | Some s -> Xmlac_obs.Span.elapsed s
    | None -> 0.
  in
  records := { Bench_report.name; profile; metrics; wall_s } :: !records

let run_experiment name f =
  let span = Xmlac_obs.Span.start name in
  experiment_span := Some span;
  Fun.protect
    ~finally:(fun () ->
      experiment_span := None;
      (* balanced finish so experiment spans never stack as parents of
         the next experiment in the ambient trace context *)
      ignore (Xmlac_obs.Span.finish span : float))
    f

let scale n = if quick then n / 8 else n

(* Document sizes: the paper's Hospital is 3.6 MB and Treebank 59 MB; we
   scale to keep the full harness in tens of seconds (see DESIGN.md). *)
let hospital_bytes = scale 1_800_000
let wsu_bytes = scale 650_000
let sigmod_bytes = scale 350_000
let treebank_bytes = scale 1_500_000

let banner title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let kb n = float_of_int n /. 1024.

(* Shared documents (generated once) --------------------------------------- *)

let dataset_bytes = function
  | W.Datasets.Wsu -> wsu_bytes
  | W.Datasets.Sigmod -> sigmod_bytes
  | W.Datasets.Treebank -> treebank_bytes
  | W.Datasets.Hospital_doc -> hospital_bytes

let documents =
  lazy
    (List.map
       (fun kind ->
         (kind, W.Datasets.generate kind ~seed:20040704 ~target_bytes:(dataset_bytes kind)))
       W.Datasets.all)

let hospital =
  lazy (List.assoc W.Datasets.Hospital_doc (Lazy.force documents))

let config = Session.default_config ()

(* every evaluation in the harness honours the global --jobs count *)
let evaluate ?query ?verify ?strategy ?options config published policy =
  Session.evaluate ?query ?verify ?strategy ?options ~jobs config published
    policy

let evaluate_remote ?query ?verify ?strategy ?options config session policy =
  Session.evaluate_remote ?query ?verify ?strategy ?options ~jobs config
    session policy

let published_cache : (string, Session.published) Hashtbl.t = Hashtbl.create 8

let publish_cached name ~layout doc =
  let key = Printf.sprintf "%s/%s" name (Layout.to_string layout) in
  match Hashtbl.find_opt published_cache key with
  | Some p -> p
  | None ->
      let p = Session.publish config ~layout doc in
      Hashtbl.replace published_cache key p;
      p

(* Table 1 ------------------------------------------------------------------ *)

let table1 () =
  banner "Table 1. Communication and decryption costs (model constants)";
  Printf.printf "  %-28s %14s %14s\n" "Context" "Comm (MB/s)" "Decrypt (MB/s)";
  List.iter
    (fun (_, (c : Cost_model.t)) ->
      let comm_mb = c.Cost_model.comm_bytes_per_s /. (1024. *. 1024.)
      and dec_mb = c.Cost_model.decrypt_bytes_per_s /. (1024. *. 1024.) in
      Printf.printf "  %-28s %14.2f %14.2f\n" c.Cost_model.name comm_mb dec_mb;
      record ~name:"table1" ~profile:c.Cost_model.name
        Metrics.[ float "comm_mb_s" comm_mb; float "decrypt_mb_s" dec_mb ])
    Cost_model.table1;
  note "paper: 0.5/0.15 (hardware), 0.1/1.2 (Internet), 10/1.2 (LAN)"

(* Table 2 ------------------------------------------------------------------ *)

let table2 () =
  banner "Table 2. Documents characteristics (synthetic, scaled — see DESIGN.md)";
  Printf.printf "  %-9s %9s %9s %6s %6s %6s %9s %9s\n" "Doc" "Size" "Text"
    "MaxD" "AvgD" "Tags" "Texts" "Elements";
  List.iter
    (fun (kind, doc) ->
      let c = W.Datasets.characteristics ~name:(W.Datasets.name kind) doc in
      Printf.printf "  %-9s %8.0fK %8.0fK %6d %6.1f %6d %9d %9d\n"
        c.W.Datasets.name
        (kb c.W.Datasets.size_bytes)
        (kb c.W.Datasets.text_bytes)
        c.W.Datasets.max_depth c.W.Datasets.average_depth
        c.W.Datasets.distinct_tags c.W.Datasets.text_nodes c.W.Datasets.elements;
      record ~name:"table2" ~profile:c.W.Datasets.name
        Metrics.
          [
            int "size_bytes" c.W.Datasets.size_bytes;
            int "text_bytes" c.W.Datasets.text_bytes;
            int "max_depth" c.W.Datasets.max_depth;
            float "average_depth" c.W.Datasets.average_depth;
            int "distinct_tags" c.W.Datasets.distinct_tags;
            int "text_nodes" c.W.Datasets.text_nodes;
            int "elements" c.W.Datasets.elements;
          ])
    (Lazy.force documents);
  note "paper: WSU 1.3MB/depth 4/20 tags; Sigmod 350KB/6/11; Treebank 59MB/36/250;";
  note "       Hospital 3.6MB/8/89 (ours are scaled and synthetic)"

(* Figure 8 ----------------------------------------------------------------- *)

let fig8 () =
  banner "Figure 8. Index storage overhead (structure/text, %)";
  Printf.printf "  %-8s" "Layout";
  List.iter
    (fun (kind, _) -> Printf.printf " %9s" (W.Datasets.name kind))
    (Lazy.force documents);
  Printf.printf "\n";
  let all_measures =
    List.map (fun (kind, doc) -> (kind, Stats.measure_all doc)) (Lazy.force documents)
  in
  List.iter
    (fun layout ->
      Printf.printf "  %-8s" (Layout.to_string layout);
      List.iter
        (fun (_, measures) ->
          let m = List.find (fun s -> s.Stats.layout = layout) measures in
          Printf.printf " %9.1f" m.Stats.structure_over_text)
        all_measures;
      Printf.printf "\n")
    Layout.all;
  List.iter
    (fun (kind, measures) ->
      record ~name:"fig8" ~profile:(W.Datasets.name kind)
        (List.map
           (fun (m : Stats.t) ->
             Metrics.float
               (String.lowercase_ascii (Layout.to_string m.Stats.layout))
               m.Stats.structure_over_text)
           measures))
    all_measures;
  note "paper (WSU, Sigmod, Treebank, Hospital): NC 142/77/254/67; TC 16/15/38/11;";
  note "  TCS 24/36/106/16; TCSB 31/45/82(+big)/23(?); TCSBR 78/14/42/15 —";
  note "  expected shape: TC<<NC, TCS>TC, TCSB>TCS, TCSBR back near TC (except WSU)"

(* Figure 9 ----------------------------------------------------------------- *)

type profile_run = {
  pr_name : string;
  pr_policy : Policy.t;
}

let fig9_profiles () =
  [
    { pr_name = "Secretary"; pr_policy = W.Profiles.secretary };
    {
      pr_name = "Doctor";
      pr_policy = W.Profiles.doctor ~user:W.Hospital.full_time_physician;
    };
    {
      pr_name = "Researcher";
      pr_policy =
        (* the paper gives the Figure 9 researcher 10 protocols: one
           positive and one negative rule per group *)
        W.Profiles.researcher ~groups:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] ();
    };
  ]

let fig9 () =
  banner "Figure 9. Access control overhead (BF vs TCSBR vs LWB, no integrity)";
  let doc = Lazy.force hospital in
  let doc_bytes = String.length (Writer.tree_to_string doc) in
  note "Hospital document: %.0f KB XML" (kb doc_bytes);
  Printf.printf "  %-11s %10s %10s %10s %12s %21s\n" "Profile" "BF(s)"
    "TCSBR(s)" "LWB(s)" "result(KB)" "TCSBR cost split";
  List.iter
    (fun { pr_name; pr_policy } ->
      let bf_pub = publish_cached "hospital" ~layout:Layout.Tc doc in
      let ix_pub = publish_cached "hospital" ~layout:Layout.Tcsbr doc in
      let bf = evaluate ~verify:false ~strategy:"BF" config bf_pub pr_policy in
      let ix = evaluate ~verify:false config ix_pub pr_policy in
      let authorized = Session.authorized_encoded_bytes pr_policy doc in
      let lwb = Session.lwb ~verify:false config ~authorized_bytes:authorized in
      let b = ix.Session.breakdown in
      let pct x = 100. *. x /. b.Cost_model.total_s in
      Printf.printf
        "  %-11s %10.2f %10.2f %10.2f %12.1f   comm %4.1f%% dec %4.1f%% AC %4.1f%%\n"
        pr_name bf.Session.breakdown.Cost_model.total_s b.Cost_model.total_s
        lwb.Cost_model.total_s
        (kb ix.Session.result_bytes)
        (pct b.Cost_model.communication_s)
        (pct b.Cost_model.decryption_s)
        (pct b.Cost_model.access_control_s);
      record ~name:"fig9" ~profile:pr_name
        (Metrics.
           [
             float "bf_total_s" bf.Session.breakdown.Cost_model.total_s;
             float "tcsbr_total_s" b.Cost_model.total_s;
             float "lwb_total_s" lwb.Cost_model.total_s;
             float "result_kb" (kb ix.Session.result_bytes);
           ]
        @ Metrics.prefix "tcsbr" (Session.metrics ix)
        @ Metrics.prefix "bf" (Session.metrics bf)))
    (fig9_profiles ());
  note "paper (2.5MB doc): BF 19.5-20.4s; TCSBR 1.4/6.4/2.4s; LWB 1.8/5.8/1.3s;";
  note "  AC 2-15%% of total, decryption 53-60%%, communication 30-38%%"

(* Figure 10 ---------------------------------------------------------------- *)

let fig10 () =
  banner "Figure 10. Impact of queries: //Folder[//Age > v] over five views";
  let doc = Lazy.force hospital in
  let published = publish_cached "hospital" ~layout:Layout.Tcsbr doc in
  Printf.printf "  %-5s" "v";
  List.iter
    (fun v -> Printf.printf "  %16s" (W.Profiles.view_name v))
    W.Profiles.all_views;
  Printf.printf "\n  %-5s" "";
  List.iter (fun _ -> Printf.printf "  %8s %7s" "res(KB)" "t(s)") W.Profiles.all_views;
  Printf.printf "\n";
  List.iter
    (fun threshold ->
      Printf.printf "  %-5d" threshold;
      List.iter
        (fun view ->
          let policy = W.Profiles.view_policy view in
          let query = W.Profiles.age_query ~threshold in
          let m = evaluate ~verify:false ~query config published policy in
          Printf.printf "  %8.1f %7.2f"
            (kb m.Session.result_bytes)
            m.Session.breakdown.Cost_model.total_s;
          record ~name:"fig10"
            ~profile:
              (Printf.sprintf "%s/v%d" (W.Profiles.view_name view) threshold)
            Metrics.
              [
                float "result_kb" (kb m.Session.result_bytes);
                float "total_s" m.Session.breakdown.Cost_model.total_s;
              ])
        W.Profiles.all_views;
      Printf.printf "\n")
    [ 95; 85; 70; 50; 25; 0 ];
  note "paper: execution time decreases linearly with result size; non-zero";
  note "  intercept (parts of the document are analysed before being skipped)"

(* Figure 11 ---------------------------------------------------------------- *)

let fig11 () =
  banner "Figure 11. Impact of integrity control (simulated seconds)";
  let doc = Lazy.force hospital in
  Printf.printf "  %-11s %10s %10s %10s %10s %10s\n" "Profile" "ECB" "CBC-SHA"
    "CBC-SHAC" "ECB-MHT" "AES-CTR";
  let scheme_key = function
    | Container.Ecb -> "ecb_s"
    | Container.Cbc_sha -> "cbc_sha_s"
    | Container.Cbc_shac -> "cbc_shac_s"
    | Container.Ecb_mht -> "ecb_mht_s"
    | Container.Aes_ctr -> "aes_ctr_s"
  in
  List.iter
    (fun { pr_name; pr_policy } ->
      Printf.printf "  %-11s" pr_name;
      let metrics =
        List.map
          (fun scheme ->
            let config = Session.default_config ~scheme () in
            let published =
              publish_cached
                (Printf.sprintf "hospital-%s" (Container.scheme_to_string scheme))
                ~layout:Layout.Tcsbr doc
            in
            (* the per-scheme container must be encrypted under that scheme *)
            let published =
              if Container.scheme published.Session.container = scheme then
                published
              else Session.publish config ~layout:Layout.Tcsbr doc
            in
            let m =
              evaluate ~verify:(scheme <> Container.Ecb) config
                published pr_policy
            in
            Printf.printf " %10.2f" m.Session.breakdown.Cost_model.total_s;
            Metrics.float (scheme_key scheme)
              m.Session.breakdown.Cost_model.total_s)
          Container.all_schemes
      in
      Printf.printf "\n";
      record ~name:"fig11" ~profile:pr_name metrics)
    (fig9_profiles ());
  note "paper (Sec/Doc/Res): ECB 1.4/6.4/2.4; CBC-SHA 3.4/18.6/8.5;";
  note "  CBC-SHAC 2.4(?)/12.6/5.2; ECB-MHT 1.9/8.5/3.3 — integrity via MHT";
  note "  costs ~32-38%% over no integrity and beats both CBC schemes"

(* Figure 12 ---------------------------------------------------------------- *)

let fig12 () =
  banner
    "Figure 12. Performance on datasets (throughput = authorized output KB/s)";
  let rows =
    List.map
      (fun (kind, doc) ->
        let name = W.Datasets.name kind in
        let policies =
          match kind with
          | W.Datasets.Hospital_doc ->
              List.map
                (fun { pr_name; pr_policy } -> (pr_name, pr_policy))
                (fig9_profiles ())
          | _ -> [ (name, W.Rule_gen.generate ~seed:77 doc) ]
        in
        (name, doc, policies))
      (Lazy.force documents)
  in
  Printf.printf "  %-18s %12s %12s %12s %12s\n" "Workload" "TCSBR+int"
    "LWB+int" "TCSBR" "LWB";
  List.iter
    (fun (name, doc, policies) ->
      let published = publish_cached name ~layout:Layout.Tcsbr doc in
      List.iter
        (fun (pname, policy) ->
          let label = if name = pname then name else name ^ "/" ^ pname in
          (* the paper's throughput is the rate at which authorized data
             leaves the SOE: result bytes over total time. The LWB oracle
             reads only the authorized bytes of the *encoded* document. *)
          let m_int = evaluate ~verify:true config published policy in
          let m_noint = evaluate ~verify:false config published policy in
          let result = m_int.Session.result_bytes in
          let authorized = Session.authorized_encoded_bytes policy doc in
          let throughput seconds =
            if result = 0 then 0. else kb result /. seconds
          in
          let l_int =
            (Session.lwb ~verify:true config ~authorized_bytes:authorized)
              .Cost_model.total_s
          in
          let l_noint =
            (Session.lwb ~verify:false config ~authorized_bytes:authorized)
              .Cost_model.total_s
          in
          Printf.printf "  %-18s %12.0f %12.0f %12.0f %12.0f\n" label
            (throughput m_int.Session.breakdown.Cost_model.total_s)
            (throughput l_int)
            (throughput m_noint.Session.breakdown.Cost_model.total_s)
            (throughput l_noint);
          record ~name:"fig12" ~profile:label
            Metrics.
              [
                float "tcsbr_int_kbps"
                  (throughput m_int.Session.breakdown.Cost_model.total_s);
                float "lwb_int_kbps" (throughput l_int);
                float "tcsbr_kbps"
                  (throughput m_noint.Session.breakdown.Cost_model.total_s);
                float "lwb_kbps" (throughput l_noint);
                float "result_kb" (kb result);
              ])
        policies)
    rows;
  note "paper: 55-85 KB/s with integrity across all datasets (xDSL-era range";
  note "  16-128 KB/s); LWB above TCSBR; integrity costs roughly a third"

(* Contexts: projecting Figure 9 onto the other Table 1 architectures -------- *)

let contexts () =
  banner "Projection. Figure 9's TCSBR runs under each Table 1 context";
  let doc = Lazy.force hospital in
  Printf.printf "  %-11s %22s %22s %22s\n" "Profile"
    "Hardware (s)" "SW-Internet (s)" "SW-LAN (s)";
  let context_key = function
    | Cost_model.Hardware -> "hardware_s"
    | Cost_model.Software_internet -> "sw_internet_s"
    | Cost_model.Software_lan -> "sw_lan_s"
  in
  List.iter
    (fun { pr_name; pr_policy } ->
      Printf.printf "  %-11s" pr_name;
      let metrics =
        List.map
          (fun context ->
            let config = Session.default_config ~context () in
            let published = publish_cached "hospital" ~layout:Layout.Tcsbr doc in
            let m = evaluate ~verify:false config published pr_policy in
            let b = m.Session.breakdown in
            Printf.printf "  %8.2f (comm %3.0f%%)" b.Cost_model.total_s
              (100. *. b.Cost_model.communication_s /. b.Cost_model.total_s);
            Metrics.float (context_key context) b.Cost_model.total_s)
          Cost_model.all_contexts
      in
      Printf.printf "\n";
      record ~name:"contexts" ~profile:pr_name metrics)
    (fig9_profiles ());
  note "paper Table 1: 'the numbers allow projecting the performance results";
  note "  on different target architectures' — the Internet context is";
  note "  communication-bound, the LAN context decryption-bound"

(* Ablation: the design choices DESIGN.md calls out -------------------------- *)

let ablation () =
  banner "Ablation. Contribution of each skipping mechanism (TCSBR, no integrity)";
  let doc = Lazy.force hospital in
  let published = publish_cached "hospital" ~layout:Layout.Tcsbr doc in
  let configs =
    [
      ( "no skipping at all",
        "no_skipping_s",
        {
          Evaluator.enable_skipping = false;
          enable_rest_skips = false;
          enable_desctag_filter = false;
          enable_ara_memo = true;
        } );
      ( "skips, no DescTag filter",
        "skips_s",
        {
          Evaluator.enable_skipping = true;
          enable_rest_skips = false;
          enable_desctag_filter = false;
          enable_ara_memo = true;
        } );
      ( "skips + DescTag filter",
        "skips_desctag_s",
        {
          Evaluator.enable_skipping = true;
          enable_rest_skips = false;
          enable_desctag_filter = true;
          enable_ara_memo = true;
        } );
      ("full design (+tail skips)", "full_s", Evaluator.default_options);
    ]
  in
  Printf.printf "  %-27s %12s %12s %12s\n" "Configuration" "Secretary(s)"
    "Doctor(s)" "Researcher(s)";
  let per_profile : (string, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  List.iter
    (fun (name, key, options) ->
      Printf.printf "  %-27s" name;
      List.iter
        (fun { pr_name; pr_policy } ->
          let m =
            evaluate ~verify:false ~options config published pr_policy
          in
          let t = m.Session.breakdown.Cost_model.total_s in
          let cell =
            match Hashtbl.find_opt per_profile pr_name with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add per_profile pr_name r;
                r
          in
          cell := (key, t) :: !cell;
          Printf.printf " %12.2f" t)
        (fig9_profiles ());
      Printf.printf "\n")
    configs;
  List.iter
    (fun { pr_name; _ } ->
      match Hashtbl.find_opt per_profile pr_name with
      | Some cell ->
          record ~name:"ablation" ~profile:pr_name
            (List.rev_map (fun (k, t) -> Metrics.float k t) !cell)
      | None -> ())
    (fig9_profiles ());
  note "the DescTag bitmaps are what makes skipping decisions fire (Sec. 4.2);";
  note "tail skips (close-event trigger) add a final increment (Sec. 3.3)"

let ablation_geometry () =
  banner "Ablation. Chunk/fragment geometry of the secure container (ECB-MHT)";
  let doc = Lazy.force hospital in
  let policy = W.Profiles.secretary in
  Printf.printf "  %-22s %12s %12s %12s\n" "chunk/fragment" "time(s)"
    "bytes-in(KB)" "digests";
  List.iter
    (fun (chunk_size, fragment_size) ->
      let config = { config with Session.chunk_size; fragment_size } in
      let published = Session.publish config ~layout:Layout.Tcsbr doc in
      let m = evaluate config published policy in
      Printf.printf "  %-22s %12.2f %12.1f %12d\n"
        (Printf.sprintf "%dB / %dB" chunk_size fragment_size)
        m.Session.breakdown.Cost_model.total_s
        (kb m.Session.counters.Channel.bytes_to_soe)
        m.Session.counters.Channel.digests_decrypted;
      record ~name:"ablation_geometry"
        ~profile:(Printf.sprintf "%d/%d" chunk_size fragment_size)
        Metrics.
          [
            float "total_s" m.Session.breakdown.Cost_model.total_s;
            int "bytes_to_soe" m.Session.counters.Channel.bytes_to_soe;
            int "digests_decrypted" m.Session.counters.Channel.digests_decrypted;
          ])
    [ (1024, 64); (2048, 128); (2048, 256); (4096, 256); (8192, 512) ];
  note "smaller fragments read less around skip targets but pay more Merkle";
  note "overhead; the paper's 2KB/256B sits near the sweet spot"

(* SOE memory: streaming means no materialization ----------------------------- *)

let memory_scaling () =
  banner "SOE working memory vs document size (the streaming requirement)";
  Printf.printf "  %-12s %12s %14s %14s\n" "doc (KB XML)" "elements"
    "Doctor peak(B)" "Researcher(B)";
  List.iter
    (fun target ->
      let doc = W.Hospital.generate_sized ~seed:4 ~target_bytes:target () in
      let published = Session.publish config ~layout:Layout.Tcsbr doc in
      let peak policy =
        (evaluate ~verify:false config published policy).Session.eval
          .Evaluator.memory_peak_bytes
      in
      let doc_kb = String.length (Writer.tree_to_string doc) / 1024 in
      let elements = Tree.count_elements doc in
      let doctor_peak =
        peak (W.Profiles.doctor ~user:W.Hospital.full_time_physician)
      in
      let researcher_peak =
        peak (W.Profiles.researcher ~groups:[ 1; 2; 3; 4; 5 ] ())
      in
      Printf.printf "  %-12d %12d %14d %14d\n" doc_kb elements doctor_peak
        researcher_peak;
      record ~name:"memory_scaling" ~profile:(string_of_int target)
        Metrics.
          [
            int "doc_kb" doc_kb;
            int "elements" elements;
            int "doctor_peak_bytes" doctor_peak;
            int "researcher_peak_bytes" researcher_peak;
          ])
    (List.map scale [ 100_000; 400_000; 1_600_000 ]);
  note "the paper's SOE has kilobytes of RAM: the evaluator's working set";
  note "  scales with depth, policy and pending work — not with document size"

(* Update costs (paper Section 4.1's qualitative analysis) ------------------- *)

let update_costs () =
  banner "Update costs on the Skip index (Section 4.1: best vs worst cases)";
  let module Update = Xmlac_skip_index.Update in
  let doc =
    W.Hospital.generate
      ~config:{ W.Hospital.default_config with folders = 60 }
      ~seed:99 ()
  in
  let encoded = Xmlac_skip_index.Encoder.encode ~layout:Layout.Tcsbr doc in
  let n_children = List.length (Tree.children doc) in
  let ops =
    [
      ( "same-size text patch (middle)",
        Update.Set_text ([ n_children / 2; 0; 3; 0 ], "42") );
      ( "growing text patch (middle)",
        Update.Set_text
          ([ n_children / 2; 0; 3; 0 ], "a considerably longer value") );
      ( "delete last folder",
        Update.Delete_subtree [ n_children - 1 ] );
      ( "delete first folder",
        Update.Delete_subtree [ 0 ] );
      ( "insert folder at end",
        Update.Insert_child
          ([], n_children, Tree.parse "<Folder><Admin><Age>30</Age></Admin></Folder>") );
      ( "insert new tag (dict change)",
        Update.Insert_child ([], 0, Tree.parse "<Zebra>new</Zebra>") );
    ]
  in
  Printf.printf "  %-32s %10s %10s %8s %6s\n" "Operation" "doc(B)" "rewritten"
    "chunks" "dict";
  List.iter
    (fun (name, op) ->
      let _, cost = Update.update_encoded ~layout:Layout.Tcsbr encoded op in
      Printf.printf "  %-32s %10d %10d %8d %6s\n" name cost.Update.new_bytes
        cost.Update.rewritten_bytes cost.Update.chunks_to_reencrypt
        (if cost.Update.dictionary_changed then "yes" else "no");
      record ~name:"update_costs" ~profile:name
        Metrics.
          [
            int "new_bytes" cost.Update.new_bytes;
            int "rewritten_bytes" cost.Update.rewritten_bytes;
            int "chunks_to_reencrypt" cost.Update.chunks_to_reencrypt;
            int "dictionary_changed"
              (if cost.Update.dictionary_changed then 1 else 0);
          ])
    ops;
  note "paper: best case updates only ancestor SubtreeSizes; worst cases are a";
  note "  size crossing a power of two or a tag dictionary insertion/deletion"

(* Remote terminal ---------------------------------------------------------- *)

(* Not a paper figure: the wire subsystem's byte-accounting invariant. A
   fault-free remote terminal must ship exactly the payload bytes the
   in-process channel meters — the gate pins wire.payload_bytes equal to
   channel.bytes_to_soe (both directions) — and the view must match. *)
let remote () =
  banner "Remote terminal (loopback wire, Secretary profile)";
  let doc = Lazy.force hospital in
  Printf.printf "  %-9s %12s %12s %9s\n" "Scheme" "payload(B)" "channel(B)"
    "requests";
  List.iter
    (fun scheme ->
      let config = Session.default_config ~scheme () in
      let published =
        let p =
          publish_cached
            (Printf.sprintf "hospital-%s" (Container.scheme_to_string scheme))
            ~layout:Layout.Tcsbr doc
        in
        if Container.scheme p.Session.container = scheme then p
        else Session.publish config ~layout:Layout.Tcsbr doc
      in
      let server = Xmlac_wire.Server.make published.Session.container in
      let session =
        Xmlac_soe.Remote.connect (Xmlac_wire.Server.loopback_connector server)
      in
      let local = evaluate config published W.Profiles.secretary in
      let m = evaluate_remote config session W.Profiles.secretary in
      Xmlac_soe.Remote.close session;
      if m.Session.events <> local.Session.events then
        failwith "remote view diverges from the in-process channel";
      let w =
        match m.Session.wire with Some w -> w | None -> assert false
      in
      Printf.printf "  %-9s %12d %12d %9d\n"
        (Container.scheme_to_string scheme)
        w.Xmlac_wire.Stats.payload_bytes
        m.Session.counters.Channel.bytes_to_soe
        w.Xmlac_wire.Stats.requests;
      record ~name:"remote"
        ~profile:(Container.scheme_to_string scheme)
        (Session.metrics m))
    Container.all_schemes;
  note "wire payload equals the channel's bytes_to_soe under every scheme;";
  note "  the perf gate holds the equality in both directions"

(* Decrypt-ahead pipeline ---------------------------------------------------- *)

(* Not a paper figure: the worker-pool speedup on the channel's chunked
   decrypt+verify path. Each row reads the full payload through the SOE
   channel in 64 KB slabs at a given job count; the delivered bytes must
   be identical at every count (checked by digest), only the wall time
   may move. Wall metrics are exempt from gating; the byte counters and
   cache tallies are gated like everywhere else. *)
let pipeline () =
  banner "Decrypt-ahead pipeline: full-payload channel reads vs worker domains";
  let doc = Lazy.force hospital in
  Printf.printf "  %-9s %5s %12s %10s %9s %10s\n" "Scheme" "jobs" "payload(B)"
    "wall(s)" "speedup" "pool tasks";
  List.iter
    (fun scheme ->
      let config = Session.default_config ~scheme () in
      let published = Session.publish config ~layout:Layout.Tcsbr doc in
      let container = published.Session.container in
      let payload = Container.payload_length container in
      let read_all counters pool =
        let source =
          Channel.source ?pool ~container ~key:config.Session.key counters
        in
        let buf = Buffer.create payload in
        let slab = 65536 in
        let pos = ref 0 in
        while !pos < payload do
          let n = min slab (payload - !pos) in
          Buffer.add_string buf
            (source.Xmlac_skip_index.Decoder.read ~pos:!pos ~len:n);
          pos := !pos + n
        done;
        Xmlac_crypto.Sha1.digest (Buffer.contents buf)
      in
      let base_wall = ref 0.0 in
      let base_digest = ref "" in
      List.iter
        (fun row_jobs ->
          let counters = Channel.fresh_counters () in
          (* domain spawn/join stays outside the timed region, like a
             session that reuses its pool across reads *)
          let timed_read pool =
            Xmlac_obs.Span.time "pipeline.read" (fun () ->
                read_all counters pool)
          in
          let digest, wall_s =
            if row_jobs <= 1 then timed_read None
            else
              Xmlac_soe.Pool.with_pool ~jobs:row_jobs (fun p ->
                  timed_read (Some p))
          in
          if row_jobs = 1 then begin
            base_wall := wall_s;
            base_digest := digest
          end
          else if digest <> !base_digest then
            failwith "pipeline: delivered bytes diverge across job counts";
          let speedup = !base_wall /. wall_s in
          Printf.printf "  %-9s %5d %12d %10.3f %8.2fx %10s\n"
            (Container.scheme_to_string scheme)
            row_jobs payload wall_s speedup
            (if row_jobs = 1 then "-" else "pooled");
          record ~name:"pipeline"
            ~profile:
              (Printf.sprintf "%s_j%d"
                 (String.lowercase_ascii (Container.scheme_to_string scheme))
                 row_jobs)
            (Metrics.
               [
                 int "payload_bytes" payload;
                 int "bytes_decrypted"
                   counters.Channel.bytes_decrypted;
                 int "bytes_hashed" counters.Channel.bytes_hashed;
               ]
            @ Metrics.prefix "cache" (Channel.cache_metrics counters)
            @ Metrics.
                [
                  int "pool.jobs" row_jobs;
                  float "wall_read_s" wall_s;
                  float "wall_speedup" speedup;
                ]))
        [ 1; 2; 4 ])
    [ Container.Ecb_mht; Container.Cbc_shac ];
  note "delivered bytes are digest-checked identical at every job count;";
  note "  only wall time moves — the deterministic counters are gated as usual"

(* Fleet serving ------------------------------------------------------------ *)

(* Not a paper figure: a load generator for the multi-tenant terminal.
   Hundreds of simulated SOE clients share a few multiplexed connections
   to one registry server publishing two containers, and each runs the
   full evaluate-verify pipeline. Every client's view is checked
   byte-identical to the local (in-process) evaluation of its container,
   so the numbers only count runs that delivered correct output. Client
   counts and payload bytes are deterministic; latencies are wall-clock
   (wall-prefixed, gate-exempt). Run it with --experiment fleet. *)
let fleet () =
  banner "Fleet serving: concurrent multiplexed SOE clients, two containers";
  let module Wire = Xmlac_wire in
  let module Remote = Xmlac_soe.Remote in
  let clients = 200 in
  let endpoints = 8 (* mux connections the clients share *) in
  let tenants =
    (* two containers under different schemes, small enough that hundreds
       of full evaluations stay in seconds *)
    List.map
      (fun (id, scheme, seed) ->
        let config =
          {
            (Session.default_config ~scheme ()) with
            Session.chunk_size = 1024;
            fragment_size = 128;
          }
        in
        let doc =
          W.Hospital.generate ~seed
            ~config:{ W.Hospital.default_config with folders = 3 }
            ()
        in
        let published = Session.publish config ~layout:Layout.Tcsbr doc in
        let local = Session.evaluate config published W.Profiles.secretary in
        (id, config, published, local))
      [
        ("records", Container.Ecb_mht, 31);
        ("billing", Container.Cbc_sha, 32);
      ]
  in
  let server = Wire.Server.create () in
  List.iter
    (fun (id, _, published, _) ->
      Wire.Server.publish server ~id published.Session.container)
    tenants;
  let listener = Wire.Transport.listen (Wire.Transport.Tcp ("127.0.0.1", 0)) in
  let bound = Wire.Transport.bound_addr listener in
  let stop = ref false in
  let server_thread =
    Thread.create
      (fun () ->
        try
          Wire.Server.serve ~max_sessions:64 ~domains:2 ~stop server listener
        with Wire.Error.Wire _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join server_thread;
      Wire.Transport.close_listener listener)
    (fun () ->
      let connector () = Wire.Transport.connect bound in
      (* every endpoint negotiates traced mux framing under its own trace
         id; per-client ids below rebind each session's trace, so one
         merged --trace file separates tenants and clients *)
      let muxes =
        Array.init endpoints (fun e ->
            Wire.Mux.connect ~trace:(Printf.sprintf "fleet-ep-%d" e) connector)
      in
      (* sequential v1.1 reference: one plain short-form-hello connection;
         it binds the first published container ("records") and pins the
         payload bytes every multiplexed records client must also meter *)
      let v1_payload =
        let id, config, _, local = List.hd tenants in
        assert (id = "records");
        let r =
          Remote.connect
            ~config:
              {
                Wire.Client.default_config with
                Wire.Client.protocol_version = 1;
              }
            connector
        in
        let m = evaluate_remote config r W.Profiles.secretary in
        let w = match m.Session.wire with Some w -> w | None -> assert false in
        Remote.close r;
        if m.Session.events <> local.Session.events then
          failwith "fleet: v1.1 reference diverges from local evaluation";
        w.Wire.Stats.payload_bytes
      in
      let hist = Xmlac_obs.Histogram.make "fleet.rtt" in
      let hist_mutex = Mutex.create () in
      let payload_total = ref 0 in
      let payload_by_tenant : (string, int) Hashtbl.t = Hashtbl.create 4 in
      let failures = Array.make clients None in
      let worker i =
        let id, config, _, local = List.nth tenants (i mod List.length tenants) in
        let mux = muxes.(i mod endpoints) in
        try
          let (), wall_s =
            Xmlac_obs.Span.time "fleet.client" (fun () ->
                let r =
                  Remote.connect ~container:id
                    ~trace_id:(Printf.sprintf "fleet-client-%d" i)
                    ~config:
                      {
                        Wire.Client.default_config with
                        Wire.Client.retry_seed = i;
                      }
                    (Wire.Mux.session mux)
                in
                let m = evaluate_remote config r W.Profiles.secretary in
                let w =
                  match m.Session.wire with Some w -> w | None -> assert false
                in
                Remote.close r;
                if m.Session.events <> local.Session.events then
                  failwith "fleet client: view diverges from local evaluation";
                Mutex.lock hist_mutex;
                payload_total := !payload_total + w.Wire.Stats.payload_bytes;
                (* every client of a tenant meters identical payload *)
                (match Hashtbl.find_opt payload_by_tenant id with
                | None ->
                    Hashtbl.replace payload_by_tenant id
                      w.Wire.Stats.payload_bytes
                | Some p ->
                    if p <> w.Wire.Stats.payload_bytes then
                      failwith "fleet: payload bytes diverge within a tenant");
                Mutex.unlock hist_mutex)
          in
          Mutex.lock hist_mutex;
          Xmlac_obs.Histogram.observe hist wall_s;
          Mutex.unlock hist_mutex
        with e -> failures.(i) <- Some e
      in
      let threads = List.init clients (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i -> function
          | Some e ->
              failwith
                (Printf.sprintf "fleet client %d failed: %s" i
                   (Printexc.to_string e))
          | None -> ())
        failures;
      Array.iter Wire.Mux.close muxes;
      (* byte-equality spot check: multiplexed v1.2 sessions meter exactly
         what the sequential v1.1 connection did *)
      (match Hashtbl.find_opt payload_by_tenant "records" with
      | Some p when p = v1_payload -> ()
      | Some p ->
          failwith
            (Printf.sprintf "fleet: mux payload %d <> v1.1 payload %d" p
               v1_payload)
      | None -> failwith "fleet: no records client completed");
      let totals = Wire.Server.totals server in
      let cache = Wire.Server.cache_stats server in
      let p50 = Xmlac_obs.Histogram.quantile hist 0.5 in
      let p99 = Xmlac_obs.Histogram.quantile hist 0.99 in
      Printf.printf
        "  %d clients over %d mux connections, %d containers, 2 domains\n"
        clients endpoints (List.length tenants);
      Printf.printf "  per-client latency: p50 %.4fs  p99 %.4fs  mean %.4fs\n"
        p50 p99 (Xmlac_obs.Histogram.mean hist);
      Printf.printf
        "  server: %d requests, %d mux sessions, %d busy rejections, cache \
         %d/%d hit/miss\n"
        totals.Wire.Stats.requests totals.Wire.Stats.mux_sessions
        totals.Wire.Stats.busy_rejections cache.Xmlac_runtime.Lru.hits
        cache.Xmlac_runtime.Lru.misses;
      (* admin plane cross-check: the Stats frame a local client fetches
         must agree with the registry's own snapshot, tenant for tenant *)
      let wire_view =
        let c = Wire.Client.connect connector in
        let json = Wire.Client.fetch_stats c in
        Wire.Client.close c;
        match Wire.Telemetry.of_string json with
        | Ok v -> v
        | Error msg -> failwith ("fleet: Stats frame rejected: " ^ msg)
      in
      let own_view = Wire.Server.telemetry_snapshot server in
      List.iter2
        (fun (a : Wire.Telemetry.tenant_view) (b : Wire.Telemetry.tenant_view)
           ->
          let sa = a.Wire.Telemetry.tv_service
          and sb = b.Wire.Telemetry.tv_service in
          if
            a.Wire.Telemetry.tv_id <> b.Wire.Telemetry.tv_id
            || a.Wire.Telemetry.tv_requests <> b.Wire.Telemetry.tv_requests
            || sa.Wire.Telemetry.sv_count <> sb.Wire.Telemetry.sv_count
            || abs_float
                 (sa.Wire.Telemetry.sv_p50_s -. sb.Wire.Telemetry.sv_p50_s)
               > 1e-9
            || abs_float
                 (sa.Wire.Telemetry.sv_p99_s -. sb.Wire.Telemetry.sv_p99_s)
               > 1e-9
          then
            failwith
              (Printf.sprintf
                 "fleet: Stats frame diverges from registry snapshot for %s"
                 a.Wire.Telemetry.tv_id))
        wire_view.Wire.Telemetry.tenants own_view.Wire.Telemetry.tenants;
      Printf.printf "  per-tenant service time (Stats frame):\n";
      List.iter
        (fun (t : Wire.Telemetry.tenant_view) ->
          let sv = t.Wire.Telemetry.tv_service in
          Printf.printf
            "    %-10s %d sessions, %d requests, p50 %.5fs p99 %.5fs\n"
            t.Wire.Telemetry.tv_id t.Wire.Telemetry.tv_sessions
            t.Wire.Telemetry.tv_requests sv.Wire.Telemetry.sv_p50_s
            sv.Wire.Telemetry.sv_p99_s)
        wire_view.Wire.Telemetry.tenants;
      record ~name:"fleet" ~profile:"all"
        (Metrics.(
           [
             int "clients" clients;
             int "containers" (List.length tenants);
             int "mux_connections" endpoints;
             int "payload_bytes" !payload_total;
             float "wall_p50_s" p50;
             float "wall_p99_s" p99;
           ]
           (* server-side telemetry columns: request counts vary with
              retries and the latencies with load, so every derived column
              keeps the gate-exempt wall prefix on its final segment *)
           @ List.concat_map
               (fun (t : Wire.Telemetry.tenant_view) ->
                 let sv = t.Wire.Telemetry.tv_service in
                 prefix ("server." ^ t.Wire.Telemetry.tv_id)
                   [
                     float "wall_requests" (float_of_int t.Wire.Telemetry.tv_requests);
                     float "wall_service_p50_s" sv.Wire.Telemetry.sv_p50_s;
                     float "wall_service_p99_s" sv.Wire.Telemetry.sv_p99_s;
                   ])
               wire_view.Wire.Telemetry.tenants));
      note "every client's view is byte-checked against the local evaluation;";
      note
        "  latencies are wall-clock and exempt from the perf gate; the \
         per-tenant";
      note "  columns are cross-checked against the Get_stats admin frame")

(* Dissemination ------------------------------------------------------------ *)

(* The dissemination subsystem end to end, per scheme: a publisher
   republishes a small Hospital document with chunk deltas through an
   in-process registry server while a syncing mirror pulls each delta
   over the wire. Every round is cross-checked three ways — the synced
   ciphertext decrypts to the publisher's exact payload, a fresh full
   fetch agrees byte for byte, and the SOE evaluation of the replica
   matches the origin. A final key rotation revokes a subject and
   proves the old epoch's key and license are dead. The byte counters
   are deterministic (the gate pins delta_bytes < full_bytes); the
   latencies carry the gate-exempt wall prefix. *)
let dissem () =
  banner "Dissemination: chunk-delta sync vs full re-fetch, key rotation";
  let module Wire = Xmlac_wire in
  let module Publisher = Xmlac_dissem.Publisher in
  let module Update = Xmlac_skip_index.Update in
  let module License = Xmlac_soe.License in
  let rounds = if quick then 4 else 8 in
  let folders = 3 in
  let policy = W.Profiles.secretary in
  List.iter
    (fun (label, scheme) ->
      let doc =
        W.Hospital.generate ~seed:47
          ~config:{ W.Hospital.default_config with folders }
          ()
      in
      let payload0 =
        Xmlac_skip_index.Encoder.encode ~layout:Layout.Tcsbr doc
      in
      let master = "dissem-bench-master-" ^ label in
      let p =
        Publisher.create ~chunk_size:1024 ~fragment_size:128 ~scheme ~master
          payload0
      in
      let server = Wire.Server.create () in
      Wire.Server.publish server ~id:"doc" (Publisher.container p);
      let listener =
        Wire.Transport.listen (Wire.Transport.Tcp ("127.0.0.1", 0))
      in
      let bound = Wire.Transport.bound_addr listener in
      let stop = ref false in
      let server_thread =
        Thread.create
          (fun () ->
            try
              Wire.Server.serve ~max_sessions:16 ~domains:1 ~stop server
                listener
            with Wire.Error.Wire _ -> ())
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          stop := true;
          Thread.join server_thread;
          Wire.Transport.close_listener listener)
        (fun () ->
          let connector () = Wire.Transport.connect bound in
          let cfg =
            { Wire.Client.default_config with Wire.Client.container = "doc" }
          in
          let sync_hist = Xmlac_obs.Histogram.make "dissem.sync" in
          let read_hist = Xmlac_obs.Histogram.make "dissem.read" in
          let delta_bytes = ref 0 in
          let full_bytes = ref 0 in
          let delta_chunks = ref 0 in
          (* bootstrap fetch: common to both strategies, counted in neither *)
          let m = Wire.Mirror.fetch ~config:cfg connector in
          let replica () =
            {
              Session.layout = Layout.Tcsbr;
              container = Wire.Mirror.container m;
              encoded_bytes = String.length (Publisher.payload p);
              source_text_bytes = String.length (Writer.tree_to_string doc);
            }
          in
          let sconfig () =
            {
              (Session.default_config ~scheme ()) with
              Session.chunk_size = 1024;
              fragment_size = 128;
              key = Publisher.key p;
            }
          in
          (* the synced replica, a fresh full fetch, and the publisher's
             own payload must agree byte for byte; the fetch meters what a
             non-syncing client would have paid for this republication *)
          let check_round tag =
            let key = Publisher.key p in
            let pt_sync =
              Container.decrypt_all (Wire.Mirror.container m) ~key
                ~verify:true
            in
            if pt_sync <> Publisher.payload p then
              failwith (tag ^ ": synced replica diverges from publisher");
            let m2 = Wire.Mirror.fetch ~config:cfg connector in
            full_bytes :=
              !full_bytes + (Wire.Mirror.stats m2).Wire.Stats.payload_bytes;
            let pt_full =
              Container.decrypt_all (Wire.Mirror.container m2) ~key
                ~verify:true
            in
            Wire.Mirror.close m2;
            if pt_full <> pt_sync then
              failwith (tag ^ ": full re-fetch diverges from synced replica")
          in
          for r = 1 to rounds do
            (* the canonical small edit: a same-length SSN rewrite, so only
               the chunks covering that text go dirty *)
            let folder = (r - 1) mod folders in
            let digits =
              Printf.sprintf "%09d" (r * 1_000_037 mod 1_000_000_000)
            in
            let payload', cost =
              Update.update_encoded ~chunk_size:1024 ~layout:Layout.Tcsbr
                (Publisher.payload p)
                (Update.Set_text ([ folder; 0; 0; 0 ], digits))
            in
            let delta, rewritten = Publisher.update p ~payload:payload' in
            if rewritten <> cost.Update.chunks_dirty then
              failwith "dissem: cost model disagrees with the re-encryptor";
            delta_chunks := !delta_chunks + List.length rewritten;
            (match Wire.Server.apply_delta server ~id:"doc" delta with
            | Ok _ -> ()
            | Error e -> failwith ("dissem: apply_delta: " ^ e));
            let outcome, wall_s =
              Xmlac_obs.Span.time "dissem.sync" (fun () -> Wire.Mirror.sync m)
            in
            Xmlac_obs.Histogram.observe sync_hist wall_s;
            (match outcome with
            | Wire.Mirror.Applied { delta_bytes = b; _ } ->
                delta_bytes := !delta_bytes + b
            | Wire.Mirror.Uptodate | Wire.Mirror.Refetched _ ->
                failwith "dissem: expected a chunk delta");
            check_round (Printf.sprintf "dissem %s round %d" label r);
            (* read throughput on the synced replica, checked against the
               origin container's evaluation *)
            let published = replica () and sconfig = sconfig () in
            let view, wall_read =
              Xmlac_obs.Span.time "dissem.read" (fun () ->
                  evaluate sconfig published policy)
            in
            Xmlac_obs.Histogram.observe read_hist wall_read;
            let origin =
              evaluate sconfig
                { published with Session.container = Publisher.container p }
                policy
            in
            if view.Session.events <> origin.Session.events then
              failwith "dissem: synced replica view diverges from origin"
          done;
          (* key rotation: revoke a subject; the delta covers every chunk
             and carries the revocation list *)
          let old_key = Publisher.key p in
          let rot = Publisher.rotate p ~revoke:[ "mallory" ] in
          (match Wire.Server.apply_delta server ~id:"doc" rot with
          | Ok _ -> ()
          | Error e -> failwith ("dissem: rotation apply_delta: " ^ e));
          (match Wire.Mirror.sync m with
          | Wire.Mirror.Applied { delta_bytes = b; revoked; _ } ->
              delta_bytes := !delta_bytes + b;
              if revoked <> [ "mallory" ] then
                failwith "dissem: rotation delta lost the revocation list"
          | Wire.Mirror.Uptodate | Wire.Mirror.Refetched _ ->
              failwith "dissem: rotation delta expected");
          check_round (Printf.sprintf "dissem %s rotation" label);
          (* the old epoch is dead: its key no longer decrypts the rotated
             container, and a stale or revoked license is refused before
             any ciphertext is touched *)
          (match
             Container.decrypt_all (Wire.Mirror.container m) ~key:old_key
               ~verify:(scheme <> Container.Ecb)
           with
          | exception _ -> ()
          | pt ->
              if pt = Publisher.payload p then
                failwith "dissem: pre-rotation key still decrypts");
          let epoch = Container.key_epoch (Wire.Mirror.container m) in
          let stale =
            License.make ~subject:"mallory"
              ~document_key:(Publisher.epoch_key_bytes ~master ~epoch:0)
              []
          in
          (match License.authorize stale ~container_epoch:epoch with
          | Error _ -> ()
          | Ok () -> failwith "dissem: stale-epoch license accepted");
          let reissued =
            License.make ~subject:"mallory" ~key_epoch:epoch
              ~document_key:(Publisher.epoch_key_bytes ~master ~epoch)
              []
          in
          (match
             License.authorize reissued ~revoked:(Wire.Mirror.revoked m)
               ~container_epoch:epoch
           with
          | Error _ -> ()
          | Ok () -> failwith "dissem: revoked subject still authorized");
          (* the replica is job-count independent like any container *)
          let published = replica () and sconfig = sconfig () in
          let j1 = Session.evaluate ~jobs:1 sconfig published policy in
          let j4 = Session.evaluate ~jobs:4 sconfig published policy in
          if j1.Session.events <> j4.Session.events then
            failwith "dissem: job counts disagree on the synced replica";
          Wire.Mirror.close m;
          let chunks = Container.chunk_count (Publisher.container p) in
          Printf.printf
            "  %-8s %d updates + 1 rotation: delta %6d B vs full re-fetch \
             %7d B (%4.1fx), %d/%d chunks rewritten\n"
            label rounds !delta_bytes !full_bytes
            (float_of_int !full_bytes /. float_of_int !delta_bytes)
            !delta_chunks
            (chunks * rounds);
          record ~name:"dissem" ~profile:label
            Metrics.
              [
                int "updates" rounds;
                int "chunks" chunks;
                int "delta_chunks" !delta_chunks;
                int "delta_bytes" !delta_bytes;
                int "full_bytes" !full_bytes;
                int "generation" (Publisher.generation p);
                int "key_epoch" (Publisher.epoch p);
                float "wall_sync_p50_s"
                  (Xmlac_obs.Histogram.quantile sync_hist 0.5);
                float "wall_sync_p99_s"
                  (Xmlac_obs.Histogram.quantile sync_hist 0.99);
                float "wall_read_p50_s"
                  (Xmlac_obs.Histogram.quantile read_hist 0.5);
                float "wall_read_p99_s"
                  (Xmlac_obs.Histogram.quantile read_hist 0.99);
              ]))
    [
      ("ecb", Container.Ecb);
      ("ecb_mht", Container.Ecb_mht);
      ("cbc_sha", Container.Cbc_sha);
      ("cbc_shac", Container.Cbc_shac);
      ("aes_ctr", Container.Aes_ctr);
    ];
  note "every round byte-checks synced ciphertext against a full re-fetch and";
  note "  the publisher's payload; the gate pins delta_bytes < full_bytes and";
  note "  the rotation proves stale keys and licenses are dead"

(* Crypto engines ----------------------------------------------------------- *)

(* Reference vs fast engine over the same published containers: the fast
   engine (bitsliced DES, batched Merkle verification) must produce
   byte-identical output and cost counters — checked here, hard — and win
   on wall-clock for the DES schemes. The gate pins [fast <= reference]
   per scheme row and a >= 4x speedup on the raw positional-ECB
   full-document decrypt (the bitsliced kernel with nothing else in the
   way). All recorded integers are deterministic and job-independent: the
   reads below run without a pool regardless of --jobs. *)
let crypto () =
  banner "Crypto engines: reference vs fast (bitsliced DES, batched Merkle)";
  let module Engine = Xmlac_crypto.Engine in
  let module Modes = Xmlac_crypto.Modes in
  let key = config.Session.key in
  let payload =
    Xmlac_skip_index.Encoder.encode ~layout:Layout.Tcsbr (Lazy.force hospital)
  in
  let reps = if quick then 1 else 3 in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Xmlac_obs.Span.now () in
      f ();
      let dt = Xmlac_obs.Span.now () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* the kernel row: whole-payload positional-ECB decrypt, pure DES *)
  let padded =
    let n = String.length payload in
    payload ^ String.make (((n + 7) / 8 * 8) - n) '\000'
  in
  let ct =
    Modes.positional_encrypt (Modes.of_triple_des key) ~base:0 padded
  in
  let dst = Bytes.create (String.length ct) in
  let kernel engine =
    let c = Engine.cipher engine key in
    time_best (fun () ->
        Modes.positional_decrypt_into c ~base:0 ~src:ct ~src_pos:0 ~dst
          ~dst_pos:0 ~len:(String.length ct))
  in
  let t_ref = kernel Engine.Reference in
  let ref_out = Bytes.to_string dst in
  let t_fast = kernel Engine.Fast in
  if ref_out <> Bytes.to_string dst then
    failwith "crypto: engines disagree on the kernel decrypt";
  if ref_out <> padded then failwith "crypto: kernel decrypt is wrong";
  Printf.printf
    "  kernel positional-ECB %4d KB   reference %8.4fs   fast %8.4fs  (%.1fx)\n"
    (String.length ct / 1024)
    t_ref t_fast (t_ref /. t_fast);
  record ~name:"crypto_kernel" ~profile:"ecb_full_decrypt"
    Metrics.
      [
        int "bytes" (String.length ct);
        float "reference.wall_s" t_ref;
        float "fast.wall_s" t_fast;
        float "wall_speedup" (t_ref /. t_fast);
      ];
  (* per-scheme rows: full sequential read through the channel, integrity
     verification on (except plain ECB, which carries no digests) *)
  Printf.printf "  %-9s %12s %12s %9s %9s %7s\n" "scheme" "reference_s"
    "fast_s" "speedup" "batched" "groups";
  List.iter
    (fun (sname, scheme) ->
      let container =
        Container.encrypt ~chunk_size:config.Session.chunk_size
          ~fragment_size:config.Session.fragment_size ~scheme ~key payload
      in
      let verify = scheme <> Container.Ecb in
      let read_all engine counters =
        let source = Channel.source ~verify ~engine ~container ~key counters in
        let len = source.Xmlac_skip_index.Decoder.length in
        let buf = Buffer.create len in
        let step = 16384 in
        let rec go pos =
          if pos < len then begin
            Buffer.add_string buf
              (source.Xmlac_skip_index.Decoder.read ~pos ~len:(min step (len - pos)));
            go (pos + step)
          end
        in
        go 0;
        Buffer.contents buf
      in
      let run engine =
        let counters = Channel.fresh_counters () in
        let out = read_all engine counters in
        let t =
          time_best (fun () ->
              ignore (read_all engine (Channel.fresh_counters ()) : string))
        in
        (out, counters, t)
      in
      let out_r, c_r, t_r = run Engine.Reference in
      let out_f, c_f, t_f = run Engine.Fast in
      if out_r <> out_f then
        failwith (Printf.sprintf "crypto: engines disagree under %s" sname);
      let model c =
        Channel.
          ( c.bytes_to_soe,
            c.bytes_decrypted,
            c.bytes_hashed,
            c.blocks_decrypted,
            c.digests_decrypted,
            c.hashes_verified,
            c.fragment_fetches,
            c.chunk_fetches )
      in
      if model c_r <> model c_f then
        failwith
          (Printf.sprintf "crypto: cost counters diverge across engines (%s)"
             sname);
      Printf.printf "  %-9s %12.4f %12.4f %8.1fx %9d %7d\n" sname t_r t_f
        (t_r /. t_f) c_f.Channel.engine_batched_blocks
        c_f.Channel.engine_merkle_groups;
      (* the AES row gets its own record name: both engines run the same
         AES code, so no ordering is pinned on it *)
      record
        ~name:(if scheme = Container.Aes_ctr then "crypto_aes" else "crypto")
        ~profile:sname
        Metrics.
          [
            float "reference.wall_s" t_r;
            float "fast.wall_s" t_f;
            float "wall_speedup" (t_r /. t_f);
            int "bytes_decrypted" c_r.Channel.bytes_decrypted;
            int "blocks_decrypted" c_r.Channel.blocks_decrypted;
            int "bytes_hashed" c_r.Channel.bytes_hashed;
            int "hashes_verified" c_r.Channel.hashes_verified;
            int "reference.engine.batched_blocks"
              c_r.Channel.engine_batched_blocks;
            int "fast.engine.batched_blocks" c_f.Channel.engine_batched_blocks;
            int "fast.engine.merkle_groups" c_f.Channel.engine_merkle_groups;
          ])
    [
      ("ecb", Container.Ecb);
      ("cbc_sha", Container.Cbc_sha);
      ("cbc_shac", Container.Cbc_shac);
      ("ecb_mht", Container.Ecb_mht);
      ("aes_ctr", Container.Aes_ctr);
    ];
  note "output and cost counters are byte-identical across engines (checked";
  note "  hard above); the gate pins fast <= reference per DES row and >= 4x";
  note "  on the kernel row — wall-clock is the only thing an engine changes"

(* Bechamel micro-benchmarks ------------------------------------------------ *)

let bechamel_suite () =
  banner "Bechamel micro-benchmarks (wall-clock of this process, ns/run)";
  let open Bechamel in
  let small_doc =
    W.Hospital.generate
      ~config:{ W.Hospital.default_config with folders = 8 }
      ~seed:5 ()
  in
  let small_encoded = Xmlac_skip_index.Encoder.encode ~layout:Layout.Tcsbr small_doc in
  let small_xml = Writer.tree_to_string small_doc in
  let key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-demo-24-byte-key!!" in
  let cipher = Xmlac_crypto.Modes.of_triple_des key in
  let buf64k = String.make 65536 'x' in
  let policy = W.Profiles.secretary in
  let published = Session.publish config ~layout:Layout.Tcsbr small_doc in
  let query = W.Profiles.age_query ~threshold:50 in
  let tests =
    [
      (* Table 1: the decryption kernel the model charges for *)
      Test.make ~name:"t1:3des-block"
        (Staged.stage (fun () -> Xmlac_crypto.Des.Triple.encrypt_block key 42L));
      (* Table 2: parsing the source documents *)
      Test.make ~name:"t2:xml-parse"
        (Staged.stage (fun () -> Xmlac_xml.Parser.events small_xml));
      (* Figure 8: skip-index encoding *)
      Test.make ~name:"f8:tcsbr-encode"
        (Staged.stage (fun () ->
             Xmlac_skip_index.Encoder.encode ~layout:Layout.Tcsbr small_doc));
      (* Figure 9: the full streaming evaluation over the skip index *)
      Test.make ~name:"f9:evaluate-view"
        (Staged.stage (fun () ->
             Evaluator.run ~policy
               (Xmlac_core.Input.of_decoder
                  (Xmlac_skip_index.Decoder.of_string small_encoded))));
      (* Figure 10: evaluation with a query *)
      Test.make ~name:"f10:evaluate-query"
        (Staged.stage (fun () ->
             Evaluator.run ~query ~policy
               (Xmlac_core.Input.of_decoder
                  (Xmlac_skip_index.Decoder.of_string small_encoded))));
      (* Figure 11: the integrity kernels *)
      Test.make ~name:"f11:sha1-64k"
        (Staged.stage (fun () -> Xmlac_crypto.Sha1.digest buf64k));
      Test.make ~name:"f11:3des-ecb-4k"
        (Staged.stage
           (let block = String.make 4096 'y' in
            fun () -> Xmlac_crypto.Modes.positional_encrypt cipher ~base:0 block));
      (* Figure 12: the whole SOE pipeline with integrity *)
      Test.make ~name:"f12:soe-session"
        (Staged.stage (fun () -> evaluate config published policy));
    ]
  in
  let grouped = Test.make_grouped ~name:"xmlac" ~fmt:"%s/%s" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true
      ~quota:(Time.second (if quick then 0.2 else 0.5))
      ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Toolkit.Instance.monotonic_clock) raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      match Hashtbl.find_opt results name with
      | Some est -> (
          match Analyze.OLS.estimates est with
          | Some (ns :: _) ->
              if ns > 1e6 then Printf.printf "  %-24s %12.3f ms/run\n" name (ns /. 1e6)
              else Printf.printf "  %-24s %12.0f ns/run\n" name ns;
              record ~name:"bechamel" ~profile:name
                Metrics.[ float "wall_ns_per_run" ns ]
          | _ -> Printf.printf "  %-24s (no estimate)\n" name)
      | None -> ())
    (List.sort compare names)

(* the registry: (name, in the default run?, body). The fleet load
   generator only runs when named with --experiment. *)
let experiments =
  [
    ("table1", true, table1);
    ("table2", true, table2);
    ("fig8", true, fig8);
    ("fig9", true, fig9);
    ("fig10", true, fig10);
    ("fig11", true, fig11);
    ("fig12", true, fig12);
    ("contexts", true, contexts);
    ("ablation", true, ablation);
    ("ablation_geometry", true, ablation_geometry);
    ("memory_scaling", true, memory_scaling);
    ("update_costs", true, update_costs);
    ("remote", true, remote);
    ("pipeline", true, pipeline);
    ("dissem", true, dissem);
    ("crypto", true, crypto);
    ("fleet", false, fleet);
  ]

let () =
  Printf.printf
    "xmlac benchmark harness — reproducing Bouganim et al., VLDB 2004%s\n"
    (if quick then " (quick mode)" else "");
  let run_all () =
    match experiment_filter with
    | Some "bechamel" -> run_experiment "bechamel" bechamel_suite
    | Some name -> (
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (n, _, f) -> run_experiment n f
        | None ->
            Printf.eprintf
              "bench: unknown experiment %S (have: %s, bechamel)\n" name
              (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
            exit 2)
    | None ->
        List.iter
          (fun (n, default, f) -> if default then run_experiment n f)
          experiments;
        if not no_bechamel then run_experiment "bechamel" bechamel_suite
  in
  (match trace_path with
  | None -> run_all ()
  | Some path -> Xmlac_obs.Trace.with_jsonl_file path run_all);
  (match json_path with
  | None -> ()
  | Some path ->
      let report =
        Bench_report.make
          ~mode:(if quick then "quick" else "full")
          (List.rev !records)
      in
      let oc = open_out path in
      output_string oc (Bench_report.to_string report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s (%d records)\n" path
        (List.length report.Bench_report.records));
  Printf.printf "\ndone.\n"
