(* audit_replay — oracle-checked replay of a prov.v1 provenance trace.

   Re-reads a JSONL trace (captured with `xacml view --trace-out`, or
   emitted by the fuzz harness next to a crasher) and cross-checks every
   recorded decision against the DOM reference oracle on the original
   document and policy. Exit codes: 0 = every decision agrees, 1 = the
   trace diverges from the oracle (tampered or buggy), 2 = unusable
   input. *)

open Cmdliner
module Tree = Xmlac_xml.Tree
module Json = Xmlac_obs.Json
module Provenance = Xmlac_core.Provenance
module Audit = Xmlac_core.Audit

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("audit_replay: " ^ msg);
      exit 2)
    fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "%s" msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))

let doc_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "doc" ] ~docv:"FILE" ~doc:"The original XML document.")

let policy_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "policy" ] ~docv:"FILE"
        ~doc:"Policy file: one rule per line, '<id> <+|-> <xpath>'.")

let user_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "user" ] ~docv:"NAME" ~doc:"Value for the USER variable.")

let trace_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"The prov.v1 JSONL trace to audit.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Only report violations.")

(* Returns the records plus the query recorded in the prov.meta header.
   Non-provenance events (spans, eval.* observations) are ignored; a
   malformed provenance line is unusable input. *)
let parse_trace text =
  let records = ref [] in
  let meta_query = ref None in
  let seen_meta = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if String.trim line <> "" then
        match Json.parse line with
        | Error e -> die "trace line %d: %s" lineno e
        | Ok j -> (
            match Option.bind (Json.member "event" j) Json.to_string_opt with
            | None -> die "trace line %d: missing \"event\" field" lineno
            | Some "prov.meta" -> (
                seen_meta := true;
                (match
                   Option.bind (Json.member "schema" j) Json.to_string_opt
                 with
                | Some v when v = Provenance.schema_version -> ()
                | Some v ->
                    die "trace line %d: unsupported schema %S (want %S)" lineno
                      v Provenance.schema_version
                | None -> die "trace line %d: prov.meta without schema" lineno);
                match
                  Option.bind (Json.member "query" j) Json.to_string_opt
                with
                | Some q -> meta_query := Some q
                | None -> ())
            | Some name when String.length name >= 5
                             && String.sub name 0 5 = "prov." -> (
                match Provenance.record_of_json j with
                | Ok r -> records := r :: !records
                | Error e -> die "trace line %d: %s" lineno e)
            | Some _ -> () (* span/eval event riding along in the file *)))
    (String.split_on_char '\n' text);
  if not !seen_meta then
    die "trace has no prov.meta header — not a prov.v1 trace";
  (List.rev !records, !meta_query)

let run doc_file policy_file user trace_file quiet =
  let doc =
    match Tree.parse_result ~strip_whitespace:true (read_file doc_file) with
    | Ok t -> Tree.attributes_to_elements t
    | Error (reason, pos) ->
        die "%s: malformed XML at byte %d: %s" doc_file pos reason
  in
  let policy =
    match Xmlac_core.Policy.of_string (read_file policy_file) with
    | Ok p -> p
    | Error e -> die "%s: %s" policy_file e
  in
  let policy =
    match user with
    | Some u -> Xmlac_core.Policy.resolve_user ~user:u policy
    | None -> policy
  in
  let records, meta_query = parse_trace (read_file trace_file) in
  let query =
    Option.map
      (fun q ->
        match Xmlac_xpath.Parse.path q with
        | p -> p
        | exception Xmlac_xpath.Parse.Error (reason, pos) ->
            die "trace query %S: invalid XPath at %d: %s" q pos reason)
      meta_query
  in
  let nodes, skips, chunks =
    List.fold_left
      (fun (n, s, c) r ->
        match r with
        | Provenance.Node _ -> (n + 1, s, c)
        | Provenance.Skip _ -> (n, s + 1, c)
        | Provenance.Chunk _ -> (n, s, c + 1))
      (0, 0, 0) records
  in
  match Audit.check ?query ~policy ~doc records with
  | [] ->
      if not quiet then
        Printf.printf
          "audit ok: %d node, %d skip and %d chunk records agree with the \
           oracle\n"
          nodes skips chunks;
      exit 0
  | violations ->
      Printf.printf "audit FAILED: %d violation(s)\n" (List.length violations);
      List.iter
        (fun (v : Audit.violation) ->
          Printf.printf "  %s: %s\n" v.where v.detail)
        violations;
      exit 1

let () =
  let doc =
    "replay a decision-provenance trace against the DOM reference oracle"
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "audit_replay" ~version:"1.0.0" ~doc)
          Term.(
            const run $ doc_arg $ policy_arg $ user_arg $ trace_arg $ quiet_arg)))
