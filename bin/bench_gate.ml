(* bench_gate — perf-regression gate over machine-readable bench reports.

   Usage: bench_gate.exe CURRENT.json BASELINE.json [--tolerance T]
          bench_gate.exe --compare-stripped A.json B.json

   Default mode checks (see Xmlac_obs.Gate):
   - drift: every gated (non-wall-clock) metric of every baseline record
     must stay within a relative tolerance of its baseline value;
   - shape: the paper's cost orderings must hold within the current report.

   --compare-stripped instead demands exact equality of the two reports
   once every ungated metric (the wall, gc and pool families) and the
   per-record wall times are stripped — the determinism check CI runs between reports
   produced at different --jobs counts: the job count may move wall-clock
   and pool activity, never a deterministic counter.

   Exit status: 0 = pass, 1 = violations found, 2 = usage or I/O error. *)

module Gate = Xmlac_obs.Gate
module Bench_report = Xmlac_obs.Bench_report

let usage () =
  prerr_endline
    "usage: bench_gate.exe CURRENT.json BASELINE.json [--tolerance T]\n\
    \       bench_gate.exe --compare-stripped A.json B.json";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_gate: " ^ m); exit 2) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> fail "%s" msg

let load what path =
  match Bench_report.parse (read_file path) with
  | Ok t -> t
  | Error msg -> fail "%s %s: %s" what path msg

(* --compare-stripped ------------------------------------------------------- *)

let strip metrics = List.filter (fun (n, _) -> Gate.gated n) metrics

let value_str v = Xmlac_obs.Metrics.value_to_string v

(* exact equality of two records' gated metrics, with a message per
   difference (missing metric, extra metric, differing value) *)
let diff_record key ma mb acc =
  let acc =
    List.fold_left
      (fun acc (n, va) ->
        match List.assoc_opt n mb with
        | None -> Printf.sprintf "%s: metric %s only in first report" key n :: acc
        | Some vb ->
            if va = vb then acc
            else
              Printf.sprintf "%s: %s differs (%s vs %s)" key n (value_str va)
                (value_str vb)
              :: acc)
      acc ma
  in
  List.fold_left
    (fun acc (n, _) ->
      if List.mem_assoc n ma then acc
      else Printf.sprintf "%s: metric %s only in second report" key n :: acc)
    acc mb

let diff_stripped (a : Bench_report.t) (b : Bench_report.t) =
  let acc =
    if a.Bench_report.mode <> b.Bench_report.mode then
      [
        Printf.sprintf "report: mode mismatch (%S vs %S)" a.Bench_report.mode
          b.Bench_report.mode;
      ]
    else []
  in
  let acc =
    List.fold_left
      (fun acc (ra : Bench_report.record) ->
        match
          Bench_report.find b ~name:ra.Bench_report.name
            ~profile:ra.Bench_report.profile
        with
        | None ->
            Printf.sprintf "%s: record only in first report"
              (Bench_report.key ra)
            :: acc
        | Some rb ->
            diff_record (Bench_report.key ra)
              (strip ra.Bench_report.metrics)
              (strip rb.Bench_report.metrics)
              acc)
      acc a.Bench_report.records
  in
  List.rev
    (List.fold_left
       (fun acc (rb : Bench_report.record) ->
         match
           Bench_report.find a ~name:rb.Bench_report.name
             ~profile:rb.Bench_report.profile
         with
         | Some _ -> acc
         | None ->
             Printf.sprintf "%s: record only in second report"
               (Bench_report.key rb)
             :: acc)
       acc b.Bench_report.records)

let run_compare_stripped path_a path_b =
  let a = load "first report" path_a in
  let b = load "second report" path_b in
  match diff_stripped a b with
  | [] ->
      Printf.printf
        "bench_gate: IDENTICAL — %d records match exactly with wall/gc/pool \
         metrics stripped\n"
        (List.length a.Bench_report.records);
      exit 0
  | diffs ->
      Printf.eprintf "bench_gate: DIFFER — %d difference(s):\n"
        (List.length diffs);
      List.iter (fun d -> Printf.eprintf "  %s\n" d) diffs;
      exit 1

(* default drift+shape gate ------------------------------------------------- *)

let () =
  let current_path = ref None
  and baseline_path = ref None
  and compare_stripped = ref false
  and tolerance = ref Gate.default_tolerance in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> tolerance := t
        | _ -> fail "invalid tolerance %S" v);
        parse rest
    | "--compare-stripped" :: rest ->
        compare_stripped := true;
        parse rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | arg :: rest ->
        (if String.length arg > 0 && arg.[0] = '-' then
           fail "unknown option %S" arg
         else
           match (!current_path, !baseline_path) with
           | None, _ -> current_path := Some arg
           | Some _, None -> baseline_path := Some arg
           | Some _, Some _ -> usage ());
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!current_path, !baseline_path) with
  | Some cur, Some base when !compare_stripped -> run_compare_stripped cur base
  | Some cur, Some base ->
      let current = load "current report" cur in
      let baseline = load "baseline report" base in
      let violations =
        Gate.check ~tolerance:!tolerance ~baseline ~current ()
      in
      if violations = [] then begin
        Printf.printf
          "bench_gate: PASS — %d records, %d baseline records, tolerance \
           %.0f%%\n"
          (List.length current.Bench_report.records)
          (List.length baseline.Bench_report.records)
          (100. *. !tolerance);
        exit 0
      end
      else begin
        Printf.eprintf "bench_gate: FAIL — %d violation(s):\n"
          (List.length violations);
        List.iter
          (fun v -> Format.eprintf "  %a@." Gate.pp_violation v)
          violations;
        exit 1
      end
  | _ -> usage ()
