(* bench_gate — perf-regression gate over machine-readable bench reports.

   Usage: bench_gate.exe CURRENT.json BASELINE.json [--tolerance T]

   Checks (see Xmlac_obs.Gate):
   - drift: every gated (non-wall-clock) metric of every baseline record
     must stay within a relative tolerance of its baseline value;
   - shape: the paper's cost orderings must hold within the current report.

   Exit status: 0 = pass, 1 = violations found, 2 = usage or I/O error. *)

module Gate = Xmlac_obs.Gate
module Bench_report = Xmlac_obs.Bench_report

let usage () =
  prerr_endline
    "usage: bench_gate.exe CURRENT.json BASELINE.json [--tolerance T]";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_gate: " ^ m); exit 2) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> fail "%s" msg

let load what path =
  match Bench_report.parse (read_file path) with
  | Ok t -> t
  | Error msg -> fail "%s %s: %s" what path msg

let () =
  let current_path = ref None
  and baseline_path = ref None
  and tolerance = ref Gate.default_tolerance in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> tolerance := t
        | _ -> fail "invalid tolerance %S" v);
        parse rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | arg :: rest ->
        (if String.length arg > 0 && arg.[0] = '-' then
           fail "unknown option %S" arg
         else
           match (!current_path, !baseline_path) with
           | None, _ -> current_path := Some arg
           | Some _, None -> baseline_path := Some arg
           | Some _, Some _ -> usage ());
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!current_path, !baseline_path) with
  | Some cur, Some base ->
      let current = load "current report" cur in
      let baseline = load "baseline report" base in
      let violations =
        Gate.check ~tolerance:!tolerance ~baseline ~current ()
      in
      if violations = [] then begin
        Printf.printf
          "bench_gate: PASS — %d records, %d baseline records, tolerance \
           %.0f%%\n"
          (List.length current.Bench_report.records)
          (List.length baseline.Bench_report.records)
          (100. *. !tolerance);
        exit 0
      end
      else begin
        Printf.eprintf "bench_gate: FAIL — %d violation(s):\n"
          (List.length violations);
        List.iter
          (fun v -> Format.eprintf "  %a@." Gate.pp_violation v)
          violations;
        exit 1
      end
  | _ -> usage ()
