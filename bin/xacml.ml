(* xacml — command-line front end to the library.

   Subcommands:
     gen      generate a synthetic workload document
     stats    document characteristics + per-layout index overhead
     publish  encode (Skip index) and encrypt a document into a container
     verify   check a container's integrity
     view     evaluate an authorized view / query over a container
*)

open Cmdliner
module Tree = Xmlac_xml.Tree
module Writer = Xmlac_xml.Writer
module Layout = Xmlac_skip_index.Layout
module Container = Xmlac_crypto.Secure_container
module Policy = Xmlac_core.Policy
module Rule = Xmlac_core.Rule
module Session = Xmlac_soe.Session
module Channel = Xmlac_soe.Channel
module Remote = Xmlac_soe.Remote
module Cost_model = Xmlac_soe.Cost_model
module Wire = Xmlac_wire
module W = Xmlac_workload

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* bad command-line input: a one-line usage error on stderr, exit code 2,
   no backtrace *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("xacml: " ^ msg);
      exit 2)
    fmt

(* 24 bytes of 3DES key material derived from a passphrase. Epoch 0 is
   the historical derivation (containers published before key rotation
   existed keep decrypting); later epochs use the publisher's derivation,
   so a rotated container and a license minted with --key-epoch agree. *)
let document_key_bytes ?(epoch = 0) pass =
  if epoch = 0 then
    let h1 = Xmlac_crypto.Sha1.digest pass in
    let h2 = Xmlac_crypto.Sha1.digest (pass ^ "/2") in
    String.sub (h1 ^ h2) 0 24
  else Xmlac_dissem.Publisher.epoch_key_bytes ~master:pass ~epoch

let key_of_passphrase ?epoch pass =
  Xmlac_crypto.Des.Triple.key_of_string (document_key_bytes ?epoch pass)

(* Common arguments --------------------------------------------------------- *)

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input file.")

let output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let passphrase_arg =
  Arg.(
    value
    & opt string "xmlac-demo-passphrase"
    & info [ "k"; "key" ] ~docv:"PASSPHRASE"
        ~doc:"Passphrase from which the 3DES document key is derived.")

(* view/unlock can read the container from a local file or fetch it from a
   remote terminal; with --remote the input file is not needed *)
let input_opt_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE"
        ~doc:"Input container file (omit when using --remote).")

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"ADDR"
        ~doc:
          "Fetch the container from a terminal at ADDR (unix:PATH or \
           tcp:HOST:PORT, see xterminal) instead of a local file.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the SOE's decrypt-ahead pipeline (default 1 = \
           sequential). The delivered view and every deterministic counter \
           are identical at any job count.")

(* run [f] with the worker pool --jobs asks for (none when sequential) *)
let with_jobs jobs f =
  if jobs <= 1 then f None
  else Xmlac_soe.Pool.with_pool ~jobs (fun pool -> f (Some pool))

let pool_metrics ~jobs pool =
  let open Xmlac_obs.Metrics in
  prefix "pool"
    [
      int "jobs" jobs;
      int "sections"
        (match pool with None -> 0 | Some p -> Xmlac_soe.Pool.sections p);
      int "tasks_run"
        (match pool with None -> 0 | Some p -> Xmlac_soe.Pool.tasks_run p);
    ]

let layout_conv =
  let parse s =
    match Layout.of_string (String.uppercase_ascii s) with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown layout %S" s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (Layout.to_string l))

let scheme_conv =
  let parse s =
    match Container.scheme_of_string (String.uppercase_ascii s) with
    | Some x -> Ok x
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Container.scheme_to_string s))

let expect_scheme_arg =
  Arg.(
    value
    & opt (some scheme_conv) None
    & info [ "expect-scheme" ] ~docv:"SCHEME"
        ~doc:
          "With --remote: refuse the handshake unless the terminal \
           advertises SCHEME — guards against a terminal downgrading the \
           integrity scheme.")

let engine_conv =
  let parse s =
    match Xmlac_crypto.Engine.of_string (String.lowercase_ascii s) with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  Arg.conv (parse, fun ppf e -> Fmt.string ppf (Xmlac_crypto.Engine.to_string e))

let engine_arg =
  Arg.(
    value
    & opt engine_conv Xmlac_crypto.Engine.default
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Crypto engine: $(b,reference) (default) or $(b,fast) (bitsliced \
           DES, batched Merkle verification). Both produce byte-identical \
           output and statistics; fast only changes wall-clock time.")

let container_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "container" ] ~docv:"ID"
        ~doc:
          "With --remote: bind to the published container named ID on a \
           multi-tenant terminal (default: the terminal's first \
           published container).")

(* Open the SOE byte source for view/unlock: a local container file or a
   remote terminal session. [key_for] maps the container's key epoch (0
   pre-dissemination, or when a downgraded handshake could not carry it)
   to the document key — passphrase-derived per epoch for view, the
   license's fixed key for unlock. Returns the source, the scheme it
   speaks, the epoch, and the session to close when done. *)
let open_source ?pool ?trace_id ?engine ~input ~remote ~container
    ~expect_scheme ~key_for counters =
  match remote with
  | Some addr_str ->
      let addr =
        match Wire.Transport.parse_addr addr_str with
        | Ok a -> a
        | Error e -> die "--remote %s" e
      in
      let r =
        Remote.connect ?container ?trace_id ?expect_scheme (fun () ->
            Wire.Transport.connect addr)
      in
      let meta = Remote.metadata r in
      let epoch = meta.Wire.Protocol.key_epoch in
      let source =
        Remote.source ?pool ?engine r ~key:(key_for epoch) counters
      in
      (source, meta.Wire.Protocol.scheme, epoch, Some r)
  | None -> (
      match input with
      | None -> die "no container: give --input FILE or --remote ADDR"
      | Some f ->
          let container = Container.of_bytes (read_file f) in
          let epoch = Container.key_epoch container in
          let source =
            Channel.source ?pool ?engine ~container ~key:(key_for epoch)
              counters
          in
          (source, Container.scheme container, epoch, None))

(* the paper's schemes silently skip verification under plain ECB; say so
   instead of letting --stats quietly report zero hashed bytes *)
let warn_no_integrity ~scheme counters =
  if
    counters.Channel.verify_requested
    && not counters.Channel.verify_active
  then
    Printf.eprintf
      "xacml: note: %s supports no verification — integrity checking \
       disabled for this run\n"
      (Container.scheme_to_string scheme)

(* policy assembly, shared by view and explain *)

let rules_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "r"; "rule" ] ~docv:"RULE"
        ~doc:
          "Access rule: a sign (+ or -) followed by an XPath, e.g. \
           '+//meeting' or '-//private'. Repeatable.")

let policy_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "policy" ] ~docv:"FILE"
        ~doc:
          "Policy file: one rule per line, '<id> <+|-> <xpath>', # \
           comments allowed. Combined with any --rule options.")

let query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"XPATH" ~doc:"Optional query on the view.")

let user_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "user" ] ~docv:"NAME" ~doc:"Value for the USER variable.")

let parse_rule_spec i spec =
  if String.length spec < 2 then
    die "--rule %S: too short (expected +XPATH or -XPATH)" spec
  else
    let sign =
      match spec.[0] with
      | '+' -> Rule.Permit
      | '-' -> Rule.Deny
      | _ -> die "--rule %S: must start with + or -" spec
    in
    match
      Rule.parse ~id:(Printf.sprintf "cli%d" i) ~sign
        (String.sub spec 1 (String.length spec - 1))
    with
    | rule -> rule
    | exception Xmlac_xpath.Parse.Error (reason, pos) ->
        die "--rule %S: invalid XPath at %d: %s" spec pos reason

let assemble_policy ~rules ~policy_file ~user =
  let file_rules =
    match policy_file with
    | None -> []
    | Some f -> (
        match Policy.of_string (read_file f) with
        | Ok p -> Policy.rules p
        | Error e -> die "--policy %s: %s" f e)
  in
  let cli_rules = List.mapi parse_rule_spec rules in
  if file_rules = [] && cli_rules = [] then
    die "no rules: give --rule and/or --policy";
  let policy = Policy.make (file_rules @ cli_rules) in
  let policy =
    match user with
    | Some u -> Policy.resolve_user ~user:u policy
    | None -> policy
  in
  (match Policy.streaming_compatible policy with
  | Ok () -> ()
  | Error msg -> die "policy: %s" msg);
  policy

(* gen ----------------------------------------------------------------------- *)

let gen_cmd =
  let kind_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "hospital" -> Ok W.Datasets.Hospital_doc
      | "wsu" -> Ok W.Datasets.Wsu
      | "sigmod" -> Ok W.Datasets.Sigmod
      | "treebank" -> Ok W.Datasets.Treebank
      | _ -> Error (`Msg "kind must be hospital|wsu|sigmod|treebank")
    in
    Arg.conv (parse, fun ppf k -> Fmt.string ppf (W.Datasets.name k))
  in
  let kind =
    Arg.(
      value
      & opt kind_conv W.Datasets.Hospital_doc
      & info [ "kind" ] ~docv:"KIND" ~doc:"hospital, wsu, sigmod or treebank.")
  in
  let bytes =
    Arg.(
      value & opt int 500_000
      & info [ "bytes" ] ~docv:"N" ~doc:"Approximate XML size to generate.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run kind bytes seed output =
    let doc = W.Datasets.generate kind ~seed ~target_bytes:bytes in
    write_file output (Writer.tree_to_string ~indent:true doc);
    Printf.printf "wrote %s (%d elements)\n" output (Tree.count_elements doc)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic workload document.")
    Term.(const run $ kind $ bytes $ seed $ output_arg)

(* stats ---------------------------------------------------------------------- *)

let stats_cmd =
  let run input =
    let doc = Tree.parse ~strip_whitespace:true (read_file input) in
    let c = W.Datasets.characteristics ~name:(Filename.basename input) doc in
    Fmt.pr "%a@." W.Datasets.pp_characteristics c;
    Fmt.pr "@.Index storage overhead (Figure 8 metric):@.";
    List.iter
      (fun s -> Fmt.pr "  %a@." Xmlac_skip_index.Stats.pp s)
      (Xmlac_skip_index.Stats.measure_all doc)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Document characteristics and per-layout index overheads.")
    Term.(const run $ input_arg)

(* publish -------------------------------------------------------------------- *)

let publish_cmd =
  let layout =
    Arg.(
      value & opt layout_conv Layout.Tcsbr
      & info [ "layout" ] ~docv:"LAYOUT" ~doc:"NC, TC, TCS, TCSB or TCSBR.")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Container.Ecb_mht
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"ECB, CBC-SHA, CBC-SHAC, ECB-MHT or AES-CTR.")
  in
  let run input output layout scheme pass =
    let doc = Tree.parse ~strip_whitespace:true (read_file input) in
    (* the Skip index represents elements and text only; attributes become
       child elements, as the paper's model treats them *)
    let doc = Tree.attributes_to_elements doc in
    let encoded = Xmlac_skip_index.Encoder.encode ~layout doc in
    let container =
      Container.encrypt ~scheme ~key:(key_of_passphrase pass) encoded
    in
    write_file output (Container.to_bytes container);
    Printf.printf "encoded %d bytes (%s), container %d bytes (%s), %d chunks\n"
      (String.length encoded) (Layout.to_string layout)
      (String.length (Container.to_bytes container))
      (Container.scheme_to_string scheme)
      (Container.chunk_count container)
  in
  Cmd.v
    (Cmd.info "publish" ~doc:"Skip-index-encode and encrypt a document.")
    Term.(const run $ input_arg $ output_arg $ layout $ scheme $ passphrase_arg)

(* verify --------------------------------------------------------------------- *)

let verify_cmd =
  let run input pass =
    let container = Container.of_bytes (read_file input) in
    let key =
      key_of_passphrase ~epoch:(Container.key_epoch container) pass
    in
    match Container.decrypt_all container ~key ~verify:true with
    | exception Container.Integrity_failure reason ->
        Printf.printf "INTEGRITY FAILURE: %s\n" reason;
        exit 1
    | payload ->
        Printf.printf "ok: %d chunks, %d payload bytes verified (%s)\n"
          (Container.chunk_count container)
          (String.length payload)
          (Container.scheme_to_string (Container.scheme container))
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Decrypt and integrity-check a whole container.")
    Term.(const run $ input_arg $ passphrase_arg)

(* view ----------------------------------------------------------------------- *)

let view_cmd =
  let dummy =
    Arg.(
      value
      & opt (some string) None
      & info [ "dummy" ] ~docv:"NAME"
          ~doc:"Rename structural-only (denied) elements to NAME.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print SOE cost statistics.")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Stream structured evaluator trace events (rule instances, \
             decisions, skips, spans) to stderr, one line each.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the full decision-provenance trace (prov.v1 JSONL: one \
             record per node, skip and chunk verdict, plus evaluator \
             events) to FILE, for xacml explain or audit_replay.")
  in
  let trace_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:
            "With --remote: offer ID as a trace id in the hello so the \
             terminal links its server.request spans to this run's \
             wire.request spans (visible in the terminal's --trace file \
             and this run's --trace-out).")
  in
  let run input pass remote container expect_scheme engine rules policy_file
      query_str user dummy stats_flag trace_flag trace_out trace_id jobs =
    let policy = assemble_policy ~rules ~policy_file ~user in
    let query = Option.map Xmlac_xpath.Parse.path query_str in
    let counters = Channel.fresh_counters () in
    with_jobs jobs @@ fun pool ->
    let source, scheme, _epoch, remote_session =
      open_source ?pool ?trace_id ~engine ~input ~remote ~container
        ~expect_scheme
        ~key_for:(fun epoch -> key_of_passphrase ~epoch pass)
        counters
    in
    let decoder = Xmlac_skip_index.Decoder.of_source source in
    if trace_flag then
      Xmlac_obs.Trace.set_sink (Some Xmlac_obs.Trace.stderr_sink);
    let observer =
      if trace_flag || trace_out <> None then
        Some
          (fun obs ->
            let name, fields = Xmlac_core.Evaluator.trace_observation obs in
            Xmlac_obs.Trace.emit name fields)
      else None
    in
    let prov =
      Option.map (fun _ -> Xmlac_core.Provenance.collector ()) trace_out
    in
    let go () =
      (match trace_out with
      | Some _ ->
          let name, fields =
            Xmlac_core.Provenance.meta_event ?query:query_str ()
          in
          Xmlac_obs.Trace.emit name fields
      | None -> ());
      let result, wall_s =
        Xmlac_obs.Span.time "xacml.view" (fun () ->
            Xmlac_core.Evaluator.run ?query ?dummy_denied:dummy ?observer
              ?provenance:prov ~policy
              (Xmlac_core.Input.of_decoder decoder))
      in
      (match prov with
      | Some coll ->
          List.iter
            (fun r ->
              let name, fields = Xmlac_core.Provenance.record_event r in
              Xmlac_obs.Trace.emit name fields)
            (Xmlac_core.Provenance.records coll)
      | None -> ());
      (result, wall_s)
    in
    let result, wall_s =
      match trace_out with
      | None -> go ()
      | Some path -> Xmlac_obs.Trace.with_jsonl_file path go
    in
    (match Xmlac_core.Evaluator.view_tree result with
    | None -> prerr_endline "(nothing authorized)"
    | Some view -> print_endline (Writer.tree_to_string ~indent:true view));
    warn_no_integrity ~scheme counters;
    if stats_flag then begin
      let s = result.Xmlac_core.Evaluator.stats in
      let b =
        Cost_model.breakdown
          (Cost_model.of_context Cost_model.Hardware)
          ~bytes_in:counters.Channel.bytes_to_soe
          ~bytes_decrypted:counters.Channel.bytes_decrypted
          ~bytes_hashed:counters.Channel.bytes_hashed
          ~transitions:s.Xmlac_core.Evaluator.transitions
          ~events:s.Xmlac_core.Evaluator.events_in
      in
      let metrics =
        let open Xmlac_obs.Metrics in
        prefix "eval" (Xmlac_core.Evaluator.stats_metrics s)
        @ prefix "index"
            (Xmlac_skip_index.Decoder.stats_metrics
               (Xmlac_skip_index.Decoder.stats decoder))
        @ prefix "channel" (Channel.metrics counters)
        @ prefix "cache" (Channel.cache_metrics counters)
        @ (match remote_session with
          | Some r -> prefix "wire" (Wire.Stats.metrics (Remote.wire_stats r))
          | None -> [])
        @ prefix "cost" (Cost_model.breakdown_metrics b)
        @ pool_metrics ~jobs pool
        @ [ float "wall_s" wall_s ]
      in
      List.iter (Fmt.epr "%s@.") (Xmlac_obs.Metrics.render metrics);
      Fmt.epr "simulated smart card: %a@." Cost_model.pp_breakdown b
    end;
    Option.iter Remote.close remote_session
  in
  Cmd.v
    (Cmd.info "view"
       ~doc:"Evaluate an authorized view (and optional query) of a container.")
    Term.(
      const run $ input_opt_arg $ passphrase_arg $ remote_arg $ container_arg
      $ expect_scheme_arg $ engine_arg $ rules_arg $ policy_file_arg
      $ query_arg $ user_arg $ dummy $ stats_flag $ trace_flag $ trace_out
      $ trace_id $ jobs_arg)

(* explain -------------------------------------------------------------------- *)

let explain_cmd =
  let node =
    Arg.(
      required
      & opt (some string) None
      & info [ "node" ] ~docv:"XPATH"
          ~doc:"The node(s) to explain, as an XPath over the document.")
  in
  let run input rules policy_file query_str user node =
    (* same normalization as publish, so node ids line up with what the
       evaluator sees *)
    let doc =
      Tree.attributes_to_elements
        (Tree.parse ~strip_whitespace:true (read_file input))
    in
    let policy = assemble_policy ~rules ~policy_file ~user in
    let query = Option.map Xmlac_xpath.Parse.path query_str in
    let node_path =
      match Xmlac_xpath.Parse.path node with
      | p -> p
      | exception Xmlac_xpath.Parse.Error (reason, pos) ->
          die "--node %S: invalid XPath at %d: %s" node pos reason
    in
    let ids = Xmlac_xpath.Dom_eval.select node_path doc in
    if ids = [] then begin
      Printf.eprintf "xacml: --node %s matches no element\n" node;
      exit 1
    end;
    let coll = Xmlac_core.Provenance.collector () in
    ignore
      (Xmlac_core.Evaluator.run ?query ~provenance:coll ~policy
         (Xmlac_core.Input.of_events (Tree.to_events doc)));
    let records = Xmlac_core.Provenance.records coll in
    let cap = 20 in
    List.iteri
      (fun i id ->
        if i < cap then
          print_string (Xmlac_core.Audit.explain ~records id))
      ids;
    if List.length ids > cap then
      Printf.printf "(and %d more matching nodes not shown)\n"
        (List.length ids - cap)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
        "Explain why nodes of a document are delivered or denied under a \
         policy: winning rule, conflict-resolution steps, stack snapshots.")
    Term.(
      const run $ input_arg $ rules_arg $ policy_file_arg $ query_arg
      $ user_arg $ node)

(* license -------------------------------------------------------------------- *)

let soe_key_arg =
  Arg.(
    value
    & opt string "xmlac-demo-soe-key"
    & info [ "soe-key" ] ~docv:"PASSPHRASE"
        ~doc:"Passphrase of the device's SOE master key (seals licenses).")

let license_cmd =
  let subject =
    Arg.(
      required
      & opt (some string) None
      & info [ "subject" ] ~docv:"NAME" ~doc:"Subject the license is issued to.")
  in
  let rules =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "r"; "rule" ] ~docv:"RULE"
          ~doc:"Signed rule, e.g. '+//Admin' (repeatable; USER allowed).")
  in
  let valid_until =
    Arg.(
      value
      & opt (some int) None
      & info [ "valid-until" ] ~docv:"N" ~doc:"Issuer-defined expiry stamp.")
  in
  let key_epoch =
    Arg.(
      value & opt int 0
      & info [ "key-epoch" ] ~docv:"N"
          ~doc:
            "Document-key epoch the license is minted for (default 0). \
             After a rotation (publish-update --rotate) reissue surviving \
             subjects' licenses at the new epoch; an old-epoch license is \
             refused, typed, by unlock.")
  in
  let run output subject rules valid_until key_epoch doc_pass soe_pass =
    let parse_rule i spec =
      if spec = "" then die "--rule: empty rule (expected +XPATH or -XPATH)";
      let sign =
        match spec.[0] with
        | '+' -> Xmlac_core.Rule.Permit
        | '-' -> Xmlac_core.Rule.Deny
        | _ -> die "--rule %S: must start with + or -" spec
      in
      (Printf.sprintf "L%d" i, sign, String.sub spec 1 (String.length spec - 1))
    in
    let lic =
      Xmlac_soe.License.make ?valid_until ~key_epoch ~subject
        ~document_key:(document_key_bytes ~epoch:key_epoch doc_pass)
        (List.mapi parse_rule rules)
    in
    write_file output
      (Xmlac_soe.License.seal ~soe_key:(key_of_passphrase soe_pass) lic);
    Printf.printf "sealed license for %s (%d rules, key epoch %d) -> %s\n"
      subject (List.length rules) key_epoch output
  in
  Cmd.v
    (Cmd.info "license"
       ~doc:"Issue a sealed license (rules + document key) for a subject.")
    Term.(
      const run $ output_arg $ subject $ rules $ valid_until $ key_epoch
      $ passphrase_arg $ soe_key_arg)

let unlock_cmd =
  let license_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "license" ] ~docv:"FILE" ~doc:"Sealed license file.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print SOE cost statistics.")
  in
  let run input remote container expect_scheme engine license_file soe_pass
      stats_flag jobs =
    match
      Xmlac_soe.License.unseal
        ~soe_key:(key_of_passphrase soe_pass)
        (read_file license_file)
    with
    | Error e ->
        Printf.eprintf "license rejected: %s\n" e;
        exit 1
    | Ok lic ->
        let counters = Channel.fresh_counters () in
        with_jobs jobs @@ fun pool ->
        let source, scheme, container_epoch, remote_session =
          open_source ?pool ~engine ~input ~remote ~container ~expect_scheme
            ~key_for:(fun _ -> Xmlac_soe.License.key lic)
            counters
        in
        (* the revocation gate: refuse a pre- (or post-) rotation license
           before its key touches any ciphertext — under plain ECB a stale
           key would otherwise decrypt to garbage instead of failing *)
        (match Xmlac_soe.License.authorize lic ~container_epoch with
        | Ok () -> ()
        | Error e ->
            Option.iter Remote.close remote_session;
            Printf.eprintf "license rejected: %s\n" e;
            exit 1);
        let decoder = Xmlac_skip_index.Decoder.of_source source in
        let result =
          Xmlac_core.Evaluator.run
            ~policy:(Xmlac_soe.License.policy lic)
            (Xmlac_core.Input.of_decoder decoder)
        in
        (match Xmlac_core.Evaluator.view_tree result with
        | None -> prerr_endline "(nothing authorized)"
        | Some view -> print_endline (Writer.tree_to_string ~indent:true view));
        warn_no_integrity ~scheme counters;
        if stats_flag then begin
          Fmt.epr "subject %s@." lic.Xmlac_soe.License.subject;
          let metrics =
            let open Xmlac_obs.Metrics in
            prefix "eval"
              (Xmlac_core.Evaluator.stats_metrics
                 result.Xmlac_core.Evaluator.stats)
            @ prefix "channel" (Channel.metrics counters)
            @ prefix "cache" (Channel.cache_metrics counters)
            @ (match remote_session with
              | Some r ->
                  prefix "wire" (Wire.Stats.metrics (Remote.wire_stats r))
              | None -> [])
            @ pool_metrics ~jobs pool
          in
          List.iter (Fmt.epr "%s@.") (Xmlac_obs.Metrics.render metrics)
        end;
        Option.iter Remote.close remote_session
  in
  Cmd.v
    (Cmd.info "unlock"
       ~doc:"Evaluate a container using a sealed license (rules + key).")
    Term.(
      const run $ input_opt_arg $ remote_arg $ container_arg
      $ expect_scheme_arg $ engine_arg $ license_file $ soe_key_arg
      $ stats_flag $ jobs_arg)

(* update --------------------------------------------------------------------- *)

let parse_update_path s =
  if s = "" then []
  else
    List.map
      (fun seg ->
        match int_of_string_opt seg with
        | Some i when i >= 0 -> i
        | _ -> die "bad path %S: expected dot-separated child indices" s)
      (String.split_on_char '.' s)

let delete_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "delete" ] ~docv:"PATH"
        ~doc:"Delete the subtree at PATH (dot-separated child indexes).")

let set_text_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "set-text" ] ~docv:"PATH=TEXT" ~doc:"Replace a text node.")

(* --delete / --set-text into an [Update.operation]; [None] when neither
   was given (publish-update --rotate needs no edit) *)
let parse_operation ~delete ~set_text =
  match (delete, set_text) with
  | Some p, None ->
      Some (Xmlac_skip_index.Update.Delete_subtree (parse_update_path p))
  | None, Some spec -> (
      match String.index_opt spec '=' with
      | Some i ->
          Some
            (Xmlac_skip_index.Update.Set_text
               ( parse_update_path (String.sub spec 0 i),
                 String.sub spec (i + 1) (String.length spec - i - 1) ))
      | None -> die "--set-text %S: expected PATH=TEXT" spec)
  | None, None -> None
  | Some _, Some _ -> die "--delete and --set-text are exclusive"

(* decrypt + apply one edit, returning everything publish-update/update
   need: the old and new encoded payloads and the predicted cost *)
let apply_edit container ~key ~operation =
  let encoded = Container.decrypt_all container ~key ~verify:true in
  let layout =
    (Xmlac_skip_index.Encoder.read_header
       (Xmlac_skip_index.Bitio.Reader.of_string encoded))
      .Xmlac_skip_index.Encoder.layout
  in
  match operation with
  | None -> (encoded, encoded, None)
  | Some op ->
      let encoded', cost =
        Xmlac_skip_index.Update.update_encoded ~layout
          ~chunk_size:(Container.chunk_size container)
          encoded op
      in
      (encoded, encoded', Some cost)

let report_cost = function
  | None -> ()
  | Some cost ->
      Printf.printf
        "updated: %d -> %d bytes; rewrote %d bytes (%d chunks to \
         re-encrypt%s)\n"
        cost.Xmlac_skip_index.Update.old_bytes
        cost.Xmlac_skip_index.Update.new_bytes
        cost.Xmlac_skip_index.Update.rewritten_bytes
        cost.Xmlac_skip_index.Update.chunks_to_reencrypt
        (if cost.Xmlac_skip_index.Update.dictionary_changed then
           ", dictionary changed"
         else "")

let update_cmd =
  let run input output pass delete set_text =
    let container = Container.of_bytes (read_file input) in
    let epoch = Container.key_epoch container in
    let key = key_of_passphrase ~epoch pass in
    let operation = parse_operation ~delete ~set_text in
    if operation = None then
      die "exactly one of --delete / --set-text is required";
    let _, encoded', cost = apply_edit container ~key ~operation in
    (* full re-encryption, but the lineage survives: the next generation,
       same epoch (publish-update is the incremental path) *)
    let container' =
      Container.encrypt
        ~chunk_size:(Container.chunk_size container)
        ~fragment_size:(Container.fragment_size container)
        ~generation:(Container.generation container + 1)
        ~key_epoch:epoch
        ~scheme:(Container.scheme container) ~key encoded'
    in
    write_file output (Container.to_bytes container');
    report_cost cost
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Edit an encrypted document and re-encrypt it in full, reporting \
          what the incremental path would have cost.")
    Term.(
      const run $ input_arg $ output_arg $ passphrase_arg $ delete_arg
      $ set_text_arg)

(* publish-update ------------------------------------------------------------- *)

let publish_update_cmd =
  let delta_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "delta-out" ] ~docv:"FILE"
          ~doc:
            "Also write the one-generation chunk delta (what a syncing \
             terminal transfers instead of the whole container).")
  in
  let revoke =
    Arg.(
      value & opt_all string []
      & info [ "revoke" ] ~docv:"SUBJECT"
          ~doc:
            "Subject whose license is revoked as of this republication \
             (repeatable); distributed on the delta's revocation list. \
             Only cryptographically binding together with --rotate.")
  in
  let rotate =
    Arg.(
      value & flag
      & info [ "rotate" ]
          ~doc:
            "Rotate the document key: bump the key epoch and re-encrypt \
             every chunk under the next epoch's key (derived from the \
             passphrase), so licenses of earlier epochs fail typed. May \
             be combined with an edit, or used alone to revoke.")
  in
  let run input output pass delete set_text delta_out revoke rotate =
    let container = Container.of_bytes (read_file input) in
    let epoch = Container.key_epoch container in
    let from_gen = Container.generation container in
    let key = key_of_passphrase ~epoch pass in
    let operation = parse_operation ~delete ~set_text in
    if operation = None && not rotate then
      die "give --delete/--set-text, --rotate, or both";
    let encoded, encoded', cost = apply_edit container ~key ~operation in
    let container', rewritten =
      if rotate then
        let epoch' = epoch + 1 in
        ( Container.encrypt
            ~chunk_size:(Container.chunk_size container)
            ~fragment_size:(Container.fragment_size container)
            ~generation:(from_gen + 1) ~key_epoch:epoch'
            ~scheme:(Container.scheme container)
            ~key:(key_of_passphrase ~epoch:epoch' pass)
            encoded',
          List.init (Container.chunk_count container) Fun.id )
      else Container.reencrypt container ~key ~old_payload:encoded ~payload:encoded'
    in
    write_file output (Container.to_bytes container');
    report_cost cost;
    (match delta_out with
    | None ->
        if revoke <> [] && not rotate then
          Printf.eprintf
            "xacml: note: --revoke without --delta-out reaches no \
             terminal; pair it with --delta-out (and --rotate to make it \
             cryptographic)\n"
    | Some path ->
        let d =
          Xmlac_dissem.Delta.of_container ~from_gen ~revoked:revoke container'
        in
        write_file path (Xmlac_dissem.Delta.encode d);
        Printf.printf "delta: gen %d -> %d, %d bytes (container %d bytes)\n"
          from_gen
          (Container.generation container')
          (Xmlac_dissem.Delta.wire_bytes d)
          (String.length (Container.to_bytes container')));
    Printf.printf
      "republished: generation %d -> %d, key epoch %d, %d/%d chunks \
       rewritten%s\n"
      from_gen
      (Container.generation container')
      (Container.key_epoch container')
      (List.length rewritten)
      (Container.chunk_count container')
      (match revoke with
      | [] -> ""
      | l -> Printf.sprintf ", revoking %s" (String.concat ", " l))
  in
  Cmd.v
    (Cmd.info "publish-update"
       ~doc:
         "Incrementally republish a container: apply an edit re-encrypting \
          only dirty chunks, optionally rotate the document key, and emit \
          the chunk delta terminals sync.")
    Term.(
      const run $ input_arg $ output_arg $ passphrase_arg $ delete_arg
      $ set_text_arg $ delta_out $ revoke $ rotate)

(* sync ----------------------------------------------------------------------- *)

let sync_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where the synced container copy is written.")
  in
  let run input remote container_id output =
    let addr_str =
      match remote with Some a -> a | None -> die "--remote ADDR is required"
    in
    let addr =
      match Wire.Transport.parse_addr addr_str with
      | Ok a -> a
      | Error e -> die "--remote %s" e
    in
    let config =
      {
        Wire.Client.default_config with
        Wire.Client.container = Option.value container_id ~default:"";
      }
    in
    let connector () = Wire.Transport.connect addr in
    let report_revoked = function
      | [] -> ()
      | l -> List.iter (Printf.printf "revoked: %s\n") l
    in
    let m =
      match input with
      | None ->
          let m = Wire.Mirror.fetch ~config connector in
          Printf.printf "fetched: generation %d (%d chunks)\n"
            (Wire.Mirror.generation m)
            (Container.chunk_count (Wire.Mirror.container m));
          m
      | Some f ->
          let local = Container.of_bytes (read_file f) in
          let m = Wire.Mirror.of_container ~config connector local in
          (match Wire.Mirror.sync m with
          | Wire.Mirror.Uptodate ->
              Printf.printf "up to date: generation %d\n"
                (Wire.Mirror.generation m)
          | Wire.Mirror.Applied { from_gen; to_gen; delta_bytes; revoked } ->
              Printf.printf "synced: delta gen %d -> %d, %d bytes\n" from_gen
                to_gen delta_bytes;
              report_revoked revoked
          | Wire.Mirror.Refetched { to_gen; bytes } ->
              Printf.printf
                "refetched: generation %d, %d payload bytes (origin could \
                 not bridge ours)\n"
                to_gen bytes);
          m
    in
    write_file output (Container.to_bytes (Wire.Mirror.container m));
    Wire.Mirror.close m
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:
         "Pull a published container from a terminal: a chunk delta when a \
          local copy (-i) can be bridged, a full fetch otherwise; the \
          synced ciphertext copy is written to -o.")
    Term.(const run $ input_opt_arg $ remote_arg $ container_arg $ output)

let () =
  let doc =
    "client-based access control for XML documents (Bouganim, Dang Ngoc & \
     Pucheral, VLDB 2004)"
  in
  (* hostile or damaged data files surface as typed exceptions from the
     libraries; report them like `verify` reports an integrity failure
     (message + exit 1) rather than a backtrace *)
  let report_data_error msg =
    prerr_endline ("xacml: " ^ msg);
    exit 1
  in
  match
    Cmd.eval ~catch:false
       (Cmd.group (Cmd.info "xacml" ~version:"1.0.0" ~doc)
          [
            gen_cmd;
            stats_cmd;
            publish_cmd;
            verify_cmd;
            view_cmd;
            explain_cmd;
            license_cmd;
            unlock_cmd;
            update_cmd;
            publish_update_cmd;
            sync_cmd;
          ])
  with
  | code -> exit code
  | exception Container.Corrupt msg ->
      report_data_error ("corrupt container: " ^ msg)
  | exception Container.Integrity_failure msg ->
      report_data_error ("integrity failure: " ^ msg)
  | exception Xmlac_skip_index.Error.Error e ->
      report_data_error (Xmlac_skip_index.Error.to_string e)
  | exception Xmlac_xml.Parser.Malformed (reason, pos) ->
      report_data_error (Printf.sprintf "malformed XML at byte %d: %s" pos reason)
  | exception Xmlac_core.Error.Stream_error msg ->
      report_data_error ("invalid event stream: " ^ msg)
  | exception Wire.Error.Wire e ->
      report_data_error ("remote terminal: " ^ Wire.Error.to_string e)
  | exception Sys_error msg -> report_data_error msg
