(* xfuzz — differential fuzzing / fault-injection driver for the pipeline's
   trust boundaries (see lib/fuzz and DESIGN.md "Error taxonomy & fuzzing").

   Exit status: 0 when every input was handled by the robustness contract
   (typed rejection or faithful view), 1 when any crash or oracle
   divergence was found, 2 on usage errors. *)

open Cmdliner
module Harness = Xmlac_fuzz.Harness

let run seed iterations corpus_dir quiet stats =
  let progress ~done_ ~total =
    if not quiet then Printf.eprintf "\rfuzz: %d/%d inputs%!" done_ total
  in
  let report = Harness.run ~progress ~seed ~iterations () in
  if not quiet then prerr_newline ();
  Printf.printf
    "seed %d: %d inputs (%d mutated) — %d accepted, %d rejected, %d failures\n"
    seed report.Harness.runs report.Harness.mutated report.Harness.accepted
    report.Harness.rejected
    (List.length report.Harness.failures);
  if stats then
    List.iter prerr_endline
      (Xmlac_obs.Metrics.render (Harness.metrics report));
  List.iteri
    (fun i f ->
      if i < 20 then
        Printf.printf "  FAIL [%s] %s (%d bytes, mutation %s)\n"
          f.Harness.boundary f.Harness.detail
          (String.length f.Harness.input)
          f.Harness.mutation)
    report.Harness.failures;
  (match corpus_dir with
  | Some dir ->
      let saved = Harness.save_failures ~dir report in
      List.iter (Printf.printf "  saved %s\n") saved
  | None -> ());
  if report.Harness.failures = [] then 0 else 1

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign PRNG seed.")

let iterations_t =
  Arg.(
    value
    & opt int 2000
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Number of mutated inputs (spread over the seven boundaries).")

let corpus_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus-dir" ] ~docv:"DIR"
        ~doc:"Save each failure's input bytes under $(docv) for triage.")

let quiet_t =
  Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output on stderr.")

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print per-campaign counters (totals and per-boundary tallies) to \
           stderr after the run.")

let cmd =
  let doc =
    "Differentially fuzz the streaming pipeline's trust boundaries."
  in
  Cmd.v
    (Cmd.info "xfuzz" ~version:"1.0.0" ~doc)
    Term.(const run $ seed_t $ iterations_t $ corpus_dir_t $ quiet_t $ stats_t)

let () = exit (Cmd.eval' cmd)
