(* xterminal — the untrusted terminal of the paper's architecture: holds
   published containers (ciphertext only, no keys) and serves them to SOE
   clients over the framed wire protocol, many sessions concurrently.

     xterminal -i doc.xac --listen unix:/tmp/doc.sock
     xterminal -i records=a.xac -i billing=b.xac --listen tcp:127.0.0.1:7007
     xacml view --remote unix:/tmp/doc.sock --rule '+//a'

   Each [-i] publishes one container under an id ([ID=PATH], or the file's
   basename without extension for a bare PATH); clients name the id in
   their v1.2 hello, or omit it to get the first one published. SIGHUP
   re-reads every -i file (and the --revoked list) and republishes —
   the dissemination path: a publisher overwrites the container file
   with `xacml publish-update`, signals the terminal, and syncing
   clients pull the chunk delta on their next Sync. SIGINT/SIGTERM stop
   the accept loop, drain in-flight sessions, unlink a Unix socket file
   and exit 0. *)

open Cmdliner
module Wire = Xmlac_wire
module Container = Xmlac_crypto.Secure_container

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("xterminal: " ^ msg);
      exit 2)
    fmt

let input_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "i"; "input" ] ~docv:"[ID=]FILE"
        ~doc:
          "Published container to serve; repeatable. ID names the \
           container for v1.2 clients (default: the file's basename \
           without extension).")

let listen_arg =
  Arg.(
    value
    & opt string "tcp:127.0.0.1:0"
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Address to listen on: unix:PATH or tcp:HOST:PORT (port 0 picks \
           a free port, printed on startup).")

let sessions_arg =
  Arg.(
    value & opt int 64
    & info [ "sessions" ] ~docv:"N" ~doc:"Maximum concurrent sessions.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Per-connection read/write timeout.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print wire counters on shutdown (stderr).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Accept/dispatch loops racing on the listener (default 1).")

let no_mux_arg =
  Arg.(
    value & flag
    & info [ "no-mux" ]
        ~doc:
          "Refuse the v1.2 session-multiplexing grant; every hello gets a \
           plain single-session connection.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Export the telemetry snapshot (JSON, schema xwtp.telemetry.v1) \
           to FILE periodically and on shutdown; written atomically \
           (tmp+rename). SIGUSR1 forces an immediate export.")

let telemetry_interval_arg =
  Arg.(
    value & opt float 2.0
    & info [ "telemetry-interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between telemetry exports (default 2).")

let revoked_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "revoked" ] ~docv:"FILE"
        ~doc:
          "Revocation list: one subject per line (# comments allowed), \
           re-read on SIGHUP and distributed to syncing clients on every \
           chunk delta.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write server-side trace events (server.request spans, cache \
           events) as JSONL to FILE; clients that negotiate trace \
           propagation get their request timelines linked here.")

(* "ID=PATH" or bare "PATH" (id = basename without extension) *)
let parse_input spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 ->
      (String.sub spec 0 i,
       String.sub spec (i + 1) (String.length spec - i - 1))
  | _ -> (Filename.remove_extension (Filename.basename spec), spec)

(* Atomic snapshot export: write to a sibling tmp file, then rename, so a
   poller (xtop) never reads a torn document. *)
let export_telemetry server path =
  let json = Wire.Telemetry.to_string (Wire.Server.telemetry_snapshot server) in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Sys.rename tmp path

let read_revoked = function
  | None -> []
  | Some path ->
      String.split_on_char '\n' (read_file path)
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let run inputs listen sessions timeout stats_flag domains no_mux telemetry_file
    telemetry_interval revoked_file trace_file =
  if domains < 1 then die "--domains must be >= 1";
  if telemetry_interval <= 0. then die "--telemetry-interval must be positive";
  let server = Wire.Server.create () in
  let publish_all ~fatal =
    let revoked =
      match read_revoked revoked_file with
      | l -> l
      | exception Sys_error msg ->
          if fatal then die "--revoked %s" msg
          else begin
            Printf.eprintf "xterminal: reload: --revoked %s\n%!" msg;
            []
          end
    in
    List.iter
      (fun spec ->
        let id, path = parse_input spec in
        let oops fmt =
          Printf.ksprintf
            (fun msg ->
              if fatal then die "%s" msg
              else Printf.eprintf "xterminal: reload: %s\n%!" msg)
            fmt
        in
        if not (Sys.file_exists path) then oops "%s: no such file" path
        else
          match Container.of_bytes (read_file path) with
          | c -> (
              match Wire.Server.publish server ~revoked ~id c with
              | () -> ()
              | exception Invalid_argument msg -> oops "-i %s: %s" spec msg)
          | exception Container.Corrupt msg ->
              oops "%s: corrupt container: %s" path msg
          | exception Sys_error msg -> oops "%s" msg)
      inputs
  in
  publish_all ~fatal:true;
  let addr =
    match Wire.Transport.parse_addr listen with
    | Ok a -> a
    | Error e -> die "--listen %s" e
  in
  let listener = Wire.Transport.listen addr in
  let stop = ref false in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  (* signals only flip flags; the maintenance thread does the file I/O *)
  let dump_requested = ref false in
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> dump_requested := true));
  let reload_requested = ref false in
  Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> reload_requested := true));
  let export_once () =
    match telemetry_file with
    | Some path -> (
        try export_telemetry server path
        with Sys_error msg ->
          Printf.eprintf "xterminal: telemetry export: %s\n%!" msg)
    | None ->
        (* no export file: a SIGUSR1 dump goes to stderr *)
        Printf.eprintf "%s\n%!"
          (Wire.Telemetry.to_string (Wire.Server.telemetry_snapshot server))
  in
  let exporter =
    Thread.create
      (fun () ->
        let last = ref (Unix.gettimeofday ()) in
        while not !stop do
          Thread.delay 0.2;
          if !reload_requested then begin
            reload_requested := false;
            publish_all ~fatal:false;
            List.iter
              (fun id ->
                match Wire.Server.metadata_of server id with
                | None -> ()
                | Some meta ->
                    Printf.eprintf
                      "xterminal: reloaded %s: generation %d, key epoch %d\n%!"
                      id meta.Wire.Protocol.generation
                      meta.Wire.Protocol.key_epoch)
              (Wire.Server.container_ids server)
          end;
          let now = Unix.gettimeofday () in
          let periodic =
            telemetry_file <> None && now -. !last >= telemetry_interval
          in
          if !dump_requested || periodic then begin
            dump_requested := false;
            last := now;
            export_once ()
          end
        done)
      ()
  in
  Printf.printf "xterminal: serving on %s (%d domain%s%s)\n%!"
    (Wire.Transport.addr_to_string (Wire.Transport.bound_addr listener))
    domains
    (if domains = 1 then "" else "s")
    (if no_mux then ", mux off" else "");
  List.iter
    (fun id ->
      match Wire.Server.metadata_of server id with
      | None -> ()
      | Some meta ->
          Printf.printf "xterminal:   %s: %s, %d chunks%s\n%!" id
            (Container.scheme_to_string meta.Wire.Protocol.scheme)
            meta.Wire.Protocol.chunk_count
            (if meta.Wire.Protocol.integrity then "" else ", no integrity"))
    (Wire.Server.container_ids server);
  (* the accept loop polls [stop], so a signal lands within ~0.2 s; a
     transport error on a closed listener ends the loop the same way *)
  let serve () =
    try
      Wire.Server.serve ~max_sessions:sessions ~mux:(not no_mux) ~domains
        ?timeout_s:timeout ~stop server listener
    with Wire.Error.Wire _ -> ()
  in
  (match trace_file with
  | None -> serve ()
  | Some path -> Xmlac_obs.Trace.with_jsonl_file path serve);
  stop := true;
  Thread.join exporter;
  (match telemetry_file with Some _ -> export_once () | None -> ());
  Wire.Transport.close_listener listener;
  (* shutdown summary: the counters an operator actually asks about first *)
  let view = Wire.Server.telemetry_snapshot server in
  let sr = view.Wire.Telemetry.server in
  Printf.eprintf
    "xterminal: served %d requests over %d connections (%d busy-rejected), \
     shared cache %d hits / %d misses\n\
     %!"
    sr.Wire.Telemetry.sr_requests sr.Wire.Telemetry.sr_admitted
    sr.Wire.Telemetry.sr_busy_rejections sr.Wire.Telemetry.sr_cache_hits
    sr.Wire.Telemetry.sr_cache_misses;
  if stats_flag then begin
    let metrics = Wire.Stats.metrics (Wire.Server.totals server) in
    List.iter (Printf.eprintf "%s\n") (Xmlac_obs.Metrics.render metrics);
    let cache = Wire.Server.cache_stats server in
    List.iter (Printf.eprintf "%s\n")
      (Xmlac_obs.Metrics.render
         (Xmlac_obs.Metrics.prefix "registry_cache"
            Xmlac_obs.Metrics.
              [
                int "hits" cache.Xmlac_runtime.Lru.hits;
                int "misses" cache.Xmlac_runtime.Lru.misses;
                int "evicted" cache.Xmlac_runtime.Lru.evicted;
              ]))
  end

let () =
  let cmd =
    Cmd.v
      (Cmd.info "xterminal" ~version:"1.2.0"
         ~doc:
           "Serve published containers to SOE clients over the wire \
            protocol (the untrusted terminal of the paper's architecture).")
      Term.(
        const run $ input_arg $ listen_arg $ sessions_arg $ timeout_arg
        $ stats_arg $ domains_arg $ no_mux_arg $ telemetry_arg
        $ telemetry_interval_arg $ revoked_arg $ trace_arg)
  in
  exit (Cmd.eval cmd)
