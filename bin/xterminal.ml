(* xterminal — the untrusted terminal of the paper's architecture: holds
   published containers (ciphertext only, no keys) and serves them to SOE
   clients over the framed wire protocol, many sessions concurrently.

     xterminal -i doc.xac --listen unix:/tmp/doc.sock
     xterminal -i records=a.xac -i billing=b.xac --listen tcp:127.0.0.1:7007
     xacml view --remote unix:/tmp/doc.sock --rule '+//a'

   Each [-i] publishes one container under an id ([ID=PATH], or the file's
   basename without extension for a bare PATH); clients name the id in
   their v1.2 hello, or omit it to get the first one published. SIGINT/
   SIGTERM stop the accept loop, drain in-flight sessions, unlink a Unix
   socket file and exit 0. *)

open Cmdliner
module Wire = Xmlac_wire
module Container = Xmlac_crypto.Secure_container

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("xterminal: " ^ msg);
      exit 2)
    fmt

let input_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "i"; "input" ] ~docv:"[ID=]FILE"
        ~doc:
          "Published container to serve; repeatable. ID names the \
           container for v1.2 clients (default: the file's basename \
           without extension).")

let listen_arg =
  Arg.(
    value
    & opt string "tcp:127.0.0.1:0"
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Address to listen on: unix:PATH or tcp:HOST:PORT (port 0 picks \
           a free port, printed on startup).")

let sessions_arg =
  Arg.(
    value & opt int 64
    & info [ "sessions" ] ~docv:"N" ~doc:"Maximum concurrent sessions.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Per-connection read/write timeout.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print wire counters on shutdown (stderr).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Accept/dispatch loops racing on the listener (default 1).")

let no_mux_arg =
  Arg.(
    value & flag
    & info [ "no-mux" ]
        ~doc:
          "Refuse the v1.2 session-multiplexing grant; every hello gets a \
           plain single-session connection.")

(* "ID=PATH" or bare "PATH" (id = basename without extension) *)
let parse_input spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 ->
      (String.sub spec 0 i,
       String.sub spec (i + 1) (String.length spec - i - 1))
  | _ -> (Filename.remove_extension (Filename.basename spec), spec)

let run inputs listen sessions timeout stats_flag domains no_mux =
  if domains < 1 then die "--domains must be >= 1";
  let server = Wire.Server.create () in
  List.iter
    (fun spec ->
      let id, path = parse_input spec in
      if not (Sys.file_exists path) then die "%s: no such file" path;
      match Container.of_bytes (read_file path) with
      | c -> (
          match Wire.Server.publish server ~id c with
          | () -> ()
          | exception Invalid_argument msg -> die "-i %s: %s" spec msg)
      | exception Container.Corrupt msg ->
          die "%s: corrupt container: %s" path msg)
    inputs;
  let addr =
    match Wire.Transport.parse_addr listen with
    | Ok a -> a
    | Error e -> die "--listen %s" e
  in
  let listener = Wire.Transport.listen addr in
  let stop = ref false in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Printf.printf "xterminal: serving on %s (%d domain%s%s)\n%!"
    (Wire.Transport.addr_to_string (Wire.Transport.bound_addr listener))
    domains
    (if domains = 1 then "" else "s")
    (if no_mux then ", mux off" else "");
  List.iter
    (fun id ->
      match Wire.Server.metadata_of server id with
      | None -> ()
      | Some meta ->
          Printf.printf "xterminal:   %s: %s, %d chunks%s\n%!" id
            (Container.scheme_to_string meta.Wire.Protocol.scheme)
            meta.Wire.Protocol.chunk_count
            (if meta.Wire.Protocol.integrity then "" else ", no integrity"))
    (Wire.Server.container_ids server);
  (* the accept loop polls [stop], so a signal lands within ~0.2 s; a
     transport error on a closed listener ends the loop the same way *)
  (try
     Wire.Server.serve ~max_sessions:sessions ~mux:(not no_mux) ~domains
       ?timeout_s:timeout ~stop server listener
   with Wire.Error.Wire _ -> ());
  Wire.Transport.close_listener listener;
  if stats_flag then begin
    let metrics = Wire.Stats.metrics (Wire.Server.totals server) in
    List.iter (Printf.eprintf "%s\n") (Xmlac_obs.Metrics.render metrics)
  end

let () =
  let cmd =
    Cmd.v
      (Cmd.info "xterminal" ~version:"1.2.0"
         ~doc:
           "Serve published containers to SOE clients over the wire \
            protocol (the untrusted terminal of the paper's architecture).")
      Term.(
        const run $ input_arg $ listen_arg $ sessions_arg $ timeout_arg
        $ stats_arg $ domains_arg $ no_mux_arg)
  in
  exit (Cmd.eval cmd)
