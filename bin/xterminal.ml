(* xterminal — the untrusted terminal of the paper's architecture: holds a
   published container (ciphertext only, no keys) and serves it to SOE
   clients over the framed wire protocol, many sessions concurrently.

     xterminal -i doc.xac --listen unix:/tmp/doc.sock
     xacml view --remote unix:/tmp/doc.sock --rule '+//a'

   SIGINT/SIGTERM stop the accept loop, drain in-flight sessions, unlink a
   Unix socket file and exit 0. *)

open Cmdliner
module Wire = Xmlac_wire
module Container = Xmlac_crypto.Secure_container

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("xterminal: " ^ msg);
      exit 2)
    fmt

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Published container to serve.")

let listen_arg =
  Arg.(
    value
    & opt string "tcp:127.0.0.1:0"
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Address to listen on: unix:PATH or tcp:HOST:PORT (port 0 picks \
           a free port, printed on startup).")

let sessions_arg =
  Arg.(
    value & opt int 64
    & info [ "sessions" ] ~docv:"N" ~doc:"Maximum concurrent sessions.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Per-connection read/write timeout.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print wire counters on shutdown (stderr).")

let run input listen sessions timeout stats_flag =
  let container =
    match Container.of_bytes (read_file input) with
    | c -> c
    | exception Container.Corrupt msg -> die "%s: corrupt container: %s" input msg
  in
  let addr =
    match Wire.Transport.parse_addr listen with
    | Ok a -> a
    | Error e -> die "--listen %s" e
  in
  let server = Wire.Server.make container in
  let listener = Wire.Transport.listen addr in
  let stop = ref false in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  let meta = Wire.Server.metadata server in
  Printf.printf "xterminal: serving %s (%s, %d chunks%s) on %s\n%!" input
    (Container.scheme_to_string meta.Wire.Protocol.scheme)
    meta.Wire.Protocol.chunk_count
    (if meta.Wire.Protocol.integrity then "" else ", no integrity")
    (Wire.Transport.addr_to_string (Wire.Transport.bound_addr listener));
  (* the accept loop polls [stop], so a signal lands within ~0.2 s; a
     transport error on a closed listener ends the loop the same way *)
  (try Wire.Server.serve ~max_sessions:sessions ?timeout_s:timeout ~stop server listener
   with Wire.Error.Wire _ -> ());
  Wire.Transport.close_listener listener;
  if stats_flag then begin
    let metrics = Wire.Stats.metrics (Wire.Server.totals server) in
    List.iter (Printf.eprintf "%s\n") (Xmlac_obs.Metrics.render metrics)
  end

let () =
  let cmd =
    Cmd.v
      (Cmd.info "xterminal" ~version:"1.0.0"
         ~doc:
           "Serve a published container to SOE clients over the wire \
            protocol (the untrusted terminal of the paper's architecture).")
      Term.(
        const run $ input_arg $ listen_arg $ sessions_arg $ timeout_arg
        $ stats_arg)
  in
  exit (Cmd.eval cmd)
