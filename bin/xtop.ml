(* xtop — live admin plane over a running xterminal's telemetry.

     xtop --remote tcp:127.0.0.1:7007            # live per-tenant table
     xtop --remote unix:/tmp/doc.sock --once --json
     xtop --file /tmp/telemetry.json --once      # read a --telemetry export
     xtop --check-telemetry /tmp/telemetry.json  # CI: validate a snapshot
     xtop --check-trace /tmp/trace.jsonl --require-linked 3

   The remote mode polls the terminal with XWTP [Get_stats] frames — the
   terminal answers those only on local transports (unix socket or
   loopback TCP), so xtop must run on the terminal's machine. The check
   modes validate exported artifacts: a telemetry snapshot must parse
   under schema xwtp.telemetry.v1, and a merged trace file must contain
   client→server linked request timelines (a server.request span whose
   parent is a wire.request span of the same trace, both closed). *)

open Cmdliner
module Wire = Xmlac_wire
module Json = Xmlac_obs.Json
module Telemetry = Xmlac_wire.Telemetry

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("xtop: " ^ msg);
      exit 2)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Rendering ----------------------------------------------------------- *)

let ms s = s *. 1000.

let render_view (v : Telemetry.view) =
  let b = Buffer.create 1024 in
  let sr = v.Telemetry.server in
  Buffer.add_string b
    (Printf.sprintf
       "connections %d active / %d admitted (%d busy-rejected)  mux %d \
        opened / %d retired\n"
       sr.Telemetry.sr_active sr.Telemetry.sr_admitted
       sr.Telemetry.sr_busy_rejections sr.Telemetry.sr_mux_opened
       sr.Telemetry.sr_mux_retired);
  Buffer.add_string b
    (Printf.sprintf
       "requests %d  shared cache %d hits / %d misses / %d evicted  \
        containers %d\n"
       sr.Telemetry.sr_requests sr.Telemetry.sr_cache_hits
       sr.Telemetry.sr_cache_misses sr.Telemetry.sr_cache_evicted
       sr.Telemetry.sr_containers);
  Buffer.add_string b
    (Printf.sprintf
       "dissem %d republishes  %d syncs (%d up-to-date)  %d delta bytes \
        served\n\n"
       sr.Telemetry.sr_republishes sr.Telemetry.sr_syncs
       sr.Telemetry.sr_sync_uptodate sr.Telemetry.sr_delta_bytes);
  Buffer.add_string b
    (Printf.sprintf "%-20s %4s %5s %8s %6s %8s %8s %10s %8s %8s\n" "TENANT"
       "GEN" "SESS" "REQS" "ERRS" "HITS" "MISSES" "BYTES" "P50ms" "P99ms");
  List.iter
    (fun (t : Telemetry.tenant_view) ->
      let sv = t.Telemetry.tv_service in
      Buffer.add_string b
        (Printf.sprintf "%-20s %4d %5d %8d %6d %8d %8d %10d %8.2f %8.2f\n"
           t.Telemetry.tv_id t.Telemetry.tv_generation t.Telemetry.tv_sessions
           t.Telemetry.tv_requests t.Telemetry.tv_errors
           t.Telemetry.tv_cache_hits t.Telemetry.tv_cache_misses
           t.Telemetry.tv_reply_bytes
           (ms sv.Telemetry.sv_p50_s)
           (ms sv.Telemetry.sv_p99_s)))
    v.Telemetry.tenants;
  if v.Telemetry.tenants = [] then Buffer.add_string b "(no tenant traffic)\n";
  Buffer.contents b

(* Snapshot sources ---------------------------------------------------- *)

let fetch_remote addr =
  let client =
    Wire.Client.connect (fun () -> Wire.Transport.connect addr)
  in
  Fun.protect
    ~finally:(fun () -> Wire.Client.close client)
    (fun () -> Wire.Client.fetch_stats client)

let snapshot_of_json ~source json =
  match Telemetry.of_string json with
  | Ok v -> v
  | Error msg -> die "%s: invalid telemetry snapshot: %s" source msg

(* Trace validation ---------------------------------------------------- *)

type trace_check = {
  tc_events : int;
  tc_traces : int;  (* distinct trace ids seen *)
  tc_linked : int;  (* complete client->server linked request timelines *)
  tc_linked_traces : int;  (* distinct traces with at least one link *)
}

(* A linked request: a [server.request] span.start whose parent is the id
   of a [wire.request] span.start with the same trace id, where both spans
   also closed (a span.end with the same id). *)
let validate_trace path =
  let ic = open_in_bin path in
  let events = ref 0 in
  let client_spans = Hashtbl.create 256 in (* (trace, span) -> () *)
  let closed = Hashtbl.create 256 in (* span id -> () *)
  let server_spans = ref [] in (* (trace, span, parent) *)
  let traces = Hashtbl.create 16 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.parse line with
         | Error msg ->
             close_in ic;
             die "%s: bad JSONL line after %d events: %s" path !events msg
         | Ok j ->
             incr events;
             let str k = Option.bind (Json.member k j) Json.to_string_opt in
             let int k = Option.bind (Json.member k j) Json.to_int_opt in
             (match str "trace" with
             | Some t -> Hashtbl.replace traces t ()
             | None -> ());
             (match (str "event", str "name", str "trace", int "span") with
             | Some "span.start", Some "wire.request", Some t, Some s ->
                 Hashtbl.replace client_spans (t, s) ()
             | Some "span.start", Some "server.request", Some t, Some s ->
                 (match int "parent" with
                 | Some p -> server_spans := (t, s, p) :: !server_spans
                 | None -> ())
             | Some "span.end", _, _, Some s -> Hashtbl.replace closed s ()
             | _ -> ())
     done
   with End_of_file -> close_in ic);
  let linked_traces = Hashtbl.create 16 in
  let linked =
    List.length
      (List.filter
         (fun (t, s, p) ->
           let ok =
             Hashtbl.mem client_spans (t, p)
             && Hashtbl.mem closed s && Hashtbl.mem closed p
           in
           if ok then Hashtbl.replace linked_traces t ();
           ok)
         !server_spans)
  in
  {
    tc_events = !events;
    tc_traces = Hashtbl.length traces;
    tc_linked = linked;
    tc_linked_traces = Hashtbl.length linked_traces;
  }

(* Command ------------------------------------------------------------- *)

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"ADDR"
        ~doc:
          "Poll a running terminal at ADDR (unix:PATH or tcp:HOST:PORT) \
           with Get_stats frames. The terminal only answers on local \
           transports, so run xtop on its machine.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~docv:"FILE"
        ~doc:"Poll a --telemetry snapshot file instead of a live terminal.")

let interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between polls (default 1).")

let once_arg =
  Arg.(value & flag & info [ "once" ] ~doc:"Print one snapshot and exit.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print the raw snapshot JSON instead of a table.")

let check_telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "check-telemetry" ] ~docv:"FILE"
        ~doc:
          "Validate FILE as an xwtp.telemetry.v1 snapshot and exit 0/1 \
           (for CI).")

let check_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "check-trace" ] ~docv:"FILE"
        ~doc:
          "Validate FILE as a merged JSONL trace and exit 0/1: every line \
           must parse, and the file must contain at least \
           $(b,--require-linked) complete client-to-server linked request \
           timelines.")

let require_linked_arg =
  Arg.(
    value & opt int 1
    & info [ "require-linked" ] ~docv:"N"
        ~doc:
          "Minimum linked request timelines --check-trace accepts \
           (default 1).")

let run remote file interval once json check_telemetry check_trace
    require_linked =
  match (check_telemetry, check_trace) with
  | Some path, _ ->
      let json_text =
        try read_file path with Sys_error msg -> die "%s" msg
      in
      let v = snapshot_of_json ~source:path json_text in
      Printf.printf
        "xtop: %s: valid %s snapshot (%d tenants, %d requests)\n" path
        Telemetry.schema
        (List.length v.Telemetry.tenants)
        v.Telemetry.server.Telemetry.sr_requests;
      exit 0
  | None, Some path ->
      let r = try validate_trace path with Sys_error msg -> die "%s" msg in
      Printf.printf
        "xtop: %s: %d events, %d traces, %d linked requests across %d \
         traces\n"
        path r.tc_events r.tc_traces r.tc_linked r.tc_linked_traces;
      if r.tc_linked < require_linked then begin
        Printf.eprintf
          "xtop: %s: %d linked client->server request timelines, need %d\n"
          path r.tc_linked require_linked;
        exit 1
      end;
      exit 0
  | None, None ->
      if interval <= 0. then die "--interval must be positive";
      let fetch =
        match (remote, file) with
        | Some _, Some _ -> die "--remote and --file are exclusive"
        | Some addr_s, None ->
            let addr =
              match Wire.Transport.parse_addr addr_s with
              | Ok a -> a
              | Error e -> die "--remote %s" e
            in
            fun () -> fetch_remote addr
        | None, Some path -> fun () -> read_file path
        | None, None ->
            die "one of --remote, --file, --check-telemetry, --check-trace \
                 is required"
      in
      let stop = ref false in
      let on_signal _ = stop := true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      let show () =
        match fetch () with
        | json_text ->
            if json then print_string (String.trim json_text ^ "\n")
            else begin
              let v = snapshot_of_json ~source:"snapshot" json_text in
              if not once then print_string "\027[2J\027[H";
              print_string (render_view v)
            end;
            flush stdout;
            true
        | exception Wire.Error.Wire e ->
            Printf.eprintf "xtop: %s\n%!" (Wire.Error.to_string e);
            false
        | exception Sys_error msg ->
            Printf.eprintf "xtop: %s\n%!" msg;
            false
      in
      if once then exit (if show () then 0 else 1)
      else
        while not !stop do
          ignore (show () : bool);
          let slept = ref 0. in
          while (not !stop) && !slept < interval do
            Unix.sleepf 0.1;
            slept := !slept +. 0.1
          done
        done

let () =
  let cmd =
    Cmd.v
      (Cmd.info "xtop" ~version:"1.2.0"
         ~doc:
           "Live per-tenant view of a terminal's telemetry (Get_stats \
            admin frames or --telemetry snapshot files), plus CI \
            validators for exported telemetry and trace artifacts.")
      Term.(
        const run $ remote_arg $ file_arg $ interval_arg $ once_arg
        $ json_arg $ check_telemetry_arg $ check_trace_arg
        $ require_linked_arg)
  in
  exit (Cmd.eval cmd)
