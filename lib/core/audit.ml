(* Audit replay: cross-check a recorded provenance trace against the DOM
   reference oracle, and render human-readable "why" reports for `xacml
   explain`. Divergence between what the trace claims and what the oracle
   computes — a flipped verdict, a missing node, a skipped region whose
   resolution disagrees — is a violation; so is any failed chunk-integrity
   verdict. *)

module Tree = Xmlac_xml.Tree
module Dom_eval = Xmlac_xpath.Dom_eval

type violation = { where : string; detail : string }

let path_str = function
  | [] -> "/"
  | p -> "/" ^ String.concat "/" (List.map string_of_int p)

let is_strict_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> false
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && go a' b'
  in
  go a b

module Id_map = Map.Make (struct
  type t = Dom_eval.node_id

  let compare = Dom_eval.compare_id
end)

let tag_at doc id =
  match Dom_eval.node_at doc id with
  | Some (Tree.Element { tag; _ }) -> Some tag
  | _ -> None

let check ?query ~policy ~doc records =
  let violations = ref [] in
  let bad where fmt =
    Printf.ksprintf
      (fun detail -> violations := { where; detail } :: !violations)
      fmt
  in
  let oracle = Oracle.decisions policy doc in
  let permitted =
    List.fold_left
      (fun m (d : Oracle.decision) -> Id_map.add d.id d.permitted m)
      Id_map.empty oracle
  in
  let delivered =
    List.fold_left
      (fun m id -> Id_map.add id true m)
      Id_map.empty
      (Oracle.delivered_ids ?query policy doc)
  in
  let is_delivered id = Id_map.mem id delivered in
  (* index the trace *)
  let nodes = ref Id_map.empty in
  let skips = ref [] in
  List.iter
    (fun r ->
      match r with
      | Provenance.Node n ->
          let where = path_str n.Provenance.n_path in
          if Id_map.mem n.Provenance.n_path !nodes then
            bad where "duplicate node record"
          else nodes := Id_map.add n.Provenance.n_path n !nodes
      | Provenance.Skip s -> skips := s :: !skips
      | Provenance.Chunk c ->
          if not c.Provenance.c_ok then
            bad
              (Printf.sprintf "chunk %d" c.Provenance.c_chunk)
              "integrity verdict failed: %s" c.Provenance.c_detail)
    records;
  let skips = List.rev !skips in
  (* per-node checks against the oracle *)
  Id_map.iter
    (fun id (n : Provenance.node_record) ->
      let where = path_str id in
      match Id_map.find_opt id permitted with
      | None -> bad where "trace records a node the document does not have"
      | Some oracle_permitted -> (
          (match tag_at doc id with
          | Some tag when tag <> n.n_tag ->
              bad where "tag mismatch: trace says %S, document has %S" n.n_tag
                tag
          | _ -> ());
          (match n.n_rule_verdict with
          | Provenance.Undecided -> bad where "rule verdict left undecided"
          | Provenance.Permit when not oracle_permitted ->
              bad where "trace says permit, oracle says deny"
          | Provenance.Deny when oracle_permitted ->
              bad where "trace says deny, oracle says permit"
          | _ -> ());
          match n.n_delivered with
          | Provenance.Undecided -> bad where "delivery verdict left undecided"
          | Provenance.Permit when not (is_delivered id) ->
              bad where "trace says delivered, oracle says not delivered"
          | Provenance.Deny when is_delivered id ->
              bad where "trace says not delivered, oracle says delivered"
          | _ -> ()))
    !nodes;
  (* skip checks: a skip record must sit on a real element and its final
     resolution must match the oracle's verdict for the skipped region *)
  List.iter
    (fun (s : Provenance.skip_record) ->
      let where = path_str s.k_path in
      if not (Id_map.mem s.k_path permitted) then
        bad where "skip record on a node the document does not have"
      else if s.k_delivered = Provenance.Undecided then
        bad where "skip resolution left undecided")
    skips;
  (* completeness: every document element is either recorded or lies under
     a skipped region, and the most specific covering skip's resolution
     must agree with the oracle about it. (A subtree skipped at its open
     covers its descendants; a rest skip at X covers the remaining
     children of X — both are "strictly below the skip path".) *)
  List.iter
    (fun (d : Oracle.decision) ->
      if not (Id_map.mem d.id !nodes) then begin
        let where = path_str d.id in
        let covering =
          List.filter
            (fun (s : Provenance.skip_record) ->
              is_strict_prefix s.k_path d.id)
            skips
        in
        match
          List.fold_left
            (fun best (s : Provenance.skip_record) ->
              match best with
              | Some (b : Provenance.skip_record)
                when List.length b.k_path >= List.length s.k_path ->
                  best
              | _ -> Some s)
            None covering
        with
        | None -> bad where "element neither recorded nor under a skip"
        | Some s ->
            let expected = s.k_delivered = Provenance.Permit in
            if expected <> is_delivered d.id then
              bad where
                "element under %s skip at %s resolved %s, but the oracle says \
                 it is %sdelivered"
                (Provenance.skip_kind_to_string s.k_kind)
                (path_str s.k_path)
                (Provenance.verdict_to_string s.k_delivered)
                (if is_delivered d.id then "" else "not ")
      end)
    oracle;
  List.rev !violations

(* Explain ------------------------------------------------------------------ *)

let verdict_word = function
  | Provenance.Permit -> "DELIVERED"
  | Provenance.Deny -> "DENIED"
  | Provenance.Undecided -> "UNDECIDED"

let sign_word = function Rule.Permit -> "permit" | Rule.Deny -> "deny"

let status_word = function
  | Provenance.Applies -> "applies"
  | Provenance.Pending -> "pending"
  | Provenance.Inapplicable -> "inapplicable"

let render_step buf = function
  | Provenance.Deny_wins { depth; tag; rule } ->
      Printf.bprintf buf
        "    - level <%s> (depth %d): rule %s applies — denial takes \
         precedence => DENY\n"
        tag depth rule
  | Provenance.Permit_wins { depth; tag; rule } ->
      Printf.bprintf buf
        "    - level <%s> (depth %d): positive rule %s applies, no denial \
         at this level => PERMIT\n"
        tag depth rule
  | Provenance.Inherit { depth; tag } ->
      Printf.bprintf buf
        "    - level <%s> (depth %d): no applicable rule — defer to \
         ancestors\n"
        tag depth
  | Provenance.Closed_policy ->
      Buffer.add_string buf
        "    - closed policy: no rule applies on any level => DENY (default)\n"

let render_node buf (n : Provenance.node_record) =
  Printf.bprintf buf "node <%s> at %s (depth %d): %s\n" n.n_tag
    (path_str n.n_path) n.n_depth
    (verdict_word n.n_delivered);
  (match n.n_winner with
  | Some (rule, sign) ->
      Printf.bprintf buf "  winning rule: %s (%s)\n" rule (sign_word sign)
  | None -> Buffer.add_string buf "  winning rule: none (closed policy)\n");
  if n.n_rule_verdict = Provenance.Permit && n.n_delivered = Provenance.Deny
  then
    Buffer.add_string buf
      "  note: rule-permitted, but outside the query scope\n";
  Buffer.add_string buf
    "  conflict resolution (most specific level first):\n";
  List.iter (render_step buf) n.n_steps;
  Buffer.add_string buf "  authorization stack at open (root first):\n";
  List.iter
    (fun (f : Provenance.stack_frame) ->
      Printf.bprintf buf "    depth %d <%s>:%s\n" f.f_depth f.f_tag
        (if f.f_rules = [] then " (no rule instance)"
         else
           String.concat ""
             (List.map
                (fun (rule, sign, status) ->
                  Printf.sprintf " %s[%s,%s]" rule (Rule.sign_to_string sign)
                    (status_word status))
                f.f_rules)))
    n.n_auth_stack;
  (match n.n_pending with
  | [] -> ()
  | pending ->
      Printf.bprintf buf "  pending predicates at open:%s\n"
        (String.concat ""
           (List.map
              (fun (rule, anchor) ->
                Printf.sprintf " %s(anchor depth %d)" rule anchor)
              pending)));
  match n.n_tokens with
  | [] -> ()
  | tokens ->
      Printf.bprintf buf "  live tokens below this element:%s\n"
        (String.concat ""
           (List.map
              (fun (rule, matched, total) ->
                Printf.sprintf " %s %d/%d" rule matched total)
              tokens))

let explain ~records id =
  let buf = Buffer.create 256 in
  let node =
    List.find_opt
      (function Provenance.Node n -> n.Provenance.n_path = id | _ -> false)
      records
  in
  (match node with
  | Some (Provenance.Node n) -> render_node buf n
  | _ -> (
      let covering =
        List.filter_map
          (function
            | Provenance.Skip s
              when is_strict_prefix s.Provenance.k_path id ->
                Some s
            | _ -> None)
          records
      in
      match
        List.fold_left
          (fun best (s : Provenance.skip_record) ->
            match best with
            | Some (b : Provenance.skip_record)
              when List.length b.k_path >= List.length s.k_path ->
                best
            | _ -> Some s)
          None covering
      with
      | Some s ->
          Printf.bprintf buf
            "node at %s: inside a region skipped at <%s> %s (%s skip, %d \
             bytes saved, %s): %s without parsing\n"
            (path_str id) s.k_tag (path_str s.k_path)
            (Provenance.skip_kind_to_string s.k_kind)
            s.k_bytes_saved
            (if s.k_pending_at_skip then "was pending" else "decided at skip")
            (verdict_word s.k_delivered)
      | None ->
          Printf.bprintf buf "node at %s: no provenance recorded\n"
            (path_str id)));
  Buffer.contents buf
