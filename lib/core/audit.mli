(** Audit replay and explanation over {!Provenance} records.

    {!check} makes provenance a correctness tool: every recorded decision
    is cross-checked against the DOM reference oracle, so a trace captured
    from the streaming evaluator both documents the run and proves it
    agreed with the specification. {!explain} renders the human-readable
    "why was this node delivered/denied" report behind [xacml explain]. *)

type violation = { where : string; detail : string }

val path_str : Xmlac_xpath.Dom_eval.node_id -> string
(** ["/0/2/1"]; the root element is ["/"]. *)

val check :
  ?query:Xmlac_xpath.Ast.t ->
  policy:Policy.t ->
  doc:Xmlac_xml.Tree.t ->
  Provenance.record list ->
  violation list
(** Violations of a trace against the oracle, in document order. Checked
    per node: existence, tag, rule verdict vs {!Oracle.decisions}, delivery
    verdict vs {!Oracle.delivered_ids}; per skip: existence and a decided
    resolution; globally: every document element is recorded or covered by
    a skip whose resolution matches the oracle (most specific skip wins),
    duplicate records, failed chunk-integrity verdicts. An empty list means
    the trace is consistent with the specification. *)

val explain :
  records:Provenance.record list -> Xmlac_xpath.Dom_eval.node_id -> string
(** The report for one node: verdict, winning rule, conflict-resolution
    steps, Authorization-Stack and pending snapshots — or the covering
    skip when the node was never parsed. *)
