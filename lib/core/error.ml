type t =
  | Xml_malformed of { reason : string; pos : int }
  | Xpath_invalid of { reason : string; pos : int }
  | Index_corrupt of string
  | Index_encode of string
  | Container_corrupt of string
  | Integrity_violation of string
  | Policy_invalid of string
  | Stream_invalid of string

exception Stream_error of string

let to_string = function
  | Xml_malformed { reason; pos } ->
      Printf.sprintf "malformed XML at byte %d: %s" pos reason
  | Xpath_invalid { reason; pos } ->
      Printf.sprintf "invalid XPath at position %d: %s" pos reason
  | Index_corrupt msg -> Printf.sprintf "corrupt skip-index data: %s" msg
  | Index_encode msg -> Printf.sprintf "skip-index encoding failed: %s" msg
  | Container_corrupt msg -> Printf.sprintf "corrupt container: %s" msg
  | Integrity_violation msg -> Printf.sprintf "integrity violation: %s" msg
  | Policy_invalid msg -> Printf.sprintf "invalid policy: %s" msg
  | Stream_invalid msg -> Printf.sprintf "invalid event stream: %s" msg

(* The crypto library sits below this one in the dependency order, so its
   two exceptions are classified by the layers that see both (lib/soe,
   lib/fuzz, bin) via the [Container_corrupt]/[Integrity_violation]
   constructors; this classifier covers everything reachable from here. *)
let of_exn = function
  | Xmlac_xml.Parser.Malformed (reason, pos) ->
      Some (Xml_malformed { reason; pos })
  | Xmlac_xpath.Parse.Error (reason, pos) ->
      Some (Xpath_invalid { reason; pos })
  | Xmlac_skip_index.Error.Error (Xmlac_skip_index.Error.Corrupt msg) ->
      Some (Index_corrupt msg)
  | Xmlac_skip_index.Error.Error (Xmlac_skip_index.Error.Encode_failure msg) ->
      Some (Index_encode msg)
  | Stream_error msg -> Some (Stream_invalid msg)
  | _ -> None
