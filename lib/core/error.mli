(** The pipeline's shared error taxonomy.

    Every trust boundary of the system — raw XML into the parser, encoded
    bytes into the skip-index decoder, container bytes into the crypto
    layer, policy text into {!Policy}, event streams into the
    {!Evaluator} — signals hostile or damaged input through a typed
    channel that this type unifies. The invariant (checked by the fuzzing
    harness, [lib/fuzz]): hostile bytes produce a typed [Error], never an
    uncaught exception and never a wrong view. *)

type t =
  | Xml_malformed of { reason : string; pos : int }
  | Xpath_invalid of { reason : string; pos : int }
  | Index_corrupt of string  (** skip-index bytes *)
  | Index_encode of string  (** encoder-side failure (fixpoint safety net) *)
  | Container_corrupt of string  (** container framing *)
  | Integrity_violation of string  (** digest/Merkle mismatch *)
  | Policy_invalid of string
  | Stream_invalid of string  (** unbalanced / truncated event stream *)

exception Stream_error of string
(** Raised by the streaming evaluator on an event stream no well-formed
    input can produce: a close without a matching open, a second root, or
    an input that ends with elements still open. *)

val to_string : t -> string

val of_exn : exn -> t option
(** Classify the typed exceptions of the layers this library depends on
    (XML, XPath, skip index, evaluator). Crypto-layer exceptions
    ([Secure_container.Corrupt] / [Integrity_failure]) are mapped by the
    layers that depend on both (SOE, fuzzing harness, CLI). *)
