module Event = Xmlac_xml.Event
module Ast = Xmlac_xpath.Ast

type stats = {
  mutable events_in : int;
  mutable transitions : int;
  mutable ara_memo_hits : int;
  mutable ara_memo_misses : int;
  mutable tokens_peak : int;
  mutable depth_peak : int;
  mutable auth_pushes : int;
  mutable atoms_created : int;
  mutable open_skips : int;
  mutable rest_skips : int;
  mutable pending_subtrees : int;
  mutable readback_subtrees : int;
  mutable pending_items_peak : int;
  mutable events_out : int;
  mutable first_output_at : int;
  mutable memory_peak_bytes : int;
}

let fresh_stats () =
  {
    events_in = 0;
    transitions = 0;
    ara_memo_hits = 0;
    ara_memo_misses = 0;
    tokens_peak = 0;
    depth_peak = 0;
    auth_pushes = 0;
    atoms_created = 0;
    open_skips = 0;
    rest_skips = 0;
    pending_subtrees = 0;
    readback_subtrees = 0;
    pending_items_peak = 0;
    events_out = 0;
    first_output_at = -1;
    memory_peak_bytes = 0;
  }

let stats_metrics (s : stats) : Xmlac_obs.Metrics.t =
  Xmlac_obs.Metrics.
    [
      int "events_in" s.events_in;
      int "transitions" s.transitions;
      int "ara_memo_hits" s.ara_memo_hits;
      int "ara_memo_misses" s.ara_memo_misses;
      int "tokens_peak" s.tokens_peak;
      int "depth_peak" s.depth_peak;
      int "auth_pushes" s.auth_pushes;
      int "atoms_created" s.atoms_created;
      int "open_skips" s.open_skips;
      int "rest_skips" s.rest_skips;
      int "pending_subtrees" s.pending_subtrees;
      int "readback_subtrees" s.readback_subtrees;
      int "pending_items_peak" s.pending_items_peak;
      int "events_out" s.events_out;
      int "first_output_at" s.first_output_at;
      int "memory_peak_bytes" s.memory_peak_bytes;
    ]

type options = {
  enable_skipping : bool;
  enable_rest_skips : bool;
  enable_desctag_filter : bool;
  enable_ara_memo : bool;
}

let default_options =
  {
    enable_skipping = true;
    enable_rest_skips = true;
    enable_desctag_filter = true;
    enable_ara_memo = true;
  }

type observation =
  | Obs_instance of { rule : string; sign : Rule.sign; depth : int; pending : bool }
  | Obs_predicate_satisfied of { rule : string; anchor_depth : int }
  | Obs_decision of { tag : string; depth : int; decision : Conflict.decision }
  | Obs_skip of { depth : int; pending : bool }

let trace_observation obs =
  let module J = Xmlac_obs.Json in
  match obs with
  | Obs_instance { rule; sign; depth; pending } ->
      ( "eval.instance",
        [
          ("rule", J.String rule);
          ("sign", J.String (Rule.sign_to_string sign));
          ("depth", J.Int depth);
          ("pending", J.Bool pending);
        ] )
  | Obs_predicate_satisfied { rule; anchor_depth } ->
      ( "eval.predicate_satisfied",
        [ ("rule", J.String rule); ("anchor_depth", J.Int anchor_depth) ] )
  | Obs_decision { tag; depth; decision } ->
      ( "eval.decision",
        [
          ("tag", J.String tag);
          ("depth", J.Int depth);
          ( "decision",
            J.String
              (match decision with
              | Conflict.Permit -> "permit"
              | Conflict.Deny -> "deny"
              | Conflict.Pending -> "pending") );
        ] )
  | Obs_skip { depth; pending } ->
      ("eval.skip", [ ("depth", J.Int depth); ("pending", J.Bool pending) ])

type result = { events : Event.t list; stats : stats }

(* Tokens ----------------------------------------------------------------- *)

type nav_token = {
  nt_ara : Ara.t;
  nt_state : int;  (* navigational steps matched so far *)
  nt_atoms : Condition.atom list;  (* this rule instance's predicate atoms *)
  nt_expr : Condition.t;  (* query tokens: conjunction of the view-membership
                             conditions of the elements matched so far *)
}

type atom_entry = {
  ae_atom : Condition.atom;
  ae_anchor_depth : int;
  ae_rule : string;  (* owning rule/query id, for introspection *)
  mutable ae_contribs : Condition.t list;
}

type pred_token = {
  pt_ara : Ara.t;
  pt_pred : Ara.pred;
  pt_state : int;
  pt_entry : atom_entry;
  pt_expr : Condition.t;
}

type level = {
  mutable nav : nav_token list;
  mutable pred : pred_token list;
  mutable memo : (string, nav_token list * pred_token list) Hashtbl.t option;
      (* per-tag sublists of [nav]/[pred] that can react to a child with
         that tag (current step descends or matches the label), built
         lazily on first use. Sound because a level's token lists never
         grow once it has children, and the only later removals are
         resolved predicate tokens, which the advance loop skips anyway —
         so a stale sublist does exactly the work the full scan would. *)
}

type value_scope = {
  vs_entry : atom_entry;
  vs_gate : Condition.t;
  vs_cond : Ast.comparison * Ast.literal;
  vs_close_depth : int;
  vs_buf : Buffer.t;
}

(* Output items ------------------------------------------------------------

   Every document node produces an item carrying its three-valued delivery
   condition; items are delivered eagerly (out of document order, labelled
   with their sequence number — the anchor of Section 5) as soon as their
   condition and their ancestors' conditions are decided. The final,
   in-order view is the deliveries sorted by sequence number. *)

type item_kind =
  | K_start of {
      tag : string;
      attributes : Event.attribute list;
      mutable end_item : int;  (* index of the matching K_end, -1 until closed *)
    }
  | K_end of { start : int }
  | K_text of string
  | K_subtree of Input.subtree_thunk

type item = {
  it_idx : int;
  it_kind : item_kind;
  it_expr : Condition.t;
  it_parent : int;  (* index of the enclosing K_start item, -1 at the root *)
  mutable it_emitted : bool;
  mutable it_self_true : bool;  (* K_start: own condition was True at emission *)
  mutable it_pending_desc : int;  (* K_start: undelivered pending items below *)
  mutable it_closed : bool;  (* K_start: closing event reached *)
  mutable it_tag_emitted : string;  (* K_start: the tag actually output *)
}

(* Query steps match elements of the authorized *view*: an element is in
   the view when some node of its subtree is rule-permitted. A watcher
   gathers the rule-level conditions of the subtree; its atom resolves when
   the element closes. *)
type view_watcher = {
  vw_atom : Condition.atom;
  mutable vw_true : bool;
  mutable vw_pending : Condition.t list;
}

type open_elem = {
  oe_item : int;
  oe_delivery : Condition.t;
  oe_watcher : view_watcher option;
}

type st = {
  input : Input.t;
  options : options;
  dummy_denied : string option;
  on_deliver : (seq:int -> Event.t list -> unit) option;
  observer : (observation -> unit) option;
  prov : Provenance.collector option;
  (* node-id tracking (only maintained when [prov] is set): [path_rev] is
     the current element's Dom_eval.node_id reversed; [sib_counts]'s head
     is the ordinal the *next* child of the current element will get —
     text nodes count, matching the DOM oracle's numbering *)
  mutable path_rev : int list;
  mutable sib_counts : int list;
  rule_aras : Ara.t list;
  query_ara : Ara.t option;
  stats : stats;
  mutable levels : level list;  (* innermost first; always ends with level 0 *)
  mutable rule_exprs : Condition.t list;  (* innermost first *)
  mutable interests : Condition.t list;
  mutable open_elems : open_elem list;
  registry : (int * int * int, atom_entry) Hashtbl.t;
  expiry : (int, ((int * int * int) * atom_entry) list ref) Hashtbl.t;
  mutable watchers : view_watcher list;  (* active, innermost first *)
  mutable scopes : value_scope list;
  mutable items : item array;  (* growable; [item_count] slots in use *)
  mutable item_count : int;
  mutable pending : item list;  (* items whose delivery is not settled *)
  mutable pending_count : int;
  mutable out_rev : (int * Event.t list) list;  (* (seq, events) deliveries *)
  mutable resolution_tick : int;  (* bumped whenever some atom resolves *)
  mutable last_sweep_tick : int;
  mutable depth : int;
  mutable live : int;  (* tokens across all levels, kept incrementally *)
  mutable root_closed : bool;  (* a top-level element has been closed *)
}

let label_matches label tag =
  match label with Ara.Star -> true | Ara.Tag t -> String.equal t tag

let dummy_item =
  {
    it_idx = -1;
    it_kind = K_text "";
    it_expr = Condition.fls;
    it_parent = -1;
    it_emitted = false;
    it_self_true = false;
    it_pending_desc = 0;
    it_closed = false;
    it_tag_emitted = "";
  }

let get_item st idx = st.items.(idx)

let add_item st kind expr parent =
  if st.item_count = Array.length st.items then begin
    let bigger = Array.make (max 64 (2 * st.item_count)) dummy_item in
    Array.blit st.items 0 bigger 0 st.item_count;
    st.items <- bigger
  end;
  let it =
    {
      it_idx = st.item_count;
      it_kind = kind;
      it_expr = expr;
      it_parent = parent;
      it_emitted = false;
      it_self_true = false;
      it_pending_desc = 0;
      it_closed = false;
      it_tag_emitted = "";
    }
  in
  st.items.(st.item_count) <- it;
  st.item_count <- st.item_count + 1;
  it

(* Delivery engine ---------------------------------------------------------- *)

let emit st seq events =
  if events <> [] then begin
    if st.stats.first_output_at < 0 then
      st.stats.first_output_at <- st.stats.events_in;
    st.stats.events_out <- st.stats.events_out + List.length events;
    st.out_rev <- (seq, events) :: st.out_rev;
    match st.on_deliver with Some f -> f ~seq events | None -> ()
  end

(* An item can only be emitted once the conditions of all its ancestors are
   decided (their names — real or dummy — are then final). *)
let rec ancestors_decided st idx =
  idx < 0
  ||
  let it = get_item st idx in
  it.it_emitted
  || (Condition.eval it.it_expr <> Condition.Unknown
     && ancestors_decided st it.it_parent)

let rec maybe_emit_end st idx =
  let it = get_item st idx in
  match it.it_kind with
  | K_start k ->
      if it.it_emitted && it.it_closed && it.it_pending_desc = 0 && k.end_item >= 0
      then begin
        let e = get_item st k.end_item in
        if not e.it_emitted then begin
          e.it_emitted <- true;
          emit st e.it_idx [ Event.End it.it_tag_emitted ]
        end
      end
  | _ -> ()

(* Emit an element's opening tag (the Structural rule: ancestors of any
   delivered node are delivered, optionally under a dummy name). *)
and emit_start st idx =
  let it = get_item st idx in
  if not it.it_emitted then begin
    if it.it_parent >= 0 then emit_start st it.it_parent;
    match it.it_kind with
    | K_start k ->
        let self = Condition.eval it.it_expr = Condition.True in
        it.it_self_true <- self;
        let tag, attributes =
          if self then (k.tag, k.attributes)
          else (Option.value st.dummy_denied ~default:k.tag, [])
        in
        it.it_tag_emitted <- tag;
        it.it_emitted <- true;
        emit st it.it_idx [ Event.Start { tag; attributes } ];
        maybe_emit_end st idx
    | _ -> assert false
  end

(* Attempt to settle an item. Returns true when the item no longer needs
   tracking (delivered or definitively dropped). *)
let try_deliver st it =
  match Condition.eval it.it_expr with
  | Condition.Unknown -> false
  | Condition.False -> true (* dropped; a K_start may still be emitted
                               structurally when a descendant delivers *)
  | Condition.True ->
      if not (ancestors_decided st it.it_parent) then false
      else begin
        (match it.it_kind with
        | K_start _ -> emit_start st it.it_idx
        | K_text s ->
            if it.it_parent >= 0 then emit_start st it.it_parent;
            it.it_emitted <- true;
            emit st it.it_idx [ Event.Text s ]
        | K_subtree thunk ->
            if it.it_parent >= 0 then emit_start st it.it_parent;
            it.it_emitted <- true;
            st.stats.readback_subtrees <- st.stats.readback_subtrees + 1;
            emit st it.it_idx (thunk ())
        | K_end _ -> assert false);
        true
      end

let rec decrement_pending_desc st idx =
  if idx >= 0 then begin
    let it = get_item st idx in
    it.it_pending_desc <- it.it_pending_desc - 1;
    maybe_emit_end st idx;
    decrement_pending_desc st it.it_parent
  end

let rec increment_pending_desc st idx =
  if idx >= 0 then begin
    let it = get_item st idx in
    it.it_pending_desc <- it.it_pending_desc + 1;
    increment_pending_desc st it.it_parent
  end

(* Create an item and either deliver it now or queue it as pending. *)
let new_item st kind expr parent =
  let it = add_item st kind expr parent in
  if not (try_deliver st it) then begin
    st.pending <- it :: st.pending;
    st.pending_count <- st.pending_count + 1;
    increment_pending_desc st parent;
    if st.pending_count > st.stats.pending_items_peak then
      st.stats.pending_items_peak <- st.pending_count
  end;
  it

let sweep st =
  if st.resolution_tick <> st.last_sweep_tick then begin
    st.last_sweep_tick <- st.resolution_tick;
    st.pending <-
      List.filter
        (fun it ->
          if try_deliver st it then begin
            decrement_pending_desc st it.it_parent;
            st.pending_count <- st.pending_count - 1;
            false
          end
          else true)
        st.pending
  end

(* A rough model of the SOE's working set: tokens, stack frames, pending
   bookkeeping, predicate instances and value-scope buffers. The constants
   approximate a compact C implementation (the paper's prototype); the
   interesting output is how the peak scales with documents and policies. *)
let note_memory st =
  let scope_bytes =
    List.fold_left (fun acc s -> acc + 48 + Buffer.length s.vs_buf) 0 st.scopes
  in
  let mem =
    (st.live * 40) + (st.depth * 96)
    + (st.pending_count * 56)
    + (Hashtbl.length st.registry * 64)
    + scope_bytes
  in
  if mem > st.stats.memory_peak_bytes then st.stats.memory_peak_bytes <- mem

(* Predicate instances ------------------------------------------------------ *)

let observe st obs = match st.observer with Some f -> f obs | None -> ()

let contribute st entry expr =
  if not (Condition.is_resolved entry.ae_atom) then
    match Condition.eval expr with
    | Condition.True ->
        Condition.resolve entry.ae_atom Condition.tru;
        st.resolution_tick <- st.resolution_tick + 1;
        observe st
          (Obs_predicate_satisfied
             { rule = entry.ae_rule; anchor_depth = entry.ae_anchor_depth })
    | Condition.False -> ()
    | Condition.Unknown -> entry.ae_contribs <- expr :: entry.ae_contribs

let get_or_create_entry st ~ara ~pred_id ~depth =
  let key = (ara.Ara.ara_id, pred_id, depth) in
  match Hashtbl.find_opt st.registry key with
  | Some e -> (e, false)
  | None ->
      let e =
        {
          ae_atom = Condition.atom ();
          ae_anchor_depth = depth;
          ae_rule = Ara.rule_id ara;
          ae_contribs = [];
        }
      in
      Hashtbl.replace st.registry key e;
      let bucket =
        match Hashtbl.find_opt st.expiry depth with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace st.expiry depth b;
            b
      in
      bucket := (key, e) :: !bucket;
      st.stats.atoms_created <- st.stats.atoms_created + 1;
      (e, true)

let expire_depth st depth =
  (* close of the element at [depth]: unresolved predicate instances
     anchored there resolve to the disjunction of what they gathered *)
  match Hashtbl.find_opt st.expiry depth with
  | None -> ()
  | Some bucket ->
      List.iter
        (fun (key, e) ->
          if not (Condition.is_resolved e.ae_atom) then begin
            Condition.resolve e.ae_atom (Condition.disj e.ae_contribs);
            st.resolution_tick <- st.resolution_tick + 1
          end;
          Hashtbl.remove st.registry key)
        !bucket;
      Hashtbl.remove st.expiry depth

(* Token transitions ---------------------------------------------------------- *)

(* Advance the predicate tokens [tokens] (from the parent level) into [lvl]
   for the element [tag] opened at [depth]; [node_expr] is what query
   tokens conjoin (True for rules). *)
let advance_pred_tokens st ~tokens ~lvl ~tag ~depth ~node_expr ~want =
  List.iter
    (fun pt ->
      if want pt.pt_ara && not (Condition.is_resolved pt.pt_entry.ae_atom) then begin
        let steps = pt.pt_pred.Ara.psteps in
        let step = steps.(pt.pt_state) in
        if step.Ara.p_descend then lvl.pred <- pt :: lvl.pred;
        if label_matches step.Ara.p_label tag then begin
          st.stats.transitions <- st.stats.transitions + 1;
          let expr' =
            if Ara.is_query pt.pt_ara then
              Condition.conj [ pt.pt_expr; Lazy.force node_expr ]
            else Condition.tru
          in
          let state' = pt.pt_state + 1 in
          if state' = Array.length steps then
            match pt.pt_pred.Ara.pcondition with
            | None -> contribute st pt.pt_entry expr'
            | Some cond ->
                st.scopes <-
                  {
                    vs_entry = pt.pt_entry;
                    vs_gate = expr';
                    vs_cond = cond;
                    vs_close_depth = depth;
                    vs_buf = Buffer.create 16;
                  }
                  :: st.scopes
          else lvl.pred <- { pt with pt_state = state'; pt_expr = expr' } :: lvl.pred
        end
      end)
    tokens

(* Advance navigational tokens; returns the (rule, sign,
   instance-expression) triples of instances completed at this element. *)
let advance_nav_tokens st ~tokens ~lvl ~tag ~depth ~node_expr ~want =
  let completions = ref [] in
  List.iter
    (fun nt ->
      if want nt.nt_ara then begin
        let steps = nt.nt_ara.Ara.nsteps in
        let step = steps.(nt.nt_state) in
        if step.Ara.n_descend then lvl.nav <- nt :: lvl.nav;
        if label_matches step.Ara.n_label tag then begin
          st.stats.transitions <- st.stats.transitions + 1;
          let expr' =
            if Ara.is_query nt.nt_ara then
              Condition.conj [ nt.nt_expr; Lazy.force node_expr ]
            else Condition.tru
          in
          (* anchor this step's predicates at the current element *)
          let atoms =
            List.fold_left
              (fun atoms pred_id ->
                let entry, fresh =
                  get_or_create_entry st ~ara:nt.nt_ara ~pred_id ~depth
                in
                (* the predicate instance is shared by every rule/query
                   instance anchored at this element, so its gate starts
                   neutral and only accumulates the predicate path's own
                   node conditions *)
                if fresh then
                  lvl.pred <-
                    {
                      pt_ara = nt.nt_ara;
                      pt_pred = nt.nt_ara.Ara.preds.(pred_id);
                      pt_state = 0;
                      pt_entry = entry;
                      pt_expr = Condition.tru;
                    }
                    :: lvl.pred;
                entry.ae_atom :: atoms)
              nt.nt_atoms step.Ara.anchors
          in
          let state' = nt.nt_state + 1 in
          if state' = Array.length steps then begin
            st.stats.auth_pushes <- st.stats.auth_pushes + 1;
            let inst =
              Condition.conj (expr' :: List.map Condition.atom_expr atoms)
            in
            observe st
              (Obs_instance
                 {
                   rule = Ara.rule_id nt.nt_ara;
                   sign = Ara.sign nt.nt_ara;
                   depth;
                   pending = Condition.eval inst = Condition.Unknown;
                 });
            completions :=
              (Ara.rule_id nt.nt_ara, Ara.sign nt.nt_ara, inst) :: !completions
          end
          else
            lvl.nav <-
              { nt with nt_state = state'; nt_atoms = atoms; nt_expr = expr' }
              :: lvl.nav
        end
      end)
    tokens;
  !completions

(* DescTag filtering (SkipSubtree, Figure 6): drop tokens whose remaining
   concrete labels cannot all be found below the current element. *)
let filter_level_by_desctags lvl tags =
  lvl.memo <- None (* token lists change shape: drop any per-tag sublists *);
  let module S = Set.Make (String) in
  let set = S.of_list tags in
  let empty = S.is_empty set in
  let ok labels = (not empty) && List.for_all (fun l -> S.mem l set) labels in
  lvl.nav <-
    List.filter
      (fun nt -> ok (Ara.remaining_nav_labels nt.nt_ara ~from_state:nt.nt_state))
      lvl.nav;
  lvl.pred <-
    List.filter
      (fun pt -> ok (Ara.remaining_pred_labels pt.pt_pred ~from_state:pt.pt_state))
      lvl.pred

(* Predicate tokens whose instance already resolved are dead (the paper's
   "no need to continue to evaluate this predicate in this subtree",
   Figure 3 step 3); prune them before deciding whether a level is empty. *)
let prune_dead_pred_tokens st lvl =
  let before = List.length lvl.pred in
  lvl.pred <-
    List.filter
      (fun pt -> not (Condition.is_resolved pt.pt_entry.ae_atom))
      lvl.pred;
  st.live <- st.live - (before - List.length lvl.pred)

(* strip the enclosing Start/End of a read-back subtree *)
let strip_wrapper events =
  match events with
  | Event.Start _ :: rest ->
      let rec drop_last = function
        | [] | [ Event.End _ ] -> []
        | e :: tl -> e :: drop_last tl
      in
      drop_last rest
  | _ -> events

(* Event handlers ------------------------------------------------------------- *)

(* Guards against event streams no well-formed document can produce (a
   corrupt decoder or a hand-built event list): they raise the typed
   {!Error.Stream_error} instead of tripping internal invariants. Past
   them, [st.levels] always holds [st.depth + 1] entries and
   [st.rule_exprs]/[st.interests]/[st.open_elems] hold [st.depth], so the
   [assert false] arms on those stacks below are genuinely unreachable. *)
(* unresolved predicate instances, as (rule, anchor depth), sorted for a
   deterministic trace *)
let pending_snapshot st =
  Hashtbl.fold
    (fun _ e acc ->
      if Condition.is_resolved e.ae_atom then acc
      else (e.ae_rule, e.ae_anchor_depth) :: acc)
    st.registry []
  |> List.sort compare

let handle_open st tag attributes =
  if st.depth = 0 && st.root_closed then
    raise (Error.Stream_error "multiple root elements");
  let depth = st.depth + 1 in
  st.depth <- depth;
  if depth > st.stats.depth_peak then st.stats.depth_peak <- depth;
  if st.prov <> None then (
    match st.sib_counts with
    | [] ->
        (* the root element: node_id [] *)
        st.path_rev <- [];
        st.sib_counts <- [ 0 ]
    | n :: rest ->
        st.path_rev <- n :: st.path_rev;
        st.sib_counts <- 0 :: (n + 1) :: rest);
  let top = match st.levels with t :: _ -> t | [] -> assert false in
  let lvl = { nav = []; pred = []; memo = None } in
  (* The transition memo: the sublists of the parent's tokens that can
     react to [tag], computed once per (level, tag). Repeated sibling tags
     — the common shape of data-centric documents — then skip the full
     scan. Iteration order within the sublists is the parent order, so
     token processing (and everything downstream) is unchanged. *)
  let nav_tokens, pred_tokens =
    if not st.options.enable_ara_memo then (top.nav, top.pred)
    else begin
      let tbl =
        match top.memo with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 8 in
            top.memo <- Some t;
            t
      in
      match Hashtbl.find_opt tbl tag with
      | Some r ->
          st.stats.ara_memo_hits <- st.stats.ara_memo_hits + 1;
          r
      | None ->
          st.stats.ara_memo_misses <- st.stats.ara_memo_misses + 1;
          let nav =
            List.filter
              (fun nt ->
                let s = nt.nt_ara.Ara.nsteps.(nt.nt_state) in
                s.Ara.n_descend || label_matches s.Ara.n_label tag)
              top.nav
          in
          let pred =
            List.filter
              (fun pt ->
                let s = pt.pt_pred.Ara.psteps.(pt.pt_state) in
                s.Ara.p_descend || label_matches s.Ara.p_label tag)
              top.pred
          in
          Hashtbl.replace tbl tag (nav, pred);
          (nav, pred)
    end
  in
  (* pass A: rules *)
  let rule_completions =
    advance_nav_tokens st ~tokens:nav_tokens ~lvl ~tag ~depth
      ~node_expr:(lazy Condition.tru)
      ~want:(fun a -> not (Ara.is_query a))
  in
  advance_pred_tokens st ~tokens:pred_tokens ~lvl ~tag ~depth
    ~node_expr:(lazy Condition.tru)
    ~want:(fun a -> not (Ara.is_query a));
  let pos =
    List.filter_map
      (fun (_, s, e) -> if s = Rule.Permit then Some e else None)
      rule_completions
  in
  let neg =
    List.filter_map
      (fun (_, s, e) -> if s = Rule.Deny then Some e else None)
      rule_completions
  in
  let parent_rule_expr =
    match st.rule_exprs with e :: _ -> e | [] -> Condition.fls
  in
  let rule_expr =
    Condition.conj
      [
        Condition.neg (Condition.disj neg);
        Condition.disj [ Condition.disj pos; parent_rule_expr ];
      ]
  in
  (* pass B: the query. A query step matching this element contributes the
     element's view-membership (some rule-permitted node in its subtree),
     gathered by a lazily-created watcher resolved at the closing event. *)
  let watcher = ref None in
  let view_membership =
    lazy
      (match !watcher with
      | Some w -> Condition.atom_expr w.vw_atom
      | None ->
          let w =
            { vw_atom = Condition.atom (); vw_true = false; vw_pending = [] }
          in
          watcher := Some w;
          Condition.atom_expr w.vw_atom)
  in
  let interest =
    match st.query_ara with
    | None -> Condition.tru
    | Some _ ->
        let q_completions =
          advance_nav_tokens st ~tokens:nav_tokens ~lvl ~tag ~depth
            ~node_expr:view_membership ~want:Ara.is_query
        in
        advance_pred_tokens st ~tokens:pred_tokens ~lvl ~tag ~depth
          ~node_expr:view_membership ~want:Ara.is_query;
        let parent_interest =
          match st.interests with e :: _ -> e | [] -> Condition.fls
        in
        Condition.disj
          (parent_interest :: List.map (fun (_, _, e) -> e) q_completions)
  in
  let delivery = Condition.conj [ rule_expr; interest ] in
  st.levels <- lvl :: st.levels;
  st.rule_exprs <- rule_expr :: st.rule_exprs;
  st.interests <- interest :: st.interests;
  (* this element's rule condition feeds every active watcher, its own
     included (an element is in the view if it is permitted itself) *)
  (match !watcher with Some w -> st.watchers <- w :: st.watchers | None -> ());
  List.iter
    (fun w ->
      if not w.vw_true then
        match Condition.eval rule_expr with
        | Condition.True -> w.vw_true <- true
        | Condition.Unknown -> w.vw_pending <- rule_expr :: w.vw_pending
        | Condition.False -> ())
    st.watchers;
  observe st
    (Obs_decision
       {
         tag;
         depth;
         decision =
           (match Condition.eval delivery with
           | Condition.True -> Conflict.Permit
           | Condition.False -> Conflict.Deny
           | Condition.Unknown -> Conflict.Pending);
       });
  let parent_item =
    match st.open_elems with o :: _ -> o.oe_item | [] -> -1
  in
  let it =
    new_item st (K_start { tag; attributes; end_item = -1 }) delivery parent_item
  in
  st.open_elems <-
    { oe_item = it.it_idx; oe_delivery = delivery; oe_watcher = !watcher }
    :: st.open_elems;
  (* SkipSubtree: filter by the element's DescTag set, then skip if no
     automaton can progress inside and the subtree is not to be delivered *)
  if st.options.enable_desctag_filter then
    (match st.input.Input.desc_tags () with
    | Some tags -> filter_level_by_desctags lvl tags
    | None -> ());
  st.live <- st.live + List.length lvl.nav + List.length lvl.pred;
  if st.live > st.stats.tokens_peak then st.stats.tokens_peak <- st.live;
  note_memory st;
  prune_dead_pred_tokens st lvl;
  (match st.prov with
  | None -> ()
  | Some coll ->
      Provenance.note_open coll ~path:(List.rev st.path_rev) ~tag ~depth
        ~delivery ~rule_expr ~completions:rule_completions
        ~tokens:
          (List.map
             (fun nt ->
               (Ara.rule_id nt.nt_ara, nt.nt_state, Ara.nav_length nt.nt_ara))
             lvl.nav)
        ~pending:(pending_snapshot st));
  if
    st.options.enable_skipping
    && lvl.nav = [] && lvl.pred = [] && st.scopes = []
    && Condition.eval delivery <> Condition.True
  then
    match st.input.Input.skip () with
    | None -> ()
    | Some (thunk, bytes) -> (
        st.stats.open_skips <- st.stats.open_skips + 1;
        observe st
          (Obs_skip
             { depth; pending = Condition.eval delivery = Condition.Unknown });
        (match st.prov with
        | None -> ()
        | Some coll ->
            Provenance.note_skip coll ~path:(List.rev st.path_rev) ~tag ~depth
              ~kind:Provenance.Skip_subtree
              ~pending:(Condition.eval delivery = Condition.Unknown)
              ~expr:delivery ~bytes);
        match Condition.eval delivery with
        | Condition.False -> () (* prohibited: dropped without being read *)
        | Condition.Unknown ->
            st.stats.pending_subtrees <- st.stats.pending_subtrees + 1;
            ignore
              (new_item st
                 (K_subtree (fun () -> strip_wrapper (thunk ())))
                 delivery it.it_idx)
        | Condition.True -> assert false)

let handle_text st text =
  (* a text node takes a child ordinal too — keep node ids aligned *)
  if st.prov <> None then (
    match st.sib_counts with
    | n :: rest -> st.sib_counts <- (n + 1) :: rest
    | [] -> ());
  List.iter (fun scope -> Buffer.add_string scope.vs_buf text) st.scopes;
  match st.open_elems with
  | [] -> ()
  | { oe_delivery; oe_item; _ } :: _ -> (
      match Condition.eval oe_delivery with
      | Condition.False -> ()
      | Condition.True | Condition.Unknown ->
          ignore (new_item st (K_text text) oe_delivery oe_item))

let handle_close st =
  if st.depth = 0 then
    raise (Error.Stream_error "close event without a matching open");
  if st.depth = 1 then st.root_closed <- true;
  let depth = st.depth in
  (* value scopes attached to the element being closed *)
  let closing, remaining =
    List.partition (fun s -> s.vs_close_depth = depth) st.scopes
  in
  st.scopes <- remaining;
  List.iter
    (fun s ->
      let op, lit = s.vs_cond in
      if Ast.compare_values op (Buffer.contents s.vs_buf) lit then
        contribute st s.vs_entry s.vs_gate)
    closing;
  expire_depth st depth;
  (match st.levels with
  | top :: rest ->
      st.live <- st.live - List.length top.nav - List.length top.pred;
      st.levels <- rest
  | [] -> assert false);
  (match st.rule_exprs with _ :: r -> st.rule_exprs <- r | [] -> assert false);
  (match st.interests with _ :: r -> st.interests <- r | [] -> assert false);
  (match st.open_elems with
  | { oe_item; oe_watcher; _ } :: rest ->
      let start = get_item st oe_item in
      let end_it =
        add_item st (K_end { start = oe_item }) start.it_expr start.it_parent
      in
      (match start.it_kind with
      | K_start k -> k.end_item <- end_it.it_idx
      | _ -> assert false);
      start.it_closed <- true;
      (match oe_watcher with
      | None -> ()
      | Some w ->
          Condition.resolve w.vw_atom
            (if w.vw_true then Condition.tru else Condition.disj w.vw_pending);
          st.resolution_tick <- st.resolution_tick + 1;
          (match st.watchers with
          | top :: others when top == w -> st.watchers <- others
          | _ -> assert false));
      st.open_elems <- rest;
      (* settle whatever the just-resolved atoms decided, then see whether
         this element's End can be emitted *)
      sweep st;
      maybe_emit_end st oe_item
  | [] -> assert false);
  st.depth <- depth - 1;
  (match st.prov with
  | None -> ()
  | Some coll ->
      Provenance.note_close coll;
      (match st.sib_counts with
      | _ :: tl -> st.sib_counts <- tl
      | [] -> ());
      (match st.path_rev with
      | _ :: tl -> st.path_rev <- tl
      | [] -> ()));
  (* close-triggered skip: the rest of the parent's content may now be
     skippable (paper: "this algorithm should be triggered both on open and
     close events") *)
  if st.options.enable_rest_skips && st.depth >= 1 then begin
    (match st.levels with
    | lvl :: _ -> prune_dead_pred_tokens st lvl
    | [] -> ());
    match (st.levels, st.open_elems) with
    | lvl :: _, { oe_delivery; oe_item; _ } :: _
      when lvl.nav = [] && lvl.pred = [] && st.scopes = []
           && Condition.eval oe_delivery <> Condition.True -> (
        match st.input.Input.skip_rest () with
        | None -> ()
        | Some (thunk, bytes) -> (
            st.stats.rest_skips <- st.stats.rest_skips + 1;
            observe st
              (Obs_skip
                 {
                   depth = st.depth;
                   pending = Condition.eval oe_delivery = Condition.Unknown;
                 });
            (match st.prov with
            | None -> ()
            | Some coll ->
                let parent_tag =
                  match (get_item st oe_item).it_kind with
                  | K_start k -> k.tag
                  | _ -> assert false
                in
                Provenance.note_skip coll ~path:(List.rev st.path_rev)
                  ~tag:parent_tag ~depth:st.depth ~kind:Provenance.Skip_rest
                  ~pending:(Condition.eval oe_delivery = Condition.Unknown)
                  ~expr:oe_delivery ~bytes);
            match Condition.eval oe_delivery with
            | Condition.False -> ()
            | Condition.Unknown ->
                st.stats.pending_subtrees <- st.stats.pending_subtrees + 1;
                ignore (new_item st (K_subtree thunk) oe_delivery oe_item)
            | Condition.True -> assert false))
    | _ -> ()
  end

(* Driver ----------------------------------------------------------------------- *)

let compile_aras ?query policy =
  let next = ref 0 in
  let fresh () =
    let i = !next in
    incr next;
    i
  in
  let rule_aras =
    List.map
      (fun r -> Ara.compile ~ara_id:(fresh ()) (Ara.Rule_src r))
      (Policy.rules policy)
  in
  let query_ara =
    Option.map (fun q -> Ara.compile ~ara_id:(fresh ()) (Ara.Query_src q)) query
  in
  (rule_aras, query_ara)

let run ?query ?dummy_denied ?(options = default_options) ?on_deliver ?observer
    ?provenance ~policy input =
  (match Policy.streaming_compatible policy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Evaluator.run: " ^ msg));
  let rule_aras, query_ara = compile_aras ?query policy in
  let initial_tokens =
    List.map
      (fun ara ->
        { nt_ara = ara; nt_state = 0; nt_atoms = []; nt_expr = Condition.tru })
      (rule_aras @ Option.to_list query_ara)
  in
  let st =
    {
      input;
      options;
      dummy_denied;
      on_deliver;
      observer;
      prov = provenance;
      path_rev = [];
      sib_counts = [];
      rule_aras;
      query_ara;
      stats = fresh_stats ();
      levels = [ { nav = initial_tokens; pred = []; memo = None } ];
      rule_exprs = [];
      interests = [];
      open_elems = [];
      registry = Hashtbl.create 64;
      expiry = Hashtbl.create 16;
      watchers = [];
      scopes = [];
      items = Array.make 64 dummy_item;
      item_count = 0;
      pending = [];
      pending_count = 0;
      out_rev = [];
      resolution_tick = 0;
      last_sweep_tick = 0;
      depth = 0;
      live = List.length initial_tokens;
      root_closed = false;
    }
  in
  let rec loop () =
    match input.Input.next () with
    | None -> ()
    | Some e ->
        st.stats.events_in <- st.stats.events_in + 1;
        (match e with
        | Event.Start { tag; attributes } -> handle_open st tag attributes
        | Event.Text s -> handle_text st s
        | Event.End _ -> handle_close st);
        loop ()
  in
  loop ();
  if st.depth > 0 then
    raise
      (Error.Stream_error
         (Printf.sprintf "input ended with %d unclosed elements" st.depth));
  (* at the end of the document every predicate scope has closed, so every
     condition is decided; a final sweep settles what is left *)
  st.resolution_tick <- st.resolution_tick + 1;
  sweep st;
  assert (st.pending = []);
  let ordered =
    List.sort (fun (a, _) (b, _) -> compare a b) (List.rev st.out_rev)
  in
  { events = List.concat_map snd ordered; stats = st.stats }

let view_tree result =
  match result.events with
  | [] -> None
  | evs -> Some (Xmlac_xml.Tree.of_events evs)

let run_events ?query ?dummy_denied ?options ?on_deliver ?observer ?provenance
    ~policy events =
  run ?query ?dummy_denied ?options ?on_deliver ?observer ?provenance ~policy
    (Input.of_events events)

let run_result ?query ?dummy_denied ?options ?on_deliver ?observer ?provenance
    ~policy input =
  match Policy.streaming_compatible policy with
  | Error msg -> Error (Error.Policy_invalid msg)
  | Ok () -> (
      match
        run ?query ?dummy_denied ?options ?on_deliver ?observer ?provenance
          ~policy input
      with
      | r -> Ok r
      | exception e -> (
          match Error.of_exn e with Some err -> Error err | None -> raise e))
