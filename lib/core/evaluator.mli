(** The streaming access-control evaluator — the paper's main contribution
    (Sections 3 and 5).

    It consumes one pass of open/text/close events, runs every rule's (and
    the optional query's) Access Rule Automaton with a Token Stack, an
    Authorization Stack and a Predicate Set, resolves conflicts
    incrementally as three-valued delivery conditions, skips subtrees when
    the input supports it (Skip index) and no automaton can progress inside
    them, defers {e pending} parts (delivery conditioned on unresolved
    predicates) and splices them back at the right position once resolved.

    Correctness contract (property-tested): the delivered view equals
    {!Oracle.authorized_view} / {!Oracle.query_view} on the same document,
    whatever the input representation and however many subtrees were
    skipped. *)

type stats = {
  mutable events_in : int;  (** input events consumed *)
  mutable transitions : int;  (** ARA transitions fired *)
  mutable ara_memo_hits : int;
      (** open events whose reactive-token sublists came from the per-level
          transition memo *)
  mutable ara_memo_misses : int;  (** sublists computed by a full scan *)
  mutable tokens_peak : int;  (** max live tokens across all stack levels *)
  mutable depth_peak : int;  (** max element-stack depth reached *)
  mutable auth_pushes : int;  (** rule/query instances registered *)
  mutable atoms_created : int;  (** pending predicate instances *)
  mutable open_skips : int;  (** subtrees skipped at their open event *)
  mutable rest_skips : int;  (** tail-of-element skips at close events *)
  mutable pending_subtrees : int;  (** skipped subtrees left pending *)
  mutable readback_subtrees : int;  (** pending subtrees later delivered *)
  mutable pending_items_peak : int;  (** max simultaneously pending items *)
  mutable events_out : int;
  mutable first_output_at : int;
      (** input events consumed before the first delivery; -1 if none *)
  mutable memory_peak_bytes : int;
      (** modelled peak of the SOE working set (tokens, stacks, pending
          bookkeeping, predicate instances, value buffers) — the quantity
          the paper's smart-card RAM bounds *)
}

val stats_metrics : stats -> Xmlac_obs.Metrics.t
(** Snapshot as named metrics, in declaration order. *)

type options = {
  enable_skipping : bool;  (** use the input's byte-skipping at open events *)
  enable_rest_skips : bool;  (** close-triggered tail skips *)
  enable_desctag_filter : bool;  (** DescTag token filtering (SkipSubtree) *)
  enable_ara_memo : bool;
      (** memoize, per stack level and tag, which tokens can react to a
          child with that tag — a pure lookup-structure optimization;
          delivered events and all other stats are identical either way *)
}

val default_options : options
(** Everything on — the paper's full design. The switches exist for the
    ablation benchmarks. *)

(** Introspection events, for tracing and for tests that check the paper's
    execution snapshots (Figure 3): rule/query instances entering the
    Authorization Stack, predicate instances resolving, per-element
    decisions, skips. *)
type observation =
  | Obs_instance of {
      rule : string;
      sign : Rule.sign;
      depth : int;
      pending : bool;  (** some predicate instance still unresolved *)
    }
  | Obs_predicate_satisfied of { rule : string; anchor_depth : int }
  | Obs_decision of { tag : string; depth : int; decision : Conflict.decision }
  | Obs_skip of { depth : int; pending : bool }

val trace_observation : observation -> string * (string * Xmlac_obs.Json.t) list
(** An observation as a named trace event, ready for
    [Xmlac_obs.Trace.emit] — the adapter CLI [--trace] flags use. *)

type result = { events : Xmlac_xml.Event.t list; stats : stats }

val run :
  ?query:Xmlac_xpath.Ast.t ->
  ?dummy_denied:string ->
  ?options:options ->
  ?on_deliver:(seq:int -> Xmlac_xml.Event.t list -> unit) ->
  ?observer:(observation -> unit) ->
  ?provenance:Provenance.collector ->
  policy:Policy.t ->
  Input.t ->
  result
(** Evaluate the authorized view (or query result) of the input document.
    The policy must be [USER]-resolved and streaming-compatible.

    [on_deliver] observes the {e eager} delivery protocol (paper Section 5):
    each output part is pushed as soon as its delivery condition — and its
    ancestors' — are decided, labelled with its document-order sequence
    number (the anchor). Pending parts therefore arrive out of order; the
    final [result.events] are exactly the deliveries sorted by sequence
    number, which is what the terminal-side reassembler produces.

    [provenance] attaches a {!Provenance.collector}: the run then also
    tracks DOM node ids and feeds the collector one entry per element and
    per skip, to be finalized with {!Provenance.records} after the run.
    @raise Invalid_argument on an unresolved or non-linear policy.
    @raise Error.Stream_error on an event stream no well-formed document
    can produce (close without open, a second root element, input ending
    with elements still open) — the typed rejection for a decoder whose
    byte stream was corrupted in a way that still decodes. *)

val run_result :
  ?query:Xmlac_xpath.Ast.t ->
  ?dummy_denied:string ->
  ?options:options ->
  ?on_deliver:(seq:int -> Xmlac_xml.Event.t list -> unit) ->
  ?observer:(observation -> unit) ->
  ?provenance:Provenance.collector ->
  policy:Policy.t ->
  Input.t ->
  (result, Error.t) Stdlib.result
(** {!run} as a trust-boundary entry point: incompatible policies and
    every classifiable exception of the layers below (malformed XML,
    corrupt skip index, invalid stream) come back as a typed [Error].
    Exceptions that indicate internal bugs still escape. *)

val view_tree : result -> Xmlac_xml.Tree.t option
(** The delivered events as a tree ([None] when nothing was delivered). *)

val run_events :
  ?query:Xmlac_xpath.Ast.t ->
  ?dummy_denied:string ->
  ?options:options ->
  ?on_deliver:(seq:int -> Xmlac_xml.Event.t list -> unit) ->
  ?observer:(observation -> unit) ->
  ?provenance:Provenance.collector ->
  policy:Policy.t ->
  Xmlac_xml.Event.t list ->
  result
(** Convenience wrapper over {!Input.of_events}. *)
