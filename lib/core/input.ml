module Event = Xmlac_xml.Event
module Decoder = Xmlac_skip_index.Decoder

type subtree_thunk = unit -> Event.t list

type t = {
  next : unit -> Event.t option;
  can_skip : bool;
  desc_tags : unit -> string list option;
  skip : unit -> (subtree_thunk * int) option;
  skip_rest : unit -> (subtree_thunk * int) option;
}

let of_events events =
  let rest = ref events in
  {
    next =
      (fun () ->
        match !rest with
        | [] -> None
        | e :: tl ->
            rest := tl;
            Some e);
    can_skip = false;
    desc_tags = (fun () -> None);
    skip = (fun () -> None);
    skip_rest = (fun () -> None);
  }

let of_string s =
  let cursor = Xmlac_xml.Parser.cursor s in
  {
    next = (fun () -> Xmlac_xml.Parser.next cursor);
    can_skip = false;
    desc_tags = (fun () -> None);
    skip = (fun () -> None);
    skip_rest = (fun () -> None);
  }

let of_decoder dec =
  {
    next = (fun () -> Decoder.next dec);
    can_skip = Decoder.can_skip dec;
    desc_tags = (fun () -> Decoder.descendant_tags dec);
    skip =
      (fun () ->
        if not (Decoder.can_skip dec) then None
        else begin
          let handle = Decoder.subtree_handle dec in
          Decoder.skip dec;
          Some
            ((fun () -> Decoder.read_subtree dec handle),
             Decoder.handle_size handle)
        end);
    skip_rest =
      (fun () ->
        if not (Decoder.can_skip dec) then None
        else
          match Decoder.rest_handle dec with
          | None -> None
          | Some handle ->
              Decoder.skip_rest dec;
              Some
                ((fun () -> Decoder.read_range dec handle),
                 Decoder.range_size handle));
  }
