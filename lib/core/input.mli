(** Abstract document input for the streaming evaluator.

    The evaluator consumes open/text/close events and, when the underlying
    representation allows it, can skip subtrees by byte count and read
    skipped ranges back later (pending delivery). Three implementations:

    - {!of_events}: a plain event stream — no skipping, no descendant-tag
      information (the Brute-Force baseline shape);
    - {!of_decoder}: a Skip-index decoder, over any byte source — including
      the SOE's decrypting channel, which is where skipping translates into
      saved communication and decryption. *)

type subtree_thunk = unit -> Xmlac_xml.Event.t list
(** Lazily reads back a skipped range (pending delivery). For a skipped
    element this includes its Start/End events; for a skipped
    rest-of-content range it is the bare content events. *)

type t = {
  next : unit -> Xmlac_xml.Event.t option;
  can_skip : bool;
  desc_tags : unit -> string list option;
      (** right after a [Start]: the DescTag set of the just-opened element;
          [None] when unavailable *)
  skip : unit -> (subtree_thunk * int) option;
      (** right after a [Start]: skip the whole element content (its [End]
          still follows), returning the read-back thunk and the number of
          encoded bytes skipped; [None] when the input cannot skip — the
          caller must then keep consuming events *)
  skip_rest : unit -> (subtree_thunk * int) option;
      (** skip the remaining content of the innermost open element *)
}

val of_events : Xmlac_xml.Event.t list -> t
val of_string : string -> t
(** Parse an XML document lazily. *)

val of_decoder : Xmlac_skip_index.Decoder.t -> t
