module Tree = Xmlac_xml.Tree
module Dom_eval = Xmlac_xpath.Dom_eval

type decision = { id : Dom_eval.node_id; permitted : bool }

module Id_set = Set.Make (struct
  type t = Dom_eval.node_id

  let compare = Dom_eval.compare_id
end)

(* Direct matches of every rule, as id sets. *)
let rule_matches policy tree =
  List.map
    (fun (r : Rule.t) -> (r.sign, Id_set.of_list (Dom_eval.select r.path tree)))
    (Policy.rules policy)

(* DFS computing each element's decision: the nearest level (self upward)
   with a directly-applying rule decides; denial wins inside a level; no
   rule anywhere means deny (closed policy). *)
let decisions policy tree =
  let matches = rule_matches policy tree in
  let acc = ref [] in
  let rec go id node inherited =
    match node with
    | Tree.Text _ -> ()
    | Tree.Element { children; _ } ->
        let here = List.filter (fun (_, set) -> Id_set.mem id set) matches in
        let permitted =
          if here = [] then inherited
          else not (List.exists (fun (sign, _) -> sign = Rule.Deny) here)
        in
        acc := { id; permitted } :: !acc;
        List.iteri (fun i child -> go (id @ [ i ]) child permitted) children
  in
  go [] tree false;
  List.rev !acc

let permitted_set policy tree =
  List.fold_left
    (fun set d -> if d.permitted then Id_set.add d.id set else set)
    Id_set.empty (decisions policy tree)

(* Prune a tree to [keep]: an element survives when kept or when a
   descendant survives; its texts survive only when it is kept itself.
   Structural-only elements may be renamed to [dummy_denied]. *)
let prune ?dummy_denied ~keep tree =
  let rec go id node =
    match node with
    | Tree.Text _ -> None (* texts are handled by their parent *)
    | Tree.Element { tag; attributes; children } ->
        let self_kept = keep id in
        let surviving =
          List.mapi (fun i child -> (i, child)) children
          |> List.filter_map (fun (i, child) ->
                 match child with
                 | Tree.Text s -> if self_kept then Some (Tree.Text s) else None
                 | Tree.Element _ -> go (id @ [ i ]) child)
        in
        if self_kept || surviving <> [] then begin
          let tag =
            if self_kept then tag
            else Option.value dummy_denied ~default:tag
          in
          let attributes = if self_kept then attributes else [] in
          Some (Tree.Element { tag; attributes; children = surviving })
        end
        else None
  in
  go [] tree

let authorized_view ?dummy_denied policy tree =
  let keep_set = permitted_set policy tree in
  prune ?dummy_denied ~keep:(fun id -> Id_set.mem id keep_set) tree

(* The delivery set of a query session: permitted nodes lying at or below
   a query match, where the query runs over the authorized view — a step
   may match any element present in it: a permitted element or a
   structural ancestor of one. *)
let query_scope ~query policy tree =
  let permitted = permitted_set policy tree in
  let in_view =
    Id_set.fold
      (fun id acc ->
        List.fold_left (fun acc a -> Id_set.add a acc) (Id_set.add id acc)
          (Dom_eval.ancestors id))
      permitted Id_set.empty
  in
  let matches =
    Dom_eval.select_filtered ~filter:(fun id -> Id_set.mem id in_view) query
      tree
  in
  let in_scope id =
    List.exists (fun m -> m = id || Dom_eval.is_ancestor m id) matches
  in
  (permitted, in_scope)

let query_view ?dummy_denied ~query policy tree =
  let permitted, in_scope = query_scope ~query policy tree in
  prune ?dummy_denied
    ~keep:(fun id -> Id_set.mem id permitted && in_scope id)
    tree

let delivered_ids ?query policy tree =
  match query with
  | None -> Id_set.elements (permitted_set policy tree)
  | Some query ->
      let permitted, in_scope = query_scope ~query policy tree in
      Id_set.elements (Id_set.filter in_scope permitted)
