(** Reference (DOM-based, non-streaming) implementation of the access
    control semantics of Section 2. It materializes the whole document —
    exactly what the SOE cannot do — and exists to {e define} the semantics:
    the streaming evaluator is property-tested equal to it.

    Semantics implemented:
    - rule propagation: a rule applies to the nodes matched by its object
      and to all their descendants;
    - Most-Specific-Object-Takes-Precedence: the decision for a node is
      taken at the deepest ancestor-or-self where some rule applies
      directly;
    - Denial-Takes-Precedence among the rules of that level;
    - closed policy: no applicable rule means deny;
    - the Structural rule: ancestors of a delivered node are delivered,
      their names optionally replaced by a dummy;
    - queries are evaluated over the authorized view: each step of the
      query (navigational or inside a predicate) may only match an element
      {e present in the view} — a permitted element or a structural
      ancestor of one — while value comparisons read the original text
      (names are matched before any dummy renaming, which is a rendering
      concern of the untrusted client). *)

type decision = { id : Xmlac_xpath.Dom_eval.node_id; permitted : bool }

val decisions : Policy.t -> Xmlac_xml.Tree.t -> decision list
(** Per-element decisions, in document order. *)

val delivered_ids :
  ?query:Xmlac_xpath.Ast.t ->
  Policy.t ->
  Xmlac_xml.Tree.t ->
  Xmlac_xpath.Dom_eval.node_id list
(** Ids of the elements actually delivered (in document order): the
    permitted ones, restricted — when [query] is given — to those at or
    below a query match over the authorized view. The reference the audit
    replay checks recorded [delivered] verdicts against. *)

val authorized_view :
  ?dummy_denied:string -> Policy.t -> Xmlac_xml.Tree.t -> Xmlac_xml.Tree.t option
(** The authorized view: permitted nodes, their text, and the structural
    path leading to them. [None] when nothing at all is delivered. When
    [dummy_denied] is given, structural-only elements are renamed to it. *)

val query_view :
  ?dummy_denied:string ->
  query:Xmlac_xpath.Ast.t ->
  Policy.t ->
  Xmlac_xml.Tree.t ->
  Xmlac_xml.Tree.t option
(** The authorized result of a query: the part of the authorized view lying
    below query matches, plus structural paths. *)
