(* Decision provenance (schema prov.v1): per-node records of *why* the
   streaming evaluator delivered or denied each element — the winning rule,
   the conflict-resolution path actually taken (Most-Specific-Object /
   Denial-Takes-Precedence / closed policy), the Authorization-Stack and
   pending-predicate snapshots at open time, the live ARA token states —
   plus skip decisions with their byte savings and per-chunk integrity
   verdicts from the SOE channel.

   The evaluator feeds a {!collector} as it parses; conditions are stored
   unevaluated (they may hinge on pending predicates) and only forced in
   {!records}, after the run, when every atom is resolved. *)

module Json = Xmlac_obs.Json

let schema_version = "prov.v1"

type verdict = Permit | Deny | Undecided
type status = Applies | Pending | Inapplicable

type step =
  | Deny_wins of { depth : int; tag : string; rule : string }
  | Permit_wins of { depth : int; tag : string; rule : string }
  | Inherit of { depth : int; tag : string }
  | Closed_policy

type stack_frame = {
  f_depth : int;
  f_tag : string;
  f_rules : (string * Rule.sign * status) list;
}

type node_record = {
  n_path : int list;  (* Dom_eval.node_id: child ordinals from the root *)
  n_tag : string;
  n_depth : int;
  n_rule_verdict : verdict;  (* rules only — what Oracle.decisions checks *)
  n_delivered : verdict;  (* rules ∧ query interest *)
  n_winner : (string * Rule.sign) option;
  n_steps : step list;  (* most-specific level first *)
  n_auth_stack : stack_frame list;  (* root-first, self last; open-time *)
  n_pending : (string * int) list;  (* unresolved (rule, anchor depth) *)
  n_tokens : (string * int * int) list;  (* live nav (rule, matched, total) *)
}

type skip_kind = Skip_subtree | Skip_rest

type skip_record = {
  k_path : int list;
  k_tag : string;
  k_depth : int;
  k_kind : skip_kind;
  k_pending_at_skip : bool;
  k_delivered : verdict;  (* final resolution of the skipped region *)
  k_bytes_saved : int;
}

type chunk_record = { c_chunk : int; c_ok : bool; c_detail : string }
type record = Node of node_record | Skip of skip_record | Chunk of chunk_record

(* Collector ---------------------------------------------------------------- *)

type node_entry = {
  e_path : int list;
  e_tag : string;
  e_depth : int;
  e_delivery : Condition.t;
  e_rule_expr : Condition.t;
  e_own : (string * Rule.sign * Condition.t) list;  (* instances completed here *)
  e_ancestors : node_entry list;  (* innermost first *)
  e_auth_stack : stack_frame list;
  e_pending : (string * int) list;
  e_tokens : (string * int * int) list;
}

type entry =
  | E_node of node_entry
  | E_skip of {
      s_path : int list;
      s_tag : string;
      s_depth : int;
      s_kind : skip_kind;
      s_pending : bool;
      s_expr : Condition.t;
      s_bytes : int;
    }

type collector = {
  mutable entries : entry list;  (* reverse creation order *)
  mutable stack : node_entry list;  (* open elements, innermost first *)
}

let collector () = { entries = []; stack = [] }

let status_of_expr expr =
  match Condition.eval expr with
  | Condition.True -> Applies
  | Condition.Unknown -> Pending
  | Condition.False -> Inapplicable

let frame_of entry =
  {
    f_depth = entry.e_depth;
    f_tag = entry.e_tag;
    f_rules =
      List.map (fun (r, s, e) -> (r, s, status_of_expr e)) entry.e_own;
  }

let note_open coll ~path ~tag ~depth ~delivery ~rule_expr ~completions ~tokens
    ~pending =
  let ancestors = coll.stack in
  let self =
    {
      e_path = path;
      e_tag = tag;
      e_depth = depth;
      e_delivery = delivery;
      e_rule_expr = rule_expr;
      e_own = completions;
      e_ancestors = ancestors;
      e_auth_stack = [];
      e_pending = pending;
      e_tokens = tokens;
    }
  in
  (* open-time snapshot of the Authorization Stack, root-first, self last *)
  let stack_frames = List.rev_map frame_of (self :: ancestors) in
  let self = { self with e_auth_stack = stack_frames } in
  coll.stack <- self :: coll.stack;
  coll.entries <- E_node self :: coll.entries

let note_close coll =
  match coll.stack with [] -> () | _ :: rest -> coll.stack <- rest

let note_skip coll ~path ~tag ~depth ~kind ~pending ~expr ~bytes =
  coll.entries <-
    E_skip
      {
        s_path = path;
        s_tag = tag;
        s_depth = depth;
        s_kind = kind;
        s_pending = pending;
        s_expr = expr;
        s_bytes = bytes;
      }
    :: coll.entries

(* Finalization ------------------------------------------------------------- *)

let verdict_of expr =
  match Condition.eval expr with
  | Condition.True -> Permit
  | Condition.False -> Deny
  | Condition.Unknown -> Undecided

(* Replay the conflict resolution of Section 2 over the final atom
   resolutions: walk levels from the most specific (self) outwards; the
   first level with a finally-applicable instance decides — denial takes
   precedence inside the level — and no applicable instance anywhere is the
   closed-policy denial. *)
let resolve_conflict entry =
  let rec go steps = function
    | [] -> (List.rev (Closed_policy :: steps), None)
    | lvl :: outer -> (
        let applicable =
          List.filter (fun (_, _, e) -> Condition.eval e = Condition.True)
            lvl.e_own
        in
        let denial =
          List.find_opt (fun (_, s, _) -> s = Rule.Deny) applicable
        in
        match (denial, applicable) with
        | Some (rule, _, _), _ ->
            ( List.rev
                (Deny_wins { depth = lvl.e_depth; tag = lvl.e_tag; rule }
                :: steps),
              Some (rule, Rule.Deny) )
        | None, (rule, _, _) :: _ ->
            ( List.rev
                (Permit_wins { depth = lvl.e_depth; tag = lvl.e_tag; rule }
                :: steps),
              Some (rule, Rule.Permit) )
        | None, [] ->
            go (Inherit { depth = lvl.e_depth; tag = lvl.e_tag } :: steps) outer
        )
  in
  go [] (entry :: entry.e_ancestors)

let finalize_node entry =
  let steps, winner = resolve_conflict entry in
  {
    n_path = entry.e_path;
    n_tag = entry.e_tag;
    n_depth = entry.e_depth;
    n_rule_verdict = verdict_of entry.e_rule_expr;
    n_delivered = verdict_of entry.e_delivery;
    n_winner = winner;
    n_steps = steps;
    n_auth_stack = entry.e_auth_stack;
    n_pending = entry.e_pending;
    n_tokens = entry.e_tokens;
  }

let records coll =
  List.rev_map
    (function
      | E_node e -> Node (finalize_node e)
      | E_skip s ->
          Skip
            {
              k_path = s.s_path;
              k_tag = s.s_tag;
              k_depth = s.s_depth;
              k_kind = s.s_kind;
              k_pending_at_skip = s.s_pending;
              k_delivered = verdict_of s.s_expr;
              k_bytes_saved = s.s_bytes;
            })
    coll.entries

(* JSON (prov.v1) ------------------------------------------------------------ *)

let verdict_to_string = function
  | Permit -> "permit"
  | Deny -> "deny"
  | Undecided -> "undecided"

let verdict_of_string = function
  | "permit" -> Ok Permit
  | "deny" -> Ok Deny
  | "undecided" -> Ok Undecided
  | s -> Error (Printf.sprintf "unknown verdict %S" s)

let status_to_string = function
  | Applies -> "applies"
  | Pending -> "pending"
  | Inapplicable -> "inapplicable"

let status_of_string = function
  | "applies" -> Ok Applies
  | "pending" -> Ok Pending
  | "inapplicable" -> Ok Inapplicable
  | s -> Error (Printf.sprintf "unknown status %S" s)

let sign_of_string = function
  | "+" -> Ok Rule.Permit
  | "-" -> Ok Rule.Deny
  | s -> Error (Printf.sprintf "unknown sign %S" s)

let path_to_json p = Json.List (List.map (fun i -> Json.Int i) p)

let step_to_json = function
  | Deny_wins { depth; tag; rule } ->
      Json.Obj
        [
          ("kind", Json.String "deny-wins");
          ("depth", Json.Int depth);
          ("tag", Json.String tag);
          ("rule", Json.String rule);
        ]
  | Permit_wins { depth; tag; rule } ->
      Json.Obj
        [
          ("kind", Json.String "permit-wins");
          ("depth", Json.Int depth);
          ("tag", Json.String tag);
          ("rule", Json.String rule);
        ]
  | Inherit { depth; tag } ->
      Json.Obj
        [
          ("kind", Json.String "inherit");
          ("depth", Json.Int depth);
          ("tag", Json.String tag);
        ]
  | Closed_policy -> Json.Obj [ ("kind", Json.String "closed-policy") ]

let frame_to_json f =
  Json.Obj
    [
      ("depth", Json.Int f.f_depth);
      ("tag", Json.String f.f_tag);
      ( "rules",
        Json.List
          (List.map
             (fun (rule, sign, status) ->
               Json.Obj
                 [
                   ("rule", Json.String rule);
                   ("sign", Json.String (Rule.sign_to_string sign));
                   ("status", Json.String (status_to_string status));
                 ])
             f.f_rules) );
    ]

let skip_kind_to_string = function
  | Skip_subtree -> "subtree"
  | Skip_rest -> "rest"

let record_event = function
  | Node n ->
      ( "prov.node",
        [
          ("path", path_to_json n.n_path);
          ("tag", Json.String n.n_tag);
          ("depth", Json.Int n.n_depth);
          ("rule_verdict", Json.String (verdict_to_string n.n_rule_verdict));
          ("delivered", Json.String (verdict_to_string n.n_delivered));
          ( "winner",
            match n.n_winner with
            | None -> Json.Null
            | Some (rule, sign) ->
                Json.Obj
                  [
                    ("rule", Json.String rule);
                    ("sign", Json.String (Rule.sign_to_string sign));
                  ] );
          ("steps", Json.List (List.map step_to_json n.n_steps));
          ("auth_stack", Json.List (List.map frame_to_json n.n_auth_stack));
          ( "pending",
            Json.List
              (List.map
                 (fun (rule, anchor) ->
                   Json.Obj
                     [
                       ("rule", Json.String rule);
                       ("anchor_depth", Json.Int anchor);
                     ])
                 n.n_pending) );
          ( "tokens",
            Json.List
              (List.map
                 (fun (rule, matched, total) ->
                   Json.Obj
                     [
                       ("rule", Json.String rule);
                       ("matched", Json.Int matched);
                       ("steps", Json.Int total);
                     ])
                 n.n_tokens) );
        ] )
  | Skip k ->
      ( "prov.skip",
        [
          ("path", path_to_json k.k_path);
          ("tag", Json.String k.k_tag);
          ("depth", Json.Int k.k_depth);
          ("kind", Json.String (skip_kind_to_string k.k_kind));
          ("pending_at_skip", Json.Bool k.k_pending_at_skip);
          ("delivered", Json.String (verdict_to_string k.k_delivered));
          ("bytes_saved", Json.Int k.k_bytes_saved);
        ] )
  | Chunk c ->
      ( "prov.chunk",
        [
          ("chunk", Json.Int c.c_chunk);
          ("ok", Json.Bool c.c_ok);
          ("detail", Json.String c.c_detail);
        ] )

let record_to_json r =
  let name, fields = record_event r in
  Json.Obj (("event", Json.String name) :: fields)

let meta_event ?query () =
  ( "prov.meta",
    ("schema", Json.String schema_version)
    ::
    (match query with
    | None -> []
    | Some q -> [ ("query", Json.String q) ]) )

(* Parsing ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: wrong type" name))

let str name j = field name Json.to_string_opt j
let int_f name j = field name Json.to_int_opt j

let bool_f name j =
  field name (function Json.Bool b -> Some b | _ -> None) j

let list_f name conv j =
  let* l = field name Json.to_list_opt j in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* v = conv x in
        go (v :: acc) rest
  in
  go [] l

let path_of_json j =
  list_f "path"
    (fun v ->
      match Json.to_int_opt v with
      | Some i -> Ok i
      | None -> Error "path: expected an integer")
    j

let step_of_json j =
  let* kind = str "kind" j in
  match kind with
  | "deny-wins" ->
      let* depth = int_f "depth" j in
      let* tag = str "tag" j in
      let* rule = str "rule" j in
      Ok (Deny_wins { depth; tag; rule })
  | "permit-wins" ->
      let* depth = int_f "depth" j in
      let* tag = str "tag" j in
      let* rule = str "rule" j in
      Ok (Permit_wins { depth; tag; rule })
  | "inherit" ->
      let* depth = int_f "depth" j in
      let* tag = str "tag" j in
      Ok (Inherit { depth; tag })
  | "closed-policy" -> Ok Closed_policy
  | s -> Error (Printf.sprintf "unknown step kind %S" s)

let frame_of_json j =
  let* depth = int_f "depth" j in
  let* tag = str "tag" j in
  let* rules =
    list_f "rules"
      (fun r ->
        let* rule = str "rule" r in
        let* sign = str "sign" r in
        let* sign = sign_of_string sign in
        let* status = str "status" r in
        let* status = status_of_string status in
        Ok (rule, sign, status))
      j
  in
  Ok { f_depth = depth; f_tag = tag; f_rules = rules }

let node_of_json j =
  let* path = path_of_json j in
  let* tag = str "tag" j in
  let* depth = int_f "depth" j in
  let* rule_verdict = str "rule_verdict" j in
  let* rule_verdict = verdict_of_string rule_verdict in
  let* delivered = str "delivered" j in
  let* delivered = verdict_of_string delivered in
  let* winner =
    match Json.member "winner" j with
    | None -> Error "missing field \"winner\""
    | Some Json.Null -> Ok None
    | Some w ->
        let* rule = str "rule" w in
        let* sign = str "sign" w in
        let* sign = sign_of_string sign in
        Ok (Some (rule, sign))
  in
  let* steps = list_f "steps" step_of_json j in
  let* auth_stack = list_f "auth_stack" frame_of_json j in
  let* pending =
    list_f "pending"
      (fun p ->
        let* rule = str "rule" p in
        let* anchor = int_f "anchor_depth" p in
        Ok (rule, anchor))
      j
  in
  let* tokens =
    list_f "tokens"
      (fun t ->
        let* rule = str "rule" t in
        let* matched = int_f "matched" t in
        let* total = int_f "steps" t in
        Ok (rule, matched, total))
      j
  in
  Ok
    (Node
       {
         n_path = path;
         n_tag = tag;
         n_depth = depth;
         n_rule_verdict = rule_verdict;
         n_delivered = delivered;
         n_winner = winner;
         n_steps = steps;
         n_auth_stack = auth_stack;
         n_pending = pending;
         n_tokens = tokens;
       })

let skip_of_json j =
  let* path = path_of_json j in
  let* tag = str "tag" j in
  let* depth = int_f "depth" j in
  let* kind = str "kind" j in
  let* kind =
    match kind with
    | "subtree" -> Ok Skip_subtree
    | "rest" -> Ok Skip_rest
    | s -> Error (Printf.sprintf "unknown skip kind %S" s)
  in
  let* pending = bool_f "pending_at_skip" j in
  let* delivered = str "delivered" j in
  let* delivered = verdict_of_string delivered in
  let* bytes = int_f "bytes_saved" j in
  Ok
    (Skip
       {
         k_path = path;
         k_tag = tag;
         k_depth = depth;
         k_kind = kind;
         k_pending_at_skip = pending;
         k_delivered = delivered;
         k_bytes_saved = bytes;
       })

let chunk_of_json j =
  let* chunk = int_f "chunk" j in
  let* ok = bool_f "ok" j in
  let* detail = str "detail" j in
  Ok (Chunk { c_chunk = chunk; c_ok = ok; c_detail = detail })

let record_of_json j =
  let* event = str "event" j in
  match event with
  | "prov.node" -> node_of_json j
  | "prov.skip" -> skip_of_json j
  | "prov.chunk" -> chunk_of_json j
  | s -> Error (Printf.sprintf "unknown provenance event %S" s)
