(** Decision provenance (schema [prov.v1]).

    Records of {e why} the streaming evaluator delivered or denied each
    element: the winning rule and its sign, the conflict-resolution path
    actually taken (Most-Specific-Object, Denial-Takes-Precedence, closed
    policy), the Authorization-Stack and pending-predicate snapshots at
    open time, the live ARA token states, skip decisions with their byte
    savings, and per-chunk integrity verdicts from the SOE channel.

    The evaluator feeds a {!collector} while streaming; conditions are kept
    unevaluated (they may hinge on pending predicates) and only forced by
    {!records} after the run, when every atom is resolved. Records
    serialize one-per-line through {!Xmlac_obs.Trace.jsonl_sink} and are
    replayed against the DOM oracle by [bin/audit_replay]. *)

val schema_version : string
(** ["prov.v1"]. *)

type verdict = Permit | Deny | Undecided
(** [Undecided] only appears when a run was cut short (its atoms never
    resolved) — the audit treats it as a violation. *)

type status = Applies | Pending | Inapplicable
(** Status of a rule instance on the Authorization Stack at the moment a
    node was opened: already known to apply, still hanging on a pending
    predicate, or known not to apply. *)

type step =
  | Deny_wins of { depth : int; tag : string; rule : string }
  | Permit_wins of { depth : int; tag : string; rule : string }
  | Inherit of { depth : int; tag : string }
      (** no applicable instance at this level — defer to the ancestors *)
  | Closed_policy  (** no applicable rule anywhere: denied by default *)

type stack_frame = {
  f_depth : int;
  f_tag : string;
  f_rules : (string * Rule.sign * status) list;
}

type node_record = {
  n_path : int list;
      (** {!Xmlac_xpath.Dom_eval.node_id}: child ordinals from the root *)
  n_tag : string;
  n_depth : int;
  n_rule_verdict : verdict;
      (** rules only — comparable to {!Oracle.decisions} *)
  n_delivered : verdict;  (** rules ∧ query interest *)
  n_winner : (string * Rule.sign) option;
  n_steps : step list;  (** most-specific level first *)
  n_auth_stack : stack_frame list;  (** root-first, self last; open-time *)
  n_pending : (string * int) list;
      (** unresolved predicate instances (rule, anchor depth) at open *)
  n_tokens : (string * int * int) list;
      (** live navigational tokens (rule, steps matched, total steps) *)
}

type skip_kind = Skip_subtree | Skip_rest

type skip_record = {
  k_path : int list;
  k_tag : string;
  k_depth : int;
  k_kind : skip_kind;
  k_pending_at_skip : bool;
      (** true: skipped undecided, kept for possible retro-delivery *)
  k_delivered : verdict;  (** final resolution of the skipped region *)
  k_bytes_saved : int;  (** encoded bytes not parsed thanks to the skip *)
}

type chunk_record = { c_chunk : int; c_ok : bool; c_detail : string }
type record = Node of node_record | Skip of skip_record | Chunk of chunk_record

(** {1 Collection (used by {!Evaluator.run})} *)

type collector

val collector : unit -> collector

val note_open :
  collector ->
  path:int list ->
  tag:string ->
  depth:int ->
  delivery:Condition.t ->
  rule_expr:Condition.t ->
  completions:(string * Rule.sign * Condition.t) list ->
  tokens:(string * int * int) list ->
  pending:(string * int) list ->
  unit

val note_close : collector -> unit

val note_skip :
  collector ->
  path:int list ->
  tag:string ->
  depth:int ->
  kind:skip_kind ->
  pending:bool ->
  expr:Condition.t ->
  bytes:int ->
  unit

val records : collector -> record list
(** Finalized records in document order (nodes and skips interleaved as
    encountered). Call after the run: conditions are evaluated now, so a
    complete run yields [Permit]/[Deny] everywhere and an aborted one
    leaves [Undecided]. *)

(** {1 JSON (prov.v1)} *)

val record_event : record -> string * (string * Xmlac_obs.Json.t) list
(** Event name and fields, ready for {!Xmlac_obs.Trace.emit}. *)

val record_to_json : record -> Xmlac_obs.Json.t
val record_of_json : Xmlac_obs.Json.t -> (record, string) result

val meta_event : ?query:string -> unit -> string * (string * Xmlac_obs.Json.t) list
(** The [prov.meta] header line carrying the schema version and the query,
    written first in every trace file. *)

val verdict_to_string : verdict -> string
val skip_kind_to_string : skip_kind -> string
