(* AES-128 (FIPS 197), from scratch, for the fifth container scheme
   (AES-CTR + SHA-256). Only encryption is implemented: CTR mode uses the
   forward cipher for both directions, which also gives the scheme
   byte-granular random access — exactly what the SOE's positional reads
   want. The S-box is generated from the GF(2^8) inverse plus the affine
   transform rather than transcribed, and the whole cipher is pinned by
   the FIPS-197 known-answer vector in the test suite. *)

let block_size = 16

(* GF(2^8) modulo x^8 + x^4 + x^3 + x + 1 *)
let xtime x = ((x lsl 1) lxor (if x land 0x80 <> 0 then 0x11b else 0)) land 0xFF

let gf_mul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

let sbox =
  (* log/antilog tables over generator 3 give the multiplicative inverse;
     the affine transform is b ^ rotl(b,1..4) ^ 0x63 *)
  let log = Array.make 256 0 and alog = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    alog.(i) <- !x;
    log.(!x) <- i;
    x := gf_mul !x 3
  done;
  let inv v = if v = 0 then 0 else alog.(255 - log.(v)) in
  let rotl8 v n = ((v lsl n) lor (v lsr (8 - n))) land 0xFF in
  Array.init 256 (fun v ->
      let b = inv v in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let rcon =
  let r = Array.make 10 0 in
  let x = ref 1 in
  for i = 0 to 9 do
    r.(i) <- !x;
    x := xtime !x
  done;
  r

type key = int array (* 44 expanded round-key words, big-endian packed *)

let mask32 = 0xFFFFFFFF

let sub_word w =
  (sbox.((w lsr 24) land 0xFF) lsl 24)
  lor (sbox.((w lsr 16) land 0xFF) lsl 16)
  lor (sbox.((w lsr 8) land 0xFF) lsl 8)
  lor sbox.(w land 0xFF)

let expand s =
  if String.length s <> 16 then invalid_arg "Aes.expand: need a 16-byte key";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code s.[4 * i] lsl 24)
      lor (Char.code s.[(4 * i) + 1] lsl 16)
      lor (Char.code s.[(4 * i) + 2] lsl 8)
      lor Char.code s.[(4 * i) + 3]
  done;
  for i = 4 to 43 do
    let t = w.(i - 1) in
    let t =
      if i mod 4 = 0 then
        sub_word (((t lsl 8) lor (t lsr 24)) land mask32)
        lxor (rcon.((i / 4) - 1) lsl 24)
      else t
    in
    w.(i) <- w.(i - 4) lxor t
  done;
  w

(* One block, state held as four big-endian column words. *)
let encrypt_block_words w c0 c1 c2 c3 =
  let s0 = ref (c0 lxor w.(0))
  and s1 = ref (c1 lxor w.(1))
  and s2 = ref (c2 lxor w.(2))
  and s3 = ref (c3 lxor w.(3)) in
  let mix a0 a1 a2 a3 =
    (* SubBytes already applied to a0..a3 (one column, rows 0..3) *)
    let m2 = xtime a0 lxor xtime a1 lxor a1 lxor a2 lxor a3 in
    let m1 = a0 lxor xtime a1 lxor xtime a2 lxor a2 lxor a3 in
    let m0 = a0 lxor a1 lxor xtime a2 lxor xtime a3 lxor a3 in
    let m3 = xtime a0 lxor a0 lxor a1 lxor a2 lxor xtime a3 in
    (m2 lsl 24) lor (m1 lsl 16) lor (m0 lsl 8) lor m3
  in
  let round r last =
    let a = !s0 and b = !s1 and c = !s2 and d = !s3 in
    let col x0 x1 x2 x3 =
      let b0 = sbox.((x0 lsr 24) land 0xFF)
      and b1 = sbox.((x1 lsr 16) land 0xFF)
      and b2 = sbox.((x2 lsr 8) land 0xFF)
      and b3 = sbox.(x3 land 0xFF) in
      if last then (b0 lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3
      else mix b0 b1 b2 b3
    in
    s0 := col a b c d lxor w.(4 * r);
    s1 := col b c d a lxor w.((4 * r) + 1);
    s2 := col c d a b lxor w.((4 * r) + 2);
    s3 := col d a b c lxor w.((4 * r) + 3)
  in
  for r = 1 to 9 do
    round r false
  done;
  round 10 true;
  (!s0, !s1, !s2, !s3)

let word32 s pos =
  (Char.code (String.unsafe_get s pos) lsl 24)
  lor (Char.code (String.unsafe_get s (pos + 1)) lsl 16)
  lor (Char.code (String.unsafe_get s (pos + 2)) lsl 8)
  lor Char.code (String.unsafe_get s (pos + 3))

let encrypt_block w src =
  if String.length src <> 16 then invalid_arg "Aes.encrypt_block";
  let s0, s1, s2, s3 =
    encrypt_block_words w (word32 src 0) (word32 src 4) (word32 src 8)
      (word32 src 12)
  in
  let out = Bytes.create 16 in
  let put i v =
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF))
  in
  put 0 s0;
  put 1 s1;
  put 2 s2;
  put 3 s3;
  Bytes.unsafe_to_string out

(* CTR keystream addressed by absolute byte offset: counter block i is
   nonce(8 bytes, big-endian words) ‖ 64-bit big-endian i, so any byte of
   the stream can be regenerated independently. *)
let ctr_xor_into w ~nonce ~src ~src_pos ~dst ~dst_pos ~len ~stream_pos =
  if String.length nonce <> 8 then invalid_arg "Aes.ctr_xor_into: nonce";
  if
    src_pos < 0 || len < 0 || stream_pos < 0
    || src_pos + len > String.length src
    || dst_pos < 0
    || dst_pos + len > Bytes.length dst
  then invalid_arg "Aes.ctr_xor_into: range out of bounds";
  let n0 = word32 nonce 0 and n1 = word32 nonce 4 in
  let ks = Bytes.create 16 in
  let i = ref 0 in
  while !i < len do
    let pos = stream_pos + !i in
    let blk = pos / 16 and off = pos mod 16 in
    let c2 = (blk lsr 32) land mask32 and c3 = blk land mask32 in
    let s0, s1, s2, s3 = encrypt_block_words w n0 n1 c2 c3 in
    let put j v =
      Bytes.unsafe_set ks (4 * j) (Char.unsafe_chr ((v lsr 24) land 0xFF));
      Bytes.unsafe_set ks ((4 * j) + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
      Bytes.unsafe_set ks ((4 * j) + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
      Bytes.unsafe_set ks ((4 * j) + 3) (Char.unsafe_chr (v land 0xFF))
    in
    put 0 s0;
    put 1 s1;
    put 2 s2;
    put 3 s3;
    let take = min (16 - off) (len - !i) in
    for j = 0 to take - 1 do
      Bytes.unsafe_set dst
        (dst_pos + !i + j)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get src (src_pos + !i + j))
           lxor Char.code (Bytes.unsafe_get ks (off + j))))
    done;
    i := !i + take
  done

let ctr_transform w ~nonce ~stream_pos s =
  let len = String.length s in
  let out = Bytes.create len in
  ctr_xor_into w ~nonce ~src:s ~src_pos:0 ~dst:out ~dst_pos:0 ~len ~stream_pos;
  Bytes.unsafe_to_string out
