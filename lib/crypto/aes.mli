(** AES-128 (FIPS 197) in CTR mode — the block cipher behind the fifth
    container scheme (AES-CTR + SHA-256). Encryption only: CTR uses the
    forward cipher in both directions, and the keystream is addressed by
    absolute byte offset so decryption has the same byte-granular random
    access the positional DES modes give the SOE. Pinned by the FIPS-197
    known-answer vector in the test suite. *)

val block_size : int
(** 16 bytes. *)

type key
(** Expanded 11-round key schedule. Immutable once built: safe to share
    across worker domains. *)

val expand : string -> key
(** [expand k] expands a 16-byte key.
    @raise Invalid_argument if [k] is not 16 bytes. *)

val encrypt_block : key -> string -> string
(** Single-block ECB encryption of exactly 16 bytes (used by the FIPS-197
    known-answer test; CTR traffic goes through {!ctr_xor_into}). *)

val ctr_xor_into :
  key ->
  nonce:string ->
  src:string ->
  src_pos:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  len:int ->
  stream_pos:int ->
  unit
(** XOR [len] bytes of [src] with the CTR keystream starting at absolute
    keystream byte offset [stream_pos] (counter block i = 8-byte [nonce]
    ‖ 64-bit big-endian i). Encryption and decryption are the same
    operation. @raise Invalid_argument on a bad range or an 8-byte nonce
    violation. *)

val ctr_transform : key -> nonce:string -> stream_pos:int -> string -> string
(** Allocating convenience wrapper over {!ctr_xor_into}. *)
