(* Bitsliced 3DES decryption: 63 blocks per pass over 63-bit native-int
   lanes (the widest unboxed integer OCaml has), with the round function
   run as machine-generated straight-line boolean circuits
   (Des_circuits.apply, one op per gate, all 63 blocks at once).

   Layout: lane j holds bit j+1 (FIPS MSB-first numbering) of every block
   in the pass — blocks 0..31 at int bits 31..0 and blocks 32..62 at int
   bits 62..32, so a pass is four 32x32 word transposes plus one OR per
   lane. IP and FP cost nothing: they are relabelings of whole lanes. The
   three DES passes of EDE chain directly — FP of one pass and IP of the
   next cancel, leaving a single L/R swap.

   The key schedule is precomputed per session: 48 rounds x 48 lane masks
   (0 or -1), in EDE-decrypt order (k3 reversed, k2 forward, k1 reversed).
   Decryption only: the fast engine serves the read path. *)

let blocks_per_pass = 63

type schedule = int array (* 48 * 48 masks *)

let lane_masks dst ~off subkeys ~reverse =
  for rnd = 0 to 15 do
    let sk = subkeys.(if reverse then 15 - rnd else rnd) in
    let base = off + (rnd * 48) in
    for t = 0 to 47 do
      dst.(base + t) <- (if (sk lsr (47 - t)) land 1 = 1 then -1 else 0)
    done
  done

let decrypt_schedule key =
  let k1, k2, k3 = Des.Triple.components key in
  let s = Array.make (48 * 48) 0 in
  lane_masks s ~off:0 (Des.subkeys k3) ~reverse:true;
  lane_masks s ~off:(16 * 48) (Des.subkeys k2) ~reverse:false;
  lane_masks s ~off:(32 * 48) (Des.subkeys k1) ~reverse:true;
  s

(* 0-based lane relabelings *)
let ip = Array.map (fun b -> b - 1) Des.Internal.initial_permutation
let fp = Array.map (fun b -> b - 1) Des.Internal.final_permutation

(* Hacker's Delight 32x32 bit-matrix transpose (an involution). Row r's
   bit (31-c) is column c, matching a big-endian word load where block b
   lands at int bit 31-b after transposition. *)
let transpose32 (a : int array) =
  let j = ref 16 and m = ref 0xFFFF in
  while !j <> 0 do
    let k = ref 0 in
    while !k < 32 do
      let i = !k and j' = !j in
      let t =
        (Array.unsafe_get a i lxor (Array.unsafe_get a (i + j') lsr j'))
        land !m
      in
      Array.unsafe_set a i (Array.unsafe_get a i lxor t);
      Array.unsafe_set a (i + j') (Array.unsafe_get a (i + j') lxor (t lsl j'));
      k := (!k + j' + 1) land lnot j'
    done;
    j := !j lsr 1;
    m := !m lxor (!m lsl !j)
  done

type scratch = {
  ta_hi : int array; (* blocks 0..31, bits 1..32 *)
  ta_lo : int array; (* blocks 0..31, bits 33..64 *)
  tb_hi : int array; (* blocks 32..62 (row 31 zero-padded) *)
  tb_lo : int array;
  l : int array;
  r : int array;
}

let make_scratch () =
  {
    ta_hi = Array.make 32 0;
    ta_lo = Array.make 32 0;
    tb_hi = Array.make 32 0;
    tb_lo = Array.make 32 0;
    l = Array.make 32 0;
    r = Array.make 32 0;
  }

let word32 src pos =
  (Char.code (String.unsafe_get src pos) lsl 24)
  lor (Char.code (String.unsafe_get src (pos + 1)) lsl 16)
  lor (Char.code (String.unsafe_get src (pos + 2)) lsl 8)
  lor Char.code (String.unsafe_get src (pos + 3))

let store32 dst pos v =
  Bytes.unsafe_set dst pos (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bytes.unsafe_set dst (pos + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set dst (pos + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set dst (pos + 3) (Char.unsafe_chr (v land 0xFF))

(* one pass: decrypt [n] blocks (1 <= n <= 63) at [src_pos] into [dst_pos] *)
let pass sched sc src src_pos dst dst_pos n =
  let { ta_hi; ta_lo; tb_hi; tb_lo; l; r } = sc in
  for b = 0 to 31 do
    if b < n then begin
      let p = src_pos + (8 * b) in
      Array.unsafe_set ta_hi b (word32 src p);
      Array.unsafe_set ta_lo b (word32 src (p + 4))
    end
    else begin
      Array.unsafe_set ta_hi b 0;
      Array.unsafe_set ta_lo b 0
    end;
    let b' = b + 32 in
    if b' < n then begin
      let p = src_pos + (8 * b') in
      Array.unsafe_set tb_hi b (word32 src p);
      Array.unsafe_set tb_lo b (word32 src (p + 4))
    end
    else begin
      Array.unsafe_set tb_hi b 0;
      Array.unsafe_set tb_lo b 0
    end
  done;
  transpose32 ta_hi;
  transpose32 ta_lo;
  transpose32 tb_hi;
  transpose32 tb_lo;
  (* merge the two 32-block groups and relabel through IP in one go:
     lane j = bit j+1 of every block; l/r hold the IP-selected lanes *)
  let lane j =
    if j < 32 then
      Array.unsafe_get ta_hi j lor (Array.unsafe_get tb_hi j lsl 31)
    else
      Array.unsafe_get ta_lo (j - 32)
      lor (Array.unsafe_get tb_lo (j - 32) lsl 31)
  in
  for j = 0 to 31 do
    Array.unsafe_set l j (lane (Array.unsafe_get ip j));
    Array.unsafe_set r j (lane (Array.unsafe_get ip (j + 32)))
  done;
  let l = ref l and r = ref r in
  for pass = 0 to 2 do
    for rnd = 0 to 15 do
      Des_circuits.apply !l !r sched (((pass * 16) + rnd) * 48);
      let t = !l in
      l := !r;
      r := t
    done;
    (* preoutput is R16 ‖ L16 — one more swap un-swaps round 16; FP of
       this pass and IP of the next cancel, so nothing else moves *)
    let t = !l in
    l := !r;
    r := t
  done;
  (* FP relabel out of (pre = R16 ‖ L16) = (!l, !r) *)
  let l = !l and r = !r in
  let pre j = if j < 32 then Array.unsafe_get l j else Array.unsafe_get r (j - 32) in
  for j = 0 to 31 do
    let v = pre (Array.unsafe_get fp j) in
    Array.unsafe_set ta_hi j (v land 0xFFFFFFFF);
    Array.unsafe_set tb_hi j ((v lsr 31) land 0xFFFFFFFF);
    let v = pre (Array.unsafe_get fp (j + 32)) in
    Array.unsafe_set ta_lo j (v land 0xFFFFFFFF);
    Array.unsafe_set tb_lo j ((v lsr 31) land 0xFFFFFFFF)
  done;
  transpose32 ta_hi;
  transpose32 ta_lo;
  transpose32 tb_hi;
  transpose32 tb_lo;
  for b = 0 to n - 1 do
    let p = dst_pos + (8 * b) in
    if b < 32 then begin
      store32 dst p (Array.unsafe_get ta_hi b);
      store32 dst (p + 4) (Array.unsafe_get ta_lo b)
    end
    else begin
      store32 dst p (Array.unsafe_get tb_hi (b - 32));
      store32 dst (p + 4) (Array.unsafe_get tb_lo (b - 32))
    end
  done

let decrypt_blocks sched ~src ~src_pos ~dst ~dst_pos ~nblocks =
  if Array.length sched <> 48 * 48 then
    invalid_arg "Bitslice_des.decrypt_blocks: bad schedule";
  if
    src_pos < 0 || nblocks < 0
    || src_pos + (8 * nblocks) > String.length src
    || dst_pos < 0
    || dst_pos + (8 * nblocks) > Bytes.length dst
  then invalid_arg "Bitslice_des.decrypt_blocks: range out of bounds";
  if nblocks > 0 then begin
    let sc = make_scratch () in
    let remaining = ref nblocks and off = ref 0 in
    while !remaining > 0 do
      let n = min blocks_per_pass !remaining in
      pass sched sc src (src_pos + (8 * !off)) dst (dst_pos + (8 * !off)) n;
      off := !off + n;
      remaining := !remaining - n
    done
  end
