(** Bitsliced 3DES decryption: 63 blocks per pass over 63-bit native-int
    lanes, with machine-generated S-box circuits (see gen/). This is the
    fast engine's DES kernel — byte-for-byte equal to
    {!Des.Triple.decrypt_block} applied blockwise, differential-tested in
    the test suite, and reached through
    {!Modes.of_triple_des_fast}. Decryption only: the fast path serves
    the SOE read side. *)

val blocks_per_pass : int
(** 63 — one block per usable native-int lane bit. *)

type schedule
(** Precomputed per-session lane masks (48 rounds x 48 bits, EDE-decrypt
    order). Immutable once built: safe to share across worker domains. *)

val decrypt_schedule : Des.Triple.key -> schedule

val decrypt_blocks :
  schedule ->
  src:string ->
  src_pos:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  nblocks:int ->
  unit
(** Raw-ECB-direction decryption of [nblocks] 8-byte blocks; mode XORs
    (CBC chaining, positional masks) are applied by {!Modes} on top.
    @raise Invalid_argument on an out-of-bounds range. *)
