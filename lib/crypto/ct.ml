let equal a b =
  let n = String.length a in
  if String.length b <> n then false
  else begin
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end
