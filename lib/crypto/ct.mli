(** Constant-time byte-string comparison.

    [String.equal] short-circuits at the first differing byte, so comparing
    a secret-derived value (a keyed authentication tag, a decrypted chunk
    digest, a Merkle root) against attacker-influenced input leaks the
    length of the matching prefix through timing. Every comparison whose
    inputs depend on key material must go through {!equal} instead. *)

val equal : string -> string -> bool
(** [equal a b] is [String.equal a b], computed without data-dependent
    branches over the bytes: the full length is always scanned and the
    verdict accumulated bitwise. Lengths are compared first (the length of
    a tag is public, so that branch leaks nothing). *)
