(* Table-driven DES. All FIPS tables use 1-based bit numbering counted from
   the most significant bit; the generic permutation builders below share
   that convention. 32- and 48-bit quantities live in native ints (>= 63
   bits); full 64-bit blocks use int64 only at the block boundary. *)

let block_size = 8

(* FIPS 46-3 tables ------------------------------------------------------- *)

let initial_permutation =
  [| 58; 50; 42; 34; 26; 18; 10; 2; 60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6; 64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17;  9; 1; 59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5; 63; 55; 47; 39; 31; 23; 15; 7 |]

let final_permutation =
  [| 40; 8; 48; 16; 56; 24; 64; 32; 39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30; 37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28; 35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26; 33; 1; 41;  9; 49; 17; 57; 25 |]

let expansion =
  [| 32; 1; 2; 3; 4; 5; 4; 5; 6; 7; 8; 9; 8; 9; 10; 11; 12; 13;
     12; 13; 14; 15; 16; 17; 16; 17; 18; 19; 20; 21; 20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29; 28; 29; 30; 31; 32; 1 |]

let permutation_p =
  [| 16; 7; 20; 21; 29; 12; 28; 17; 1; 15; 23; 26; 5; 18; 31; 10;
     2; 8; 24; 14; 32; 27; 3; 9; 19; 13; 30; 6; 22; 11; 4; 25 |]

let pc1 =
  [| 57; 49; 41; 33; 25; 17;  9;  1; 58; 50; 42; 34; 26; 18;
     10;  2; 59; 51; 43; 35; 27; 19; 11;  3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15;  7; 62; 54; 46; 38; 30; 22;
     14;  6; 61; 53; 45; 37; 29; 21; 13;  5; 28; 20; 12;  4 |]

let pc2 =
  [| 14; 17; 11; 24;  1;  5;  3; 28; 15;  6; 21; 10;
     23; 19; 12;  4; 26;  8; 16;  7; 27; 20; 13;  2;
     41; 52; 31; 37; 47; 55; 30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53; 46; 42; 50; 36; 29; 32 |]

let key_shifts = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

let sboxes =
  [|
    [| 14; 4; 13; 1; 2; 15; 11; 8; 3; 10; 6; 12; 5; 9; 0; 7;
       0; 15; 7; 4; 14; 2; 13; 1; 10; 6; 12; 11; 9; 5; 3; 8;
       4; 1; 14; 8; 13; 6; 2; 11; 15; 12; 9; 7; 3; 10; 5; 0;
       15; 12; 8; 2; 4; 9; 1; 7; 5; 11; 3; 14; 10; 0; 6; 13 |];
    [| 15; 1; 8; 14; 6; 11; 3; 4; 9; 7; 2; 13; 12; 0; 5; 10;
       3; 13; 4; 7; 15; 2; 8; 14; 12; 0; 1; 10; 6; 9; 11; 5;
       0; 14; 7; 11; 10; 4; 13; 1; 5; 8; 12; 6; 9; 3; 2; 15;
       13; 8; 10; 1; 3; 15; 4; 2; 11; 6; 7; 12; 0; 5; 14; 9 |];
    [| 10; 0; 9; 14; 6; 3; 15; 5; 1; 13; 12; 7; 11; 4; 2; 8;
       13; 7; 0; 9; 3; 4; 6; 10; 2; 8; 5; 14; 12; 11; 15; 1;
       13; 6; 4; 9; 8; 15; 3; 0; 11; 1; 2; 12; 5; 10; 14; 7;
       1; 10; 13; 0; 6; 9; 8; 7; 4; 15; 14; 3; 11; 5; 2; 12 |];
    [| 7; 13; 14; 3; 0; 6; 9; 10; 1; 2; 8; 5; 11; 12; 4; 15;
       13; 8; 11; 5; 6; 15; 0; 3; 4; 7; 2; 12; 1; 10; 14; 9;
       10; 6; 9; 0; 12; 11; 7; 13; 15; 1; 3; 14; 5; 2; 8; 4;
       3; 15; 0; 6; 10; 1; 13; 8; 9; 4; 5; 11; 12; 7; 2; 14 |];
    [| 2; 12; 4; 1; 7; 10; 11; 6; 8; 5; 3; 15; 13; 0; 14; 9;
       14; 11; 2; 12; 4; 7; 13; 1; 5; 0; 15; 10; 3; 9; 8; 6;
       4; 2; 1; 11; 10; 13; 7; 8; 15; 9; 12; 5; 6; 3; 0; 14;
       11; 8; 12; 7; 1; 14; 2; 13; 6; 15; 0; 9; 10; 4; 5; 3 |];
    [| 12; 1; 10; 15; 9; 2; 6; 8; 0; 13; 3; 4; 14; 7; 5; 11;
       10; 15; 4; 2; 7; 12; 9; 5; 6; 1; 13; 14; 0; 11; 3; 8;
       9; 14; 15; 5; 2; 8; 12; 3; 7; 0; 4; 10; 1; 13; 11; 6;
       4; 3; 2; 12; 9; 5; 15; 10; 11; 14; 1; 7; 6; 0; 8; 13 |];
    [| 4; 11; 2; 14; 15; 0; 8; 13; 3; 12; 9; 7; 5; 10; 6; 1;
       13; 0; 11; 7; 4; 9; 1; 10; 14; 3; 5; 12; 2; 15; 8; 6;
       1; 4; 11; 13; 12; 3; 7; 14; 10; 15; 6; 8; 0; 5; 9; 2;
       6; 11; 13; 8; 1; 4; 10; 7; 9; 5; 0; 15; 14; 2; 3; 12 |];
    [| 13; 2; 8; 4; 6; 15; 11; 1; 10; 9; 3; 14; 5; 0; 12; 7;
       1; 15; 13; 8; 10; 3; 7; 4; 12; 5; 6; 11; 0; 14; 9; 2;
       7; 11; 4; 1; 9; 12; 14; 2; 0; 6; 10; 13; 15; 3; 5; 8;
       2; 1; 14; 7; 4; 10; 8; 13; 15; 12; 9; 0; 3; 5; 6; 11 |];
  |]

(* Generic (slow) permutation over int64-held bit strings, 1-based MSB-first
   numbering. Used to build fast tables and for the per-key schedule. *)
let permute_generic spec ~in_width ~out_width (x : int64) : int64 =
  let out = ref 0L in
  let out_bits = out_width in
  Array.iteri
    (fun j src ->
      let bit = Int64.to_int (Int64.logand (Int64.shift_right_logical x (in_width - src)) 1L) in
      if bit = 1 then
        out := Int64.logor !out (Int64.shift_left 1L (out_bits - (j + 1))))
    spec;
  !out

(* Fast byte-indexed permutation tables: table.(byte_index).(byte_value)
   gives the contribution of that input byte to the permuted output. *)
let build_perm_table spec ~in_width ~out_width =
  let nbytes = (in_width + 7) / 8 in
  let table = Array.make_matrix nbytes 256 0L in
  for byte = 0 to nbytes - 1 do
    for v = 0 to 255 do
      let x = Int64.shift_left (Int64.of_int v) (in_width - (8 * (byte + 1))) in
      table.(byte).(v) <- permute_generic spec ~in_width ~out_width x
    done
  done;
  table

let apply_perm64 table (x : int64) : int64 =
  let out = ref 0L in
  for byte = 0 to Array.length table - 1 do
    let v = Int64.to_int (Int64.logand (Int64.shift_right_logical x (56 - (8 * byte))) 0xFFL) in
    out := Int64.logor !out table.(byte).(v)
  done;
  !out

let ip_table = build_perm_table initial_permutation ~in_width:64 ~out_width:64
let fp_table = build_perm_table final_permutation ~in_width:64 ~out_width:64

(* Expansion of the 32-bit half into 48 bits, as a native-int table. *)
let e_table =
  let t64 = build_perm_table expansion ~in_width:32 ~out_width:48 in
  Array.map (Array.map Int64.to_int) t64

let expand (r : int) : int =
  e_table.(0).((r lsr 24) land 0xFF)
  lor e_table.(1).((r lsr 16) land 0xFF)
  lor e_table.(2).((r lsr 8) land 0xFF)
  lor e_table.(3).(r land 0xFF)

(* Combined S-box + P permutation tables: sp.(i).(six_bits) is P applied to
   S-box i's output placed at its position in the 32-bit word. *)
let sp_tables =
  let sp = Array.make_matrix 8 64 0 in
  for i = 0 to 7 do
    for v = 0 to 63 do
      (* group bits b1..b6 MSB-first: row = b1 b6, column = b2 b3 b4 b5 *)
      let row = (((v lsr 5) land 1) lsl 1) lor (v land 1) in
      let col = (v lsr 1) land 0xF in
      let s_out = sboxes.(i).((row * 16) + col) in
      let placed = Int64.of_int (s_out lsl (32 - (4 * (i + 1)))) in
      sp.(i).(v) <-
        Int64.to_int (permute_generic permutation_p ~in_width:32 ~out_width:32 placed)
    done
  done;
  sp

let feistel (r : int) (subkey : int) : int =
  let x = expand r lxor subkey in
  sp_tables.(0).((x lsr 42) land 63)
  lor sp_tables.(1).((x lsr 36) land 63)
  lor sp_tables.(2).((x lsr 30) land 63)
  lor sp_tables.(3).((x lsr 24) land 63)
  lor sp_tables.(4).((x lsr 18) land 63)
  lor sp_tables.(5).((x lsr 12) land 63)
  lor sp_tables.(6).((x lsr 6) land 63)
  lor sp_tables.(7).(x land 63)

(* Key schedule ----------------------------------------------------------- *)

type key = int array  (* 16 subkeys of 48 bits each, in native ints *)

let rotl28 x n = ((x lsl n) lor (x lsr (28 - n))) land 0xFFFFFFF

let key_of_string k =
  if String.length k <> 8 then invalid_arg "Des.key_of_string: need 8 bytes";
  let k64 = ref 0L in
  String.iter (fun c -> k64 := Int64.logor (Int64.shift_left !k64 8) (Int64.of_int (Char.code c))) k;
  let cd = permute_generic pc1 ~in_width:64 ~out_width:56 !k64 in
  let c = ref (Int64.to_int (Int64.shift_right_logical cd 28)) in
  let d = ref (Int64.to_int (Int64.logand cd 0xFFFFFFFL)) in
  Array.map
    (fun shift ->
      c := rotl28 !c shift;
      d := rotl28 !d shift;
      let cd56 = Int64.logor (Int64.shift_left (Int64.of_int !c) 28) (Int64.of_int !d) in
      Int64.to_int (permute_generic pc2 ~in_width:56 ~out_width:48 cd56))
    key_shifts

(* Block operations ------------------------------------------------------- *)

let crypt_block subkeys ~decrypt (block : int64) : int64 =
  let ip = apply_perm64 ip_table block in
  let l = ref (Int64.to_int (Int64.shift_right_logical ip 32) land 0xFFFFFFFF) in
  let r = ref (Int64.to_int (Int64.logand ip 0xFFFFFFFFL)) in
  for round = 0 to 15 do
    let k = if decrypt then subkeys.(15 - round) else subkeys.(round) in
    let next_r = !l lxor feistel !r k in
    l := !r;
    r := next_r
  done;
  (* preoutput is R16 ‖ L16 *)
  let pre = Int64.logor (Int64.shift_left (Int64.of_int !r) 32) (Int64.of_int !l) in
  apply_perm64 fp_table pre

let encrypt_block key block = crypt_block key ~decrypt:false block
let decrypt_block key block = crypt_block key ~decrypt:true block

let block_of_bytes s ~pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !v

let block_to_bytes b ~pos (v : int64) =
  for i = 0 to 7 do
    Bytes.set b (pos + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xFFL)))
  done

let subkeys k = Array.copy k

(* The bitsliced engine relabels lanes through IP/FP instead of permuting
   bits; it needs the raw tables, not the byte-indexed fast tables. *)
module Internal = struct
  let initial_permutation = initial_permutation
  let final_permutation = final_permutation
end

module Triple = struct
  let des_encrypt = encrypt_block
  let des_decrypt = decrypt_block

  type des_key = key
  type key = { k1 : des_key; k2 : des_key; k3 : des_key; raw : string }

  let key_of_string s =
    match String.length s with
    | 8 ->
        let k = key_of_string s in
        { k1 = k; k2 = k; k3 = k; raw = s ^ s ^ s }
    | 16 ->
        let k1 = key_of_string (String.sub s 0 8) in
        let k2 = key_of_string (String.sub s 8 8) in
        { k1; k2; k3 = k1; raw = s ^ String.sub s 0 8 }
    | 24 ->
        {
          k1 = key_of_string (String.sub s 0 8);
          k2 = key_of_string (String.sub s 8 8);
          k3 = key_of_string (String.sub s 16 8);
          raw = s;
        }
    | _ -> invalid_arg "Des.Triple.key_of_string: need 8, 16 or 24 bytes"

  let components { k1; k2; k3; _ } = (k1, k2, k3)
  let bytes { raw; _ } = raw

  let encrypt_block { k1; k2; k3; _ } b =
    des_encrypt k3 (des_decrypt k2 (des_encrypt k1 b))

  let decrypt_block { k1; k2; k3; _ } b =
    des_decrypt k1 (des_encrypt k2 (des_decrypt k3 b))
end
