(** DES and Triple-DES (FIPS 46-3), implemented from scratch.

    The paper encrypts documents with hardwired 3DES on the smart card; here
    the block cipher is software but the SOE cost model charges decrypted
    bytes at the paper's Table 1 rates, so its wall-clock speed never enters
    reported results. The implementation is table-driven (combined S+P
    lookup tables) and validated against FIPS test vectors. *)

val block_size : int
(** 8 bytes. *)

type key

val key_of_string : string -> key
(** [key_of_string k] expands an 8-byte key (parity bits ignored).
    @raise Invalid_argument if [k] is not 8 bytes. *)

val encrypt_block : key -> int64 -> int64
val decrypt_block : key -> int64 -> int64

val block_of_bytes : string -> pos:int -> int64
(** Big-endian load of 8 bytes. *)

val block_to_bytes : Bytes.t -> pos:int -> int64 -> unit

val subkeys : key -> int array
(** The 16 expanded round subkeys (48 bits each, MSB-first in native ints)
    — the raw material the bitsliced engine turns into lane masks. *)

(** Triple DES in EDE mode with three independent subkeys. *)
module Triple : sig
  type des_key = key
  type key

  val key_of_string : string -> key
  (** 24-byte key = k1 ‖ k2 ‖ k3; 8-byte and 16-byte keys are also accepted
      (k1=k2=k3, resp. k3=k1). @raise Invalid_argument otherwise. *)

  val components : key -> des_key * des_key * des_key
  (** The three single-DES component keys, in EDE order. *)

  val bytes : key -> string
  (** The normalized 24-byte raw key material the key was expanded from —
      what scheme-agnostic key derivation (e.g. the AES-CTR scheme) feeds
      into its own schedule. *)

  val encrypt_block : key -> int64 -> int64
  val decrypt_block : key -> int64 -> int64
end

(**/**)

module Internal : sig
  val initial_permutation : int array
  val final_permutation : int array
end
