(* Engine selection: which implementations serve a session's decrypt and
   verify work. [Reference] is the scalar, straight-off-the-spec path the
   repo has always had; [Fast] swaps in the bitsliced DES kernel and
   batched Merkle verification. The two are byte-for-byte interchangeable
   — the differential suite and CI pin Fast ≡ Reference on every scheme —
   so the choice is purely a performance knob. *)

type t = Reference | Fast

let default = Reference

let to_string = function Reference -> "reference" | Fast -> "fast"

let of_string = function
  | "reference" -> Some Reference
  | "fast" -> Some Fast
  | _ -> None

let all = [ Reference; Fast ]

let cipher t key =
  match t with
  | Reference -> Modes.of_triple_des key
  | Fast -> Modes.of_triple_des_fast key
