(** Crypto engine selection — reference scalar kernels versus the fast
    family (bitsliced DES, batched Merkle verification). Engines are
    byte-for-byte interchangeable; the differential suite pins
    [Fast ≡ Reference] over FIPS vectors and random corpora on every
    scheme, so selecting [Fast] changes wall-clock only. *)

type t = Reference | Fast

val default : t
(** [Reference] — the fast engine is opt-in per session or tool run. *)

val to_string : t -> string
(** ["reference"] / ["fast"] — the spelling the CLI, metrics prefixes and
    bench records use. *)

val of_string : string -> t option
val all : t list

val cipher : t -> Des.Triple.key -> Modes.cipher
(** The 3DES cipher this engine backs sessions with:
    {!Modes.of_triple_des} or {!Modes.of_triple_des_fast}. *)
