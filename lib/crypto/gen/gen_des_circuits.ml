(* Generates des_circuits.ml: straight-line boolean circuits for the eight
   DES S-boxes, operating on bitsliced lanes (one native int per bit
   position, one bit per block).

   Every emitted node carries its 64-entry truth table (an int64, bit v =
   the node's value on S-box input v) computed through the same operators
   the emitted code uses, so the generator *is* the proof: each S-box
   output is asserted equal to the FIPS table before a single line is
   printed, and the build fails otherwise.

   Circuit shape per S-box: Shannon decomposition on the two row bits
   (x1, x6) over shared column minterms of (x2..x5), with hash-consing by
   truth table and a don't-care match on the row under construction (only
   the 16 combinations of the selected row matter once the row selector
   masks the term, so any existing node agreeing there is reused). *)

let sboxes =
  [|
    [| 14; 4; 13; 1; 2; 15; 11; 8; 3; 10; 6; 12; 5; 9; 0; 7;
       0; 15; 7; 4; 14; 2; 13; 1; 10; 6; 12; 11; 9; 5; 3; 8;
       4; 1; 14; 8; 13; 6; 2; 11; 15; 12; 9; 7; 3; 10; 5; 0;
       15; 12; 8; 2; 4; 9; 1; 7; 5; 11; 3; 14; 10; 0; 6; 13 |];
    [| 15; 1; 8; 14; 6; 11; 3; 4; 9; 7; 2; 13; 12; 0; 5; 10;
       3; 13; 4; 7; 15; 2; 8; 14; 12; 0; 1; 10; 6; 9; 11; 5;
       0; 14; 7; 11; 10; 4; 13; 1; 5; 8; 12; 6; 9; 3; 2; 15;
       13; 8; 10; 1; 3; 15; 4; 2; 11; 6; 7; 12; 0; 5; 14; 9 |];
    [| 10; 0; 9; 14; 6; 3; 15; 5; 1; 13; 12; 7; 11; 4; 2; 8;
       13; 7; 0; 9; 3; 4; 6; 10; 2; 8; 5; 14; 12; 11; 15; 1;
       13; 6; 4; 9; 8; 15; 3; 0; 11; 1; 2; 12; 5; 10; 14; 7;
       1; 10; 13; 0; 6; 9; 8; 7; 4; 15; 14; 3; 11; 5; 2; 12 |];
    [| 7; 13; 14; 3; 0; 6; 9; 10; 1; 2; 8; 5; 11; 12; 4; 15;
       13; 8; 11; 5; 6; 15; 0; 3; 4; 7; 2; 12; 1; 10; 14; 9;
       10; 6; 9; 0; 12; 11; 7; 13; 15; 1; 3; 14; 5; 2; 8; 4;
       3; 15; 0; 6; 10; 1; 13; 8; 9; 4; 5; 11; 12; 7; 2; 14 |];
    [| 2; 12; 4; 1; 7; 10; 11; 6; 8; 5; 3; 15; 13; 0; 14; 9;
       14; 11; 2; 12; 4; 7; 13; 1; 5; 0; 15; 10; 3; 9; 8; 6;
       4; 2; 1; 11; 10; 13; 7; 8; 15; 9; 12; 5; 6; 3; 0; 14;
       11; 8; 12; 7; 1; 14; 2; 13; 6; 15; 0; 9; 10; 4; 5; 3 |];
    [| 12; 1; 10; 15; 9; 2; 6; 8; 0; 13; 3; 4; 14; 7; 5; 11;
       10; 15; 4; 2; 7; 12; 9; 5; 6; 1; 13; 14; 0; 11; 3; 8;
       9; 14; 15; 5; 2; 8; 12; 3; 7; 0; 4; 10; 1; 13; 11; 6;
       4; 3; 2; 12; 9; 5; 15; 10; 11; 14; 1; 7; 6; 0; 8; 13 |];
    [| 4; 11; 2; 14; 15; 0; 8; 13; 3; 12; 9; 7; 5; 10; 6; 1;
       13; 0; 11; 7; 4; 9; 1; 10; 14; 3; 5; 12; 2; 15; 8; 6;
       1; 4; 11; 13; 12; 3; 7; 14; 10; 15; 6; 8; 0; 5; 9; 2;
       6; 11; 13; 8; 1; 4; 10; 7; 9; 5; 0; 15; 14; 2; 3; 12 |];
    [| 13; 2; 8; 4; 6; 15; 11; 1; 10; 9; 3; 14; 5; 0; 12; 7;
       1; 15; 13; 8; 10; 3; 7; 4; 12; 5; 6; 11; 0; 14; 9; 2;
       7; 11; 4; 1; 9; 12; 14; 2; 0; 6; 10; 13; 15; 3; 5; 8;
       2; 1; 14; 7; 4; 10; 8; 13; 15; 12; 9; 0; 3; 5; 6; 11 |];
  |]

let expansion =
  [| 32; 1; 2; 3; 4; 5; 4; 5; 6; 7; 8; 9; 8; 9; 10; 11; 12; 13;
     12; 13; 14; 15; 16; 17; 16; 17; 18; 19; 20; 21; 20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29; 28; 29; 30; 31; 32; 1 |]

let permutation_p =
  [| 16; 7; 20; 21; 29; 12; 28; 17; 1; 15; 23; 26; 5; 18; 31; 10;
     2; 8; 24; 14; 32; 27; 3; 9; 19; 13; 30; 6; 22; 11; 4; 25 |]

(* inverse_p.(s) = 0-based L-lane index receiving S-output bit s (1-based) *)
let inverse_p =
  let inv = Array.make 33 0 in
  Array.iteri (fun u s -> inv.(s) <- u) permutation_p;
  inv

let buf = Buffer.create (1 lsl 16)
let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt

let counter = ref 0
let total_ops = ref 0

let fresh () =
  incr counter;
  Printf.sprintf "t%d" !counter

type ctx = {
  by_sem : (int64, string) Hashtbl.t;
  mutable nodes : (string * int64) list;
  mutable ops : int;
}

let new_ctx () = { by_sem = Hashtbl.create 256; nodes = []; ops = 0 }

let register ctx name sem =
  Hashtbl.replace ctx.by_sem sem name;
  ctx.nodes <- (name, sem) :: ctx.nodes

let node ctx sem expr =
  match Hashtbl.find_opt ctx.by_sem sem with
  | Some v -> (v, sem)
  | None ->
      let n = fresh () in
      line "  let %s = %s in" n expr;
      ctx.ops <- ctx.ops + 1;
      register ctx n sem;
      (n, sem)

let band ctx (na, sa) (nb, sb) =
  node ctx (Int64.logand sa sb) (Printf.sprintf "%s land %s" na nb)

let bor ctx (na, sa) (nb, sb) =
  node ctx (Int64.logor sa sb) (Printf.sprintf "%s lor %s" na nb)

let bnot ctx (na, sa) = node ctx (Int64.lognot sa) (Printf.sprintf "lnot %s" na)

(* truth table of input x_i (1-based, x1 = MSB of the 6-bit S-box index) *)
let input_sem i =
  let s = ref 0L in
  for v = 0 to 63 do
    if (v lsr (6 - i)) land 1 = 1 then s := Int64.logor !s (Int64.shift_left 1L v)
  done;
  !s

let row_of v = (((v lsr 5) land 1) lsl 1) lor (v land 1)
let col_of v = (v lsr 1) land 0xF

(* column minterm: x2..x5 spell out [c], any row *)
let minterm ctx xs c =
  let lit i bit = if bit = 1 then xs.(i) else bnot ctx xs.(i) in
  (* xs.(1)=x2 .. xs.(4)=x5; c bit3 = x2 *)
  let p23 = band ctx (lit 1 ((c lsr 3) land 1)) (lit 2 ((c lsr 2) land 1)) in
  let p45 = band ctx (lit 3 ((c lsr 1) land 1)) (lit 4 (c land 1)) in
  band ctx p23 p45

let or_fold ctx = function
  | [] -> invalid_arg "or_fold"
  | x :: rest -> List.fold_left (fun acc t -> bor ctx acc t) x rest

(* a node matching [want] on the 16 combinations of row [r] (don't-care
   elsewhere: the row selector masks the term) *)
let find_on_row ctx ~row want =
  let mask = ref 0L in
  for v = 0 to 63 do
    if row_of v = row then mask := Int64.logor !mask (Int64.shift_left 1L v)
  done;
  let m = !mask in
  List.find_opt
    (fun (_, s) -> Int64.logand s m = Int64.logand want m)
    ctx.nodes
  |> Option.map (fun (n, s) -> (n, s))

type f_circuit = Zero | Ones | Node of (string * int64)

(* the (x2..x5)-function of row [row], output bit [o] (0 = MSB) *)
let build_f ctx xs table ~row ~o =
  let cols = List.filter
      (fun c -> (table.((row * 16) + c) lsr (3 - o)) land 1 = 1)
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
  in
  match List.length cols with
  | 0 -> Zero
  | 16 -> Ones
  | k ->
      let want = ref 0L in
      for v = 0 to 63 do
        if List.mem (col_of v) cols then
          want := Int64.logor !want (Int64.shift_left 1L v)
      done;
      (match find_on_row ctx ~row !want with
      | Some n -> Node n
      | None ->
          if k <= 8 then Node (or_fold ctx (List.map (minterm ctx xs) cols))
          else
            let others =
              List.filter (fun c -> not (List.mem c cols))
                [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
            in
            Node (bnot ctx (or_fold ctx (List.map (minterm ctx xs) others))))

let gen_sbox i =
  let ctx = new_ctx () in
  let table = sboxes.(i) in
  line "  (* S-box %d *)" (i + 1);
  (* inputs: expansion-selected R lanes XORed with the round key masks *)
  let xs =
    Array.init 6 (fun j ->
        let e = expansion.((6 * i) + j) - 1 in
        let n = fresh () in
        line
          "  let %s = Array.unsafe_get r %d lxor Array.unsafe_get k (kp + %d) in"
          n e ((6 * i) + j);
        ctx.ops <- ctx.ops + 1;
        let sem = input_sem (j + 1) in
        register ctx n sem;
        (n, sem))
  in
  (* row selectors over (x1, x6) *)
  let rowsel =
    Array.init 4 (fun rw ->
        let l1 = if (rw lsr 1) land 1 = 1 then xs.(0) else bnot ctx xs.(0) in
        let l6 = if rw land 1 = 1 then xs.(5) else bnot ctx xs.(5) in
        band ctx l1 l6)
  in
  for o = 0 to 3 do
    let terms =
      List.filter_map
        (fun rw ->
          match build_f ctx xs table ~row:rw ~o with
          | Zero -> None
          | Ones -> Some rowsel.(rw)
          | Node f -> Some (band ctx rowsel.(rw) f))
        [ 0; 1; 2; 3 ]
    in
    let out, out_sem = or_fold ctx terms in
    (* the generator verifies its own circuit: the node's truth table,
       computed through the emitted operators, must equal the FIPS table *)
    let expected = ref 0L in
    for v = 0 to 63 do
      if (table.((row_of v * 16) + col_of v) lsr (3 - o)) land 1 = 1 then
        expected := Int64.logor !expected (Int64.shift_left 1L v)
    done;
    if out_sem <> !expected then (
      Printf.eprintf "gen_des_circuits: S-box %d output %d circuit is wrong\n"
        (i + 1) o;
      exit 1);
    let dst = inverse_p.((4 * i) + o + 1) in
    line "  Array.unsafe_set l %d (Array.unsafe_get l %d lxor %s);" dst dst out
  done;
  total_ops := !total_ops + ctx.ops

let () =
  line "(* Generated by gen/gen_des_circuits.ml — do not edit.";
  line "   Bitsliced DES round function: all eight S-boxes as straight-line";
  line "   boolean circuits over native-int lanes, XORing their P-permuted";
  line "   outputs into the L half. Index arithmetic is fixed at generation";
  line "   time and every output was verified against the FIPS tables by the";
  line "   generator, so the unsafe array accesses stay in bounds by";
  line "   construction (l, r: 32 lanes; k: the 48-mask round slice at kp). *)";
  line "";
  line "let apply (l : int array) (r : int array) (k : int array) (kp : int) =";
  for i = 0 to 7 do
    gen_sbox i
  done;
  line "  ()";
  line "";
  line "(* %d boolean ops per round across the eight S-boxes *)" !total_ops;
  print_string (Buffer.contents buf)
