type node = { level : int; index : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* feed both halves into one context: no [a ^ b] intermediate on the
   verification hot path *)
let combine a b =
  let c = Sha1.init () in
  Sha1.feed c a;
  Sha1.feed c b;
  Sha1.finalize c

let levels leaf_count =
  let rec go l n = if n = 1 then l else go (l + 1) (n / 2) in
  go 0 leaf_count

let root_of_leaves leaves =
  let n = Array.length leaves in
  if not (is_power_of_two n) then
    invalid_arg "Merkle.root_of_leaves: leaf count must be a power of two";
  let rec reduce layer =
    match Array.length layer with
    | 1 -> layer.(0)
    | m ->
        reduce
          (Array.init (m / 2) (fun i -> combine layer.(2 * i) layer.((2 * i) + 1)))
  in
  reduce leaves

let node_hash leaves { level; index } =
  let n = Array.length leaves in
  if not (is_power_of_two n) then
    invalid_arg "Merkle.node_hash: leaf count must be a power of two";
  let width = 1 lsl level in
  if index < 0 || (index + 1) * width > n then invalid_arg "Merkle.node_hash: bad node";
  root_of_leaves (Array.sub leaves (index * width) width)

(* Walk up from the known range; at each level, the range of known node
   indexes shrinks by half and the missing siblings at the boundaries must
   be supplied. *)
let sibling_cover ~leaf_count ~lo ~hi =
  if not (is_power_of_two leaf_count) then
    invalid_arg "Merkle.sibling_cover: leaf count must be a power of two";
  if lo < 0 || hi >= leaf_count || lo > hi then
    invalid_arg "Merkle.sibling_cover: bad range";
  let rec go level lo hi acc =
    if 1 lsl level >= leaf_count then List.rev acc
    else begin
      let acc = if lo land 1 = 1 then { level; index = lo - 1 } :: acc else acc in
      let acc = if hi land 1 = 0 then { level; index = hi + 1 } :: acc else acc in
      go (level + 1) (lo / 2) (hi / 2) acc
    end
  in
  go 0 lo hi []

let root_from_cover ~leaf_count ~known ~supplied =
  if not (is_power_of_two leaf_count) then
    invalid_arg "Merkle.root_from_cover: leaf count must be a power of two";
  let table = Hashtbl.create 32 in
  List.iter (fun (i, h) -> Hashtbl.replace table (0, i) h) known;
  List.iter (fun ({ level; index }, h) -> Hashtbl.replace table (level, index) h) supplied;
  let rec hash_of level index =
    match Hashtbl.find_opt table (level, index) with
    | Some h -> Some h
    | None ->
        if level = 0 then None
        else
          Option.bind (hash_of (level - 1) (2 * index)) (fun l ->
              Option.map (fun r -> combine l r) (hash_of (level - 1) ((2 * index) + 1)))
  in
  hash_of (levels leaf_count) 0
