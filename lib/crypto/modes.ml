type cipher = {
  encrypt : int64 -> int64;
  decrypt : int64 -> int64;
  decrypt_blocks :
    (src:string ->
    src_pos:int ->
    dst:Bytes.t ->
    dst_pos:int ->
    nblocks:int ->
    unit)
    option;
      (* optional batched raw-ECB-direction kernel; mode XORs are applied
         on top as a second pass over [dst] *)
}

let of_des k =
  {
    encrypt = Des.encrypt_block k;
    decrypt = Des.decrypt_block k;
    decrypt_blocks = None;
  }

let of_triple_des k =
  {
    encrypt = Des.Triple.encrypt_block k;
    decrypt = Des.Triple.decrypt_block k;
    decrypt_blocks = None;
  }

let of_triple_des_fast k =
  let sched = Bitslice_des.decrypt_schedule k in
  {
    encrypt = Des.Triple.encrypt_block k;
    decrypt = Des.Triple.decrypt_block k;
    decrypt_blocks = Some (Bitslice_des.decrypt_blocks sched);
  }

(* Below this many blocks the bitsliced kernel's fixed per-pass cost (the
   transposes run over all 63 lanes regardless) cancels its gain, so short
   runs stay on the scalar path. *)
let batch_threshold = 16

let check_aligned name s =
  if String.length s mod 8 <> 0 then
    invalid_arg (name ^ ": length must be a multiple of 8")

let map_blocks f s =
  let out = Bytes.create (String.length s) in
  let nblocks = String.length s / 8 in
  for i = 0 to nblocks - 1 do
    Des.block_to_bytes out ~pos:(8 * i) (f i (Des.block_of_bytes s ~pos:(8 * i)))
  done;
  Bytes.to_string out

let ecb_encrypt c s =
  check_aligned "Modes.ecb_encrypt" s;
  map_blocks (fun _ b -> c.encrypt b) s

let cbc_encrypt c ~iv s =
  check_aligned "Modes.cbc_encrypt" s;
  let prev = ref iv in
  map_blocks
    (fun _ b ->
      let e = c.encrypt (Int64.logxor b !prev) in
      prev := e;
      e)
    s

let position_mask ~base i = Int64.of_int (base + (8 * i))

let positional_encrypt c ~base s =
  check_aligned "Modes.positional_encrypt" s;
  if base mod 8 <> 0 then invalid_arg "Modes.positional_encrypt: unaligned base";
  map_blocks (fun i b -> c.encrypt (Int64.logxor b (position_mask ~base i))) s

(* In-place variants: decrypt a slice of [src] straight into [dst] without
   materialising an intermediate string. When the cipher carries a batched
   kernel and the run is long enough, all blocks go through it in one call
   and the mode XOR is applied as a bytewise second pass over [dst] —
   native-int arithmetic only, no boxed Int64 per block. *)

let check_into name ~src ~src_pos ~dst ~dst_pos ~len =
  if len mod 8 <> 0 then invalid_arg (name ^ ": length must be a multiple of 8");
  if src_pos < 0 || len < 0 || src_pos + len > String.length src then
    invalid_arg (name ^ ": source range out of bounds");
  if dst_pos < 0 || dst_pos + len > Bytes.length dst then
    invalid_arg (name ^ ": destination range out of bounds");
  (* a Bytes.t smuggled in as the source would let raw and mode-XORed
     bytes interleave mid-pass; reject the only aliasing OCaml allows *)
  if Obj.repr src == Obj.repr dst then
    invalid_arg (name ^ ": src and dst must not alias")

(* XOR the 8 big-endian bytes of a native-int mask into dst at [pos]
   (the positional masks always fit: document offsets are well under
   2^62). *)
let xor_mask_bytes dst pos m =
  let k = ref 7 and m = ref m in
  while !m <> 0 do
    let byte = !m land 0xFF in
    if byte <> 0 then
      Bytes.unsafe_set dst (pos + !k)
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst (pos + !k)) lxor byte));
    m := !m lsr 8;
    decr k
  done

let xor_iv_bytes dst pos iv =
  for k = 0 to 7 do
    let byte =
      Int64.to_int (Int64.shift_right_logical iv (8 * (7 - k))) land 0xFF
    in
    if byte <> 0 then
      Bytes.unsafe_set dst (pos + k)
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst (pos + k)) lxor byte))
  done

let ecb_decrypt_into c ~src ~src_pos ~dst ~dst_pos ~len =
  check_into "Modes.ecb_decrypt_into" ~src ~src_pos ~dst ~dst_pos ~len;
  let nblocks = len / 8 in
  match c.decrypt_blocks with
  | Some f when nblocks >= batch_threshold ->
      f ~src ~src_pos ~dst ~dst_pos ~nblocks
  | _ ->
      for i = 0 to nblocks - 1 do
        Des.block_to_bytes dst
          ~pos:(dst_pos + (8 * i))
          (c.decrypt (Des.block_of_bytes src ~pos:(src_pos + (8 * i))))
      done

let cbc_decrypt_into c ~iv ~src ~src_pos ~dst ~dst_pos ~len =
  check_into "Modes.cbc_decrypt_into" ~src ~src_pos ~dst ~dst_pos ~len;
  if src_pos mod 8 <> 0 then
    invalid_arg "Modes.cbc_decrypt_into: unaligned source position";
  let nblocks = len / 8 in
  match c.decrypt_blocks with
  | Some f when nblocks >= batch_threshold ->
      f ~src ~src_pos ~dst ~dst_pos ~nblocks;
      (* chain XOR second pass: block i XORs the previous cipher block,
         still pristine in [src] (aliasing was rejected above) *)
      if src_pos = 0 then xor_iv_bytes dst dst_pos iv
      else
        for k = 0 to 7 do
          Bytes.unsafe_set dst (dst_pos + k)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get dst (dst_pos + k))
               lxor Char.code (String.unsafe_get src (src_pos - 8 + k))))
        done;
      for i = 1 to nblocks - 1 do
        let dp = dst_pos + (8 * i) and sp = src_pos + (8 * (i - 1)) in
        for k = 0 to 7 do
          Bytes.unsafe_set dst (dp + k)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get dst (dp + k))
               lxor Char.code (String.unsafe_get src (sp + k))))
        done
      done
  | _ ->
      let prev =
        ref
          (if src_pos = 0 then iv else Des.block_of_bytes src ~pos:(src_pos - 8))
      in
      for i = 0 to nblocks - 1 do
        let b = Des.block_of_bytes src ~pos:(src_pos + (8 * i)) in
        Des.block_to_bytes dst
          ~pos:(dst_pos + (8 * i))
          (Int64.logxor (c.decrypt b) !prev);
        prev := b
      done

let positional_decrypt_into c ~base ~src ~src_pos ~dst ~dst_pos ~len =
  check_into "Modes.positional_decrypt_into" ~src ~src_pos ~dst ~dst_pos ~len;
  if base mod 8 <> 0 then
    invalid_arg "Modes.positional_decrypt_into: unaligned base";
  let nblocks = len / 8 in
  match c.decrypt_blocks with
  | Some f when nblocks >= batch_threshold ->
      f ~src ~src_pos ~dst ~dst_pos ~nblocks;
      for i = 0 to nblocks - 1 do
        xor_mask_bytes dst (dst_pos + (8 * i)) (base + (8 * i))
      done
  | _ ->
      for i = 0 to nblocks - 1 do
        Des.block_to_bytes dst
          ~pos:(dst_pos + (8 * i))
          (Int64.logxor
             (c.decrypt (Des.block_of_bytes src ~pos:(src_pos + (8 * i))))
             (position_mask ~base i))
      done

(* Allocating decrypts ride on the [_into] kernels: one output buffer per
   call (instead of per-block closures and boxed chaining state), and the
   batched path when the cipher has one. *)

let ecb_decrypt c s =
  check_aligned "Modes.ecb_decrypt" s;
  let len = String.length s in
  let out = Bytes.create len in
  ecb_decrypt_into c ~src:s ~src_pos:0 ~dst:out ~dst_pos:0 ~len;
  Bytes.unsafe_to_string out

let cbc_decrypt c ~iv s =
  check_aligned "Modes.cbc_decrypt" s;
  let len = String.length s in
  let out = Bytes.create len in
  cbc_decrypt_into c ~iv ~src:s ~src_pos:0 ~dst:out ~dst_pos:0 ~len;
  Bytes.unsafe_to_string out

let positional_decrypt c ~base s =
  check_aligned "Modes.positional_decrypt" s;
  if base mod 8 <> 0 then invalid_arg "Modes.positional_decrypt: unaligned base";
  let len = String.length s in
  let out = Bytes.create len in
  positional_decrypt_into c ~base ~src:s ~src_pos:0 ~dst:out ~dst_pos:0 ~len;
  Bytes.unsafe_to_string out

let positional_decrypt_sub c ~base s ~pos ~len =
  if pos mod 8 <> 0 || len mod 8 <> 0 then
    invalid_arg "Modes.positional_decrypt_sub: unaligned range";
  if pos < 0 || pos + len > String.length s then
    invalid_arg "Modes.positional_decrypt_sub: range out of bounds";
  let out = Bytes.create len in
  positional_decrypt_into c ~base:(base + pos) ~src:s ~src_pos:pos ~dst:out
    ~dst_pos:0 ~len;
  Bytes.unsafe_to_string out

let pad s =
  let n = String.length s in
  let padded = 8 * ((n / 8) + 1) in
  let b = Bytes.make padded '\000' in
  Bytes.blit_string s 0 b 0 n;
  Bytes.set b n '\x80';
  Bytes.to_string b

let unpad s =
  let rec find i =
    if i < 0 then invalid_arg "Modes.unpad: no padding marker"
    else
      match s.[i] with
      | '\000' -> find (i - 1)
      | '\x80' -> i
      | _ -> invalid_arg "Modes.unpad: malformed padding"
  in
  let n = String.length s in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Modes.unpad: bad length";
  let marker = find (n - 1) in
  if n - marker > 8 then invalid_arg "Modes.unpad: padding too long";
  String.sub s 0 marker
