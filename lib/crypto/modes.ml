type cipher = { encrypt : int64 -> int64; decrypt : int64 -> int64 }

let of_des k =
  { encrypt = Des.encrypt_block k; decrypt = Des.decrypt_block k }

let of_triple_des k =
  {
    encrypt = Des.Triple.encrypt_block k;
    decrypt = Des.Triple.decrypt_block k;
  }

let check_aligned name s =
  if String.length s mod 8 <> 0 then
    invalid_arg (name ^ ": length must be a multiple of 8")

let map_blocks f s =
  let out = Bytes.create (String.length s) in
  let nblocks = String.length s / 8 in
  for i = 0 to nblocks - 1 do
    Des.block_to_bytes out ~pos:(8 * i) (f i (Des.block_of_bytes s ~pos:(8 * i)))
  done;
  Bytes.to_string out

let ecb_encrypt c s =
  check_aligned "Modes.ecb_encrypt" s;
  map_blocks (fun _ b -> c.encrypt b) s

let ecb_decrypt c s =
  check_aligned "Modes.ecb_decrypt" s;
  map_blocks (fun _ b -> c.decrypt b) s

let cbc_encrypt c ~iv s =
  check_aligned "Modes.cbc_encrypt" s;
  let prev = ref iv in
  map_blocks
    (fun _ b ->
      let e = c.encrypt (Int64.logxor b !prev) in
      prev := e;
      e)
    s

let cbc_decrypt c ~iv s =
  check_aligned "Modes.cbc_decrypt" s;
  let prev = ref iv in
  map_blocks
    (fun _ b ->
      let p = Int64.logxor (c.decrypt b) !prev in
      prev := b;
      p)
    s

let position_mask ~base i = Int64.of_int (base + (8 * i))

let positional_encrypt c ~base s =
  check_aligned "Modes.positional_encrypt" s;
  if base mod 8 <> 0 then invalid_arg "Modes.positional_encrypt: unaligned base";
  map_blocks (fun i b -> c.encrypt (Int64.logxor b (position_mask ~base i))) s

let positional_decrypt c ~base s =
  check_aligned "Modes.positional_decrypt" s;
  if base mod 8 <> 0 then invalid_arg "Modes.positional_decrypt: unaligned base";
  map_blocks (fun i b -> Int64.logxor (c.decrypt b) (position_mask ~base i)) s

(* In-place variants: decrypt a slice of [src] straight into [dst] without
   materialising an intermediate string. The hot read path decrypts one
   8-byte block at a time, so avoiding a String.sub + fresh result string
   per call is what kills the per-block churn. *)

let check_into name ~src ~src_pos ~dst ~dst_pos ~len =
  if len mod 8 <> 0 then invalid_arg (name ^ ": length must be a multiple of 8");
  if src_pos < 0 || len < 0 || src_pos + len > String.length src then
    invalid_arg (name ^ ": source range out of bounds");
  if dst_pos < 0 || dst_pos + len > Bytes.length dst then
    invalid_arg (name ^ ": destination range out of bounds")

let ecb_decrypt_into c ~src ~src_pos ~dst ~dst_pos ~len =
  check_into "Modes.ecb_decrypt_into" ~src ~src_pos ~dst ~dst_pos ~len;
  for i = 0 to (len / 8) - 1 do
    Des.block_to_bytes dst
      ~pos:(dst_pos + (8 * i))
      (c.decrypt (Des.block_of_bytes src ~pos:(src_pos + (8 * i))))
  done

let cbc_decrypt_into c ~iv ~src ~src_pos ~dst ~dst_pos ~len =
  check_into "Modes.cbc_decrypt_into" ~src ~src_pos ~dst ~dst_pos ~len;
  if src_pos mod 8 <> 0 then
    invalid_arg "Modes.cbc_decrypt_into: unaligned source position";
  let prev =
    ref (if src_pos = 0 then iv else Des.block_of_bytes src ~pos:(src_pos - 8))
  in
  for i = 0 to (len / 8) - 1 do
    let b = Des.block_of_bytes src ~pos:(src_pos + (8 * i)) in
    Des.block_to_bytes dst
      ~pos:(dst_pos + (8 * i))
      (Int64.logxor (c.decrypt b) !prev);
    prev := b
  done

let positional_decrypt_into c ~base ~src ~src_pos ~dst ~dst_pos ~len =
  check_into "Modes.positional_decrypt_into" ~src ~src_pos ~dst ~dst_pos ~len;
  if base mod 8 <> 0 then
    invalid_arg "Modes.positional_decrypt_into: unaligned base";
  for i = 0 to (len / 8) - 1 do
    Des.block_to_bytes dst
      ~pos:(dst_pos + (8 * i))
      (Int64.logxor
         (c.decrypt (Des.block_of_bytes src ~pos:(src_pos + (8 * i))))
         (position_mask ~base i))
  done

let positional_decrypt_sub c ~base s ~pos ~len =
  if pos mod 8 <> 0 || len mod 8 <> 0 then
    invalid_arg "Modes.positional_decrypt_sub: unaligned range";
  if pos < 0 || pos + len > String.length s then
    invalid_arg "Modes.positional_decrypt_sub: range out of bounds";
  let out = Bytes.create len in
  positional_decrypt_into c ~base:(base + pos) ~src:s ~src_pos:pos ~dst:out
    ~dst_pos:0 ~len;
  Bytes.unsafe_to_string out

let pad s =
  let n = String.length s in
  let padded = 8 * ((n / 8) + 1) in
  let b = Bytes.make padded '\000' in
  Bytes.blit_string s 0 b 0 n;
  Bytes.set b n '\x80';
  Bytes.to_string b

let unpad s =
  let rec find i =
    if i < 0 then invalid_arg "Modes.unpad: no padding marker"
    else
      match s.[i] with
      | '\000' -> find (i - 1)
      | '\x80' -> i
      | _ -> invalid_arg "Modes.unpad: malformed padding"
  in
  let n = String.length s in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Modes.unpad: bad length";
  let marker = find (n - 1) in
  if n - marker > 8 then invalid_arg "Modes.unpad: padding too long";
  String.sub s 0 marker
