(** Block-cipher modes of operation used by the paper (Appendix A):

    - plain ECB — leaks equal blocks, kept as the insecure baseline;
    - CBC — the classic alternative, penalizing random access;
    - positional ECB — the paper's scheme: each 8-byte block is XORed with
      its absolute position in the document before ECB encryption, so equal
      plaintexts yield different ciphertexts while any block remains
      independently decryptable. *)

type cipher = {
  encrypt : int64 -> int64;
  decrypt : int64 -> int64;
  decrypt_blocks :
    (src:string ->
    src_pos:int ->
    dst:Bytes.t ->
    dst_pos:int ->
    nblocks:int ->
    unit)
    option;
      (** Optional batched raw-ECB-direction decrypt kernel. When present,
          the [_into] decrypt functions hand whole runs of blocks to it in
          one call and apply the mode XOR (CBC chaining, positional masks)
          as a bytewise second pass — this is how the bitsliced DES engine
          plugs in without the modes knowing about lanes. *)
}

val of_des : Des.key -> cipher
val of_triple_des : Des.Triple.key -> cipher

val of_triple_des_fast : Des.Triple.key -> cipher
(** Same cipher as {!of_triple_des} plus the bitsliced batch kernel
    ({!Bitslice_des}) for long decrypt runs; short runs and encryption
    fall back to the scalar path. Byte-for-byte interchangeable with
    {!of_triple_des} — the differential suite pins this. *)

val batch_threshold : int
(** Minimum run length (in blocks) at which the [_into] decryptors hand a
    run to [decrypt_blocks] instead of the scalar loop — the kernel's
    break-even point. Exposed so callers can account batched work
    deterministically. *)

val ecb_encrypt : cipher -> string -> string
(** @raise Invalid_argument if the length is not a multiple of 8. *)

val ecb_decrypt : cipher -> string -> string

val cbc_encrypt : cipher -> iv:int64 -> string -> string
val cbc_decrypt : cipher -> iv:int64 -> string -> string

val positional_encrypt : cipher -> base:int -> string -> string
(** [base] is the absolute byte offset of the buffer's first byte in the
    document; it must be 8-byte aligned. *)

val positional_decrypt : cipher -> base:int -> string -> string

val positional_decrypt_sub :
  cipher -> base:int -> string -> pos:int -> len:int -> string
(** Decrypt [len] bytes at [pos] inside a ciphertext buffer whose first byte
    has absolute offset [base]; [pos] and [len] must be 8-byte aligned —
    this is the random access the positional scheme enables. *)

val ecb_decrypt_into :
  cipher ->
  src:string ->
  src_pos:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  len:int ->
  unit
(** Decrypt [len] bytes of [src] at [src_pos] straight into [dst] at
    [dst_pos], with no intermediate allocation. [len] must be a multiple
    of 8. [src] and [dst] must not be the same buffer (the batched path
    reads [src] after writing [dst]).
    @raise Invalid_argument on misalignment, an out-of-bounds range, or
    an aliased [src]/[dst]. *)

val cbc_decrypt_into :
  cipher ->
  iv:int64 ->
  src:string ->
  src_pos:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  len:int ->
  unit
(** CBC counterpart of {!ecb_decrypt_into}. [src_pos] must be 8-byte
    aligned within the chunk ciphertext: the chaining value for the first
    block is [iv] when [src_pos = 0] and the previous cipher block (read
    from [src] at [src_pos - 8]) otherwise, so a chunk can be decrypted in
    independent slices. *)

val positional_decrypt_into :
  cipher ->
  base:int ->
  src:string ->
  src_pos:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  len:int ->
  unit
(** Positional counterpart of {!ecb_decrypt_into}. [base] is the absolute
    document offset of [src.[src_pos]] (not of the buffer start) and must
    be 8-byte aligned. *)

val pad : string -> string
(** ISO/IEC 7816-4: append 0x80 then zeros up to a multiple of 8 (always
    appends at least one byte). *)

val unpad : string -> string
(** @raise Invalid_argument on malformed padding. *)
