type scheme = Ecb | Cbc_sha | Cbc_shac | Ecb_mht

exception Integrity_failure of string
exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let scheme_to_string = function
  | Ecb -> "ECB"
  | Cbc_sha -> "CBC-SHA"
  | Cbc_shac -> "CBC-SHAC"
  | Ecb_mht -> "ECB-MHT"

let scheme_of_string = function
  | "ECB" -> Some Ecb
  | "CBC-SHA" -> Some Cbc_sha
  | "CBC-SHAC" -> Some Cbc_shac
  | "ECB-MHT" -> Some Ecb_mht
  | _ -> None

let all_schemes = [ Ecb; Cbc_sha; Cbc_shac; Ecb_mht ]

let scheme_byte = function Ecb -> 0 | Cbc_sha -> 1 | Cbc_shac -> 2 | Ecb_mht -> 3

let scheme_of_byte = function
  | 0 -> Ecb
  | 1 -> Cbc_sha
  | 2 -> Cbc_shac
  | 3 -> Ecb_mht
  | b -> corrupt "unknown scheme byte %d" b

type t = {
  scheme : scheme;
  chunk_size : int;
  fragment_size : int;
  payload_len : int;
  chunks : string array;  (* ciphertext, each exactly chunk_size bytes *)
  digests : string array;  (* encrypted digest blobs, "" for Ecb *)
}

let chunk_size t = t.chunk_size
let fragment_size t = t.fragment_size
let fragments_per_chunk t = t.chunk_size / t.fragment_size
let scheme t = t.scheme
let payload_length t = t.payload_len
let chunk_count t = Array.length t.chunks
let ciphertext_bytes t = Array.length t.chunks * t.chunk_size

let digest_bytes t =
  Array.fold_left (fun acc d -> acc + String.length d) 0 t.digests

(* Encrypted digests live in a disjoint position space so their blocks can
   never be confused with payload blocks. *)
let digest_blob_size = 24 (* 20-byte SHA-1 padded to three DES blocks *)
let digest_position_base chunk = (1 lsl 40) + (chunk * digest_blob_size)

let magic = "XACR1"
let header_size = String.length magic + 1 + 4 + 4 + 8

let be_bytes value width =
  String.init width (fun i -> Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

let be_value s pos width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Every digest binds the container geometry, so header tampering (e.g.
   truncating the payload length) is detected like any other corruption. *)
let header_tag t =
  be_bytes (scheme_byte t.scheme) 1
  ^ be_bytes t.chunk_size 4 ^ be_bytes t.fragment_size 4
  ^ be_bytes t.payload_len 8

let chunk_payload_digest t ~chunk ~data =
  (* fed incrementally: concatenating would copy the whole chunk per digest *)
  let ctx = Sha1.init () in
  Sha1.feed ctx (header_tag t);
  Sha1.feed ctx (be_bytes chunk 8);
  Sha1.feed ctx data;
  Sha1.finalize ctx

let expected_digest_of_plain t ~chunk ~plain = chunk_payload_digest t ~chunk ~data:plain
let expected_digest_of_cipher t ~chunk ~cipher = chunk_payload_digest t ~chunk ~data:cipher

let fragment_leaf_hash_sub t ~chunk ~fragment ~cipher ~pos ~len =
  ignore t;
  let ctx = Sha1.init () in
  Sha1.feed ctx (be_bytes chunk 4);
  Sha1.feed ctx (be_bytes fragment 4);
  Sha1.feed_sub ctx cipher ~pos ~len;
  Sha1.finalize ctx

let fragment_leaf_hash t ~chunk ~fragment ~cipher =
  fragment_leaf_hash_sub t ~chunk ~fragment ~cipher ~pos:0
    ~len:(String.length cipher)

let seal_root t ~chunk ~root = chunk_payload_digest t ~chunk ~data:root

let mht_root t ~chunk ~cipher =
  let m = fragments_per_chunk t in
  let leaves =
    Array.init m (fun i ->
        fragment_leaf_hash_sub t ~chunk ~fragment:i ~cipher
          ~pos:(i * t.fragment_size) ~len:t.fragment_size)
  in
  Merkle.root_of_leaves leaves

let clear_digest t ~key:_ ~chunk ~plain ~cipher =
  match t.scheme with
  | Ecb -> ""
  | Cbc_sha -> expected_digest_of_plain t ~chunk ~plain
  | Cbc_shac -> expected_digest_of_cipher t ~chunk ~cipher
  | Ecb_mht -> seal_root t ~chunk ~root:(mht_root t ~chunk ~cipher)

let encrypt_digest ~key ~chunk digest =
  if digest = "" then ""
  else begin
    let padded = digest ^ String.make (digest_blob_size - String.length digest) '\000' in
    Modes.positional_encrypt (Modes.of_triple_des key)
      ~base:(digest_position_base chunk) padded
  end

(* Blob-taking variant: over the wire the digest arrives from an untrusted
   terminal, so its size is validated as an integrity property, not assumed. *)
let decrypt_digest_blob ~key ~chunk blob =
  if String.length blob <> digest_blob_size then
    raise
      (Integrity_failure
         (Printf.sprintf "chunk %d: digest blob of %d bytes, expected %d" chunk
            (String.length blob) digest_blob_size));
  let plain =
    Modes.positional_decrypt (Modes.of_triple_des key)
      ~base:(digest_position_base chunk) blob
  in
  String.sub plain 0 Sha1.digest_size

let decrypt_digest t ~key chunk =
  match t.digests.(chunk) with
  | "" -> invalid_arg "Secure_container.decrypt_digest: scheme has no digests"
  | blob -> decrypt_digest_blob ~key ~chunk blob

let encrypt ?(chunk_size = 2048) ?(fragment_size = 256) ~scheme ~key payload =
  if chunk_size mod 8 <> 0 || fragment_size mod 8 <> 0 then
    invalid_arg "Secure_container.encrypt: sizes must be multiples of 8";
  if chunk_size mod fragment_size <> 0
     || not (is_power_of_two (chunk_size / fragment_size)) then
    invalid_arg
      "Secure_container.encrypt: chunk/fragment ratio must be a power of two";
  let payload_len = String.length payload in
  let nchunks = max 1 ((payload_len + chunk_size - 1) / chunk_size) in
  let padded = payload ^ String.make ((nchunks * chunk_size) - payload_len) '\000' in
  let cipher = Modes.of_triple_des key in
  let t =
    {
      scheme;
      chunk_size;
      fragment_size;
      payload_len;
      chunks = Array.make nchunks "";
      digests = Array.make nchunks "";
    }
  in
  for i = 0 to nchunks - 1 do
    let plain = String.sub padded (i * chunk_size) chunk_size in
    let encrypted =
      match scheme with
      | Ecb | Ecb_mht ->
          Modes.positional_encrypt cipher ~base:(i * chunk_size) plain
      | Cbc_sha | Cbc_shac ->
          Modes.cbc_encrypt cipher ~iv:(Int64.of_int i) plain
    in
    t.chunks.(i) <- encrypted;
    t.digests.(i) <-
      encrypt_digest ~key ~chunk:i
        (clear_digest t ~key ~chunk:i ~plain ~cipher:encrypted)
  done;
  t

let to_bytes t =
  let b = Buffer.create (header_size + ciphertext_bytes t + digest_bytes t) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (scheme_byte t.scheme));
  Buffer.add_string b (be_bytes t.chunk_size 4);
  Buffer.add_string b (be_bytes t.fragment_size 4);
  Buffer.add_string b (be_bytes t.payload_len 8);
  Array.iteri
    (fun i chunk ->
      Buffer.add_string b chunk;
      Buffer.add_string b t.digests.(i))
    t.chunks;
  Buffer.contents b

let of_bytes s =
  if String.length s < header_size then corrupt "truncated header";
  if String.sub s 0 (String.length magic) <> magic then corrupt "bad magic";
  let scheme = scheme_of_byte (Char.code s.[String.length magic]) in
  let chunk_size = be_value s 6 4 in
  let fragment_size = be_value s 10 4 in
  let payload_len = be_value s 14 8 in
  if
    chunk_size <= 0 || fragment_size <= 0
    || chunk_size mod 8 <> 0 || fragment_size mod 8 <> 0
    || chunk_size mod fragment_size <> 0
    || not (is_power_of_two (chunk_size / fragment_size))
  then corrupt "bad chunk/fragment sizes";
  (* an 8-byte field can overflow the OCaml integer into a negative value,
     and the payload can never exceed its own container: both would
     otherwise turn into out-of-bounds accesses during decryption *)
  if payload_len < 0 || payload_len > String.length s then
    corrupt "implausible payload length";
  let nchunks = max 1 ((payload_len + chunk_size - 1) / chunk_size) in
  let blob = if scheme = Ecb then 0 else digest_blob_size in
  let expected = header_size + (nchunks * (chunk_size + blob)) in
  if String.length s <> expected then corrupt "bad total length";
  let chunks =
    Array.init nchunks (fun i ->
        String.sub s (header_size + (i * (chunk_size + blob))) chunk_size)
  in
  let digests =
    Array.init nchunks (fun i ->
        if blob = 0 then ""
        else String.sub s (header_size + (i * (chunk_size + blob)) + chunk_size) blob)
  in
  { scheme; chunk_size; fragment_size; payload_len; chunks; digests }

let of_bytes_result s =
  match of_bytes s with t -> Ok t | exception Corrupt msg -> Error msg

(* Caps on remotely-advertised geometry: a terminal's handshake is hostile
   input, and [geometry] allocates [chunk_count] array slots, so both are
   bounded well above any plausible document. *)
let max_remote_chunks = 1 lsl 22

let geometry ~scheme ~chunk_size ~fragment_size ~payload_length ~chunk_count =
  if
    chunk_size <= 0 || fragment_size <= 0
    || chunk_size mod 8 <> 0
    || fragment_size mod 8 <> 0
    || chunk_size mod fragment_size <> 0
    || not (is_power_of_two (chunk_size / fragment_size))
  then Error "bad chunk/fragment sizes"
  else if payload_length < 0 then Error "negative payload length"
  else if chunk_count <> max 1 ((payload_length + chunk_size - 1) / chunk_size)
  then Error "chunk count disagrees with payload length"
  else if chunk_count > max_remote_chunks then Error "implausible chunk count"
  else
    Ok
      {
        scheme;
        chunk_size;
        fragment_size;
        payload_len = payload_length;
        chunks = Array.make chunk_count "";
        digests = Array.make chunk_count "";
      }

let chunk_ciphertext t i = t.chunks.(i)
let encrypted_digest t i = t.digests.(i)

let fragment_ciphertext t ~chunk ~fragment =
  String.sub t.chunks.(chunk) (fragment * t.fragment_size) t.fragment_size

let substitute_block t ~chunk ~block replacement =
  if String.length replacement <> 8 then
    invalid_arg "Secure_container.substitute_block: need 8 bytes";
  let chunks = Array.copy t.chunks in
  let b = Bytes.of_string chunks.(chunk) in
  Bytes.blit_string replacement 0 b (8 * block) 8;
  chunks.(chunk) <- Bytes.to_string b;
  { t with chunks }

let decrypt_chunk_cipher_into t ~key ~chunk ~cipher ~dst =
  if String.length cipher <> t.chunk_size then
    raise
      (Integrity_failure
         (Printf.sprintf "chunk %d: ciphertext of %d bytes, expected %d" chunk
            (String.length cipher) t.chunk_size));
  if Bytes.length dst < t.chunk_size then
    invalid_arg "Secure_container.decrypt_chunk_cipher_into: destination too small";
  let c = Modes.of_triple_des key in
  match t.scheme with
  | Ecb | Ecb_mht ->
      Modes.positional_decrypt_into c ~base:(chunk * t.chunk_size) ~src:cipher
        ~src_pos:0 ~dst ~dst_pos:0 ~len:t.chunk_size
  | Cbc_sha | Cbc_shac ->
      Modes.cbc_decrypt_into c ~iv:(Int64.of_int chunk) ~src:cipher ~src_pos:0
        ~dst ~dst_pos:0 ~len:t.chunk_size

let decrypt_chunk_cipher t ~key ~chunk ~cipher =
  let dst = Bytes.create t.chunk_size in
  decrypt_chunk_cipher_into t ~key ~chunk ~cipher ~dst;
  Bytes.unsafe_to_string dst

let decrypt_chunk t ~key i =
  decrypt_chunk_cipher t ~key ~chunk:i ~cipher:t.chunks.(i)

let decrypt_fragment t ~key ~chunk ~fragment ~cipher =
  match t.scheme with
  | Cbc_sha | Cbc_shac ->
      invalid_arg "Secure_container.decrypt_fragment: CBC has no random access"
  | Ecb | Ecb_mht ->
      Modes.positional_decrypt (Modes.of_triple_des key)
        ~base:((chunk * t.chunk_size) + (fragment * t.fragment_size))
        cipher

let verify_chunk t ~key i ~plain =
  let expected =
    match t.scheme with
    | Ecb -> None (* no digests to check *)
    | Cbc_sha -> Some (expected_digest_of_plain t ~chunk:i ~plain)
    | Cbc_shac -> Some (expected_digest_of_cipher t ~chunk:i ~cipher:t.chunks.(i))
    | Ecb_mht ->
        Some (seal_root t ~chunk:i ~root:(mht_root t ~chunk:i ~cipher:t.chunks.(i)))
  in
  match expected with
  | None -> ()
  | Some expected ->
      if not (String.equal expected (decrypt_digest t ~key i)) then
        raise (Integrity_failure (Printf.sprintf "chunk %d digest mismatch" i))

let decrypt_all t ~key ~verify =
  let b = Buffer.create (ciphertext_bytes t) in
  for i = 0 to chunk_count t - 1 do
    let plain = decrypt_chunk t ~key i in
    if verify then verify_chunk t ~key i ~plain;
    Buffer.add_string b plain
  done;
  String.sub (Buffer.contents b) 0 t.payload_len
