type scheme = Ecb | Cbc_sha | Cbc_shac | Ecb_mht | Aes_ctr

exception Integrity_failure of string
exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let scheme_to_string = function
  | Ecb -> "ECB"
  | Cbc_sha -> "CBC-SHA"
  | Cbc_shac -> "CBC-SHAC"
  | Ecb_mht -> "ECB-MHT"
  | Aes_ctr -> "AES-CTR"

let scheme_of_string = function
  | "ECB" -> Some Ecb
  | "CBC-SHA" -> Some Cbc_sha
  | "CBC-SHAC" -> Some Cbc_shac
  | "ECB-MHT" -> Some Ecb_mht
  | "AES-CTR" -> Some Aes_ctr
  | _ -> None

let all_schemes = [ Ecb; Cbc_sha; Cbc_shac; Ecb_mht; Aes_ctr ]

let scheme_byte = function
  | Ecb -> 0
  | Cbc_sha -> 1
  | Cbc_shac -> 2
  | Ecb_mht -> 3
  | Aes_ctr -> 4

let scheme_of_byte = function
  | 0 -> Ecb
  | 1 -> Cbc_sha
  | 2 -> Cbc_shac
  | 3 -> Ecb_mht
  | 4 -> Aes_ctr
  | b -> corrupt "unknown scheme byte %d" b

type t = {
  scheme : scheme;
  chunk_size : int;
  fragment_size : int;
  payload_len : int;
  chunks : string array;  (* ciphertext, each exactly chunk_size bytes *)
  digests : string array;  (* encrypted digest blobs, "" for Ecb *)
  generation : int;  (* bumped once per (incremental) republication *)
  key_epoch : int;  (* bumped on document-key rotation *)
  versions : int array;  (* generation at which each chunk was last rewritten *)
  roots : string array;
      (* publisher-side cache of clear MHT roots ("" when absent): lets an
         incremental republish reseal an untouched chunk without re-hashing
         its fragments. Never serialized; terminals reconstruct nothing. *)
}

let chunk_size t = t.chunk_size
let fragment_size t = t.fragment_size
let fragments_per_chunk t = t.chunk_size / t.fragment_size
let scheme t = t.scheme
let payload_length t = t.payload_len
let chunk_count t = Array.length t.chunks
let ciphertext_bytes t = Array.length t.chunks * t.chunk_size

let digest_bytes t =
  Array.fold_left (fun acc d -> acc + String.length d) 0 t.digests

(* Encrypted digests live in a disjoint position space so their blocks can
   never be confused with payload blocks. *)
let digest_blob_size = 24 (* 20-byte SHA-1 padded to three DES blocks *)

(* Per-scheme digest geometry. The DES schemes carry a SHA-1 digest padded
   to DES blocks; AES-CTR carries a SHA-256 digest raw (CTR needs no block
   alignment). Every size-dependent structure — wire frames, dissemination
   deltas, channel cost counters — derives from these two functions. *)
let digest_size_for = function
  | Ecb -> 0
  | Cbc_sha | Cbc_shac | Ecb_mht -> Sha1.digest_size
  | Aes_ctr -> Sha256.digest_size

let digest_blob_size_for = function
  | Ecb -> 0
  | Cbc_sha | Cbc_shac | Ecb_mht -> digest_blob_size
  | Aes_ctr -> Sha256.digest_size

let digest_position_base scheme chunk =
  (1 lsl 40) + (chunk * digest_blob_size_for scheme)

(* The AES-CTR scheme derives its key material from the container's 3DES
   key so every key-handling surface (licenses, rotation, the XLIC format)
   stays scheme-agnostic: they move 24 bytes of raw material and never
   learn which cipher consumes it. *)
let aes_material key =
  let raw = Des.Triple.bytes key in
  let ak =
    Aes.expand (String.sub (Sha256.digest ("xmlac:aes-ctr:key:" ^ raw)) 0 16)
  in
  let nonce =
    String.sub (Sha256.digest ("xmlac:aes-ctr:nonce:" ^ raw)) 0 8
  in
  (ak, nonce)

let magic = "XACR1"
let magic_v2 = "XACR2"
let header_size = String.length magic + 1 + 4 + 4 + 8

(* v2 adds generation (8) and key epoch (2) to the header, and prefixes every
   chunk with its 8-byte version (the generation that last rewrote it). *)
let header_size_v2 = header_size + 8 + 2

let generation t = t.generation
let key_epoch t = t.key_epoch
let chunk_version t i = t.versions.(i)

let be_bytes value width =
  String.init width (fun i -> Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

let be_value s pos width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Every digest binds the container geometry, so header tampering (e.g.
   truncating the payload length) is detected like any other corruption. *)
let header_tag t =
  be_bytes (scheme_byte t.scheme) 1
  ^ be_bytes t.chunk_size 4 ^ be_bytes t.fragment_size 4
  ^ be_bytes t.payload_len 8

let chunk_payload_digest t ~chunk ~data =
  (* fed incrementally: concatenating would copy the whole chunk per digest *)
  match t.scheme with
  | Aes_ctr ->
      let ctx = Sha256.init () in
      Sha256.feed ctx (header_tag t);
      Sha256.feed ctx (be_bytes chunk 8);
      Sha256.feed ctx data;
      Sha256.finalize ctx
  | _ ->
      let ctx = Sha1.init () in
      Sha1.feed ctx (header_tag t);
      Sha1.feed ctx (be_bytes chunk 8);
      Sha1.feed ctx data;
      Sha1.finalize ctx

let expected_digest_of_plain t ~chunk ~plain = chunk_payload_digest t ~chunk ~data:plain
let expected_digest_of_cipher t ~chunk ~cipher = chunk_payload_digest t ~chunk ~data:cipher

let fragment_leaf_hash_sub t ~chunk ~fragment ~cipher ~pos ~len =
  ignore t;
  let ctx = Sha1.init () in
  Sha1.feed ctx (be_bytes chunk 4);
  Sha1.feed ctx (be_bytes fragment 4);
  Sha1.feed_sub ctx cipher ~pos ~len;
  Sha1.finalize ctx

let fragment_leaf_hash t ~chunk ~fragment ~cipher =
  fragment_leaf_hash_sub t ~chunk ~fragment ~cipher ~pos:0
    ~len:(String.length cipher)

let seal_root t ~chunk ~root = chunk_payload_digest t ~chunk ~data:root

let mht_root t ~chunk ~cipher =
  let m = fragments_per_chunk t in
  let leaves =
    Array.init m (fun i ->
        fragment_leaf_hash_sub t ~chunk ~fragment:i ~cipher
          ~pos:(i * t.fragment_size) ~len:t.fragment_size)
  in
  Merkle.root_of_leaves leaves

let clear_digest t ~key:_ ~chunk ~plain ~cipher =
  match t.scheme with
  | Ecb -> ""
  | Cbc_sha -> expected_digest_of_plain t ~chunk ~plain
  | Cbc_shac | Aes_ctr -> expected_digest_of_cipher t ~chunk ~cipher
  | Ecb_mht -> seal_root t ~chunk ~root:(mht_root t ~chunk ~cipher)

let encrypt_digest ~scheme ~key ~chunk digest =
  if digest = "" then ""
  else
    match scheme with
    | Aes_ctr ->
        let ak, nonce = aes_material key in
        Aes.ctr_transform ak ~nonce
          ~stream_pos:(digest_position_base scheme chunk)
          digest
    | _ ->
        let padded =
          digest ^ String.make (digest_blob_size - String.length digest) '\000'
        in
        Modes.positional_encrypt (Modes.of_triple_des key)
          ~base:(digest_position_base scheme chunk)
          padded

(* Blob-taking variant: over the wire the digest arrives from an untrusted
   terminal, so its size is validated as an integrity property, not assumed. *)
let decrypt_digest_blob ~scheme ~key ~chunk blob =
  let expected = digest_blob_size_for scheme in
  if String.length blob <> expected then
    raise
      (Integrity_failure
         (Printf.sprintf "chunk %d: digest blob of %d bytes, expected %d" chunk
            (String.length blob) expected));
  match scheme with
  | Aes_ctr ->
      let ak, nonce = aes_material key in
      Aes.ctr_transform ak ~nonce
        ~stream_pos:(digest_position_base scheme chunk)
        blob
  | _ ->
      let plain =
        Modes.positional_decrypt (Modes.of_triple_des key)
          ~base:(digest_position_base scheme chunk)
          blob
      in
      String.sub plain 0 Sha1.digest_size

let decrypt_digest t ~key chunk =
  match t.digests.(chunk) with
  | "" -> invalid_arg "Secure_container.decrypt_digest: scheme has no digests"
  | blob -> decrypt_digest_blob ~scheme:t.scheme ~key ~chunk blob

(* The MHT root of a chunk depends only on the chunk index and ciphertext
   (not the header tag), so a cached root survives header-only changes. *)
let clear_root t ~chunk ~cipher =
  match t.scheme with Ecb_mht -> mht_root t ~chunk ~cipher | _ -> ""

let encrypt_chunk_payload t ~key ~cipher ~chunk plain =
  match t.scheme with
  | Ecb | Ecb_mht ->
      Modes.positional_encrypt cipher ~base:(chunk * t.chunk_size) plain
  | Cbc_sha | Cbc_shac -> Modes.cbc_encrypt cipher ~iv:(Int64.of_int chunk) plain
  | Aes_ctr ->
      let ak, nonce = aes_material key in
      Aes.ctr_transform ak ~nonce ~stream_pos:(chunk * t.chunk_size) plain

(* Digest of a chunk, reusing the cached clear MHT root when available so
   resealing an untouched chunk costs one small hash, not a tree rebuild. *)
let seal_chunk t ~key ~chunk ~plain ~encrypted =
  let digest =
    match t.scheme with
    | Ecb_mht when t.roots.(chunk) <> "" ->
        seal_root t ~chunk ~root:t.roots.(chunk)
    | _ -> clear_digest t ~key ~chunk ~plain ~cipher:encrypted
  in
  encrypt_digest ~scheme:t.scheme ~key ~chunk digest

let encrypt ?(chunk_size = 2048) ?(fragment_size = 256) ?(generation = 0)
    ?(key_epoch = 0) ~scheme ~key payload =
  if chunk_size mod 8 <> 0 || fragment_size mod 8 <> 0 then
    invalid_arg "Secure_container.encrypt: sizes must be multiples of 8";
  if chunk_size mod fragment_size <> 0
     || not (is_power_of_two (chunk_size / fragment_size)) then
    invalid_arg
      "Secure_container.encrypt: chunk/fragment ratio must be a power of two";
  if generation < 0 || key_epoch < 0 || key_epoch > 0xFFFF then
    invalid_arg "Secure_container.encrypt: bad generation or key epoch";
  let payload_len = String.length payload in
  let nchunks = max 1 ((payload_len + chunk_size - 1) / chunk_size) in
  let padded = payload ^ String.make ((nchunks * chunk_size) - payload_len) '\000' in
  let cipher = Modes.of_triple_des key in
  let t =
    {
      scheme;
      chunk_size;
      fragment_size;
      payload_len;
      chunks = Array.make nchunks "";
      digests = Array.make nchunks "";
      generation;
      key_epoch;
      versions = Array.make nchunks generation;
      roots = Array.make nchunks "";
    }
  in
  for i = 0 to nchunks - 1 do
    let plain = String.sub padded (i * chunk_size) chunk_size in
    let encrypted = encrypt_chunk_payload t ~key ~cipher ~chunk:i plain in
    t.chunks.(i) <- encrypted;
    t.roots.(i) <- clear_root t ~chunk:i ~cipher:encrypted;
    t.digests.(i) <- seal_chunk t ~key ~chunk:i ~plain ~encrypted
  done;
  t

(* Incremental republication: re-encrypt only the chunks whose padded
   plaintext actually moved, reuse everything else physically, and bump the
   generation. Returns the new container and the (sorted) list of rewritten
   chunks — by construction the chunks [Skip_index.Update] predicts.

   When the payload length changes, every chunk digest changes too (the
   digest binds the header, and the header binds the payload length): clean
   chunks are {e resealed} — their ciphertext, and for ECB-MHT their cached
   subtree hashes, are reused — which is hashing work only, never payload
   re-encryption. *)
let reencrypt t ~key ~old_payload ~payload =
  if String.length old_payload <> t.payload_len then
    invalid_arg "Secure_container.reencrypt: old payload length mismatch";
  if Array.exists (fun c -> c = "") t.chunks then
    invalid_arg "Secure_container.reencrypt: container has no ciphertext";
  let chunk_size = t.chunk_size in
  let old_len = t.payload_len and new_len = String.length payload in
  let old_chunks = Array.length t.chunks in
  let nchunks = max 1 ((new_len + chunk_size - 1) / chunk_size) in
  let padded = payload ^ String.make ((nchunks * chunk_size) - new_len) '\000' in
  let old_padded =
    old_payload ^ String.make ((old_chunks * chunk_size) - old_len) '\000'
  in
  let generation = t.generation + 1 in
  let dirty = Array.make nchunks false in
  for i = 0 to nchunks - 1 do
    if i >= old_chunks then dirty.(i) <- true
    else
      let base = i * chunk_size in
      let rec differs j =
        j < chunk_size && (old_padded.[base + j] <> padded.[base + j] || differs (j + 1))
      in
      if differs 0 then dirty.(i) <- true
  done;
  (* shrinking truncates trailing chunks: the last surviving chunk is
     re-sealed even when its bytes happen to be unchanged (mirrors the
     [Update] cost rule, so predicted and actual chunk sets coincide) *)
  if new_len < old_len && new_len > 0 then dirty.((new_len - 1) / chunk_size) <- true;
  let t' =
    {
      t with
      payload_len = new_len;
      chunks = Array.make nchunks "";
      digests = Array.make nchunks "";
      generation;
      versions = Array.make nchunks generation;
      roots = Array.make nchunks "";
    }
  in
  let cipher = Modes.of_triple_des key in
  let reseal_all = new_len <> old_len in
  let rewritten = ref [] in
  for i = nchunks - 1 downto 0 do
    let plain () = String.sub padded (i * chunk_size) chunk_size in
    if dirty.(i) then begin
      rewritten := i :: !rewritten;
      let plain = plain () in
      let encrypted = encrypt_chunk_payload t' ~key ~cipher ~chunk:i plain in
      t'.chunks.(i) <- encrypted;
      t'.roots.(i) <- clear_root t' ~chunk:i ~cipher:encrypted;
      t'.digests.(i) <- seal_chunk t' ~key ~chunk:i ~plain ~encrypted
    end
    else begin
      (* physical reuse: unchanged ciphertext (and subtree hashes) are the
         same strings, so a delta only ever carries dirty chunks *)
      t'.chunks.(i) <- t.chunks.(i);
      t'.roots.(i) <- t.roots.(i);
      t'.versions.(i) <- t.versions.(i);
      t'.digests.(i) <-
        (if reseal_all then seal_chunk t' ~key ~chunk:i ~plain:(plain ()) ~encrypted:t.chunks.(i)
         else t.digests.(i))
    end
  done;
  (t', !rewritten)

(* A pristine (generation 0, epoch 0) container serializes in the original
   XACR1 layout, so every byte stream the seed produced is still produced;
   any versioned state promotes the stream to XACR2. *)
let is_v1 t =
  t.generation = 0 && t.key_epoch = 0 && Array.for_all (( = ) 0) t.versions

let to_bytes t =
  let v1 = is_v1 t in
  let per_chunk_version = if v1 then 0 else 8 in
  let b =
    Buffer.create
      ((if v1 then header_size else header_size_v2)
      + ciphertext_bytes t + digest_bytes t
      + (Array.length t.chunks * per_chunk_version))
  in
  Buffer.add_string b (if v1 then magic else magic_v2);
  Buffer.add_char b (Char.chr (scheme_byte t.scheme));
  Buffer.add_string b (be_bytes t.chunk_size 4);
  Buffer.add_string b (be_bytes t.fragment_size 4);
  Buffer.add_string b (be_bytes t.payload_len 8);
  if not v1 then begin
    Buffer.add_string b (be_bytes t.generation 8);
    Buffer.add_string b (be_bytes t.key_epoch 2)
  end;
  Array.iteri
    (fun i chunk ->
      if not v1 then Buffer.add_string b (be_bytes t.versions.(i) 8);
      Buffer.add_string b chunk;
      Buffer.add_string b t.digests.(i))
    t.chunks;
  Buffer.contents b

let of_bytes s =
  let magic_len = String.length magic in
  if String.length s < magic_len then corrupt "truncated header";
  let version =
    match String.sub s 0 magic_len with
    | m when m = magic -> 1
    | m when m = magic_v2 -> 2
    | m when String.sub m 0 4 = "XACR" && m.[4] > '2' && m.[4] <= '9' ->
        (* a container from a future writer, not garbage: tell the operator
           to upgrade rather than claiming the file is corrupt *)
        corrupt "unsupported container version %c (this build reads up to 2)"
          m.[4]
    | _ -> corrupt "bad magic"
  in
  let hsize = if version = 1 then header_size else header_size_v2 in
  if String.length s < hsize then corrupt "truncated header";
  let scheme = scheme_of_byte (Char.code s.[magic_len]) in
  let chunk_size = be_value s 6 4 in
  let fragment_size = be_value s 10 4 in
  let payload_len = be_value s 14 8 in
  if
    chunk_size <= 0 || fragment_size <= 0
    || chunk_size mod 8 <> 0 || fragment_size mod 8 <> 0
    || chunk_size mod fragment_size <> 0
    || not (is_power_of_two (chunk_size / fragment_size))
  then corrupt "bad chunk/fragment sizes";
  (* an 8-byte field can overflow the OCaml integer into a negative value,
     and the payload can never exceed its own container: both would
     otherwise turn into out-of-bounds accesses during decryption *)
  if payload_len < 0 || payload_len > String.length s then
    corrupt "implausible payload length";
  let generation = if version = 1 then 0 else be_value s 22 8 in
  let key_epoch = if version = 1 then 0 else be_value s 30 2 in
  if generation < 0 then corrupt "implausible generation";
  let nchunks = max 1 ((payload_len + chunk_size - 1) / chunk_size) in
  let blob = digest_blob_size_for scheme in
  let version_bytes = if version = 1 then 0 else 8 in
  let stride = version_bytes + chunk_size + blob in
  let expected = hsize + (nchunks * stride) in
  if String.length s <> expected then corrupt "bad total length";
  let versions =
    Array.init nchunks (fun i ->
        if version = 1 then 0
        else begin
          let v = be_value s (hsize + (i * stride)) 8 in
          if v < 0 || v > generation then
            corrupt "chunk %d version exceeds generation" i;
          v
        end)
  in
  let chunks =
    Array.init nchunks (fun i ->
        String.sub s (hsize + (i * stride) + version_bytes) chunk_size)
  in
  let digests =
    Array.init nchunks (fun i ->
        if blob = 0 then ""
        else
          String.sub s
            (hsize + (i * stride) + version_bytes + chunk_size)
            blob)
  in
  {
    scheme;
    chunk_size;
    fragment_size;
    payload_len;
    chunks;
    digests;
    generation;
    key_epoch;
    versions;
    roots = Array.make nchunks "";
  }

let of_bytes_result s =
  match of_bytes s with t -> Ok t | exception Corrupt msg -> Error msg

(* Caps on remotely-advertised geometry: a terminal's handshake is hostile
   input, and [geometry] allocates [chunk_count] array slots, so both are
   bounded well above any plausible document. *)
let max_remote_chunks = 1 lsl 22

let geometry ?(generation = 0) ?(key_epoch = 0) ~scheme ~chunk_size
    ~fragment_size ~payload_length ~chunk_count () =
  if
    chunk_size <= 0 || fragment_size <= 0
    || chunk_size mod 8 <> 0
    || fragment_size mod 8 <> 0
    || chunk_size mod fragment_size <> 0
    || not (is_power_of_two (chunk_size / fragment_size))
  then Error "bad chunk/fragment sizes"
  else if payload_length < 0 then Error "negative payload length"
  else if chunk_count <> max 1 ((payload_length + chunk_size - 1) / chunk_size)
  then Error "chunk count disagrees with payload length"
  else if chunk_count > max_remote_chunks then Error "implausible chunk count"
  else if generation < 0 || key_epoch < 0 || key_epoch > 0xFFFF then
    Error "bad generation or key epoch"
  else
    Ok
      {
        scheme;
        chunk_size;
        fragment_size;
        payload_len = payload_length;
        chunks = Array.make chunk_count "";
        digests = Array.make chunk_count "";
        generation;
        key_epoch;
        versions = Array.make chunk_count 0;
        roots = Array.make chunk_count "";
      }

(* Keyless republication: graft new ciphertext/digest material onto an
   existing container view. This is what a terminal (mirror) does when it
   applies a chunk delta — no secrets involved, the SOE's digest checks
   remain the integrity boundary. Every structural rule of [of_bytes] is
   re-validated so a hostile delta cannot forge an inconsistent container. *)
let patch t ~payload_length ~generation ~key_epoch ~full ~reseals =
  let exception Reject of string in
  let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt in
  try
    let chunk_size = t.chunk_size in
    let blob = digest_blob_size_for t.scheme in
    if payload_length < 0 then reject "negative payload length";
    if generation < t.generation then
      reject "generation %d moves backwards from %d" generation t.generation;
    if key_epoch < t.key_epoch || key_epoch > 0xFFFF then
      reject "key epoch %d moves backwards from %d" key_epoch t.key_epoch;
    let nchunks = max 1 ((payload_length + chunk_size - 1) / chunk_size) in
    if nchunks > max_remote_chunks then reject "implausible chunk count";
    let old_n = Array.length t.chunks in
    let chunks = Array.make nchunks "" in
    let digests = Array.make nchunks "" in
    let versions = Array.make nchunks 0 in
    let carried = min old_n nchunks in
    Array.blit t.chunks 0 chunks 0 carried;
    Array.blit t.digests 0 digests 0 carried;
    Array.blit t.versions 0 versions 0 carried;
    List.iter
      (fun (i, version, cipher, digest) ->
        if i < 0 || i >= nchunks then reject "chunk %d outside new geometry" i;
        if String.length cipher <> chunk_size then
          reject "chunk %d ciphertext of %d bytes, expected %d" i
            (String.length cipher) chunk_size;
        if String.length digest <> blob then
          reject "chunk %d digest blob of %d bytes, expected %d" i
            (String.length digest) blob;
        if version < 0 || version > generation then
          reject "chunk %d version %d exceeds generation %d" i version generation;
        chunks.(i) <- cipher;
        digests.(i) <- digest;
        versions.(i) <- version)
      full;
    List.iter
      (fun (i, digest) ->
        if i < 0 || i >= nchunks then reject "reseal %d outside new geometry" i;
        if blob = 0 then reject "reseal under a digest-less scheme";
        if String.length digest <> blob then
          reject "reseal %d digest blob of %d bytes, expected %d" i
            (String.length digest) blob;
        digests.(i) <- digest)
      reseals;
    Array.iteri
      (fun i c -> if c = "" then reject "chunk %d has no ciphertext" i)
      chunks;
    Ok
      {
        t with
        payload_len = payload_length;
        chunks;
        digests;
        generation;
        key_epoch;
        versions;
        (* grafted ciphertext invalidates any cached subtree hashes *)
        roots = Array.make nchunks "";
      }
  with Reject msg -> Error msg

let chunk_ciphertext t i = t.chunks.(i)
let encrypted_digest t i = t.digests.(i)

let fragment_ciphertext t ~chunk ~fragment =
  String.sub t.chunks.(chunk) (fragment * t.fragment_size) t.fragment_size

let substitute_block t ~chunk ~block replacement =
  if String.length replacement <> 8 then
    invalid_arg "Secure_container.substitute_block: need 8 bytes";
  let chunks = Array.copy t.chunks in
  let b = Bytes.of_string chunks.(chunk) in
  Bytes.blit_string replacement 0 b (8 * block) 8;
  chunks.(chunk) <- Bytes.to_string b;
  { t with chunks }

let decrypt_chunk_cipher_into ?ctx t ~key ~chunk ~cipher ~dst =
  if String.length cipher <> t.chunk_size then
    raise
      (Integrity_failure
         (Printf.sprintf "chunk %d: ciphertext of %d bytes, expected %d" chunk
            (String.length cipher) t.chunk_size));
  if Bytes.length dst < t.chunk_size then
    invalid_arg "Secure_container.decrypt_chunk_cipher_into: destination too small";
  match t.scheme with
  | Aes_ctr ->
      let ak, nonce = aes_material key in
      Aes.ctr_xor_into ak ~nonce ~src:cipher ~src_pos:0 ~dst ~dst_pos:0
        ~len:t.chunk_size ~stream_pos:(chunk * t.chunk_size)
  | _ -> (
      (* an engine-selected cipher (e.g. the bitsliced one) can be passed
         in so a session builds it once instead of per chunk *)
      let c = match ctx with Some c -> c | None -> Modes.of_triple_des key in
      match t.scheme with
      | Ecb | Ecb_mht ->
          Modes.positional_decrypt_into c ~base:(chunk * t.chunk_size)
            ~src:cipher ~src_pos:0 ~dst ~dst_pos:0 ~len:t.chunk_size
      | Cbc_sha | Cbc_shac ->
          Modes.cbc_decrypt_into c ~iv:(Int64.of_int chunk) ~src:cipher
            ~src_pos:0 ~dst ~dst_pos:0 ~len:t.chunk_size
      | Aes_ctr -> assert false)

let decrypt_chunk_cipher ?ctx t ~key ~chunk ~cipher =
  let dst = Bytes.create t.chunk_size in
  decrypt_chunk_cipher_into ?ctx t ~key ~chunk ~cipher ~dst;
  Bytes.unsafe_to_string dst

let decrypt_chunk t ~key i =
  decrypt_chunk_cipher t ~key ~chunk:i ~cipher:t.chunks.(i)

let decrypt_fragment t ~key ~chunk ~fragment ~cipher =
  match t.scheme with
  | Cbc_sha | Cbc_shac ->
      invalid_arg "Secure_container.decrypt_fragment: CBC has no random access"
  | Ecb | Ecb_mht ->
      Modes.positional_decrypt (Modes.of_triple_des key)
        ~base:((chunk * t.chunk_size) + (fragment * t.fragment_size))
        cipher
  | Aes_ctr ->
      let ak, nonce = aes_material key in
      Aes.ctr_transform ak ~nonce
        ~stream_pos:((chunk * t.chunk_size) + (fragment * t.fragment_size))
        cipher

let verify_chunk t ~key i ~plain =
  let expected =
    match t.scheme with
    | Ecb -> None (* no digests to check *)
    | Cbc_sha -> Some (expected_digest_of_plain t ~chunk:i ~plain)
    | Cbc_shac | Aes_ctr ->
        Some (expected_digest_of_cipher t ~chunk:i ~cipher:t.chunks.(i))
    | Ecb_mht ->
        Some (seal_root t ~chunk:i ~root:(mht_root t ~chunk:i ~cipher:t.chunks.(i)))
  in
  match expected with
  | None -> ()
  | Some expected ->
      (* constant-time: the decrypted digest derives from the key *)
      if not (Ct.equal expected (decrypt_digest t ~key i)) then
        raise (Integrity_failure (Printf.sprintf "chunk %d digest mismatch" i))

let decrypt_all t ~key ~verify =
  let b = Buffer.create (ciphertext_bytes t) in
  for i = 0 to chunk_count t - 1 do
    let plain = decrypt_chunk t ~key i in
    if verify then verify_chunk t ~key i ~plain;
    Buffer.add_string b plain
  done;
  String.sub (Buffer.contents b) 0 t.payload_len
