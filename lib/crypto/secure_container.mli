(** The encrypted document container (paper Section 6 and Appendix A).

    A payload (here: a skip-index-encoded XML document) is split into
    {e chunks} (default 2 KB), divided into {e fragments} (default 256 B),
    themselves made of 8-byte cipher {e blocks}. Four schemes are compared
    in the paper's Figure 11, plus one modern addition:

    - [Ecb]: positional-ECB encryption, no integrity (confidentiality only);
    - [Cbc_sha]: CBC per chunk + SHA-1 digest of the {e plaintext} chunk —
      verifying any byte forces the SOE to fetch and decrypt the whole chunk;
    - [Cbc_shac]: CBC + SHA-1 digest of the {e ciphertext} chunk — the SOE
      hashes ciphertext from the accessed position to the chunk end, the
      terminal supplying the intermediate hash state of the prefix;
    - [Ecb_mht]: the paper's scheme — positional ECB + a Merkle hash tree
      over ciphertext fragments, allowing verified random access at
      fragment granularity;
    - [Aes_ctr]: AES-128-CTR + SHA-256 ciphertext digest — the post-paper
      scheme proving the stack is scheme-agnostic end to end. The keystream
      is addressed by absolute document offset (byte-granular random
      access, like positional ECB without the alignment rules), the chunk
      digest is SHA-256 over ciphertext, and its 32-byte blob is
      CTR-encrypted in the same disjoint position space the DES schemes
      use. Key material is derived from the container's 24-byte key, so
      licenses and rotation stay cipher-blind.

    Chunk digests embed the chunk index, and every digest is encrypted, so
    block/chunk substitutions and tampering are detectable by the SOE. *)

type scheme = Ecb | Cbc_sha | Cbc_shac | Ecb_mht | Aes_ctr

val scheme_to_string : scheme -> string
val scheme_of_string : string -> scheme option
val all_schemes : scheme list

val digest_size_for : scheme -> int
(** Clear digest size: 0 for [Ecb], 20 (SHA-1) for the paper schemes, 32
    (SHA-256) for [Aes_ctr]. *)

val digest_blob_size_for : scheme -> int
(** Encrypted digest blob size as serialized and sent over the wire: 0 for
    [Ecb], 24 (SHA-1 padded to DES blocks) for the paper schemes, 32 for
    [Aes_ctr] (CTR needs no padding). *)

type t

val chunk_size : t -> int
val fragment_size : t -> int
val fragments_per_chunk : t -> int
val scheme : t -> scheme
val payload_length : t -> int
(** Length of the original plaintext payload in bytes. *)

val chunk_count : t -> int
val ciphertext_bytes : t -> int
(** Total encrypted payload size (excludes digests). *)

val generation : t -> int
(** Publication generation: 0 for a freshly encrypted container, bumped by
    one per (incremental) republication. A generation-0, epoch-0 container
    serializes in the original [XACR1] layout; anything else as [XACR2]. *)

val key_epoch : t -> int
(** Document-key epoch: bumped on key rotation (revocation). Licenses carry
    the epoch their key belongs to; a pre-rotation license fails typed. *)

val chunk_version : t -> int -> int
(** The generation at which chunk [i] was last rewritten ([<= generation]).
    The per-chunk version vector is what lets a server compute the delta
    against any older generation from the current container alone. *)

val digest_bytes : t -> int
(** Total size of the (encrypted) chunk digests. *)

val encrypt :
  ?chunk_size:int ->
  ?fragment_size:int ->
  ?generation:int ->
  ?key_epoch:int ->
  scheme:scheme ->
  key:Des.Triple.key ->
  string ->
  t
(** Build a container. [chunk_size] (default 2048) must be a multiple of
    [fragment_size] (default 256) with a power-of-two ratio; both must be
    multiples of 8. [generation] and [key_epoch] default to 0 (a pristine
    publication); a key rotation republishes with both bumped. *)

val reencrypt :
  t ->
  key:Des.Triple.key ->
  old_payload:string ->
  payload:string ->
  t * int list
(** Incremental republication: produce the container of [payload] at
    generation [generation t + 1], re-encrypting {e only} the chunks whose
    padded plaintext differs from [old_payload]'s at the same absolute
    position (plus appended chunks, plus the last surviving chunk on a
    shrink) — the same rule [Skip_index.Update] uses to predict
    [chunks_to_reencrypt]. Unchanged chunks physically reuse the old
    ciphertext strings (and, for ECB-MHT, the cached subtree hashes: a
    reseal recomputes no fragment hash). Returns the new container and the
    sorted rewritten-chunk list. When the payload length changes, clean
    chunks are resealed (digest-only rewrite) because every digest binds
    the header geometry. @raise Invalid_argument if [old_payload] does not
    match [payload_length t], or on a ciphertext-less geometry view. *)

val to_bytes : t -> string
(** Serialized container (header + chunks), as stored on the server /
    untrusted terminal. Generation-0, epoch-0 containers serialize as
    [XACR1] (byte-compatible with pre-versioning builds); versioned state
    promotes the stream to [XACR2] (generation + key epoch in the header,
    a version word before every chunk). *)

val of_bytes : string -> t
(** Parse a serialized container without verifying anything (the terminal
    side). Reads both [XACR1] and [XACR2]. @raise Corrupt on malformed
    headers — including oversized or negative (integer-overflowed) payload
    lengths, which would otherwise surface as out-of-bounds accesses
    during decryption. A well-formed magic from a {e newer} writer
    ([XACR3]..[XACR9]) fails with the distinct, actionable
    ["unsupported container version ..."] rather than ["bad magic"]. *)

val of_bytes_result : string -> (t, string) result
(** {!of_bytes} as a [result]; never raises. *)

val geometry :
  ?generation:int ->
  ?key_epoch:int ->
  scheme:scheme ->
  chunk_size:int ->
  fragment_size:int ->
  payload_length:int ->
  chunk_count:int ->
  unit ->
  (t, string) result
(** A header-only container view for the SOE end of a remote session: the
    geometry an untrusted terminal advertises in its wire handshake,
    validated with the same rules as {!of_bytes} (plus plausibility caps on
    the allocation-controlling [chunk_count]). The value carries no
    ciphertext — payload bytes only ever reach the SOE through the wire,
    via {!decrypt_digest_blob} and {!decrypt_chunk_cipher}. *)

val patch :
  t ->
  payload_length:int ->
  generation:int ->
  key_epoch:int ->
  full:(int * int * string * string) list ->
  reseals:(int * string) list ->
  (t, string) result
(** Keyless republication (the terminal/mirror side of delta sync): graft
    [full] entries [(chunk, version, ciphertext, encrypted digest)] and
    [reseals] [(chunk, encrypted digest)] onto [t], extending or
    truncating to [payload_length]'s geometry and moving to [generation] /
    [key_epoch]. Chunks not named keep their ciphertext, digest and
    version. Structural rules are re-validated (sizes, hole-freedom,
    monotone generation/epoch, versions bounded by [generation]), so a
    hostile delta yields [Error], never an inconsistent container; content
    authenticity stays with the SOE's digest checks. *)

(** {2 Terminal-side accessors (no secrets involved)} *)

val chunk_ciphertext : t -> int -> string
(** Encrypted payload of a chunk (without its digest). The last chunk is
    padded to a whole number of fragments. *)

val encrypted_digest : t -> int -> string
(** The encrypted digest blob of a chunk ("" for [Ecb]). *)

val fragment_ciphertext : t -> chunk:int -> fragment:int -> string

val substitute_block : t -> chunk:int -> block:int -> string -> t
(** Tamper helper for tests: replace one 8-byte ciphertext block. *)

(** {2 SOE-side primitives (hold the key)} *)

val decrypt_digest : t -> key:Des.Triple.key -> int -> string
(** Decrypt the chunk digest of chunk [i] ([digest_size_for] bytes). *)

val decrypt_digest_blob :
  scheme:scheme -> key:Des.Triple.key -> chunk:int -> string -> string
(** Like {!decrypt_digest}, but taking the encrypted blob itself (as served
    by a remote terminal). @raise Integrity_failure if the blob is not
    exactly [digest_blob_size_for scheme] bytes. *)

val expected_digest_of_plain : t -> chunk:int -> plain:string -> string
val expected_digest_of_cipher : t -> chunk:int -> cipher:string -> string
val fragment_leaf_hash : t -> chunk:int -> fragment:int -> cipher:string -> string

val fragment_leaf_hash_sub :
  t -> chunk:int -> fragment:int -> cipher:string -> pos:int -> len:int -> string
(** {!fragment_leaf_hash} over the fragment's bytes at [\[pos, pos + len)]
    of a larger ciphertext buffer (typically the whole chunk), so callers
    iterating a chunk's fragments need not cut per-fragment copies. *)

val seal_root : t -> chunk:int -> root:string -> string
(** The stored ECB-MHT chunk digest: the Merkle root hashed together with
    the container geometry (scheme, chunk/fragment sizes, payload length),
    so header tampering is detected like payload tampering. *)

val decrypt_chunk : t -> key:Des.Triple.key -> int -> string
(** Decrypt a full chunk's payload (positional ECB or CBC according to the
    scheme); the caller strips padding via {!payload_length}. *)

val decrypt_chunk_cipher :
  ?ctx:Modes.cipher ->
  t ->
  key:Des.Triple.key ->
  chunk:int ->
  cipher:string ->
  string
(** Like {!decrypt_chunk}, but taking the chunk ciphertext itself (as served
    by a remote terminal). @raise Integrity_failure if [cipher] is not
    exactly [chunk_size t] bytes. *)

val decrypt_chunk_cipher_into :
  ?ctx:Modes.cipher ->
  t ->
  key:Des.Triple.key ->
  chunk:int ->
  cipher:string ->
  dst:Bytes.t ->
  unit
(** In-place variant of {!decrypt_chunk_cipher}: decrypts the whole chunk
    into the first [chunk_size t] bytes of [dst] without allocating a
    result string, so a session can reuse one plaintext buffer per chunk.
    The optional [?ctx] cipher context (for the DES-block schemes) lets a
    session pass an engine-selected cipher — e.g. the bitsliced fast one —
    built once instead of per chunk; it must wrap the same [key].
    @raise Invalid_argument if [dst] is smaller than [chunk_size t]. *)

val decrypt_fragment :
  t -> key:Des.Triple.key -> chunk:int -> fragment:int -> cipher:string -> string
(** Decrypt one fragment given its ciphertext. Only valid for the ECB-based
    schemes (random access); @raise Invalid_argument for CBC schemes. *)

val decrypt_all : t -> key:Des.Triple.key -> verify:bool -> string
(** Whole-document decryption (and digest verification when [verify]);
    returns the payload. @raise Integrity_failure when a digest check
    fails. *)

exception Integrity_failure of string
(** A digest check failed: the container was tampered with (or the wrong
    key was used). A {e typed rejection}, part of the security contract. *)

exception Corrupt of string
(** The container bytes are structurally malformed (parsing-time rejection,
    before any cryptography runs). *)
