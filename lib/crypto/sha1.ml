(* SHA-1 over 32-bit words represented as OCaml native ints masked to 32
   bits (the native int is at least 63 bits wide on all supported
   platforms). *)

let digest_size = 20
let mask32 = 0xFFFFFFFF

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable total : int;  (* message bytes fed so far *)
  block : Bytes.t;  (* 64-byte block buffer *)
  mutable fill : int;  (* bytes currently in [block] *)
  w : int array;
      (* per-context message schedule so concurrent computations on
         separate domains never share scratch state *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    total = 0;
    block = Bytes.create 64;
    fill = 0;
    w = Array.make 80 0;
  }

let copy c = { c with block = Bytes.copy c.block; w = Array.make 80 0 }

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let process_block c (b : Bytes.t) off =
  let w = c.w in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get b (off + (4 * i))) lsl 24)
      lor (Char.code (Bytes.get b (off + (4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get b (off + (4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get b (off + (4 * i) + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref c.h0 and b' = ref c.h1 and c' = ref c.h2 in
  let d = ref c.h3 and e = ref c.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then ((!b' land !c') lor (lnot !b' land !d) land mask32, 0x5A827999)
      else if i < 40 then (!b' lxor !c' lxor !d, 0x6ED9EBA1)
      else if i < 60 then
        ((!b' land !c') lor (!b' land !d) lor (!c' land !d), 0x8F1BBCDC)
      else (!b' lxor !c' lxor !d, 0xCA62C1D6)
    in
    let tmp = (rotl !a 5 + (f land mask32) + !e + k + w.(i)) land mask32 in
    e := !d;
    d := !c';
    c' := rotl !b' 30;
    b' := !a;
    a := tmp
  done;
  c.h0 <- (c.h0 + !a) land mask32;
  c.h1 <- (c.h1 + !b') land mask32;
  c.h2 <- (c.h2 + !c') land mask32;
  c.h3 <- (c.h3 + !d) land mask32;
  c.h4 <- (c.h4 + !e) land mask32

let feed_sub c s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sha1.feed_sub";
  c.total <- c.total + len;
  let remaining = ref len and src = ref pos in
  (* top up a partial block first *)
  if c.fill > 0 then begin
    let take = min !remaining (64 - c.fill) in
    Bytes.blit_string s !src c.block c.fill take;
    c.fill <- c.fill + take;
    src := !src + take;
    remaining := !remaining - take;
    if c.fill = 64 then begin
      process_block c c.block 0;
      c.fill <- 0
    end
  end;
  while !remaining >= 64 do
    Bytes.blit_string s !src c.block 0 64;
    process_block c c.block 0;
    src := !src + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !src c.block c.fill !remaining;
    c.fill <- c.fill + !remaining
  end

let feed c s = feed_sub c s ~pos:0 ~len:(String.length s)

let finalize_into c ~dst ~dst_pos =
  if dst_pos < 0 || dst_pos + 20 > Bytes.length dst then
    invalid_arg "Sha1.finalize_into";
  let c = copy c in
  let bit_len = c.total * 8 in
  (* padding: 0x80, zeros, 64-bit big-endian length *)
  let pad_len =
    let r = (c.total + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let padding = Bytes.make pad_len '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding
      (pad_len - 1 - i)
      (Char.chr ((bit_len lsr (8 * i)) land 0xFF))
  done;
  feed c (Bytes.to_string padding);
  assert (c.fill = 0);
  let put i v =
    Bytes.set dst (dst_pos + (4 * i)) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set dst (dst_pos + (4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set dst (dst_pos + (4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set dst (dst_pos + (4 * i) + 3) (Char.chr (v land 0xFF))
  in
  put 0 c.h0;
  put 1 c.h1;
  put 2 c.h2;
  put 3 c.h3;
  put 4 c.h4

let finalize c =
  let out = Bytes.create 20 in
  finalize_into c ~dst:out ~dst_pos:0;
  Bytes.unsafe_to_string out

let digest s =
  let c = init () in
  feed c s;
  finalize c

let digest_into s ~dst ~dst_pos =
  let c = init () in
  feed c s;
  finalize_into c ~dst ~dst_pos

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun ch -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code ch))) s;
  Buffer.contents b

(* State serialization: 5 x 4-byte words, 8-byte total, 1-byte fill, fill
   bytes of pending block. *)
let export_state c =
  let b = Buffer.create 40 in
  let word v =
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char b (Char.chr (v land 0xFF))
  in
  word c.h0;
  word c.h1;
  word c.h2;
  word c.h3;
  word c.h4;
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr ((c.total lsr (8 * i)) land 0xFF))
  done;
  Buffer.add_char b (Char.chr c.fill);
  Buffer.add_string b (Bytes.sub_string c.block 0 c.fill);
  Buffer.contents b

let import_state s =
  let min_len = 20 + 8 + 1 in
  if String.length s < min_len then invalid_arg "Sha1.import_state: truncated";
  let word i =
    (Char.code s.[i] lsl 24)
    lor (Char.code s.[i + 1] lsl 16)
    lor (Char.code s.[i + 2] lsl 8)
    lor Char.code s.[i + 3]
  in
  let total = ref 0 in
  for i = 20 to 27 do
    total := (!total lsl 8) lor Char.code s.[i]
  done;
  let fill = Char.code s.[28] in
  if fill > 63 || String.length s <> min_len + fill then
    invalid_arg "Sha1.import_state: malformed";
  (* a genuine mid-state always has [fill = total mod 64]; anything else
     (including an 8-byte total overflowing the OCaml int) would later land
     the padding off a block boundary in [finalize] *)
  if !total < 0 || !total land 63 <> fill then
    invalid_arg "Sha1.import_state: malformed";
  let c = init () in
  c.h0 <- word 0;
  c.h1 <- word 4;
  c.h2 <- word 8;
  c.h3 <- word 12;
  c.h4 <- word 16;
  c.total <- !total;
  c.fill <- fill;
  Bytes.blit_string s 29 c.block 0 fill;
  c
