(** SHA-1 (FIPS 180-1), implemented from scratch for the sealed environment.

    The paper uses SHA-1 for chunk digests and Merkle hash trees. SHA-1 is
    no longer collision-resistant by modern standards; it is kept here for
    fidelity to the paper (the integrity layer is parametric in nothing but
    the 20-byte digest size). *)

val digest_size : int
(** 20 bytes. *)

val digest : string -> string
(** [digest msg] is the 20-byte binary SHA-1 of [msg]. *)

val digest_into : string -> dst:Bytes.t -> dst_pos:int -> unit
(** Like {!digest} but writes the 20 bytes into [dst] at [dst_pos] —
    the allocation-free form the Merkle and container hot paths use.
    @raise Invalid_argument if the destination range is out of bounds. *)

val hex : string -> string
(** Lowercase hexadecimal of a binary string. *)

type ctx
(** Incremental hashing context — the SOE checks integrity incrementally and
    the terminal ships intermediate states (Appendix A's basic solution). *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_sub : ctx -> string -> pos:int -> len:int -> unit
val finalize : ctx -> string

val finalize_into : ctx -> dst:Bytes.t -> dst_pos:int -> unit
(** [finalize] writing into a caller buffer; the context itself is left
    reusable (finalization works on a copy), like {!finalize}. *)

val copy : ctx -> ctx

val export_state : ctx -> string
(** Serialized mid-stream state (chaining value + byte count + pending
    partial block): what the untrusted terminal transmits to the SOE so that
    hashing can resume inside the secure environment. *)

val import_state : string -> ctx
(** @raise Invalid_argument on a malformed state blob. *)
