(* SHA-256 over 32-bit words in native ints, mirroring Sha1. The round
   and initial-hash constants are derived the way FIPS 180-4 defines them
   — fractional parts of cube/square roots of the first primes — rather
   than transcribed, and pinned by the FIPS vectors in the test suite. *)

let digest_size = 32
let mask32 = 0xFFFFFFFF

let primes =
  let rec is_prime n d =
    if d * d > n then true else if n mod d = 0 then false else is_prime n (d + 1)
  in
  let rec collect acc n count =
    if count = 0 then List.rev acc
    else if is_prime n 2 then collect (n :: acc) (n + 1) (count - 1)
    else collect acc (n + 1) count
  in
  Array.of_list (collect [] 2 64)

let frac_word x = int_of_float ((x -. Float.of_int (int_of_float x)) *. 4294967296.0) land mask32

let k = Array.map (fun p -> frac_word (Float.cbrt (float_of_int p))) primes

let initial_h =
  Array.init 8 (fun i -> frac_word (sqrt (float_of_int primes.(i))))

type ctx = {
  h : int array; (* 8 chaining words *)
  mutable total : int; (* message bytes fed so far *)
  block : Bytes.t; (* 64-byte block buffer *)
  mutable fill : int; (* bytes currently in [block] *)
  w : int array;
      (* per-context message schedule so concurrent computations on
         separate domains never share scratch state *)
}

let init () =
  {
    h = Array.copy initial_h;
    total = 0;
    block = Bytes.create 64;
    fill = 0;
    w = Array.make 64 0;
  }

let copy c =
  { c with h = Array.copy c.h; block = Bytes.copy c.block; w = Array.make 64 0 }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let process_block c (b : Bytes.t) off =
  let w = c.w in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get b (off + (4 * i))) lsl 24)
      lor (Char.code (Bytes.get b (off + (4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get b (off + (4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get b (off + (4 * i) + 3))
  done;
  for i = 16 to 63 do
    let s0 =
      let v = w.(i - 15) in
      rotr v 7 lxor rotr v 18 lxor (v lsr 3)
    and s1 =
      let v = w.(i - 2) in
      rotr v 17 lxor rotr v 19 lxor (v lsr 10)
    in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
  done;
  let h = c.h in
  let a = ref h.(0) and b' = ref h.(1) and c' = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g land mask32) in
    let t1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b') lxor (!a land !c') lxor (!b' land !c') in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c';
    c' := !b';
    b' := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b') land mask32;
  h.(2) <- (h.(2) + !c') land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let feed_sub c s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sha256.feed_sub";
  c.total <- c.total + len;
  let remaining = ref len and src = ref pos in
  if c.fill > 0 then begin
    let take = min !remaining (64 - c.fill) in
    Bytes.blit_string s !src c.block c.fill take;
    c.fill <- c.fill + take;
    src := !src + take;
    remaining := !remaining - take;
    if c.fill = 64 then begin
      process_block c c.block 0;
      c.fill <- 0
    end
  end;
  while !remaining >= 64 do
    Bytes.blit_string s !src c.block 0 64;
    process_block c c.block 0;
    src := !src + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !src c.block c.fill !remaining;
    c.fill <- c.fill + !remaining
  end

let feed c s = feed_sub c s ~pos:0 ~len:(String.length s)

let finalize_into c ~dst ~dst_pos =
  if dst_pos < 0 || dst_pos + digest_size > Bytes.length dst then
    invalid_arg "Sha256.finalize_into";
  let c = copy c in
  let bit_len = c.total * 8 in
  let pad_len =
    let r = (c.total + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let padding = Bytes.make pad_len '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding
      (pad_len - 1 - i)
      (Char.chr ((bit_len lsr (8 * i)) land 0xFF))
  done;
  feed c (Bytes.to_string padding);
  assert (c.fill = 0);
  for i = 0 to 7 do
    let v = c.h.(i) in
    Bytes.set dst (dst_pos + (4 * i)) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set dst (dst_pos + (4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set dst (dst_pos + (4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set dst (dst_pos + (4 * i) + 3) (Char.chr (v land 0xFF))
  done

let finalize c =
  let out = Bytes.create digest_size in
  finalize_into c ~dst:out ~dst_pos:0;
  Bytes.unsafe_to_string out

let digest s =
  let c = init () in
  feed c s;
  finalize c

let digest_into s ~dst ~dst_pos =
  let c = init () in
  feed c s;
  finalize_into c ~dst ~dst_pos

let hex = Sha1.hex
