(** SHA-256 (FIPS 180-4), implemented from scratch for the sealed
    environment. The AES-CTR scheme uses it for chunk digests and key
    derivation; constants are derived from prime roots as the standard
    defines them and pinned by FIPS vectors in the test suite. *)

val digest_size : int
(** 32 bytes. *)

val digest : string -> string
(** [digest msg] is the 32-byte binary SHA-256 of [msg]. *)

val digest_into : string -> dst:Bytes.t -> dst_pos:int -> unit
(** Like {!digest} but writes the 32 bytes into [dst] at [dst_pos].
    @raise Invalid_argument if the destination range is out of bounds. *)

val hex : string -> string
(** Lowercase hexadecimal of a binary string. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_sub : ctx -> string -> pos:int -> len:int -> unit
val finalize : ctx -> string

val finalize_into : ctx -> dst:Bytes.t -> dst_pos:int -> unit
(** [finalize] writing into a caller buffer; the context itself is left
    reusable (finalization works on a copy). *)

val copy : ctx -> ctx
