module C = Xmlac_crypto.Secure_container

type t = {
  scheme : C.scheme;
  chunk_size : int;
  fragment_size : int;
  from_gen : int;
  to_gen : int;
  key_epoch : int;
  payload_len : int;
  revoked : string list;
  full : (int * int * string * string) list;
  reseals : (int * string) list;
}

let magic = "XDLT1"

(* Decode-time caps: a delta arrives over the wire from an untrusted
   terminal (or is read back from a spool file an untrusted terminal
   wrote), so every count that controls allocation is bounded well above
   any plausible document but far below an allocation bomb. *)
let max_chunk_entries = 1 lsl 22
let max_revoked = 4096
let max_subject = 255

let scheme_byte = function
  | C.Ecb -> 0
  | C.Cbc_sha -> 1
  | C.Cbc_shac -> 2
  | C.Ecb_mht -> 3
  | C.Aes_ctr -> 4

let scheme_of_byte = function
  | 0 -> Some C.Ecb
  | 1 -> Some C.Cbc_sha
  | 2 -> Some C.Cbc_shac
  | 3 -> Some C.Ecb_mht
  | 4 -> Some C.Aes_ctr
  | _ -> None

let chunk_count t = max 1 ((t.payload_len + t.chunk_size - 1) / t.chunk_size)

let of_container ~from_gen ?(revoked = []) c =
  let gen = C.generation c in
  if from_gen < 0 || from_gen > gen then
    invalid_arg
      (Printf.sprintf "Delta.of_container: from_gen %d outside [0, %d]"
         from_gen gen);
  let n = C.chunk_count c in
  if n > 0 && C.chunk_ciphertext c 0 = "" then
    invalid_arg "Delta.of_container: geometry-only container view";
  let digests = C.scheme c <> C.Ecb in
  let full = ref [] and reseals = ref [] in
  for i = n - 1 downto 0 do
    let v = C.chunk_version c i in
    if v > from_gen then
      full :=
        (i, v, C.chunk_ciphertext c i, C.encrypted_digest c i) :: !full
    else if digests then
      (* the digest binds the payload length, which usually moves with an
         update: always reissue clean-chunk seals so the receiver never
         holds a digest for a geometry it no longer has *)
      reseals := (i, C.encrypted_digest c i) :: !reseals
  done;
  {
    scheme = C.scheme c;
    chunk_size = C.chunk_size c;
    fragment_size = C.fragment_size c;
    from_gen;
    to_gen = gen;
    key_epoch = C.key_epoch c;
    payload_len = C.payload_length c;
    revoked;
    full = !full;
    reseals = !reseals;
  }

let be_bytes value width =
  String.init width (fun i ->
      Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

let encode t =
  let b = Buffer.create (4096 + (List.length t.full * (t.chunk_size + 40))) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (scheme_byte t.scheme));
  Buffer.add_string b (be_bytes t.chunk_size 4);
  Buffer.add_string b (be_bytes t.fragment_size 4);
  Buffer.add_string b (be_bytes t.from_gen 8);
  Buffer.add_string b (be_bytes t.to_gen 8);
  Buffer.add_string b (be_bytes t.key_epoch 2);
  Buffer.add_string b (be_bytes t.payload_len 8);
  Buffer.add_string b (be_bytes (List.length t.revoked) 2);
  List.iter
    (fun s ->
      Buffer.add_string b (be_bytes (String.length s) 2);
      Buffer.add_string b s)
    t.revoked;
  Buffer.add_string b (be_bytes (List.length t.full) 4);
  List.iter
    (fun (i, version, cipher, digest) ->
      Buffer.add_string b (be_bytes i 4);
      Buffer.add_string b (be_bytes version 8);
      Buffer.add_string b cipher;
      Buffer.add_string b digest)
    t.full;
  Buffer.add_string b (be_bytes (List.length t.reseals) 4);
  List.iter
    (fun (i, digest) ->
      Buffer.add_string b (be_bytes i 4);
      Buffer.add_string b digest)
    t.reseals;
  Buffer.contents b

let wire_bytes t = String.length (encode t)

let decode s =
  let exception Reject of string in
  let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt in
  let pos = ref 0 in
  let need n =
    if n < 0 || !pos + n > String.length s then reject "truncated delta"
  in
  let u width =
    need width;
    let v = ref 0 in
    for i = !pos to !pos + width - 1 do
      v := (!v lsl 8) lor Char.code s.[i]
    done;
    pos := !pos + width;
    !v
  in
  let str n =
    need n;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  try
    if str (String.length magic) <> magic then reject "bad delta magic";
    let scheme =
      match scheme_of_byte (u 1) with
      | Some sc -> sc
      | None -> reject "bad scheme byte"
    in
    let chunk_size = u 4 in
    let fragment_size = u 4 in
    let from_gen = u 8 in
    let to_gen = u 8 in
    let key_epoch = u 2 in
    let payload_len = u 8 in
    if chunk_size <= 0 || fragment_size <= 0 then reject "bad sizes";
    if payload_len < 0 || from_gen < 0 || to_gen < 0 then
      reject "negative field";
    if to_gen <= from_gen then reject "non-forward generation span";
    let blob = C.digest_blob_size_for scheme in
    let nrevoked = u 2 in
    if nrevoked > max_revoked then reject "implausible revocation count";
    let revoked =
      List.init nrevoked (fun _ ->
          let len = u 2 in
          if len > max_subject then reject "implausible subject length";
          str len)
    in
    let nfull = u 4 in
    if
      nfull > max_chunk_entries
      || nfull * (4 + 8 + chunk_size + blob) > String.length s - !pos
    then reject "implausible full-entry count";
    let full =
      List.init nfull (fun _ ->
          let i = u 4 in
          let version = u 8 in
          let cipher = str chunk_size in
          let digest = str blob in
          (i, version, cipher, digest))
    in
    let nreseals = u 4 in
    if
      nreseals > max_chunk_entries
      || nreseals * (4 + blob) > String.length s - !pos
    then reject "implausible reseal count";
    let reseals =
      List.init nreseals (fun _ ->
          let i = u 4 in
          let digest = str blob in
          (i, digest))
    in
    if !pos <> String.length s then reject "trailing bytes after delta";
    Ok
      {
        scheme;
        chunk_size;
        fragment_size;
        from_gen;
        to_gen;
        key_epoch;
        payload_len;
        revoked;
        full;
        reseals;
      }
  with Reject msg -> Error msg

let apply c t =
  if C.scheme c <> t.scheme then Error "delta scheme mismatch"
  else if C.chunk_size c <> t.chunk_size || C.fragment_size c <> t.fragment_size
  then Error "delta geometry mismatch"
  else if C.generation c <> t.from_gen then
    Error
      (Printf.sprintf "delta bridges generation %d but container holds %d"
         t.from_gen (C.generation c))
  else if t.to_gen <= t.from_gen then Error "non-forward generation span"
  else if t.key_epoch <> C.key_epoch c then begin
    (* a key rotation re-encrypts the whole document: accepting a partial
       epoch-crossing delta would splice ciphertext of two different keys
       into one container *)
    let n = chunk_count t in
    let covered = Array.make n false in
    List.iter
      (fun (i, _, _, _) -> if i >= 0 && i < n then covered.(i) <- true)
      t.full;
    if Array.for_all Fun.id covered then
      C.patch c ~payload_length:t.payload_len ~generation:t.to_gen
        ~key_epoch:t.key_epoch ~full:t.full ~reseals:t.reseals
    else Error "key-epoch change without full chunk coverage"
  end
  else
    C.patch c ~payload_length:t.payload_len ~generation:t.to_gen
      ~key_epoch:t.key_epoch ~full:t.full ~reseals:t.reseals
