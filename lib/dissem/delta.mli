(** Chunk deltas: the dissemination unit bridging one container generation
    to a later one (the "Safe Data Sharing and Data Dissemination on Smart
    Devices" follow-up to the paper's one-shot publication model).

    A delta is ciphertext-level — a terminal or mirror applies it without
    any key material; content authenticity stays with the SOE's encrypted
    chunk digests, checked at read time as always. It carries:

    - the target geometry (scheme, sizes, new payload length) and the
      [from_gen -> to_gen] generation span plus the key epoch;
    - {e full entries} for every chunk rewritten after [from_gen]
      (version, ciphertext, encrypted digest);
    - {e reseals} — fresh encrypted digests for untouched chunks, needed
      because every digest binds the header geometry and the payload
      length usually changes with an update (24 bytes per chunk, payload
      re-encryption never);
    - the cumulative revocation list of subjects whose licenses were
      voided by key rotations up to [to_gen].

    Both directions treat their input as hostile: {!decode} is total with
    typed [Error]s and allocation caps, {!apply} re-validates every
    structural rule before grafting. *)

module C = Xmlac_crypto.Secure_container

type t = {
  scheme : C.scheme;
  chunk_size : int;
  fragment_size : int;
  from_gen : int;
  to_gen : int;
  key_epoch : int;
  payload_len : int;  (** payload length at [to_gen] *)
  revoked : string list;
      (** cumulative list of revoked subjects as of [to_gen] *)
  full : (int * int * string * string) list;
      (** (chunk, version, ciphertext, encrypted digest blob) — digest
          [""] under ECB *)
  reseals : (int * string) list;
      (** (chunk, encrypted digest blob) for untouched chunks *)
}

val chunk_count : t -> int
(** Chunk count of the target geometry. *)

val wire_bytes : t -> int
(** Size of {!encode}'s output — what a [Sync_delta] reply pays. *)

val of_container : from_gen:int -> ?revoked:string list -> C.t -> t
(** The delta bridging [from_gen] to the container's current generation,
    computed from the per-chunk version vector alone: full entries for
    every chunk with [chunk_version > from_gen], reseals for the rest.
    This is what a server answers a [Sync] with — it needs no history
    beyond the current container. @raise Invalid_argument if [from_gen]
    exceeds the container's generation, or the container carries no
    ciphertext (a geometry-only view). *)

val encode : t -> string
(** Serialized delta (magic ["XDLT1"]). *)

val decode : string -> (t, string) result
(** Parse untrusted delta bytes; total, never raises. *)

val apply : C.t -> t -> (C.t, string) result
(** Graft the delta onto a container at exactly [from_gen]: geometry must
    match, the generation span must be forward, and a key-epoch change
    must cover every chunk (a rotation rewrites everything). On success
    the result is at [to_gen] / [key_epoch] and serializes as [XACR2]. *)
