module C = Xmlac_crypto.Secure_container
module Sha1 = Xmlac_crypto.Sha1
module Des = Xmlac_crypto.Des

type t = {
  master : string;
  mutable container : C.t;
  mutable payload : string;
  mutable revoked : string list; (* oldest first *)
}

let be64 v =
  String.init 8 (fun i -> Char.chr ((v lsr (8 * (7 - i))) land 0xFF))

(* Epoch keys are derived, not stored: two domain-separated SHA-1 outputs
   give 40 bytes, of which the first 24 form the Triple-DES key
   (k1 || k2 || k3). *)
let epoch_key_bytes ~master ~epoch =
  let half tag = Sha1.digest (master ^ be64 epoch ^ tag) in
  String.sub (half "\001" ^ half "\002") 0 24

let key_for master epoch =
  Des.Triple.key_of_string (epoch_key_bytes ~master ~epoch)

let create ?chunk_size ?fragment_size ~scheme ~master payload =
  if master = "" then invalid_arg "Publisher.create: empty master secret";
  let container =
    C.encrypt ?chunk_size ?fragment_size ~scheme ~key:(key_for master 0)
      payload
  in
  { master; container; payload; revoked = [] }

let container t = t.container
let payload t = t.payload
let generation t = C.generation t.container
let epoch t = C.key_epoch t.container
let revoked t = t.revoked
let key_bytes t = epoch_key_bytes ~master:t.master ~epoch:(epoch t)
let key t = key_for t.master (epoch t)

let update t ~payload =
  let from_gen = generation t in
  let container, rewritten =
    C.reencrypt t.container ~key:(key t) ~old_payload:t.payload ~payload
  in
  t.container <- container;
  t.payload <- payload;
  (Delta.of_container ~from_gen ~revoked:t.revoked container, rewritten)

let rotate t ~revoke =
  let from_gen = generation t in
  let next_epoch = epoch t + 1 in
  (* a rotation rewrites everything: every chunk's ciphertext now depends
     on the new epoch's key, so the delta necessarily has full coverage *)
  let container =
    C.encrypt ~chunk_size:(C.chunk_size t.container)
      ~fragment_size:(C.fragment_size t.container)
      ~generation:(from_gen + 1) ~key_epoch:next_epoch
      ~scheme:(C.scheme t.container)
      ~key:(key_for t.master next_epoch)
      t.payload
  in
  t.container <- container;
  t.revoked <- t.revoked @ List.filter (fun s -> s <> "") revoke;
  Delta.of_container ~from_gen ~revoked:t.revoked container
