(** The publisher's side of dissemination: the long-lived state behind one
    published document — the current container, the plaintext payload it
    encrypts, the master secret the per-epoch document keys derive from,
    and the cumulative revocation list.

    Keys are {e derived}, never stored per epoch: epoch [e]'s Triple-DES
    key is the first 24 bytes of
    [SHA1(master || be64 e || "\001") || SHA1(master || be64 e || "\002")],
    so rotating is just bumping the epoch — old keys remain recomputable
    for audit but are never handed out again, and a license minted for an
    old epoch cannot decrypt material rewritten after the rotation.

    {!update} is the incremental-republication path: only chunks whose
    padded plaintext changed are re-encrypted
    ({!Xmlac_crypto.Secure_container.reencrypt}), and the returned
    {!Delta.t} bridges exactly one generation. {!rotate} is the revocation
    path: a full re-encryption under the next epoch's key, with the newly
    revoked subjects appended to the cumulative list carried by every
    subsequent delta. *)

module C = Xmlac_crypto.Secure_container

type t

val create :
  ?chunk_size:int ->
  ?fragment_size:int ->
  scheme:C.scheme ->
  master:string ->
  string ->
  t
(** [create ~scheme ~master payload] publishes [payload] at generation 0,
    key epoch 0. [master] is the publisher's secret (any non-empty
    string); chunk/fragment sizes as in
    {!Xmlac_crypto.Secure_container.encrypt}.
    @raise Invalid_argument on an empty master secret. *)

val update : t -> payload:string -> Delta.t * int list
(** Republish with a new payload: re-encrypts only the dirty chunks,
    bumps the generation, and returns the one-generation delta plus the
    sorted list of chunks actually rewritten (what
    [Skip_index.Update.cost.chunks_dirty] predicts). *)

val rotate : t -> revoke:string list -> Delta.t
(** Rotate the document key: bump the epoch, re-encrypt {e every} chunk of
    the current payload under the new epoch's key, append [revoke] to the
    cumulative revocation list, and return the (full-coverage) delta.
    Licenses of earlier epochs can no longer decrypt anything written
    after this point. *)

val container : t -> C.t
val payload : t -> string
val generation : t -> int
val epoch : t -> int

val revoked : t -> string list
(** Cumulative revocation list, oldest first. *)

val key : t -> Xmlac_crypto.Des.Triple.key
(** The current epoch's document key (for local decryption / licensing). *)

val key_bytes : t -> string
(** The current epoch's raw 24-byte key material — what goes inside a
    license sealed for an authorized subject. *)

val epoch_key_bytes : master:string -> epoch:int -> string
(** The derivation itself, exposed for tests and for re-minting a license
    against a specific epoch. *)
