module C = Xmlac_crypto.Secure_container
module Decoder = Xmlac_skip_index.Decoder
module Wire = Xmlac_wire

type outcome = Accepted | Rejected of string | Crashed of string

type id =
  | Xml_parse
  | Skip_decode
  | Container
  | Channel_eval
  | Policy_text
  | Wire_frame
  | Remote_eval

let all =
  [
    Xml_parse;
    Skip_decode;
    Container;
    Channel_eval;
    Policy_text;
    Wire_frame;
    Remote_eval;
  ]

let id_name = function
  | Xml_parse -> "xml-parse"
  | Skip_decode -> "skip-decode"
  | Container -> "container"
  | Channel_eval -> "channel-eval"
  | Policy_text -> "policy-text"
  | Wire_frame -> "wire-frame"
  | Remote_eval -> "remote-eval"

(* The robustness contract: hostile bytes may only surface through these
   typed channels. Anything else escaping a boundary is a crash — a bug in
   the layer, not in the input. *)
let classify = function
  | Xmlac_xml.Parser.Malformed (reason, pos) ->
      Rejected (Printf.sprintf "malformed XML at byte %d: %s" pos reason)
  | Xmlac_xpath.Parse.Error (reason, pos) ->
      Rejected (Printf.sprintf "invalid XPath at %d: %s" pos reason)
  | Xmlac_skip_index.Error.Error e ->
      Rejected (Xmlac_skip_index.Error.to_string e)
  | Xmlac_core.Error.Stream_error msg ->
      Rejected ("invalid event stream: " ^ msg)
  | C.Corrupt msg -> Rejected ("corrupt container: " ^ msg)
  | C.Integrity_failure msg -> Rejected ("integrity violation: " ^ msg)
  | Wire.Error.Wire e -> Rejected ("wire error: " ^ Wire.Error.to_string e)
  | e -> Crashed (Printexc.to_string e)

let run f = match f () with () -> Accepted | exception e -> classify e

let xml_parse bytes =
  run (fun () -> ignore (Xmlac_xml.Parser.events bytes))

let skip_decode bytes =
  run (fun () ->
      let d = Decoder.of_string bytes in
      let rec drain () =
        match Decoder.next d with Some _ -> drain () | None -> ()
      in
      drain ())

let container ~key bytes =
  run (fun () ->
      let t = C.of_bytes bytes in
      ignore (C.decrypt_all t ~key ~verify:true))

type eval_outcome = {
  outcome : outcome;
  view : Xmlac_xml.Event.t list option;
      (** the delivered events when the pipeline accepted the input *)
}

let channel_eval ?provenance ~key ~policy bytes =
  match
    let t = C.of_bytes bytes in
    let counters = Xmlac_soe.Channel.fresh_counters () in
    let source =
      Xmlac_soe.Channel.source ~verify:true ~container:t ~key counters
    in
    let decoder = Decoder.of_source source in
    let input = Xmlac_core.Input.of_decoder decoder in
    let result = Xmlac_core.Evaluator.run ?provenance ~policy input in
    result.Xmlac_core.Evaluator.events
  with
  | events -> { outcome = Accepted; view = Some events }
  | exception e -> { outcome = classify e; view = None }

let policy_text text =
  match Xmlac_core.Policy.of_string text with
  | Ok _ -> Accepted
  | Error msg -> Rejected msg
  | exception e -> classify e

(* A tiny published container backing the wire-frame boundary: its only
   job is giving [Server.handle_frame] something to serve; the hostile
   part is the frame bytes, not the document. *)
let wire_server =
  lazy
    (let doc = Xmlac_xml.Tree.parse "<r><a>hello</a><b>world</b></r>" in
     let enc =
       Xmlac_skip_index.Encoder.encode ~layout:Xmlac_skip_index.Layout.Tcsbr
         doc
     in
     let key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-fuzz-24-byte-key!!" in
     Wire.Server.make
       (C.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme:C.Ecb_mht ~key enc))

let wire_frame bytes =
  (* the server is total on hostile request frames: any payload must come
     back as a reply (possibly [Err]), never an exception *)
  match Wire.Server.handle_frame (Lazy.force wire_server) bytes with
  | exception e ->
      Crashed ("terminal raised on a request frame: " ^ Printexc.to_string e)
  | _reply, _closing ->
      run (fun () ->
          (* client-side decoders: typed rejection or a decoded value *)
          (match Wire.Protocol.decode_response bytes with
          | Wire.Protocol.Hello_ok meta ->
              (* advertised geometry is hostile too; validation returns
                 [Error], it must not raise *)
              ignore (Wire.Protocol.metadata_geometry meta)
          | Wire.Protocol.Stats_reply json ->
              (* admin-plane snapshots come from the terminal, i.e. the
                 adversary: the decoder returns [Error], never raises *)
              ignore (Wire.Telemetry.of_string json)
          | _ -> ());
          (* telemetry decoder on the raw bytes too, so mutated JSON
             documents reach it without having to survive framing *)
          ignore (Wire.Telemetry.of_string bytes);
          let payload, _next = Wire.Frame.split bytes ~off:0 in
          ignore (Wire.Protocol.decode_request payload))

let remote_eval ?plan ?rng ~key ~policy bytes =
  match
    let t = C.of_bytes bytes in
    let server = Wire.Server.make t in
    let connector () =
      let inner = Wire.Server.loopback_connector server () in
      match (plan, rng) with
      | Some plan, Some rng -> fst (Wire.Fault.wrap ~rng ~plan inner)
      | _ -> inner
    in
    let config =
      { Wire.Client.default_config with attempts = 4; backoff_s = 0. }
    in
    let remote = Xmlac_soe.Remote.connect ~config connector in
    Fun.protect
      ~finally:(fun () -> Xmlac_soe.Remote.close remote)
      (fun () ->
        let counters = Xmlac_soe.Channel.fresh_counters () in
        let source = Xmlac_soe.Remote.source ~verify:true remote ~key counters in
        let decoder = Decoder.of_source source in
        let input = Xmlac_core.Input.of_decoder decoder in
        let result = Xmlac_core.Evaluator.run ~policy input in
        result.Xmlac_core.Evaluator.events)
  with
  | events -> { outcome = Accepted; view = Some events }
  | exception e -> { outcome = classify e; view = None }
