module C = Xmlac_crypto.Secure_container
module Decoder = Xmlac_skip_index.Decoder

type outcome = Accepted | Rejected of string | Crashed of string

type id = Xml_parse | Skip_decode | Container | Channel_eval | Policy_text

let all = [ Xml_parse; Skip_decode; Container; Channel_eval; Policy_text ]

let id_name = function
  | Xml_parse -> "xml-parse"
  | Skip_decode -> "skip-decode"
  | Container -> "container"
  | Channel_eval -> "channel-eval"
  | Policy_text -> "policy-text"

(* The robustness contract: hostile bytes may only surface through these
   typed channels. Anything else escaping a boundary is a crash — a bug in
   the layer, not in the input. *)
let classify = function
  | Xmlac_xml.Parser.Malformed (reason, pos) ->
      Rejected (Printf.sprintf "malformed XML at byte %d: %s" pos reason)
  | Xmlac_xpath.Parse.Error (reason, pos) ->
      Rejected (Printf.sprintf "invalid XPath at %d: %s" pos reason)
  | Xmlac_skip_index.Error.Error e ->
      Rejected (Xmlac_skip_index.Error.to_string e)
  | Xmlac_core.Error.Stream_error msg ->
      Rejected ("invalid event stream: " ^ msg)
  | C.Corrupt msg -> Rejected ("corrupt container: " ^ msg)
  | C.Integrity_failure msg -> Rejected ("integrity violation: " ^ msg)
  | e -> Crashed (Printexc.to_string e)

let run f = match f () with () -> Accepted | exception e -> classify e

let xml_parse bytes =
  run (fun () -> ignore (Xmlac_xml.Parser.events bytes))

let skip_decode bytes =
  run (fun () ->
      let d = Decoder.of_string bytes in
      let rec drain () =
        match Decoder.next d with Some _ -> drain () | None -> ()
      in
      drain ())

let container ~key bytes =
  run (fun () ->
      let t = C.of_bytes bytes in
      ignore (C.decrypt_all t ~key ~verify:true))

type eval_outcome = {
  outcome : outcome;
  view : Xmlac_xml.Event.t list option;
      (** the delivered events when the pipeline accepted the input *)
}

let channel_eval ?provenance ~key ~policy bytes =
  match
    let t = C.of_bytes bytes in
    let counters = Xmlac_soe.Channel.fresh_counters () in
    let source =
      Xmlac_soe.Channel.source ~verify:true ~container:t ~key counters
    in
    let decoder = Decoder.of_source source in
    let input = Xmlac_core.Input.of_decoder decoder in
    let result = Xmlac_core.Evaluator.run ?provenance ~policy input in
    result.Xmlac_core.Evaluator.events
  with
  | events -> { outcome = Accepted; view = Some events }
  | exception e -> { outcome = classify e; view = None }

let policy_text text =
  match Xmlac_core.Policy.of_string text with
  | Ok _ -> Accepted
  | Error msg -> Rejected msg
  | exception e -> classify e
