(** The pipeline's trust boundaries, each wrapped as a total function over
    arbitrary bytes.

    Every runner enforces the same contract: hostile input comes back as
    [Rejected] (a typed error was raised or returned), well-formed input as
    [Accepted], and {e any other escaping exception} as [Crashed] — which
    the harness reports as a bug. *)

type outcome =
  | Accepted
  | Rejected of string  (** typed rejection, with the layer's message *)
  | Crashed of string  (** an untyped exception escaped — a pipeline bug *)

type id =
  | Xml_parse
  | Skip_decode
  | Container
  | Channel_eval
  | Policy_text
  | Wire_frame
  | Remote_eval

val all : id list
val id_name : id -> string

val classify : exn -> outcome
(** Map the typed exceptions of every layer to [Rejected]; anything else to
    [Crashed]. *)

val xml_parse : string -> outcome
(** Raw document bytes into {!Xmlac_xml.Parser}. *)

val skip_decode : string -> outcome
(** Encoded bytes into {!Xmlac_skip_index.Decoder}, drained to the end. *)

val container : key:Xmlac_crypto.Des.Triple.key -> string -> outcome
(** Serialized container bytes parsed and fully decrypted with
    verification. *)

type eval_outcome = {
  outcome : outcome;
  view : Xmlac_xml.Event.t list option;
      (** the delivered events when the pipeline accepted the input *)
}

val channel_eval :
  ?provenance:Xmlac_core.Provenance.collector ->
  key:Xmlac_crypto.Des.Triple.key ->
  policy:Xmlac_core.Policy.t ->
  string ->
  eval_outcome
(** The full pipeline: container bytes → SOE channel (with integrity
    verification) → skip-index decoder → streaming evaluator. Pass
    [provenance] to capture decision records from the run — the harness
    uses this to write a [.prov.jsonl] next to each saved crasher. *)

val policy_text : string -> outcome
(** Policy text into {!Xmlac_core.Policy.of_string}. *)

val wire_frame : string -> outcome
(** Raw frame/payload bytes into every wire decoder at once: the terminal's
    [handle_frame] (which must be total — any exception is [Crashed]), the
    client's response decoder (validating advertised metadata through
    [metadata_geometry] when the bytes happen to spell a handshake), the
    frame splitter, and the request decoder. *)

val remote_eval :
  ?plan:Xmlac_wire.Fault.plan ->
  ?rng:(int -> int) ->
  key:Xmlac_crypto.Des.Triple.key ->
  policy:Xmlac_core.Policy.t ->
  string ->
  eval_outcome
(** The full remote pipeline: container bytes served by an in-process
    {!Xmlac_wire.Server} over loopback, fetched by the retrying wire
    client, decrypted and verified in the SOE channel, evaluated. When
    [plan] and [rng] are both given the transport is wrapped in
    {!Xmlac_wire.Fault.wrap}, so replies are randomly truncated, corrupted,
    replayed, duplicated or stalled; the client retries transient faults
    (4 attempts, no backoff) and anything that still escapes must be a
    typed error. *)
