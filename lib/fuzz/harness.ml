module Prng = Xmlac_workload.Prng
module Tree = Xmlac_xml.Tree
module Layout = Xmlac_skip_index.Layout
module Encoder = Xmlac_skip_index.Encoder
module C = Xmlac_crypto.Secure_container

(* 24-byte triple-DES key; its value is irrelevant to the campaign, only
   that encryption and decryption agree on it *)
let key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-fuzz-24-byte-key!!"

let binary_layouts = [ Layout.Tc; Layout.Tcs; Layout.Tcsb; Layout.Tcsbr ]

type seed_entry = {
  doc : Tree.t;
  xml : string;
  policy : Xmlac_core.Policy.t;
  policy_src : string;
  encodings : (Layout.t * string) list;
  containers : (C.scheme * string) list;
}

let tiny_doc =
  Tree.element "r"
    [
      Tree.element "a" [ Tree.text "x"; Tree.element "b" [] ];
      Tree.element "a" ~attributes:[ { Xmlac_xml.Event.name = "k"; value = "v" } ] [ Tree.text "y" ];
      Tree.element "c" [ Tree.element "a" [ Tree.text "z" ] ];
    ]

let seed_entry ~seed doc =
  (* the skip index cannot represent attributes; normalize them away, as
     the publishing pipeline does. Then canonicalize through one
     serialize/parse round trip: generators may carry empty text nodes,
     which no serialized document can represent, and the differential
     oracle must judge the document a client can actually publish. *)
  let doc = Tree.attributes_to_elements doc in
  let xml = Xmlac_xml.Writer.tree_to_string doc in
  let doc = Tree.parse xml in
  let policy = Xmlac_workload.Rule_gen.generate ~seed doc in
  let encodings =
    List.map (fun l -> (l, Encoder.encode ~layout:l doc)) binary_layouts
  in
  (* small chunks and fragments so even tiny documents span several of
     each, giving the boundary-corruption mutators seams to hit *)
  let tcsbr = List.assoc Layout.Tcsbr encodings in
  let containers =
    List.map
      (fun scheme ->
        ( scheme,
          C.to_bytes
            (C.encrypt ~chunk_size:512 ~fragment_size:64 ~scheme ~key tcsbr)
        ))
      C.all_schemes
  in
  { doc; xml; policy; policy_src = Xmlac_core.Policy.to_string policy; encodings; containers }

(* Plausible wire traffic for the frame-decoder boundary: one framed
   encoding of every request and response shape (plus the bare payloads),
   which Mutate then corrupts. *)
let wire_seed_frames =
  lazy
    (let open Xmlac_wire.Protocol in
     let reqs =
       [
         Hello { version; container = ""; mux = false; trace = "" };
         Hello { version; container = "default"; mux = true; trace = "" };
         Hello { version; container = "default"; mux = true; trace = "fuzz-1" };
         Hello { version = 1; container = ""; mux = false; trace = "" };
         Get_fragment { chunk = 1; fragment = 2; lo = 0; hi = 64 };
         Get_chunk { chunk = 0 };
         Get_digest { chunk = 3 };
         Get_hash_state { chunk = 0; fragment = 1; upto = 32 };
         Get_siblings { chunk = 2; fragment = 0 };
         Get_stats;
         Bye;
       ]
     in
     let resps =
       [
         Hello_ok
           {
             meta_version = version;
             scheme = C.Ecb_mht;
             chunk_size = 512;
             fragment_size = 64;
             payload_length = 2048;
             chunk_count = 4;
             integrity = true;
             batching = true;
             mux = true;
             trace = true;
             generation = 0;
             key_epoch = 0;
           };
         Hello_ok
           {
             meta_version = version;
             scheme = C.Aes_ctr;
             chunk_size = 512;
             fragment_size = 64;
             payload_length = 2048;
             chunk_count = 4;
             integrity = true;
             batching = true;
             mux = false;
             trace = false;
             generation = 0;
             key_epoch = 0;
           };
         Fragment (String.make 64 '\x2a');
         Chunk (String.make 512 '\x2a');
         Digest (String.make 24 '\x2a');
         Digest (String.make 32 '\x2a');
         Hash_state (String.make 29 '\x2a');
         Siblings [ String.make 20 's'; String.make 20 't' ];
         Bye_ok;
         Stats_reply "{\"schema\":\"xwtp.telemetry.v1\"}";
         Err { code = 2; message = "chunk out of range" };
       ]
     in
     let req_payloads = List.map encode_request reqs in
     let resp_payloads = List.map encode_response resps in
     let payloads = req_payloads @ resp_payloads in
     Array.of_list (payloads @ List.map Xmlac_wire.Frame.encode payloads))

let seed_corpus ~seed =
  let open Xmlac_workload.Datasets in
  let doc kind bytes i = generate kind ~seed:(seed + i) ~target_bytes:bytes in
  [
    seed_entry ~seed tiny_doc;
    seed_entry ~seed:(seed + 1) (doc Wsu 700 1);
    seed_entry ~seed:(seed + 2) (doc Sigmod 900 2);
    seed_entry ~seed:(seed + 3) (doc Treebank 700 3);
  ]

type failure = {
  boundary : string;
  mutation : string;  (** "seed" for unmutated differential runs *)
  detail : string;
  input : string;
  policy_src : string option;
      (** for channel-eval failures: the policy text of the run, so the
          crasher can be replayed with provenance capture *)
}

type boundary_stats = {
  b_name : string;
  mutable b_runs : int;
  mutable b_accepted : int;
  mutable b_rejected : int;
  mutable b_failures : int;
}

type report = {
  runs : int;  (** total inputs pushed through a boundary *)
  mutated : int;  (** of which mutated *)
  accepted : int;
  rejected : int;
  failures : failure list;  (** crashes and oracle divergences *)
  per_boundary : boundary_stats list;  (** sorted by boundary name *)
  wall_s : float;
}

let metrics report =
  let open Xmlac_obs.Metrics in
  [
    int "runs" report.runs;
    int "mutated" report.mutated;
    int "accepted" report.accepted;
    int "rejected" report.rejected;
    int "failures" (List.length report.failures);
  ]
  @ List.concat_map
      (fun b ->
        prefix b.b_name
          [
            int "runs" b.b_runs;
            int "accepted" b.b_accepted;
            int "rejected" b.b_rejected;
            int "failures" b.b_failures;
          ])
      report.per_boundary
  @ [ float "wall_s" report.wall_s ]

let view_matches ~oracle events =
  match (oracle, events) with
  | None, [] -> true
  | None, _ :: _ | Some _, [] -> false
  | Some expected, (_ :: _ as evs) -> (
      match Tree.of_events evs with
      | tree -> Tree.equal expected tree
      | exception _ -> false)

let run ?(progress = fun ~done_:_ ~total:_ -> ()) ~seed ~iterations () =
  let span = Xmlac_obs.Span.start "fuzz.campaign" in
  let rng = Prng.make ~seed in
  let entries = Array.of_list (seed_corpus ~seed) in
  let oracles =
    Array.map
      (fun e -> Xmlac_core.Oracle.authorized_view e.policy e.doc)
      entries
  in
  let runs = ref 0
  and mutated = ref 0
  and accepted = ref 0
  and rejected = ref 0
  and failures = ref [] in
  let boundary_tbl : (string, boundary_stats) Hashtbl.t = Hashtbl.create 16 in
  let tally name =
    match Hashtbl.find_opt boundary_tbl name with
    | Some s -> s
    | None ->
        let s =
          { b_name = name; b_runs = 0; b_accepted = 0; b_rejected = 0;
            b_failures = 0 }
        in
        Hashtbl.add boundary_tbl name s;
        s
  in
  (* phase-1 differential runs bypass [record]; count them here *)
  let seed_run boundary =
    incr runs;
    let s = tally boundary in
    s.b_runs <- s.b_runs + 1
  in
  let record ?policy ~boundary ~mutation ~input outcome =
    incr runs;
    let s = tally boundary in
    s.b_runs <- s.b_runs + 1;
    match (outcome : Boundary.outcome) with
    | Accepted ->
        incr accepted;
        s.b_accepted <- s.b_accepted + 1
    | Rejected _ ->
        incr rejected;
        s.b_rejected <- s.b_rejected + 1
    | Crashed detail ->
        s.b_failures <- s.b_failures + 1;
        failures :=
          { boundary; mutation; detail; input; policy_src = policy }
          :: !failures
  in
  let diverged ?policy ~boundary ~mutation ~input detail =
    (tally boundary).b_failures <- (tally boundary).b_failures + 1;
    failures :=
      { boundary; mutation; detail; input; policy_src = policy } :: !failures
  in

  (* Phase 1 — differential sanity on unmutated seeds: every input
     representation (raw XML, each skip-index layout, each encryption
     scheme) must yield exactly the DOM oracle's authorized view. *)
  Array.iteri
    (fun i e ->
      let oracle = oracles.(i) in
      let check ?policy ~boundary ~input events =
        if view_matches ~oracle events then
          (tally boundary).b_accepted <- (tally boundary).b_accepted + 1
        else
          diverged ?policy ~boundary ~mutation:"seed" ~input
            "authorized view differs from the DOM oracle"
      in
      let eval input_s =
        (Xmlac_core.Evaluator.run ~policy:e.policy input_s)
          .Xmlac_core.Evaluator.events
      in
      seed_run "xml-parse";
      check ~boundary:"xml-parse" ~input:e.xml
        (eval (Xmlac_core.Input.of_string e.xml));
      List.iter
        (fun (layout, enc) ->
          let boundary = "skip-decode/" ^ Layout.to_string layout in
          seed_run boundary;
          let decoder = Xmlac_skip_index.Decoder.of_string enc in
          check ~boundary ~input:enc
            (eval (Xmlac_core.Input.of_decoder decoder)))
        e.encodings;
      List.iter
        (fun (scheme, bytes) ->
          seed_run ("channel-eval/" ^ C.scheme_to_string scheme);
          let r = Boundary.channel_eval ~key ~policy:e.policy bytes in
          match r.Boundary.view with
          | Some events ->
              check ~policy:e.policy_src
                ~boundary:("channel-eval/" ^ C.scheme_to_string scheme)
                ~input:bytes events
          | None ->
              diverged ~policy:e.policy_src
                ~boundary:("channel-eval/" ^ C.scheme_to_string scheme)
                ~mutation:"seed" ~input:bytes
                (match r.Boundary.outcome with
                | Rejected msg -> "pristine container rejected: " ^ msg
                | Crashed msg -> "pristine container crashed: " ^ msg
                | Accepted -> "accepted without a view"))
        e.containers;
      (* the same containers through the wire: a fault-free remote terminal
         must be observationally identical to the in-process channel *)
      List.iter
        (fun (scheme, bytes) ->
          let boundary = "remote-eval/" ^ C.scheme_to_string scheme in
          seed_run boundary;
          let r = Boundary.remote_eval ~key ~policy:e.policy bytes in
          match r.Boundary.view with
          | Some events ->
              check ~policy:e.policy_src ~boundary ~input:bytes events
          | None ->
              diverged ~policy:e.policy_src ~boundary ~mutation:"seed"
                ~input:bytes
                (match r.Boundary.outcome with
                | Rejected msg -> "pristine remote terminal rejected: " ^ msg
                | Crashed msg -> "pristine remote terminal crashed: " ^ msg
                | Accepted -> "accepted without a view"))
        e.containers)
    entries;

  (* Phase 2 — fault injection: mutated bytes into every trust boundary,
     round-robin so a campaign of N iterations covers each boundary N/7
     times. Invariant: typed rejection or a faithful view, never a crash. *)
  let pick_entry () = entries.(Prng.int rng (Array.length entries)) in
  for i = 0 to iterations - 1 do
    incr mutated;
    (match List.nth Boundary.all (i mod List.length Boundary.all) with
    | Boundary.Xml_parse ->
        let e = pick_entry () in
        let input, mutation = Mutate.random rng e.xml in
        record ~boundary:"xml-parse" ~mutation ~input
          (Boundary.xml_parse input)
    | Boundary.Skip_decode ->
        let e = pick_entry () in
        let layout, enc =
          List.nth e.encodings (Prng.int rng (List.length e.encodings))
        in
        let input, mutation = Mutate.random rng enc in
        record
          ~boundary:("skip-decode/" ^ Layout.to_string layout)
          ~mutation ~input
          (Boundary.skip_decode input)
    | Boundary.Container ->
        let e = pick_entry () in
        let scheme, bytes =
          List.nth e.containers (Prng.int rng (List.length e.containers))
        in
        let input, mutation = Mutate.random rng bytes in
        record
          ~boundary:("container/" ^ C.scheme_to_string scheme)
          ~mutation ~input
          (Boundary.container ~key input)
    | Boundary.Channel_eval ->
        let ei = Prng.int rng (Array.length entries) in
        let e = entries.(ei) in
        let scheme, bytes =
          List.nth e.containers (Prng.int rng (List.length e.containers))
        in
        let input, mutation = Mutate.random rng bytes in
        let boundary = "channel-eval/" ^ C.scheme_to_string scheme in
        let r = Boundary.channel_eval ~key ~policy:e.policy input in
        record ~policy:e.policy_src ~boundary ~mutation ~input
          r.Boundary.outcome;
        (* accepted tampered bytes must still yield the oracle's view —
           except under ECB, which promises no integrity *)
        (match r.Boundary.view with
        | Some events when scheme <> C.Ecb ->
            if not (view_matches ~oracle:oracles.(ei) events) then
              diverged ~policy:e.policy_src ~boundary ~mutation ~input
                "tampered container accepted with a wrong view"
        | _ -> ())
    | Boundary.Policy_text ->
        let e = pick_entry () in
        let input, mutation = Mutate.random rng e.policy_src in
        record ~boundary:"policy-text" ~mutation ~input
          (Boundary.policy_text input)
    | Boundary.Wire_frame ->
        let frames = Lazy.force wire_seed_frames in
        let frame = frames.(Prng.int rng (Array.length frames)) in
        let input, mutation = Mutate.random rng frame in
        record ~boundary:"wire-frame" ~mutation ~input
          (Boundary.wire_frame input)
    | Boundary.Remote_eval ->
        let ei = Prng.int rng (Array.length entries) in
        let e = entries.(ei) in
        let scheme, bytes =
          List.nth e.containers (Prng.int rng (List.length e.containers))
        in
        let boundary = "remote-eval/" ^ C.scheme_to_string scheme in
        (* half the runs mutate the container the terminal serves, half
           keep it pristine and let the transport misbehave instead *)
        let input, mutation, plan =
          if Prng.int rng 2 = 0 then
            let input, mutation = Mutate.random rng bytes in
            (input, mutation, None)
          else (bytes, "wire-faults", Some Xmlac_wire.Fault.default_plan)
        in
        let r =
          Boundary.remote_eval ?plan
            ~rng:(fun n -> Prng.int rng n)
            ~key ~policy:e.policy input
        in
        record ~policy:e.policy_src ~boundary ~mutation ~input
          r.Boundary.outcome;
        (* whatever survives retries and verification must still be the
           oracle's view — except under ECB, which promises no integrity *)
        (match r.Boundary.view with
        | Some events when scheme <> C.Ecb ->
            if not (view_matches ~oracle:oracles.(ei) events) then
              diverged ~policy:e.policy_src ~boundary ~mutation ~input
                "hostile remote terminal accepted with a wrong view"
        | _ -> ()));
    if (i + 1) mod 100 = 0 then progress ~done_:(i + 1) ~total:iterations
  done;
  let per_boundary =
    Hashtbl.fold (fun _ s acc -> s :: acc) boundary_tbl []
    |> List.sort (fun a b -> compare a.b_name b.b_name)
  in
  {
    runs = !runs;
    mutated = !mutated;
    accepted = !accepted;
    rejected = !rejected;
    failures = List.rev !failures;
    per_boundary;
    wall_s = Xmlac_obs.Span.finish span;
  }

(* Replay a channel-eval failure with a provenance collector and a
   capturing Trace sink, rendering the decision trail as prov.v1 JSONL.
   The replay tolerates the crash reproducing (that is the point); an
   aborted run still yields the records completed before the abort. *)
let failure_provenance f =
  match f.policy_src with
  | None -> None
  | Some src -> (
      match Xmlac_core.Policy.of_string src with
      | Error _ | (exception _) -> None
      | Ok policy ->
          let module P = Xmlac_core.Provenance in
          let module T = Xmlac_obs.Trace in
          let buf = Buffer.create 4096 in
          let add_event name fields =
            Buffer.add_string buf (T.jsonl_line { T.name; fields });
            Buffer.add_char buf '\n'
          in
          let meta_name, meta_fields = P.meta_event () in
          add_event meta_name meta_fields;
          let coll = P.collector () in
          let previous = !T.sink in
          T.set_sink (Some (fun e -> add_event e.T.name e.T.fields));
          Fun.protect
            ~finally:(fun () -> T.set_sink previous)
            (fun () ->
              ignore (Boundary.channel_eval ~provenance:coll ~key ~policy f.input));
          List.iter
            (fun r ->
              let name, fields = P.record_event r in
              add_event name fields)
            (P.records coll);
          Some (Buffer.contents buf))

let save_failures ~dir report =
  if report.failures = [] then []
  else begin
    (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
    List.concat
      (List.mapi
         (fun i f ->
           let safe =
             String.map
               (fun c ->
                 match c with
                 | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
                 | _ -> '_')
               f.boundary
           in
           let base = Filename.concat dir (Printf.sprintf "%s__%03d" safe i) in
           let write ext contents =
             let path = base ^ ext in
             let oc = open_out_bin path in
             output_string oc contents;
             close_out oc;
             path
           in
           let paths = [ write ".bin" f.input ] in
           match failure_provenance f with
           | Some jsonl -> paths @ [ write ".prov.jsonl" jsonl ]
           | None -> paths)
         report.failures)
  end
