(** The differential fuzzing / fault-injection campaign.

    Seeds are structure-aware: real documents from
    {!Xmlac_workload.Datasets} with random policies from
    {!Xmlac_workload.Rule_gen}, encoded in every skip-index layout and
    encrypted under every container scheme. Phase 1 checks the pristine
    seeds differentially against the DOM oracle; phase 2 pushes
    {!Mutate}-corrupted bytes through every {!Boundary}.

    The campaign is a pure function of [seed] — a failure reproduces by
    rerunning with the same seed and iteration count. *)

type failure = {
  boundary : string;
  mutation : string;  (** "seed" for unmutated differential runs *)
  detail : string;
  input : string;  (** the offending bytes, for triage / corpus capture *)
  policy_src : string option;
      (** for channel-eval failures: the policy text of the failing run,
          so the crasher can be replayed with provenance capture *)
}

type boundary_stats = {
  b_name : string;  (** e.g. ["channel-eval/ECB-MHT"] *)
  mutable b_runs : int;
  mutable b_accepted : int;
  mutable b_rejected : int;
  mutable b_failures : int;  (** crashes plus oracle divergences *)
}

type report = {
  runs : int;  (** total inputs pushed through a boundary *)
  mutated : int;  (** of which mutated *)
  accepted : int;
  rejected : int;
  failures : failure list;  (** crashes and oracle divergences *)
  per_boundary : boundary_stats list;  (** sorted by boundary name *)
  wall_s : float;  (** wall-clock time of the whole campaign *)
}

val metrics : report -> Xmlac_obs.Metrics.t
(** Campaign totals plus per-boundary tallies ([<boundary>.runs], …). The
    top-level accepted/rejected totals cover only mutated inputs (as in the
    report); per-boundary tallies cover both phases. *)

val run :
  ?progress:(done_:int -> total:int -> unit) ->
  seed:int ->
  iterations:int ->
  unit ->
  report
(** Run phase 1 plus [iterations] mutated inputs, spread round-robin over
    the seven boundaries. *)

val save_failures : dir:string -> report -> string list
(** Write each failure's input bytes to [dir/<boundary>__NNN.bin]
    (creating [dir]); returns the paths, for corpus triage. Channel-eval
    failures are additionally replayed with provenance capture, writing the
    decision trail to [dir/<boundary>__NNN.prov.jsonl] next to the bytes —
    the last records before the crash point at the hostile construct. *)
