module Prng = Xmlac_workload.Prng

type t = { name : string; apply : Prng.t -> string -> string }

let random_byte rng =
  (* biased towards the interesting corners: 0x00 and 0xFF exercise
     length/continuation fields, arbitrary bytes exercise everything else *)
  match Prng.int rng 4 with
  | 0 -> '\x00'
  | 1 -> '\xff'
  | _ -> Char.chr (Prng.int rng 256)

let truncate =
  {
    name = "truncate";
    apply =
      (fun rng s ->
        let n = String.length s in
        if n = 0 then s else String.sub s 0 (Prng.int rng n));
  }

let bit_flip =
  {
    name = "bit-flip";
    apply =
      (fun rng s ->
        let n = String.length s in
        if n = 0 then s
        else begin
          let b = Bytes.of_string s in
          for _ = 1 to 1 + Prng.int rng 8 do
            let i = Prng.int rng n in
            let bit = 1 lsl Prng.int rng 8 in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
          done;
          Bytes.to_string b
        end);
  }

let byte_set =
  {
    name = "byte-set";
    apply =
      (fun rng s ->
        let n = String.length s in
        if n = 0 then s
        else begin
          let b = Bytes.of_string s in
          for _ = 1 to 1 + Prng.int rng 16 do
            Bytes.set b (Prng.int rng n) (random_byte rng)
          done;
          Bytes.to_string b
        end);
  }

let block_substitute =
  {
    name = "block-substitute";
    apply =
      (fun rng s ->
        let n = String.length s in
        if n < 2 then s
        else begin
          let len = min n (1 + Prng.int rng 64) in
          let src = Prng.int rng (n - len + 1) in
          let dst = Prng.int rng (n - len + 1) in
          let b = Bytes.of_string s in
          Bytes.blit_string s src b dst len;
          Bytes.to_string b
        end);
  }

let block_reorder =
  {
    name = "block-reorder";
    apply =
      (fun rng s ->
        let n = String.length s in
        if n < 4 then s
        else begin
          let len = min (n / 2) (1 + Prng.int rng 32) in
          let a = Prng.int rng (n - (2 * len) + 1) in
          let b_off = a + len + Prng.int rng (n - a - (2 * len) + 1) in
          let b = Bytes.of_string s in
          Bytes.blit_string s a b b_off len;
          Bytes.blit_string s b_off b a len;
          Bytes.to_string b
        end);
  }

let chunk_boundary =
  {
    name = "chunk-boundary";
    apply =
      (fun rng s ->
        let n = String.length s in
        if n = 0 then s
        else begin
          (* hit the container's structural seams: the header, and
             block / fragment / chunk alignment points *)
          let unit = Prng.choice rng [| 1; 8; 64; 256; 512; 2048 |] in
          let slots = max 1 (n / unit) in
          let b = Bytes.of_string s in
          for _ = 1 to 1 + Prng.int rng 3 do
            let base = Prng.int rng slots * unit in
            let i = base + Prng.int rng (min unit (n - base)) in
            Bytes.set b (min i (n - 1)) (random_byte rng)
          done;
          Bytes.to_string b
        end);
  }

let splice =
  {
    name = "splice";
    apply =
      (fun rng s ->
        let n = String.length s in
        if n < 2 then s
        else
          (* prefix of one copy glued to a suffix from elsewhere: shifts
             every later field off its expected offset *)
          let cut = 1 + Prng.int rng (n - 1) in
          let from = Prng.int rng n in
          String.sub s 0 cut ^ String.sub s from (n - from));
  }

let all =
  [|
    truncate; bit_flip; byte_set; block_substitute; block_reorder;
    chunk_boundary; splice;
  |]

let random rng s =
  let rounds = 1 + Prng.int rng 3 in
  let names = ref [] in
  let out = ref s in
  for _ = 1 to rounds do
    let m = Prng.choice rng all in
    names := m.name :: !names;
    out := m.apply rng !out
  done;
  (!out, String.concat "+" (List.rev !names))
