(** Byte-level mutators for the fault-injection harness.

    All mutators are driven by the deterministic {!Xmlac_workload.Prng},
    so a campaign is a pure function of its seed. They are
    structure-oblivious on purpose: the pipeline's robustness contract is
    about arbitrary hostile bytes, not merely slightly-wrong documents. *)

type t = { name : string; apply : Xmlac_workload.Prng.t -> string -> string }

val truncate : t
(** Cut the input at a random point (models interrupted transfers). *)

val bit_flip : t
(** Flip 1–8 random bits. *)

val byte_set : t
(** Overwrite 1–16 random bytes, biased towards [0x00]/[0xFF]. *)

val block_substitute : t
(** Copy a random block over another position (models the block-substitution
    attacks of the paper's Section 6). *)

val block_reorder : t
(** Swap two disjoint blocks. *)

val chunk_boundary : t
(** Corrupt bytes at structural seams: header region and 8 / 64 / 256 /
    512 / 2048-byte alignment points (cipher blocks, fragments, chunks). *)

val splice : t
(** Glue a prefix to a suffix taken from elsewhere, shifting every later
    field off its expected offset. *)

val all : t array

val random : Xmlac_workload.Prng.t -> string -> string * string
(** Apply 1–3 randomly chosen mutators; returns the mutated bytes and a
    ["name+name"] description of what was applied. *)
