(* The versioned machine-readable bench document: one record per experiment
   row (name + profile), carrying that row's metrics and the wall time of
   the experiment that produced it. `bench/main.exe --json FILE` writes
   this; `bench_gate.exe` and CI diff it against a committed baseline.

   Schema v1:
     { "schema_version": 1,
       "generator": "...",
       "mode": "quick" | "full",
       "records": [
         { "name": "fig9", "profile": "Doctor", "wall_s": 0.42,
           "metrics": { "tcsbr.cost.total_s": 6.4, ... } }, ... ] }

   Metric names are dotted; any name whose final segment starts with
   "wall" is wall-clock (machine-dependent) and exempt from gating. *)

let schema_version = 1

type record = {
  name : string;
  profile : string;
  metrics : Metrics.t;
  wall_s : float;
}

type t = {
  version : int;
  generator : string;
  mode : string;
  records : record list;
}

let make ?(generator = "xmlac-bench") ~mode records =
  { version = schema_version; generator; mode; records }

let key r = r.name ^ "/" ^ r.profile

let find t ~name ~profile =
  List.find_opt (fun r -> r.name = name && r.profile = profile) t.records

(* JSON ----------------------------------------------------------------- *)

let record_to_json r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("profile", Json.String r.profile);
      ("wall_s", Json.Float r.wall_s);
      ("metrics", Metrics.to_json r.metrics);
    ]

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int t.version);
      ("generator", Json.String t.generator);
      ("mode", Json.String t.mode);
      ("records", Json.List (List.map record_to_json t.records));
    ]

let to_string t = Json.to_string ~pretty:true (to_json t)

let ( let* ) = Result.bind

let field ~what name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or mistyped %S" what name)

let record_of_json j =
  let what = "record" in
  let* name = field ~what "name" Json.to_string_opt j in
  let what = "record " ^ name in
  let* profile = field ~what "profile" Json.to_string_opt j in
  let* wall_s = field ~what "wall_s" Json.to_float_opt j in
  let* metrics_json = field ~what "metrics" Option.some j in
  let* metrics =
    Result.map_error (fun e -> what ^ ": " ^ e) (Metrics.of_json metrics_json)
  in
  Ok { name; profile; metrics; wall_s }

let of_json j =
  let what = "bench report" in
  let* version = field ~what "schema_version" Json.to_int_opt j in
  if version <> schema_version then
    Error
      (Printf.sprintf "unsupported schema_version %d (this build reads %d)"
         version schema_version)
  else
    let* generator = field ~what "generator" Json.to_string_opt j in
    let* mode = field ~what "mode" Json.to_string_opt j in
    let* records_json = field ~what "records" Json.to_list_opt j in
    let* records =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* r = record_of_json j in
          Ok (r :: acc))
        (Ok []) records_json
    in
    Ok { version; generator; mode; records = List.rev records }

let parse s =
  let* j = Json.parse s in
  of_json j
