(* Per-thread ambient trace context: which trace the current thread is
   working for, and the stack of open spans above it. {!Span.start} pushes
   and {!Span.finish} pops, so any event emitted in between can name its
   parent span without the call site threading ids by hand — that linkage
   is what lets one JSONL file reconstruct a nested timeline.

   Keyed by [Thread.id] (unique across domains), guarded by one mutex:
   every operation is a handful of hashtable words, and none of them sit
   on a hot path — hot paths guard on [Trace.enabled] before touching
   spans at all. Entries are removed as soon as a thread's context empties,
   so thread churn (the wire server spawns a thread per connection) leaks
   nothing. *)

type frame = { mutable trace : string option; mutable spans : int list }

let m = Mutex.create ()
let table : (int, frame) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let key () = Thread.id (Thread.self ())

let frame_of key =
  match Hashtbl.find_opt table key with
  | Some f -> f
  | None ->
      let f = { trace = None; spans = [] } in
      Hashtbl.replace table key f;
      f

let drop_if_empty key f =
  if f.trace = None && f.spans = [] then Hashtbl.remove table key

(* {2 Span ids}

   Unique {e across processes}: the SOE client and the terminal server
   emit into traces that get merged into one file, so a plain counter on
   both sides would collide. Each process mixes its counter through
   splitmix64 seeded from pid and start time; ids are positive 62-bit ints
   (exact in JSON doubles) and never 0 — 0 is the wire's "no span". *)

let splitmix64 z =
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let process_seed =
  Int64.logxor
    (Int64.of_int (Unix.getpid ()))
    (Int64.of_float (Unix.gettimeofday () *. 1e6))

let span_counter = Atomic.make 1

let fresh_span_id () =
  let n = Atomic.fetch_and_add span_counter 1 in
  let mixed = splitmix64 (Int64.add process_seed (Int64.of_int n)) in
  let id = Int64.to_int (Int64.shift_right_logical mixed 2) in
  if id = 0 then 1 else id

(* {2 Ambient context} *)

let trace_id () =
  with_lock @@ fun () ->
  match Hashtbl.find_opt table (key ()) with
  | Some f -> f.trace
  | None -> None

let current_span () =
  with_lock @@ fun () ->
  match Hashtbl.find_opt table (key ()) with
  | Some { spans = s :: _; _ } -> Some s
  | _ -> None

let push_span id =
  with_lock @@ fun () ->
  let f = frame_of (key ()) in
  f.spans <- id :: f.spans

(* pops [id] specifically: unbalanced finishes (a span finished twice, or
   out of order across threads) must not corrupt unrelated spans *)
let pop_span id =
  with_lock @@ fun () ->
  let k = key () in
  match Hashtbl.find_opt table k with
  | None -> ()
  | Some f ->
      (match f.spans with
      | s :: rest when s = id -> f.spans <- rest
      | spans -> f.spans <- List.filter (fun s -> s <> id) spans);
      drop_if_empty k f

let set_trace t =
  with_lock @@ fun () ->
  let k = key () in
  match t with
  | Some _ ->
      let f = frame_of k in
      f.trace <- t
  | None -> (
      match Hashtbl.find_opt table k with
      | None -> ()
      | Some f ->
          f.trace <- None;
          drop_if_empty k f)

(* Scoped trace id for the current thread; restores the previous one (and
   cleans the table entry) even when [f] raises. Worker threads spawned
   inside [f] do {e not} inherit the trace — they carry their own. *)
let with_trace trace f =
  let previous = trace_id () in
  set_trace (Some trace);
  Fun.protect ~finally:(fun () -> set_trace previous) f
