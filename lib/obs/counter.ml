(* Named monotonic counters. Hot paths that already keep a stats record of
   mutable ints should keep doing so (a record field bump is the cheapest
   possible counter); this type is for call sites that want a counter they
   can hand around or collect into a [Metrics.t] without a record type of
   their own. *)

type t = { name : string; mutable value : int }

let make name = { name; value = 0 }
let incr c = c.value <- c.value + 1
let add c n = c.value <- c.value + n
let value c = c.value
let name c = c.name
let reset c = c.value <- 0
let metric c = Metrics.int c.name c.value
let metrics cs = List.map metric cs
