(* The perf gate: decides whether a fresh bench report regressed against a
   committed baseline. Two families of checks:

   - drift: every gated metric of every baseline record must stay within a
     relative tolerance of its baseline value. All gated metrics derive
     from deterministic byte/event counters and the Table 1 model, so on
     an unchanged tree they reproduce bit-for-bit; the tolerance only
     absorbs small intentional re-tunings.

   - shape: the orderings the paper asserts (and EXPERIMENTS.md claims to
     reproduce) must hold within the current report on its own — e.g. BF
     must cost more than TCSBR, ECB-MHT must beat CBC-SHA.

   Wall-clock metrics (any dotted name whose final segment starts with
   "wall") are machine-dependent and never gated. Likewise the [gc.*]
   family (allocation volume moves with the runtime, not the design) and
   the [pool.*] family (job count is a run-time choice — CI runs the same
   report at several [--jobs] values against one baseline). The [cache.*]
   counters, by contrast, depend only on the access sequence and stay
   gated like every other deterministic counter. *)

type violation = { where : string; detail : string }

let default_tolerance = 0.10

let violation where fmt =
  Printf.ksprintf (fun detail -> { where; detail }) fmt

let last_segment name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* Does any dot-separated segment of [name] equal [seg]? Bench experiments
   re-prefix session metrics (e.g. [tcsbr.pool.jobs]), so family membership
   can't be read off the first segment alone. *)
let has_segment name seg =
  String.split_on_char '.' name |> List.exists (String.equal seg)

let gated name =
  let last = last_segment name in
  (not (String.length last >= 4 && String.sub last 0 4 = "wall"))
  && (not (has_segment name "gc"))
  && not (has_segment name "pool")

(* Drift ----------------------------------------------------------------- *)

let compare_metric ~tolerance ~where name base cur acc =
  let b = Metrics.to_float base and c = Metrics.to_float cur in
  if Float.is_nan b || Float.is_nan c then
    if Float.is_nan b <> Float.is_nan c then
      violation where "%s: one side is not a number" name :: acc
    else acc
  else
    let denom = Float.max (Float.abs b) 1e-9 in
    let drift = Float.abs (c -. b) /. denom in
    if drift > tolerance then
      violation where "%s drifted %.1f%% (baseline %g, current %g, tol %.0f%%)"
        name (100. *. drift) b c (100. *. tolerance)
      :: acc
    else acc

let compare_record ~tolerance (base : Bench_report.record)
    (cur : Bench_report.record) acc =
  let where = Bench_report.key base in
  List.fold_left
    (fun acc (name, bv) ->
      if not (gated name) then acc
      else
        match Metrics.find cur.Bench_report.metrics name with
        | None -> violation where "metric %s disappeared" name :: acc
        | Some cv -> compare_metric ~tolerance ~where name bv cv acc)
    acc base.Bench_report.metrics

let drift_violations ~tolerance ~(baseline : Bench_report.t)
    ~(current : Bench_report.t) =
  let acc =
    if baseline.Bench_report.mode <> current.Bench_report.mode then
      [
        violation "report" "mode mismatch: baseline %S, current %S"
          baseline.Bench_report.mode current.Bench_report.mode;
      ]
    else []
  in
  List.fold_left
    (fun acc (base : Bench_report.record) ->
      match
        Bench_report.find current ~name:base.Bench_report.name
          ~profile:base.Bench_report.profile
      with
      | None ->
          violation (Bench_report.key base) "record disappeared" :: acc
      | Some cur -> compare_record ~tolerance base cur acc)
    acc baseline.Bench_report.records

(* Shape ----------------------------------------------------------------- *)

(* [le a b slack]: metric [a] must not exceed metric [b] by more than the
   multiplicative [slack] (1.0 = strict ordering). *)
type ordering = { smaller : string; larger : string; slack : float }

let le ?(slack = 1.0) smaller larger = { smaller; larger; slack }

(* Orderings per record name; every one is a shape the paper asserts and
   EXPERIMENTS.md reports as reproduced. The slack on ECB-MHT vs CBC-SHAC
   covers the Doctor profile, where the two sit within a percent of each
   other (random access buys the least on the least selective view). *)
let orderings = function
  | "fig8" ->
      [ le "tc" "nc"; le ~slack:1.01 "tcsbr" "tcsb" ]
  | "fig9" ->
      [ le "tcsbr_total_s" "bf_total_s"; le "lwb_total_s" "tcsbr_total_s" ]
  | "fig11" ->
      [
        le "ecb_s" "ecb_mht_s";
        le ~slack:1.05 "ecb_mht_s" "cbc_shac_s";
        le "cbc_shac_s" "cbc_sha_s";
      ]
  | "fig12" ->
      [
        le "tcsbr_kbps" "lwb_kbps";
        le "tcsbr_int_kbps" "tcsbr_kbps";
        le "lwb_int_kbps" "lwb_kbps";
      ]
  | "ablation" -> [ le "full_s" "no_skipping_s" ]
  | "dissem" ->
      (* dissemination is only worth shipping if syncing is cheaper than
         re-fetching: the delta bytes for a whole update run (including
         the full-coverage rotation delta) must stay under the bytes the
         same run of full re-fetches paid *)
      [ le "delta_bytes" "full_bytes" ]
  | "remote" ->
      (* the wire ships exactly what the in-process channel meters: the
         equality is pinned as an ordering in both directions *)
      [
        le "wire.payload_bytes" "channel.bytes_to_soe";
        le "channel.bytes_to_soe" "wire.payload_bytes";
      ]
  | "crypto" ->
      (* the fast engine must not lose to the reference one on any DES
         scheme (the AES rows live under "crypto_aes" — both engines run
         the same AES code, so no ordering is pinned there) *)
      [ le ~slack:1.05 "fast.wall_s" "reference.wall_s" ]
  | "crypto_kernel" ->
      (* slack < 1 inverts into a floor: fast must finish the raw
         positional-ECB full-document decrypt in at most a quarter of the
         reference time — the bitsliced kernel's >= 4x claim, gated *)
      [ le ~slack:0.25 "fast.wall_s" "reference.wall_s" ]
  | _ -> []

let shape_violations (report : Bench_report.t) =
  List.fold_left
    (fun acc (r : Bench_report.record) ->
      let where = Bench_report.key r in
      List.fold_left
        (fun acc { smaller; larger; slack } ->
          match
            ( Metrics.find r.Bench_report.metrics smaller,
              Metrics.find r.Bench_report.metrics larger )
          with
          | Some s, Some l ->
              let s = Metrics.to_float s and l = Metrics.to_float l in
              if s > l *. slack then
                violation where "shape broken: %s (%g) exceeds %s (%g)%s"
                  smaller s larger l
                  (if slack > 1.0 then
                     Printf.sprintf " beyond %.0f%% slack"
                       (100. *. (slack -. 1.0))
                   else "")
                :: acc
              else acc
          | None, _ ->
              violation where "shape metric %s missing" smaller :: acc
          | _, None ->
              violation where "shape metric %s missing" larger :: acc)
        acc
        (orderings r.Bench_report.name))
    [] report.Bench_report.records

(* Entry point ----------------------------------------------------------- *)

let check ?(tolerance = default_tolerance) ~baseline ~current () =
  List.rev_append
    (drift_violations ~tolerance ~baseline ~current)
    (shape_violations current)

let pp_violation ppf v =
  Format.fprintf ppf "%s: %s" v.where v.detail
