(* Log-bucketed latency histogram. Geometric buckets double from [lo]:
   bucket 0 is [0, lo), bucket i >= 1 is [lo·2^(i-1), lo·2^i), the last
   bucket is open-ended; with lo = 100 ns and 40 buckets the top closed
   bound is ≈ 15 h, far beyond any run we time. Count, sum and max are
   exact; quantiles are read off bucket upper bounds (≤ 2× error), capped
   at the exact max.

   Naming contract: histogram names must start with "wall" (as in
   "wall_event", "wall_crypto") so every derived metric's final dotted
   segment does too — Gate exempts those from drift checks, which is
   essential because latencies are machine-dependent. *)

type t = {
  name : string;
  mutable count : int;
  mutable sum : float;
  mutable max_value : float;
  buckets : int array;
}

let bucket_count = 40
let lo = 1e-7

let make name =
  {
    name;
    count = 0;
    sum = 0.;
    max_value = 0.;
    buckets = Array.make bucket_count 0;
  }

(* bounds.(i) = lo·2^i. Doubling only bumps the exponent, so every bound
   is exact and boundary values classify exactly: bucket i >= 1 holds
   [bounds.(i-1), bounds.(i)). The previous float_of(log2) formulation put
   values sitting exactly on a bound in the neighbouring bucket whenever
   log2 rounded across the integer. *)
let bounds =
  let b = Array.make (bucket_count - 1) lo in
  for i = 1 to bucket_count - 2 do
    b.(i) <- b.(i - 1) *. 2.
  done;
  b

let bucket_of v =
  let rec go i =
    if i = bucket_count - 1 then i
    else if v < bounds.(i) then i
    else go (i + 1)
  in
  go 0

let observe t v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max_value then t.max_value <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

(* upper bound of bucket [i]: lo for bucket 0, lo·2^i above; the last
   bucket is open-ended so callers cap it with the exact max. *)
let upper_bound i = bounds.(min i (bucket_count - 2))

let quantile t q =
  if t.count = 0 then 0.
  else
    let q = Float.min 1. (Float.max 0. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let rec go i acc =
      let acc = acc + t.buckets.(i) in
      if acc >= target || i = bucket_count - 1 then
        Float.min (upper_bound i) t.max_value
      else go (i + 1) acc
    in
    go 0 0

let max_value t = t.max_value

(* Merge [s] into [into]: count/sum/max exact, buckets elementwise. The
   aggregation primitive for fleet telemetry — each session observes into
   its own histogram lock-free, and an owner merges under its own lock at
   flush points, so the hot path never contends. *)
let merge ~into (s : t) =
  into.count <- into.count + s.count;
  into.sum <- into.sum +. s.sum;
  if s.max_value > into.max_value then into.max_value <- s.max_value;
  Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) s.buckets

(* independent copy: quantiles of a snapshot are stable while the original
   keeps observing on other threads *)
let snapshot t = { t with buckets = Array.copy t.buckets }

let reset t =
  t.count <- 0;
  t.sum <- 0.;
  t.max_value <- 0.;
  Array.fill t.buckets 0 bucket_count 0

let metrics t =
  [
    Metrics.int (t.name ^ "_count") t.count;
    Metrics.float (t.name ^ "_mean_s") (mean t);
    Metrics.float (t.name ^ "_p50_s") (quantile t 0.5);
    Metrics.float (t.name ^ "_p95_s") (quantile t 0.95);
    Metrics.float (t.name ^ "_p99_s") (quantile t 0.99);
    Metrics.float (t.name ^ "_max_s") t.max_value;
  ]
