(* Minimal JSON — just enough for the machine-readable bench report and the
   perf gate that consumes it. Deliberately dependency-free (the bench gate
   must build on a bare switch). Integers stay distinct from floats so
   counter metrics survive a write/parse round trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Writing ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest representation that parses back to the same float and is valid
   JSON (a bare "1." or "nan" is not) *)
let float_literal f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s9 = Printf.sprintf "%.9g" f in
    if float_of_string s9 = f then s9 else Printf.sprintf "%.17g" f

let rec write ~indent ~level buf j =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_into buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      newline ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (name, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (level + 1);
          escape_into buf name;
          Buffer.add_string buf (if indent then ": " else ":");
          write ~indent ~level:(level + 1) buf value)
        fields;
      newline ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) j =
  let buf = Buffer.create 1024 in
  write ~indent:pretty ~level:0 buf j;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* Parsing ------------------------------------------------------------------ *)

exception Parse_error of string * int

let fail pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (m, pos))) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c.pos "expected %C, found %C" ch x
  | None -> fail c.pos "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos "invalid literal"

(* encode one Unicode scalar value as UTF-8 *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.src then fail c.pos "truncated \\u escape";
  let v = ref 0 in
  for i = c.pos to c.pos + 3 do
    let d =
      match c.src.[i] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | ch -> fail i "bad hex digit %C in \\u escape" ch
    in
    v := (!v lsl 4) lor d
  done;
  c.pos <- c.pos + 4;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then fail c.pos "unterminated string";
    match c.src.[c.pos] with
    | '"' -> c.pos <- c.pos + 1
    | '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1
        | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1
        | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1
        | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1
        | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1
        | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1
        | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1
        | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1
        | Some 'u' ->
            c.pos <- c.pos + 1;
            let u = hex4 c in
            let u =
              (* combine a surrogate pair when one follows *)
              if
                u >= 0xD800 && u <= 0xDBFF
                && c.pos + 1 < String.length c.src
                && c.src.[c.pos] = '\\'
                && c.src.[c.pos + 1] = 'u'
              then begin
                c.pos <- c.pos + 2;
                let lo = hex4 c in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail c.pos "unpaired surrogate"
              end
              else u
            in
            add_utf8 buf u
        | _ -> fail c.pos "bad escape");
        go ()
    | ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  let has ch = String.contains s ch in
  if has '.' || has 'e' || has 'E' then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail start "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail start "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let name = parse_string c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          fields := (name, value) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ()
          | Some '}' -> c.pos <- c.pos + 1
          | _ -> fail c.pos "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements ()
          | Some ']' -> c.pos <- c.pos + 1
          | _ -> fail c.pos "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos "unexpected %C" ch

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
      else Ok v
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "%s at byte %d" msg pos)

(* Accessors ---------------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
