(* A metrics snapshot: an ordered list of named numbers. This is the
   interchange format between component-local stats records (which stay
   plain mutable records on the hot paths) and the three consumers: the
   human `--stats` summary, the bench `--json` report, and the perf gate. *)

type value = Int of int | Float of float
type t = (string * value) list

let int name v = (name, Int v)
let float name v = (name, Float v)
let prefix p m = List.map (fun (name, v) -> (p ^ "." ^ name, v)) m
let find m name = List.assoc_opt name m
let to_float = function Int i -> float_of_int i | Float f -> f

let value_to_json = function Int i -> Json.Int i | Float f -> Json.Float f

let to_json m = Json.Obj (List.map (fun (n, v) -> (n, value_to_json v)) m)

let of_json = function
  | Json.Obj fields ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, Json.Int i) :: rest -> go ((name, Int i) :: acc) rest
        | (name, Json.Float f) :: rest -> go ((name, Float f) :: acc) rest
        | (name, Json.Null) :: rest ->
            (* non-finite floats serialize as null; resurface as nan *)
            go ((name, Float Float.nan) :: acc) rest
        | (name, _) :: _ ->
            Error (Printf.sprintf "metric %S: expected a number" name)
      in
      go [] fields
  | _ -> Error "metrics: expected an object"

let value_to_string = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.6g" f

(* aligned "name value" lines for the human `--stats` summaries *)
let render m =
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 m
  in
  List.map
    (fun (n, v) -> Printf.sprintf "%-*s %s" width n (value_to_string v))
    m
