(* Wall-clock span timings. Simulated SOE costs come from the cost model,
   never from these; spans time the *harness* (bench experiments, fuzz
   campaigns) so machine-readable reports can carry real wall time next to
   modeled time. *)

type t = { name : string; started_at : float }

let now () = Unix.gettimeofday ()

let start name =
  if Trace.enabled () then Trace.emit "span.start" [ ("name", Json.String name) ];
  { name; started_at = now () }

(* clamped: the wall clock can step backwards (NTP), and a negative
   duration would poison downstream sums and histograms *)
let elapsed t = Float.max 0. (now () -. t.started_at)

let finish t =
  let e = elapsed t in
  if Trace.enabled () then
    Trace.emit "span.end"
      [ ("name", Json.String t.name); ("wall_s", Json.Float e) ];
  e

(* run [f], returning its result and the wall seconds it took; [span.end]
   is emitted even when [f] raises, so traces of failed runs stay balanced *)
let time name f =
  let s = start name in
  let wall = ref 0. in
  let r = Fun.protect ~finally:(fun () -> wall := finish s) f in
  (r, !wall)
