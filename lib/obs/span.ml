(* Wall-clock span timings. Simulated SOE costs come from the cost model,
   never from these; spans time the *harness* (bench experiments, fuzz
   campaigns) so machine-readable reports can carry real wall time next to
   modeled time. *)

type t = { name : string; started_at : float }

let now () = Unix.gettimeofday ()

let start name =
  if Trace.enabled () then Trace.emit "span.start" [ ("name", Json.String name) ];
  { name; started_at = now () }

let elapsed t = now () -. t.started_at

let finish t =
  let e = elapsed t in
  if Trace.enabled () then
    Trace.emit "span.end"
      [ ("name", Json.String t.name); ("wall_s", Json.Float e) ];
  e

(* run [f], returning its result and the wall seconds it took *)
let time name f =
  let s = start name in
  let r = f () in
  (r, finish s)
