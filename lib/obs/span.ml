(* Wall-clock span timings. Simulated SOE costs come from the cost model,
   never from these; spans time the *harness* (bench experiments, fuzz
   campaigns) and the wire's request path so machine-readable reports can
   carry real wall time next to modeled time.

   Every span has a process-unique [id] and links to the span it was
   started inside ([parent], from the per-thread ambient {!Context}) and
   the ambient trace id, so nested spans emitted from both ends of a wire
   reconstruct into one timeline instead of flattening. [span.start] /
   [span.end] events carry [ts] (absolute wall clock) for cross-process
   ordering; [wall_s] on the end event stays the measured duration. *)

type t = {
  name : string;
  id : int;
  parent : int option;
  trace : string option;
  started_at : float;
}

let now () = Unix.gettimeofday ()

let context_fields ~id ~parent ~trace =
  (match trace with
  | Some tr -> [ ("trace", Json.String tr) ]
  | None -> [])
  @ [ ("span", Json.Int id) ]
  @ match parent with Some p -> [ ("parent", Json.Int p) ] | None -> []

let start name =
  let parent = Context.current_span () in
  let trace = Context.trace_id () in
  let id = Context.fresh_span_id () in
  Context.push_span id;
  let started_at = now () in
  if Trace.enabled () then
    Trace.emit "span.start"
      (("name", Json.String name)
      :: context_fields ~id ~parent ~trace
      @ [ ("ts", Json.Float started_at) ]);
  { name; id; parent; trace; started_at }

(* clamped: the wall clock can step backwards (NTP), and a negative
   duration would poison downstream sums and histograms *)
let elapsed t = Float.max 0. (now () -. t.started_at)

let finish t =
  let e = elapsed t in
  Context.pop_span t.id;
  if Trace.enabled () then
    Trace.emit "span.end"
      (("name", Json.String t.name)
      :: context_fields ~id:t.id ~parent:t.parent ~trace:t.trace
      @ [ ("ts", Json.Float (now ())); ("wall_s", Json.Float e) ]);
  e

(* run [f], returning its result and the wall seconds it took; [span.end]
   is emitted even when [f] raises, so traces of failed runs stay balanced *)
let time name f =
  let s = start name in
  let wall = ref 0. in
  let r = Fun.protect ~finally:(fun () -> wall := finish s) f in
  (r, !wall)

(* A point event stamped with the ambient context: trace id, innermost
   open span as [span] (the event's {e parent} — point events open no span
   of their own), and the wall clock. The cheap building block for hot
   paths that want to appear on a timeline without span bookkeeping;
   everything beyond the [enabled] read happens only when a sink is on. *)
let event name fields =
  if Trace.enabled () then begin
    let ctx =
      (match Context.trace_id () with
      | Some tr -> [ ("trace", Json.String tr) ]
      | None -> [])
      @
      match Context.current_span () with
      | Some p -> [ ("parent", Json.Int p) ]
      | None -> []
    in
    Trace.emit name ((("ts", Json.Float (now ())) :: ctx) @ fields)
  end
