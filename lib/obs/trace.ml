(* Opt-in structured trace events. Counters are always on; traces cost one
   ref read when disabled (the default) — hot paths must guard field
   construction behind [enabled ()]. *)

type event = { name : string; fields : (string * Json.t) list }

let sink : (event -> unit) option ref = ref None
let set_sink s = sink := s
let enabled () = Option.is_some !sink

let emit name fields =
  match !sink with None -> () | Some f -> f { name; fields }

let render e =
  let field (name, v) =
    let s =
      match v with
      | Json.String s -> s
      | other -> Json.to_string other
    in
    Printf.sprintf "%s=%s" name s
  in
  String.concat " " (e.name :: List.map field e.fields)

(* one line per event on stderr — the default sink for CLI --trace flags *)
let stderr_sink e = prerr_endline ("trace: " ^ render e)

(* one event as one compact JSON object: {"event":<name>, <fields>...} *)
let jsonl_line e =
  Json.to_string (Json.Obj (("event", Json.String e.name) :: e.fields))

(* Buffered JSONL sink over an out_channel. Returns the sink and a flush
   function; the caller owns the channel and must flush before closing.
   Mutex-protected: trace events arrive from every thread of a process
   (the wire server emits per-request spans from connection threads), and
   an unguarded Buffer would interleave or crash. The lock costs nothing
   on the paths that matter — hot paths only reach a sink when tracing is
   explicitly on. *)
let jsonl_sink ?(buffer_bytes = 65536) oc =
  let m = Mutex.create () in
  let buf = Buffer.create (min buffer_bytes 65536) in
  let flush_locked () =
    Buffer.output_buffer oc buf;
    Buffer.clear buf;
    flush oc
  in
  let flush_buf () =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) flush_locked
  in
  let emit e =
    let line = jsonl_line e in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if Buffer.length buf >= buffer_bytes then flush_locked ())
  in
  (emit, flush_buf)

(* Run [f] with a JSONL file sink installed, teeing to any sink that was
   already set. The previous sink is restored — and the file flushed and
   closed — even when [f] raises. *)
let with_jsonl_file ?buffer_bytes path f =
  let oc = open_out_bin path in
  let emit, flush_buf = jsonl_sink ?buffer_bytes oc in
  let previous = !sink in
  let tee e =
    emit e;
    match previous with Some s -> s e | None -> ()
  in
  set_sink (Some tee);
  Fun.protect
    ~finally:(fun () ->
      set_sink previous;
      flush_buf ();
      close_out oc)
    f
