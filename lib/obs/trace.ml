(* Opt-in structured trace events. Counters are always on; traces cost one
   ref read when disabled (the default) — hot paths must guard field
   construction behind [enabled ()]. *)

type event = { name : string; fields : (string * Json.t) list }

let sink : (event -> unit) option ref = ref None
let set_sink s = sink := s
let enabled () = Option.is_some !sink

let emit name fields =
  match !sink with None -> () | Some f -> f { name; fields }

let render e =
  let field (name, v) =
    let s =
      match v with
      | Json.String s -> s
      | other -> Json.to_string other
    in
    Printf.sprintf "%s=%s" name s
  in
  String.concat " " (e.name :: List.map field e.fields)

(* one line per event on stderr — the default sink for CLI --trace flags *)
let stderr_sink e = prerr_endline ("trace: " ^ render e)
