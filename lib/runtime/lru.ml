(* A small LRU cache for the SOE's per-session working set (decrypted
   fragment state, chunk plaintexts, digest values).

   Capacities here are tiny — the paper's SOE is a smart card with a few KB
   of RAM — so the recency list is a plain doubly linked list plus a
   Hashtbl from key to node: O(1) find/insert/evict without amortized
   array churn.

   All caches of one session share a single [stats] record, surfaced as
   the cache.* counters in Session.metrics. The counters are driven purely
   by the (deterministic) sequence of lookups, so they are gate-checked
   like every other byte/event counter. *)

type stats = { mutable hits : int; mutable misses : int; mutable evicted : int }

let fresh_stats () = { hits = 0; misses = 0; evicted = 0 }

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option; (* toward most-recent *)
  mutable next : ('k, 'v) node option; (* toward least-recent *)
}

type ('k, 'v) t = {
  capacity : int;
  stats : stats;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
}

let create ~capacity ~stats =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; stats; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let stats t = t.stats

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

(* non-counting, non-refreshing lookup: the prefetch planner peeks at the
   cache without perturbing either the stats or the recency order *)
let peek t key =
  match Hashtbl.find_opt t.table key with
  | Some node -> Some node.value
  | None -> None

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.stats.hits <- t.stats.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      None

let insert ?on_evict t key value =
  (* replacing an existing binding refreshes it, no eviction *)
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      unlink t old;
      Hashtbl.remove t.table key
  | None ->
      if Hashtbl.length t.table >= t.capacity then
        match t.tail with
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key;
            t.stats.evicted <- t.stats.evicted + 1;
            (match on_evict with
            | Some f -> f lru.key lru.value
            | None -> ())
        | None -> ());
  let node = { key; value; prev = None; next = None } in
  Hashtbl.replace t.table key node;
  push_front t node

(* keys in most-recent-first order — the shadow the prefetch planner
   simulates eviction on *)
let keys_mru t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.head
