(** Least-recently-used cache for the SOE's per-session working set.

    O(1) find/insert/evict (Hashtbl + intrusive recency list). All caches
    of a session share one {!stats} record, which feeds the [cache.*]
    counters of [Session.metrics]; the counters depend only on the lookup
    sequence, never on wall time, so they are gated like any other
    deterministic counter. *)

type stats = { mutable hits : int; mutable misses : int; mutable evicted : int }

val fresh_stats : unit -> stats

type ('k, 'v) t

val create : capacity:int -> stats:stats -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : _ t -> int
val length : _ t -> int
val stats : _ t -> stats

val find : ('k, 'v) t -> 'k -> 'v option
(** Counting lookup: bumps [hits]/[misses] and refreshes recency. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Non-counting, non-refreshing lookup, for planners that must not
    perturb the cache state they are predicting. *)

val insert : ?on_evict:('k -> 'v -> unit) -> ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or refresh) a binding, evicting the least-recently-used entry
    when at capacity; [on_evict] receives the victim (e.g. to recycle its
    buffers). *)

val keys_mru : ('k, _) t -> 'k list
(** Keys in most-recently-used-first order. *)
