(* A tiny Domain-based worker pool for the decrypt-ahead pipeline.

   The channel's read path splits each request into per-fragment (or
   per-chunk) units, fetches their ciphertext on the coordinator, and then
   hands the pure compute — 3DES block decryption, SHA-1 hashing, Merkle
   root reconstruction — to [run]. Workers touch only the unit handed to
   them: no counters, no Trace, no shared mutable channel state, so the
   observable counter stream is identical at any job count and only wall
   time changes.

   Determinism of failures: every task always runs to completion or to its
   own exception; after the batch, the exception of the smallest task
   index (if any) is re-raised. jobs = 1 follows the same
   catch-all-then-raise-first protocol inline, so hostile containers
   produce the same error regardless of --jobs. *)

type job = {
  tasks : (unit -> unit) array;
  mutable next : int; (* next unclaimed task index *)
  mutable remaining : int; (* tasks not yet finished *)
  errors : exn option array;
}

type t = {
  jobs : int;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : job option;
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  (* coordinator-only observability tallies *)
  mutable sections : int;
  mutable tasks_run : int;
}

let jobs t = t.jobs
let sections t = t.sections
let tasks_run t = t.tasks_run

(* claim task indices until the job runs dry; must be called locked,
   returns locked *)
let drain t job =
  let continue = ref true in
  while !continue do
    if job.next < Array.length job.tasks then begin
      let i = job.next in
      job.next <- i + 1;
      Mutex.unlock t.m;
      (try job.tasks.(i) () with e -> job.errors.(i) <- Some e);
      Mutex.lock t.m;
      job.remaining <- job.remaining - 1;
      if job.remaining = 0 then Condition.broadcast t.work_done
    end
    else continue := false
  done

let rec worker_loop t =
  Mutex.lock t.m;
  while (not t.shutdown) && t.current = None do
    Condition.wait t.work_ready t.m
  done;
  if t.shutdown then Mutex.unlock t.m
  else begin
    (match t.current with Some job -> drain t job | None -> ());
    (* job drained (though peers may still be finishing): park again so
       this worker does not spin on the exhausted job *)
    while
      (not t.shutdown)
      && (match t.current with
         | Some job -> job.next >= Array.length job.tasks
         | None -> false)
    do
      Condition.wait t.work_ready t.m
    done;
    Mutex.unlock t.m;
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      shutdown = false;
      domains = [];
      sections = 0;
      tasks_run = 0;
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let raise_first job =
  Array.iter (function Some e -> raise e | None -> ()) job.errors

let run t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    t.sections <- t.sections + 1;
    t.tasks_run <- t.tasks_run + n;
    if t.jobs = 1 || n = 1 || t.domains = [] then begin
      (* inline mode: same run-everything-then-raise-first protocol *)
      let errors = Array.make n None in
      Array.iteri
        (fun i task -> try task () with e -> errors.(i) <- Some e)
        tasks;
      raise_first { tasks; next = n; remaining = 0; errors }
    end
    else begin
      let job = { tasks; next = 0; remaining = n; errors = Array.make n None } in
      Mutex.lock t.m;
      t.current <- Some job;
      Condition.broadcast t.work_ready;
      (* the coordinator participates instead of idling *)
      drain t job;
      while job.remaining > 0 do
        Condition.wait t.work_done t.m
      done;
      t.current <- None;
      Mutex.unlock t.m;
      raise_first job
    end
  end

let shutdown t =
  Mutex.lock t.m;
  t.shutdown <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
