(** Domain-based worker pool for the decrypt-ahead pipeline.

    [run] executes a batch of independent compute tasks (block decryption,
    hashing, Merkle verification) across [jobs] domains, the caller
    participating as one of them. Every task always runs; exceptions are
    collected and the one with the smallest task index is re-raised after
    the batch, so failures are deterministic across schedules and across
    job counts. [jobs = 1] (the default everywhere) runs everything inline
    with the identical protocol.

    Workers must only touch the task handed to them — counters, Trace and
    other shared session state stay on the coordinator. *)

type t

val create : jobs:int -> t
(** Spawns [jobs - 1] worker domains ([jobs] is clamped to at least 1;
    [jobs = 1] spawns none). *)

val run : t -> (unit -> unit) array -> unit
(** Run all tasks to completion, then re-raise the exception of the
    smallest failing task index, if any. Not reentrant. *)

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a

val jobs : t -> int
val sections : t -> int
(** Number of [run] batches executed so far. *)

val tasks_run : t -> int
(** Total tasks executed across all batches. *)
