let bits_for_value n =
  if n < 0 then invalid_arg "Bitio.bits_for_value: negative";
  let rec go bits limit = if n < limit then bits else go (bits + 1) (limit * 2) in
  go 0 1

let bits_for_index m =
  if m <= 0 then invalid_arg "Bitio.bits_for_index: empty set";
  bits_for_value (m - 1)

let varint_length v =
  if v < 0 then invalid_arg "Bitio.varint_length: negative";
  let rec go n v = if v < 128 then n else go (n + 1) (v lsr 7) in
  go 1 v

module Writer = struct
  type t = {
    buf : Buffer.t;
    mutable acc : int;  (* pending bits, MSB side unused *)
    mutable acc_bits : int;
  }

  let create () = { buf = Buffer.create 256; acc = 0; acc_bits = 0 }

  let flush_full_bytes w =
    while w.acc_bits >= 8 do
      let byte = (w.acc lsr (w.acc_bits - 8)) land 0xFF in
      Buffer.add_char w.buf (Char.chr byte);
      w.acc_bits <- w.acc_bits - 8;
      w.acc <- w.acc land ((1 lsl w.acc_bits) - 1)
    done

  let bits w ~width v =
    if width < 0 || width > 57 then invalid_arg "Bitio.Writer.bits: bad width";
    if width > 0 then begin
      if v < 0 || (width < 62 && v lsr width <> 0) then
        invalid_arg "Bitio.Writer.bits: value does not fit";
      w.acc <- (w.acc lsl width) lor v;
      w.acc_bits <- w.acc_bits + width;
      flush_full_bytes w
    end

  let align w =
    if w.acc_bits > 0 then begin
      let pad = 8 - w.acc_bits in
      w.acc <- w.acc lsl pad;
      w.acc_bits <- 8;
      flush_full_bytes w
    end

  let varint w v =
    if v < 0 then invalid_arg "Bitio.Writer.varint: negative";
    align w;
    let rec go v =
      if v < 128 then Buffer.add_char w.buf (Char.chr v)
      else begin
        Buffer.add_char w.buf (Char.chr (128 lor (v land 0x7F)));
        go (v lsr 7)
      end
    in
    go v

  let bytes w s =
    align w;
    Buffer.add_string w.buf s

  let length w = Buffer.length w.buf + if w.acc_bits > 0 then 1 else 0

  let contents w =
    align w;
    Buffer.contents w.buf
end

module Reader = struct
  type t = {
    read : pos:int -> len:int -> string;
    length : int;
    mutable pos : int;  (* next unread byte *)
    mutable acc : int;  (* bits read from [pos-?] not yet consumed *)
    mutable acc_bits : int;
    mutable buf : string;  (* readahead window *)
    mutable buf_start : int;  (* absolute position of buf.[0] *)
  }

  let create ~read ~length =
    { read; length; pos = 0; acc = 0; acc_bits = 0; buf = ""; buf_start = 0 }

  (* One cipher block of readahead. Repeated single-byte reads (bit fields,
     varints) land in the same 8-byte block, which the backing channel
     fetches and decrypts whole in any case — so buffering exactly that
     block skips a channel call per byte without changing what the channel
     fetches, decrypts or charges. The payload is immutable, so the window
     stays valid across seeks. *)
  let block = 8

  let fill r pos =
    let start = pos - (pos mod block) in
    let len = min block (r.length - start) in
    r.buf <- r.read ~pos:start ~len;
    r.buf_start <- start

  let byte_at r pos =
    if pos < r.buf_start || pos >= r.buf_start + String.length r.buf then
      fill r pos;
    Char.code r.buf.[pos - r.buf_start]

  let of_string s =
    create
      ~read:(fun ~pos ~len -> String.sub s pos len)
      ~length:(String.length s)

  let position r =
    (* the logical position counts partially-consumed bytes as consumed *)
    r.pos

  let seek r pos =
    if pos < 0 || pos > r.length then invalid_arg "Bitio.Reader.seek";
    r.pos <- pos;
    r.acc <- 0;
    r.acc_bits <- 0

  let at_end r = r.pos >= r.length && r.acc_bits = 0
  let length r = r.length

  let refill r =
    if r.pos >= r.length then Error.corrupt "read past end of input";
    r.acc <- (r.acc lsl 8) lor byte_at r r.pos;
    r.acc_bits <- r.acc_bits + 8;
    r.pos <- r.pos + 1

  let bits r ~width =
    if width < 0 || width > 57 then invalid_arg "Bitio.Reader.bits: bad width";
    if width = 0 then 0
    else begin
      while r.acc_bits < width do
        refill r
      done;
      let v = (r.acc lsr (r.acc_bits - width)) land ((1 lsl width) - 1) in
      r.acc_bits <- r.acc_bits - width;
      r.acc <- r.acc land ((1 lsl r.acc_bits) - 1);
      v
    end

  let align r =
    r.acc <- 0;
    r.acc_bits <- 0

  let varint r =
    align r;
    let rec go shift acc =
      if r.pos >= r.length then Error.corrupt "truncated varint";
      (* cap at 8 bytes of payload (2^56-1): far beyond any valid field,
         and keeps hostile continuation-byte chains from overflowing the
         OCaml integer into a negative value *)
      if shift > 49 then Error.corrupt "varint too long";
      let b = byte_at r r.pos in
      r.pos <- r.pos + 1;
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bytes r n =
    align r;
    if n < 0 || r.pos + n > r.length then Error.corrupt "truncated byte run";
    let s =
      if
        r.pos >= r.buf_start
        && r.pos + n <= r.buf_start + String.length r.buf
      then String.sub r.buf (r.pos - r.buf_start) n
      else r.read ~pos:r.pos ~len:n
    in
    r.pos <- r.pos + n;
    s
end
