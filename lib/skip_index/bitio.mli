(** Bit-level encoding primitives for the Skip index.

    Element metadata is bit-packed MSB-first and padded to a byte frontier
    (the paper: "the metadata need be aligned on a byte frontier"), so every
    node encoding starts at a byte boundary — a requirement for byte-level
    subtree skipping and for the 8-byte-aligned encrypted random accesses. *)

val bits_for_value : int -> int
(** [bits_for_value n] — bits needed to represent any value in [0..n]
    (0 when [n = 0]). *)

val bits_for_index : int -> int
(** [bits_for_index m] — bits needed to index a set of [m] elements
    (0 when [m <= 1]). @raise Invalid_argument when [m <= 0]. *)

val varint_length : int -> int
(** Encoded size in bytes of an unsigned LEB128 integer. *)

module Writer : sig
  type t

  val create : unit -> t
  val bits : t -> width:int -> int -> unit
  (** Append [width] bits (MSB first). [width] may be 0. *)

  val align : t -> unit
  (** Pad with zero bits to the next byte frontier. *)

  val varint : t -> int -> unit
  (** Append an unsigned LEB128 integer (aligns first). *)

  val bytes : t -> string -> unit
  (** Append raw bytes (aligns first). *)

  val length : t -> int
  (** Bytes written so far, counting a partial byte as one. *)

  val contents : t -> string
end

module Reader : sig
  type t

  val create : read:(pos:int -> len:int -> string) -> length:int -> t
  (** A reader over an abstract byte source (a plain string in tests, the
      decrypting SOE channel in production). *)

  val of_string : string -> t

  val position : t -> int
  (** Current byte position ([align]ed readers only advance past whole
      bytes once re-aligned). *)

  val seek : t -> int -> unit
  (** Jump to an absolute byte position (discards partial-byte state). *)

  val at_end : t -> bool
  val length : t -> int

  val bits : t -> width:int -> int
  (** Read [width] bits MSB-first. @raise Error.Error ([Corrupt]) past the
      end of the source; @raise Invalid_argument on a bad [width] (an API
      error, not an input error). *)

  val align : t -> unit

  val varint : t -> int
  (** Read an unsigned LEB128 integer. @raise Error.Error ([Corrupt]) when
      truncated or longer than 8 payload bytes (hostile inputs could
      otherwise overflow the OCaml integer). The result is always
      non-negative and below [2^56]. *)

  val bytes : t -> int -> string
  (** @raise Error.Error ([Corrupt]) when fewer than [n] bytes remain. *)
end
