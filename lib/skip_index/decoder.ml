module Event = Xmlac_xml.Event

type source = { read : pos:int -> len:int -> string; length : int }

let source_of_string s =
  { read = (fun ~pos ~len -> String.sub s pos len); length = String.length s }

(* Byte-level skip accounting (the paper's Section 7 currency: how much of
   the encoded document the SOE never has to examine). Shared by the
   sub-decoders that re-read pending subtrees, so readback work is counted
   against the same snapshot. *)
type stats = {
  mutable events_decoded : int;
  mutable subtree_skips : int;  (* skip() calls: whole subtrees jumped over *)
  mutable rest_skips : int;  (* skip_rest() calls: element tails jumped over *)
  mutable bytes_skipped : int;  (* encoded bytes never streamed past *)
  mutable readback_subtrees : int;  (* pending regions re-read after a skip *)
  mutable readback_bytes : int;
}

let fresh_stats () =
  {
    events_decoded = 0;
    subtree_skips = 0;
    rest_skips = 0;
    bytes_skipped = 0;
    readback_subtrees = 0;
    readback_bytes = 0;
  }

let stats_metrics (s : stats) : Xmlac_obs.Metrics.t =
  Xmlac_obs.Metrics.
    [
      int "events_decoded" s.events_decoded;
      int "subtree_skips" s.subtree_skips;
      int "rest_skips" s.rest_skips;
      int "bytes_skipped" s.bytes_skipped;
      int "readback_subtrees" s.readback_subtrees;
      int "readback_bytes" s.readback_bytes;
    ]

type frame = {
  tag : string;
  set : int array;  (* DescTag of this element; [||] for leaves / no bitmap *)
  has_set : bool;  (* false when the layout records no bitmaps *)
  size : int;  (* content size in bytes; -1 when unknown (TC layout) *)
  content_start : int;
  end_pos : int;  (* content_start + size; -1 when unknown *)
}

type t = {
  source : source;
  reader : Bitio.Reader.t;
  hdr : Encoder.header;
  dict : Dict.t;
  full_set : int array;
  stats : stats;
  mutable stack : frame list;
  mutable after_start : bool;  (* the last event was a Start *)
  mutable finished : bool;
}

let reader_of_source source =
  Bitio.Reader.create ~read:source.read ~length:source.length

let of_source source =
  let reader = reader_of_source source in
  let hdr = Encoder.read_header reader in
  match hdr.Encoder.dict with
  | None ->
      (* a valid layout, but not one this decoder can stream: callers of the
         binary decoder treat an NC payload like any other undecodable input *)
      Error.corrupt "the NC layout has no binary body"
  | Some dict ->
      {
        source;
        reader;
        hdr;
        dict;
        full_set = Array.init (Dict.size dict) Fun.id;
        stats = fresh_stats ();
        stack = [];
        after_start = false;
        finished = false;
      }

let of_string s = of_source (source_of_string s)
let of_source_result source = Error.guard (fun () -> of_source source)
let of_string_result s = Error.guard (fun () -> of_string s)

let layout t = t.hdr.Encoder.layout
let dict t = t.dict
let header t = t.hdr
let stats t = t.stats
let position t = Bitio.Reader.position t.reader
let can_skip t = Layout.has_sizes (layout t)

(* Decoding context for children of the current innermost element. *)
let parent_context t =
  match t.stack with
  | [] -> (t.full_set, true, t.hdr.Encoder.body_size)
  | f :: _ -> (f.set, f.has_set, f.size)

(* Absolute end of the region a child encoding may occupy; -1 when the
   layout records no sizes (TC). *)
let parent_limit t =
  match t.stack with
  | [] -> t.hdr.Encoder.body_start + t.hdr.Encoder.body_size
  | f :: _ -> f.end_pos

let read_bitmap t reference =
  let selected = ref [] in
  Array.iter
    (fun tag_idx ->
      if Bitio.Reader.bits t.reader ~width:1 = 1 then
        selected := tag_idx :: !selected)
    reference;
  Array.of_list (List.rev !selected)

(* [of_source] refuses NC inputs, so [layout t] is never NC below; the
   remaining [assert false] arms on NC are internal invariants, not
   reachable from input bytes. All field values, however, COME from input
   bytes: tag and size fields are range-checked here because their bit
   widths usually allow values beyond the valid range (e.g. a 3-entry
   dictionary is indexed by 2 bits that can also encode 3). *)
let read_element t kind =
  let parent_set, parent_has_set, parent_size = parent_context t in
  let lay = layout t in
  let dict_size = Dict.size t.dict in
  let tag_idx =
    match lay with
    | Layout.Tcsbr ->
        if not parent_has_set then
          Error.corrupt "missing parent tag set";
        if Array.length parent_set = 0 then
          Error.corrupt "element inside content declared leaf-only";
        let w = Bitio.bits_for_index (Array.length parent_set) in
        let i = Bitio.Reader.bits t.reader ~width:w in
        if i >= Array.length parent_set then
          Error.corrupt "tag code %d outside parent set of %d" i
            (Array.length parent_set);
        parent_set.(i)
    | _ ->
        if dict_size = 0 then Error.corrupt "element with an empty dictionary";
        let i =
          Bitio.Reader.bits t.reader ~width:(Bitio.bits_for_index dict_size)
        in
        if i >= dict_size then
          Error.corrupt "tag index %d outside dictionary of %d" i dict_size;
        i
  in
  let size =
    match lay with
    | Layout.Tc -> -1
    | Layout.Tcs | Layout.Tcsb ->
        Bitio.Reader.bits t.reader
          ~width:(Bitio.bits_for_value t.hdr.Encoder.body_size)
    | Layout.Tcsbr ->
        if parent_size < 0 then Error.corrupt "missing parent size";
        Bitio.Reader.bits t.reader ~width:(Bitio.bits_for_value parent_size)
    | Layout.Nc -> assert false
  in
  let set, has_set =
    (* a leaf has no element children, so its DescTag set is known to be
       empty in every layout *)
    if kind = Wire.kind_leaf then ([||], true)
    else
      match lay with
      | Layout.Tcsbr -> (read_bitmap t parent_set, true)
      | Layout.Tcsb -> (read_bitmap t t.full_set, true)
      | Layout.Tc | Layout.Tcs -> ([||], false)
      | Layout.Nc -> assert false
  in
  Bitio.Reader.align t.reader;
  let content_start = Bitio.Reader.position t.reader in
  (* a subtree must lie inside its parent's content (or the body, at the
     root): anything else would let hostile sizes aim [skip]/[seek] outside
     the valid region *)
  (if size >= 0 then
     let limit = parent_limit t in
     if limit >= 0 && content_start + size > limit then
       Error.corrupt "subtree size %d overruns its parent (at byte %d)" size
         content_start);
  let tag = Dict.tag t.dict tag_idx in
  let frame =
    {
      tag;
      set;
      has_set;
      size;
      content_start;
      end_pos = (if size < 0 then -1 else content_start + size);
    }
  in
  t.stack <- frame :: t.stack;
  t.after_start <- true;
  Event.Start { tag; attributes = [] }

let rec next t : Event.t option =
  let e = next_raw t in
  if e <> None then t.stats.events_decoded <- t.stats.events_decoded + 1;
  e

and next_raw t : Event.t option =
  if t.finished then None
  else begin
    let pop () =
      match t.stack with
      | [] -> Error.corrupt "close marker without an open element"
      | f :: rest ->
          t.stack <- rest;
          if rest = [] then t.finished <- true;
          t.after_start <- false;
          Some (Event.End f.tag)
    in
    (* implicit close: reached the end of the innermost element's content *)
    match t.stack with
    | f :: _ when f.end_pos >= 0 && position t >= f.end_pos -> pop ()
    | _ ->
        if Bitio.Reader.at_end t.reader then
          if t.stack = [] then None
          else Error.corrupt "truncated body: %d elements still open"
                 (List.length t.stack)
        else begin
          let kind = Bitio.Reader.bits t.reader ~width:2 in
          if kind = Wire.kind_text then begin
            let len = Bitio.Reader.varint t.reader in
            let s = Bitio.Reader.bytes t.reader len in
            t.after_start <- false;
            Some (Event.Text s)
          end
          else if kind = Wire.kind_close then begin
            (* the closing marker occupies a full padded byte *)
            Bitio.Reader.align t.reader;
            pop ()
          end
          else Some (read_element t kind)
        end
  end

let top_frame_after_start t =
  if not t.after_start then
    invalid_arg "Skip_index.Decoder: not positioned right after a Start event";
  (* internal invariant: [after_start] is only ever set by [read_element],
     which pushes the frame it describes *)
  match t.stack with [] -> assert false | f :: _ -> f

let descendant_tags t =
  if not t.after_start then None
  else
    match t.stack with
    | f :: _ when f.has_set ->
        Some (Array.to_list (Array.map (Dict.tag t.dict) f.set))
    | _ -> None

let descendant_tag_set t =
  if not t.after_start then None
  else
    match t.stack with
    | f :: _ when f.has_set ->
        let table = Hashtbl.create (Array.length f.set * 2) in
        Array.iter (fun i -> Hashtbl.replace table (Dict.tag t.dict i) ()) f.set;
        Some (fun tag -> Hashtbl.mem table tag)
    | _ -> None

let skip t =
  let f = top_frame_after_start t in
  if f.end_pos < 0 then
    invalid_arg "Skip_index.Decoder: this layout cannot skip";
  t.stats.subtree_skips <- t.stats.subtree_skips + 1;
  t.stats.bytes_skipped <-
    t.stats.bytes_skipped + (f.end_pos - Bitio.Reader.position t.reader);
  Bitio.Reader.seek t.reader f.end_pos;
  t.after_start <- false

type subtree_handle = {
  h_tag : string;
  h_set : int array;
  h_has_set : bool;
  h_size : int;
  h_content_start : int;
}

let subtree_handle t =
  let f = top_frame_after_start t in
  if f.end_pos < 0 then
    invalid_arg "Skip_index.Decoder: this layout records no subtree sizes";
  {
    h_tag = f.tag;
    h_set = f.set;
    h_has_set = f.has_set;
    h_size = f.size;
    h_content_start = f.content_start;
  }

let handle_tag h = h.h_tag
let handle_size h = h.h_size

type range_handle = {
  r_set : int array;
  r_has_set : bool;
  r_parent_size : int;  (* full content size of the parent, for field widths *)
  r_start : int;
  r_end : int;
}

let rest_handle t =
  match t.stack with
  | [] -> None
  | f :: _ ->
      if f.end_pos < 0 then None
      else
        Some
          {
            r_set = f.set;
            r_has_set = f.has_set;
            r_parent_size = f.size;
            r_start = Bitio.Reader.position t.reader;
            r_end = f.end_pos;
          }

let skip_rest t =
  match t.stack with
  | [] -> invalid_arg "Skip_index.Decoder.skip_rest: no open element"
  | f :: _ ->
      if f.end_pos < 0 then
        invalid_arg "Skip_index.Decoder.skip_rest: this layout cannot skip";
      t.stats.rest_skips <- t.stats.rest_skips + 1;
      t.stats.bytes_skipped <-
        t.stats.bytes_skipped + (f.end_pos - Bitio.Reader.position t.reader);
      Bitio.Reader.seek t.reader f.end_pos;
      t.after_start <- false

let range_size h = h.r_end - h.r_start

(* Readbacks re-read a pending region whose extent is already known, so
   instead of dribbling byte-level reads through the backing channel, the
   whole region is fetched as one slab — bulk reads are the channel
   pipeline's best case — and the sub-decoder parses from memory. The slab
   is block-aligned, so the channel fetches exactly the cipher blocks the
   byte-level reads would have touched. A hostile size field that escapes
   the region maps outside the slab and fails as typed corruption. *)
let slab_source t ~start ~stop =
  let lo = start - (start mod 8) in
  let hi = min t.source.length ((stop + 7) / 8 * 8) in
  let slab = t.source.read ~pos:lo ~len:(hi - lo) in
  {
    read =
      (fun ~pos ~len ->
        if pos < lo || pos + len > hi then
          Error.corrupt "readback outside its region";
        String.sub slab (pos - lo) len);
    length = t.source.length;
  }

let read_subtree t h =
  t.stats.readback_subtrees <- t.stats.readback_subtrees + 1;
  t.stats.readback_bytes <- t.stats.readback_bytes + h.h_size;
  let sub =
    {
      source = t.source;
      reader =
        reader_of_source
          (slab_source t ~start:h.h_content_start
             ~stop:(h.h_content_start + h.h_size));
      hdr = t.hdr;
      dict = t.dict;
      full_set = t.full_set;
      stats = t.stats;
      stack =
        [
          {
            tag = h.h_tag;
            set = h.h_set;
            has_set = h.h_has_set;
            size = h.h_size;
            content_start = h.h_content_start;
            end_pos = h.h_content_start + h.h_size;
          };
        ];
      after_start = true;
      finished = false;
    }
  in
  Bitio.Reader.seek sub.reader h.h_content_start;
  let rec drain acc =
    match next sub with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  Event.Start { tag = h.h_tag; attributes = [] } :: drain []

let events_result s =
  Error.guard (fun () ->
      let t = of_string s in
      let rec drain acc =
        match next t with None -> List.rev acc | Some e -> drain (e :: acc)
      in
      drain [])

let read_range t h =
  t.stats.readback_subtrees <- t.stats.readback_subtrees + 1;
  t.stats.readback_bytes <- t.stats.readback_bytes + range_size h;
  (* a synthetic frame bounds the range; its closing event is dropped *)
  let sentinel = "#range" in
  let sub =
    {
      source = t.source;
      reader = reader_of_source (slab_source t ~start:h.r_start ~stop:h.r_end);
      hdr = t.hdr;
      dict = t.dict;
      full_set = t.full_set;
      stats = t.stats;
      stack =
        [
          {
            tag = sentinel;
            set = h.r_set;
            has_set = h.r_has_set;
            size = h.r_parent_size;
            content_start = h.r_start;
            end_pos = h.r_end;
          };
        ];
      after_start = false;
      finished = false;
    }
  in
  Bitio.Reader.seek sub.reader h.r_start;
  let rec drain acc =
    match next sub with
    | None -> List.rev acc
    | Some (Event.End tag) when tag == sentinel && sub.finished -> List.rev acc
    | Some e -> drain (e :: acc)
  in
  drain []
