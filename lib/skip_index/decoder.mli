(** Streaming Skip-index decoder (paper Section 4.1, "Decoding the document
    structure"). The decoder keeps an internal SkipStack holding, for every
    open element, its descendant-tag set and subtree size, and exposes:

    - the usual open/text/close event stream;
    - [descendant_tags], the {e DescTag} information the evaluator's
      [SkipSubtree] decision needs;
    - [skip], which jumps over the content of the current element without
      reading (hence, in the encrypted setting, without transferring or
      decrypting) a single byte of it;
    - [subtree_handle]/[read_subtree], random re-entry into a previously
      skipped subtree — used to deliver pending parts (Section 5).

    The byte source is abstract so the same decoder runs over a plain
    in-memory string or over the SOE's decrypting, integrity-checking
    channel. *)

type source = { read : pos:int -> len:int -> string; length : int }

val source_of_string : string -> source

type t

val of_source : source -> t
(** Reads and validates the header. @raise Error.Error ([Corrupt]) on
    malformed input or on the NC layout (which has no binary body; parse
    its XML text directly instead). *)

val of_string : string -> t

val of_source_result : source -> (t, Error.t) result
val of_string_result : string -> (t, Error.t) result

val events_result : string -> (Xmlac_xml.Event.t list, Error.t) result
(** Decode a whole document. The decoder's trust-boundary contract: for any
    byte string — hostile, truncated, bit-flipped — this returns either the
    event stream or [Error (Corrupt _)]; it never raises. *)

val layout : t -> Layout.t
val dict : t -> Dict.t
val header : t -> Encoder.header

(** Skip accounting: how much of the encoded document was jumped over
    versus decoded, the Section 7 currency. Counters are always on (a
    record-field bump per event/skip); sub-decoders created by
    {!read_subtree}/{!read_range} charge the parent decoder's record, so
    pending-delivery readback is visible in the same snapshot. *)
type stats = {
  mutable events_decoded : int;
  mutable subtree_skips : int;
  mutable rest_skips : int;
  mutable bytes_skipped : int;
  mutable readback_subtrees : int;
  mutable readback_bytes : int;
}

val fresh_stats : unit -> stats
val stats : t -> stats
val stats_metrics : stats -> Xmlac_obs.Metrics.t

val next : t -> Xmlac_xml.Event.t option
(** Next event; [None] once the root element has been closed.
    @raise Error.Error ([Corrupt]) on malformed bytes: truncated body,
    out-of-range tag or size fields, close markers with no open element.
    The emitted stream is always balanced (every [Start] eventually gets
    its [End]) unless that exception cuts it short. *)

val descendant_tags : t -> string list option
(** After a [Start] event: the tags that can appear below the element just
    opened ([None] when the layout does not record bitmaps, or for the
    instant after non-[Start] events). *)

val descendant_tag_set : t -> (string -> bool) option
(** Same information as a membership test (constant-time). *)

val can_skip : t -> bool
(** Whether the layout records subtree sizes. *)

val skip : t -> unit
(** Immediately after a [Start] event: jump over the whole content of the
    element just opened; the matching [End] event is still delivered by the
    following [next]. @raise Invalid_argument if the layout cannot skip or
    if not positioned right after a [Start]. *)

val position : t -> int
(** Current absolute byte position in the encoded document (monotone except
    across {!skip}/{!read_subtree}). *)

type subtree_handle
(** Captured right after a [Start] event; identifies the element's content
    byte range plus the decoding context needed to re-enter it later. *)

val subtree_handle : t -> subtree_handle
(** @raise Invalid_argument if not right after a [Start], or if the layout
    does not record sizes. *)

val handle_tag : subtree_handle -> string
val handle_size : subtree_handle -> int

val read_subtree : t -> subtree_handle -> Xmlac_xml.Event.t list
(** Decode the full subtree (including its own [Start]/[End] events) from a
    handle, through the same byte source, without disturbing the main
    cursor. *)

type range_handle
(** A byte range of consecutive sibling nodes inside an open element —
    captured before skipping the {e remaining} content of that element
    (the paper triggers skipping decisions on close events too). *)

val rest_handle : t -> range_handle option
(** The remaining unread content of the innermost open element. [None] when
    no element is open or when the layout records no sizes. *)

val range_size : range_handle -> int

val skip_rest : t -> unit
(** Jump to the end of the innermost open element's content; the matching
    [End] is delivered by the following {!next}. @raise Invalid_argument
    when the layout cannot skip. *)

val read_range : t -> range_handle -> Xmlac_xml.Event.t list
(** Decode the nodes of a captured range (no enclosing element events). *)
