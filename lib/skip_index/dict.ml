type t = { tags : string array; by_name : (string, int) Hashtbl.t }

let of_sorted_array tags =
  let by_name = Hashtbl.create (Array.length tags * 2) in
  Array.iteri (fun i tag -> Hashtbl.replace by_name tag i) tags;
  { tags; by_name }

let of_tags list =
  of_sorted_array (Array.of_list (List.sort_uniq String.compare list))

let of_tree tree = of_sorted_array (Array.of_list (Xmlac_xml.Tree.distinct_tags tree))

let size d = Array.length d.tags
let index d tag = Hashtbl.find d.by_name tag
let index_opt d tag = Hashtbl.find_opt d.by_name tag
let tag d i = d.tags.(i)
let tags d = d.tags

let write w d =
  Bitio.Writer.varint w (Array.length d.tags);
  Array.iter
    (fun tag ->
      Bitio.Writer.varint w (String.length tag);
      Bitio.Writer.bytes w tag)
    d.tags

let read r =
  let n = Bitio.Reader.varint r in
  (* each entry takes at least one byte, so a count reaching beyond the
     remaining input is necessarily corrupt — and must be caught before
     Array.init tries to allocate it *)
  if n > Bitio.Reader.length r - Bitio.Reader.position r then
    Error.corrupt "tag dictionary announces %d entries, input too short" n;
  let tags =
    Array.init n (fun _ ->
        let len = Bitio.Reader.varint r in
        Bitio.Reader.bytes r len)
  in
  of_sorted_array tags
