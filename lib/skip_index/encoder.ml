module Tree = Xmlac_xml.Tree

type header = {
  layout : Layout.t;
  dict : Dict.t option;
  element_count : int;
  body_start : int;
  body_size : int;
}

(* Annotated tree: dictionary indices, descendant-tag sets (sorted arrays of
   dictionary indices, strict descendants only) and mutable subtree sizes
   refined by the fixpoint. *)
type anode =
  | Elem of {
      tag : int;
      desctag : int array;
      mutable size : int;  (* byte length of the encoded children *)
      children : anode array;
    }
  | Text of string

module Int_set = Set.Make (Int)

let annotate dict tree =
  let rec go = function
    | Tree.Text s -> (Text s, Int_set.empty)
    | Tree.Element { tag; attributes; children } ->
        if attributes <> [] then
          invalid_arg "Skip_index.Encoder: attributes are not representable";
        let annotated = List.map go children in
        let desc =
          List.fold_left
            (fun acc (child, child_desc) ->
              match child with
              | Elem e -> Int_set.add e.tag (Int_set.union child_desc acc)
              | Text _ -> acc)
            Int_set.empty annotated
        in
        ( Elem
            {
              tag = Dict.index dict tag;
              desctag = Array.of_list (Int_set.elements desc);
              size = 0;
              children = Array.of_list (List.map fst annotated);
            },
          desc )
  in
  fst (go tree)

(* Position of [v] in a sorted array. *)
let index_in_set set v =
  let rec go lo hi =
    if lo >= hi then invalid_arg "Skip_index.Encoder: tag not in parent set"
    else
      let mid = (lo + hi) / 2 in
      if set.(mid) = v then mid else if set.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length set)

let is_intermediate = function
  | Elem { desctag; _ } -> Array.length desctag > 0
  | Text _ -> false

(* Field widths for one element, given its parent's context. In the
   recursive layout both derive from the parent; otherwise they are global.
   [global_size_width] is the width used by TCS/TCSB (derived from the whole
   body size). *)
let element_widths layout ~dict_size ~global_size_width ~parent_set ~parent_size node =
  match node with
  | Text _ -> invalid_arg "element_widths: text"
  | Elem _ -> (
      match layout with
      | Layout.Nc -> invalid_arg "element_widths: NC"
      | Layout.Tc -> (Bitio.bits_for_index dict_size, 0, 0)
      | Layout.Tcs -> (Bitio.bits_for_index dict_size, global_size_width, 0)
      | Layout.Tcsb ->
          ( Bitio.bits_for_index dict_size,
            global_size_width,
            if is_intermediate node then dict_size else 0 )
      | Layout.Tcsbr ->
          ( Bitio.bits_for_index (Array.length parent_set),
            Bitio.bits_for_value parent_size,
            if is_intermediate node then Array.length parent_set else 0 ))

let header_bytes_of_bits bits = (bits + 7) / 8

(* One fixpoint round: recompute every element's encoded-children size using
   the sizes of the previous round for field widths. Returns the body size
   (the encoded size of the root node). *)
let fixpoint_round layout ~dict_size ~global_size_width ~full_set ~prev_body root =
  let rec enc_size ~parent_set ~parent_size node =
    match node with
    | Text s -> Wire.text_overhead (String.length s) + String.length s
    | Elem e ->
        let prev_self = e.size in
        let tag_w, size_w, bitmap_w =
          element_widths layout ~dict_size ~global_size_width ~parent_set
            ~parent_size node
        in
        let header = header_bytes_of_bits (2 + tag_w + size_w + bitmap_w) in
        let content =
          Array.fold_left
            (fun acc child ->
              acc + enc_size ~parent_set:e.desctag ~parent_size:prev_self child)
            0 e.children
        in
        e.size <- content;
        let close = if layout = Layout.Tc then 1 else 0 in
        header + content + close
  in
  enc_size ~parent_set:full_set ~parent_size:prev_body root

let resolve_sizes layout ~dict_size ~full_set root =
  let prev_body = ref 0 in
  let stable = ref false in
  let rounds = ref 0 in
  let body = ref 0 in
  while not !stable do
    incr rounds;
    (* sizes only grow round to round and each growth widens some varint or
       size field, so 64 rounds bound any document an OCaml string can hold;
       the guard is a safety net against a broken sizing model, surfaced as
       a typed error rather than a crash *)
    if !rounds > 64 then
      raise
        (Error.Error
           (Error.Encode_failure
              (Printf.sprintf "size fixpoint did not converge after %d rounds"
                 (!rounds - 1))));
    let global_size_width = Bitio.bits_for_value !prev_body in
    let snapshot =
      (* body size and all element sizes from the previous round *)
      !prev_body
    in
    body :=
      fixpoint_round layout ~dict_size ~global_size_width ~full_set
        ~prev_body:snapshot root;
    if !body = !prev_body then stable := true else prev_body := !body
  done;
  !body

(* A second full pass after the fixpoint converges would find all sizes
   unchanged, so the sizes stored in the nodes are consistent with the
   widths derived from them. *)

let write_body layout ~dict_size ~body_size ~full_set w root =
  let global_size_width = Bitio.bits_for_value body_size in
  let rec emit ~parent_set ~parent_size node =
    match node with
    | Text s ->
        Bitio.Writer.bits w ~width:2 Wire.kind_text;
        Bitio.Writer.varint w (String.length s);
        Bitio.Writer.bytes w s
    | Elem e ->
        let tag_w, size_w, bitmap_w =
          element_widths layout ~dict_size ~global_size_width ~parent_set
            ~parent_size node
        in
        let kind =
          if is_intermediate node then Wire.kind_intermediate else Wire.kind_leaf
        in
        Bitio.Writer.bits w ~width:2 kind;
        let tag_code =
          match layout with
          | Layout.Tcsbr -> index_in_set parent_set e.tag
          | _ -> e.tag
        in
        Bitio.Writer.bits w ~width:tag_w tag_code;
        Bitio.Writer.bits w ~width:size_w e.size;
        if bitmap_w > 0 then begin
          (* one membership bit per tag of the reference set, MSB first;
             written bit by bit since the set can exceed the word size *)
          let member = Int_set.of_seq (Array.to_seq e.desctag) in
          let reference =
            match layout with
            | Layout.Tcsbr -> parent_set
            | _ -> Array.init dict_size Fun.id
          in
          Array.iter
            (fun t ->
              Bitio.Writer.bits w ~width:1 (if Int_set.mem t member then 1 else 0))
            reference
        end;
        Bitio.Writer.align w;
        Array.iter (emit ~parent_set:e.desctag ~parent_size:e.size) e.children;
        if layout = Layout.Tc then begin
          Bitio.Writer.bits w ~width:2 Wire.kind_close;
          Bitio.Writer.align w
        end
  in
  emit ~parent_set:full_set ~parent_size:body_size root

let encode ~layout tree =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bytes w Wire.magic;
  Bitio.Writer.bits w ~width:8 (Layout.to_byte layout);
  (match layout with
  | Layout.Nc ->
      let xml = Xmlac_xml.Writer.tree_to_string tree in
      Bitio.Writer.varint w (Tree.count_elements tree);
      Bitio.Writer.varint w (String.length xml);
      Bitio.Writer.bytes w xml
  | _ ->
      let dict = Dict.of_tree tree in
      let full_set = Array.init (Dict.size dict) Fun.id in
      let root = annotate dict tree in
      let body_size =
        if Layout.has_sizes layout then
          resolve_sizes layout ~dict_size:(Dict.size dict) ~full_set root
        else
          (* no size fields: a single sizing pass suffices *)
          fixpoint_round layout ~dict_size:(Dict.size dict)
            ~global_size_width:0 ~full_set ~prev_body:0 root
      in
      Dict.write w dict;
      Bitio.Writer.varint w (Tree.count_elements tree);
      Bitio.Writer.varint w body_size;
      write_body layout ~dict_size:(Dict.size dict) ~body_size ~full_set w root);
  Bitio.Writer.contents w

let encode_result ~layout tree =
  match encode ~layout tree with
  | s -> Ok s
  | exception Error.Error e -> Error e

(* Sanity bounds shared by both header shapes: the body must fit in the
   source, and every element costs at least one encoded byte, so the
   element count can never exceed the body size. Rejecting absurd values
   here keeps all field widths derived from them within [Bitio]'s limits. *)
let check_header_bounds r ~element_count ~body_size =
  let body_start = Bitio.Reader.position r in
  if body_size > Bitio.Reader.length r - body_start then
    Error.corrupt "body size %d exceeds remaining input" body_size;
  if element_count > body_size then
    Error.corrupt "element count %d exceeds body size %d" element_count
      body_size;
  body_start

let read_header r =
  let m = Bitio.Reader.bytes r (String.length Wire.magic) in
  if m <> Wire.magic then Error.corrupt "bad magic";
  let layout =
    match Layout.of_byte (Bitio.Reader.bits r ~width:8) with
    | Some l -> l
    | None -> Error.corrupt "unknown layout byte"
  in
  match layout with
  | Layout.Nc ->
      let element_count = Bitio.Reader.varint r in
      let body_size = Bitio.Reader.varint r in
      let body_start = check_header_bounds r ~element_count ~body_size in
      { layout; dict = None; element_count; body_start; body_size }
  | _ ->
      let dict = Dict.read r in
      let element_count = Bitio.Reader.varint r in
      let body_size = Bitio.Reader.varint r in
      let body_start = check_header_bounds r ~element_count ~body_size in
      { layout; dict = Some dict; element_count; body_start; body_size }
