(** Skip-index encoder (paper Section 4.1): turns an XML tree into the
    compact byte encoding of one of the five {!Layout} variants. The
    encoding is what gets encrypted into the secure container; its byte
    positions are what subtree skipping operates on.

    For the recursive layout (TCSBR), the width of every metadata field of
    an element is derived from its parent's descendant-tag set and subtree
    size; mutually dependent sizes are resolved by a global fixpoint
    (sizes only grow across iterations, so it converges).

    Attributes are not representable (the paper treats them as elements and
    "does not further discuss" them): use
    {!Xmlac_xml.Tree.map_tags}-style preprocessing to fold them into child
    elements first. @raise Invalid_argument on a tree with attributes. *)

val encode : layout:Layout.t -> Xmlac_xml.Tree.t -> string
(** Full encoded document: header (magic, layout, tag dictionary, body
    length) followed by the body. @raise Error.Error
    ([Encode_failure]) if the size fixpoint fails to converge — never
    expected in practice (sizes grow monotonically and are bounded), kept
    as a typed safety net. *)

val encode_result :
  layout:Layout.t -> Xmlac_xml.Tree.t -> (string, Error.t) result
(** {!encode} with the fixpoint safety net surfaced as a [result]. *)

type header = {
  layout : Layout.t;
  dict : Dict.t option;  (** [None] for the NC layout *)
  element_count : int;
  body_start : int;  (** byte offset of the body *)
  body_size : int;
}

val read_header : Bitio.Reader.t -> header
(** @raise Error.Error ([Corrupt]) on a malformed header: bad magic,
    unknown layout, truncated dictionary, or size/count fields inconsistent
    with the source length. *)
