type t = Corrupt of string | Encode_failure of string

exception Error of t

let to_string = function
  | Corrupt msg -> Printf.sprintf "corrupt skip-index data: %s" msg
  | Encode_failure msg -> Printf.sprintf "skip-index encoding failed: %s" msg

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Error (Corrupt msg))) fmt

let guard f = match f () with v -> Ok v | exception Error e -> Error e
