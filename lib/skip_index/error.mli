(** Typed errors for the Skip-index library.

    [Corrupt] covers every failure that hostile or damaged {e encoded input}
    can provoke in the reader/decoder stack: bad magic, unknown layouts,
    truncated bodies, oversized varints, out-of-range tag or size fields,
    close markers without an open element. Decoding functions raise
    {!Error}[ (Corrupt _)] on such input and nothing else — in particular,
    never [Assert_failure] and never an out-of-bounds [Invalid_argument].
    ([Invalid_argument] is still raised for {e API misuse}, e.g. skipping on
    a layout without sizes, which no input bytes can trigger.)

    [Encode_failure] covers encoder-side failures (size-fixpoint
    divergence); see {!Encoder.encode_result}. *)

type t = Corrupt of string | Encode_failure of string

exception Error of t

val to_string : t -> string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Error}[ (Corrupt msg)]. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a decoding thunk, catching {!Error}. *)
