module Tree = Xmlac_xml.Tree

type path = int list

type operation =
  | Replace_subtree of path * Tree.t
  | Insert_child of path * int * Tree.t
  | Delete_subtree of path
  | Set_text of path * string

let rec edit_at node path ~(f : Tree.t -> Tree.t option) : Tree.t option =
  match path with
  | [] -> f node
  | i :: rest -> (
      match node with
      | Tree.Text _ -> invalid_arg "Update: path descends into a text node"
      | Tree.Element { tag; attributes; children } ->
          if i < 0 || i >= List.length children then
            invalid_arg "Update: dangling path";
          let children =
            List.concat
              (List.mapi
                 (fun j child ->
                   if j <> i then [ child ]
                   else
                     match edit_at child rest ~f with
                     | Some c -> [ c ]
                     | None -> [])
                 children)
          in
          Some (Tree.Element { tag; attributes; children }))

let apply_to_tree tree = function
  | Replace_subtree (path, replacement) -> (
      (match replacement with
      | Tree.Text _ when path = [] ->
          invalid_arg "Update: the root must stay an element"
      | _ -> ());
      match edit_at tree path ~f:(fun _ -> Some replacement) with
      | Some t -> t
      | None -> invalid_arg "Update: cannot delete the root")
  | Delete_subtree path -> (
      if path = [] then invalid_arg "Update: cannot delete the root";
      match edit_at tree path ~f:(fun _ -> None) with
      | Some t -> t
      | None -> invalid_arg "Update: cannot delete the root")
  | Insert_child (parent, index, node) -> (
      let insert parent_node =
        match parent_node with
        | Tree.Text _ -> invalid_arg "Update: cannot insert under a text node"
        | Tree.Element { tag; attributes; children } ->
            let n = List.length children in
            if index < 0 || index > n then invalid_arg "Update: bad insert index";
            let before = List.filteri (fun j _ -> j < index) children in
            let after = List.filteri (fun j _ -> j >= index) children in
            Some (Tree.Element { tag; attributes; children = before @ [ node ] @ after })
      in
      match edit_at tree parent ~f:insert with
      | Some t -> t
      | None -> assert false)
  | Set_text (path, text) -> (
      let set node =
        match node with
        | Tree.Text _ -> Some (Tree.Text text)
        | Tree.Element _ -> invalid_arg "Update: Set_text targets an element"
      in
      if path = [] then invalid_arg "Update: Set_text targets the root";
      match edit_at tree path ~f:set with
      | Some t -> t
      | None -> assert false)

let decode_tree encoded =
  let dec = Decoder.of_string encoded in
  let rec drain acc =
    match Decoder.next dec with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  Tree.of_events (drain [])

type cost = {
  old_bytes : int;
  new_bytes : int;
  unchanged_prefix : int;
  unchanged_suffix : int;
  rewritten_bytes : int;
  chunks_to_reencrypt : int;
  chunks_dirty : int list;
  dictionary_changed : bool;
}

let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let common_suffix ~bound a b =
  let la = String.length a and lb = String.length b in
  let n = min (min la lb) (min (la - bound) (lb - bound)) in
  let rec go i =
    if i < n && a.[la - 1 - i] = b.[lb - 1 - i] then go (i + 1) else i
  in
  go 0

let update_encoded ?(chunk_size = 2048) ~layout encoded operation =
  if layout = Layout.Nc then invalid_arg "Update: NC layout";
  let tree = decode_tree encoded in
  let old_dict = Dict.of_tree tree in
  let tree' = apply_to_tree tree operation in
  let new_dict = Dict.of_tree tree' in
  let encoded' = Encoder.encode ~layout tree' in
  let unchanged_prefix = common_prefix encoded encoded' in
  let unchanged_suffix = common_suffix ~bound:unchanged_prefix encoded encoded' in
  (* The container binds every cipher block to its absolute position, so
     re-encryption is needed exactly where the new encoding differs from the
     old one *at the same position* — a shifted tail counts in full, a
     truncated tail costs nothing. *)
  let old_len = String.length encoded and new_len = String.length encoded' in
  let shared = min old_len new_len in
  let rewritten_bytes = ref (max 0 (new_len - shared)) in
  let chunks = Hashtbl.create 16 in
  for i = shared to new_len - 1 do
    Hashtbl.replace chunks (i / chunk_size) ()
  done;
  for i = 0 to shared - 1 do
    if encoded.[i] <> encoded'.[i] then begin
      incr rewritten_bytes;
      Hashtbl.replace chunks (i / chunk_size) ()
    end
  done;
  (* shrinking the document truncates trailing chunks: the last surviving
     chunk must be re-sealed even if its bytes are unchanged *)
  if new_len < old_len && new_len > 0 then
    Hashtbl.replace chunks ((new_len - 1) / chunk_size) ();
  let rewritten_bytes = !rewritten_bytes in
  let chunks_dirty =
    List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) chunks [])
  in
  ( encoded',
    {
      old_bytes = String.length encoded;
      new_bytes = String.length encoded';
      unchanged_prefix;
      unchanged_suffix;
      rewritten_bytes;
      chunks_to_reencrypt = List.length chunks_dirty;
      chunks_dirty;
      dictionary_changed =
        Dict.tags old_dict <> Dict.tags new_dict;
    } )
