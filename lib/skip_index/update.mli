(** Document updates over the Skip index (paper Section 4.1, "Updating the
    document").

    The recursive encoding makes updates non-local: changing a subtree
    changes its ancestors' SubtreeSize fields; crossing a power of two
    changes field widths in whole regions, and a tag-dictionary change
    re-encodes everything. This module applies an update and {e measures}
    that propagation: the new encoding is produced by re-encoding (always
    correct), and the byte diff against the old encoding tells how much of
    the document an in-place updater — and the re-encryption of the secure
    container — would have to touch. *)

type path = int list
(** Child indexes among {e all} children (elements and texts), from the
    root; [] designates the root element. *)

type operation =
  | Replace_subtree of path * Xmlac_xml.Tree.t
  | Insert_child of path * int * Xmlac_xml.Tree.t
      (** [Insert_child (parent, i, node)]: insert before child [i] of the
          element at [parent]; [i] may equal the child count (append). *)
  | Delete_subtree of path
  | Set_text of path * string
      (** Replace the text node at [path] (which must address a text). *)

val apply_to_tree : Xmlac_xml.Tree.t -> operation -> Xmlac_xml.Tree.t
(** Reference semantics. @raise Invalid_argument on a dangling path, on
    deleting the root, or on a kind mismatch. *)

type cost = {
  old_bytes : int;
  new_bytes : int;
  unchanged_prefix : int;  (** leading bytes identical in both encodings *)
  unchanged_suffix : int;  (** trailing identical bytes (non-overlapping) *)
  rewritten_bytes : int;
      (** bytes of the new encoding that differ from the old one at the same
          absolute position (plus appended bytes): with position-bound
          encryption this is exactly what must be re-encrypted — a shifted
          tail counts in full, a truncated tail costs nothing *)
  chunks_to_reencrypt : int;  (** container chunks covering those bytes *)
  chunks_dirty : int list;
      (** the chunks themselves, sorted ascending — the exact set an
          incremental re-encryptor
          ({!Xmlac_crypto.Secure_container.reencrypt}) rewrites *)
  dictionary_changed : bool;  (** a tag entered or left the dictionary *)
}

val update_encoded :
  ?chunk_size:int ->
  layout:Layout.t ->
  string ->
  operation ->
  string * cost
(** Apply [operation] to an encoded document; returns the new encoding and
    the update cost. [chunk_size] (default 2048) only affects
    [chunks_to_reencrypt]. @raise Invalid_argument as {!apply_to_tree}, or
    on the NC layout. *)

val decode_tree : string -> Xmlac_xml.Tree.t
(** Decode a whole encoded document back to a tree (any layout but NC). *)
