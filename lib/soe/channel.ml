module C = Xmlac_crypto.Secure_container
module Merkle = Xmlac_crypto.Merkle
module Sha1 = Xmlac_crypto.Sha1
module Modes = Xmlac_crypto.Modes
module Engine = Xmlac_crypto.Engine

type counters = {
  mutable bytes_to_soe : int;
  mutable bytes_decrypted : int;
  mutable bytes_hashed : int;
  mutable blocks_decrypted : int;
  mutable digests_decrypted : int;
  mutable hashes_verified : int;
  mutable fragment_fetches : int;
  mutable chunk_fetches : int;
  mutable engine_batched_blocks : int;
  mutable engine_merkle_groups : int;
  mutable verify_requested : bool;
  mutable verify_active : bool;
  cache : Lru.stats;
      (* hit/miss/evicted across the session's SOE caches (fragment, chunk,
         digest); driven purely by the deterministic lookup sequence, so
         gate-checked like the byte counters *)
  crypto_hist : Xmlac_obs.Histogram.t;
      (* wall time of each decrypt+verify unit (a chunk fetch or a fragment
         suffix extension); "wall"-prefixed so its metrics escape the perf
         gate *)
}

let fresh_counters () =
  {
    bytes_to_soe = 0;
    bytes_decrypted = 0;
    bytes_hashed = 0;
    blocks_decrypted = 0;
    digests_decrypted = 0;
    hashes_verified = 0;
    fragment_fetches = 0;
    chunk_fetches = 0;
    engine_batched_blocks = 0;
    engine_merkle_groups = 0;
    verify_requested = false;
    verify_active = false;
    cache = Lru.fresh_stats ();
    crypto_hist = Xmlac_obs.Histogram.make "wall_crypto";
  }

let metrics (c : counters) : Xmlac_obs.Metrics.t =
  Xmlac_obs.Metrics.
    [
      int "bytes_to_soe" c.bytes_to_soe;
      int "bytes_decrypted" c.bytes_decrypted;
      int "bytes_hashed" c.bytes_hashed;
      int "blocks_decrypted" c.blocks_decrypted;
      int "digests_decrypted" c.digests_decrypted;
      int "hashes_verified" c.hashes_verified;
      int "fragment_fetches" c.fragment_fetches;
      int "chunk_fetches" c.chunk_fetches;
      int "engine.batched_blocks" c.engine_batched_blocks;
      int "engine.merkle_groups" c.engine_merkle_groups;
      int "verify_requested" (Bool.to_int c.verify_requested);
      int "verify_active" (Bool.to_int c.verify_active);
    ]
  @ Xmlac_obs.Histogram.metrics c.crypto_hist

let cache_metrics (c : counters) : Xmlac_obs.Metrics.t =
  Xmlac_obs.Metrics.
    [
      int "hits" c.cache.Lru.hits;
      int "misses" c.cache.Lru.misses;
      int "evicted" c.cache.Lru.evicted;
    ]

(* per-chunk integrity verdicts flow into the provenance trace when a sink
   is installed; field construction stays behind [Trace.enabled] *)
let emit_chunk_verdict ~chunk ~ok detail =
  if Xmlac_obs.Trace.enabled () then begin
    let name, fields =
      Xmlac_core.Provenance.record_event
        (Xmlac_core.Provenance.Chunk
           { c_chunk = chunk; c_ok = ok; c_detail = detail })
    in
    Xmlac_obs.Trace.emit name fields
  end

let digest_bytes = 20 (* SHA-1: Merkle leaves and sibling digests *)
let hash_state_bytes = 29 + 63 (* serialized mid-stream SHA-1 state, worst case *)

let be_bytes value width =
  String.init width (fun i -> Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

type slice = { s_data : string; s_off : int }

(* Requests the channel can coalesce into one terminal round trip, and
   their replies. Mirrors the individual fetch operations below; the wire
   Batch frame is the remote implementation. *)
type fetch_req =
  | Fetch_fragment of { chunk : int; fragment : int; lo : int; hi : int }
  | Fetch_chunk of { chunk : int }
  | Fetch_digest of { chunk : int }
  | Fetch_hash_state of { chunk : int; fragment : int; upto : int }
  | Fetch_siblings of { chunk : int; fragment : int }

type fetch_reply = Bytes_reply of string | List_reply of string list

(* What the SOE asks of a terminal (paper Appendix A): ciphertext ranges,
   whole chunks, encrypted chunk digests, intermediate hash states of
   fragment prefixes, and Merkle sibling digests. The in-process
   [local_terminal] answers from the container directly; a remote terminal
   answers over the wire. Either way, nothing a terminal returns is trusted:
   the SOE validates lengths and verifies cryptographically before use. *)
type terminal = {
  t_container : C.t;
      (* for the local terminal, the full container; for a remote one, the
         header-only geometry from the (validated) handshake *)
  fetch_fragment : chunk:int -> fragment:int -> lo:int -> hi:int -> slice;
  fetch_chunk : chunk:int -> string;
  fetch_digest : chunk:int -> string;
  fetch_hash_state : chunk:int -> fragment:int -> upto:int -> string;
  fetch_siblings : chunk:int -> fragment:int -> string list;
  fetch_many : (fetch_req list -> fetch_reply list) option;
      (* several fetches in one round trip, replies in request order; None
         when the terminal has no such fast path (local, or a v1.0 remote) *)
}

let local_terminal container =
  (* terminal-side memo of per-chunk fragment leaf hashes (the terminal is
     an ordinary computer and caches freely) *)
  let terminal_leaves : (int, string array) Hashtbl.t = Hashtbl.create 8 in
  let frags_per_chunk = C.fragments_per_chunk container in
  let frag_size = C.fragment_size container in
  let leaf_hash chunk fragment =
    C.fragment_leaf_hash_sub container ~chunk ~fragment
      ~cipher:(C.chunk_ciphertext container chunk)
      ~pos:(fragment * frag_size) ~len:frag_size
  in
  let leaves chunk =
    match Hashtbl.find_opt terminal_leaves chunk with
    | Some l -> l
    | None ->
        let l = Array.init frags_per_chunk (fun i -> leaf_hash chunk i) in
        Hashtbl.replace terminal_leaves chunk l;
        l
  in
  {
    t_container = container;
    fetch_fragment =
      (fun ~chunk ~fragment ~lo ~hi ->
        ignore hi;
        (* zero-copy: an offset view into the chunk ciphertext *)
        { s_data = C.chunk_ciphertext container chunk;
          s_off = (fragment * frag_size) + lo });
    fetch_chunk = (fun ~chunk -> C.chunk_ciphertext container chunk);
    fetch_digest = (fun ~chunk -> C.encrypted_digest container chunk);
    fetch_hash_state =
      (fun ~chunk ~fragment ~upto ->
        let ctx = Sha1.init () in
        Sha1.feed ctx (be_bytes chunk 4);
        Sha1.feed ctx (be_bytes fragment 4);
        Sha1.feed_sub ctx (C.chunk_ciphertext container chunk)
          ~pos:(fragment * frag_size) ~len:upto;
        Sha1.export_state ctx);
    fetch_siblings =
      (fun ~chunk ~fragment ->
        let cover =
          Merkle.sibling_cover ~leaf_count:frags_per_chunk ~lo:fragment
            ~hi:fragment
        in
        List.map (Merkle.node_hash (leaves chunk)) cover);
    fetch_many = None;
  }

let integrity fmt = Printf.ksprintf (fun m -> raise (C.Integrity_failure m)) fmt

(* Per-fragment SOE state, in reusable buffers: the ciphertext suffix
   received (and verified) so far lives in [fe_cipher] from [avail_from]
   on; decrypted blocks live in [fe_plain] with one flag byte per 8-byte
   block in [fe_flags]. Sibling digests are paid for once per cache
   lifetime. *)
type frag_entry = {
  mutable avail_from : int; (* fragment-local byte offset; frag_size = none *)
  fe_cipher : Bytes.t;
  fe_plain : Bytes.t;
  fe_flags : Bytes.t;
  mutable siblings : string list option;
}

(* CBC chunk state: plaintext plus, for CBC-SHAC, which blocks have been
   (accounting-wise) decrypted — CBC random access decrypts exactly the
   blocks it needs: block i needs only ciphertext blocks i-1 and i. *)
type chunk_entry = { ce_plain : Bytes.t; ce_flags : Bytes.t }

(* One per-fragment slice of a read request, carried through the window's
   fetch -> compute -> commit phases. Fields after [fu_out] are filled in
   by the fetch (coordinator) and compute (worker) phases. *)
type frag_unit = {
  fu_chunk : int;
  fu_frag : int;
  fu_lo : int; (* fragment-local *)
  fu_hi : int;
  fu_out : int; (* offset in the result buffer *)
  mutable fu_entry : frag_entry;
  mutable fu_did_ext : bool;
  mutable fu_ext : int; (* aligned lo of the extension *)
  mutable fu_state : string; (* imported SHA-1 mid-state (verify) *)
  mutable fu_digest : string; (* expected chunk digest (verify) *)
  mutable fu_leaf : string; (* computed leaf hash (fast engine: verdict is
                               grouped per chunk after the compute phase) *)
  mutable fu_new_blocks : int;
  mutable fu_batched : int; (* blocks decrypted through the batch kernel *)
  mutable fu_ok : bool;
  mutable fu_wall : float;
}

type chunk_unit = {
  cu_chunk : int;
  cu_off : int;
  cu_take : int;
  cu_out : int;
  mutable cu_entry : chunk_entry;
  mutable cu_cipher : string; (* "" on a cache hit *)
  mutable cu_fresh : bool;
  mutable cu_digest : string;
  mutable cu_new_blocks : int;
  mutable cu_batched : int;
  mutable cu_ok : bool;
  mutable cu_wall : float;
}

(* A list-backed simulation of an [Lru]'s key set, used by the prefetch
   planner to predict — exactly — which fetches the coming window will
   perform, without touching the real caches. Mirrors [Lru.find]'s
   recency refresh and [Lru.insert]'s evict-beyond-capacity. *)
module Shadow = struct
  type 'k t = { mutable keys : 'k list; cap : int }

  let of_lru lru = { keys = Lru.keys_mru lru; cap = Lru.capacity lru }

  let find t k =
    if List.mem k t.keys then begin
      t.keys <- k :: List.filter (fun x -> x <> k) t.keys;
      true
    end
    else false

  let insert t k =
    if List.mem k t.keys then
      t.keys <- k :: List.filter (fun x -> x <> k) t.keys
    else begin
      t.keys <- k :: t.keys;
      if List.length t.keys > t.cap then
        t.keys <- List.filteri (fun i _ -> i < t.cap) t.keys
    end
end

(* units processed per pipeline window: bounds decrypt-ahead memory, keeps
   a worst-case Batch well under the wire's frame caps *)
let window_units = 16

let rec split_windows lst =
  let rec take n acc rest =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when n = 0 -> (List.rev acc, rest)
    | x :: tl -> take (n - 1) (x :: acc) tl
  in
  match lst with
  | [] -> []
  | _ ->
      let w, rest = take window_units [] lst in
      w :: split_windows rest

let source_of_terminal ?(verify = true) ?(cache_fragments = 8)
    ?(cache_chunks = 1) ?pool ?(engine = Engine.default) ~terminal ~key
    counters =
  let container = terminal.t_container in
  let scheme = C.scheme container in
  let verify_requested = verify in
  let verify = verify && scheme <> C.Ecb in
  counters.verify_requested <- verify_requested;
  counters.verify_active <- verify;
  let chunk_size = C.chunk_size container in
  let frag_size = C.fragment_size container in
  let frags_per_chunk = C.fragments_per_chunk container in
  let payload_len = C.payload_length container in
  let cipher = Engine.cipher engine key in
  (* one key schedule per source, not per decrypted block *)
  let fast = engine = Engine.Fast in
  (* did a positional/CBC decrypt of [nblocks] hit the batch kernel? pure
     arithmetic over the engine choice, so the engine.* counters stay
     deterministic and jobs-independent *)
  let run_batched nblocks =
    cipher.Modes.decrypt_blocks <> None && nblocks >= Modes.batch_threshold
  in
  let cipher_block = match scheme with C.Aes_ctr -> 16 | _ -> 8 in
  let digest_blob_bytes = C.digest_blob_size_for scheme in
  let tree_levels =
    let rec go l n = if n <= 1 then l else go (l + 1) (n / 2) in
    go 0 frags_per_chunk
  in
  let run_tasks =
    match pool with
    | Some p -> fun tasks -> Pool.run p tasks
    | None ->
        (* inline, with the pool's run-everything-then-raise-first protocol
           so failures are identical at any job count *)
        fun tasks ->
          let errors = Array.make (Array.length tasks) None in
          Array.iteri
            (fun i task -> try task () with e -> errors.(i) <- Some e)
            tasks;
          Array.iter (function Some e -> raise e | None -> ()) errors
  in
  (* SOE-side caches, bounded like a smart card's RAM, sharing one stats
     record. All cache operations happen on the coordinator in unit order
     (fetch phase), so hit/miss/evicted are independent of the job count. *)
  let frag_cache : (int * int, frag_entry) Lru.t =
    Lru.create ~capacity:cache_fragments ~stats:counters.cache
  in
  let chunk_cache : (int, chunk_entry) Lru.t =
    Lru.create ~capacity:cache_chunks ~stats:counters.cache
  in
  let digest_cache : (int, string) Lru.t =
    Lru.create ~capacity:1 ~stats:counters.cache
  in
  (* Prefetched replies for the current window, consumed in order by the
     q_* fetchers below. The planner predicts fetches exactly; a mismatch
     is a channel bug and fails loudly rather than desynchronizing the
     byte accounting. *)
  let prefetched : (fetch_req * fetch_reply) list ref = ref [] in
  let take_prefetched req =
    match !prefetched with
    | (r, reply) :: rest when r = req ->
        prefetched := rest;
        Some reply
    | [] -> None
    | _ :: _ -> invalid_arg "Channel: prefetch desynchronized"
  in
  let q_fragment ~chunk ~fragment ~lo ~hi =
    match take_prefetched (Fetch_fragment { chunk; fragment; lo; hi }) with
    | Some (Bytes_reply s) -> { s_data = s; s_off = 0 }
    | Some (List_reply _) -> invalid_arg "Channel: prefetch desynchronized"
    | None -> terminal.fetch_fragment ~chunk ~fragment ~lo ~hi
  in
  let q_chunk ~chunk =
    match take_prefetched (Fetch_chunk { chunk }) with
    | Some (Bytes_reply s) -> s
    | Some (List_reply _) -> invalid_arg "Channel: prefetch desynchronized"
    | None -> terminal.fetch_chunk ~chunk
  in
  let q_digest ~chunk =
    match take_prefetched (Fetch_digest { chunk }) with
    | Some (Bytes_reply s) -> s
    | Some (List_reply _) -> invalid_arg "Channel: prefetch desynchronized"
    | None -> terminal.fetch_digest ~chunk
  in
  let q_state ~chunk ~fragment ~upto =
    match take_prefetched (Fetch_hash_state { chunk; fragment; upto }) with
    | Some (Bytes_reply s) -> s
    | Some (List_reply _) -> invalid_arg "Channel: prefetch desynchronized"
    | None -> terminal.fetch_hash_state ~chunk ~fragment ~upto
  in
  let q_siblings ~chunk ~fragment =
    match take_prefetched (Fetch_siblings { chunk; fragment }) with
    | Some (List_reply l) -> l
    | Some (Bytes_reply _) -> invalid_arg "Channel: prefetch desynchronized"
    | None -> terminal.fetch_siblings ~chunk ~fragment
  in
  let chunk_digest chunk =
    match Lru.find digest_cache chunk with
    | Some d -> d
    | None ->
        counters.bytes_to_soe <- counters.bytes_to_soe + digest_blob_bytes;
        counters.bytes_decrypted <- counters.bytes_decrypted + digest_blob_bytes;
        counters.blocks_decrypted <-
          counters.blocks_decrypted + (digest_blob_bytes / cipher_block);
        counters.digests_decrypted <- counters.digests_decrypted + 1;
        let blob = q_digest ~chunk in
        (* validates the blob size before decrypting *)
        let d = C.decrypt_digest_blob ~scheme ~key ~chunk blob in
        Lru.insert digest_cache chunk d;
        d
  in
  let cover_length frag =
    List.length
      (Merkle.sibling_cover ~leaf_count:frags_per_chunk ~lo:frag ~hi:frag)
  in

  (* {2 ECB-family path: per-fragment units} *)
  let new_frag_entry () =
    {
      avail_from = frag_size;
      fe_cipher = Bytes.create frag_size;
      fe_plain = Bytes.create frag_size;
      fe_flags = Bytes.make (frag_size / 8) '\000';
      siblings = None;
    }
  in
  (* predict the window's terminal fetches by simulating the fetch phase's
     cache transitions on shadows; used only when the terminal can batch *)
  let plan_frag_window tuples =
    let shadow_frag = Shadow.of_lru frag_cache in
    let shadow_digest = Shadow.of_lru digest_cache in
    let reqs = ref [] in
    let push r = reqs := r :: !reqs in
    List.iter
      (fun (chunk, frag, lo, _hi, _out) ->
        let key = (chunk, frag) in
        let avail, sib_missing =
          if Shadow.find shadow_frag key then
            match Lru.peek frag_cache key with
            | Some e -> (e.avail_from, e.siblings = None)
            | None -> assert false (* shadow hit implies a live entry *)
          else begin
            Shadow.insert shadow_frag key;
            (frag_size, true)
          end
        in
        let aligned = lo / 8 * 8 in
        if aligned < avail then begin
          push (Fetch_fragment { chunk; fragment = frag; lo = aligned; hi = avail });
          if verify then begin
            push (Fetch_hash_state { chunk; fragment = frag; upto = aligned });
            if sib_missing then push (Fetch_siblings { chunk; fragment = frag });
            if not (Shadow.find shadow_digest chunk) then begin
              Shadow.insert shadow_digest chunk;
              push (Fetch_digest { chunk })
            end
          end
        end)
      tuples;
    List.rev !reqs
  in
  (* Appendix A: to let the SOE verify a fragment it reads from byte [lo]
     on, the terminal sends the ciphertext suffix, the intermediate SHA-1
     state of the prefix (the leaf hash covers chunk and fragment ids plus
     the whole fragment ciphertext), the Merkle sibling digests, and the
     encrypted ChunkDigest. The fetch phase gathers (and charges) all of
     that on the coordinator; hashing, Merkle reconstruction and block
     decryption run in the compute phase, possibly on worker domains. *)
  let fetch_frag_unit (chunk, frag, lo, hi, out) =
    let entry =
      match Lru.find frag_cache (chunk, frag) with
      | Some e -> e
      | None ->
          let e = new_frag_entry () in
          Lru.insert frag_cache (chunk, frag) e;
          e
    in
    let u =
      {
        fu_chunk = chunk;
        fu_frag = frag;
        fu_lo = lo;
        fu_hi = hi;
        fu_out = out;
        fu_entry = entry;
        fu_did_ext = false;
        fu_ext = 0;
        fu_state = "";
        fu_digest = "";
        fu_leaf = "";
        fu_new_blocks = 0;
        fu_batched = 0;
        fu_ok = false;
        fu_wall = 0.;
      }
    in
    let aligned = lo / 8 * 8 in
    if aligned < entry.avail_from then begin
      let old_avail = entry.avail_from in
      counters.fragment_fetches <- counters.fragment_fetches + 1;
      let sl = q_fragment ~chunk ~fragment:frag ~lo:aligned ~hi:old_avail in
      let served = String.length sl.s_data - sl.s_off in
      if served < old_avail - aligned then
        integrity "chunk %d fragment %d: served %d bytes for range [%d, %d)"
          chunk frag served aligned old_avail;
      counters.bytes_to_soe <- counters.bytes_to_soe + (old_avail - aligned);
      Bytes.blit_string sl.s_data sl.s_off entry.fe_cipher aligned
        (old_avail - aligned);
      entry.avail_from <- aligned;
      u.fu_did_ext <- true;
      u.fu_ext <- aligned;
      if verify then begin
        let state = q_state ~chunk ~fragment:frag ~upto:aligned in
        counters.bytes_to_soe <- counters.bytes_to_soe + hash_state_bytes;
        u.fu_state <- state;
        (match entry.siblings with
        | Some _ -> ()
        | None ->
            let ds = q_siblings ~chunk ~fragment:frag in
            let expect = cover_length frag in
            if List.length ds <> expect then
              integrity
                "chunk %d fragment %d: %d sibling digests for a cover of %d"
                chunk frag (List.length ds) expect;
            counters.bytes_to_soe <-
              counters.bytes_to_soe + (digest_bytes * List.length ds);
            entry.siblings <- Some ds);
        u.fu_digest <- chunk_digest chunk
      end
    end;
    u
  in
  let frag_needs_compute u =
    if u.fu_did_ext then true
    else begin
      let e = u.fu_entry in
      let needed = ref false in
      for b = u.fu_lo / 8 to (u.fu_hi - 1) / 8 do
        if Bytes.get e.fe_flags b = '\000' then needed := true
      done;
      !needed
    end
  in
  (* pure per-unit work: verify the extended suffix against the chunk
     digest, decrypt the blocks covering the requested range. Touches only
     this unit's entry, so units run concurrently; all counter charges
     wait for the commit phase. *)
  let compute_frag u () =
    let t0 = Xmlac_obs.Span.now () in
    let e = u.fu_entry in
    if u.fu_did_ext && verify then begin
      let ctx =
        try Sha1.import_state u.fu_state
        with Invalid_argument _ ->
          integrity "chunk %d fragment %d: malformed hash state" u.fu_chunk
            u.fu_frag
      in
      Sha1.feed_sub ctx
        (Bytes.unsafe_to_string e.fe_cipher)
        ~pos:u.fu_ext ~len:(frag_size - u.fu_ext);
      let leaf = Sha1.finalize ctx in
      if fast then
        (* batched Merkle: keep the leaf; the window groups all leaves of a
           chunk into one root recombination after the compute phase *)
        u.fu_leaf <- leaf
      else begin
        let cover =
          Merkle.sibling_cover ~leaf_count:frags_per_chunk ~lo:u.fu_frag
            ~hi:u.fu_frag
        in
        let digests =
          match e.siblings with Some ds -> ds | None -> assert false
        in
        let supplied = List.combine cover digests in
        let root =
          match
            Merkle.root_from_cover ~leaf_count:frags_per_chunk
              ~known:[ (u.fu_frag, leaf) ]
              ~supplied
          with
          | Some r -> r
          | None -> raise (C.Integrity_failure "incomplete Merkle cover")
        in
        (* constant-time: the sealed root derives from the key, the digest
           came from the untrusted terminal *)
        u.fu_ok <-
          Xmlac_crypto.Ct.equal
            (C.seal_root container ~chunk:u.fu_chunk ~root)
            u.fu_digest
      end
    end;
    (* decrypt each maximal run of still-encrypted blocks in one call, so
       whole-fragment extensions (32 blocks) reach the bitsliced kernel
       instead of going block-at-a-time *)
    let src = Bytes.unsafe_to_string e.fe_cipher in
    let b1 = (u.fu_hi - 1) / 8 in
    let b = ref (u.fu_lo / 8) in
    while !b <= b1 do
      if Bytes.get e.fe_flags !b <> '\000' then incr b
      else begin
        let run = !b in
        while !b <= b1 && Bytes.get e.fe_flags !b = '\000' do
          Bytes.set e.fe_flags !b '\001';
          incr b
        done;
        let nblocks = !b - run in
        Modes.positional_decrypt_into cipher
          ~base:
            ((u.fu_chunk * chunk_size) + (u.fu_frag * frag_size) + (run * 8))
          ~src ~src_pos:(run * 8) ~dst:e.fe_plain ~dst_pos:(run * 8)
          ~len:(nblocks * 8);
        u.fu_new_blocks <- u.fu_new_blocks + nblocks;
        if run_batched nblocks then u.fu_batched <- u.fu_batched + nblocks
      end
    done;
    u.fu_wall <- Xmlac_obs.Span.now () -. t0
  in
  (* Batched Merkle verification (fast engine): one root-path recombination
     per distinct chunk in the window. All the window's computed leaves of
     a chunk go in as known nodes; the union of their sibling covers backs
     the rest of the tree, minus any supplied node whose subtree contains a
     known leaf — those must be recomputed from the leaves or a tampered
     fragment could hide behind its own fetched cover. Runs on the
     coordinator between compute and commit, so verdict order, counters and
     failure behaviour stay independent of the job count. *)
  let node_covers_known knowns (n : Merkle.node) =
    let w = 1 lsl n.Merkle.level in
    List.exists
      (fun f -> f >= n.Merkle.index * w && f < (n.Merkle.index + 1) * w)
      knowns
  in
  let verify_frag_group us =
    match us with
    | [] -> ()
    | u0 :: _ ->
        let knowns = List.map (fun u -> u.fu_frag) us in
        let known = List.map (fun u -> (u.fu_frag, u.fu_leaf)) us in
        let supplied =
          List.concat_map
            (fun u ->
              let cover =
                Merkle.sibling_cover ~leaf_count:frags_per_chunk ~lo:u.fu_frag
                  ~hi:u.fu_frag
              in
              let ds =
                match u.fu_entry.siblings with
                | Some ds -> ds
                | None -> assert false
              in
              List.combine cover ds)
            us
          |> List.filter (fun (n, _) -> not (node_covers_known knowns n))
        in
        let root =
          match
            Merkle.root_from_cover ~leaf_count:frags_per_chunk ~known ~supplied
          with
          | Some r -> r
          | None -> raise (C.Integrity_failure "incomplete Merkle cover")
        in
        let ok =
          Xmlac_crypto.Ct.equal
            (C.seal_root container ~chunk:u0.fu_chunk ~root)
            u0.fu_digest
        in
        List.iter (fun u -> u.fu_ok <- ok) us;
        counters.engine_merkle_groups <- counters.engine_merkle_groups + 1
  in
  let verify_frag_groups units =
    let order = ref [] in
    let by_chunk : (int, frag_unit list) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun u ->
        if u.fu_did_ext then begin
          if not (Hashtbl.mem by_chunk u.fu_chunk) then
            order := u.fu_chunk :: !order;
          let prev =
            match Hashtbl.find_opt by_chunk u.fu_chunk with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace by_chunk u.fu_chunk (u :: prev)
        end)
      units;
    List.iter
      (fun chunk -> verify_frag_group (List.rev (Hashtbl.find by_chunk chunk)))
      (List.rev !order)
  in
  let commit_frag out u =
    let e = u.fu_entry in
    if u.fu_did_ext && verify then begin
      counters.bytes_hashed <-
        counters.bytes_hashed + (frag_size - u.fu_ext)
        + (2 * digest_bytes * tree_levels);
      emit_chunk_verdict ~chunk:u.fu_chunk ~ok:u.fu_ok
        (Printf.sprintf "fragment %d Merkle root %s" u.fu_frag
           (if u.fu_ok then "verified" else "mismatch"));
      if not u.fu_ok then
        integrity "chunk %d fragment %d: Merkle root mismatch" u.fu_chunk
          u.fu_frag;
      counters.hashes_verified <- counters.hashes_verified + 1
    end;
    if u.fu_new_blocks > 0 then begin
      counters.bytes_decrypted <- counters.bytes_decrypted + (8 * u.fu_new_blocks);
      counters.blocks_decrypted <- counters.blocks_decrypted + u.fu_new_blocks
    end;
    if u.fu_batched > 0 then
      counters.engine_batched_blocks <-
        counters.engine_batched_blocks + u.fu_batched;
    if u.fu_did_ext && verify then
      Xmlac_obs.Histogram.observe counters.crypto_hist u.fu_wall;
    Bytes.blit e.fe_plain u.fu_lo out u.fu_out (u.fu_hi - u.fu_lo)
  in
  let process_frag_window out tuples =
    (* phase events bracket the window when a trace sink is on; field
       construction stays behind the guard like [emit_chunk_verdict] *)
    let traced = Xmlac_obs.Trace.enabled () in
    let phase name =
      if traced then
        Xmlac_obs.Span.event name
          [
            ("kind", Xmlac_obs.Json.String "fragment");
            ("units", Xmlac_obs.Json.Int (List.length tuples));
          ]
    in
    phase "channel.plan";
    (match terminal.fetch_many with
    | Some fetch_many ->
        let reqs = plan_frag_window tuples in
        if List.length reqs >= 2 then
          prefetched := List.combine reqs (fetch_many reqs)
    | None -> ());
    let units = List.map fetch_frag_unit tuples in
    assert (!prefetched = []);
    phase "channel.fetch";
    run_tasks
      (Array.of_list
         (List.filter_map
            (fun u -> if frag_needs_compute u then Some (compute_frag u) else None)
            units));
    phase "channel.compute";
    if fast && verify then verify_frag_groups units;
    List.iter (commit_frag out) units;
    phase "channel.commit"
  in
  (* the hot case — a small read fully inside an already-decrypted
     fragment — skips the window machinery: one counted cache hit, one
     blit, nothing else, exactly like the general path would account it *)
  let fast_frag_read out chunk frag lo hi =
    match Lru.peek frag_cache (chunk, frag) with
    | Some e ->
        let ready = ref true in
        for b = lo / 8 to (hi - 1) / 8 do
          if Bytes.get e.fe_flags b = '\000' then ready := false
        done;
        if !ready then begin
          ignore (Lru.find frag_cache (chunk, frag));
          Bytes.blit e.fe_plain lo out 0 (hi - lo);
          true
        end
        else false
    | None -> false
  in
  let read_frags out ~pos ~len =
    let rec split acc cur remaining out_off =
      if remaining = 0 then List.rev acc
      else begin
        let chunk = cur / chunk_size in
        let offset = cur mod chunk_size in
        let frag = offset / frag_size in
        let lo = offset mod frag_size in
        let take = min remaining (frag_size - lo) in
        split
          ((chunk, frag, lo, lo + take, out_off) :: acc)
          (cur + take) (remaining - take) (out_off + take)
      end
    in
    match split [] pos len 0 with
    | [ (chunk, frag, lo, hi, _) ] when fast_frag_read out chunk frag lo hi ->
        ()
    | tuples -> List.iter (process_frag_window out) (split_windows tuples)
  in

  (* {2 CBC path: per-chunk units (no random access inside a chunk)} *)
  let plan_chunk_window tuples =
    let shadow_chunk = Shadow.of_lru chunk_cache in
    let shadow_digest = Shadow.of_lru digest_cache in
    let reqs = ref [] in
    let push r = reqs := r :: !reqs in
    List.iter
      (fun (chunk, _off, _take, _out) ->
        if not (Shadow.find shadow_chunk chunk) then begin
          Shadow.insert shadow_chunk chunk;
          push (Fetch_chunk { chunk });
          if verify && not (Shadow.find shadow_digest chunk) then begin
            Shadow.insert shadow_digest chunk;
            push (Fetch_digest { chunk })
          end
        end)
      tuples;
    List.rev !reqs
  in
  let fetch_chunk_unit (chunk, off, take, out) =
    let entry, fresh, cipher_text =
      match Lru.find chunk_cache chunk with
      | Some e -> (e, false, "")
      | None ->
          let e =
            {
              ce_plain = Bytes.create chunk_size;
              ce_flags = Bytes.make (chunk_size / 8) '\000';
            }
          in
          counters.chunk_fetches <- counters.chunk_fetches + 1;
          counters.bytes_to_soe <- counters.bytes_to_soe + chunk_size;
          let cs = q_chunk ~chunk in
          Lru.insert chunk_cache chunk e;
          (e, true, cs)
    in
    let u =
      {
        cu_chunk = chunk;
        cu_off = off;
        cu_take = take;
        cu_out = out;
        cu_entry = entry;
        cu_cipher = cipher_text;
        cu_fresh = fresh;
        cu_digest = "";
        cu_new_blocks = 0;
        cu_batched = 0;
        cu_ok = false;
        cu_wall = 0.;
      }
    in
    if fresh && verify then u.cu_digest <- chunk_digest chunk;
    u
  in
  let chunk_needs_compute u =
    u.cu_fresh
    ||
    (scheme = C.Cbc_shac
    &&
    let e = u.cu_entry in
    let needed = ref false in
    for b = u.cu_off / 8 to (u.cu_off + u.cu_take - 1) / 8 do
      if Bytes.get e.ce_flags b = '\000' then needed := true
    done;
    !needed)
  in
  let compute_chunk u () =
    let t0 = Xmlac_obs.Span.now () in
    let e = u.cu_entry in
    if u.cu_fresh then begin
      (* validates the ciphertext size before decrypting; [ctx] is the
         engine-selected cipher (unused by the AES-CTR scheme) *)
      C.decrypt_chunk_cipher_into ~ctx:cipher container ~key ~chunk:u.cu_chunk
        ~cipher:u.cu_cipher ~dst:e.ce_plain;
      (match scheme with
      | C.Aes_ctr -> ()
      | _ -> u.cu_batched <- (if run_batched (chunk_size / 8) then chunk_size / 8 else 0));
      if verify then begin
        let expected =
          match scheme with
          | C.Cbc_sha ->
              C.expected_digest_of_plain container ~chunk:u.cu_chunk
                ~plain:(Bytes.unsafe_to_string e.ce_plain)
          | C.Cbc_shac | C.Aes_ctr ->
              C.expected_digest_of_cipher container ~chunk:u.cu_chunk
                ~cipher:u.cu_cipher
          | C.Ecb | C.Ecb_mht -> assert false
        in
        u.cu_ok <- Xmlac_crypto.Ct.equal expected u.cu_digest
      end
    end;
    if scheme = C.Cbc_shac then
      for b = u.cu_off / 8 to (u.cu_off + u.cu_take - 1) / 8 do
        if Bytes.get e.ce_flags b = '\000' then begin
          Bytes.set e.ce_flags b '\001';
          u.cu_new_blocks <- u.cu_new_blocks + 1
        end
      done;
    u.cu_wall <- Xmlac_obs.Span.now () -. t0
  in
  let commit_chunk out u =
    let e = u.cu_entry in
    if u.cu_fresh then begin
      (match scheme with
      | C.Cbc_sha | C.Aes_ctr ->
          (* whole-chunk decrypt on fetch; CBC-SHAC instead charges blocks
             as they are requested, below *)
          counters.bytes_decrypted <- counters.bytes_decrypted + chunk_size;
          counters.blocks_decrypted <-
            counters.blocks_decrypted + (chunk_size / cipher_block)
      | _ -> ());
      if u.cu_batched > 0 then
        counters.engine_batched_blocks <-
          counters.engine_batched_blocks + u.cu_batched;
      if verify then begin
        counters.bytes_hashed <- counters.bytes_hashed + chunk_size;
        emit_chunk_verdict ~chunk:u.cu_chunk ~ok:u.cu_ok
          (Printf.sprintf "%s digest %s"
             (if scheme = C.Cbc_sha then "plaintext" else "ciphertext")
             (if u.cu_ok then "verified" else "mismatch"));
        if not u.cu_ok then
          integrity "chunk %d: %s digest mismatch" u.cu_chunk
            (if scheme = C.Cbc_sha then "plaintext" else "ciphertext");
        counters.hashes_verified <- counters.hashes_verified + 1
      end;
      Xmlac_obs.Histogram.observe counters.crypto_hist u.cu_wall
    end;
    if u.cu_new_blocks > 0 then begin
      counters.bytes_decrypted <- counters.bytes_decrypted + (8 * u.cu_new_blocks);
      counters.blocks_decrypted <- counters.blocks_decrypted + u.cu_new_blocks
    end;
    Bytes.blit e.ce_plain u.cu_off out u.cu_out u.cu_take
  in
  let process_chunk_window out tuples =
    let traced = Xmlac_obs.Trace.enabled () in
    let phase name =
      if traced then
        Xmlac_obs.Span.event name
          [
            ("kind", Xmlac_obs.Json.String "chunk");
            ("units", Xmlac_obs.Json.Int (List.length tuples));
          ]
    in
    phase "channel.plan";
    (match terminal.fetch_many with
    | Some fetch_many ->
        let reqs = plan_chunk_window tuples in
        if List.length reqs >= 2 then
          prefetched := List.combine reqs (fetch_many reqs)
    | None -> ());
    let units = List.map fetch_chunk_unit tuples in
    assert (!prefetched = []);
    phase "channel.fetch";
    run_tasks
      (Array.of_list
         (List.filter_map
            (fun u ->
              if chunk_needs_compute u then Some (compute_chunk u) else None)
            units));
    phase "channel.compute";
    List.iter (commit_chunk out) units;
    phase "channel.commit"
  in
  let fast_chunk_read out chunk off take =
    match Lru.peek chunk_cache chunk with
    | Some e ->
        let ready = ref true in
        if scheme = C.Cbc_shac then
          for b = off / 8 to (off + take - 1) / 8 do
            if Bytes.get e.ce_flags b = '\000' then ready := false
          done;
        if !ready then begin
          ignore (Lru.find chunk_cache chunk);
          Bytes.blit e.ce_plain off out 0 take;
          true
        end
        else false
    | None -> false
  in
  let read_chunks out ~pos ~len =
    let rec split acc cur remaining out_off =
      if remaining = 0 then List.rev acc
      else begin
        let chunk = cur / chunk_size in
        let offset = cur mod chunk_size in
        let take = min remaining (chunk_size - offset) in
        split
          ((chunk, offset, take, out_off) :: acc)
          (cur + take) (remaining - take) (out_off + take)
      end
    in
    match split [] pos len 0 with
    | [ (chunk, off, take, _) ] when fast_chunk_read out chunk off take -> ()
    | tuples -> List.iter (process_chunk_window out) (split_windows tuples)
  in

  let read ~pos ~len =
    if len = 0 then ""
    else begin
      let out = Bytes.create len in
      (match scheme with
      | C.Ecb | C.Ecb_mht -> read_frags out ~pos ~len
      | C.Cbc_sha | C.Cbc_shac | C.Aes_ctr -> read_chunks out ~pos ~len);
      Bytes.unsafe_to_string out
    end
  in
  { Xmlac_skip_index.Decoder.read; length = payload_len }

let source ?verify ?cache_fragments ?cache_chunks ?pool ?engine ~container
    ~key counters =
  source_of_terminal ?verify ?cache_fragments ?cache_chunks ?pool ?engine
    ~terminal:(local_terminal container) ~key counters
