module C = Xmlac_crypto.Secure_container
module Merkle = Xmlac_crypto.Merkle
module Sha1 = Xmlac_crypto.Sha1

type counters = {
  mutable bytes_to_soe : int;
  mutable bytes_decrypted : int;
  mutable bytes_hashed : int;
  mutable blocks_decrypted : int;
  mutable digests_decrypted : int;
  mutable hashes_verified : int;
  mutable fragment_fetches : int;
  mutable chunk_fetches : int;
  mutable verify_requested : bool;
  mutable verify_active : bool;
  crypto_hist : Xmlac_obs.Histogram.t;
      (* wall time of each decrypt+verify unit (a chunk fetch or a fragment
         suffix extension); "wall"-prefixed so its metrics escape the perf
         gate *)
}

let fresh_counters () =
  {
    bytes_to_soe = 0;
    bytes_decrypted = 0;
    bytes_hashed = 0;
    blocks_decrypted = 0;
    digests_decrypted = 0;
    hashes_verified = 0;
    fragment_fetches = 0;
    chunk_fetches = 0;
    verify_requested = false;
    verify_active = false;
    crypto_hist = Xmlac_obs.Histogram.make "wall_crypto";
  }

let metrics (c : counters) : Xmlac_obs.Metrics.t =
  Xmlac_obs.Metrics.
    [
      int "bytes_to_soe" c.bytes_to_soe;
      int "bytes_decrypted" c.bytes_decrypted;
      int "bytes_hashed" c.bytes_hashed;
      int "blocks_decrypted" c.blocks_decrypted;
      int "digests_decrypted" c.digests_decrypted;
      int "hashes_verified" c.hashes_verified;
      int "fragment_fetches" c.fragment_fetches;
      int "chunk_fetches" c.chunk_fetches;
      int "verify_requested" (Bool.to_int c.verify_requested);
      int "verify_active" (Bool.to_int c.verify_active);
    ]
  @ Xmlac_obs.Histogram.metrics c.crypto_hist

(* per-chunk integrity verdicts flow into the provenance trace when a sink
   is installed; field construction stays behind [Trace.enabled] *)
let emit_chunk_verdict ~chunk ~ok detail =
  if Xmlac_obs.Trace.enabled () then begin
    let name, fields =
      Xmlac_core.Provenance.record_event
        (Xmlac_core.Provenance.Chunk
           { c_chunk = chunk; c_ok = ok; c_detail = detail })
    in
    Xmlac_obs.Trace.emit name fields
  end

let digest_blob_bytes = 24
let digest_bytes = 20
let hash_state_bytes = 29 + 63 (* serialized mid-stream SHA-1 state, worst case *)

let be_bytes value width =
  String.init width (fun i -> Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

(* What the SOE asks of a terminal (paper Appendix A): ciphertext ranges,
   whole chunks, encrypted chunk digests, intermediate hash states of
   fragment prefixes, and Merkle sibling digests. The in-process
   [local_terminal] answers from the container directly; a remote terminal
   answers over the wire. Either way, nothing a terminal returns is trusted:
   the SOE validates lengths and verifies cryptographically before use. *)
type terminal = {
  t_container : C.t;
      (* for the local terminal, the full container; for a remote one, the
         header-only geometry from the (validated) handshake *)
  fetch_fragment : chunk:int -> fragment:int -> lo:int -> hi:int -> string;
  fetch_chunk : chunk:int -> string;
  fetch_digest : chunk:int -> string;
  fetch_hash_state : chunk:int -> fragment:int -> upto:int -> string;
  fetch_siblings : chunk:int -> fragment:int -> string list;
}

let local_terminal container =
  (* terminal-side memo of per-chunk fragment leaf hashes (the terminal is
     an ordinary computer and caches freely) *)
  let terminal_leaves : (int, string array) Hashtbl.t = Hashtbl.create 8 in
  let frags_per_chunk = C.fragments_per_chunk container in
  let leaves chunk =
    match Hashtbl.find_opt terminal_leaves chunk with
    | Some l -> l
    | None ->
        let l =
          Array.init frags_per_chunk (fun i ->
              C.fragment_leaf_hash container ~chunk ~fragment:i
                ~cipher:(C.fragment_ciphertext container ~chunk ~fragment:i))
        in
        Hashtbl.replace terminal_leaves chunk l;
        l
  in
  {
    t_container = container;
    fetch_fragment =
      (fun ~chunk ~fragment ~lo ~hi ->
        let cipher = C.fragment_ciphertext container ~chunk ~fragment in
        String.sub cipher lo (hi - lo));
    fetch_chunk = (fun ~chunk -> C.chunk_ciphertext container chunk);
    fetch_digest = (fun ~chunk -> C.encrypted_digest container chunk);
    fetch_hash_state =
      (fun ~chunk ~fragment ~upto ->
        let cipher = C.fragment_ciphertext container ~chunk ~fragment in
        let ctx = Sha1.init () in
        Sha1.feed ctx (be_bytes chunk 4);
        Sha1.feed ctx (be_bytes fragment 4);
        Sha1.feed_sub ctx cipher ~pos:0 ~len:upto;
        Sha1.export_state ctx);
    fetch_siblings =
      (fun ~chunk ~fragment ->
        let cover =
          Merkle.sibling_cover ~leaf_count:frags_per_chunk ~lo:fragment
            ~hi:fragment
        in
        List.map (Merkle.node_hash (leaves chunk)) cover);
  }

let integrity fmt = Printf.ksprintf (fun m -> raise (C.Integrity_failure m)) fmt

(* Per-fragment SOE state: the verified ciphertext suffix received from the
   terminal, the blocks decrypted so far, and the sibling digests fetched
   for this fragment (paid for once per cache lifetime). *)
type frag_entry = {
  mutable avail_from : int;  (* fragment-local byte offset; frag_size = none *)
  mutable cipher_suffix : string;
  mutable siblings : string list option;
  plain_blocks : (int, string) Hashtbl.t;  (* fragment-local block index *)
}

let source_of_terminal ?(verify = true) ?(cache_fragments = 8) ~terminal ~key
    counters =
  let container = terminal.t_container in
  let scheme = C.scheme container in
  let verify_requested = verify in
  let verify = verify && scheme <> C.Ecb in
  counters.verify_requested <- verify_requested;
  counters.verify_active <- verify;
  let chunk_size = C.chunk_size container in
  let frag_size = C.fragment_size container in
  let frags_per_chunk = C.fragments_per_chunk container in
  let payload_len = C.payload_length container in
  let tree_levels =
    let rec go l n = if n <= 1 then l else go (l + 1) (n / 2) in
    go 0 frags_per_chunk
  in
  (* SOE-side caches, bounded like a smart card's RAM *)
  let frag_cache : ((int * int) * frag_entry) list ref = ref [] in
  (* CBC chunk cache: plaintext plus, for CBC-SHAC, which blocks have been
     decrypted (CBC random access decrypts exactly the blocks it needs:
     block i needs only ciphertext blocks i-1 and i) *)
  let chunk_cache : (int * string * (int, unit) Hashtbl.t) option ref = ref None in
  let root_cache : (int * string) option ref = ref None in
  let chunk_digest chunk =
    match !root_cache with
    | Some (c, d) when c = chunk -> d
    | _ ->
        counters.bytes_to_soe <- counters.bytes_to_soe + digest_blob_bytes;
        counters.bytes_decrypted <- counters.bytes_decrypted + digest_blob_bytes;
        counters.blocks_decrypted <-
          counters.blocks_decrypted + (digest_blob_bytes / 8);
        counters.digests_decrypted <- counters.digests_decrypted + 1;
        let blob = terminal.fetch_digest ~chunk in
        (* validates the blob size before decrypting *)
        let d = C.decrypt_digest_blob ~key ~chunk blob in
        root_cache := Some (chunk, d);
        d
  in
  let lookup_fragment chunk frag =
    match List.assoc_opt (chunk, frag) !frag_cache with
    | Some e -> e
    | None ->
        let e =
          {
            avail_from = frag_size;
            cipher_suffix = "";
            siblings = None;
            plain_blocks = Hashtbl.create 8;
          }
        in
        frag_cache := ((chunk, frag), e) :: !frag_cache;
        if List.length !frag_cache > cache_fragments then
          frag_cache := List.filteri (fun i _ -> i < cache_fragments) !frag_cache;
        e
  in
  (* Fetch ciphertext [lo, avail_from) of a fragment and prepend it to the
     entry's suffix. The served length is validated — a terminal that
     answers with the wrong number of bytes is indistinguishable from a
     tampering one. *)
  let extend_cipher chunk frag entry lo =
    let hi = entry.avail_from in
    counters.fragment_fetches <- counters.fragment_fetches + 1;
    let delta = terminal.fetch_fragment ~chunk ~fragment:frag ~lo ~hi in
    if String.length delta <> hi - lo then
      integrity "chunk %d fragment %d: served %d bytes for range [%d, %d)"
        chunk frag (String.length delta) lo hi;
    counters.bytes_to_soe <- counters.bytes_to_soe + (hi - lo);
    entry.cipher_suffix <- delta ^ entry.cipher_suffix;
    entry.avail_from <- lo
  in
  (* Appendix A: to let the SOE verify a fragment it reads from byte [lo]
     on, the terminal sends the ciphertext suffix, the intermediate SHA-1
     state of the prefix (the leaf hash covers chunk and fragment ids plus
     the whole fragment ciphertext), the Merkle sibling digests, and the
     encrypted ChunkDigest. *)
  let extend_suffix chunk frag entry lo =
    let lo = lo / 8 * 8 in
    if lo < entry.avail_from then begin
      let t0 = Xmlac_obs.Span.now () in
      extend_cipher chunk frag entry lo;
      if verify then begin
        (* terminal: hash the prefix (ids + cipher[0..lo)) and export the
           mid-state; SOE: resume, hash the suffix, recombine to the root *)
        let state = terminal.fetch_hash_state ~chunk ~fragment:frag ~upto:lo in
        counters.bytes_to_soe <- counters.bytes_to_soe + hash_state_bytes;
        let soe_ctx =
          try Sha1.import_state state
          with Invalid_argument _ ->
            integrity "chunk %d fragment %d: malformed hash state" chunk frag
        in
        Sha1.feed soe_ctx entry.cipher_suffix;
        let leaf = Sha1.finalize soe_ctx in
        counters.bytes_hashed <-
          counters.bytes_hashed + String.length entry.cipher_suffix;
        let cover =
          Merkle.sibling_cover ~leaf_count:frags_per_chunk ~lo:frag ~hi:frag
        in
        (* re-verification when a suffix is extended backwards re-hashes;
           the first fetch of a fragment pays the Merkle cover *)
        let digests =
          match entry.siblings with
          | Some ds -> ds
          | None ->
              let ds = terminal.fetch_siblings ~chunk ~fragment:frag in
              if List.length ds <> List.length cover then
                integrity
                  "chunk %d fragment %d: %d sibling digests for a cover of %d"
                  chunk frag (List.length ds) (List.length cover);
              counters.bytes_to_soe <-
                counters.bytes_to_soe + (digest_bytes * List.length ds);
              entry.siblings <- Some ds;
              ds
        in
        let supplied = List.combine cover digests in
        counters.bytes_hashed <-
          counters.bytes_hashed + (2 * digest_bytes * tree_levels);
        let root =
          match
            Merkle.root_from_cover ~leaf_count:frags_per_chunk
              ~known:[ (frag, leaf) ] ~supplied
          with
          | Some r -> r
          | None -> raise (C.Integrity_failure "incomplete Merkle cover")
        in
        let ok =
          String.equal
            (C.seal_root container ~chunk ~root)
            (chunk_digest chunk)
        in
        emit_chunk_verdict ~chunk ~ok
          (Printf.sprintf "fragment %d Merkle root %s" frag
             (if ok then "verified" else "mismatch"));
        if not ok then
          integrity "chunk %d fragment %d: Merkle root mismatch" chunk frag;
        counters.hashes_verified <- counters.hashes_verified + 1
      end;
      Xmlac_obs.Histogram.observe counters.crypto_hist
        (Xmlac_obs.Span.now () -. t0)
    end
  in
  (* decrypt (and charge) one 8-byte block of a fragment, memoized *)
  let fragment_block chunk frag entry b =
    match Hashtbl.find_opt entry.plain_blocks b with
    | Some p -> p
    | None ->
        let local = b * 8 in
        if local < entry.avail_from then
          (* can only happen through cache eviction followed by a backward
             read; extend the suffix first *)
          extend_suffix chunk frag entry local;
        let cipher_block =
          String.sub entry.cipher_suffix (local - entry.avail_from) 8
        in
        counters.bytes_decrypted <- counters.bytes_decrypted + 8;
        counters.blocks_decrypted <- counters.blocks_decrypted + 1;
        let base = (chunk * chunk_size) + (frag * frag_size) + local in
        let plain =
          Xmlac_crypto.Modes.positional_decrypt
            (Xmlac_crypto.Modes.of_triple_des key)
            ~base cipher_block
        in
        Hashtbl.replace entry.plain_blocks b plain;
        plain
  in
  (* read [lo, hi) within one fragment *)
  let read_in_fragment chunk frag lo hi =
    let entry = lookup_fragment chunk frag in
    if verify then extend_suffix chunk frag entry lo
    else if lo / 8 * 8 < entry.avail_from then
      (* without integrity the terminal serves just the covering blocks *)
      extend_cipher chunk frag entry (lo / 8 * 8);
    let buf = Buffer.create (hi - lo) in
    for b = lo / 8 to (hi - 1) / 8 do
      let plain = fragment_block chunk frag entry b in
      let block_lo = b * 8 and block_hi = (b + 1) * 8 in
      let from = max lo block_lo - block_lo in
      let upto = min hi block_hi - block_lo in
      Buffer.add_substring buf plain from (upto - from)
    done;
    Buffer.contents buf
  in
  (* CBC schemes: chunk granularity (no random access inside a chunk).
     Only the CBC branch of [read] calls [fetch_chunk]; the ECB-family arm
     below is a no-op by construction, not a hidden verification skip. *)
  let verify_cbc_chunk chunk ~plain ~cipher =
    match scheme with
    | C.Cbc_sha ->
        counters.bytes_decrypted <- counters.bytes_decrypted + chunk_size;
        counters.blocks_decrypted <- counters.blocks_decrypted + (chunk_size / 8);
        if verify then begin
          counters.bytes_hashed <- counters.bytes_hashed + chunk_size;
          let expected = C.expected_digest_of_plain container ~chunk ~plain in
          let ok = String.equal expected (chunk_digest chunk) in
          emit_chunk_verdict ~chunk ~ok
            (Printf.sprintf "plaintext digest %s"
               (if ok then "verified" else "mismatch"));
          if not ok then
            integrity "chunk %d: plaintext digest mismatch" chunk;
          counters.hashes_verified <- counters.hashes_verified + 1
        end
    | C.Cbc_shac ->
        if verify then begin
          counters.bytes_hashed <- counters.bytes_hashed + chunk_size;
          let expected = C.expected_digest_of_cipher container ~chunk ~cipher in
          let ok = String.equal expected (chunk_digest chunk) in
          emit_chunk_verdict ~chunk ~ok
            (Printf.sprintf "ciphertext digest %s"
               (if ok then "verified" else "mismatch"));
          if not ok then
            integrity "chunk %d: ciphertext digest mismatch" chunk;
          counters.hashes_verified <- counters.hashes_verified + 1
        end
    | C.Ecb | C.Ecb_mht -> ()
  in
  let fetch_chunk chunk =
    match !chunk_cache with
    | Some (c, plain, blocks) when c = chunk -> (plain, blocks)
    | _ ->
        let t0 = Xmlac_obs.Span.now () in
        counters.chunk_fetches <- counters.chunk_fetches + 1;
        counters.bytes_to_soe <- counters.bytes_to_soe + chunk_size;
        let cipher = terminal.fetch_chunk ~chunk in
        (* validates the ciphertext size before decrypting *)
        let plain = C.decrypt_chunk_cipher container ~key ~chunk ~cipher in
        verify_cbc_chunk chunk ~plain ~cipher;
        Xmlac_obs.Histogram.observe counters.crypto_hist
          (Xmlac_obs.Span.now () -. t0);
        let blocks = Hashtbl.create 32 in
        chunk_cache := Some (chunk, plain, blocks);
        (plain, blocks)
  in
  let read ~pos ~len =
    if len = 0 then ""
    else begin
      let buf = Buffer.create len in
      let remaining = ref len and cur = ref pos in
      while !remaining > 0 do
        let chunk = !cur / chunk_size in
        let offset = !cur mod chunk_size in
        (match scheme with
        | C.Ecb | C.Ecb_mht ->
            let frag = offset / frag_size in
            let lo = offset mod frag_size in
            let take = min !remaining (frag_size - lo) in
            Buffer.add_string buf (read_in_fragment chunk frag lo (lo + take));
            cur := !cur + take;
            remaining := !remaining - take
        | C.Cbc_sha | C.Cbc_shac ->
            let take = min !remaining (chunk_size - offset) in
            let plain, blocks = fetch_chunk chunk in
            if scheme = C.Cbc_shac then
              (* decrypt only the covering blocks, each charged once *)
              for b = offset / 8 to (offset + take - 1) / 8 do
                if not (Hashtbl.mem blocks b) then begin
                  Hashtbl.replace blocks b ();
                  counters.bytes_decrypted <- counters.bytes_decrypted + 8;
                  counters.blocks_decrypted <- counters.blocks_decrypted + 1
                end
              done;
            Buffer.add_substring buf plain offset take;
            cur := !cur + take;
            remaining := !remaining - take)
      done;
      Buffer.contents buf
    end
  in
  { Xmlac_skip_index.Decoder.read; length = payload_len }

let source ?verify ?cache_fragments ~container ~key counters =
  source_of_terminal ?verify ?cache_fragments
    ~terminal:(local_terminal container) ~key counters
