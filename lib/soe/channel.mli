(** The terminal ↔ SOE channel.

    The untrusted terminal holds the encrypted container and serves the SOE
    byte ranges of the payload. Depending on the container's integrity
    scheme the SOE fetches fragments, Merkle sibling digests, intermediate
    hash states or whole chunks, decrypts what it needs, and verifies every
    byte before the evaluator sees it (Section 6 / Appendix A).

    The terminal is an abstract set of fetch operations ({!terminal}):
    {!local_terminal} answers from a container in the same process (the
    historical simulation), while {!Remote} builds one backed by the wire
    protocol. The SOE side is identical either way — including its byte
    accounting, so local and remote runs of the same query tally the same
    [bytes_to_soe].

    Reads are processed as a pipeline of fixed-size windows, each in four
    phases: {e plan} (predict the window's terminal fetches and issue them
    as one batched round trip, when the terminal supports it), {e fetch}
    (all cache operations and byte accounting, on the calling domain, in
    unit order), {e compute} (hashing, Merkle reconstruction and block
    decryption — pure per-unit work, optionally spread over a {!Pool} of
    worker domains), and {e commit} (verdicts, counter charges and output
    delivery, again in unit order). Because every observable effect happens
    in the fetch/commit phases, delivered bytes, counters and failure
    messages are byte-identical at any job count.

    Every exchange is tallied in {!counters}; the {!Cost_model} turns the
    tallies into simulated seconds. The cryptography is real: tampering with
    the container makes reads raise {!Xmlac_crypto.Secure_container.Integrity_failure}. *)

type counters = {
  mutable bytes_to_soe : int;  (** payload + digest + hash-state bytes sent *)
  mutable bytes_decrypted : int;
  mutable bytes_hashed : int;  (** hashed inside the SOE *)
  mutable blocks_decrypted : int;
      (** cipher blocks, incl. digests: 8-byte 3DES blocks for the paper
          schemes, 16-byte AES blocks for [Aes_ctr] *)
  mutable digests_decrypted : int;
  mutable hashes_verified : int;  (** integrity comparisons that passed *)
  mutable fragment_fetches : int;
  mutable chunk_fetches : int;
  mutable engine_batched_blocks : int;
      (** blocks decrypted through the fast engine's batch kernel — 0 under
          the reference engine; deterministic at any job count, like all
          other counters, because batching depends only on run lengths *)
  mutable engine_merkle_groups : int;
      (** chunk-grouped Merkle recombinations the fast engine performed in
          place of per-fragment root walks (0 under reference) *)
  mutable verify_requested : bool;  (** what the caller asked for *)
  mutable verify_active : bool;
      (** what actually ran: [false] under ECB even when requested, since
          the scheme carries no digests — the downgrade is recorded here
          (and in the remote handshake) instead of happening silently *)
  cache : Lru.stats;
      (** hit/miss/evicted across the session's SOE caches (fragment,
          chunk, digest); deterministic, so gate-checked like the byte
          counters *)
  crypto_hist : Xmlac_obs.Histogram.t;
      (** wall-time of each decrypt+verify unit — a chunk fetch or a
          fragment suffix extension; the ["wall_crypto_*"] metrics are
          exempt from perf gating *)
}

val fresh_counters : unit -> counters

val metrics : counters -> Xmlac_obs.Metrics.t
(** Snapshot as named metrics (for [--stats] summaries and bench records),
    including the [wall_crypto] histogram and the [verify_requested] /
    [verify_active] flags as 0/1 gauges.

    When a {!Xmlac_obs.Trace} sink is installed, the channel also emits a
    [prov.chunk] event for every integrity comparison (Merkle root or
    chunk digest), carrying the verdict — the chunk records of the
    provenance trace. *)

val cache_metrics : counters -> Xmlac_obs.Metrics.t
(** The {!Lru.stats} snapshot as [hits] / [misses] / [evicted] metrics
    (emitted by sessions under a ["cache."] prefix). *)

type slice = { s_data : string; s_off : int }
(** A served byte range as a view into a larger buffer: the bytes start at
    [s_off] in [s_data]. Lets the in-process terminal serve fragment ranges
    without copying; the channel validates that enough bytes follow
    [s_off] before trusting the view. *)

type fetch_req =
  | Fetch_fragment of { chunk : int; fragment : int; lo : int; hi : int }
  | Fetch_chunk of { chunk : int }
  | Fetch_digest of { chunk : int }
  | Fetch_hash_state of { chunk : int; fragment : int; upto : int }
  | Fetch_siblings of { chunk : int; fragment : int }
      (** A fetch the channel can coalesce into a batched round trip;
          mirrors the individual operations below. *)

type fetch_reply = Bytes_reply of string | List_reply of string list

type terminal = {
  t_container : Xmlac_crypto.Secure_container.t;
      (** for the local terminal, the full container; for a remote one, the
          header-only geometry from the (validated) handshake *)
  fetch_fragment : chunk:int -> fragment:int -> lo:int -> hi:int -> slice;
      (** ciphertext bytes [\[lo, hi)] of one fragment, as a {!slice} view *)
  fetch_chunk : chunk:int -> string;  (** whole-chunk ciphertext *)
  fetch_digest : chunk:int -> string;  (** the encrypted digest blob *)
  fetch_hash_state : chunk:int -> fragment:int -> upto:int -> string;
      (** serialized SHA-1 state after the leaf ids and cipher [\[0, upto)] *)
  fetch_siblings : chunk:int -> fragment:int -> string list;
      (** Merkle sibling digests for a one-leaf cover, in
          {!Xmlac_crypto.Merkle.sibling_cover} order *)
  fetch_many : (fetch_req list -> fetch_reply list) option;
      (** several fetches answered in one round trip, replies in request
          order; [None] when the terminal has no such fast path (local, or
          a terminal that does not advertise batching) *)
}
(** What the SOE asks of a terminal. Nothing a terminal returns is trusted:
    the channel validates every length and verifies cryptographically
    before use, so a hostile implementation can cause at most a typed
    failure. *)

val local_terminal : Xmlac_crypto.Secure_container.t -> terminal
(** The in-process terminal: serves the container directly (fragment reads
    are zero-copy {!slice} views into chunk ciphertext) and memoizes
    per-chunk fragment leaf hashes (a terminal is an ordinary computer and
    caches freely). [fetch_many] is [None] — there is no round trip to
    save. *)

val source_of_terminal :
  ?verify:bool ->
  ?cache_fragments:int ->
  ?cache_chunks:int ->
  ?pool:Pool.t ->
  ?engine:Xmlac_crypto.Engine.t ->
  terminal:terminal ->
  key:Xmlac_crypto.Des.Triple.key ->
  counters ->
  Xmlac_skip_index.Decoder.source
(** A byte source over the terminal's decrypted payload. [verify] defaults
    to true (forced to false for the ECB scheme, which carries no digests —
    recorded in [counters.verify_active]). [cache_fragments] bounds the
    SOE-side fragment cache (default 8 fragments ≈ a 2 KB working set, the
    paper's smart-card scale); [cache_chunks] the decrypted-chunk cache for
    the CBC schemes (default 1, the paper's model of chunk-at-a-time CBC).
    [pool] runs the compute phase of each window on worker domains;
    omitting it (or passing a 1-job pool) computes inline. Either way the
    delivered bytes, counter values and failure behaviour are identical.

    [engine] (default {!Xmlac_crypto.Engine.Reference}) selects the crypto
    kernels: [Fast] decrypts block runs at or above
    {!Xmlac_crypto.Modes.batch_threshold} through the bitsliced DES kernel
    and verifies Merkle roots once per window chunk-group instead of once
    per fragment. Delivered bytes and the cost-model counters are
    byte-identical across engines (pinned by the differential suite); only
    wall-clock and the [engine.*] counters change. Under [Fast], a Merkle
    mismatch is attributed to the first extended fragment of the failing
    chunk's window group rather than the precise fragment.

    After an [Integrity_failure] the source is poisoned — a failed
    verification aborts the session, it is not a recoverable read error.

    Scheme behaviours:
    - ECB: fetch + decrypt only the 8-byte-aligned blocks covering a read;
    - ECB-MHT: fetch + decrypt covering fragments; verify each against the
      chunk's Merkle root using terminal-supplied sibling digests;
    - CBC-SHAC: fetch a whole chunk's ciphertext once, hash it inside the
      SOE against the decrypted digest, then decrypt only requested blocks;
    - CBC-SHA: fetch and decrypt a whole chunk, then hash its plaintext;
    - AES-CTR: like CBC-SHA on the fetch side (whole-chunk units) with a
      SHA-256 ciphertext digest and 16-byte cipher blocks. *)

val source :
  ?verify:bool ->
  ?cache_fragments:int ->
  ?cache_chunks:int ->
  ?pool:Pool.t ->
  ?engine:Xmlac_crypto.Engine.t ->
  container:Xmlac_crypto.Secure_container.t ->
  key:Xmlac_crypto.Des.Triple.key ->
  counters ->
  Xmlac_skip_index.Decoder.source
(** [source_of_terminal] over [local_terminal container]. *)
