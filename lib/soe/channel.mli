(** The terminal ↔ SOE channel.

    The untrusted terminal holds the encrypted container and serves the SOE
    byte ranges of the payload. Depending on the container's integrity
    scheme the SOE fetches fragments, Merkle sibling digests, intermediate
    hash states or whole chunks, decrypts what it needs, and verifies every
    byte before the evaluator sees it (Section 6 / Appendix A).

    Every exchange is tallied in {!counters}; the {!Cost_model} turns the
    tallies into simulated seconds. The cryptography is real: tampering with
    the container makes reads raise {!Xmlac_crypto.Secure_container.Integrity_failure}. *)

type counters = {
  mutable bytes_to_soe : int;  (** payload + digest + hash-state bytes sent *)
  mutable bytes_decrypted : int;
  mutable bytes_hashed : int;  (** hashed inside the SOE *)
  mutable blocks_decrypted : int;  (** 8-byte 3DES blocks (incl. digests) *)
  mutable digests_decrypted : int;
  mutable hashes_verified : int;  (** integrity comparisons that passed *)
  mutable fragment_fetches : int;
  mutable chunk_fetches : int;
  crypto_hist : Xmlac_obs.Histogram.t;
      (** wall-time of each decrypt+verify unit — a chunk fetch or a
          fragment suffix extension; the ["wall_crypto_*"] metrics are
          exempt from perf gating *)
}

val fresh_counters : unit -> counters

val metrics : counters -> Xmlac_obs.Metrics.t
(** Snapshot as named metrics (for [--stats] summaries and bench records),
    including the [wall_crypto] histogram.

    When a {!Xmlac_obs.Trace} sink is installed, the channel also emits a
    [prov.chunk] event for every integrity comparison (Merkle root or
    chunk digest), carrying the verdict — the chunk records of the
    provenance trace. *)

val source :
  ?verify:bool ->
  ?cache_fragments:int ->
  container:Xmlac_crypto.Secure_container.t ->
  key:Xmlac_crypto.Des.Triple.key ->
  counters ->
  Xmlac_skip_index.Decoder.source
(** A byte source over the container's decrypted payload. [verify] defaults
    to true (forced to false for the ECB scheme, which carries no digests).
    [cache_fragments] bounds the SOE-side plaintext cache (default 8
    fragments ≈ a 2 KB working set, the paper's smart-card scale).

    Scheme behaviours:
    - ECB: fetch + decrypt only the 8-byte-aligned blocks covering a read;
    - ECB-MHT: fetch + decrypt covering fragments; verify each against the
      chunk's Merkle root using terminal-supplied sibling digests;
    - CBC-SHAC: fetch a whole chunk's ciphertext once, hash it inside the
      SOE against the decrypted digest, then decrypt only requested blocks;
    - CBC-SHA: fetch and decrypt a whole chunk, then hash its plaintext. *)
