type context = Hardware | Software_internet | Software_lan

type t = {
  name : string;
  comm_bytes_per_s : float;
  decrypt_bytes_per_s : float;
  hash_bytes_per_s : float;
  transition_s : float;
  event_s : float;
}

let mb = 1024. *. 1024.

(* Table 1, plus CPU constants calibrated so that access control lands in
   the 2-15% band the paper reports on the Hospital workload: the hardware
   SOE is a 40 MHz smart card, the software SOEs run on a 1 GHz PC. *)
let of_context = function
  | Hardware ->
      {
        name = "Hardware (smart card)";
        comm_bytes_per_s = 0.5 *. mb;
        decrypt_bytes_per_s = 0.15 *. mb;
        hash_bytes_per_s = 1.0 *. mb;
        transition_s = 1.2e-6;
        event_s = 1.5e-6;
      }
  | Software_internet ->
      {
        name = "Software - Internet";
        comm_bytes_per_s = 0.1 *. mb;
        decrypt_bytes_per_s = 1.2 *. mb;
        hash_bytes_per_s = 8.0 *. mb;
        transition_s = 4.8e-8;
        event_s = 6.0e-8;
      }
  | Software_lan ->
      {
        name = "Software - LAN";
        comm_bytes_per_s = 10. *. mb;
        decrypt_bytes_per_s = 1.2 *. mb;
        hash_bytes_per_s = 8.0 *. mb;
        transition_s = 4.8e-8;
        event_s = 6.0e-8;
      }

let all_contexts = [ Hardware; Software_internet; Software_lan ]

let context_name = function
  | Hardware -> "Hardware (smart card)"
  | Software_internet -> "Software - Internet"
  | Software_lan -> "Software - LAN"

let table1 = List.map (fun c -> (c, of_context c)) all_contexts

type breakdown = {
  communication_s : float;
  decryption_s : float;
  access_control_s : float;
  integrity_s : float;
  total_s : float;
}

let breakdown t ~bytes_in ~bytes_decrypted ~bytes_hashed ~transitions ~events =
  let communication_s = float_of_int bytes_in /. t.comm_bytes_per_s in
  let decryption_s = float_of_int bytes_decrypted /. t.decrypt_bytes_per_s in
  let integrity_s = float_of_int bytes_hashed /. t.hash_bytes_per_s in
  let access_control_s =
    (float_of_int transitions *. t.transition_s)
    +. (float_of_int events *. t.event_s)
  in
  {
    communication_s;
    decryption_s;
    access_control_s;
    integrity_s;
    total_s = communication_s +. decryption_s +. access_control_s +. integrity_s;
  }

let breakdown_metrics (b : breakdown) : Xmlac_obs.Metrics.t =
  Xmlac_obs.Metrics.
    [
      float "communication_s" b.communication_s;
      float "decryption_s" b.decryption_s;
      float "access_control_s" b.access_control_s;
      float "integrity_s" b.integrity_s;
      float "total_s" b.total_s;
    ]

let pp_breakdown ppf b =
  Fmt.pf ppf "total %.3fs (comm %.3fs, decrypt %.3fs, AC %.3fs, integrity %.3fs)"
    b.total_s b.communication_s b.decryption_s b.access_control_s b.integrity_s
