(** The simulated-time model of the SOE (paper Table 1).

    The paper's prototype ran in C on a cycle-accurate smart-card simulator;
    its own analysis attributes execution time to three components:
    communication into the SOE, decryption inside the SOE, and the access
    control computation itself (reported at 2–15 % of the total). This
    module reproduces that model: time = bytes-in / communication bandwidth
    + bytes-decrypted / decryption bandwidth + CPU term, with Table 1's
    constants verbatim. Absolute wall-clock speed of this OCaml process
    never enters any reported figure. *)

type context =
  | Hardware  (** forthcoming smart card: USB + hardwired 3DES *)
  | Software_internet
  | Software_lan

type t = {
  name : string;
  comm_bytes_per_s : float;
  decrypt_bytes_per_s : float;
  hash_bytes_per_s : float;  (** SHA-1 inside the SOE *)
  transition_s : float;  (** CPU cost of one ARA token transition *)
  event_s : float;  (** CPU cost of decoding/dispatching one event *)
}

val of_context : context -> t
val table1 : (context * t) list
val all_contexts : context list
val context_name : context -> string

type breakdown = {
  communication_s : float;
  decryption_s : float;
  access_control_s : float;
  integrity_s : float;
  total_s : float;
}

val breakdown :
  t ->
  bytes_in:int ->
  bytes_decrypted:int ->
  bytes_hashed:int ->
  transitions:int ->
  events:int ->
  breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit

val breakdown_metrics : breakdown -> Xmlac_obs.Metrics.t
(** Modeled-time components as named metrics (seconds). *)
