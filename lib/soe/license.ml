module Bitio = Xmlac_skip_index.Bitio
module Rule = Xmlac_core.Rule
module Policy = Xmlac_core.Policy

type t = {
  subject : string;
  rules : (string * Rule.sign * string) list;
  document_key : string;
  valid_until : int option;
  key_epoch : int;
}

let make ?valid_until ?(key_epoch = 0) ~subject ~document_key rules =
  if String.length document_key <> 24 then
    invalid_arg "License.make: document key must be 24 bytes";
  if key_epoch < 0 || key_epoch > 0xFFFF then
    invalid_arg "License.make: key epoch out of range";
  (* validate rules eagerly: ids distinct, paths parseable *)
  let t = { subject; rules; document_key; valid_until; key_epoch } in
  let _ =
    Policy.make
      (List.map (fun (id, sign, path) -> Rule.parse ~id ~sign path) rules)
  in
  t

let policy t =
  Policy.resolve_user ~user:t.subject
    (Policy.make
       (List.map (fun (id, sign, path) -> Rule.parse ~id ~sign path) t.rules))

let key t = Xmlac_crypto.Des.Triple.key_of_string t.document_key

let is_valid_at t ~now =
  match t.valid_until with None -> true | Some limit -> now <= limit

let authorize ?(revoked = []) t ~container_epoch =
  if List.mem t.subject revoked then
    Error (Printf.sprintf "license for %S has been revoked" t.subject)
  else if t.key_epoch < container_epoch then
    Error
      (Printf.sprintf
         "license key epoch %d predates container epoch %d: the document \
          key was rotated, obtain a reissued license"
         t.key_epoch container_epoch)
  else if t.key_epoch > container_epoch then
    Error
      (Printf.sprintf
         "license key epoch %d is newer than container epoch %d: this copy \
          of the document predates the rotation"
         t.key_epoch container_epoch)
  else Ok ()

(* Serialization ------------------------------------------------------------ *)

(* v2 appends the key epoch; v1 blobs (sealed by pre-rotation builds) are
   still accepted and read as epoch 0 *)
let magic = "XLIC1"
let magic_v2 = "XLIC2"

let serialize t =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bytes w (if t.key_epoch = 0 then magic else magic_v2);
  Bitio.Writer.varint w (String.length t.subject);
  Bitio.Writer.bytes w t.subject;
  Bitio.Writer.bytes w t.document_key;
  if t.key_epoch > 0 then Bitio.Writer.varint w t.key_epoch;
  (match t.valid_until with
  | None -> Bitio.Writer.bits w ~width:8 0
  | Some v ->
      Bitio.Writer.bits w ~width:8 1;
      Bitio.Writer.varint w v);
  Bitio.Writer.varint w (List.length t.rules);
  List.iter
    (fun (id, sign, path) ->
      Bitio.Writer.varint w (String.length id);
      Bitio.Writer.bytes w id;
      Bitio.Writer.bits w ~width:8 (match sign with Rule.Permit -> 1 | Rule.Deny -> 0);
      Bitio.Writer.varint w (String.length path);
      Bitio.Writer.bytes w path)
    t.rules;
  Bitio.Writer.contents w

let deserialize payload =
  try
    let r = Bitio.Reader.of_string payload in
    let m = Bitio.Reader.bytes r (String.length magic) in
    if m <> magic && m <> magic_v2 then Error "bad license magic"
    else begin
      let subject = Bitio.Reader.bytes r (Bitio.Reader.varint r) in
      let document_key = Bitio.Reader.bytes r 24 in
      let key_epoch = if m = magic then 0 else Bitio.Reader.varint r in
      let valid_until =
        match Bitio.Reader.bits r ~width:8 with
        | 0 -> None
        | _ -> Some (Bitio.Reader.varint r)
      in
      let n = Bitio.Reader.varint r in
      let rules =
        List.init n (fun _ ->
            let id = Bitio.Reader.bytes r (Bitio.Reader.varint r) in
            let sign =
              if Bitio.Reader.bits r ~width:8 = 1 then Rule.Permit else Rule.Deny
            in
            let path = Bitio.Reader.bytes r (Bitio.Reader.varint r) in
            (id, sign, path))
      in
      Ok (make ?valid_until ~key_epoch ~subject ~document_key rules)
    end
  with
  | Invalid_argument msg -> Error msg
  | Xmlac_xpath.Parse.Error (msg, _) -> Error ("bad rule in license: " ^ msg)

(* Sealing -------------------------------------------------------------------

   tag = SHA1(K' ‖ payload ‖ K'), K' = the raw serialized key schedule is
   not accessible, so the caller-level convention is: the authenticator key
   is SHA1 of the sealing passphrase-derived 24 bytes — here we derive it
   from an encrypted constant, which only the key holder can compute. *)

let auth_tag ~soe_key payload =
  (* a secret value derivable only with the key: E_k over two fixed blocks *)
  let module D = Xmlac_crypto.Des.Triple in
  let b = Bytes.create 16 in
  Xmlac_crypto.Des.block_to_bytes b ~pos:0 (D.encrypt_block soe_key 0x584C494331L);
  Xmlac_crypto.Des.block_to_bytes b ~pos:8 (D.encrypt_block soe_key 0x584C494332L);
  let k = Bytes.to_string b in
  Xmlac_crypto.Sha1.digest (k ^ payload ^ k)

let seal ~soe_key t =
  let payload = serialize t in
  let tagged = payload ^ auth_tag ~soe_key payload in
  Xmlac_crypto.Modes.positional_encrypt
    (Xmlac_crypto.Modes.of_triple_des soe_key)
    ~base:0
    (Xmlac_crypto.Modes.pad tagged)

let unseal ~soe_key blob =
  if String.length blob = 0 || String.length blob mod 8 <> 0 then
    Error "malformed license blob"
  else
    match
      Xmlac_crypto.Modes.unpad
        (Xmlac_crypto.Modes.positional_decrypt
           (Xmlac_crypto.Modes.of_triple_des soe_key)
           ~base:0 blob)
    with
    | exception Invalid_argument _ -> Error "license decryption failed"
    | tagged ->
        let n = String.length tagged in
        if n < Xmlac_crypto.Sha1.digest_size then Error "license too short"
        else begin
          let payload = String.sub tagged 0 (n - Xmlac_crypto.Sha1.digest_size) in
          let tag = String.sub tagged (n - Xmlac_crypto.Sha1.digest_size)
              Xmlac_crypto.Sha1.digest_size in
          (* constant-time: the expected tag derives from the SOE key, and
             the blob is attacker-supplied *)
          if not (Xmlac_crypto.Ct.equal tag (auth_tag ~soe_key payload)) then
            Error "license authentication failed"
          else deserialize payload
        end
