(** Licenses: the sealed credential bundles the paper's architecture
    assumes — "this access control policy as well as the key(s) required to
    decrypt the document can be permanently hosted by the SOE, refreshed or
    downloaded via a secure channel from different sources (trusted third
    party, security server, parent or teacher, etc)."

    A license carries, for one (subject, document) pair: the subject name,
    the access-control rules, the 24-byte 3DES document key, and an
    optional expiry. It travels sealed under a key only the issuing
    authority and the target SOE share: encrypted with positional ECB and
    authenticated with a keyed SHA-1 tag (an era-appropriate construction;
    swap in a modern AEAD for production use). *)

type t = {
  subject : string;
  rules : (string * Xmlac_core.Rule.sign * string) list;
      (** (id, sign, xpath) — [USER] literals allowed; they resolve to
          [subject] in {!policy} *)
  document_key : string;  (** 24 bytes *)
  valid_until : int option;  (** issuer-defined clock, e.g. epoch days *)
  key_epoch : int;
      (** which rotation of the document key this license carries; a
          container past a key rotation refuses (typed) any license whose
          epoch is older — that is how revocation is enforced
          cryptographically rather than by terminal goodwill *)
}

val make :
  ?valid_until:int ->
  ?key_epoch:int ->
  subject:string ->
  document_key:string ->
  (string * Xmlac_core.Rule.sign * string) list ->
  t
(** @raise Invalid_argument if the key is not 24 bytes, a rule does not
    parse, or [key_epoch] (default 0) is outside [0, 65535]. *)

val policy : t -> Xmlac_core.Policy.t
(** The subject's policy, USER-resolved. *)

val key : t -> Xmlac_crypto.Des.Triple.key

val is_valid_at : t -> now:int -> bool

val authorize :
  ?revoked:string list -> t -> container_epoch:int -> (unit, string) result
(** The dissemination-era gate, checked {e before} the document key ever
    touches ciphertext: [Error] when the subject appears on [revoked] (the
    list a delta distributed), or when [key_epoch] differs from the
    container's. A stale license holds a pre-rotation key — under plain
    ECB it would silently decrypt to garbage; this check turns that into
    a deterministic typed refusal. A {e newer} epoch is refused too: each
    epoch derives a distinct key, so the mismatch cannot decrypt either
    direction. *)

val seal : soe_key:Xmlac_crypto.Des.Triple.key -> t -> string
(** Serialize, authenticate and encrypt. *)

val unseal :
  soe_key:Xmlac_crypto.Des.Triple.key -> string -> (t, string) result
(** Decrypt, check authenticity, deserialize. Any tampering — or the wrong
    SOE key — yields [Error]. *)
