(* Re-export of the shared runtime LRU: the SOE's per-session caches and
   the terminal registry's shared leaf-hash cache are the same structure
   (see lib/runtime/lru.ml). *)

include Xmlac_runtime.Lru
