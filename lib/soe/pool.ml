(* Re-export of the shared runtime pool: the SOE's decrypt-ahead pipeline
   and the terminal server's acceptor domains use the same primitive (see
   lib/runtime/pool.ml), so the two sides of the wire share one
   scheduling substrate. *)

include Xmlac_runtime.Pool
