module C = Xmlac_crypto.Secure_container
module Wire = Xmlac_wire

type t = { client : Wire.Client.t; terminal : Channel.terminal }

let handshake_error fmt =
  Printf.ksprintf
    (fun m -> raise (Wire.Error.Wire (Wire.Error.Handshake m)))
    fmt

let integrity fmt =
  Printf.ksprintf (fun m -> raise (C.Integrity_failure m)) fmt

(* A remote terminal must serve fragment ranges exactly: over- and
   under-serving are both treated as tampering, with the same failure the
   in-process channel raises. (The local terminal serves views into chunk
   ciphertext, where only under-serving is possible.) *)
let check_fragment_length ~chunk ~fragment ~lo ~hi cipher =
  if String.length cipher <> hi - lo then
    integrity "chunk %d fragment %d: served %d bytes for range [%d, %d)" chunk
      fragment (String.length cipher) lo hi

let request_of_fetch : Channel.fetch_req -> Wire.Protocol.request = function
  | Channel.Fetch_fragment { chunk; fragment; lo; hi } ->
      Wire.Protocol.Get_fragment { chunk; fragment; lo; hi }
  | Channel.Fetch_chunk { chunk } -> Wire.Protocol.Get_chunk { chunk }
  | Channel.Fetch_digest { chunk } -> Wire.Protocol.Get_digest { chunk }
  | Channel.Fetch_hash_state { chunk; fragment; upto } ->
      Wire.Protocol.Get_hash_state { chunk; fragment; upto }
  | Channel.Fetch_siblings { chunk; fragment } ->
      Wire.Protocol.Get_siblings { chunk; fragment }

let reply_of_response req (resp : Wire.Protocol.response) : Channel.fetch_reply
    =
  match (req, resp) with
  | Channel.Fetch_fragment { chunk; fragment; lo; hi }, Wire.Protocol.Fragment c
    ->
      check_fragment_length ~chunk ~fragment ~lo ~hi c;
      Channel.Bytes_reply c
  | Channel.Fetch_chunk _, Wire.Protocol.Chunk c -> Channel.Bytes_reply c
  | Channel.Fetch_digest _, Wire.Protocol.Digest b -> Channel.Bytes_reply b
  | Channel.Fetch_hash_state _, Wire.Protocol.Hash_state s ->
      Channel.Bytes_reply s
  | Channel.Fetch_siblings _, Wire.Protocol.Siblings ds ->
      Channel.List_reply ds
  | _ ->
      (* [Client.fetch_batch] already rejected kind mismatches *)
      Wire.Error.protocolf "batch reply does not answer its request"

(* Issue a window's worth of fetches as Batch frames, splitting at the
   protocol's per-frame cap. Replies come back in request order. *)
let fetch_many client reqs =
  let rec split n acc rest =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when n = 0 -> (List.rev acc, rest)
    | x :: tl -> split (n - 1) (x :: acc) tl
  in
  let rec go reqs =
    match reqs with
    | [] -> []
    | _ ->
        let batch, rest = split Wire.Protocol.max_batch [] reqs in
        let resps =
          Wire.Client.fetch_batch client (List.map request_of_fetch batch)
        in
        List.map2 reply_of_response batch resps @ go rest
  in
  go reqs

let connect ?config ?container ?trace_id ?expect_scheme connector =
  let config =
    match container with
    | None -> config
    | Some id ->
        let base =
          Option.value config ~default:Wire.Client.default_config
        in
        Some { base with Wire.Client.container = id }
  in
  let config =
    match trace_id with
    | None -> config
    | Some trace ->
        let base =
          Option.value config ~default:Wire.Client.default_config
        in
        Some { base with Wire.Client.trace }
  in
  let client = Wire.Client.connect ?config connector in
  let meta = Wire.Client.metadata client in
  (match expect_scheme with
  | Some s when s <> meta.Wire.Protocol.scheme ->
      Wire.Client.close client;
      handshake_error "terminal advertises scheme %s, expected %s"
        (C.scheme_to_string meta.Wire.Protocol.scheme)
        (C.scheme_to_string s)
  | _ -> ());
  match Wire.Protocol.metadata_geometry meta with
  | Error msg ->
      Wire.Client.close client;
      handshake_error "%s" msg
  | Ok container ->
      let terminal =
        {
          Channel.t_container = container;
          fetch_fragment =
            (fun ~chunk ~fragment ~lo ~hi ->
              let c =
                Wire.Client.fetch_fragment client ~chunk ~fragment ~lo ~hi
              in
              check_fragment_length ~chunk ~fragment ~lo ~hi c;
              { Channel.s_data = c; s_off = 0 });
          fetch_chunk = (fun ~chunk -> Wire.Client.fetch_chunk client ~chunk);
          fetch_digest = (fun ~chunk -> Wire.Client.fetch_digest client ~chunk);
          fetch_hash_state =
            (fun ~chunk ~fragment ~upto ->
              Wire.Client.fetch_hash_state client ~chunk ~fragment ~upto);
          fetch_siblings =
            (fun ~chunk ~fragment ->
              Wire.Client.fetch_siblings client ~chunk ~fragment);
          fetch_many =
            (if meta.Wire.Protocol.batching then
               Some (fun reqs -> fetch_many client reqs)
             else None);
        }
      in
      { client; terminal }

let terminal t = t.terminal
let metadata t = Wire.Client.metadata t.client
let geometry t = t.terminal.Channel.t_container
let wire_stats t = Wire.Client.stats t.client
let trace_granted t = Wire.Client.trace_granted t.client
let trace_id t = Wire.Client.trace t.client
let fetch_stats t = Wire.Client.fetch_stats t.client

let source ?verify ?cache_fragments ?cache_chunks ?pool ?engine t ~key counters =
  Channel.source_of_terminal ?verify ?cache_fragments ?cache_chunks ?pool
    ?engine ~terminal:t.terminal ~key counters

let close t = Wire.Client.close t.client
