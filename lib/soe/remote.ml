module C = Xmlac_crypto.Secure_container
module Wire = Xmlac_wire

type t = { client : Wire.Client.t; terminal : Channel.terminal }

let handshake_error fmt =
  Printf.ksprintf
    (fun m -> raise (Wire.Error.Wire (Wire.Error.Handshake m)))
    fmt

let connect ?config ?expect_scheme connector =
  let client = Wire.Client.connect ?config connector in
  let meta = Wire.Client.metadata client in
  (match expect_scheme with
  | Some s when s <> meta.Wire.Protocol.scheme ->
      Wire.Client.close client;
      handshake_error "terminal advertises scheme %s, expected %s"
        (C.scheme_to_string meta.Wire.Protocol.scheme)
        (C.scheme_to_string s)
  | _ -> ());
  match Wire.Protocol.metadata_geometry meta with
  | Error msg ->
      Wire.Client.close client;
      handshake_error "%s" msg
  | Ok container ->
      let terminal =
        {
          Channel.t_container = container;
          fetch_fragment =
            (fun ~chunk ~fragment ~lo ~hi ->
              Wire.Client.fetch_fragment client ~chunk ~fragment ~lo ~hi);
          fetch_chunk = (fun ~chunk -> Wire.Client.fetch_chunk client ~chunk);
          fetch_digest = (fun ~chunk -> Wire.Client.fetch_digest client ~chunk);
          fetch_hash_state =
            (fun ~chunk ~fragment ~upto ->
              Wire.Client.fetch_hash_state client ~chunk ~fragment ~upto);
          fetch_siblings =
            (fun ~chunk ~fragment ->
              Wire.Client.fetch_siblings client ~chunk ~fragment);
        }
      in
      { client; terminal }

let terminal t = t.terminal
let metadata t = Wire.Client.metadata t.client
let geometry t = t.terminal.Channel.t_container
let wire_stats t = Wire.Client.stats t.client

let source ?verify ?cache_fragments t ~key counters =
  Channel.source_of_terminal ?verify ?cache_fragments ~terminal:t.terminal ~key
    counters

let close t = Wire.Client.close t.client
