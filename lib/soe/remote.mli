(** A remote terminal session: the SOE end of a wire connection to an
    {!Xmlac_wire.Server}-backed terminal (in-process loopback, Unix-domain
    socket, or TCP).

    The handshake metadata is hostile input: it is validated through
    {!Xmlac_wire.Protocol.metadata_geometry} before any request is issued,
    and [expect_scheme] lets the caller pin the integrity scheme so a
    terminal cannot silently downgrade (e.g. advertise ECB for a document
    published under ECB-MHT — the license tells the user which scheme they
    unlocked, so a mismatch is an attack, not a configuration). *)

type t

val connect :
  ?config:Xmlac_wire.Client.config ->
  ?container:string ->
  ?trace_id:string ->
  ?expect_scheme:Xmlac_crypto.Secure_container.scheme ->
  (unit -> Xmlac_wire.Transport.t) ->
  t
(** Connect, handshake, validate the advertised geometry. [container]
    names the published container to bind on a multi-tenant terminal
    (overrides [config.container]; requires an XWTP v1.2 terminal).
    [trace_id] (overrides [config.trace]) offers trace propagation in the
    hello; see {!Xmlac_wire.Client.config}.
    @raise Xmlac_wire.Error.Wire ([Handshake _]) when the terminal's story
    is unacceptable. *)

val terminal : t -> Channel.terminal
val metadata : t -> Xmlac_wire.Protocol.metadata

val trace_granted : t -> bool
(** Whether the terminal granted the offered trace id (always [false]
    when none was offered). *)

val trace_id : t -> string
(** The trace id this session's wire connection offers ([""] when
    untraced). *)

val fetch_stats : t -> string
(** Admin plane: the terminal's telemetry snapshot as JSON (schema
    {!Xmlac_wire.Telemetry.schema}); only served on local transports. *)

val geometry : t -> Xmlac_crypto.Secure_container.t
(** The validated header-only container view. *)

val wire_stats : t -> Xmlac_wire.Stats.t

val source :
  ?verify:bool ->
  ?cache_fragments:int ->
  ?cache_chunks:int ->
  ?pool:Pool.t ->
  ?engine:Xmlac_crypto.Engine.t ->
  t ->
  key:Xmlac_crypto.Des.Triple.key ->
  Channel.counters ->
  Xmlac_skip_index.Decoder.source
(** {!Channel.source_of_terminal} over this remote terminal — the same
    evaluator-facing interface, verification included, as the in-process
    channel. When the terminal advertises batching, the channel's window
    planner coalesces its predicted fetches into [Batch] frames (counted in
    the client's [batched_requests]); payload accounting is unchanged, so
    the local/remote [bytes_to_soe] = [payload_bytes] equality still
    holds. *)

val close : t -> unit
