module Tree = Xmlac_xml.Tree
module Layout = Xmlac_skip_index.Layout
module Encoder = Xmlac_skip_index.Encoder
module Decoder = Xmlac_skip_index.Decoder
module Container = Xmlac_crypto.Secure_container
module Evaluator = Xmlac_core.Evaluator
module Input = Xmlac_core.Input

type config = {
  cost : Cost_model.t;
  scheme : Container.scheme;
  chunk_size : int;
  fragment_size : int;
  key : Xmlac_crypto.Des.Triple.key;
  engine : Xmlac_crypto.Engine.t;
}

let default_config ?(context = Cost_model.Hardware)
    ?(scheme = Container.Ecb_mht) ?(engine = Xmlac_crypto.Engine.default) () =
  {
    cost = Cost_model.of_context context;
    scheme;
    chunk_size = 2048;
    fragment_size = 256;
    key = Xmlac_crypto.Des.Triple.key_of_string "xmlac-demo-24-byte-key!!";
    engine;
  }

type published = {
  layout : Layout.t;
  container : Container.t;
  encoded_bytes : int;
  source_text_bytes : int;
}

let publish config ~layout tree =
  if layout = Layout.Nc then
    invalid_arg "Session.publish: the NC layout cannot be evaluated";
  let encoded = Encoder.encode ~layout tree in
  let container =
    Container.encrypt ~chunk_size:config.chunk_size
      ~fragment_size:config.fragment_size ~scheme:config.scheme ~key:config.key
      encoded
  in
  {
    layout;
    container;
    encoded_bytes = String.length encoded;
    source_text_bytes = Tree.text_bytes tree;
  }

type measurement = {
  strategy : string;
  counters : Channel.counters;
  eval : Evaluator.stats;
  index : Decoder.stats;
  result_bytes : int;
  breakdown : Cost_model.breakdown;
  wall_s : float;
  event_hist : Xmlac_obs.Histogram.t;
  events : Xmlac_xml.Event.t list;
  wire : Xmlac_wire.Stats.t option;
  jobs : int;
  pool_sections : int;
  pool_tasks : int;
  gc_minor_words : float;
  gc_major_words : float;
}

(* Wrap an input so the wall time between handing one event to the
   evaluator and it asking for the next — the per-event evaluation cost,
   channel reads included — lands in [hist]. *)
let timed_input hist (input : Input.t) =
  let handed_at = ref None in
  {
    input with
    Input.next =
      (fun () ->
        (match !handed_at with
        | Some t0 ->
            Xmlac_obs.Histogram.observe hist (Xmlac_obs.Span.now () -. t0)
        | None -> ());
        let e = input.Input.next () in
        handed_at := Some (Xmlac_obs.Span.now ());
        e);
  }

(* Run [f] with the worker pool a job count asks for: none for the
   sequential default, a scoped pool otherwise (its domains are joined
   before the measurement is returned). *)
let with_optional_pool ~jobs f =
  if jobs <= 1 then f None
  else Pool.with_pool ~jobs (fun pool -> f (Some pool))

(* Shared measurement body: run the evaluator over a prepared source and
   collect every observable — identical for local and remote terminals, so
   their measurements are directly comparable. *)
let run_measurement ?query ?options ?provenance ~cost ~strategy ~wire ~counters
    ~jobs ~pool ~source policy =
  let decoder = Decoder.of_source source in
  let event_hist = Xmlac_obs.Histogram.make "wall_event" in
  let gc0 = Gc.quick_stat () in
  let result, wall_s =
    Xmlac_obs.Span.time "session.evaluate" (fun () ->
        Evaluator.run ?query ?options ?provenance ~policy
          (timed_input event_hist (Input.of_decoder decoder)))
  in
  let gc1 = Gc.quick_stat () in
  let result_bytes =
    String.length (Xmlac_xml.Writer.events_to_string result.Evaluator.events)
  in
  let breakdown =
    Cost_model.breakdown cost ~bytes_in:counters.Channel.bytes_to_soe
      ~bytes_decrypted:counters.Channel.bytes_decrypted
      ~bytes_hashed:counters.Channel.bytes_hashed
      ~transitions:result.Evaluator.stats.Evaluator.transitions
      ~events:result.Evaluator.stats.Evaluator.events_in
  in
  {
    strategy;
    counters;
    eval = result.Evaluator.stats;
    index = Decoder.stats decoder;
    result_bytes;
    breakdown;
    wall_s;
    event_hist;
    events = result.Evaluator.events;
    wire;
    jobs;
    pool_sections = (match pool with None -> 0 | Some p -> Pool.sections p);
    pool_tasks = (match pool with None -> 0 | Some p -> Pool.tasks_run p);
    gc_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
    gc_major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
  }

let evaluate ?query ?(verify = true) ?strategy ?options ?provenance ?(jobs = 1)
    config published policy =
  let counters = Channel.fresh_counters () in
  let strategy =
    match strategy with
    | Some s -> s
    | None -> Layout.to_string published.layout
  in
  with_optional_pool ~jobs (fun pool ->
      let source =
        Channel.source ~verify ?pool ~engine:config.engine
          ~container:published.container ~key:config.key counters
      in
      run_measurement ?query ?options ?provenance ~cost:config.cost ~strategy
        ~wire:None ~counters ~jobs ~pool ~source policy)

let evaluate_remote ?query ?(verify = true) ?(strategy = "REMOTE") ?options
    ?provenance ?(jobs = 1) config remote policy =
  let counters = Channel.fresh_counters () in
  let run () =
    with_optional_pool ~jobs (fun pool ->
        let source =
          Remote.source ~verify ?pool ~engine:config.engine remote
            ~key:config.key counters
        in
        run_measurement ?query ?options ?provenance ~cost:config.cost ~strategy
          ~wire:(Some (Remote.wire_stats remote)) ~counters ~jobs ~pool ~source
          policy)
  in
  (* Evaluate inside the connection's trace context so session spans and
     channel phase events land in the same trace as the wire spans. *)
  match Remote.trace_id remote with
  | "" -> run ()
  | trace -> Xmlac_obs.Context.with_trace trace run

let metrics (m : measurement) : Xmlac_obs.Metrics.t =
  let open Xmlac_obs.Metrics in
  [ int "result_bytes" m.result_bytes ]
  @ prefix "eval" (Evaluator.stats_metrics m.eval)
  @ prefix "eval" (Xmlac_obs.Histogram.metrics m.event_hist)
  @ prefix "index" (Decoder.stats_metrics m.index)
  @ prefix "channel" (Channel.metrics m.counters)
  @ prefix "cache" (Channel.cache_metrics m.counters)
  @ prefix "cost" (Cost_model.breakdown_metrics m.breakdown)
  @ (match m.wire with
    | None -> []
    | Some w -> prefix "wire" (Xmlac_wire.Stats.metrics w))
  @ prefix "pool"
      [
        int "jobs" m.jobs;
        int "sections" m.pool_sections;
        int "tasks_run" m.pool_tasks;
      ]
  @ prefix "gc"
      [
        float "minor_words" m.gc_minor_words;
        float "major_words" m.gc_major_words;
      ]
  @ [ float "wall_s" m.wall_s ]

let lwb ?(verify = true) config ~authorized_bytes =
  let chunks = max 1 ((authorized_bytes + config.chunk_size - 1) / config.chunk_size) in
  let digest_overhead =
    if verify then chunks * Container.digest_blob_size_for config.scheme else 0
  in
  let hashed = if verify then authorized_bytes else 0 in
  Cost_model.breakdown config.cost
    ~bytes_in:(authorized_bytes + digest_overhead)
    ~bytes_decrypted:(authorized_bytes + digest_overhead)
    ~bytes_hashed:hashed ~transitions:0 ~events:0

let authorized_encoded_bytes ?query policy tree =
  let view =
    match query with
    | None -> Xmlac_core.Oracle.authorized_view policy tree
    | Some q -> Xmlac_core.Oracle.query_view ~query:q policy tree
  in
  match view with
  | None -> 0
  | Some v -> String.length (Encoder.encode ~layout:Layout.Tcsbr v)
