(** End-to-end client sessions: publish (encode + encrypt) a document, then
    evaluate an access-control policy (and optional query) inside the
    simulated SOE, producing both the authorized output and the simulated
    cost figures the paper's Section 7 charts.

    Strategies measured by the paper:
    - {e BF} (brute force): no index — the whole document enters the SOE
      ({!publish} with the TC layout; nothing can be skipped);
    - {e TCSBR}: the Skip index ({!publish} with the TCSBR layout);
    - {e LWB}: the unreachable oracle bound — transfer and decrypt only the
      authorized bytes ({!lwb}). *)

type config = {
  cost : Cost_model.t;
  scheme : Xmlac_crypto.Secure_container.scheme;
  chunk_size : int;
  fragment_size : int;
  key : Xmlac_crypto.Des.Triple.key;
  engine : Xmlac_crypto.Engine.t;
      (** crypto kernels the session's channel runs on; [Reference] unless
          opted into [Fast] (bitsliced DES + batched Merkle). Engines are
          byte-for-byte interchangeable — output, counters and cost figures
          are identical; only wall-clock changes. *)
}

val default_config :
  ?context:Cost_model.context ->
  ?scheme:Xmlac_crypto.Secure_container.scheme ->
  ?engine:Xmlac_crypto.Engine.t ->
  unit ->
  config
(** Hardware smart-card context, ECB-MHT integrity, 2 KB chunks, 256 B
    fragments, a fixed demo key, reference engine. *)

type published = {
  layout : Xmlac_skip_index.Layout.t;
  container : Xmlac_crypto.Secure_container.t;
  encoded_bytes : int;  (** skip-index encoding size (before encryption) *)
  source_text_bytes : int;
}

val publish :
  config -> layout:Xmlac_skip_index.Layout.t -> Xmlac_xml.Tree.t -> published
(** @raise Invalid_argument for the NC layout (it has no binary body). *)

type measurement = {
  strategy : string;
  counters : Channel.counters;
  eval : Xmlac_core.Evaluator.stats;
  index : Xmlac_skip_index.Decoder.stats;  (** skip/readback tallies *)
  result_bytes : int;  (** serialized size of the authorized output *)
  breakdown : Cost_model.breakdown;
  wall_s : float;  (** wall-clock time of the evaluator run *)
  event_hist : Xmlac_obs.Histogram.t;
      (** per-event evaluation latency (channel reads included); its
          [wall_event_*] metrics are exempt from perf gating *)
  events : Xmlac_xml.Event.t list;
  wire : Xmlac_wire.Stats.t option;
      (** wire-protocol counters when the terminal was remote; [None] for
          the in-process channel *)
  jobs : int;  (** requested job count (1 = sequential, no pool) *)
  pool_sections : int;  (** pipeline windows whose compute phase ran pooled *)
  pool_tasks : int;  (** compute tasks executed across those windows *)
  gc_minor_words : float;
      (** coordinator-domain [Gc.quick_stat] deltas across the run —
          allocation volume, for spotting copy churn; machine/runtime
          dependent, so exempt from perf gating like the [wall*] family *)
  gc_major_words : float;
}

val metrics : measurement -> Xmlac_obs.Metrics.t
(** Everything observable about one evaluation, namespaced: [result_bytes],
    [eval.*] (evaluator stats), [index.*] (skip-index decoder stats),
    [channel.*] (SOE channel counters), [cache.*] (SOE cache hit/miss/
    eviction counters), [cost.*] (modeled seconds), [pool.*] (worker-pool
    activity), [gc.*] (allocation deltas) and [wall_s] (wall-clock).
    [wall*], [gc.*] and [pool.*] are exempt from perf gating — the first
    two are machine-dependent, the last is a run-time choice; [cache.*]
    depends only on the access sequence and is gated normally. *)

val evaluate :
  ?query:Xmlac_xpath.Ast.t ->
  ?verify:bool ->
  ?strategy:string ->
  ?options:Xmlac_core.Evaluator.options ->
  ?provenance:Xmlac_core.Provenance.collector ->
  ?jobs:int ->
  config ->
  published ->
  Xmlac_core.Policy.t ->
  measurement
(** Run the streaming evaluator over the encrypted container through the
    SOE channel. [verify] (default true) enables integrity checking;
    [options] exposes the evaluator's ablation switches; [provenance]
    threads a {!Xmlac_core.Provenance.collector} through to the evaluator.
    [jobs] (default 1) spreads the channel's decrypt+verify compute phase
    over that many domains; delivered bytes and every non-[wall*],
    non-[gc.*], non-[pool.*] metric are identical at any job count.
    @raise Xmlac_crypto.Secure_container.Integrity_failure on tampering. *)

val evaluate_remote :
  ?query:Xmlac_xpath.Ast.t ->
  ?verify:bool ->
  ?strategy:string ->
  ?options:Xmlac_core.Evaluator.options ->
  ?provenance:Xmlac_core.Provenance.collector ->
  ?jobs:int ->
  config ->
  Remote.t ->
  Xmlac_core.Policy.t ->
  measurement
(** Like {!evaluate}, but over a {!Remote} terminal session: the container
    geometry comes from the (validated) wire handshake, every fetch crosses
    the wire, and the measurement carries the connection's
    {!Xmlac_wire.Stats.t} (reported under [wire.*] by {!metrics}).
    [strategy] defaults to ["REMOTE"].
    @raise Xmlac_wire.Error.Wire on unrecoverable transport/protocol faults
    (transient ones are retried inside the client).
    @raise Xmlac_crypto.Secure_container.Integrity_failure on tampering —
    never retried: a mismatching digest is an attack, not weather. *)

val lwb :
  ?verify:bool -> config -> authorized_bytes:int -> Cost_model.breakdown
(** The oracle lower bound: the time to transfer and decrypt only
    [authorized_bytes] (plus, with [verify], the minimal integrity
    overhead for the chunks those bytes span). *)

val authorized_encoded_bytes :
  ?query:Xmlac_xpath.Ast.t -> Xmlac_core.Policy.t -> Xmlac_xml.Tree.t -> int
(** Size of the TCSBR encoding of the authorized view — what the LWB oracle
    would have to read. 0 when the view is empty. *)
