type config = {
  attempts : int;
  backoff_s : float;
  backoff_cap_s : float;
  retry_seed : int;
  max_payload : int;
  container : string;
  protocol_version : int;
  trace : string;
}

let default_config =
  {
    attempts = 3;
    backoff_s = 0.05;
    backoff_cap_s = 1.0;
    retry_seed = 0;
    max_payload = Frame.max_payload_default;
    container = "";
    protocol_version = Protocol.version;
    trace = "";
  }

(* {2 Retry backoff}

   Decorrelated jitter: each delay is drawn uniformly from
   [base, 3 * previous], clamped to [backoff_cap_s] per sleep, and the
   {e cumulative} sleep across one retry sequence is capped by
   [backoff_cap_s] too — a client can stall at most that long before its
   final attempt. The jitter stream is a deterministic splitmix64 PRNG
   seeded from [retry_seed], so a fleet of clients seeded differently
   de-synchronizes (no thundering herd of aligned retries) while any one
   client's schedule is exactly reproducible. *)

let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform in [0, 1) from the top 53 bits *)
let uniform state =
  let bits = Int64.shift_right_logical (splitmix64 state) 11 in
  Int64.to_float bits /. 9007199254740992. (* 2^53 *)

type backoff = {
  prng : int64 ref;
  mutable prev : float;
  mutable budget : float;
  base : float;
  cap : float;
}

let backoff_start config =
  {
    prng = ref (Int64.of_int config.retry_seed);
    prev = config.backoff_s;
    budget = config.backoff_cap_s;
    base = config.backoff_s;
    cap = config.backoff_cap_s;
  }

let backoff_next b =
  if b.base <= 0. || b.budget <= 0. then 0.
  else begin
    let raw = b.base +. (uniform b.prng *. ((b.prev *. 3.) -. b.base)) in
    let raw = Float.max b.base (Float.min raw b.cap) in
    b.prev <- raw;
    let d = Float.min raw b.budget in
    b.budget <- b.budget -. d;
    d
  end

(* The exact sleeps [retrying] would perform, attempt by attempt — pure,
   for tests that pin the schedule and for capacity planning. *)
let backoff_schedule config =
  let b = backoff_start config in
  List.init (max 0 (config.attempts - 1)) (fun _ -> backoff_next b)

type t = {
  config : config;
  connector : unit -> Transport.t;
  mutable transport : Transport.t option;
  mutable meta : Protocol.metadata option;
  mutable trace_sent : string;
      (* the trace id the current connection's hello actually carried:
         "" once the trace-strip downgrade fires, so reconnects do not
         re-offer an extension the terminal already rejected *)
  stats : Stats.t;
}

let stats t = t.stats

let response_kind : Protocol.response -> string = function
  | Hello_ok _ -> "hello"
  | Fragment _ -> "fragment"
  | Chunk _ -> "chunk"
  | Digest _ -> "digest"
  | Hash_state _ -> "hash state"
  | Siblings _ -> "siblings"
  | Batched _ -> "batch"
  | Stats_reply _ -> "stats"
  | Sync_delta _ -> "sync delta"
  | Sync_uptodate -> "sync up-to-date"
  | Bye_ok -> "bye"
  | Err _ -> "error"

let roundtrip t transport req =
  let framed = Frame.encode (Protocol.encode_request req) in
  Transport.write transport framed;
  t.stats.requests <- t.stats.requests + 1;
  t.stats.bytes_sent <- t.stats.bytes_sent + String.length framed;
  let payload = Frame.read ~max_payload:t.config.max_payload transport in
  t.stats.bytes_received <-
    t.stats.bytes_received + Frame.header_bytes + String.length payload;
  let resp = Protocol.decode_response payload in
  t.stats.replies <- t.stats.replies + 1;
  resp

let hello ~version ~container ~trace =
  Protocol.Hello
    {
      version;
      container;
      mux = false;
      trace = (if version >= 2 then trace else "");
    }

(* Version negotiation: offer our configured version; a terminal that
   rejects it gets one v1.1 short-form hello before we give up — the
   graceful downgrade path against pre-fleet terminals. Rejection arrives
   in two shapes: a v1.2-era terminal answers a too-new version with
   [err_unsupported], but a genuine v1.1 decoder cannot even parse the v2
   hello's trailing flags/container bytes and answers [err_bad_request]
   ("trailing bytes"), so both codes downgrade. The ladder has one extra
   rung when the hello carried a trace id: a pre-telemetry v1.2 terminal
   rejects the unknown trace flag bit with [err_bad_request] even though
   it speaks our version fine, so the first retry re-offers the {e same}
   version with the trace extension stripped, and only then does the
   version drop. The v1 downgrade cannot name a container (v1 hellos
   have no room for one), so a client pinned to a specific container
   refuses instead. *)
let handshake t transport =
  let refuse code message =
    raise
      (Error.Wire
         (Error.Handshake
            (Printf.sprintf "terminal refused handshake (%d): %s" code message)))
  in
  let exchange ~trace version =
    roundtrip t transport (hello ~version ~container:t.config.container ~trace)
  in
  let rec go ~trace version =
    match exchange ~trace version with
    | Protocol.Hello_ok meta ->
        t.trace_sent <- (if version >= 2 then trace else "");
        meta
    | Protocol.Err { code; message } when code = Protocol.err_busy ->
        raise (Error.Wire (Error.Busy message))
    | Protocol.Err { code; _ }
      when (code = Protocol.err_unsupported || code = Protocol.err_bad_request)
           && trace <> "" && version >= 2 ->
        (* trace-strip rung: same version, no trace extension *)
        go ~trace:"" version
    | Protocol.Err { code; message }
      when (code = Protocol.err_unsupported || code = Protocol.err_bad_request)
           && version > 1 ->
        if t.config.container <> "" then
          refuse code
            (message ^ " (and a v1 downgrade cannot name a container)")
        else go ~trace:"" 1
    | Protocol.Err { code; message } -> refuse code message
    | resp -> Error.protocolf "expected hello reply, got %s" (response_kind resp)
  in
  go ~trace:t.trace_sent t.config.protocol_version

let drop t =
  (match t.transport with Some tr -> Transport.close tr | None -> ());
  t.transport <- None

let ensure t =
  match t.transport with
  | Some tr -> tr
  | None -> (
      let tr = t.connector () in
      match handshake t tr with
      | meta ->
          (match t.meta with
          | None -> t.meta <- Some meta
          | Some m0 when m0 = meta -> ()
          | Some _ ->
              Transport.close tr;
              raise
                (Error.Wire
                   (Error.Handshake "terminal metadata changed across reconnect")));
          t.transport <- Some tr;
          tr
      | exception e ->
          Transport.close tr;
          raise e)

(* Bounded retry with reconnect and decorrelated-jitter backoff (fresh
   schedule per operation — see {!backoff_next}). Sound because
   every request is an idempotent read of immutable published data: a retry
   can repeat work, never change state. The reply is decoded {e inside}
   this region, so a stale or duplicated frame (a desynchronized stream)
   retries on a fresh connection rather than poisoning the session. *)
let retrying t f =
  let backoff = backoff_start t.config in
  let rec go n =
    match f () with
    | v -> v
    | exception (Error.Wire e as exn) ->
        t.stats.wire_errors <- t.stats.wire_errors + 1;
        if Error.retryable e && n < t.config.attempts then begin
          t.stats.retries <- t.stats.retries + 1;
          drop t;
          t.stats.reconnects <- t.stats.reconnects + 1;
          let d = backoff_next backoff in
          if d > 0. then Unix.sleepf d;
          go (n + 1)
        end
        else raise exn
  in
  go 1

let connect ?(config = default_config) connector =
  let t =
    {
      config;
      connector;
      transport = None;
      meta = None;
      trace_sent = config.trace;
      stats = Stats.make ();
    }
  in
  retrying t (fun () -> ignore (ensure t : Transport.t));
  t

let metadata t =
  match t.meta with
  | Some m -> m
  | None -> assert false (* connect performed the handshake *)

let trace_granted t =
  match t.meta with Some m -> m.Protocol.trace | None -> false

let trace t = t.trace_sent

(* One round trip inside a "wire.request" span when this connection
   negotiated trace linkage and a sink is on. The span is open {e across}
   the write, so a traced mux transport underneath reads it from the
   ambient context and stamps its id on the frame — that id is what the
   server's [server.request] span names as parent. *)
let traced_roundtrip t tr req =
  if t.trace_sent = "" || not (Xmlac_obs.Trace.enabled ()) then
    roundtrip t tr req
  else
    Xmlac_obs.Context.with_trace t.trace_sent @@ fun () ->
    let s = Xmlac_obs.Span.start "wire.request" in
    Fun.protect
      ~finally:(fun () -> ignore (Xmlac_obs.Span.finish s : float))
      (fun () -> roundtrip t tr req)

let call t req expect =
  retrying t @@ fun () ->
  let tr = ensure t in
  let t0 = Xmlac_obs.Span.now () in
  let resp = traced_roundtrip t tr req in
  Xmlac_obs.Histogram.observe t.stats.rtt_hist (Xmlac_obs.Span.now () -. t0);
  match resp with
  | Protocol.Err { code; message } when code = Protocol.err_busy ->
      raise (Error.Wire (Error.Busy message))
  | Protocol.Err { code; message } ->
      raise (Error.Wire (Error.Server { code; message }))
  | resp -> expect resp

(* Payload accounting mirrors the in-process channel's [bytes_to_soe]:
   actual ciphertext/digest lengths, the constant padded hash-state size,
   20 bytes per sibling digest. Charged only on success, once per
   delivered answer — retries re-charge nothing. *)

let fetch_fragment t ~chunk ~fragment ~lo ~hi =
  let cipher =
    call t
      (Protocol.Get_fragment { chunk; fragment; lo; hi })
      (function
        | Protocol.Fragment c -> c
        | r -> Error.protocolf "expected fragment reply, got %s" (response_kind r))
  in
  t.stats.payload_bytes <- t.stats.payload_bytes + String.length cipher;
  cipher

let fetch_chunk t ~chunk =
  let cipher =
    call t
      (Protocol.Get_chunk { chunk })
      (function
        | Protocol.Chunk c -> c
        | r -> Error.protocolf "expected chunk reply, got %s" (response_kind r))
  in
  t.stats.payload_bytes <- t.stats.payload_bytes + String.length cipher;
  cipher

let fetch_digest t ~chunk =
  let blob =
    call t
      (Protocol.Get_digest { chunk })
      (function
        | Protocol.Digest b -> b
        | r -> Error.protocolf "expected digest reply, got %s" (response_kind r))
  in
  t.stats.payload_bytes <- t.stats.payload_bytes + String.length blob;
  blob

let fetch_hash_state t ~chunk ~fragment ~upto =
  let state =
    call t
      (Protocol.Get_hash_state { chunk; fragment; upto })
      (function
        | Protocol.Hash_state s -> s
        | r ->
            Error.protocolf "expected hash state reply, got %s" (response_kind r))
  in
  t.stats.payload_bytes <- t.stats.payload_bytes + Protocol.hash_state_wire_bytes;
  state

let fetch_siblings t ~chunk ~fragment =
  let digests =
    call t
      (Protocol.Get_siblings { chunk; fragment })
      (function
        | Protocol.Siblings ds -> ds
        | r ->
            Error.protocolf "expected siblings reply, got %s" (response_kind r))
  in
  t.stats.payload_bytes <-
    t.stats.payload_bytes + (20 * List.length digests);
  digests

(* A batch round trip charges exactly what the equivalent sequence of
   individual fetches would have charged: per-item payload accounting with
   the same rules as above. Validation (count, per-item kind) happens
   before any charge is final for the session — a structural mismatch
   aborts without retry, like any non-retryable protocol violation. *)
let fetch_batch t reqs =
  if reqs = [] then []
  else begin
    let subs =
      call t (Protocol.Batch reqs) (function
        | Protocol.Batched rs -> rs
        | r -> Error.protocolf "expected batch reply, got %s" (response_kind r))
    in
    if List.length subs <> List.length reqs then
      Error.protocolf "batch reply has %d items, expected %d"
        (List.length subs) (List.length reqs);
    t.stats.batched_requests <- t.stats.batched_requests + 1;
    List.iter2
      (fun req resp ->
        match ((req : Protocol.request), (resp : Protocol.response)) with
        | _, Protocol.Err { code; message } ->
            raise (Error.Wire (Error.Server { code; message }))
        | Protocol.Get_fragment _, Protocol.Fragment c ->
            t.stats.payload_bytes <- t.stats.payload_bytes + String.length c
        | Protocol.Get_chunk _, Protocol.Chunk c ->
            t.stats.payload_bytes <- t.stats.payload_bytes + String.length c
        | Protocol.Get_digest _, Protocol.Digest b ->
            t.stats.payload_bytes <- t.stats.payload_bytes + String.length b
        | Protocol.Get_hash_state _, Protocol.Hash_state _ ->
            t.stats.payload_bytes <-
              t.stats.payload_bytes + Protocol.hash_state_wire_bytes
        | Protocol.Get_siblings _, Protocol.Siblings ds ->
            t.stats.payload_bytes <-
              t.stats.payload_bytes + (20 * List.length ds)
        | _, r ->
            Error.protocolf "batch item kind mismatch: got %s" (response_kind r))
      reqs subs;
    subs
  end

(* Dissemination plane: one Sync round trip. The encoded delta is opaque
   here — decoding and applying it is [Xmlac_dissem.Delta]'s job (via
   [Mirror]), keeping the client free of any container dependency beyond
   what the data plane already has. *)
let sync t ~have_gen =
  let r =
    call t
      (Protocol.Sync { have_gen })
      (function
        | Protocol.Sync_delta d -> `Delta d
        | Protocol.Sync_uptodate -> `Uptodate
        | r -> Error.protocolf "expected sync reply, got %s" (response_kind r))
  in
  t.stats.syncs <- t.stats.syncs + 1;
  (match r with
  | `Delta d ->
      t.stats.sync_delta_bytes <- t.stats.sync_delta_bytes + String.length d
  | `Uptodate -> ());
  r

(* Admin plane: ask the terminal for its telemetry snapshot. The terminal
   answers only on local transports; elsewhere this surfaces the server's
   [err_unsupported] as a typed [Server] error. *)
let fetch_stats t =
  call t Protocol.Get_stats (function
    | Protocol.Stats_reply json -> json
    | r -> Error.protocolf "expected stats reply, got %s" (response_kind r))

let close t =
  (match t.transport with
  | Some tr -> (
      try ignore (roundtrip t tr Protocol.Bye : Protocol.response)
      with _ -> ())
  | None -> ());
  drop t
