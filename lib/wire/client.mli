(** The SOE side of a terminal connection.

    The client treats the terminal as an adversary: every reply is decoded
    and length-checked before use, transient faults (broken frames,
    undecodable replies, dead or stalled connections) get a bounded
    retry-with-reconnect — sound because every request is an idempotent
    read of immutable published data — and anything that survives retries
    surfaces as a typed {!Error.Wire}. Cryptographic verification of the
    delivered bytes is {e not} done here: that is the channel's job, and
    its failures ([Integrity_failure]) are terminal — never retried, since
    a mismatching digest is an attack (or corruption), not weather. *)

type config = {
  attempts : int;  (** total tries per request (default 3) *)
  backoff_s : float;
      (** base delay of the decorrelated-jitter backoff between retries
          (default 0.05 s; 0 disables sleeping, for tests) *)
  backoff_cap_s : float;
      (** ceiling on each individual delay {e and} on the cumulative sleep
          of one retry sequence (default 1 s) — bounds how long a request
          can stall before its final attempt *)
  retry_seed : int;
      (** seed of the deterministic jitter stream; seed each client of a
          fleet differently so their retries de-synchronize *)
  max_payload : int;  (** largest acceptable reply frame *)
  container : string;
      (** container id the handshake binds to ([""] = terminal default;
          requires a v2-capable terminal when non-empty) *)
  protocol_version : int;
      (** hello version offered (default {!Protocol.version}; set 1 to
          speak pure XWTP v1.1) *)
  trace : string;
      (** trace id offered in the hello ([""], the default, disables
          tracing; at most {!Protocol.max_trace_id} bytes). When granted,
          each request runs in a ["wire.request"] span tied to this trace
          (emitted only while a {!Xmlac_obs.Trace} sink is installed). A
          pre-telemetry terminal that rejects the trace extension costs
          one extra handshake round trip (the trace-strip rung of the
          downgrade ladder) and the session proceeds untraced. *)
}

val default_config : config

val backoff_schedule : config -> float list
(** The exact sleeps (in seconds) a retry sequence under [config] performs
    between attempts, in order — pure and deterministic in [retry_seed].
    Each element lies in [[backoff_s, backoff_cap_s]], except that the
    last non-zero sleep may be truncated below [backoff_s] to whatever
    remains of the cumulative budget, and every element after the budget
    is spent is 0; the sum never exceeds [backoff_cap_s]. *)

type t

val connect : ?config:config -> (unit -> Transport.t) -> t
(** Connect and perform the version handshake (retried like any request).
    A terminal that rejects a v2 hello — with [err_unsupported] (a version
    it knows it cannot speak) or [err_bad_request] (a genuine v1.1 decoder
    choking on the v2 hello's trailing bytes) — is given one v1.1
    short-form hello before the client gives up — the graceful downgrade
    path (unavailable when [config.container] is set, since a v1 hello
    cannot name a container). A busy rejection surfaces as the retryable
    {!Error.Busy}. The connector is kept for transparent reconnects; on
    reconnect the terminal must advertise byte-identical metadata or the
    client refuses with a [Handshake] error. *)

val metadata : t -> Protocol.metadata

val trace_granted : t -> bool
(** Whether the negotiated connection carries trace linkage — [false]
    when no trace id was configured, or the terminal stripped it on the
    downgrade ladder. *)

val trace : t -> string
(** The trace id this connection actually offers in its hellos — the
    configured one, or [""] after the trace-strip rung fired. *)

val stats : t -> Stats.t

val response_kind : Protocol.response -> string
(** Human-readable response-kind label, for error messages of callers
    that pattern-match replies themselves (e.g. batch consumers). *)

val fetch_stats : t -> string
(** Admin plane: the terminal's telemetry snapshot as a JSON document
    (schema {!Telemetry.schema}). Served only on local transports — a
    remote terminal answers with [err_unsupported], surfacing here as a
    [Server] error. *)

val fetch_fragment :
  t -> chunk:int -> fragment:int -> lo:int -> hi:int -> string
(** Ciphertext bytes [\[lo, hi)] of a fragment, as served — the caller
    validates the length against what it asked for. *)

val fetch_chunk : t -> chunk:int -> string
val fetch_digest : t -> chunk:int -> string

val fetch_hash_state : t -> chunk:int -> fragment:int -> upto:int -> string
(** Serialized SHA-1 state of the fragment prefix; charged to
    [payload_bytes] at the constant padded wire size. *)

val fetch_siblings : t -> chunk:int -> fragment:int -> string list
(** Merkle sibling digests in {!Xmlac_crypto.Merkle.sibling_cover} order. *)

val sync : t -> have_gen:int -> [ `Delta of string | `Uptodate ]
(** Dissemination plane (XWTP v1.3): ask the terminal for what changed
    since generation [have_gen] of the bound container. [`Delta d] is an
    encoded chunk delta — opaque here; decode and apply it with
    [Xmlac_dissem.Delta] (or use [Mirror], which drives the whole sync
    loop). A terminal that cannot bridge the gap (republished-from-scratch
    lineage, or a pre-v1.3 terminal rejecting the opcode) surfaces as a
    [Server] error; the caller falls back to a full fetch. Counted in
    {!Stats.t.syncs} / {!Stats.t.sync_delta_bytes}. *)

val fetch_batch : t -> Protocol.request list -> Protocol.response list
(** Send several data requests as one [Batch] frame and return the replies
    in request order. Per-item payload accounting matches the equivalent
    individual fetches exactly; [batched_requests] counts the frame. A
    per-item [Err] raises a [Server] error, a count or kind mismatch a
    [Protocol] error. The caller must check {!Protocol.metadata.batching}
    first and keep batches within {!Protocol.max_batch}. *)

val close : t -> unit
(** Best-effort [Bye], then drop the connection. Idempotent. *)
