type t =
  | Frame of string
  | Protocol of string
  | Transport of string
  | Handshake of string
  | Busy of string
  | Server of { code : int; message : string }

exception Wire of t

let to_string = function
  | Frame msg -> "wire frame: " ^ msg
  | Protocol msg -> "wire protocol: " ^ msg
  | Transport msg -> "wire transport: " ^ msg
  | Handshake msg -> "wire handshake: " ^ msg
  | Busy msg -> "terminal busy: " ^ msg
  | Server { code; message } ->
      Printf.sprintf "terminal error %d: %s" code message

(* Frame/protocol/transport faults are transient as far as the client can
   tell (a flaky terminal, a dropped connection): reconnecting and
   re-asking is safe because every request is an idempotent read. [Busy]
   is an explicit admission-control rejection — transient by definition,
   so it retries (with backoff) too. A handshake refusal or any other
   explicit terminal error is a decision, not a fault — retrying would
   just repeat it. *)
let retryable = function
  | Frame _ | Protocol _ | Transport _ | Busy _ -> true
  | Handshake _ | Server _ -> false

let framef fmt = Printf.ksprintf (fun m -> raise (Wire (Frame m))) fmt
let protocolf fmt = Printf.ksprintf (fun m -> raise (Wire (Protocol m))) fmt
let transportf fmt = Printf.ksprintf (fun m -> raise (Wire (Transport m))) fmt

let () =
  Printexc.register_printer (function
    | Wire e -> Some ("Xmlac_wire.Error.Wire: " ^ to_string e)
    | _ -> None)
