(** The typed error channel of the wire subsystem.

    Everything hostile or broken between the SOE and the terminal — a
    malformed frame, an undecodable message, a dead socket, a lying
    handshake, an explicit terminal refusal — surfaces as [Wire], never as
    an untyped exception. Cryptographic mismatches are {e not} wire errors:
    they stay {!Xmlac_crypto.Secure_container.Integrity_failure}, raised by
    the SOE after it has verified the bytes it was served. *)

type t =
  | Frame of string  (** framing layer: truncated/oversized/empty frames *)
  | Protocol of string  (** a frame arrived but its payload is undecodable *)
  | Transport of string  (** socket/loopback failure, timeout, peer close *)
  | Handshake of string
      (** the terminal's advertised metadata is unacceptable (bad version,
          implausible geometry, scheme mismatch) *)
  | Busy of string
      (** the terminal rejected admission (session cap reached) — a typed,
          retryable backpressure signal, never a protocol fault *)
  | Server of { code : int; message : string }
      (** an explicit [Err] reply from the terminal *)

exception Wire of t

val to_string : t -> string

val retryable : t -> bool
(** Whether a bounded retry (with reconnect) is sound: true for
    frame/protocol/transport faults — every request is an idempotent read —
    and for [Busy] admission rejections, which are transient by definition;
    false for handshake refusals and server errors, which are decisions,
    not faults. *)

val framef : ('a, unit, string, 'b) format4 -> 'a
(** Raise [Wire (Frame _)] with a formatted message. *)

val protocolf : ('a, unit, string, 'b) format4 -> 'a
val transportf : ('a, unit, string, 'b) format4 -> 'a
