type kind = Truncate | Corrupt | Stale | Stall | Duplicate

let all_kinds = [ Truncate; Corrupt; Stale; Stall; Duplicate ]

let kind_to_string = function
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"
  | Stale -> "stale"
  | Stall -> "stall"
  | Duplicate -> "duplicate"

type plan = { probability : float; kinds : kind list }

let default_plan = { probability = 0.3; kinds = all_kinds }

(* The wrapper intercepts whole reply frames on the read side (requests pass
   through untouched: the adversary is the terminal, not the SOE). Each
   frame read from the inner transport is delivered intact or sabotaged
   according to [plan], using the caller's deterministic [rng n] (uniform in
   [0, n)) so every harness failure replays. *)
let wrap ~rng ?(plan = default_plan) inner =
  let injected = ref 0 in
  let pending = ref "" in
  let pos = ref 0 in
  let closed = ref false in
  let last_frame = ref None in
  let push s =
    pending := String.sub !pending !pos (String.length !pending - !pos) ^ s;
    pos := 0
  in
  let decide () =
    if plan.kinds <> [] && rng 1000 < int_of_float (plan.probability *. 1000.)
    then Some (List.nth plan.kinds (rng (List.length plan.kinds)))
    else None
  in
  let refill () =
    let payload = Frame.read inner in
    let frame = Frame.encode payload in
    match decide () with
    | None ->
        push frame;
        last_frame := Some frame
    | Some fault -> (
        incr injected;
        match fault with
        | Truncate ->
            (* deliver a proper prefix, then act as a dead connection *)
            push (String.sub frame 0 (1 + rng (String.length frame - 1)));
            closed := true
        | Corrupt ->
            (* flip one payload byte; the length header is left alone so the
               damage lands in the message, not in the framing arithmetic *)
            let b = Bytes.of_string frame in
            let i =
              Frame.header_bytes
              + rng (Bytes.length b - Frame.header_bytes)
            in
            Bytes.set b i
              (Char.chr (Char.code (Bytes.get b i) lxor (1 + rng 255)));
            push (Bytes.unsafe_to_string b)
        | Stale -> (
            (* replay an earlier reply instead of the fresh one *)
            match !last_frame with
            | Some old ->
                push old;
                last_frame := Some frame
            | None ->
                push frame;
                last_frame := Some frame)
        | Stall ->
            (* the reply never arrives; surface what a receive timeout
               would *)
            Error.transportf "%s: injected stall" (Transport.peer inner)
        | Duplicate ->
            push (frame ^ frame);
            last_frame := Some frame)
  in
  let read buf off len =
    if !closed && !pos >= String.length !pending then 0
    else begin
      if !pos >= String.length !pending then refill ();
      let avail = String.length !pending - !pos in
      let n = min len avail in
      Bytes.blit_string !pending !pos buf off n;
      pos := !pos + n;
      n
    end
  in
  let t =
    Transport.make ~local:(Transport.local inner) ~read
      ~write:(fun s -> if not !closed then Transport.write inner s)
      ~close:(fun () -> Transport.close inner)
      ~peer:(Transport.peer inner ^ "+faults")
      ()
  in
  (t, fun () -> !injected)
