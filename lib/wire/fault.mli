(** The adversarial terminal: a transport wrapper that sabotages reply
    frames. Used by the fuzz harness and the tamper-matrix tests to check
    the client's contract — every injected fault ends in a successful
    (bounded, logged) retry or a typed error; never an uncaught exception,
    never silently wrong verified output. *)

type kind =
  | Truncate  (** deliver a prefix of the frame, then act as a dead peer *)
  | Corrupt  (** flip one byte of the message (framing left intact) *)
  | Stale  (** replay an earlier reply instead of the fresh one *)
  | Stall  (** the reply never arrives (surfaces as a receive timeout) *)
  | Duplicate  (** deliver the frame twice, desynchronizing the stream *)

val all_kinds : kind list
val kind_to_string : kind -> string

type plan = { probability : float; kinds : kind list }

val default_plan : plan
(** Probability 0.3, all kinds. *)

val wrap :
  rng:(int -> int) -> ?plan:plan -> Transport.t -> Transport.t * (unit -> int)
(** [wrap ~rng inner] is the sabotaged transport plus a count of faults
    injected so far. [rng n] must return a uniform value in [\[0, n)] —
    deterministic (seeded) in the harness so failures replay. *)
