let header_bytes = 4
let max_payload_default = 1 lsl 20
let max_request_payload = 4096

let encode payload =
  let n = String.length payload in
  if n = 0 then invalid_arg "Frame.encode: empty payload";
  if n > 0xFFFFFFFF then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

let read_exactly t buf len ~what =
  let got = ref 0 in
  while !got < len do
    let n = Transport.read t buf !got (len - !got) in
    if n <= 0 then
      Error.framef "%s: connection closed mid-frame (%d/%d bytes of %s)"
        (Transport.peer t) !got len what;
    got := !got + n
  done

let read ?(max_payload = max_payload_default) t =
  let header = Bytes.create header_bytes in
  (* End-of-stream on the first header byte is a clean close (transport
     level); anywhere later the frame itself is truncated. *)
  let first = Transport.read t header 0 header_bytes in
  if first <= 0 then
    Error.transportf "%s: connection closed" (Transport.peer t);
  let got = ref first in
  while !got < header_bytes do
    let n = Transport.read t header !got (header_bytes - !got) in
    if n <= 0 then
      Error.framef "%s: connection closed mid-frame (%d/%d bytes of header)"
        (Transport.peer t) !got header_bytes;
    got := !got + n
  done;
  let len = Int32.to_int (Bytes.get_int32_be header 0) land 0xFFFFFFFF in
  if len = 0 then Error.framef "%s: empty frame" (Transport.peer t);
  if len > max_payload then
    Error.framef "%s: frame of %d bytes exceeds limit %d" (Transport.peer t)
      len max_payload;
  let payload = Bytes.create len in
  read_exactly t payload len ~what:"payload";
  Bytes.unsafe_to_string payload

let write t payload = Transport.write t (encode payload)

(* {2 Multiplexed framing (XWTP v1.2)}

   After a hello exchange grants mux, both sides switch to frames whose
   payload is prefixed with a big-endian u32 session id:
   [u32 (4 + |payload|)][u32 sid][payload]. When the connection's probe
   hello also negotiated trace propagation, a big-endian u64 span id
   follows the session id: [u32 len][u32 sid][u64 span][payload], span 0
   meaning "no span". The traced shape is a property of the whole
   connection — both sides agreed to it at the probe hello — so there is
   no per-frame flag to parse from hostile input. A mux frame is an
   ordinary frame to the length-prefix layer, so the same
   truncation/oversize defenses apply. *)

let mux_overhead = 4
let span_overhead = 8

let encode_mux ~sid ?span payload =
  let n = String.length payload in
  if n = 0 then invalid_arg "Frame.encode_mux: empty payload";
  if sid < 0 || sid > 0xFFFFFFFF then
    invalid_arg "Frame.encode_mux: session id out of range";
  if n > 0xFFFFFFFF - mux_overhead - span_overhead then
    invalid_arg "Frame.encode_mux: payload too large";
  match span with
  | None ->
      let b = Bytes.create (header_bytes + mux_overhead + n) in
      Bytes.set_int32_be b 0 (Int32.of_int (mux_overhead + n));
      Bytes.set_int32_be b header_bytes (Int32.of_int sid);
      Bytes.blit_string payload 0 b (header_bytes + mux_overhead) n;
      Bytes.unsafe_to_string b
  | Some span ->
      if span < 0 then invalid_arg "Frame.encode_mux: span id out of range";
      let b = Bytes.create (header_bytes + mux_overhead + span_overhead + n) in
      Bytes.set_int32_be b 0
        (Int32.of_int (mux_overhead + span_overhead + n));
      Bytes.set_int32_be b header_bytes (Int32.of_int sid);
      Bytes.set_int64_be b (header_bytes + mux_overhead) (Int64.of_int span);
      Bytes.blit_string payload 0 b
        (header_bytes + mux_overhead + span_overhead)
        n;
      Bytes.unsafe_to_string b

let demux ?(traced = false) ~peer raw =
  let prefix = if traced then mux_overhead + span_overhead else mux_overhead in
  if String.length raw <= prefix then
    Error.framef "%s: mux frame of %d bytes lacks a session id and payload"
      peer (String.length raw);
  let sid = Int32.to_int (String.get_int32_be raw 0) land 0xFFFFFFFF in
  let span =
    if not traced then 0
    else
      let v = String.get_int64_be raw mux_overhead in
      if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0
      then Error.framef "%s: mux span id out of range" peer;
      Int64.to_int v
  in
  (sid, span, String.sub raw prefix (String.length raw - prefix))

let read_mux ?(max_payload = max_payload_default) ?(traced = false) t =
  let prefix = if traced then mux_overhead + span_overhead else mux_overhead in
  let raw = read ~max_payload:(max_payload + prefix) t in
  demux ~traced ~peer:(Transport.peer t) raw

let write_mux t ~sid ?span payload =
  Transport.write t (encode_mux ~sid ?span payload)

let split ?(max_payload = max_payload_default) buf ~off =
  let avail = String.length buf - off in
  if avail < header_bytes then
    Error.framef "loopback: truncated frame header (%d bytes)" avail;
  let len =
    Int32.to_int (String.get_int32_be buf off) land 0xFFFFFFFF
  in
  if len = 0 then Error.framef "loopback: empty frame";
  if len > max_payload then
    Error.framef "loopback: frame of %d bytes exceeds limit %d" len max_payload;
  if avail - header_bytes < len then
    Error.framef "loopback: truncated frame body (%d/%d bytes)"
      (avail - header_bytes) len;
  (String.sub buf (off + header_bytes) len, off + header_bytes + len)
