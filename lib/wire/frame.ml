let header_bytes = 4
let max_payload_default = 1 lsl 20
let max_request_payload = 4096

let encode payload =
  let n = String.length payload in
  if n = 0 then invalid_arg "Frame.encode: empty payload";
  if n > 0xFFFFFFFF then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

let read_exactly t buf len ~what =
  let got = ref 0 in
  while !got < len do
    let n = Transport.read t buf !got (len - !got) in
    if n <= 0 then
      Error.framef "%s: connection closed mid-frame (%d/%d bytes of %s)"
        (Transport.peer t) !got len what;
    got := !got + n
  done

let read ?(max_payload = max_payload_default) t =
  let header = Bytes.create header_bytes in
  (* End-of-stream on the first header byte is a clean close (transport
     level); anywhere later the frame itself is truncated. *)
  let first = Transport.read t header 0 header_bytes in
  if first <= 0 then
    Error.transportf "%s: connection closed" (Transport.peer t);
  let got = ref first in
  while !got < header_bytes do
    let n = Transport.read t header !got (header_bytes - !got) in
    if n <= 0 then
      Error.framef "%s: connection closed mid-frame (%d/%d bytes of header)"
        (Transport.peer t) !got header_bytes;
    got := !got + n
  done;
  let len = Int32.to_int (Bytes.get_int32_be header 0) land 0xFFFFFFFF in
  if len = 0 then Error.framef "%s: empty frame" (Transport.peer t);
  if len > max_payload then
    Error.framef "%s: frame of %d bytes exceeds limit %d" (Transport.peer t)
      len max_payload;
  let payload = Bytes.create len in
  read_exactly t payload len ~what:"payload";
  Bytes.unsafe_to_string payload

let write t payload = Transport.write t (encode payload)

(* {2 Multiplexed framing (XWTP v1.2)}

   After a hello exchange grants mux, both sides switch to frames whose
   payload is prefixed with a big-endian u32 session id:
   [u32 (4 + |payload|)][u32 sid][payload]. A mux frame is an ordinary
   frame to the length-prefix layer, so the same truncation/oversize
   defenses apply; only the session-id prefix is new. *)

let mux_overhead = 4

let encode_mux ~sid payload =
  let n = String.length payload in
  if n = 0 then invalid_arg "Frame.encode_mux: empty payload";
  if sid < 0 || sid > 0xFFFFFFFF then
    invalid_arg "Frame.encode_mux: session id out of range";
  if n > 0xFFFFFFFF - mux_overhead then
    invalid_arg "Frame.encode_mux: payload too large";
  let b = Bytes.create (header_bytes + mux_overhead + n) in
  Bytes.set_int32_be b 0 (Int32.of_int (mux_overhead + n));
  Bytes.set_int32_be b header_bytes (Int32.of_int sid);
  Bytes.blit_string payload 0 b (header_bytes + mux_overhead) n;
  Bytes.unsafe_to_string b

let demux ~peer raw =
  if String.length raw <= mux_overhead then
    Error.framef "%s: mux frame of %d bytes lacks a session id and payload"
      peer (String.length raw);
  let sid = Int32.to_int (String.get_int32_be raw 0) land 0xFFFFFFFF in
  (sid, String.sub raw mux_overhead (String.length raw - mux_overhead))

let read_mux ?(max_payload = max_payload_default) t =
  let raw = read ~max_payload:(max_payload + mux_overhead) t in
  demux ~peer:(Transport.peer t) raw

let write_mux t ~sid payload = Transport.write t (encode_mux ~sid payload)

let split ?(max_payload = max_payload_default) buf ~off =
  let avail = String.length buf - off in
  if avail < header_bytes then
    Error.framef "loopback: truncated frame header (%d bytes)" avail;
  let len =
    Int32.to_int (String.get_int32_be buf off) land 0xFFFFFFFF
  in
  if len = 0 then Error.framef "loopback: empty frame";
  if len > max_payload then
    Error.framef "loopback: frame of %d bytes exceeds limit %d" len max_payload;
  if avail - header_bytes < len then
    Error.framef "loopback: truncated frame body (%d/%d bytes)"
      (avail - header_bytes) len;
  (String.sub buf (off + header_bytes) len, off + header_bytes + len)
