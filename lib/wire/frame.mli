(** Length-prefixed framing: every message on the wire is a big-endian
    [u32] payload length followed by the payload. Zero-length and oversized
    frames are rejected before any allocation proportional to the claimed
    length beyond the limit. *)

val header_bytes : int

val max_payload_default : int
(** What a {e client} will accept in a reply (1 MiB — must hold a chunk
    plus slack). *)

val max_request_payload : int
(** What a {e server} will accept in a request (4 KiB — requests are tiny;
    anything bigger is hostile). *)

val encode : string -> string
(** Prepend the length header. @raise Invalid_argument on an empty
    payload (programming error, not wire input). *)

val read : ?max_payload:int -> Transport.t -> string
(** Read one frame. End-of-stream before the first header byte raises a
    [Transport] error (clean close); end-of-stream anywhere later, an empty
    frame, or a length above [max_payload] raise a [Frame] error. *)

val write : Transport.t -> string -> unit

val split : ?max_payload:int -> string -> off:int -> string * int
(** Pure frame extraction from a buffer (used by the in-process loopback
    and the fuzz boundary): returns the payload and the offset just past
    it. Raises the same [Frame] errors as {!read}. *)

val mux_overhead : int
(** Extra bytes a mux frame carries over a plain one (the u32 session
    id). *)

val span_overhead : int
(** Further bytes a {e traced} mux frame carries (the u64 span id). *)

val encode_mux : sid:int -> ?span:int -> string -> string
(** XWTP v1.2 multiplexed frame:
    [u32 (4 + |payload|)][u32 sid][payload]. Used once a hello exchange
    has granted mux on the connection. With [?span] (trace propagation
    negotiated at the connection's probe hello), the traced shape
    [u32 len][u32 sid][u64 span][payload] is emitted instead — span 0
    means "no span"; whether frames are traced is a connection-wide
    agreement, never a per-frame flag.
    @raise Invalid_argument on an empty payload or an out-of-range
    session or span id. *)

val read_mux :
  ?max_payload:int -> ?traced:bool -> Transport.t -> int * int * string
(** Read one mux frame and return [(sid, span, payload)]; [span] is [0]
    unless [traced] (the connection negotiated trace propagation) and the
    peer stamped one. [max_payload] bounds the payload, not the prefix. A
    frame too short to carry its prefix and payload raises a [Frame]
    error, like any truncation. *)

val write_mux : Transport.t -> sid:int -> ?span:int -> string -> unit
