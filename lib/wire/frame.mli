(** Length-prefixed framing: every message on the wire is a big-endian
    [u32] payload length followed by the payload. Zero-length and oversized
    frames are rejected before any allocation proportional to the claimed
    length beyond the limit. *)

val header_bytes : int

val max_payload_default : int
(** What a {e client} will accept in a reply (1 MiB — must hold a chunk
    plus slack). *)

val max_request_payload : int
(** What a {e server} will accept in a request (4 KiB — requests are tiny;
    anything bigger is hostile). *)

val encode : string -> string
(** Prepend the length header. @raise Invalid_argument on an empty
    payload (programming error, not wire input). *)

val read : ?max_payload:int -> Transport.t -> string
(** Read one frame. End-of-stream before the first header byte raises a
    [Transport] error (clean close); end-of-stream anywhere later, an empty
    frame, or a length above [max_payload] raise a [Frame] error. *)

val write : Transport.t -> string -> unit

val split : ?max_payload:int -> string -> off:int -> string * int
(** Pure frame extraction from a buffer (used by the in-process loopback
    and the fuzz boundary): returns the payload and the offset just past
    it. Raises the same [Frame] errors as {!read}. *)
