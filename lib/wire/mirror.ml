module C = Xmlac_crypto.Secure_container
module Delta = Xmlac_dissem.Delta

type t = {
  connector : unit -> Transport.t;
  config : Client.config;
  mutable client : Client.t;
  mutable container : C.t;
  mutable revoked : string list;
  (* counters of clients already replaced by the fresh-client fallback,
     so [stats] never loses paid bytes across a refetch *)
  totals : Stats.t;
}

type outcome =
  | Uptodate
  | Applied of {
      from_gen : int;
      to_gen : int;
      delta_bytes : int;
      revoked : string list;
    }
  | Refetched of { to_gen : int; bytes : int }

let container t = t.container
let generation t = C.generation t.container
let revoked t = t.revoked

let stats t =
  let s = Stats.make () in
  Stats.add ~into:s t.totals;
  Stats.add ~into:s (Client.stats t.client);
  s

(* Fetch one group of chunks (and their digests) through a single Batch
   frame; the per-item payload accounting inside [fetch_batch] matches
   what the individual fetches would charge. *)
let fetch_group cl ~digests ~bytes chunks =
  let reqs =
    List.concat_map
      (fun i ->
        Protocol.Get_chunk { chunk = i }
        :: (if digests then [ Protocol.Get_digest { chunk = i } ] else []))
      chunks
  in
  let resps = ref (Client.fetch_batch cl reqs) in
  let next kind =
    match !resps with
    | r :: rest ->
        resps := rest;
        r
    | [] -> Error.protocolf "batch reply ran out before %s" kind
  in
  List.map
    (fun i ->
      let cipher =
        match next "chunk" with
        | Protocol.Chunk c -> c
        | r -> Error.protocolf "expected chunk, got %s" (Client.response_kind r)
      in
      let digest =
        if not digests then ""
        else
          match next "digest" with
          | Protocol.Digest d -> d
          | r ->
              Error.protocolf "expected digest, got %s" (Client.response_kind r)
      in
      bytes := !bytes + String.length cipher + String.length digest;
      (i, cipher, digest))
    chunks

(* The whole container over the data plane: every chunk plus (under a
   digest-bearing scheme) its encrypted digest, grafted onto the
   handshake's geometry view. Versions come out uniform at the advertised
   generation — a full fetch has no per-chunk history, and a conservative
   version vector only ever costs the next sync extra full entries. *)
let full_fetch cl =
  let meta = Client.metadata cl in
  let base =
    match Protocol.metadata_geometry meta with
    | Ok c -> c
    | Error m -> Error.protocolf "origin advertises invalid geometry: %s" m
  in
  let n = meta.Protocol.chunk_count in
  let digests = meta.Protocol.scheme <> C.Ecb in
  let bytes = ref 0 in
  let all = List.init n Fun.id in
  let fetched =
    if meta.Protocol.batching && n > 1 then begin
      let per = if digests then 2 else 1 in
      let group = max 1 (Protocol.max_batch / per) in
      let rec go acc = function
        | [] -> List.concat (List.rev acc)
        | rest ->
            let k = min group (List.length rest) in
            let now = List.filteri (fun i _ -> i < k) rest in
            let later = List.filteri (fun i _ -> i >= k) rest in
            go (fetch_group cl ~digests ~bytes now :: acc) later
      in
      go [] all
    end
    else
      List.map
        (fun i ->
          let cipher = Client.fetch_chunk cl ~chunk:i in
          let digest = if digests then Client.fetch_digest cl ~chunk:i else "" in
          bytes := !bytes + String.length cipher + String.length digest;
          (i, cipher, digest))
        all
  in
  let full =
    List.map
      (fun (i, cipher, digest) -> (i, meta.Protocol.generation, cipher, digest))
      fetched
  in
  match
    C.patch base ~payload_length:meta.Protocol.payload_length
      ~generation:meta.Protocol.generation ~key_epoch:meta.Protocol.key_epoch
      ~full ~reseals:[]
  with
  | Ok c -> (c, !bytes)
  | Error m -> Error.protocolf "full fetch rejected: %s" m

let fetch ?(config = Client.default_config) connector =
  let client = Client.connect ~config connector in
  let container, _ = full_fetch client in
  { connector; config; client; container; revoked = []; totals = Stats.make () }

let of_container ?(config = Client.default_config) connector container =
  let client = Client.connect ~config connector in
  { connector; config; client; container; revoked = []; totals = Stats.make () }

(* A republished origin advertises different metadata, and the client
   (correctly) refuses to resume a session across that change — the full
   fetch therefore always runs on a fresh client. *)
let refetch t =
  Stats.add ~into:t.totals (Client.stats t.client);
  (try Client.close t.client with _ -> ());
  t.client <- Client.connect ~config:t.config t.connector;
  let container, bytes = full_fetch t.client in
  t.container <- container;
  Refetched { to_gen = C.generation container; bytes }

let sync t =
  let refetchable code =
    (* out-of-range: the origin cannot bridge our lineage; bad-request /
       unsupported: a pre-v1.3 origin rejecting the Sync opcode *)
    code = Protocol.err_out_of_range
    || code = Protocol.err_bad_request
    || code = Protocol.err_unsupported
  in
  let from_gen = generation t in
  match Client.sync t.client ~have_gen:from_gen with
  | `Uptodate -> Uptodate
  | `Delta encoded -> (
      match Delta.decode encoded with
      | Error m -> Error.protocolf "undecodable sync delta: %s" m
      | Ok d -> (
          match Delta.apply t.container d with
          | Error m -> Error.protocolf "sync delta rejected: %s" m
          | Ok container ->
              t.container <- container;
              t.revoked <- d.Delta.revoked;
              Applied
                {
                  from_gen;
                  to_gen = C.generation container;
                  delta_bytes = String.length encoded;
                  revoked = d.Delta.revoked;
                }))
  | exception Error.Wire (Error.Server { code; _ }) when refetchable code ->
      refetch t
  | exception Error.Wire (Error.Handshake _) ->
      (* reconnect mid-sync found changed metadata: same fallback *)
      refetch t

let close t = Client.close t.client
