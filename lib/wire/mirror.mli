(** A syncing replica of one published container (the dissemination
    terminal): holds a local ciphertext copy and keeps it current against
    an origin terminal with chunk deltas, falling back to a full fetch
    when the origin cannot bridge the gap.

    The mirror is an untrusted component like any terminal — it never
    holds keys, and a hostile origin can at worst make it store garbage
    the SOE's digest checks will reject at read time. What {!sync} {e
    does} validate is structure: a delta that fails
    [Xmlac_dissem.Delta.apply]'s rules raises a typed protocol error
    instead of corrupting the local copy. *)

module C = Xmlac_crypto.Secure_container

type t

type outcome =
  | Uptodate  (** local generation already current *)
  | Applied of {
      from_gen : int;
      to_gen : int;
      delta_bytes : int;
      revoked : string list;
    }
      (** a delta moved the local copy forward; [delta_bytes] is the
          encoded delta size (what the wire paid), [revoked] the
          cumulative revocation list it carried *)
  | Refetched of { to_gen : int; bytes : int }
      (** the origin could not bridge our generation (fresh lineage, or a
          pre-v1.3 terminal): full fetch, [bytes] of chunk/digest payload *)

val fetch : ?config:Client.config -> (unit -> Transport.t) -> t
(** Bootstrap a mirror by fetching the origin's container in full
    (chunks and digests, batched when the origin advertises batching).
    The connector is kept for later {!sync}s. *)

val of_container : ?config:Client.config -> (unit -> Transport.t) -> C.t -> t
(** Adopt an existing local copy (e.g. read back from a spool file) and
    sync it against the origin from now on. *)

val container : t -> C.t
(** The current local copy — serialize with
    {!Xmlac_crypto.Secure_container.to_bytes}, republish into a local
    [Server], or decrypt with a licensed SOE. *)

val generation : t -> int

val revoked : t -> string list
(** Cumulative revocation list carried by the last applied delta (empty
    until one arrives — full fetches do not transport revocations). *)

val sync : t -> outcome
(** One sync round trip: ask the origin for changes since our generation
    and advance the local copy. Falls back to a full fetch (on a fresh
    client, since the origin's metadata changed) when the origin answers
    out-of-range, rejects the opcode, or the reconnect handshake refuses
    the changed metadata. @raise Error.Wire on transport failure or a
    structurally invalid delta. *)

val stats : t -> Stats.t
(** The underlying client's wire counters ([syncs], [sync_delta_bytes],
    [payload_bytes], ...). Survives the fresh-client fallback: counters
    are carried over. *)

val close : t -> unit
