(* Client side of XWTP v1.2 session multiplexing.

   One probe hello (plain-framed) asks the terminal to switch the
   connection to mux framing. If granted, each SOE session gets a virtual
   transport: its writes re-frame the session's ordinary plain frames as
   mux frames tagged with the session id, its reads reassemble plain
   frames from demultiplexed replies. The per-session {!Client} stack is
   reused unchanged on top — each session still performs its own hello
   (naming its container) inside the mux stream.

   Demultiplexing is leader/follower: whichever session thread needs bytes
   first becomes the leader, drops the lock, blocks in [read_mux], routes
   the frame to its session's inbox, and broadcasts; followers wait on the
   condition variable. No dedicated reader thread, no reply buffering
   beyond what sessions actually await.

   A terminal that answers the probe without the mux flag (a v1.1
   terminal, or a v1.2 one with mux disabled, or the in-process loopback)
   downgrades the whole endpoint gracefully: every session then gets a
   fresh plain connection from the underlying connector. *)

type inbox = { q : string Queue.t; mutable cur : string; mutable cpos : int }

let inbox_make () = { q = Queue.create (); cur = ""; cpos = 0 }
let inbox_add ib s = Queue.push s ib.q

let inbox_take ib buf off len =
  if ib.cpos >= String.length ib.cur then (
    match Queue.take_opt ib.q with
    | Some s ->
        ib.cur <- s;
        ib.cpos <- 0
    | None -> ());
  let avail = String.length ib.cur - ib.cpos in
  if avail <= 0 then 0
  else begin
    let n = min len avail in
    Bytes.blit_string ib.cur ib.cpos buf off n;
    ib.cpos <- ib.cpos + n;
    n
  end

type conn = {
  tr : Transport.t;
  m : Mutex.t;  (* guards inboxes, leader, dead, next_sid *)
  resume : Condition.t;
  wm : Mutex.t;  (* serializes writes so mux frames never interleave *)
  inboxes : (int, inbox) Hashtbl.t;
  mutable next_sid : int;
  mutable leader : bool;
  mutable dead : string option;
  max_payload : int;
  traced : bool;
      (* probe hello negotiated trace propagation: every frame on this
         connection carries a u64 span id after the session id *)
}

type state = Muxed of conn | Downgraded

type t = {
  connector : unit -> Transport.t;
  max_payload : int;
  trace : string;  (* trace id offered by the endpoint's probe hello *)
  m : Mutex.t;
  mutable state : state option;
}

let conn_make tr max_payload traced =
  {
    tr;
    m = Mutex.create ();
    resume = Condition.create ();
    wm = Mutex.create ();
    inboxes = Hashtbl.create 16;
    next_sid = 1;
    leader = false;
    dead = None;
    max_payload;
    traced;
  }

let mark_dead (conn : conn) msg =
  Mutex.lock conn.m;
  if conn.dead = None then conn.dead <- Some msg;
  Condition.broadcast conn.resume;
  Mutex.unlock conn.m

(* One leader/follower step for the session [sid] waiting on [ib]:
   returns bytes if any arrived for us, raises if the connection is dead,
   loops otherwise. Called with [conn.m] held; returns with it held. *)
let rec await_bytes (conn : conn) sid ib buf off len =
  let n = inbox_take ib buf off len in
  if n > 0 then n
  else
    match conn.dead with
    | Some msg ->
        Mutex.unlock conn.m;
        Error.transportf "%s session %d: mux connection down: %s"
          (Transport.peer conn.tr) sid msg
    | None ->
        if conn.leader then begin
          Condition.wait conn.resume conn.m;
          await_bytes conn sid ib buf off len
        end
        else begin
          conn.leader <- true;
          Mutex.unlock conn.m;
          (match
             Frame.read_mux ~max_payload:conn.max_payload ~traced:conn.traced
               conn.tr
           with
          | sid', _span, payload -> (
              Mutex.lock conn.m;
              match Hashtbl.find_opt conn.inboxes sid' with
              | Some ib' ->
                  (* re-frame for the session's ordinary Frame.read *)
                  inbox_add ib' (Frame.encode payload)
              | None -> () (* session retired locally: drop the reply *))
          | exception e ->
              Mutex.lock conn.m;
              if conn.dead = None then
                conn.dead <-
                  Some
                    (match e with
                    | Error.Wire we -> Error.to_string we
                    | e -> Printexc.to_string e));
          conn.leader <- false;
          Condition.broadcast conn.resume;
          await_bytes conn sid ib buf off len
        end

let session_transport (conn : conn) =
  Mutex.lock conn.m;
  let sid = conn.next_sid in
  conn.next_sid <- sid + 1;
  let ib = inbox_make () in
  Hashtbl.replace conn.inboxes sid ib;
  Mutex.unlock conn.m;
  let peer = Printf.sprintf "%s#%d" (Transport.peer conn.tr) sid in
  let read buf off len =
    Mutex.lock conn.m;
    if not (Hashtbl.mem conn.inboxes sid) then begin
      Mutex.unlock conn.m;
      0 (* locally closed: reads see end-of-stream *)
    end
    else begin
      let n = await_bytes conn sid ib buf off len in
      Mutex.unlock conn.m;
      n
    end
  in
  let write data =
    (* [data] is one or more complete plain frames from the session's
       client; re-frame each as a mux frame and send them in one write *)
    Mutex.lock conn.m;
    let dead = conn.dead in
    Mutex.unlock conn.m;
    (match dead with
    | Some msg -> Error.transportf "%s: mux connection down: %s" peer msg
    | None -> ());
    (* On a traced connection every frame carries the writing thread's
       innermost open span (the client's wire.request span) so the server
       can parent its own span under it; 0 when nothing is open. *)
    let span =
      if not conn.traced then None
      else
        Some
          (match Xmlac_obs.Context.current_span () with
          | Some s -> s
          | None -> 0)
    in
    let b = Buffer.create (String.length data + Frame.mux_overhead) in
    let off = ref 0 in
    while !off < String.length data do
      let payload, next =
        Frame.split ~max_payload:conn.max_payload data ~off:!off
      in
      Buffer.add_string b (Frame.encode_mux ~sid ?span payload);
      off := next
    done;
    Mutex.lock conn.wm;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.wm)
      (fun () -> Transport.write conn.tr (Buffer.contents b))
  in
  let close () =
    Mutex.lock conn.m;
    let live = Hashtbl.mem conn.inboxes sid && conn.dead = None in
    Hashtbl.remove conn.inboxes sid;
    Condition.broadcast conn.resume;
    Mutex.unlock conn.m;
    (* Best-effort Bye so the terminal retires this sid's per-connection
       binding: the client's retry path closes a session transport without
       a protocol Bye, and a terminal that only evicts on Bye would creep
       toward its per-connection session cap under churn. Our inbox is
       already gone, so the Bye_ok reply (including the duplicate one
       after [Client.close]'s own Bye round trip) is dropped by the
       demultiplexer. *)
    if live then
      try
        let frame =
          Frame.encode_mux ~sid
            ?span:(if conn.traced then Some 0 else None)
            (Protocol.encode_request Protocol.Bye)
        in
        Mutex.lock conn.wm;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock conn.wm)
          (fun () -> Transport.write conn.tr frame)
      with _ -> ()
  in
  Transport.make
    ~local:(Transport.local conn.tr)
    ~read ~write ~close ~peer ()

let rec probe ?trace (t : t) =
  let trace = match trace with Some tr -> tr | None -> t.trace in
  let tr = t.connector () in
  match
    Transport.write tr
      (Frame.encode
         (Protocol.encode_request
            (Protocol.Hello
               { version = Protocol.version; container = ""; mux = true; trace })));
    Protocol.decode_response (Frame.read ~max_payload:t.max_payload tr)
  with
  | Protocol.Hello_ok meta when meta.Protocol.mux ->
      Muxed (conn_make tr t.max_payload meta.Protocol.trace)
  | Protocol.Hello_ok _ ->
      (* terminal spoke, but without the mux grant: downgrade *)
      Transport.close tr;
      Downgraded
  | Protocol.Err { code; message } when code = Protocol.err_busy ->
      Transport.close tr;
      raise (Error.Wire (Error.Busy message))
  | Protocol.Err { code; _ }
    when (code = Protocol.err_unsupported || code = Protocol.err_bad_request)
         && trace <> "" ->
      (* trace-strip rung, mirroring the client handshake ladder: a
         pre-telemetry v1.2 terminal rejects the trace flag bit but muxes
         fine, so re-probe without the extension before giving up mux *)
      Transport.close tr;
      probe ~trace:"" t
  | Protocol.Err _ ->
      (* e.g. a v1-only terminal rejecting the v2 hello: downgrade *)
      Transport.close tr;
      Downgraded
  | resp ->
      Transport.close tr;
      ignore resp;
      Error.protocolf "expected hello reply to mux probe"
  | exception e ->
      Transport.close tr;
      raise e

let ensure (t : t) =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      match t.state with
      | Some (Muxed conn) when conn.dead = None -> Muxed conn
      | Some Downgraded -> Downgraded
      | Some (Muxed conn) ->
          (* previous mux connection died: replace it *)
          Transport.close conn.tr;
          let s = probe t in
          t.state <- Some s;
          s
      | None ->
          let s = probe t in
          t.state <- Some s;
          s)

let connect ?(max_payload = Frame.max_payload_default) ?(trace = "") connector
    =
  if String.length trace > Protocol.max_trace_id then
    invalid_arg "Mux.connect: trace id too long";
  let t = { connector; max_payload; trace; m = Mutex.create (); state = None } in
  ignore (ensure t : state);
  t

let is_mux (t : t) =
  Mutex.lock t.m;
  let r =
    match t.state with Some (Muxed conn) -> conn.dead = None | _ -> false
  in
  Mutex.unlock t.m;
  r

(* The connector per-session clients plug into [Client.connect]: every
   call yields a fresh session on the shared mux connection (re-probing a
   dead one), or a fresh plain connection after a downgrade. *)
let session t () =
  match ensure t with
  | Muxed conn -> session_transport conn
  | Downgraded -> t.connector ()

let close (t : t) =
  Mutex.lock t.m;
  (match t.state with
  | Some (Muxed conn) ->
      mark_dead conn "endpoint closed";
      Transport.close conn.tr
  | _ -> ());
  t.state <- Some Downgraded;
  Mutex.unlock t.m
