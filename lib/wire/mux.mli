(** Client side of XWTP v1.2 session multiplexing: many SOE sessions over
    one terminal connection.

    {!connect} probes the terminal with a mux-requesting hello. If
    granted, {!session} yields virtual transports — one fresh session id
    each — over the shared connection; plug them into {!Client.connect}
    as the connector and the whole per-session client stack (handshake,
    retry, batching, accounting) works unchanged. If the terminal answers
    without the grant (a v1.1 terminal, or mux disabled), the endpoint
    downgrades gracefully: {!session} then hands out fresh plain
    connections from the underlying connector.

    Demultiplexing is leader/follower among the session threads
    themselves (no dedicated reader thread); writes of distinct sessions
    are serialized so mux frames never interleave. A dead mux connection
    fails every open session with a retryable transport error, and the
    next {!session} call re-probes. *)

type t

val connect : ?max_payload:int -> ?trace:string -> (unit -> Transport.t) -> t
(** Probe the terminal once, establishing either a mux connection or the
    downgraded mode. Raises {!Error.Wire} like any connect would —
    including the retryable [Busy] when the terminal is at its session
    cap. A non-empty [trace] (at most {!Protocol.max_trace_id} bytes) is
    offered in the probe hello; when the terminal grants it the whole
    connection switches to traced mux framing, every frame carrying the
    writing thread's current {!Xmlac_obs.Context} span id so the terminal
    can parent its server spans under the client's request spans. A
    pre-telemetry terminal that rejects the extension costs one extra
    probe round trip and the connection proceeds untraced.
    @raise Invalid_argument when [trace] exceeds the cap. *)

val is_mux : t -> bool
(** Whether the endpoint currently holds a live multiplexed connection
    ([false] after a downgrade or a connection death). *)

val session : t -> unit -> Transport.t
(** A connector for one SOE session: a fresh session id on the shared mux
    connection (re-probing if the previous connection died), or a fresh
    plain connection in downgraded mode. Closing the returned transport
    retires only that session. *)

val close : t -> unit
(** Tear down the shared connection (failing any open session). *)
