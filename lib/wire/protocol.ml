module C = Xmlac_crypto.Secure_container

let version = 3
let min_version = 1
let hello_magic = "XWTP"

let max_container_id = 255
(* decode-time cap on a v2 hello's container-id length (bounds hostile
   allocation; ids are short human-chosen names) *)

let max_trace_id = 64
(* cap on the trace-id extension a v2 hello may carry: trace ids are short
   correlation tokens ("fleet-client-17"), and the u8 length field bounds
   hostile allocation at decode time *)

let hash_state_wire_bytes = 92
(* worst-case serialized SHA-1 mid-state (29 fixed + 63 pending); every
   Hash_state reply is zero-padded to this size so the wire cost of a hash
   state is a constant, matching the channel's accounting *)

let max_siblings = 64
(* a cover for one leaf has [log2 frags_per_chunk] nodes; 64 covers any
   plausible geometry and bounds hostile allocation *)

let max_batch = 64
(* decode-time cap on sub-requests in one Batch frame; also keeps a
   worst-case Batched reply (64 chunk ciphertexts) under the client's
   default 1 MiB frame cap for any plausible geometry *)

type metadata = {
  meta_version : int;
  scheme : C.scheme;
  chunk_size : int;
  fragment_size : int;
  payload_length : int;
  chunk_count : int;
  integrity : bool;  (* whether the scheme supports verification at all *)
  batching : bool;  (* whether the terminal accepts Batch requests *)
  mux : bool;  (* whether this connection multiplexes sessions (XWTP v1.2) *)
  trace : bool;
      (* whether the terminal accepted the hello's trace id and will link
         its own spans to it — granted only when the hello carried one,
         because pre-telemetry clients reject unknown reply flag bits *)
  generation : int;
      (* publication generation of the bound container (XWTP v1.3): what a
         mirror compares its own generation against to decide whether to
         Sync. Encoded only when [meta_version >= 3], so replies to older
         clients keep their exact pre-dissemination shape. *)
  key_epoch : int;
      (* document-key epoch of the bound container (v1.3): lets an SOE
         refuse a stale license before fetching anything *)
}

type request =
  | Hello of { version : int; container : string; mux : bool; trace : string }
  | Get_fragment of { chunk : int; fragment : int; lo : int; hi : int }
  | Get_chunk of { chunk : int }
  | Get_digest of { chunk : int }
  | Get_hash_state of { chunk : int; fragment : int; upto : int }
  | Get_siblings of { chunk : int; fragment : int }
  | Batch of request list
  | Get_stats
  | Sync of { have_gen : int }
  | Bye

type response =
  | Hello_ok of metadata
  | Fragment of string
  | Chunk of string
  | Digest of string
  | Hash_state of string
  | Siblings of string list
  | Batched of response list
  | Stats_reply of string
  | Sync_delta of string
  | Sync_uptodate
  | Bye_ok
  | Err of { code : int; message : string }

let err_bad_request = 1
let err_out_of_range = 2
let err_unsupported = 3
let err_internal = 4
let err_busy = 5

let scheme_code = function
  | C.Ecb -> 0
  | C.Cbc_sha -> 1
  | C.Cbc_shac -> 2
  | C.Ecb_mht -> 3
  | C.Aes_ctr -> 4

let scheme_of_code = function
  | 0 -> Some C.Ecb
  | 1 -> Some C.Cbc_sha
  | 2 -> Some C.Cbc_shac
  | 3 -> Some C.Ecb_mht
  | 4 -> Some C.Aes_ctr
  | _ -> None

(* {2 Encoding} *)

let add_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Protocol: u8 out of range";
  Buffer.add_char b (Char.chr v)

let add_u16 b v =
  if v < 0 || v > 0xFFFF then invalid_arg "Protocol: u16 out of range";
  Buffer.add_uint16_be b v

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Protocol: u32 out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let add_u64 b v =
  if v < 0 then invalid_arg "Protocol: u64 out of range";
  Buffer.add_int64_be b (Int64.of_int v)

let rec encode_request req =
  let b = Buffer.create 16 in
  (match req with
  | Hello { version; container; mux; trace } ->
      add_u8 b 0x01;
      Buffer.add_string b hello_magic;
      add_u16 b version;
      (* v1 hellos stop after the version — byte-identical to what an
         XWTP v1.1 client emits; the v2 extension appends a flags byte and
         the target container id, and the trace extension (flag bit 1)
         appends a u8-length trace id after the container. A hello with no
         trace id is byte-identical to a pre-telemetry v2 hello. *)
      if version >= 2 then begin
        if String.length container > max_container_id then
          invalid_arg "Protocol: container id too long";
        if String.length trace > max_trace_id then
          invalid_arg "Protocol: trace id too long";
        add_u8 b ((if mux then 1 else 0) lor if trace <> "" then 2 else 0);
        add_u16 b (String.length container);
        Buffer.add_string b container;
        if trace <> "" then begin
          add_u8 b (String.length trace);
          Buffer.add_string b trace
        end
      end
      else if mux || container <> "" || trace <> "" then
        invalid_arg "Protocol: v1 hello cannot carry v2 extensions"
  | Get_fragment { chunk; fragment; lo; hi } ->
      add_u8 b 0x02;
      add_u32 b chunk;
      add_u16 b fragment;
      add_u16 b lo;
      add_u16 b hi
  | Get_chunk { chunk } ->
      add_u8 b 0x03;
      add_u32 b chunk
  | Get_digest { chunk } ->
      add_u8 b 0x04;
      add_u32 b chunk
  | Get_hash_state { chunk; fragment; upto } ->
      add_u8 b 0x05;
      add_u32 b chunk;
      add_u16 b fragment;
      add_u16 b upto
  | Get_siblings { chunk; fragment } ->
      add_u8 b 0x06;
      add_u32 b chunk;
      add_u16 b fragment
  | Batch subs ->
      let n = List.length subs in
      if n < 1 || n > max_batch then
        invalid_arg "Protocol: batch size out of range";
      add_u8 b 0x08;
      add_u16 b n;
      List.iter
        (fun sub ->
          (match sub with
          | Hello _ | Bye | Batch _ | Get_stats | Sync _ ->
              invalid_arg "Protocol: request cannot be batched"
          | _ -> ());
          let encoded = encode_request sub in
          add_u16 b (String.length encoded);
          Buffer.add_string b encoded)
        subs
  | Get_stats -> add_u8 b 0x0A
  | Sync { have_gen } ->
      add_u8 b 0x0B;
      add_u64 b have_gen
  | Bye -> add_u8 b 0x07);
  Buffer.contents b

let rec encode_response resp =
  let b = Buffer.create 64 in
  (match resp with
  | Hello_ok m ->
      add_u8 b 0x81;
      add_u16 b m.meta_version;
      add_u8 b (scheme_code m.scheme);
      add_u32 b m.chunk_size;
      add_u32 b m.fragment_size;
      add_u64 b m.payload_length;
      add_u32 b m.chunk_count;
      add_u8 b
        ((if m.integrity then 1 else 0)
        lor (if m.batching then 2 else 0)
        lor (if m.mux then 4 else 0)
        lor if m.trace then 8 else 0);
      (* the v1.3 extension: generation and key epoch, only when the
         negotiated version speaks them — v1/v2 replies keep their exact
         historical shape (old decoders reject trailing bytes) *)
      if m.meta_version >= 3 then begin
        add_u64 b m.generation;
        add_u16 b m.key_epoch
      end
      (* under a negotiated v1/v2 the fields are simply not spoken: a
         downgraded client sees the container as an unversioned whole *)
  | Fragment cipher ->
      add_u8 b 0x82;
      Buffer.add_string b cipher
  | Chunk cipher ->
      add_u8 b 0x83;
      Buffer.add_string b cipher
  | Digest blob ->
      add_u8 b 0x84;
      Buffer.add_string b blob
  | Hash_state state ->
      let n = String.length state in
      if n > hash_state_wire_bytes then
        invalid_arg "Protocol: hash state larger than wire size";
      add_u8 b 0x85;
      add_u16 b n;
      Buffer.add_string b state;
      Buffer.add_string b (String.make (hash_state_wire_bytes - n) '\000')
  | Siblings digests ->
      add_u8 b 0x86;
      add_u16 b (List.length digests);
      List.iter
        (fun d ->
          if String.length d <> 20 then
            invalid_arg "Protocol: sibling digest must be 20 bytes";
          Buffer.add_string b d)
        digests
  | Batched subs ->
      let n = List.length subs in
      if n < 1 || n > max_batch then
        invalid_arg "Protocol: batch size out of range";
      add_u8 b 0x88;
      add_u16 b n;
      List.iter
        (fun sub ->
          (match sub with
          | Hello_ok _ | Bye_ok | Batched _ | Stats_reply _ | Sync_delta _
          | Sync_uptodate ->
              invalid_arg "Protocol: response cannot be batched"
          | _ -> ());
          let encoded = encode_response sub in
          add_u32 b (String.length encoded);
          Buffer.add_string b encoded)
        subs
  | Stats_reply json ->
      add_u8 b 0x89;
      Buffer.add_string b json
  | Sync_delta delta ->
      add_u8 b 0x8A;
      Buffer.add_string b delta
  | Sync_uptodate -> add_u8 b 0x8B
  | Bye_ok -> add_u8 b 0x87
  | Err { code; message } ->
      add_u8 b 0xFF;
      add_u16 b code;
      Buffer.add_string b message);
  Buffer.contents b

(* {2 Decoding}

   Both decoders face untrusted input: the server decodes requests from an
   arbitrary client, the client decodes responses from an adversarial
   terminal. Every structural violation becomes a typed [Protocol]
   error. *)

exception Bad of string

type cursor = { data : string; mutable pos : int }

let need cur n what =
  if cur.pos + n > String.length cur.data then
    raise (Bad (Printf.sprintf "truncated %s" what))

let u8 cur what =
  need cur 1 what;
  let v = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let u16 cur what =
  need cur 2 what;
  let v = String.get_uint16_be cur.data cur.pos in
  cur.pos <- cur.pos + 2;
  v

let u32 cur what =
  need cur 4 what;
  let v = Int32.to_int (String.get_int32_be cur.data cur.pos) land 0xFFFFFFFF in
  cur.pos <- cur.pos + 4;
  v

let u64 cur what =
  need cur 8 what;
  let v = String.get_int64_be cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Bad (Printf.sprintf "%s out of range" what));
  Int64.to_int v

let take cur n what =
  need cur n what;
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let rest cur =
  let s =
    String.sub cur.data cur.pos (String.length cur.data - cur.pos)
  in
  cur.pos <- String.length cur.data;
  s

let finish cur what =
  if cur.pos <> String.length cur.data then
    raise
      (Bad
         (Printf.sprintf "%d trailing bytes after %s"
            (String.length cur.data - cur.pos)
            what))

let decode payload ~what f =
  if String.length payload = 0 then Error.protocolf "empty %s" what;
  let cur = { data = payload; pos = 0 } in
  let opcode = u8 cur "opcode" in
  match f cur opcode with
  | v -> v
  | exception Bad msg -> Error.protocolf "%s: %s" what msg

let rec decode_request payload =
  decode payload ~what:"request" @@ fun cur opcode ->
  match opcode with
  | 0x08 ->
      let count = u16 cur "batch count" in
      if count < 1 || count > max_batch then
        raise (Bad (Printf.sprintf "batch of %d requests exceeds limit %d"
                      count max_batch));
      let subs = ref [] in
      for _ = 1 to count do
        let len = u16 cur "batched request length" in
        let sub_payload = take cur len "batched request" in
        match decode_request sub_payload with
        | Hello _ | Bye | Batch _ | Get_stats | Sync _ ->
            raise (Bad "request cannot be batched")
        | sub -> subs := sub :: !subs
      done;
      finish cur "batch request";
      Batch (List.rev !subs)
  | 0x01 ->
      let magic = take cur 4 "hello magic" in
      if magic <> hello_magic then raise (Bad "bad hello magic");
      let version = u16 cur "hello version" in
      if cur.pos = String.length cur.data then
        (* v1 short form: nothing after the version *)
        Hello { version; container = ""; mux = false; trace = "" }
      else begin
        let flags = u8 cur "hello flags" in
        if flags land lnot 3 <> 0 then
          raise (Bad (Printf.sprintf "unknown hello flag bits 0x%02x" flags));
        let len = u16 cur "container id length" in
        if len > max_container_id then
          raise
            (Bad
               (Printf.sprintf "container id of %d bytes exceeds limit %d" len
                  max_container_id));
        let container = take cur len "container id" in
        let trace =
          if flags land 2 = 0 then ""
          else begin
            let tlen = u8 cur "trace id length" in
            if tlen = 0 || tlen > max_trace_id then
              raise
                (Bad
                   (Printf.sprintf "trace id of %d bytes outside 1..%d" tlen
                      max_trace_id));
            take cur tlen "trace id"
          end
        in
        finish cur "hello";
        Hello { version; container; mux = flags land 1 = 1; trace }
      end
  | 0x02 ->
      let chunk = u32 cur "chunk index" in
      let fragment = u16 cur "fragment index" in
      let lo = u16 cur "fragment lo" in
      let hi = u16 cur "fragment hi" in
      finish cur "fragment request";
      if lo >= hi then raise (Bad "empty fragment range");
      Get_fragment { chunk; fragment; lo; hi }
  | 0x03 ->
      let chunk = u32 cur "chunk index" in
      finish cur "chunk request";
      Get_chunk { chunk }
  | 0x04 ->
      let chunk = u32 cur "chunk index" in
      finish cur "digest request";
      Get_digest { chunk }
  | 0x05 ->
      let chunk = u32 cur "chunk index" in
      let fragment = u16 cur "fragment index" in
      let upto = u16 cur "hash state upto" in
      finish cur "hash state request";
      Get_hash_state { chunk; fragment; upto }
  | 0x06 ->
      let chunk = u32 cur "chunk index" in
      let fragment = u16 cur "fragment index" in
      finish cur "siblings request";
      Get_siblings { chunk; fragment }
  | 0x0A ->
      finish cur "stats request";
      Get_stats
  | 0x0B ->
      let have_gen = u64 cur "sync generation" in
      finish cur "sync request";
      Sync { have_gen }
  | 0x07 ->
      finish cur "bye";
      Bye
  | op -> raise (Bad (Printf.sprintf "unknown request opcode 0x%02x" op))

let rec decode_response payload =
  decode payload ~what:"response" @@ fun cur opcode ->
  match opcode with
  | 0x88 ->
      let count = u16 cur "batch count" in
      if count < 1 || count > max_batch then
        raise (Bad (Printf.sprintf "batch of %d responses exceeds limit %d"
                      count max_batch));
      let subs = ref [] in
      for _ = 1 to count do
        let len = u32 cur "batched response length" in
        let sub_payload = take cur len "batched response" in
        match decode_response sub_payload with
        | Hello_ok _ | Bye_ok | Batched _ | Stats_reply _ | Sync_delta _
        | Sync_uptodate ->
            raise (Bad "response cannot be batched")
        | sub -> subs := sub :: !subs
      done;
      finish cur "batch response";
      Batched (List.rev !subs)
  | 0x81 ->
      let meta_version = u16 cur "metadata version" in
      let scheme_byte = u8 cur "scheme" in
      let chunk_size = u32 cur "chunk size" in
      let fragment_size = u32 cur "fragment size" in
      let payload_length = u64 cur "payload length" in
      let chunk_count = u32 cur "chunk count" in
      let flags = u8 cur "flags" in
      let generation =
        if meta_version >= 3 then u64 cur "generation" else 0
      in
      let key_epoch = if meta_version >= 3 then u16 cur "key epoch" else 0 in
      finish cur "hello reply";
      let scheme =
        match scheme_of_code scheme_byte with
        | Some s -> s
        | None -> raise (Bad (Printf.sprintf "unknown scheme %d" scheme_byte))
      in
      if flags land lnot 15 <> 0 then
        raise (Bad (Printf.sprintf "unknown flag bits 0x%02x" flags));
      Hello_ok
        {
          meta_version;
          scheme;
          chunk_size;
          fragment_size;
          payload_length;
          chunk_count;
          integrity = flags land 1 = 1;
          batching = flags land 2 = 2;
          mux = flags land 4 = 4;
          trace = flags land 8 = 8;
          generation;
          key_epoch;
        }
  | 0x82 -> Fragment (rest cur)
  | 0x83 -> Chunk (rest cur)
  | 0x84 -> Digest (rest cur)
  | 0x85 ->
      let n = u16 cur "hash state length" in
      if n > hash_state_wire_bytes then
        raise (Bad (Printf.sprintf "hash state length %d exceeds %d" n
                      hash_state_wire_bytes));
      let padded = take cur hash_state_wire_bytes "hash state" in
      finish cur "hash state reply";
      Hash_state (String.sub padded 0 n)
  | 0x86 ->
      let count = u16 cur "sibling count" in
      if count > max_siblings then
        raise (Bad (Printf.sprintf "%d siblings exceeds limit %d" count
                      max_siblings));
      let digests = ref [] in
      for _ = 1 to count do
        digests := take cur 20 "sibling digest" :: !digests
      done;
      finish cur "siblings reply";
      Siblings (List.rev !digests)
  | 0x89 -> Stats_reply (rest cur)
  | 0x8A -> Sync_delta (rest cur)
  | 0x8B ->
      finish cur "sync up-to-date reply";
      Sync_uptodate
  | 0x87 ->
      finish cur "bye reply";
      Bye_ok
  | 0xFF ->
      let code = u16 cur "error code" in
      let message = rest cur in
      Err { code; message }
  | op -> raise (Bad (Printf.sprintf "unknown response opcode 0x%02x" op))

(* {2 Metadata} *)

let metadata_of_container container =
  {
    meta_version = version;
    scheme = C.scheme container;
    chunk_size = C.chunk_size container;
    fragment_size = C.fragment_size container;
    payload_length = C.payload_length container;
    chunk_count = C.chunk_count container;
    integrity = C.scheme container <> C.Ecb;
    batching = true;
    mux = false;
    trace = false;
    generation = C.generation container;
    key_epoch = C.key_epoch container;
  }

let metadata_geometry m =
  if m.meta_version < min_version || m.meta_version > version then
    Error
      (Printf.sprintf "terminal speaks protocol version %d, expected %d..%d"
         m.meta_version min_version version)
  else if m.mux && m.meta_version < 2 then
    Error "terminal advertises session multiplexing under protocol version 1"
  else if m.trace && m.meta_version < 2 then
    Error "terminal advertises trace propagation under protocol version 1"
  else if m.integrity <> (m.scheme <> C.Ecb) then
    Error "terminal integrity flag contradicts its scheme"
  else if (m.generation <> 0 || m.key_epoch <> 0) && m.meta_version < 3 then
    Error "terminal advertises versioned metadata under protocol version < 3"
  else
    C.geometry ~generation:m.generation ~key_epoch:m.key_epoch ~scheme:m.scheme
      ~chunk_size:m.chunk_size ~fragment_size:m.fragment_size
      ~payload_length:m.payload_length ~chunk_count:m.chunk_count ()
