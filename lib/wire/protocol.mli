(** The SOE ↔ terminal message vocabulary (one message per frame payload).

    Every exchange the in-process channel performs against a container has a
    request/response pair here: fragment ciphertext ranges and whole-chunk
    ciphertext, encrypted chunk digests, intermediate SHA-1 states of
    fragment prefixes, Merkle sibling digests, and the metadata handshake.

    The first payload byte is the opcode (requests [0x01]–[0x07], responses
    [0x81]–[0x87], error [0xFF]); integers are big-endian. Both decoders
    treat their input as hostile — the server reads requests from an
    arbitrary client, the client reads responses from an adversarial
    terminal — and reject every structural violation with a typed
    [{!Error.Wire} (Protocol _)]. *)

module C = Xmlac_crypto.Secure_container

val version : int
(** The newest protocol version this build speaks (3, XWTP v1.3: container
    generation and key epoch in the hello reply, and the [Sync] delta
    exchange — on top of v1.2's named containers and session
    multiplexing). *)

val min_version : int
(** The oldest version still served (1). A v1 hello gets a v1-shaped
    reply: [meta_version = 1] and no mux flag, so v1.1 peers interoperate
    unchanged. *)

val hello_magic : string

val max_container_id : int
(** Decode-time cap on a v2 hello's container-id length. *)

val max_trace_id : int
(** Decode-time cap on the trace-id extension a v2 hello may carry (64) —
    trace ids are short correlation tokens, not payloads. *)

val hash_state_wire_bytes : int
(** 92: every [Hash_state] reply is zero-padded to the worst-case serialized
    SHA-1 mid-state, so the wire cost of a hash state is the same constant
    the in-process channel charges. *)

val max_siblings : int
(** Decode-time cap on a [Siblings] reply (bounds hostile allocation). *)

val max_batch : int
(** Cap on the number of sub-requests one [Batch] frame may carry. *)

type metadata = {
  meta_version : int;
  scheme : C.scheme;
  chunk_size : int;
  fragment_size : int;
  payload_length : int;
  chunk_count : int;
  integrity : bool;
      (** whether the published scheme supports verification at all — [false]
          exactly for ECB, making the paper's silent verify-downgrade an
          explicit, visible property of the handshake *)
  batching : bool;
      (** whether the terminal accepts [Batch] requests (XWTP v1.1 request
          coalescing); clients fall back to one-request-per-frame against
          terminals that do not advertise it *)
  mux : bool;
      (** whether this connection was switched to XWTP v1.2 session
          multiplexing — granted only when the hello requested it and the
          terminal supports it; [false] in every v1-shaped reply *)
  trace : bool;
      (** whether the terminal accepted the hello's trace id and will link
          its server-side spans to it. Granted only when the hello carried
          a trace id: pre-telemetry clients reject unknown reply flag
          bits, so the terminal never volunteers the bit unprompted.
          [false] in every v1-shaped reply. *)
  generation : int;
      (** publication generation of the bound container (XWTP v1.3) — what
          a mirror compares its local generation against before issuing a
          [Sync]. On the wire only when [meta_version >= 3]; replies to
          older clients keep their exact historical shape and this decodes
          as 0. *)
  key_epoch : int;
      (** document-key epoch of the bound container (v1.3): an SOE holding
          a license of an older epoch can refuse before fetching anything.
          On the wire only when [meta_version >= 3]. *)
}

type request =
  | Hello of { version : int; container : string; mux : bool; trace : string }
      (** [version <= 1] encodes the v1.1 short form (and then [container]
          must be [""], [mux] false and [trace] [""]); [version >= 2]
          appends a flags byte (bit 0: request mux; bit 1: trace id
          present) and the target container id (at most
          {!max_container_id} bytes; [""] selects the terminal's default).
          A non-empty [trace] (at most {!max_trace_id} bytes) is appended
          after the container as a u8-length string and sets flag bit 1 —
          pre-telemetry v1.2 terminals reject that bit with
          [err_bad_request], which the client answers by retrying the same
          version without the trace extension before considering a version
          downgrade. The decoder accepts both forms regardless of the
          claimed version. *)
  | Get_fragment of { chunk : int; fragment : int; lo : int; hi : int }
      (** ciphertext bytes [\[lo, hi)] of one fragment *)
  | Get_chunk of { chunk : int }  (** whole-chunk ciphertext (CBC schemes) *)
  | Get_digest of { chunk : int }  (** the encrypted 24-byte digest blob *)
  | Get_hash_state of { chunk : int; fragment : int; upto : int }
      (** SHA-1 state after hashing the leaf ids and cipher [\[0, upto)] *)
  | Get_siblings of { chunk : int; fragment : int }
      (** Merkle sibling digests for a one-leaf cover, in
          {!Xmlac_crypto.Merkle.sibling_cover} order *)
  | Batch of request list
      (** several data requests in one frame (at most {!max_batch}; nested
          [Batch], [Hello], [Bye] and [Get_stats] are rejected by both
          codecs) *)
  | Get_stats
      (** ask the terminal for a telemetry snapshot ({!Stats_reply}).
          Admin-plane only: terminals answer it exclusively on loopback
          transports and reject it with [err_unsupported] elsewhere, so
          remote tenants cannot harvest cross-tenant traffic shapes. Not
          batchable. *)
  | Sync of { have_gen : int }
      (** "I hold generation [have_gen] of the bound container; send me
          what changed since." Answered with {!Sync_delta} (an encoded
          chunk delta, see [Xmlac_dissem.Delta]), {!Sync_uptodate} when
          [have_gen] is current, or [err_out_of_range] when the terminal
          cannot bridge the gap (the mirror then falls back to a full
          fetch). XWTP v1.3; not batchable (a delta reply can dwarf every
          other response kind). *)
  | Bye

type response =
  | Hello_ok of metadata
  | Fragment of string
  | Chunk of string
  | Digest of string
  | Hash_state of string
  | Siblings of string list
  | Batched of response list
      (** replies to a [Batch], in request order; individual failures
          travel as per-item [Err] values *)
  | Stats_reply of string
      (** the telemetry snapshot as a JSON document (schema
          ["xwtp.telemetry.v1"], see {!Telemetry.to_json}); opaque to the
          protocol layer. Not batchable. *)
  | Sync_delta of string
      (** the encoded chunk delta bridging the requested generation to the
          current one; opaque to the protocol layer (decoded and applied by
          [Xmlac_dissem.Delta]). Not batchable. *)
  | Sync_uptodate  (** the mirror's generation is already current *)
  | Bye_ok
  | Err of { code : int; message : string }

val err_bad_request : int
val err_out_of_range : int
val err_unsupported : int
val err_internal : int

val err_busy : int
(** Admission-control rejection: the terminal is at its session cap. The
    client maps this code to the retryable {!Error.Busy}. *)

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> request
(** @raise Error.Wire ([Protocol _]) on malformed input; never any other
    exception. *)

val decode_response : string -> response
(** @raise Error.Wire ([Protocol _]) on malformed input; never any other
    exception. *)

val metadata_of_container : C.t -> metadata
(** What a terminal advertises for a published container. *)

val metadata_geometry : metadata -> (C.t, string) result
(** Validate advertised metadata (protocol version, integrity-flag
    consistency, container geometry via
    {!Xmlac_crypto.Secure_container.geometry}) and build the header-only
    container view the SOE decrypts against. *)
