module C = Xmlac_crypto.Secure_container
module Merkle = Xmlac_crypto.Merkle
module Sha1 = Xmlac_crypto.Sha1
module Lru = Xmlac_runtime.Lru
module Pool = Xmlac_runtime.Pool

(* One published container. [gen] is unique per publication, so shared
   cache keys survive unpublish/republish of the same id without ever
   serving stale data. *)
type entry = { e_id : string; gen : int; container : C.t; meta : Protocol.metadata }

type t = {
  mutable entries : entry list;  (* publish order; head of order = default *)
  mutable gen_counter : int;
  registry_mutex : Mutex.t;
  (* registry-level cache of per-chunk fragment leaf hashes, shared by
     every session of every container — the terminal is an ordinary
     computer and caches freely; bounded so a wide fleet of containers
     cannot grow it without limit. Keyed by (publication generation,
     chunk), never by id, so republishing invalidates for free. *)
  leaves_cache : (int * int, string array) Lru.t;
  cache_stats : Lru.stats;
  cache_mutex : Mutex.t;
  totals : Stats.t;
  totals_mutex : Mutex.t;
}

let default_cache_capacity = 1024

let create ?(cache_capacity = default_cache_capacity) () =
  let cache_stats = Lru.fresh_stats () in
  {
    entries = [];
    gen_counter = 0;
    registry_mutex = Mutex.create ();
    leaves_cache = Lru.create ~capacity:cache_capacity ~stats:cache_stats;
    cache_stats;
    cache_mutex = Mutex.create ();
    totals = Stats.make ();
    totals_mutex = Mutex.create ();
  }

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let publish t ~id container =
  if id = "" then invalid_arg "Server.publish: empty container id";
  if String.length id > Protocol.max_container_id then
    invalid_arg "Server.publish: container id too long";
  with_lock t.registry_mutex @@ fun () ->
  t.gen_counter <- t.gen_counter + 1;
  let e =
    {
      e_id = id;
      gen = t.gen_counter;
      container;
      meta = Protocol.metadata_of_container container;
    }
  in
  (* replace in place so a republished id keeps its position (and the
     default keeps being the first-ever publication) *)
  if List.exists (fun e' -> e'.e_id = id) t.entries then
    t.entries <- List.map (fun e' -> if e'.e_id = id then e else e') t.entries
  else t.entries <- t.entries @ [ e ]

let unpublish t ~id =
  with_lock t.registry_mutex @@ fun () ->
  let before = List.length t.entries in
  t.entries <- List.filter (fun e -> e.e_id <> id) t.entries;
  List.length t.entries < before

let container_ids t =
  with_lock t.registry_mutex @@ fun () -> List.map (fun e -> e.e_id) t.entries

let default_entry t =
  with_lock t.registry_mutex @@ fun () ->
  match t.entries with [] -> None | e :: _ -> Some e

let find_entry t id =
  with_lock t.registry_mutex @@ fun () ->
  List.find_opt (fun e -> e.e_id = id) t.entries

let make container =
  let t = create () in
  publish t ~id:"default" container;
  t

let metadata t =
  match default_entry t with
  | Some e -> e.meta
  | None -> invalid_arg "Server.metadata: no container published"

let metadata_of t id = Option.map (fun e -> e.meta) (find_entry t id)

let totals t =
  with_lock t.totals_mutex @@ fun () ->
  let snapshot = Stats.make () in
  Stats.add ~into:snapshot t.totals;
  snapshot

let merge_stats t stats =
  with_lock t.totals_mutex @@ fun () -> Stats.add ~into:t.totals stats

let cache_stats t =
  with_lock t.cache_mutex @@ fun () ->
  {
    Lru.hits = t.cache_stats.Lru.hits;
    misses = t.cache_stats.Lru.misses;
    evicted = t.cache_stats.Lru.evicted;
  }

let be_bytes value width =
  String.init width (fun i ->
      Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

(* Per-chunk fragment leaf hashes through the shared registry cache, with
   per-session attribution into [stats] (the registry-level [cache_stats]
   totals ride on the LRU itself). *)
let leaves ?stats t e chunk =
  let attribute hit =
    match stats with
    | None -> ()
    | Some (s : Stats.t) ->
        if hit then s.cache_hits <- s.cache_hits + 1
        else s.cache_misses <- s.cache_misses + 1
  in
  with_lock t.cache_mutex @@ fun () ->
  match Lru.find t.leaves_cache (e.gen, chunk) with
  | Some l ->
      attribute true;
      l
  | None ->
      let m = C.fragments_per_chunk e.container in
      let cipher = C.chunk_ciphertext e.container chunk in
      let fsize = C.fragment_size e.container in
      let l =
        Array.init m (fun i ->
            C.fragment_leaf_hash_sub e.container ~chunk ~fragment:i ~cipher
              ~pos:(i * fsize) ~len:fsize)
      in
      Lru.insert t.leaves_cache (e.gen, chunk) l;
      attribute false;
      l

let err code fmt =
  Printf.ksprintf (fun message -> Protocol.Err { code; message }) fmt

(* Negotiated hello reply: the caller passes its current [binding] (the
   session's container, [None] before any successful hello on a fresh
   registry) and whether mux is being granted. [""] selects the binding,
   falling back to the registry default. Returns the resolved entry so
   the caller can rebind. *)
let hello_reply t ~binding ~version ~container ~grant_mux =
  if version < Protocol.min_version || version > Protocol.version then
    (None, err Protocol.err_unsupported "unsupported protocol version %d" version)
  else
    let resolved =
      if container = "" then
        match binding with Some _ -> binding | None -> default_entry t
      else find_entry t container
    in
    match resolved with
    | None ->
        if container = "" then
          (None, err Protocol.err_unsupported "no container published")
        else (None, err Protocol.err_bad_request "unknown container %S" container)
    | Some e ->
        ( Some e,
          Protocol.Hello_ok
            {
              e.meta with
              Protocol.meta_version = min version Protocol.version;
              mux = grant_mux;
            } )

let check_chunk e chunk k =
  if chunk >= C.chunk_count e.container then
    err Protocol.err_out_of_range "chunk %d out of range (%d chunks)" chunk
      (C.chunk_count e.container)
  else k ()

let check_fragment e chunk fragment k =
  check_chunk e chunk @@ fun () ->
  if fragment >= C.fragments_per_chunk e.container then
    err Protocol.err_out_of_range "fragment %d out of range (%d per chunk)"
      fragment
      (C.fragments_per_chunk e.container)
  else k ()

(* One decoded request -> one response, against one bound container. Total
   by construction for in-range requests; the catch-all in [handle] turns
   anything unexpected into an [Err] so a hostile request can never kill
   the session thread. *)
let rec handle_request ?stats t e req =
  let scheme = C.scheme e.container in
  match (req : Protocol.request) with
  | Hello { version; container; mux = _ } ->
      (* plain-path hello: rebinding and mux granting are connection
         state, handled by the serving loops; here we just answer *)
      snd (hello_reply t ~binding:(Some e) ~version ~container ~grant_mux:false)
  | Get_fragment { chunk; fragment; lo; hi } -> (
      match scheme with
      | C.Cbc_sha | C.Cbc_shac ->
          err Protocol.err_unsupported "no fragment access under %s"
            (C.scheme_to_string scheme)
      | C.Ecb | C.Ecb_mht ->
          check_fragment e chunk fragment @@ fun () ->
          if hi > C.fragment_size e.container then
            err Protocol.err_out_of_range "range [%d, %d) exceeds fragment size %d"
              lo hi
              (C.fragment_size e.container)
          else
            (* slice straight out of the chunk ciphertext: one copy of the
               requested range, not fragment copy + range copy *)
            let cipher = C.chunk_ciphertext e.container chunk in
            let base = fragment * C.fragment_size e.container in
            Protocol.Fragment (String.sub cipher (base + lo) (hi - lo)))
  | Get_chunk { chunk } ->
      check_chunk e chunk @@ fun () ->
      Protocol.Chunk (C.chunk_ciphertext e.container chunk)
  | Get_digest { chunk } ->
      if scheme = C.Ecb then
        err Protocol.err_unsupported "ECB containers carry no digests"
      else
        check_chunk e chunk @@ fun () ->
        Protocol.Digest (C.encrypted_digest e.container chunk)
  | Get_hash_state { chunk; fragment; upto } ->
      if scheme <> C.Ecb_mht then
        err Protocol.err_unsupported "no hash states under %s"
          (C.scheme_to_string scheme)
      else
        check_fragment e chunk fragment @@ fun () ->
        if upto > C.fragment_size e.container then
          err Protocol.err_out_of_range "prefix length %d exceeds fragment size %d"
            upto
            (C.fragment_size e.container)
        else begin
          (* hash the prefix in place from the chunk ciphertext — no
             fragment copy just to feed [upto] of its bytes *)
          let cipher = C.chunk_ciphertext e.container chunk in
          let ctx = Sha1.init () in
          Sha1.feed ctx (be_bytes chunk 4);
          Sha1.feed ctx (be_bytes fragment 4);
          Sha1.feed_sub ctx cipher
            ~pos:(fragment * C.fragment_size e.container)
            ~len:upto;
          Protocol.Hash_state (Sha1.export_state ctx)
        end
  | Get_siblings { chunk; fragment } ->
      if scheme <> C.Ecb_mht then
        err Protocol.err_unsupported "no Merkle tree under %s"
          (C.scheme_to_string scheme)
      else
        check_fragment e chunk fragment @@ fun () ->
        let cover =
          Merkle.sibling_cover
            ~leaf_count:(C.fragments_per_chunk e.container)
            ~lo:fragment ~hi:fragment
        in
        let l = leaves ?stats t e chunk in
        Protocol.Siblings (List.map (Merkle.node_hash l) cover)
  | Batch subs ->
      (* one reply per sub-request, in order; a failing sub becomes its
         own Err item instead of poisoning its batch-mates *)
      Protocol.Batched
        (List.map
           (fun sub ->
             match handle_request ?stats t e sub with
             | resp -> resp
             | exception e ->
                 err Protocol.err_internal "terminal failure: %s"
                   (Printexc.to_string e))
           subs)
  | Bye -> Protocol.Bye_ok

let no_container = err Protocol.err_unsupported "no container published"

let handle_bound ?stats t binding req =
  match (req : Protocol.request) with
  | Hello _ | Bye -> assert false (* serving loops intercept these *)
  | _ -> (
      match binding with
      | None -> no_container
      | Some e -> (
          match handle_request ?stats t e req with
          | resp -> resp
          | exception e ->
              err Protocol.err_internal "terminal failure: %s"
                (Printexc.to_string e)))

let handle t req =
  match (req : Protocol.request) with
  | Protocol.Bye -> (Protocol.Bye_ok, true)
  | Protocol.Hello { version; container; mux = _ } ->
      ( snd (hello_reply t ~binding:None ~version ~container ~grant_mux:false),
        false )
  | req -> (handle_bound t (default_entry t) req, false)

(* One raw frame payload -> one encoded reply, with connection-scoped
   container binding threaded through [binding]. Total: decode failures
   become [Err] replies, so the fuzz boundary can assert that no byte
   string whatsoever raises out of here. *)
let handle_frame_bound ?stats t binding payload =
  match Protocol.decode_request payload with
  | Protocol.Bye -> (Protocol.encode_response Protocol.Bye_ok, true)
  | Protocol.Hello { version; container; mux = _ } ->
      let resolved, resp =
        hello_reply t ~binding:!binding ~version ~container ~grant_mux:false
      in
      (match resolved with Some e -> binding := Some e | None -> ());
      (Protocol.encode_response resp, false)
  | req -> (Protocol.encode_response (handle_bound ?stats t !binding req), false)
  | exception Error.Wire e ->
      ( Protocol.encode_response
          (Protocol.Err
             { code = Protocol.err_bad_request; message = Error.to_string e }),
        false )

let handle_frame t payload = handle_frame_bound t (ref (default_entry t)) payload

(* {2 Serving loops} *)

let max_mux_sessions_default = 256

(* Multiplexed phase of a connection: every frame carries a session id;
   each session binds its own container with its own hello, [Bye] retires
   just that session, and the connection ends only when the peer goes
   away. Frames of one connection are served in arrival order — fleet
   concurrency comes from many connections, each a thread. *)
let serve_mux t transport ~stats ~conn_binding ~max_mux_sessions =
  let bindings : (int, entry) Hashtbl.t = Hashtbl.create 8 in
  let send ~sid resp =
    let framed = Frame.encode_mux ~sid (Protocol.encode_response resp) in
    Transport.write transport framed;
    stats.Stats.replies <- stats.Stats.replies + 1;
    stats.Stats.bytes_sent <- stats.Stats.bytes_sent + String.length framed
  in
  let rec loop () =
    match Frame.read_mux ~max_payload:Frame.max_request_payload transport with
    | sid, payload ->
        stats.Stats.requests <- stats.Stats.requests + 1;
        stats.Stats.bytes_received <-
          stats.Stats.bytes_received + Frame.header_bytes + Frame.mux_overhead
          + String.length payload;
        (match Protocol.decode_request payload with
        | Protocol.Hello { version; container; mux = _ } ->
            if
              (not (Hashtbl.mem bindings sid))
              && Hashtbl.length bindings >= max_mux_sessions
            then begin
              stats.Stats.busy_rejections <- stats.Stats.busy_rejections + 1;
              send ~sid
                (err Protocol.err_busy "connection at its session cap (%d)"
                   max_mux_sessions)
            end
            else begin
              let resolved, resp =
                hello_reply t ~binding:conn_binding ~version ~container
                  ~grant_mux:true
              in
              (match resolved with
              | Some e ->
                  if not (Hashtbl.mem bindings sid) then
                    stats.Stats.mux_sessions <- stats.Stats.mux_sessions + 1;
                  Hashtbl.replace bindings sid e
              | None -> ());
              send ~sid resp
            end
        | Protocol.Bye ->
            Hashtbl.remove bindings sid;
            send ~sid Protocol.Bye_ok
        | req ->
            let binding =
              match Hashtbl.find_opt bindings sid with
              | Some e -> Some e
              | None -> conn_binding
            in
            send ~sid (handle_bound ~stats t binding req)
        | exception Error.Wire e ->
            send ~sid
              (Protocol.Err
                 { code = Protocol.err_bad_request; message = Error.to_string e }));
        loop ()
    | exception Error.Wire (Error.Transport _) ->
        (* peer closed or timed out: normal end of connection *)
        ()
    | exception Error.Wire _ ->
        stats.Stats.wire_errors <- stats.Stats.wire_errors + 1
  in
  loop ()

let serve_connection ?(mux = true) ?(max_mux_sessions = max_mux_sessions_default)
    t transport =
  let stats = Stats.make () in
  let binding = ref (default_entry t) in
  let rec plain_loop () =
    match Frame.read ~max_payload:Frame.max_request_payload transport with
    | payload -> (
        stats.Stats.requests <- stats.Stats.requests + 1;
        stats.Stats.bytes_received <-
          stats.Stats.bytes_received + Frame.header_bytes + String.length payload;
        (* a v2 hello requesting mux switches the connection over — the
           grant travels in the (still plain) hello reply *)
        let granted = ref false in
        let reply, closing =
          match Protocol.decode_request payload with
          | Protocol.Hello { version; container; mux = want_mux } ->
              let grant = mux && want_mux && version >= 2 in
              let resolved, resp =
                hello_reply t ~binding:!binding ~version ~container
                  ~grant_mux:grant
              in
              (match resolved with
              | Some e ->
                  binding := Some e;
                  granted := grant
              | None -> ());
              (Protocol.encode_response resp, false)
          | Protocol.Bye -> (Protocol.encode_response Protocol.Bye_ok, true)
          | req ->
              (Protocol.encode_response (handle_bound ~stats t !binding req),
               false)
          | exception Error.Wire e ->
              ( Protocol.encode_response
                  (Protocol.Err
                     {
                       code = Protocol.err_bad_request;
                       message = Error.to_string e;
                     }),
                false )
        in
        let framed = Frame.encode reply in
        Transport.write transport framed;
        stats.Stats.replies <- stats.Stats.replies + 1;
        stats.Stats.bytes_sent <- stats.Stats.bytes_sent + String.length framed;
        if !granted then
          serve_mux t transport ~stats ~conn_binding:!binding ~max_mux_sessions
        else if not closing then plain_loop ())
    | exception Error.Wire (Error.Transport _) ->
        (* peer closed or timed out: normal end of session *)
        ()
    | exception Error.Wire _ ->
        stats.Stats.wire_errors <- stats.Stats.wire_errors + 1
  in
  (try plain_loop () with _ -> ());
  Transport.close transport;
  merge_stats t stats

(* In-process terminal: requests are served synchronously inside the
   client's write, replies drain from a per-connection outbox. Hermetic —
   no sockets, no threads required — yet it exercises the full encode /
   frame / decode path on both sides. Plain-framed only: a hello asking
   for mux is answered with [mux = false], which well-behaved clients
   treat as a graceful downgrade. *)
let loopback_connector t () =
  let outbox = ref "" in
  let opos = ref 0 in
  let finished = ref false in
  let stats = Stats.make () in
  let closed = ref false in
  let binding = ref (default_entry t) in
  let append s =
    outbox := String.sub !outbox !opos (String.length !outbox - !opos) ^ s;
    opos := 0
  in
  let write data =
    if not (!finished || !closed) then begin
      let off = ref 0 in
      try
        while String.length data - !off > 0 && not !finished do
          let payload, next =
            Frame.split ~max_payload:Frame.max_request_payload data ~off:!off
          in
          off := next;
          stats.Stats.requests <- stats.Stats.requests + 1;
          stats.Stats.bytes_received <-
            stats.Stats.bytes_received + Frame.header_bytes
            + String.length payload;
          let reply, closing = handle_frame_bound ~stats t binding payload in
          let framed = Frame.encode reply in
          append framed;
          stats.Stats.replies <- stats.Stats.replies + 1;
          stats.Stats.bytes_sent <- stats.Stats.bytes_sent + String.length framed;
          if closing then finished := true
        done
      with Error.Wire _ ->
        (* a client that cannot even frame its request gets cut off *)
        stats.Stats.wire_errors <- stats.Stats.wire_errors + 1;
        finished := true
    end
  in
  let read buf off len =
    let avail = String.length !outbox - !opos in
    if avail = 0 then 0
    else begin
      let n = min len avail in
      Bytes.blit_string !outbox !opos buf off n;
      opos := !opos + n;
      n
    end
  in
  let close () =
    if not !closed then begin
      closed := true;
      merge_stats t stats
    end
  in
  Transport.make ~read ~write ~close ~peer:"loopback"

(* Admission control: a connection past the session cap is never parked —
   it gets its opening frame read (so the refusal is a reply, not a
   slammed door), a typed busy error, and a close. The short-lived
   rejection runs on its own thread so a slow-to-speak rejected peer
   cannot stall the acceptor. *)
let reject_busy t ~max_sessions transport =
  let stats = Stats.make () in
  stats.Stats.busy_rejections <- 1;
  (try
     let _ : string =
       Frame.read ~max_payload:Frame.max_request_payload transport
     in
     let reply =
       Protocol.encode_response
         (err Protocol.err_busy "terminal at session cap (%d)" max_sessions)
     in
     Transport.write transport (Frame.encode reply)
   with _ -> ());
  Transport.close transport;
  merge_stats t stats

let serve ?(max_sessions = 64) ?(mux = true) ?(domains = 1) ?timeout_s ?stop t
    listener =
  let stopped () = match stop with Some r -> !r | None -> false in
  let active = ref 0 in
  let rejecting = ref 0 in
  let m = Mutex.create () in
  let cond = Condition.create () in
  let spawn counter f transport =
    let _ : Thread.t =
      Thread.create
        (fun () ->
          (try f transport with _ -> ());
          Mutex.lock m;
          decr counter;
          Condition.broadcast cond;
          Mutex.unlock m)
        ()
    in
    ()
  in
  let dispatch transport =
    Mutex.lock m;
    let admitted = !active < max_sessions in
    if admitted then incr active else incr rejecting;
    Mutex.unlock m;
    if admitted then spawn active (serve_connection ~mux t) transport
    else spawn rejecting (reject_busy t ~max_sessions) transport
  in
  let accept_blocking () =
    (* poll so a flipped stop flag (or a closed listener) ends the loop
       instead of blocking forever in accept *)
    if Transport.wait_readable listener then
      Some (Transport.accept ?timeout_s listener)
    else None
  in
  let accept_racing () =
    if Transport.wait_readable listener then
      Transport.accept_opt ?timeout_s listener
    else None
  in
  let accept_loop accept_one =
    let rec loop () =
      if not (stopped ()) then
        match accept_one () with
        | Some transport ->
            dispatch transport;
            loop ()
        | None -> loop ()
        | exception Error.Wire _ ->
            (* listener closed: fall through to drain *)
            ()
    in
    loop ()
  in
  if domains <= 1 then accept_loop accept_blocking
  else begin
    (* one acceptor per domain, all racing over one non-blocking listener;
       connection threads are spawned from whichever domain wins *)
    Transport.set_nonblocking listener;
    Pool.with_pool ~jobs:domains (fun pool ->
        Pool.run pool
          (Array.init domains (fun _ () -> accept_loop accept_racing)))
  end;
  Mutex.lock m;
  while !active > 0 || !rejecting > 0 do
    Condition.wait cond m
  done;
  Mutex.unlock m
