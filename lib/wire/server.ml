module C = Xmlac_crypto.Secure_container
module Merkle = Xmlac_crypto.Merkle
module Sha1 = Xmlac_crypto.Sha1

type t = {
  container : C.t;
  meta : Protocol.metadata;
  (* memo of per-chunk fragment leaf hashes — the terminal is an ordinary
     computer and caches freely, but sessions share it, hence the mutex *)
  leaves_memo : (int, string array) Hashtbl.t;
  memo_mutex : Mutex.t;
  totals : Stats.t;
  totals_mutex : Mutex.t;
}

let make container =
  {
    container;
    meta = Protocol.metadata_of_container container;
    leaves_memo = Hashtbl.create 8;
    memo_mutex = Mutex.create ();
    totals = Stats.make ();
    totals_mutex = Mutex.create ();
  }

let metadata t = t.meta

let totals t =
  Mutex.lock t.totals_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.totals_mutex)
    (fun () ->
      let snapshot = Stats.make () in
      Stats.add ~into:snapshot t.totals;
      snapshot)

let be_bytes value width =
  String.init width (fun i ->
      Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

let leaves t chunk =
  Mutex.lock t.memo_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.memo_mutex)
    (fun () ->
      match Hashtbl.find_opt t.leaves_memo chunk with
      | Some l -> l
      | None ->
          let m = C.fragments_per_chunk t.container in
          let cipher = C.chunk_ciphertext t.container chunk in
          let fsize = C.fragment_size t.container in
          let l =
            Array.init m (fun i ->
                C.fragment_leaf_hash_sub t.container ~chunk ~fragment:i
                  ~cipher ~pos:(i * fsize) ~len:fsize)
          in
          Hashtbl.replace t.leaves_memo chunk l;
          l)

let err code fmt = Printf.ksprintf (fun message -> Protocol.Err { code; message }) fmt

let check_chunk t chunk k =
  if chunk >= C.chunk_count t.container then
    err Protocol.err_out_of_range "chunk %d out of range (%d chunks)" chunk
      (C.chunk_count t.container)
  else k ()

let check_fragment t chunk fragment k =
  check_chunk t chunk @@ fun () ->
  if fragment >= C.fragments_per_chunk t.container then
    err Protocol.err_out_of_range "fragment %d out of range (%d per chunk)"
      fragment
      (C.fragments_per_chunk t.container)
  else k ()

(* One decoded request -> one response. Total by construction for in-range
   requests; the catch-all in [handle] turns anything unexpected into an
   [Err] so a hostile request can never kill the session thread. *)
let rec handle_request t req =
  let scheme = C.scheme t.container in
  match (req : Protocol.request) with
  | Hello { version } ->
      if version <> Protocol.version then
        err Protocol.err_unsupported "unsupported protocol version %d" version
      else Protocol.Hello_ok t.meta
  | Get_fragment { chunk; fragment; lo; hi } -> (
      match scheme with
      | C.Cbc_sha | C.Cbc_shac ->
          err Protocol.err_unsupported "no fragment access under %s"
            (C.scheme_to_string scheme)
      | C.Ecb | C.Ecb_mht ->
          check_fragment t chunk fragment @@ fun () ->
          if hi > C.fragment_size t.container then
            err Protocol.err_out_of_range "range [%d, %d) exceeds fragment size %d"
              lo hi
              (C.fragment_size t.container)
          else
            (* slice straight out of the chunk ciphertext: one copy of the
               requested range, not fragment copy + range copy *)
            let cipher = C.chunk_ciphertext t.container chunk in
            let base = fragment * C.fragment_size t.container in
            Protocol.Fragment (String.sub cipher (base + lo) (hi - lo)))
  | Get_chunk { chunk } ->
      check_chunk t chunk @@ fun () ->
      Protocol.Chunk (C.chunk_ciphertext t.container chunk)
  | Get_digest { chunk } ->
      if scheme = C.Ecb then
        err Protocol.err_unsupported "ECB containers carry no digests"
      else
        check_chunk t chunk @@ fun () ->
        Protocol.Digest (C.encrypted_digest t.container chunk)
  | Get_hash_state { chunk; fragment; upto } ->
      if scheme <> C.Ecb_mht then
        err Protocol.err_unsupported "no hash states under %s"
          (C.scheme_to_string scheme)
      else
        check_fragment t chunk fragment @@ fun () ->
        if upto > C.fragment_size t.container then
          err Protocol.err_out_of_range "prefix length %d exceeds fragment size %d"
            upto
            (C.fragment_size t.container)
        else begin
          (* hash the prefix in place from the chunk ciphertext — no
             fragment copy just to feed [upto] of its bytes *)
          let cipher = C.chunk_ciphertext t.container chunk in
          let ctx = Sha1.init () in
          Sha1.feed ctx (be_bytes chunk 4);
          Sha1.feed ctx (be_bytes fragment 4);
          Sha1.feed_sub ctx cipher
            ~pos:(fragment * C.fragment_size t.container)
            ~len:upto;
          Protocol.Hash_state (Sha1.export_state ctx)
        end
  | Get_siblings { chunk; fragment } ->
      if scheme <> C.Ecb_mht then
        err Protocol.err_unsupported "no Merkle tree under %s"
          (C.scheme_to_string scheme)
      else
        check_fragment t chunk fragment @@ fun () ->
        let cover =
          Merkle.sibling_cover
            ~leaf_count:(C.fragments_per_chunk t.container)
            ~lo:fragment ~hi:fragment
        in
        let l = leaves t chunk in
        Protocol.Siblings (List.map (Merkle.node_hash l) cover)
  | Batch subs ->
      (* one reply per sub-request, in order; a failing sub becomes its
         own Err item instead of poisoning its batch-mates *)
      Protocol.Batched
        (List.map
           (fun sub ->
             match handle_request t sub with
             | resp -> resp
             | exception e ->
                 err Protocol.err_internal "terminal failure: %s"
                   (Printexc.to_string e))
           subs)
  | Bye -> Protocol.Bye_ok

let handle t req =
  match handle_request t req with
  | resp -> (resp, req = Protocol.Bye)
  | exception e ->
      (err Protocol.err_internal "terminal failure: %s" (Printexc.to_string e),
       false)

(* One raw frame payload -> one encoded reply. Total: decode failures
   become [Err] replies, so the fuzz boundary can assert that no byte
   string whatsoever raises out of here. *)
let handle_frame t payload =
  match Protocol.decode_request payload with
  | req ->
      let resp, closing = handle t req in
      (Protocol.encode_response resp, closing)
  | exception Error.Wire e ->
      ( Protocol.encode_response
          (Protocol.Err
             { code = Protocol.err_bad_request; message = Error.to_string e }),
        false )

let serve_connection t transport =
  let stats = Stats.make () in
  let rec loop () =
    match Frame.read ~max_payload:Frame.max_request_payload transport with
    | payload ->
        stats.requests <- stats.requests + 1;
        stats.bytes_received <-
          stats.bytes_received + Frame.header_bytes + String.length payload;
        let reply, closing = handle_frame t payload in
        let framed = Frame.encode reply in
        Transport.write transport framed;
        stats.replies <- stats.replies + 1;
        stats.bytes_sent <- stats.bytes_sent + String.length framed;
        if not closing then loop ()
    | exception Error.Wire (Error.Transport _) ->
        (* peer closed or timed out: normal end of session *)
        ()
    | exception Error.Wire _ -> stats.wire_errors <- stats.wire_errors + 1
  in
  (try loop () with _ -> ());
  Transport.close transport;
  Mutex.lock t.totals_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.totals_mutex)
    (fun () -> Stats.add ~into:t.totals stats)

(* In-process terminal: requests are served synchronously inside the
   client's write, replies drain from a per-connection outbox. Hermetic —
   no sockets, no threads required — yet it exercises the full encode /
   frame / decode path on both sides. *)
let loopback_connector t () =
  let outbox = ref "" in
  let opos = ref 0 in
  let finished = ref false in
  let stats = Stats.make () in
  let closed = ref false in
  let append s = outbox := String.sub !outbox !opos (String.length !outbox - !opos) ^ s;
    opos := 0
  in
  let write data =
    if not (!finished || !closed) then begin
      let off = ref 0 in
      (try
         while String.length data - !off > 0 && not !finished do
           let payload, next =
             Frame.split ~max_payload:Frame.max_request_payload data ~off:!off
           in
           off := next;
           stats.requests <- stats.requests + 1;
           stats.bytes_received <-
             stats.bytes_received + Frame.header_bytes + String.length payload;
           let reply, closing = handle_frame t payload in
           let framed = Frame.encode reply in
           append framed;
           stats.replies <- stats.replies + 1;
           stats.bytes_sent <- stats.bytes_sent + String.length framed;
           if closing then finished := true
         done
       with Error.Wire _ ->
         (* a client that cannot even frame its request gets cut off *)
         stats.wire_errors <- stats.wire_errors + 1;
         finished := true)
    end
  in
  let read buf off len =
    let avail = String.length !outbox - !opos in
    if avail = 0 then 0
    else begin
      let n = min len avail in
      Bytes.blit_string !outbox !opos buf off n;
      opos := !opos + n;
      n
    end
  in
  let close () =
    if not !closed then begin
      closed := true;
      Mutex.lock t.totals_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.totals_mutex)
        (fun () -> Stats.add ~into:t.totals stats)
    end
  in
  Transport.make ~read ~write ~close ~peer:"loopback"

let serve ?(max_sessions = 64) ?timeout_s ?stop t listener =
  let stopped () = match stop with Some r -> !r | None -> false in
  let active = ref 0 in
  let m = Mutex.create () in
  let cond = Condition.create () in
  let rec accept_loop () =
    if not (stopped ()) then begin
      Mutex.lock m;
      while !active >= max_sessions do
        Condition.wait cond m
      done;
      Mutex.unlock m;
      (* poll so a flipped stop flag (or a closed listener) ends the loop
         instead of blocking forever in accept *)
      match
        if Transport.wait_readable listener then
          Some (Transport.accept ?timeout_s listener)
        else None
      with
      | Some transport ->
          Mutex.lock m;
          incr active;
          Mutex.unlock m;
          let _ : Thread.t =
            Thread.create
              (fun () ->
                serve_connection t transport;
                Mutex.lock m;
                decr active;
                Condition.signal cond;
                Mutex.unlock m)
              ()
          in
          accept_loop ()
      | None -> accept_loop ()
      | exception Error.Wire _ -> (* listener closed: fall through to drain *)
          ()
    end
  in
  accept_loop ();
  Mutex.lock m;
  while !active > 0 do
    Condition.wait cond m
  done;
  Mutex.unlock m
