module C = Xmlac_crypto.Secure_container
module Merkle = Xmlac_crypto.Merkle
module Sha1 = Xmlac_crypto.Sha1
module Lru = Xmlac_runtime.Lru
module Pool = Xmlac_runtime.Pool

(* One published container. [gen] is unique per full publication, so
   shared cache keys survive unpublish/republish of the same id without
   ever serving stale data; a delta republish ([apply_delta]) keeps [gen]
   — cache keys carry the per-chunk version instead, so untouched chunks
   keep their cached leaf hashes across the republish. [revoked] is the
   cumulative revocation list the container's deltas carry. *)
type entry = {
  e_id : string;
  gen : int;
  container : C.t;
  meta : Protocol.metadata;
  revoked : string list;
}

type t = {
  mutable entries : entry list;  (* publish order; head of order = default *)
  mutable gen_counter : int;
  registry_mutex : Mutex.t;
  (* registry-level cache of per-chunk fragment leaf hashes, shared by
     every session of every container — the terminal is an ordinary
     computer and caches freely; bounded so a wide fleet of containers
     cannot grow it without limit. Keyed by (publication generation,
     chunk, chunk version), never by id: a full republish invalidates via
     the fresh generation, a delta republish via the bumped versions of
     exactly the rewritten chunks. *)
  leaves_cache : (int * int * int, string array) Lru.t;
  cache_stats : Lru.stats;
  cache_mutex : Mutex.t;
  (* encoded Sync answers, keyed (id, from_gen, to_gen): a fleet of
     mirrors trailing by the same generation hits one computation *)
  delta_cache : (string * int * int, string) Lru.t;
  delta_mutex : Mutex.t;
  totals : Stats.t;
  totals_mutex : Mutex.t;
  telemetry : Telemetry.t;
}

let default_cache_capacity = 1024
let delta_cache_capacity = 8

let create ?(cache_capacity = default_cache_capacity) () =
  let cache_stats = Lru.fresh_stats () in
  {
    entries = [];
    gen_counter = 0;
    registry_mutex = Mutex.create ();
    leaves_cache = Lru.create ~capacity:cache_capacity ~stats:cache_stats;
    cache_stats;
    cache_mutex = Mutex.create ();
    delta_cache =
      Lru.create ~capacity:delta_cache_capacity ~stats:(Lru.fresh_stats ());
    delta_mutex = Mutex.create ();
    totals = Stats.make ();
    totals_mutex = Mutex.create ();
    telemetry = Telemetry.create ();
  }

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let publish ?(revoked = []) t ~id container =
  if id = "" then invalid_arg "Server.publish: empty container id";
  if String.length id > Protocol.max_container_id then
    invalid_arg "Server.publish: container id too long";
  with_lock t.registry_mutex @@ fun () ->
  t.gen_counter <- t.gen_counter + 1;
  let e =
    {
      e_id = id;
      gen = t.gen_counter;
      container;
      meta = Protocol.metadata_of_container container;
      revoked;
    }
  in
  (* replace in place so a republished id keeps its position (and the
     default keeps being the first-ever publication) *)
  if List.exists (fun e' -> e'.e_id = id) t.entries then
    t.entries <- List.map (fun e' -> if e'.e_id = id then e else e') t.entries
  else t.entries <- t.entries @ [ e ]

(* Delta republish: advance [id]'s container by one (or more) generations
   without touching the clean chunks' identity — [gen] is kept, so their
   shared leaf-hash cache entries (keyed by chunk version) stay warm.
   Sessions already bound keep serving their immutable snapshot; new
   hellos and [Sync]s see the new generation. *)
let apply_delta t ~id delta =
  with_lock t.registry_mutex @@ fun () ->
  match List.find_opt (fun e -> e.e_id = id) t.entries with
  | None -> Error (Printf.sprintf "unknown container %S" id)
  | Some e -> (
      match Xmlac_dissem.Delta.apply e.container delta with
      | Error _ as err -> err
      | Ok container ->
          let e' =
            {
              e with
              container;
              meta = Protocol.metadata_of_container container;
              revoked = delta.Xmlac_dissem.Delta.revoked;
            }
          in
          t.entries <-
            List.map (fun e0 -> if e0.e_id = id then e' else e0) t.entries;
          Telemetry.republished t.telemetry;
          Ok container)

let unpublish t ~id =
  with_lock t.registry_mutex @@ fun () ->
  let before = List.length t.entries in
  t.entries <- List.filter (fun e -> e.e_id <> id) t.entries;
  List.length t.entries < before

let container_ids t =
  with_lock t.registry_mutex @@ fun () -> List.map (fun e -> e.e_id) t.entries

let default_entry t =
  with_lock t.registry_mutex @@ fun () ->
  match t.entries with [] -> None | e :: _ -> Some e

let find_entry t id =
  with_lock t.registry_mutex @@ fun () ->
  List.find_opt (fun e -> e.e_id = id) t.entries

let make container =
  let t = create () in
  publish t ~id:"default" container;
  t

let metadata t =
  match default_entry t with
  | Some e -> e.meta
  | None -> invalid_arg "Server.metadata: no container published"

let metadata_of t id = Option.map (fun e -> e.meta) (find_entry t id)

let totals t =
  with_lock t.totals_mutex @@ fun () ->
  let snapshot = Stats.make () in
  Stats.add ~into:snapshot t.totals;
  snapshot

let merge_stats t stats =
  with_lock t.totals_mutex @@ fun () -> Stats.add ~into:t.totals stats

let cache_stats t =
  with_lock t.cache_mutex @@ fun () ->
  {
    Lru.hits = t.cache_stats.Lru.hits;
    misses = t.cache_stats.Lru.misses;
    evicted = t.cache_stats.Lru.evicted;
  }

let telemetry t = t.telemetry

let telemetry_snapshot t =
  let cs = cache_stats t in
  let containers =
    with_lock t.registry_mutex @@ fun () -> List.length t.entries
  in
  Telemetry.snapshot t.telemetry ~cache_hits:cs.Lru.hits
    ~cache_misses:cs.Lru.misses ~cache_evicted:cs.Lru.evicted ~containers

let be_bytes value width =
  String.init width (fun i ->
      Char.chr ((value lsr (8 * (width - 1 - i))) land 0xFF))

(* Per-chunk fragment leaf hashes through the shared registry cache, with
   per-session attribution into [stats] (the registry-level [cache_stats]
   totals ride on the LRU itself). *)
let leaves ?stats t e chunk =
  let attribute hit =
    (* linked to the enclosing server.request span via the ambient
       context; free (one ref read) when tracing is off *)
    Xmlac_obs.Span.event "server.cache"
      [
        ("container", Xmlac_obs.Json.String e.e_id);
        ("chunk", Xmlac_obs.Json.Int chunk);
        ("hit", Xmlac_obs.Json.Bool hit);
      ];
    match stats with
    | None -> ()
    | Some (s : Stats.t) ->
        if hit then s.cache_hits <- s.cache_hits + 1
        else s.cache_misses <- s.cache_misses + 1
  in
  with_lock t.cache_mutex @@ fun () ->
  match
    Lru.find t.leaves_cache (e.gen, chunk, C.chunk_version e.container chunk)
  with
  | Some l ->
      attribute true;
      l
  | None ->
      let m = C.fragments_per_chunk e.container in
      let cipher = C.chunk_ciphertext e.container chunk in
      let fsize = C.fragment_size e.container in
      let l =
        Array.init m (fun i ->
            C.fragment_leaf_hash_sub e.container ~chunk ~fragment:i ~cipher
              ~pos:(i * fsize) ~len:fsize)
      in
      Lru.insert t.leaves_cache
        (e.gen, chunk, C.chunk_version e.container chunk)
        l;
      attribute false;
      l

let err code fmt =
  Printf.ksprintf (fun message -> Protocol.Err { code; message }) fmt

(* The encoded answer to "I have [from_gen]" against [e]'s current
   container, through the shared delta cache: a fleet of mirrors trailing
   by the same span costs one delta computation. *)
let delta_for t e ~from_gen =
  let key = (e.e_id, from_gen, C.generation e.container) in
  with_lock t.delta_mutex @@ fun () ->
  match Lru.find t.delta_cache key with
  | Some d -> d
  | None ->
      let d =
        Xmlac_dissem.Delta.encode
          (Xmlac_dissem.Delta.of_container ~from_gen ~revoked:e.revoked
             e.container)
      in
      Lru.insert t.delta_cache key d;
      d

(* Negotiated hello reply: the caller passes its current [binding] (the
   session's container, [None] before any successful hello on a fresh
   registry) and whether mux and trace linkage are being granted. [""]
   selects the binding, falling back to the registry default. Returns the
   resolved entry so the caller can rebind. [grant_trace] must be true
   only when the hello itself carried a trace id — clients that never
   asked reject the unknown reply flag bit. *)
let hello_reply t ~binding ~version ~container ~grant_mux ~grant_trace =
  if version < Protocol.min_version || version > Protocol.version then
    (None, err Protocol.err_unsupported "unsupported protocol version %d" version)
  else
    let resolved =
      if container = "" then
        match binding with Some _ -> binding | None -> default_entry t
      else find_entry t container
    in
    match resolved with
    | None ->
        if container = "" then
          (None, err Protocol.err_unsupported "no container published")
        else (None, err Protocol.err_bad_request "unknown container %S" container)
    | Some e ->
        ( Some e,
          Protocol.Hello_ok
            {
              e.meta with
              Protocol.meta_version = min version Protocol.version;
              mux = grant_mux;
              trace = grant_trace;
            } )

let check_chunk e chunk k =
  if chunk >= C.chunk_count e.container then
    err Protocol.err_out_of_range "chunk %d out of range (%d chunks)" chunk
      (C.chunk_count e.container)
  else k ()

let check_fragment e chunk fragment k =
  check_chunk e chunk @@ fun () ->
  if fragment >= C.fragments_per_chunk e.container then
    err Protocol.err_out_of_range "fragment %d out of range (%d per chunk)"
      fragment
      (C.fragments_per_chunk e.container)
  else k ()

(* One decoded request -> one response, against one bound container. Total
   by construction for in-range requests; the catch-all in [handle] turns
   anything unexpected into an [Err] so a hostile request can never kill
   the session thread. *)
let rec handle_request ?stats t e req =
  let scheme = C.scheme e.container in
  match (req : Protocol.request) with
  | Hello { version; container; mux = _; trace = _ } ->
      (* plain-path hello: rebinding and mux/trace granting are connection
         state, handled by the serving loops; here we just answer *)
      snd
        (hello_reply t ~binding:(Some e) ~version ~container ~grant_mux:false
           ~grant_trace:false)
  | Get_fragment { chunk; fragment; lo; hi } -> (
      match scheme with
      | C.Cbc_sha | C.Cbc_shac | C.Aes_ctr ->
          err Protocol.err_unsupported "no fragment access under %s"
            (C.scheme_to_string scheme)
      | C.Ecb | C.Ecb_mht ->
          check_fragment e chunk fragment @@ fun () ->
          if hi > C.fragment_size e.container then
            err Protocol.err_out_of_range "range [%d, %d) exceeds fragment size %d"
              lo hi
              (C.fragment_size e.container)
          else
            (* slice straight out of the chunk ciphertext: one copy of the
               requested range, not fragment copy + range copy *)
            let cipher = C.chunk_ciphertext e.container chunk in
            let base = fragment * C.fragment_size e.container in
            Protocol.Fragment (String.sub cipher (base + lo) (hi - lo)))
  | Get_chunk { chunk } ->
      check_chunk e chunk @@ fun () ->
      Protocol.Chunk (C.chunk_ciphertext e.container chunk)
  | Get_digest { chunk } ->
      if scheme = C.Ecb then
        err Protocol.err_unsupported "ECB containers carry no digests"
      else
        check_chunk e chunk @@ fun () ->
        Protocol.Digest (C.encrypted_digest e.container chunk)
  | Get_hash_state { chunk; fragment; upto } ->
      if scheme <> C.Ecb_mht then
        err Protocol.err_unsupported "no hash states under %s"
          (C.scheme_to_string scheme)
      else
        check_fragment e chunk fragment @@ fun () ->
        if upto > C.fragment_size e.container then
          err Protocol.err_out_of_range "prefix length %d exceeds fragment size %d"
            upto
            (C.fragment_size e.container)
        else begin
          (* hash the prefix in place from the chunk ciphertext — no
             fragment copy just to feed [upto] of its bytes *)
          let cipher = C.chunk_ciphertext e.container chunk in
          let ctx = Sha1.init () in
          Sha1.feed ctx (be_bytes chunk 4);
          Sha1.feed ctx (be_bytes fragment 4);
          Sha1.feed_sub ctx cipher
            ~pos:(fragment * C.fragment_size e.container)
            ~len:upto;
          Protocol.Hash_state (Sha1.export_state ctx)
        end
  | Get_siblings { chunk; fragment } ->
      if scheme <> C.Ecb_mht then
        err Protocol.err_unsupported "no Merkle tree under %s"
          (C.scheme_to_string scheme)
      else
        check_fragment e chunk fragment @@ fun () ->
        let cover =
          Merkle.sibling_cover
            ~leaf_count:(C.fragments_per_chunk e.container)
            ~lo:fragment ~hi:fragment
        in
        let l = leaves ?stats t e chunk in
        Protocol.Siblings (List.map (Merkle.node_hash l) cover)
  | Batch subs ->
      (* one reply per sub-request, in order; a failing sub becomes its
         own Err item instead of poisoning its batch-mates *)
      Protocol.Batched
        (List.map
           (fun sub ->
             match handle_request ?stats t e sub with
             | resp -> resp
             | exception e ->
                 err Protocol.err_internal "terminal failure: %s"
                   (Printexc.to_string e))
           subs)
  | Get_stats ->
      (* only the serving loops answer this, and only on local
         transports; reaching it through any other path is a refusal *)
      err Protocol.err_unsupported "stats are served only on local transports"
  | Sync { have_gen } ->
      (* answered against the id's CURRENT registry entry, not the
         session's bound snapshot: data requests keep serving the
         immutable binding, but a sync's whole point is to move the peer
         forward. The per-chunk version vector bridges any generation the
         current lineage ever published; a [have_gen] above the current
         generation means the id was republished from scratch (fresh
         lineage, generation reset) and the peer must refetch. *)
      let cur =
        match find_entry t e.e_id with Some c -> c | None -> e
      in
      let gen = C.generation cur.container in
      if have_gen < 0 || have_gen > gen then begin
        Telemetry.sync_served t.telemetry ~uptodate:false ~bytes:0;
        err Protocol.err_out_of_range
          "cannot bridge generation %d (current lineage is at %d)" have_gen
          gen
      end
      else if have_gen = gen then begin
        Telemetry.sync_served t.telemetry ~uptodate:true ~bytes:0;
        Protocol.Sync_uptodate
      end
      else begin
        let d = delta_for t cur ~from_gen:have_gen in
        Telemetry.sync_served t.telemetry ~uptodate:false
          ~bytes:(String.length d);
        Protocol.Sync_delta d
      end
  | Bye -> Protocol.Bye_ok

let no_container = err Protocol.err_unsupported "no container published"

let handle_bound ?stats t binding req =
  match (req : Protocol.request) with
  | Hello _ | Bye -> assert false (* serving loops intercept these *)
  | _ -> (
      match binding with
      | None -> no_container
      | Some e -> (
          match handle_request ?stats t e req with
          | resp -> resp
          | exception e ->
              err Protocol.err_internal "terminal failure: %s"
                (Printexc.to_string e)))

let handle t req =
  match (req : Protocol.request) with
  | Protocol.Bye -> (Protocol.Bye_ok, true)
  | Protocol.Hello { version; container; mux = _; trace = _ } ->
      ( snd
          (hello_reply t ~binding:None ~version ~container ~grant_mux:false
             ~grant_trace:false),
        false )
  | req -> (handle_bound t (default_entry t) req, false)

(* {2 Per-request tracing and telemetry} *)

let request_kind : Protocol.request -> string = function
  | Protocol.Hello _ -> "hello"
  | Protocol.Get_fragment _ -> "fragment"
  | Protocol.Get_chunk _ -> "chunk"
  | Protocol.Get_digest _ -> "digest"
  | Protocol.Get_hash_state _ -> "hash_state"
  | Protocol.Get_siblings _ -> "siblings"
  | Protocol.Batch _ -> "batch"
  | Protocol.Get_stats -> "stats"
  | Protocol.Sync _ -> "sync"
  | Protocol.Bye -> "bye"

(* Run [f] inside a hand-rolled "server.request" span linked to the
   client: the ambient context gets the request's trace id and the span's
   id pushed, so anything [f] emits (cache events, nested spans) links up,
   and the span itself names the client's wire span as parent when the
   traced mux framing carried one. Everything is skipped — no context
   writes, no clock reads — unless a sink is installed and the request
   belongs to a trace. *)
let with_server_span ~trace ~client_span ~sid ~kind f =
  if trace = "" || not (Xmlac_obs.Trace.enabled ()) then f ()
  else begin
    let module J = Xmlac_obs.Json in
    Xmlac_obs.Context.with_trace trace @@ fun () ->
    let id = Xmlac_obs.Context.fresh_span_id () in
    let ctx =
      [
        ("name", J.String "server.request");
        ("trace", J.String trace);
        ("span", J.Int id);
      ]
      @ if client_span <> 0 then [ ("parent", J.Int client_span) ] else []
    in
    let t0 = Xmlac_obs.Span.now () in
    Xmlac_obs.Trace.emit "span.start"
      (ctx
      @ [ ("ts", J.Float t0); ("sid", J.Int sid); ("kind", J.String kind) ]);
    Xmlac_obs.Context.push_span id;
    Fun.protect
      ~finally:(fun () ->
        Xmlac_obs.Context.pop_span id;
        let t1 = Xmlac_obs.Span.now () in
        Xmlac_obs.Trace.emit "span.end"
          (ctx
          @ [
              ("ts", J.Float t1);
              ("wall_s", J.Float (Float.max 0. (t1 -. t0)));
            ]))
      f
  end

(* One data request end to end: handle under a server span, encode, and
   attribute outcome / reply bytes / shared-cache delta / service wall
   time to the bound tenant. *)
let serve_data ~stats ~tel ~trace ~client_span ~sid t binding req =
  let h0 = stats.Stats.cache_hits and m0 = stats.Stats.cache_misses in
  let t0 = Xmlac_obs.Span.now () in
  let resp =
    with_server_span ~trace ~client_span ~sid ~kind:(request_kind req)
      (fun () -> handle_bound ~stats t binding req)
  in
  let encoded = Protocol.encode_response resp in
  (match binding with
  | Some e ->
      Telemetry.record tel ~tenant:e.e_id
        ~ok:(match resp with Protocol.Err _ -> false | _ -> true)
        ~reply_bytes:(String.length encoded)
        ~cache_hits:(stats.Stats.cache_hits - h0)
        ~cache_misses:(stats.Stats.cache_misses - m0)
        ~service_s:(Float.max 0. (Xmlac_obs.Span.now () -. t0))
  | None -> ());
  encoded

(* The admin-plane reply: a telemetry snapshot, only ever for a provably
   local peer. The asking connection flushes its own accumulator first so
   the snapshot covers its traffic too. *)
let stats_reply ~local ~tel t =
  if not local then
    err Protocol.err_unsupported "stats are served only on local transports"
  else begin
    Telemetry.flush tel;
    Protocol.Stats_reply (Telemetry.to_string (telemetry_snapshot t))
  end

(* One raw frame payload -> one encoded reply, with connection-scoped
   container binding threaded through [binding]. Total: decode failures
   become [Err] replies, so the fuzz boundary can assert that no byte
   string whatsoever raises out of here. [tel] enables per-tenant
   telemetry attribution; [local] gates the admin-plane [Get_stats];
   [conn_trace], when given, holds the connection's negotiated trace id
   and enables the trace grant — the loopback serves synchronously on the
   caller's thread, so the ambient context already carries the client's
   open [wire.request] span and linkage costs nothing. *)
let handle_frame_bound ?stats ?tel ?(local = false) ?conn_trace t binding
    payload =
  match Protocol.decode_request payload with
  | Protocol.Bye -> (Protocol.encode_response Protocol.Bye_ok, true)
  | Protocol.Hello { version; container; mux = _; trace } ->
      let grant_trace = conn_trace <> None && trace <> "" && version >= 2 in
      let resolved, resp =
        hello_reply t ~binding:!binding ~version ~container ~grant_mux:false
          ~grant_trace
      in
      (match resolved with
      | Some e ->
          binding := Some e;
          (match conn_trace with
          | Some r -> r := (if grant_trace then trace else "")
          | None -> ());
          (match tel with
          | Some a -> Telemetry.session a ~tenant:e.e_id ~generation:e.gen
          | None -> ())
      | None -> ());
      (Protocol.encode_response resp, false)
  | Protocol.Get_stats -> (
      match tel with
      | Some a -> (Protocol.encode_response (stats_reply ~local ~tel:a t), false)
      | None ->
          ( Protocol.encode_response
              (err Protocol.err_unsupported
                 "stats are served only on local transports"),
            false ))
  | req -> (
      match tel with
      | Some a ->
          let trace = match conn_trace with Some r -> !r | None -> "" in
          let client_span =
            if trace = "" then 0
            else
              match Xmlac_obs.Context.current_span () with
              | Some s -> s
              | None -> 0
          in
          (serve_data ~stats:(Option.value stats ~default:(Stats.make ()))
             ~tel:a ~trace ~client_span ~sid:0 t !binding req,
           false)
      | None ->
          (Protocol.encode_response (handle_bound ?stats t !binding req), false))
  | exception Error.Wire e ->
      ( Protocol.encode_response
          (Protocol.Err
             { code = Protocol.err_bad_request; message = Error.to_string e }),
        false )

let handle_frame t payload = handle_frame_bound t (ref (default_entry t)) payload

(* {2 Serving loops} *)

let max_mux_sessions_default = 256

(* Multiplexed phase of a connection: every frame carries a session id;
   each session binds its own container with its own hello, [Bye] retires
   just that session, and the connection ends only when the peer goes
   away. Frames of one connection are served in arrival order — fleet
   concurrency comes from many connections, each a thread.

   When the probe hello negotiated trace propagation, every frame also
   carries a u64 span id ([traced]); replies echo the request's span, and
   each mux session's own hello may rebind the session to its own trace
   id (many tenants' sessions share one endpoint connection), tracked in
   [traces]. *)
let serve_mux t transport ~stats ~tel ~conn_binding ~conn_trace ~traced
    ~max_mux_sessions =
  let bindings : (int, entry) Hashtbl.t = Hashtbl.create 8 in
  let traces : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let prefix_bytes =
    Frame.header_bytes + Frame.mux_overhead
    + if traced then Frame.span_overhead else 0
  in
  let send_raw ~sid ~span encoded =
    let framed =
      Frame.encode_mux ~sid ?span:(if traced then Some span else None) encoded
    in
    Transport.write transport framed;
    stats.Stats.replies <- stats.Stats.replies + 1;
    stats.Stats.bytes_sent <- stats.Stats.bytes_sent + String.length framed
  in
  let send ~sid ~span resp = send_raw ~sid ~span (Protocol.encode_response resp) in
  let rec loop () =
    match
      Frame.read_mux ~max_payload:Frame.max_request_payload ~traced transport
    with
    | sid, span, payload ->
        stats.Stats.requests <- stats.Stats.requests + 1;
        stats.Stats.bytes_received <-
          stats.Stats.bytes_received + prefix_bytes + String.length payload;
        (match Protocol.decode_request payload with
        | Protocol.Hello { version; container; mux = _; trace } ->
            if
              (not (Hashtbl.mem bindings sid))
              && Hashtbl.length bindings >= max_mux_sessions
            then begin
              stats.Stats.busy_rejections <- stats.Stats.busy_rejections + 1;
              Telemetry.busy_rejected t.telemetry;
              send ~sid ~span
                (err Protocol.err_busy "connection at its session cap (%d)"
                   max_mux_sessions)
            end
            else begin
              let resolved, resp =
                hello_reply t ~binding:conn_binding ~version ~container
                  ~grant_mux:true ~grant_trace:(traced && trace <> "")
              in
              (match resolved with
              | Some e ->
                  if not (Hashtbl.mem bindings sid) then begin
                    stats.Stats.mux_sessions <- stats.Stats.mux_sessions + 1;
                    Telemetry.mux_opened t.telemetry
                  end;
                  Hashtbl.replace bindings sid e;
                  Telemetry.session tel ~tenant:e.e_id ~generation:e.gen;
                  if traced && trace <> "" then
                    Hashtbl.replace traces sid trace
              | None -> ());
              send ~sid ~span resp
            end
        | Protocol.Bye ->
            if Hashtbl.mem bindings sid then Telemetry.mux_retired t.telemetry;
            Hashtbl.remove bindings sid;
            Hashtbl.remove traces sid;
            send ~sid ~span Protocol.Bye_ok
        | Protocol.Get_stats ->
            send ~sid ~span (stats_reply ~local:(Transport.local transport) ~tel t)
        | req ->
            let binding =
              match Hashtbl.find_opt bindings sid with
              | Some e -> Some e
              | None -> conn_binding
            in
            let trace =
              match Hashtbl.find_opt traces sid with
              | Some tr -> tr
              | None -> conn_trace
            in
            send_raw ~sid ~span
              (serve_data ~stats ~tel ~trace ~client_span:span ~sid t binding
                 req)
        | exception Error.Wire e ->
            send ~sid ~span
              (Protocol.Err
                 { code = Protocol.err_bad_request; message = Error.to_string e }));
        loop ()
    | exception Error.Wire (Error.Transport _) ->
        (* peer closed or timed out: normal end of connection *)
        ()
    | exception Error.Wire _ ->
        stats.Stats.wire_errors <- stats.Stats.wire_errors + 1
  in
  loop ()

let serve_connection ?(mux = true) ?(max_mux_sessions = max_mux_sessions_default)
    t transport =
  let stats = Stats.make () in
  let tel = Telemetry.acc t.telemetry in
  Telemetry.connection_admitted t.telemetry;
  let binding = ref (default_entry t) in
  (* the connection's negotiated trace id: set by the last successful
     hello that carried one, "" otherwise *)
  let conn_trace = ref "" in
  let rec plain_loop () =
    match Frame.read ~max_payload:Frame.max_request_payload transport with
    | payload -> (
        stats.Stats.requests <- stats.Stats.requests + 1;
        stats.Stats.bytes_received <-
          stats.Stats.bytes_received + Frame.header_bytes + String.length payload;
        (* a v2 hello requesting mux switches the connection over — the
           grant travels in the (still plain) hello reply *)
        let granted = ref false in
        let reply, closing =
          match Protocol.decode_request payload with
          | Protocol.Hello { version; container; mux = want_mux; trace } ->
              let grant = mux && want_mux && version >= 2 in
              let grant_trace = trace <> "" && version >= 2 in
              let resolved, resp =
                hello_reply t ~binding:!binding ~version ~container
                  ~grant_mux:grant ~grant_trace
              in
              (match resolved with
              | Some e ->
                  binding := Some e;
                  granted := grant;
                  conn_trace := (if grant_trace then trace else "");
                  Telemetry.session tel ~tenant:e.e_id ~generation:e.gen
              | None -> ());
              (Protocol.encode_response resp, false)
          | Protocol.Bye -> (Protocol.encode_response Protocol.Bye_ok, true)
          | Protocol.Get_stats ->
              ( Protocol.encode_response
                  (stats_reply ~local:(Transport.local transport) ~tel t),
                false )
          | req ->
              ( serve_data ~stats ~tel ~trace:!conn_trace ~client_span:0 ~sid:0
                  t !binding req,
                false )
          | exception Error.Wire e ->
              ( Protocol.encode_response
                  (Protocol.Err
                     {
                       code = Protocol.err_bad_request;
                       message = Error.to_string e;
                     }),
                false )
        in
        let framed = Frame.encode reply in
        Transport.write transport framed;
        stats.Stats.replies <- stats.Stats.replies + 1;
        stats.Stats.bytes_sent <- stats.Stats.bytes_sent + String.length framed;
        if !granted then
          serve_mux t transport ~stats ~tel ~conn_binding:!binding
            ~conn_trace:!conn_trace ~traced:(!conn_trace <> "")
            ~max_mux_sessions
        else if not closing then plain_loop ())
    | exception Error.Wire (Error.Transport _) ->
        (* peer closed or timed out: normal end of session *)
        ()
    | exception Error.Wire _ ->
        stats.Stats.wire_errors <- stats.Stats.wire_errors + 1
  in
  (try plain_loop () with _ -> ());
  Transport.close transport;
  Telemetry.flush tel;
  Telemetry.connection_closed t.telemetry;
  merge_stats t stats

(* In-process terminal: requests are served synchronously inside the
   client's write, replies drain from a per-connection outbox. Hermetic —
   no sockets, no threads required — yet it exercises the full encode /
   frame / decode path on both sides. Plain-framed only: a hello asking
   for mux is answered with [mux = false], which well-behaved clients
   treat as a graceful downgrade. Traces are granted: the server work runs
   inside the client's open [wire.request] span, so server.request spans
   link to it straight from the ambient context. *)
let loopback_connector t () =
  let outbox = ref "" in
  let opos = ref 0 in
  let finished = ref false in
  let stats = Stats.make () in
  let tel = Telemetry.acc t.telemetry in
  Telemetry.connection_admitted t.telemetry;
  let closed = ref false in
  let binding = ref (default_entry t) in
  let conn_trace = ref "" in
  let append s =
    outbox := String.sub !outbox !opos (String.length !outbox - !opos) ^ s;
    opos := 0
  in
  let write data =
    if not (!finished || !closed) then begin
      let off = ref 0 in
      try
        while String.length data - !off > 0 && not !finished do
          let payload, next =
            Frame.split ~max_payload:Frame.max_request_payload data ~off:!off
          in
          off := next;
          stats.Stats.requests <- stats.Stats.requests + 1;
          stats.Stats.bytes_received <-
            stats.Stats.bytes_received + Frame.header_bytes
            + String.length payload;
          let reply, closing =
            handle_frame_bound ~stats ~tel ~local:true ~conn_trace t binding
              payload
          in
          let framed = Frame.encode reply in
          append framed;
          stats.Stats.replies <- stats.Stats.replies + 1;
          stats.Stats.bytes_sent <- stats.Stats.bytes_sent + String.length framed;
          if closing then finished := true
        done
      with Error.Wire _ ->
        (* a client that cannot even frame its request gets cut off *)
        stats.Stats.wire_errors <- stats.Stats.wire_errors + 1;
        finished := true
    end
  in
  let read buf off len =
    let avail = String.length !outbox - !opos in
    if avail = 0 then 0
    else begin
      let n = min len avail in
      Bytes.blit_string !outbox !opos buf off n;
      opos := !opos + n;
      n
    end
  in
  let close () =
    if not !closed then begin
      closed := true;
      Telemetry.flush tel;
      Telemetry.connection_closed t.telemetry;
      merge_stats t stats
    end
  in
  (* in-process by construction, so the admin plane is reachable *)
  Transport.make ~local:true ~read ~write ~close ~peer:"loopback" ()

(* Admission control: a connection past the session cap is never parked —
   it gets its opening frame read (so the refusal is a reply, not a
   slammed door), a typed busy error, and a close. The short-lived
   rejection runs on its own thread so a slow-to-speak rejected peer
   cannot stall the acceptor. *)
let reject_busy t ~max_sessions transport =
  let stats = Stats.make () in
  stats.Stats.busy_rejections <- 1;
  Telemetry.busy_rejected t.telemetry;
  (try
     let _ : string =
       Frame.read ~max_payload:Frame.max_request_payload transport
     in
     let reply =
       Protocol.encode_response
         (err Protocol.err_busy "terminal at session cap (%d)" max_sessions)
     in
     Transport.write transport (Frame.encode reply)
   with _ -> ());
  Transport.close transport;
  merge_stats t stats

let serve ?(max_sessions = 64) ?(mux = true) ?(domains = 1) ?timeout_s ?stop t
    listener =
  let stopped () = match stop with Some r -> !r | None -> false in
  let active = ref 0 in
  let rejecting = ref 0 in
  let m = Mutex.create () in
  let cond = Condition.create () in
  let spawn counter f transport =
    let _ : Thread.t =
      Thread.create
        (fun () ->
          (try f transport with _ -> ());
          Mutex.lock m;
          decr counter;
          Condition.broadcast cond;
          Mutex.unlock m)
        ()
    in
    ()
  in
  let dispatch transport =
    Mutex.lock m;
    let admitted = !active < max_sessions in
    if admitted then incr active else incr rejecting;
    Mutex.unlock m;
    if admitted then spawn active (serve_connection ~mux t) transport
    else spawn rejecting (reject_busy t ~max_sessions) transport
  in
  let accept_blocking () =
    (* poll so a flipped stop flag (or a closed listener) ends the loop
       instead of blocking forever in accept *)
    if Transport.wait_readable listener then
      Some (Transport.accept ?timeout_s listener)
    else None
  in
  let accept_racing () =
    if Transport.wait_readable listener then
      Transport.accept_opt ?timeout_s listener
    else None
  in
  let accept_loop accept_one =
    let rec loop () =
      if not (stopped ()) then
        match accept_one () with
        | Some transport ->
            dispatch transport;
            loop ()
        | None -> loop ()
        | exception Error.Wire _ ->
            (* listener closed: fall through to drain *)
            ()
    in
    loop ()
  in
  if domains <= 1 then accept_loop accept_blocking
  else begin
    (* one acceptor per domain, all racing over one non-blocking listener;
       connection threads are spawned from whichever domain wins *)
    Transport.set_nonblocking listener;
    Pool.with_pool ~jobs:domains (fun pool ->
        Pool.run pool
          (Array.init domains (fun _ () -> accept_loop accept_racing)))
  end;
  Mutex.lock m;
  while !active > 0 || !rejecting > 0 do
    Condition.wait cond m
  done;
  Mutex.unlock m
