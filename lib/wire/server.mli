(** The terminal server: a runtime registry of published containers served
    to concurrent SOE sessions. The terminal holds only ciphertext — no
    keys, no plaintext — so everything here is computable by the adversary
    too; the server's job is availability and byte-accounting, not
    secrecy.

    Sessions address a container by id in their hello ([""] selects the
    default: the first-ever publication). A v2 hello may also request XWTP
    v1.2 session multiplexing, switching the connection to session-id
    framing so many SOE sessions share one socket. Per-chunk fragment leaf
    hashes live in one bounded registry-level LRU shared across every
    session of every container, with per-session hit/miss attribution in
    that session's {!Stats}.

    Request handling is {e total}: malformed frames and out-of-range or
    scheme-inappropriate requests produce [Err] replies (or end the
    session), never an exception escaping a session thread. *)

type t

val create : ?cache_capacity:int -> unit -> t
(** An empty registry. [cache_capacity] bounds the shared leaf-hash cache
    (in per-chunk entries, default 1024). *)

val make : Xmlac_crypto.Secure_container.t -> t
(** [create] plus [publish ~id:"default"] — the single-container shape
    every pre-fleet call site expects. *)

val publish :
  ?revoked:string list ->
  t ->
  id:string ->
  Xmlac_crypto.Secure_container.t ->
  unit
(** Publish (or atomically replace) a container under [id]. Replacing
    keeps the id's position in {!container_ids} and invalidates its shared
    cache entries (keys carry a publication generation). [revoked] seeds
    the cumulative revocation list served with this id's deltas (e.g. when
    seeding a terminal with a post-rotation container).
    @raise Invalid_argument on an empty or over-long id. *)

val apply_delta :
  t ->
  id:string ->
  Xmlac_dissem.Delta.t ->
  (Xmlac_crypto.Secure_container.t, string) result
(** Advance [id]'s container by a chunk delta (the registry republish
    path): validates and grafts via {!Xmlac_dissem.Delta.apply}, replaces
    the entry in place, and adopts the delta's revocation list. Unlike
    {!publish}, untouched chunks keep their shared leaf-hash cache entries
    (cache keys carry per-chunk versions), and subsequent [Sync]s are
    answered from the new generation — sessions already bound keep
    serving their immutable snapshot. Returns the advanced container. *)

val unpublish : t -> id:string -> bool
(** Remove [id] from the registry; [false] when it was not published.
    Sessions already bound to it keep serving from their binding until
    they say [Bye]; new hellos for it are refused. *)

val container_ids : t -> string list
(** Published ids in publish order (head = default). *)

val metadata : t -> Protocol.metadata
(** The default container's metadata.
    @raise Invalid_argument when nothing is published. *)

val metadata_of : t -> string -> Protocol.metadata option

val totals : t -> Stats.t
(** Snapshot of the merged per-connection stats of all finished sessions
    (plus admission rejections). *)

val cache_stats : t -> Xmlac_runtime.Lru.stats
(** Snapshot of the registry-level shared leaf-hash cache counters. *)

val telemetry : t -> Telemetry.t
(** The registry's telemetry: per-tenant counters and service-time
    histograms, fed by the serving loops. *)

val telemetry_snapshot : t -> Telemetry.view
(** Consistent telemetry snapshot including the shared-cache counters and
    published-container count — exactly what a [Get_stats] frame
    returns. *)

val handle : t -> Protocol.request -> Protocol.response * bool
(** Serve one decoded request against the default container; the flag is
    [true] when the session should close (after [Bye]). Never raises. *)

val handle_frame : t -> string -> string * bool
(** Serve one raw frame payload (hostile bytes allowed): decode, handle,
    encode. Never raises — undecodable requests get an [Err] reply. *)

val serve_connection : ?mux:bool -> ?max_mux_sessions:int -> t -> Transport.t -> unit
(** Run one connection to completion: read frames, reply, stop on [Bye]
    or when the peer goes away. A v2 hello requesting mux (unless [mux] is
    [false]) switches the connection to multiplexed framing, where each
    session id binds its own container, [Bye] retires one session, and at
    most [max_mux_sessions] (default 256) sessions may be open at once —
    excess hellos get a typed busy rejection. A hello carrying a trace id
    is granted trace linkage: the server emits [server.request] spans tied
    to that trace, and (under mux) the connection switches to traced
    framing whose per-frame span ids become the spans' parents. Merges the
    connection's stats into {!totals} and its telemetry into
    {!telemetry}. *)

val loopback_connector : t -> unit -> Transport.t
(** A fresh in-process connection per call: requests are served
    synchronously inside the client's write, replies drain from a
    per-connection outbox. Hermetic (no sockets or threads) but exercises
    the full encode/frame/decode path on both sides. Plain-framed only —
    mux requests are answered with a graceful downgrade; trace ids are
    granted, with [server.request] spans parented on the client's ambient
    span (the serving happens on the client's own thread). *)

val serve :
  ?max_sessions:int ->
  ?mux:bool ->
  ?domains:int ->
  ?timeout_s:float ->
  ?stop:bool ref ->
  t ->
  Transport.listener ->
  unit
(** Accept loop, one thread per connection, at most [max_sessions]
    (default 64) concurrent. Admission never blocks the acceptor: a
    connection past the cap gets its opening frame read, a typed
    [err_busy] reply (which clients map to the retryable {!Error.Busy}),
    and a close. With [domains > 1], that many acceptor domains race over
    one non-blocking listener and dispatch connection threads — one
    accept path per core for fleet-scale churn. Polls the listener so it
    can notice a flipped [stop] flag (or a closed listener) within
    ~0.2 s; returns once stopped and all in-flight sessions (and
    rejections) have finished. *)
