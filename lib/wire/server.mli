(** The terminal server: serves a published container to concurrent SOE
    sessions. The terminal holds only ciphertext — no keys, no plaintext —
    so everything here is computable by the adversary too; the server's job
    is availability and byte-accounting, not secrecy.

    Request handling is {e total}: malformed frames and out-of-range or
    scheme-inappropriate requests produce [Err] replies (or end the
    session), never an exception escaping a session thread. *)

type t

val make : Xmlac_crypto.Secure_container.t -> t

val metadata : t -> Protocol.metadata

val totals : t -> Stats.t
(** Snapshot of the merged per-connection stats of all finished sessions. *)

val handle : t -> Protocol.request -> Protocol.response * bool
(** Serve one decoded request; the flag is [true] when the session should
    close (after [Bye]). Never raises. *)

val handle_frame : t -> string -> string * bool
(** Serve one raw frame payload (hostile bytes allowed): decode, handle,
    encode. Never raises — undecodable requests get an [Err] reply. *)

val serve_connection : t -> Transport.t -> unit
(** Run one session to completion: read frames, reply, stop on [Bye] or
    when the peer goes away. Merges the session's stats into {!totals}. *)

val loopback_connector : t -> unit -> Transport.t
(** A fresh in-process connection per call: requests are served
    synchronously inside the client's write, replies drain from a
    per-connection outbox. Hermetic (no sockets or threads) but exercises
    the full encode/frame/decode path on both sides. *)

val serve :
  ?max_sessions:int ->
  ?timeout_s:float ->
  ?stop:bool ref ->
  t ->
  Transport.listener ->
  unit
(** Accept loop, one thread per connection, at most [max_sessions]
    (default 64) concurrent. Polls the listener so it can notice a flipped
    [stop] flag (or a closed listener) within ~0.2 s; returns once stopped
    and all in-flight sessions have finished. *)
