type t = {
  mutable requests : int;
  mutable replies : int;
  mutable retries : int;
  mutable reconnects : int;
  mutable wire_errors : int;
  mutable payload_bytes : int;
  mutable batched_requests : int;
      (* Batch frames sent: each one coalesces several logical requests
         into a single round trip *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable busy_rejections : int;
      (* admission-control backpressure: peers turned away with err_busy *)
  mutable mux_sessions : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
      (* per-session attribution of the terminal's shared caches *)
  mutable syncs : int;
      (* Sync round trips performed (delta or up-to-date answers both) *)
  mutable sync_delta_bytes : int;
      (* encoded delta bytes received via Sync_delta replies *)
  rtt_hist : Xmlac_obs.Histogram.t;
      (* round-trip wall time per request; "wall"-prefixed so its derived
         metrics escape the perf gate's drift check *)
}

let make () =
  {
    requests = 0;
    replies = 0;
    retries = 0;
    reconnects = 0;
    wire_errors = 0;
    payload_bytes = 0;
    batched_requests = 0;
    bytes_sent = 0;
    bytes_received = 0;
    busy_rejections = 0;
    mux_sessions = 0;
    cache_hits = 0;
    cache_misses = 0;
    syncs = 0;
    sync_delta_bytes = 0;
    rtt_hist = Xmlac_obs.Histogram.make "wall_rtt";
  }

let metrics (s : t) : Xmlac_obs.Metrics.t =
  Xmlac_obs.Metrics.
    [
      int "requests" s.requests;
      int "replies" s.replies;
      int "retries" s.retries;
      int "reconnects" s.reconnects;
      int "wire_errors" s.wire_errors;
      int "payload_bytes" s.payload_bytes;
      int "batched_requests" s.batched_requests;
      int "bytes_sent" s.bytes_sent;
      int "bytes_received" s.bytes_received;
      int "busy_rejections" s.busy_rejections;
      int "mux_sessions" s.mux_sessions;
      int "cache_hits" s.cache_hits;
      int "cache_misses" s.cache_misses;
      int "syncs" s.syncs;
      int "sync_delta_bytes" s.sync_delta_bytes;
    ]
  @ Xmlac_obs.Histogram.metrics s.rtt_hist

let add ~into (s : t) =
  into.requests <- into.requests + s.requests;
  into.replies <- into.replies + s.replies;
  into.retries <- into.retries + s.retries;
  into.reconnects <- into.reconnects + s.reconnects;
  into.wire_errors <- into.wire_errors + s.wire_errors;
  into.payload_bytes <- into.payload_bytes + s.payload_bytes;
  into.batched_requests <- into.batched_requests + s.batched_requests;
  into.bytes_sent <- into.bytes_sent + s.bytes_sent;
  into.bytes_received <- into.bytes_received + s.bytes_received;
  into.busy_rejections <- into.busy_rejections + s.busy_rejections;
  into.mux_sessions <- into.mux_sessions + s.mux_sessions;
  into.cache_hits <- into.cache_hits + s.cache_hits;
  into.cache_misses <- into.cache_misses + s.cache_misses;
  into.syncs <- into.syncs + s.syncs;
  into.sync_delta_bytes <- into.sync_delta_bytes + s.sync_delta_bytes;
  Xmlac_obs.Histogram.merge ~into:into.rtt_hist s.rtt_hist
