(** Per-connection wire counters, kept by both ends: the client threads them
    into {!Xmlac_soe.Session} metrics under a ["wire."] prefix, the server
    merges per-connection stats into run totals for its [--stats] output.

    [payload_bytes] counts reply bytes the way the in-process channel counts
    [bytes_to_soe] (actual ciphertext/digest lengths, the constant padded
    hash-state size, 20 bytes per sibling digest), so local and remote runs
    of the same query are directly comparable — and the bench gate asserts
    they are equal. [bytes_sent]/[bytes_received] count everything on the
    wire, framing and opcodes included. *)

type t = {
  mutable requests : int;
  mutable replies : int;
  mutable retries : int;
  mutable reconnects : int;
  mutable wire_errors : int;
  mutable payload_bytes : int;
  mutable batched_requests : int;
      (** [Batch] frames sent, each coalescing several logical requests
          into one round trip *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable busy_rejections : int;
      (** admission-control rejections: connections (or mux sessions)
          turned away with [err_busy] — server-side backpressure *)
  mutable mux_sessions : int;
      (** multiplexed sessions opened (server: per connection; client:
          per mux connection) *)
  mutable cache_hits : int;
  mutable cache_misses : int;
      (** this session's share of the terminal's registry-level shared
          caches (per-session attribution of a cross-session cache) *)
  mutable syncs : int;
      (** [Sync] round trips performed, whether answered with a delta or
          with up-to-date (XWTP v1.3 dissemination) *)
  mutable sync_delta_bytes : int;
      (** encoded delta bytes received in [Sync_delta] replies — the
          number the bench compares against a full fetch's
          [payload_bytes] *)
  rtt_hist : Xmlac_obs.Histogram.t;
}

val make : unit -> t
val metrics : t -> Xmlac_obs.Metrics.t

val add : into:t -> t -> unit
(** Merge [s] into [into] (counters and the round-trip histogram). *)
