(* Server-side fleet telemetry: per-tenant and per-server counters with a
   service-time histogram per tenant.

   Locking discipline: the registry [t] is shared by every connection
   thread, but connection threads never touch it per-request. Each
   connection owns a private accumulator ([acc]) it observes into
   lock-free, and merges into the registry under the mutex only every
   [flush_every] requests and at connection end ({!Histogram.merge} makes
   the histogram part of that merge cheap and exact). The hot path
   therefore costs a few field bumps and one histogram observe. *)

module H = Xmlac_obs.Histogram
module Json = Xmlac_obs.Json

let schema = "xwtp.telemetry.v1"
let flush_every = 32

(* {2 Registry} *)

type tenant = {
  tn_generation : int ref;
  tn_sessions : int ref;
  tn_requests : int ref;
  tn_errors : int ref;
  tn_cache_hits : int ref;
  tn_cache_misses : int ref;
  tn_reply_bytes : int ref;
  tn_service : H.t;
}

let make_tenant () =
  {
    tn_generation = ref 0;
    tn_sessions = ref 0;
    tn_requests = ref 0;
    tn_errors = ref 0;
    tn_cache_hits = ref 0;
    tn_cache_misses = ref 0;
    tn_reply_bytes = ref 0;
    (* histogram names must start with "wall" (Gate drift exemption) *)
    tn_service = H.make "wall_service";
  }

type t = {
  m : Mutex.t;
  mutable admitted : int;
  mutable active : int;
  mutable busy_rejections : int;
  mutable mux_opened : int;
  mutable mux_retired : int;
  mutable requests : int;
  (* dissemination plane (XWTP v1.3): registry-level because republishes
     and syncs are rare compared to data requests — no accumulator hop *)
  mutable republishes : int;
  mutable syncs : int;
  mutable sync_uptodate : int;
  mutable delta_bytes : int;
  tenants : (string, tenant) Hashtbl.t;
}

let create () =
  {
    m = Mutex.create ();
    admitted = 0;
    active = 0;
    busy_rejections = 0;
    mux_opened = 0;
    mux_retired = 0;
    requests = 0;
    republishes = 0;
    syncs = 0;
    sync_uptodate = 0;
    delta_bytes = 0;
    tenants = Hashtbl.create 7;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let tenant_locked t id =
  match Hashtbl.find_opt t.tenants id with
  | Some tn -> tn
  | None ->
      let tn = make_tenant () in
      Hashtbl.replace t.tenants id tn;
      tn

let connection_admitted t =
  locked t (fun () ->
      t.admitted <- t.admitted + 1;
      t.active <- t.active + 1)

let connection_closed t = locked t (fun () -> t.active <- t.active - 1)
let busy_rejected t = locked t (fun () -> t.busy_rejections <- t.busy_rejections + 1)
let mux_opened t = locked t (fun () -> t.mux_opened <- t.mux_opened + 1)
let mux_retired t = locked t (fun () -> t.mux_retired <- t.mux_retired + 1)
let republished t = locked t (fun () -> t.republishes <- t.republishes + 1)

let sync_served t ~uptodate ~bytes =
  locked t (fun () ->
      t.syncs <- t.syncs + 1;
      if uptodate then t.sync_uptodate <- t.sync_uptodate + 1;
      t.delta_bytes <- t.delta_bytes + bytes)

(* {2 Connection-local accumulator} *)

type local = {
  mutable l_generation : int;
  mutable l_sessions : int;
  mutable l_requests : int;
  mutable l_errors : int;
  mutable l_cache_hits : int;
  mutable l_cache_misses : int;
  mutable l_reply_bytes : int;
  l_service : H.t;
}

type acc = {
  owner : t;
  locals : (string, local) Hashtbl.t;  (* tenant id -> private counters *)
  mutable pending : int;  (* requests recorded since the last flush *)
}

let acc owner = { owner; locals = Hashtbl.create 2; pending = 0 }

let local_of a id =
  match Hashtbl.find_opt a.locals id with
  | Some l -> l
  | None ->
      let l =
        {
          l_generation = 0;
          l_sessions = 0;
          l_requests = 0;
          l_errors = 0;
          l_cache_hits = 0;
          l_cache_misses = 0;
          l_reply_bytes = 0;
          l_service = H.make "wall_service";
        }
      in
      Hashtbl.replace a.locals id l;
      l

let flush a =
  if a.pending > 0 || Hashtbl.length a.locals > 0 then begin
    let t = a.owner in
    locked t (fun () ->
        Hashtbl.iter
          (fun id l ->
            let tn = tenant_locked t id in
            if l.l_generation > !(tn.tn_generation) then
              tn.tn_generation := l.l_generation;
            tn.tn_sessions := !(tn.tn_sessions) + l.l_sessions;
            tn.tn_requests := !(tn.tn_requests) + l.l_requests;
            tn.tn_errors := !(tn.tn_errors) + l.l_errors;
            tn.tn_cache_hits := !(tn.tn_cache_hits) + l.l_cache_hits;
            tn.tn_cache_misses := !(tn.tn_cache_misses) + l.l_cache_misses;
            tn.tn_reply_bytes := !(tn.tn_reply_bytes) + l.l_reply_bytes;
            t.requests <- t.requests + l.l_requests;
            H.merge ~into:tn.tn_service l.l_service)
          a.locals);
    Hashtbl.iter
      (fun _ l ->
        l.l_sessions <- 0;
        l.l_requests <- 0;
        l.l_errors <- 0;
        l.l_cache_hits <- 0;
        l.l_cache_misses <- 0;
        l.l_reply_bytes <- 0;
        H.reset l.l_service)
      a.locals;
    a.pending <- 0
  end

let session a ~tenant ~generation =
  let l = local_of a tenant in
  l.l_sessions <- l.l_sessions + 1;
  if generation > l.l_generation then l.l_generation <- generation

let record a ~tenant ~ok ~reply_bytes ~cache_hits ~cache_misses ~service_s =
  let l = local_of a tenant in
  l.l_requests <- l.l_requests + 1;
  if not ok then l.l_errors <- l.l_errors + 1;
  l.l_cache_hits <- l.l_cache_hits + cache_hits;
  l.l_cache_misses <- l.l_cache_misses + cache_misses;
  l.l_reply_bytes <- l.l_reply_bytes + reply_bytes;
  H.observe l.l_service service_s;
  a.pending <- a.pending + 1;
  if a.pending >= flush_every then flush a

(* {2 Snapshot (plain data, JSON round-trippable)} *)

type service_summary = {
  sv_count : int;
  sv_mean_s : float;
  sv_p50_s : float;
  sv_p95_s : float;
  sv_p99_s : float;
  sv_max_s : float;
}

type tenant_view = {
  tv_id : string;
  tv_generation : int;
  tv_sessions : int;
  tv_requests : int;
  tv_errors : int;
  tv_cache_hits : int;
  tv_cache_misses : int;
  tv_reply_bytes : int;
  tv_service : service_summary;
}

type server_view = {
  sr_admitted : int;
  sr_active : int;
  sr_busy_rejections : int;
  sr_mux_opened : int;
  sr_mux_retired : int;
  sr_requests : int;
  sr_republishes : int;
  sr_syncs : int;
  sr_sync_uptodate : int;
  sr_delta_bytes : int;
  sr_cache_hits : int;
  sr_cache_misses : int;
  sr_cache_evicted : int;
  sr_containers : int;
}

type view = { server : server_view; tenants : tenant_view list }

let summary_of_hist h =
  {
    sv_count = H.count h;
    sv_mean_s = H.mean h;
    sv_p50_s = H.quantile h 0.5;
    sv_p95_s = H.quantile h 0.95;
    sv_p99_s = H.quantile h 0.99;
    sv_max_s = H.max_value h;
  }

let snapshot t ~cache_hits ~cache_misses ~cache_evicted ~containers =
  locked t (fun () ->
      let tenants =
        Hashtbl.fold
          (fun id tn acc ->
            {
              tv_id = id;
              tv_generation = !(tn.tn_generation);
              tv_sessions = !(tn.tn_sessions);
              tv_requests = !(tn.tn_requests);
              tv_errors = !(tn.tn_errors);
              tv_cache_hits = !(tn.tn_cache_hits);
              tv_cache_misses = !(tn.tn_cache_misses);
              tv_reply_bytes = !(tn.tn_reply_bytes);
              tv_service = summary_of_hist tn.tn_service;
            }
            :: acc)
          t.tenants []
        |> List.sort (fun a b -> compare a.tv_id b.tv_id)
      in
      {
        server =
          {
            sr_admitted = t.admitted;
            sr_active = t.active;
            sr_busy_rejections = t.busy_rejections;
            sr_mux_opened = t.mux_opened;
            sr_mux_retired = t.mux_retired;
            sr_requests = t.requests;
            sr_republishes = t.republishes;
            sr_syncs = t.syncs;
            sr_sync_uptodate = t.sync_uptodate;
            sr_delta_bytes = t.delta_bytes;
            sr_cache_hits = cache_hits;
            sr_cache_misses = cache_misses;
            sr_cache_evicted = cache_evicted;
            sr_containers = containers;
          };
        tenants;
      })

(* {2 JSON codec} *)

let service_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.sv_count);
      ("mean_s", Json.Float s.sv_mean_s);
      ("p50_s", Json.Float s.sv_p50_s);
      ("p95_s", Json.Float s.sv_p95_s);
      ("p99_s", Json.Float s.sv_p99_s);
      ("max_s", Json.Float s.sv_max_s);
    ]

let tenant_to_json tv =
  Json.Obj
    [
      ("id", Json.String tv.tv_id);
      ("generation", Json.Int tv.tv_generation);
      ("sessions", Json.Int tv.tv_sessions);
      ("requests", Json.Int tv.tv_requests);
      ("errors", Json.Int tv.tv_errors);
      ("cache_hits", Json.Int tv.tv_cache_hits);
      ("cache_misses", Json.Int tv.tv_cache_misses);
      ("reply_bytes", Json.Int tv.tv_reply_bytes);
      ("service", service_to_json tv.tv_service);
    ]

let to_json v =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "server",
        Json.Obj
          [
            ("admitted", Json.Int v.server.sr_admitted);
            ("active", Json.Int v.server.sr_active);
            ("busy_rejections", Json.Int v.server.sr_busy_rejections);
            ("mux_opened", Json.Int v.server.sr_mux_opened);
            ("mux_retired", Json.Int v.server.sr_mux_retired);
            ("requests", Json.Int v.server.sr_requests);
            ("republishes", Json.Int v.server.sr_republishes);
            ("syncs", Json.Int v.server.sr_syncs);
            ("sync_uptodate", Json.Int v.server.sr_sync_uptodate);
            ("delta_bytes", Json.Int v.server.sr_delta_bytes);
            ("cache_hits", Json.Int v.server.sr_cache_hits);
            ("cache_misses", Json.Int v.server.sr_cache_misses);
            ("cache_evicted", Json.Int v.server.sr_cache_evicted);
            ("containers", Json.Int v.server.sr_containers);
          ] );
      ("tenants", Json.List (List.map tenant_to_json v.tenants));
    ]

let to_string v = Json.to_string (to_json v)

(* Decoding faces untrusted input: the Stats reply travels over the same
   hostile wire as everything else, so every structural violation is a
   typed [Error _], never an exception. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "telemetry: missing or bad field %S" name)

let int_field name j = field name Json.to_int_opt j
let float_field name j = field name Json.to_float_opt j

let nonneg name v =
  if v < 0 then Error (Printf.sprintf "telemetry: negative %S" name) else Ok v

let int_field_nn name j =
  let* v = int_field name j in
  nonneg name v

(* fields added after v1 shipped: absent in old snapshots, so default 0
   instead of rejecting the whole document *)
let int_field_opt name j =
  match Json.member name j with
  | None -> Ok 0
  | Some _ -> int_field_nn name j

let service_of_json j =
  let* sv_count = int_field_nn "count" j in
  let* sv_mean_s = float_field "mean_s" j in
  let* sv_p50_s = float_field "p50_s" j in
  let* sv_p95_s = float_field "p95_s" j in
  let* sv_p99_s = float_field "p99_s" j in
  let* sv_max_s = float_field "max_s" j in
  Ok { sv_count; sv_mean_s; sv_p50_s; sv_p95_s; sv_p99_s; sv_max_s }

let tenant_of_json j =
  let* tv_id = field "id" Json.to_string_opt j in
  let* tv_generation = int_field_nn "generation" j in
  let* tv_sessions = int_field_nn "sessions" j in
  let* tv_requests = int_field_nn "requests" j in
  let* tv_errors = int_field_nn "errors" j in
  let* tv_cache_hits = int_field_nn "cache_hits" j in
  let* tv_cache_misses = int_field_nn "cache_misses" j in
  let* tv_reply_bytes = int_field_nn "reply_bytes" j in
  let* service_j =
    match Json.member "service" j with
    | Some s -> Ok s
    | None -> Error "telemetry: missing tenant service summary"
  in
  let* tv_service = service_of_json service_j in
  Ok
    {
      tv_id;
      tv_generation;
      tv_sessions;
      tv_requests;
      tv_errors;
      tv_cache_hits;
      tv_cache_misses;
      tv_reply_bytes;
      tv_service;
    }

let rec all_of = function
  | [] -> Ok []
  | j :: rest ->
      let* v = tenant_of_json j in
      let* vs = all_of rest in
      Ok (v :: vs)

let of_json j =
  let* s = field "schema" Json.to_string_opt j in
  if s <> schema then
    Error (Printf.sprintf "telemetry: unknown schema %S (want %S)" s schema)
  else
    let* server_j =
      match Json.member "server" j with
      | Some s -> Ok s
      | None -> Error "telemetry: missing server block"
    in
    let* sr_admitted = int_field_nn "admitted" server_j in
    let* sr_active = int_field_nn "active" server_j in
    let* sr_busy_rejections = int_field_nn "busy_rejections" server_j in
    let* sr_mux_opened = int_field_nn "mux_opened" server_j in
    let* sr_mux_retired = int_field_nn "mux_retired" server_j in
    let* sr_requests = int_field_nn "requests" server_j in
    let* sr_republishes = int_field_opt "republishes" server_j in
    let* sr_syncs = int_field_opt "syncs" server_j in
    let* sr_sync_uptodate = int_field_opt "sync_uptodate" server_j in
    let* sr_delta_bytes = int_field_opt "delta_bytes" server_j in
    let* sr_cache_hits = int_field_nn "cache_hits" server_j in
    let* sr_cache_misses = int_field_nn "cache_misses" server_j in
    let* sr_cache_evicted = int_field_nn "cache_evicted" server_j in
    let* sr_containers = int_field_nn "containers" server_j in
    let* tenants_j =
      match Option.bind (Json.member "tenants" j) Json.to_list_opt with
      | Some l -> Ok l
      | None -> Error "telemetry: missing tenants list"
    in
    let* tenants = all_of tenants_j in
    Ok
      {
        server =
          {
            sr_admitted;
            sr_active;
            sr_busy_rejections;
            sr_mux_opened;
            sr_mux_retired;
            sr_requests;
            sr_republishes;
            sr_syncs;
            sr_sync_uptodate;
            sr_delta_bytes;
            sr_cache_hits;
            sr_cache_misses;
            sr_cache_evicted;
            sr_containers;
          };
        tenants;
      }

let of_string s =
  match Json.parse s with
  | Error e -> Error ("telemetry: " ^ e)
  | Ok j -> of_json j
