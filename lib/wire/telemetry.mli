(** Server-side fleet telemetry.

    A terminal keeps one registry per server: global admission/mux
    counters plus, per tenant (container id), session and request counts,
    shared-cache attribution, reply bytes, and a service-time histogram.
    Connection threads never lock the registry per request — each
    connection observes into a private {!acc} and merges it in under the
    registry mutex every few dozen requests and at connection end, so the
    hot path stays lock-free.

    A {!snapshot} is plain data that round-trips through JSON (schema
    {!schema}); it is what the admin-plane [Stats] frame carries and what
    [xtop] renders. The decoder treats its input as hostile — a Stats
    reply travels the same wire as everything else. *)

val schema : string
(** ["xwtp.telemetry.v1"] — pinned in every snapshot document. *)

val flush_every : int
(** Requests a connection accumulates before merging into the registry. *)

(** {2 Registry} *)

type t

val create : unit -> t

val connection_admitted : t -> unit
val connection_closed : t -> unit
val busy_rejected : t -> unit
val mux_opened : t -> unit
val mux_retired : t -> unit

val republished : t -> unit
(** A container was replaced in place via a chunk delta ([apply_delta]). *)

val sync_served : t -> uptodate:bool -> bytes:int -> unit
(** One answered [Sync]: whether the peer was already current, and how
    many encoded delta bytes went out ([0] when up to date). *)

(** {2 Connection-local accumulator} *)

type acc

val acc : t -> acc
(** A private accumulator for one connection thread. Not thread-safe —
    exactly one thread may use it. *)

val session : acc -> tenant:string -> generation:int -> unit
(** A hello bound a session to [tenant] at publication [generation]. *)

val record :
  acc ->
  tenant:string ->
  ok:bool ->
  reply_bytes:int ->
  cache_hits:int ->
  cache_misses:int ->
  service_s:float ->
  unit
(** One served request for [tenant]: outcome, reply size, shared-cache
    delta and service wall time. Flushes to the registry automatically
    every {!flush_every} records. *)

val flush : acc -> unit
(** Merge everything pending into the registry — call at connection end
    (and before serving a [Get_stats], so the snapshot covers the asking
    connection's own traffic). *)

(** {2 Snapshot} *)

type service_summary = {
  sv_count : int;
  sv_mean_s : float;
  sv_p50_s : float;
  sv_p95_s : float;
  sv_p99_s : float;
  sv_max_s : float;
}

type tenant_view = {
  tv_id : string;
  tv_generation : int;
  tv_sessions : int;
  tv_requests : int;
  tv_errors : int;
  tv_cache_hits : int;
  tv_cache_misses : int;
  tv_reply_bytes : int;
  tv_service : service_summary;
}

type server_view = {
  sr_admitted : int;
  sr_active : int;
  sr_busy_rejections : int;
  sr_mux_opened : int;
  sr_mux_retired : int;
  sr_requests : int;
  sr_republishes : int;
  sr_syncs : int;
  sr_sync_uptodate : int;
  sr_delta_bytes : int;
      (** dissemination plane: delta republishes accepted, [Sync]s
          answered (of which already-up-to-date), encoded delta bytes
          served. Encoded in every snapshot; absent in pre-dissemination
          documents, where they decode as 0. *)
  sr_cache_hits : int;
  sr_cache_misses : int;
  sr_cache_evicted : int;
  sr_containers : int;
}

type view = { server : server_view; tenants : tenant_view list }

val snapshot :
  t ->
  cache_hits:int ->
  cache_misses:int ->
  cache_evicted:int ->
  containers:int ->
  view
(** Consistent copy under the registry mutex; tenants sorted by id. The
    registry does not own the shared leaves cache, so its counters (and
    the published-container count) are passed in by the server. *)

(** {2 JSON codec} *)

val to_json : view -> Xmlac_obs.Json.t
val to_string : view -> string

val of_json : Xmlac_obs.Json.t -> (view, string) result
val of_string : string -> (view, string) result
(** Hostile-input decoder: any structural violation (wrong schema,
    missing field, negative counter) is a typed [Error], never an
    exception. *)
