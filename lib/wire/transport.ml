(* A peer that disconnects mid-reply must surface as EPIPE on our write, not
   deliver SIGPIPE and kill the whole process.  Installed once, when any
   program links the wire library. *)
let () =
  match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ()

type addr = Unix_socket of string | Tcp of string * int

type t = {
  read : bytes -> int -> int -> int;
  write : string -> unit;
  close : unit -> unit;
  peer : string;
  local : bool;
      (* whether the peer is provably on this machine (unix socket or
         loopback ip) — gates the admin-plane Stats frame *)
}

let make ?(local = false) ~read ~write ~close ~peer () =
  { read; write; close; peer; local }

let read t buf off len = t.read buf off len
let write t s = t.write s
let close t = try t.close () with _ -> ()
let peer t = t.peer
let local t = t.local

let addr_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected unix:PATH or tcp:HOST:PORT" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "unix" ->
          if rest = "" then Error "address unix:: empty socket path"
          else Ok (Unix_socket rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "address %S: expected tcp:HOST:PORT" s)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p < 65536 && host <> "" ->
                  Ok (Tcp (host, p))
              | _ -> Error (Printf.sprintf "address %S: bad host or port" s)))
      | _ ->
          Error
            (Printf.sprintf "address %S: unknown transport %S (use unix: or tcp:)"
               s kind))

let sockaddr_of_addr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ ->
          Error.transportf "cannot resolve host %S" host
      in
      Unix.ADDR_INET (ip, port)

(* A peer is "local" when the socket address proves it cannot be off-box:
   a unix socket, or an inet address in 127/8 or ::1. This is the entire
   authentication story of the admin plane — the Stats frame is answered
   only on local transports. *)
let sockaddr_local = function
  | Unix.ADDR_UNIX _ -> true
  | Unix.ADDR_INET (ip, _) ->
      let s = Unix.string_of_inet_addr ip in
      s = "::1" || (String.length s >= 4 && String.sub s 0 4 = "127.")

let of_fd ?(timeout_s = 5.0) ?(local = false) ~peer fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
   with Unix.Unix_error _ -> ());
  let read buf off len =
    try Unix.read fd buf off len
    with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
      Error.transportf "%s: read timed out" peer
  in
  let write s =
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let sent = ref 0 in
    try
      while !sent < n do
        sent := !sent + Unix.write fd b !sent (n - !sent)
      done
    with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
        Error.transportf "%s: write timed out" peer
    | Unix.Unix_error (EPIPE, _, _) ->
        Error.transportf "%s: peer closed connection" peer
  in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  make ~local ~read ~write ~close ~peer ()

let connect ?timeout_s addr =
  let sockaddr = sockaddr_of_addr addr in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error.transportf "connect %s: %s" (addr_to_string addr)
        (Unix.error_message e));
  of_fd ?timeout_s
    ~local:(sockaddr_local sockaddr)
    ~peer:(addr_to_string addr) fd

type listener = { lfd : Unix.file_descr; laddr : addr }

let listen ?(backlog = 16) addr =
  (match addr with
  | Unix_socket path -> (
      (* Remove a stale socket file from a previous run, but never a
         non-socket file the user pointed us at by mistake. *)
      match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> Error.transportf "listen %s: path exists and is not a socket" path
      | exception Unix.Unix_error (ENOENT, _, _) -> ())
  | Tcp _ -> ());
  let sockaddr = sockaddr_of_addr addr in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.listen fd backlog
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Error.transportf "listen %s: %s" (addr_to_string addr)
       (Unix.error_message e));
  let laddr =
    match (addr, Unix.getsockname fd) with
    | Tcp (host, 0), Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | _ -> addr
  in
  { lfd = fd; laddr }

let bound_addr l = l.laddr

let wait_readable ?(timeout_s = 0.2) l =
  match Unix.select [ l.lfd ] [] [] timeout_s with
  | [], _, _ -> false
  | _ -> true
  (* a signal (SIGUSR1 telemetry dump, SIGTERM) interrupting the poll is
     not a listener failure: report "nothing yet" so the accept loop gets
     back to its stop-flag check instead of tearing the server down *)
  | exception Unix.Unix_error (EINTR, _, _) -> false
  | exception Unix.Unix_error (e, _, _) ->
      Error.transportf "select %s: %s" (addr_to_string l.laddr)
        (Unix.error_message e)

let set_nonblocking l = try Unix.set_nonblock l.lfd with Unix.Unix_error _ -> ()

let accepted_peer l sa =
  match sa with
  | Unix.ADDR_UNIX _ -> addr_to_string l.laddr
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr ip) port

let accept ?timeout_s l =
  match Unix.accept l.lfd with
  | fd, sa ->
      of_fd ?timeout_s ~local:(sockaddr_local sa) ~peer:(accepted_peer l sa) fd
  | exception Unix.Unix_error (e, _, _) ->
      Error.transportf "accept %s: %s" (addr_to_string l.laddr)
        (Unix.error_message e)

(* Non-blocking accept for competing acceptors: with several domains
   polling one non-blocking listener, another acceptor may win the race
   between select and accept — that is [None], not an error. Anything
   other than a lost race still raises (as a transport error). *)
let accept_opt ?timeout_s l =
  match Unix.accept l.lfd with
  | fd, sa ->
      Some
        (of_fd ?timeout_s ~local:(sockaddr_local sa)
           ~peer:(accepted_peer l sa) fd)
  | exception
      Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ECONNABORTED | EINTR), _, _) ->
      None
  | exception Unix.Unix_error (e, _, _) ->
      Error.transportf "accept %s: %s" (addr_to_string l.laddr)
        (Unix.error_message e)

let close_listener l =
  (try Unix.close l.lfd with Unix.Unix_error _ -> ());
  match l.laddr with
  | Unix_socket path -> (
      match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ())
  | Tcp _ -> ()
