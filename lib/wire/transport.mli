(** Byte transports between the SOE and a terminal.

    A transport is just a readable/writable byte stream: real sockets
    (Unix-domain or TCP) for deployment, an in-process loopback (built by
    {!Server.loopback_connector}) for hermetic tests, and a fault-injecting
    wrapper ({!Fault.wrap}) for the adversarial harness. All failures
    surface as [{!Error.Wire} (Transport _)]. *)

type addr = Unix_socket of string | Tcp of string * int

type t

val make :
  ?local:bool ->
  read:(bytes -> int -> int -> int) ->
  write:(string -> unit) ->
  close:(unit -> unit) ->
  peer:string ->
  unit ->
  t
(** Build a transport from raw callbacks. [read buf off len] returns the
    number of bytes read (0 at end of stream); [write] must write the whole
    string or raise. [local] (default [false]) asserts the peer is on this
    machine — see {!local}; custom transports must not claim it for
    anything reachable off-box. *)

val read : t -> bytes -> int -> int -> int
val write : t -> string -> unit

val close : t -> unit
(** Idempotent; never raises. *)

val peer : t -> string
(** Human-readable peer label for error messages. *)

val local : t -> bool
(** Whether the peer is provably on this machine (unix socket, 127/8 or
    [::1]). The terminal's admin plane answers {!Protocol.Get_stats} only
    on local transports; everything else gets [err_unsupported]. *)

val parse_addr : string -> (addr, string) result
(** Parse ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val addr_to_string : addr -> string

val connect : ?timeout_s:float -> addr -> t
(** Connect a socket transport. [timeout_s] (default 5.0) bounds each
    read/write so a stalled terminal surfaces as a transport error instead
    of hanging the SOE. *)

type listener

val listen : ?backlog:int -> addr -> listener
(** Bind and listen. For [Unix_socket], a stale socket file left by a
    previous run is removed; a non-socket file at that path is an error.
    For [Tcp (_, 0)] the kernel picks a port — read it back with
    {!bound_addr}. *)

val bound_addr : listener -> addr

val wait_readable : ?timeout_s:float -> listener -> bool
(** Whether a connection is pending, waiting at most [timeout_s] (default
    0.2 s) — lets an accept loop poll a stop flag instead of blocking
    forever in [accept]. *)

val accept : ?timeout_s:float -> listener -> t

val set_nonblocking : listener -> unit
(** Switch the listening socket to non-blocking accepts, for several
    acceptor domains competing over one listener (see {!accept_opt}). *)

val accept_opt : ?timeout_s:float -> listener -> t option
(** Accept without blocking on a lost race: with competing acceptors on a
    non-blocking listener, a connection that another acceptor grabbed
    between select and accept returns [None]. Real failures still raise a
    [Transport] error. *)

val close_listener : listener -> unit
(** Close the listening socket and unlink a Unix socket file. *)
