exception Malformed of string * int

type cursor = {
  input : string;
  mutable pos : int;
  mutable stack : string list;  (* open elements, innermost first *)
  mutable seen_root : bool;
  mutable done_ : bool;
  mutable pending_end : string option;  (* End queued by an empty-element tag *)
  strip_whitespace : bool;
}

let cursor ?(strip_whitespace = false) input =
  {
    input;
    pos = 0;
    stack = [];
    seen_root = false;
    done_ = false;
    pending_end = None;
    strip_whitespace;
  }

let fail c reason = raise (Malformed (reason, c.pos))
let eof c = c.pos >= String.length c.input
let peek c = c.input.[c.pos]

let advance c n =
  c.pos <- c.pos + n;
  if c.pos > String.length c.input then fail c "unexpected end of input"

let is_space ch = ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r'

let is_name_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_' || ch = ':'

let is_name_char ch =
  is_name_start ch || (ch >= '0' && ch <= '9') || ch = '-' || ch = '.'

let is_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

let skip_spaces c =
  while (not (eof c)) && is_space (peek c) do
    c.pos <- c.pos + 1
  done

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.input && String.sub c.input c.pos n = s

(* Skip until [terminator] included; used for comments, PIs, DOCTYPE. *)
let skip_until c terminator what =
  match
    let rec search i =
      if i + String.length terminator > String.length c.input then None
      else if String.sub c.input i (String.length terminator) = terminator then
        Some i
      else search (i + 1)
    in
    search c.pos
  with
  | Some i -> c.pos <- i + String.length terminator
  | None -> fail c (Printf.sprintf "unterminated %s" what)

let read_name c =
  if eof c || not (is_name_start (peek c)) then fail c "expected a name";
  let start = c.pos in
  while (not (eof c)) && is_name_char (peek c) do
    c.pos <- c.pos + 1
  done;
  String.sub c.input start (c.pos - start)

(* Decode an entity reference starting at '&'. *)
let read_entity c =
  advance c 1;
  let start = c.pos in
  while (not (eof c)) && peek c <> ';' do
    c.pos <- c.pos + 1
  done;
  if eof c then fail c "unterminated entity reference";
  let name = String.sub c.input start (c.pos - start) in
  advance c 1;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
      if String.length name > 1 && name.[0] = '#' then begin
        let code =
          try
            if name.[1] = 'x' || name.[1] = 'X' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with Failure _ -> fail c "bad character reference"
        in
        if code < 0 || code > 0x10FFFF then fail c "character reference out of range";
        (* encode as UTF-8 *)
        let b = Buffer.create 4 in
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents b
      end
      else fail c (Printf.sprintf "unknown entity &%s;" name)

let read_attribute_value c =
  if eof c then fail c "expected attribute value";
  let quote = peek c in
  if quote <> '"' && quote <> '\'' then fail c "attribute value must be quoted";
  advance c 1;
  let b = Buffer.create 16 in
  let rec loop () =
    if eof c then fail c "unterminated attribute value"
    else if peek c = quote then advance c 1
    else if peek c = '&' then begin
      Buffer.add_string b (read_entity c);
      loop ()
    end
    else if peek c = '<' then fail c "'<' in attribute value"
    else begin
      Buffer.add_char b (peek c);
      advance c 1;
      loop ()
    end
  in
  loop ();
  Buffer.contents b

let read_attributes c =
  let rec loop acc =
    skip_spaces c;
    if eof c then fail c "unterminated start tag"
    else if peek c = '>' || peek c = '/' then List.rev acc
    else begin
      let name = read_name c in
      skip_spaces c;
      if eof c || peek c <> '=' then fail c "expected '=' after attribute name";
      advance c 1;
      skip_spaces c;
      let value = read_attribute_value c in
      if List.exists (fun (a : Event.attribute) -> a.name = name) acc then
        fail c (Printf.sprintf "duplicate attribute %s" name);
      loop ({ Event.name; value } :: acc)
    end
  in
  loop []

(* Parse markup at '<'.  Returns an event, or None for skipped markup
   (comment, PI, doctype). *)
let read_markup c : Event.t option =
  if looking_at c "<!--" then begin
    advance c 4;
    skip_until c "-->" "comment";
    None
  end
  else if looking_at c "<![CDATA[" then begin
    advance c 9;
    let start = c.pos in
    skip_until c "]]>" "CDATA section";
    Some (Event.Text (String.sub c.input start (c.pos - 3 - start)))
  end
  else if looking_at c "<!DOCTYPE" then begin
    (* naive: skip to the next '>' not inside an internal subset *)
    advance c 9;
    let depth = ref 0 in
    let rec loop () =
      if eof c then fail c "unterminated DOCTYPE"
      else
        match peek c with
        | '[' ->
            incr depth;
            advance c 1;
            loop ()
        | ']' ->
            decr depth;
            advance c 1;
            loop ()
        | '>' when !depth = 0 -> advance c 1
        | _ ->
            advance c 1;
            loop ()
    in
    loop ();
    None
  end
  else if looking_at c "<?" then begin
    advance c 2;
    skip_until c "?>" "processing instruction";
    None
  end
  else if looking_at c "</" then begin
    advance c 2;
    let name = read_name c in
    skip_spaces c;
    if eof c || peek c <> '>' then fail c "expected '>' in end tag";
    advance c 1;
    (match c.stack with
    | top :: rest when String.equal top name ->
        c.stack <- rest;
        if rest = [] then c.done_ <- true
    | top :: _ ->
        fail c (Printf.sprintf "mismatched end tag </%s>, expected </%s>" name top)
    | [] -> fail c (Printf.sprintf "end tag </%s> without open element" name));
    Some (Event.End name)
  end
  else begin
    advance c 1;
    let name = read_name c in
    let attributes = read_attributes c in
    if eof c then fail c "unterminated start tag";
    if peek c = '/' then begin
      advance c 1;
      if eof c || peek c <> '>' then fail c "expected '/>'";
      advance c 1;
      if c.stack = [] && c.seen_root then fail c "multiple root elements";
      c.seen_root <- true;
      (* Empty-element tag: report the Start now, queue the End event. *)
      c.pending_end <- Some name;
      Some (Event.Start { tag = name; attributes })
    end
    else begin
      if peek c <> '>' then fail c "expected '>' in start tag";
      advance c 1;
      if c.stack = [] && c.seen_root then fail c "multiple root elements";
      c.seen_root <- true;
      c.stack <- name :: c.stack;
      Some (Event.Start { tag = name; attributes })
    end
  end

let read_text c =
  let b = Buffer.create 32 in
  let rec loop () =
    if eof c || peek c = '<' then Buffer.contents b
    else if peek c = '&' then begin
      Buffer.add_string b (read_entity c);
      loop ()
    end
    else begin
      Buffer.add_char b (peek c);
      advance c 1;
      loop ()
    end
  in
  loop ()

(* After the root element only whitespace, comments and PIs are allowed. *)
let rec skip_trailing c =
  skip_spaces c;
  if not (eof c) then
    if looking_at c "<!--" then begin
      advance c 4;
      skip_until c "-->" "comment";
      skip_trailing c
    end
    else if looking_at c "<?" then begin
      advance c 2;
      skip_until c "?>" "processing instruction";
      skip_trailing c
    end
    else fail c "content after root element"

let rec next c : Event.t option =
  match c.pending_end with
  | Some name ->
      c.pending_end <- None;
      if c.stack = [] then c.done_ <- true;
      Some (Event.End name)
  | None ->
      if c.done_ then begin
        skip_trailing c;
        None
      end
      else if eof c then
        if c.stack <> [] then fail c "unexpected end of input: unclosed elements"
        else fail c "empty document: no root element"
      else if peek c = '<' then (
        match read_markup c with None -> next c | Some e -> Some e)
      else begin
        let start_pos = c.pos in
        let text = read_text c in
        if c.stack = [] then
          if String.for_all is_space text then next c
          else begin
            c.pos <- start_pos;
            fail c "text outside root element"
          end
        else if c.strip_whitespace && String.for_all is_space text then next c
        else if text = "" then next c
        else Some (Event.Text text)
      end

let events ?strip_whitespace input =
  let c = cursor ?strip_whitespace input in
  let rec loop acc =
    match next c with None -> List.rev acc | Some e -> loop (e :: acc)
  in
  loop []

let events_result ?strip_whitespace input =
  match events ?strip_whitespace input with
  | evs -> Ok evs
  | exception Malformed (reason, pos) -> Error (reason, pos)

let fold ?strip_whitespace input ~init ~f =
  let c = cursor ?strip_whitespace input in
  let rec loop acc =
    match next c with None -> acc | Some e -> loop (f acc e)
  in
  loop init
