(** A small streaming (pull) XML parser.

    Supports the fragment needed by the paper's pipeline: elements,
    attributes, text, CDATA sections, character/predefined entity references,
    comments and processing instructions (skipped), and a single root
    element. Namespaces are not interpreted (prefixed names are plain tags),
    and DOCTYPE declarations are skipped without being validated. *)

exception Malformed of string * int
(** [Malformed (reason, offset)] — raised on ill-formed input; [offset] is a
    byte position in the input string. *)

type cursor

val cursor : ?strip_whitespace:bool -> string -> cursor
(** [cursor s] starts parsing document [s]. When [strip_whitespace] is true
    (default false), text events consisting only of XML whitespace are not
    reported. *)

val next : cursor -> Event.t option
(** Pull the next event; [None] after the root element has been closed.
    @raise Malformed on ill-formed input. *)

val events : ?strip_whitespace:bool -> string -> Event.t list
(** Whole-document convenience wrapper around {!cursor}/{!next}.
    @raise Malformed on ill-formed input. *)

val events_result :
  ?strip_whitespace:bool -> string -> (Event.t list, string * int) result
(** {!events} as a [result] — the trust-boundary entry point for untrusted
    document bytes: never raises, [Error (reason, offset)] mirrors
    {!Malformed}. *)

val fold :
  ?strip_whitespace:bool -> string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a

val is_name : string -> bool
(** [is_name s] tells whether [s] is a valid element name for this parser
    (ASCII letters, digits, [-_.:], not starting with a digit/dot/dash). *)
