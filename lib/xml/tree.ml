type t =
  | Element of { tag : string; attributes : Event.attribute list; children : t list }
  | Text of string

let element ?(attributes = []) tag children = Element { tag; attributes; children }
let text s = Text s

let tag = function Element { tag; _ } -> Some tag | Text _ -> None
let children = function Element { children; _ } -> children | Text _ -> []

let rec text_content = function
  | Text s -> s
  | Element { children; _ } -> String.concat "" (List.map text_content children)

let rec equal a b =
  match (a, b) with
  | Text a, Text b -> String.equal a b
  | Element a, Element b ->
      String.equal a.tag b.tag
      && List.length a.attributes = List.length b.attributes
      && List.for_all2
           (fun (x : Event.attribute) (y : Event.attribute) ->
             String.equal x.name y.name && String.equal x.value y.value)
           a.attributes b.attributes
      && List.length a.children = List.length b.children
      && List.for_all2 equal a.children b.children
  | (Text _ | Element _), _ -> false

let rec pp ppf = function
  | Text s -> Fmt.pf ppf "%S" s
  | Element { tag; attributes; children } ->
      let attr ppf (a : Event.attribute) = Fmt.pf ppf " %s=%S" a.name a.value in
      Fmt.pf ppf "@[<hv 2><%s%a>%a</%s>@]" tag
        (Fmt.list ~sep:Fmt.nop attr)
        attributes
        (Fmt.list ~sep:Fmt.cut pp)
        children tag

let to_events t =
  let rec go acc = function
    | Text s -> Event.Text s :: acc
    | Element { tag; attributes; children } ->
        let acc = Event.Start { tag; attributes } :: acc in
        let acc = List.fold_left go acc children in
        Event.End tag :: acc
  in
  List.rev (go [] t)

let of_events evs =
  (* [stack] holds (tag, attributes, reversed children) frames. *)
  let rec go stack evs =
    match (evs, stack) with
    | [], [] -> invalid_arg "Tree.of_events: empty stream"
    | [], _ :: _ -> invalid_arg "Tree.of_events: unclosed elements"
    | Event.Start { tag; attributes } :: rest, _ ->
        go ((tag, attributes, ref []) :: stack) rest
    | Event.Text s :: rest, (_, _, kids) :: _ ->
        kids := Text s :: !kids;
        go stack rest
    | Event.Text _ :: _, [] -> invalid_arg "Tree.of_events: text outside root"
    | Event.End name :: rest, (tag, attributes, kids) :: outer ->
        if not (String.equal name tag) then
          invalid_arg "Tree.of_events: mismatched end tag";
        let node = Element { tag; attributes; children = List.rev !kids } in
        (match outer with
        | [] ->
            if rest <> [] then invalid_arg "Tree.of_events: events after root"
            else node
        | (_, _, parent_kids) :: _ ->
            parent_kids := node :: !parent_kids;
            go outer rest)
    | Event.End _ :: _, [] -> invalid_arg "Tree.of_events: end tag without start"
  in
  go [] evs

let parse ?strip_whitespace s = of_events (Parser.events ?strip_whitespace s)

let parse_result ?strip_whitespace s =
  (* the parser only emits balanced single-root streams, so [of_events]
     cannot reject what [events] accepted *)
  match Parser.events_result ?strip_whitespace s with
  | Ok evs -> Ok (of_events evs)
  | Error e -> Error e

let fold f init t =
  let rec go acc node =
    let acc = f acc node in
    List.fold_left go acc (children node)
  in
  go init t

let count_elements t =
  fold (fun n -> function Element _ -> n + 1 | Text _ -> n) 0 t

let count_text_nodes t =
  fold (fun n -> function Text _ -> n + 1 | Element _ -> n) 0 t

let text_bytes t =
  fold (fun n -> function Text s -> n + String.length s | Element _ -> n) 0 t

let rec max_depth = function
  | Text _ -> 0
  | Element { children; _ } ->
      1 + List.fold_left (fun m c -> max m (max_depth c)) 0 children

let average_leaf_depth t =
  let rec go depth (count, total) = function
    | Text _ -> (count, total)
    | Element { children; _ } ->
        let has_element_child =
          List.exists (function Element _ -> true | Text _ -> false) children
        in
        if has_element_child then
          List.fold_left (go (depth + 1)) (count, total) children
        else (count + 1, total + depth)
  in
  let count, total = go 1 (0, 0) t in
  if count = 0 then 0. else float_of_int total /. float_of_int count

module String_set = Set.Make (String)

let distinct_tags t =
  let set =
    fold
      (fun acc -> function
        | Element { tag; _ } -> String_set.add tag acc
        | Text _ -> acc)
      String_set.empty t
  in
  String_set.elements set

let rec map_tags f = function
  | Text s -> Text s
  | Element { tag; attributes; children } ->
      Element { tag = f tag; attributes; children = List.map (map_tags f) children }

let rec attributes_to_elements ?(prefix = "attr-") = function
  | Text s -> Text s
  | Element { tag; attributes; children } ->
      let attribute_elements =
        List.map
          (fun (a : Event.attribute) ->
            Element
              { tag = prefix ^ a.name; attributes = []; children = [ Text a.value ] })
          attributes
      in
      Element
        {
          tag;
          attributes = [];
          children =
            attribute_elements
            @ List.map (attributes_to_elements ~prefix) children;
        }
