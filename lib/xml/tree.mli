(** In-memory XML trees.

    Used on the publication side (encoding, encryption, workload generation)
    and as the substrate of the reference access-control oracle. The
    client-side evaluator itself never materializes trees. *)

type t =
  | Element of { tag : string; attributes : Event.attribute list; children : t list }
  | Text of string

val element : ?attributes:Event.attribute list -> string -> t list -> t
val text : string -> t

val tag : t -> string option
val children : t -> t list

val text_content : t -> string
(** Concatenated text of all descendant text nodes, in document order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_events : t -> Event.t list
(** Document-order event stream of the tree. *)

val of_events : Event.t list -> t
(** Rebuild a tree from a well-formed event stream.
    @raise Invalid_argument on ill-formed streams. *)

val parse : ?strip_whitespace:bool -> string -> t
(** Parse an XML document into a tree. @raise Parser.Malformed *)

val parse_result :
  ?strip_whitespace:bool -> string -> (t, string * int) result
(** {!parse} as a [result]; never raises — [Error (reason, offset)]
    mirrors {!Parser.Malformed}. *)

val count_elements : t -> int
val count_text_nodes : t -> int

val text_bytes : t -> int
(** Total byte length of all text nodes (the paper's "text size"). *)

val max_depth : t -> int
(** Depth of the deepest element; a sole root has depth 1. *)

val average_leaf_depth : t -> float
(** Mean depth of elements without element children (paper Table 2 metric). *)

val distinct_tags : t -> string list
(** Sorted list of distinct element tags. *)

val map_tags : (string -> string) -> t -> t

val attributes_to_elements : ?prefix:string -> t -> t
(** Fold every attribute into a leading child element named
    [prefix ^ attribute_name] holding the value as text (default prefix
    ["attr-"]). The paper's access-control model "handles attributes
    similarly to elements"; this makes that concrete for pipelines — like
    the Skip index — that only represent elements and text. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes (elements and texts). *)
